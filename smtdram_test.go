package smtdram

import (
	"bytes"
	"testing"
)

// The facade tests exercise the public API end to end; the heavy behavioural
// coverage lives in the internal packages.

func TestPublicAPIQuickRun(t *testing.T) {
	cfg := DefaultConfig("gzip", "mcf")
	cfg.WarmupInstr = 20_000
	cfg.TargetInstr = 20_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("no throughput")
	}
	if len(res.Apps) != 2 || res.Apps[0] != "gzip" || res.Apps[1] != "mcf" {
		t.Fatalf("apps = %v", res.Apps)
	}
}

func TestPublicCatalogs(t *testing.T) {
	if got := len(Apps()); got != 26 {
		t.Fatalf("Apps() = %d, want 26", got)
	}
	if got := len(Mixes()); got != 9 {
		t.Fatalf("Mixes() = %d, want 9", got)
	}
	m, err := MixByName("8-MEM")
	if err != nil || m.Threads() != 8 {
		t.Fatalf("MixByName(8-MEM) = %v, %v", m, err)
	}
	app, err := AppByName("swim")
	if err != nil || app.Name != "swim" {
		t.Fatalf("AppByName(swim) = %v, %v", app, err)
	}
}

func TestPublicConstantsDistinct(t *testing.T) {
	fetch := []FetchPolicy{RoundRobin, ICOUNT, FetchStall, DG, DWarn}
	seen := map[FetchPolicy]bool{}
	for _, p := range fetch {
		if seen[p] {
			t.Fatalf("duplicate fetch policy constant %v", p)
		}
		seen[p] = true
	}
	sched := []SchedPolicy{FCFS, HitFirst, AgeBased, RequestBased, ROBBased, IQBased}
	seen2 := map[SchedPolicy]bool{}
	for _, p := range sched {
		if seen2[p] {
			t.Fatalf("duplicate scheduling policy constant %v", p)
		}
		seen2[p] = true
	}
	if PageMapping == XORMapping || OpenPage == ClosePage || DDR == RDRAM {
		t.Fatal("paired constants must differ")
	}
}

func TestPublicCPIBreakdown(t *testing.T) {
	cfg := DefaultConfig("eon")
	cfg.WarmupInstr = 20_000
	cfg.TargetInstr = 20_000
	b, err := CPIBreakdown(cfg, "eon")
	if err != nil {
		t.Fatal(err)
	}
	if b.Proc <= 0 || b.Total() < b.Proc {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestPublicWeightedSpeedup(t *testing.T) {
	cfg := DefaultConfig("gzip", "bzip2")
	cfg.WarmupInstr = 20_000
	cfg.TargetInstr = 20_000
	cache := map[string]float64{}
	ws, _, err := WeightedSpeedup(cfg, cache)
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 || ws > 2 {
		t.Fatalf("2-thread WS = %v", ws)
	}
}

func TestPublicRunAlone(t *testing.T) {
	cfg := DefaultConfig("placeholder")
	cfg.WarmupInstr = 20_000
	cfg.TargetInstr = 20_000
	ipc, err := RunAlone(cfg, "sixtrack")
	if err != nil {
		t.Fatal(err)
	}
	if ipc <= 0.5 {
		t.Fatalf("sixtrack alone IPC = %v", ipc)
	}
}

func TestTraceReplayEndToEnd(t *testing.T) {
	// Record two traces from the synthetic models, then run the simulator
	// from the traces: results must match a generator-driven run exactly.
	var bufs [2]bytes.Buffer
	apps := []string{"gzip", "mcf"}
	for i, name := range apps {
		app, err := AppByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Record enough to cover warmup+target plus pipeline slack.
		if err := RecordTrace(app, i, 42, 120_000, &bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	sources := make([]Source, 2)
	for i := range sources {
		rep, err := NewReplay(&bufs[i])
		if err != nil {
			t.Fatal(err)
		}
		sources[i] = rep
	}
	traced := DefaultConfig(apps...)
	traced.WarmupInstr, traced.TargetInstr = 20_000, 20_000
	traced.Sources = sources
	rt, err := Run(traced)
	if err != nil {
		t.Fatal(err)
	}

	direct := DefaultConfig(apps...)
	direct.WarmupInstr, direct.TargetInstr = 20_000, 20_000
	rd, err := Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	// The faster thread loops its finite trace while the slow thread
	// finishes, perturbing shared-cache contention slightly; IPCs must
	// still agree within a fraction of a percent.
	for i := range rd.IPC {
		if diff := rt.IPC[i]/rd.IPC[i] - 1; diff > 0.01 || diff < -0.01 {
			t.Fatalf("thread %d: trace-driven IPC %v vs generator-driven %v (%.2f%%)",
				i, rt.IPC[i], rd.IPC[i], 100*diff)
		}
	}
}

func TestSourcesLengthValidated(t *testing.T) {
	cfg := DefaultConfig("gzip", "mcf")
	cfg.Sources = make([]Source, 1)
	if cfg.Validate() == nil {
		t.Fatal("Validate accepted mismatched Sources length")
	}
}
