// Package smtdram is a simulation library reproducing "A Performance
// Comparison of DRAM Memory System Optimizations for SMT Processors"
// (Zhu & Zhang, HPCA 2005).
//
// It models a complete machine: an SMT out-of-order processor with the four
// instruction-fetch policies the paper compares (ICOUNT, Fetch-Stall, DG,
// DWarn), a three-level non-blocking cache hierarchy, and event-driven
// multi-channel DDR SDRAM / Direct Rambus DRAM systems with page and
// XOR/permutation address mapping, open/close page modes, channel ganging,
// and six access-scheduling policies — including the paper's three
// thread-aware schemes (outstanding-request-, ROB-, and IQ-occupancy-based).
//
// Workloads are synthetic models of the 26 SPEC CPU2000 applications (real
// binaries are not redistributable); see DESIGN.md for the substitution
// rationale and calibration.
//
// Quick start:
//
//	cfg := smtdram.DefaultConfig("mcf", "ammp") // the paper's 2-MEM mix
//	res, err := smtdram.Run(cfg)
//	if err != nil { ... }
//	fmt.Println(res.TotalIPC(), res.RowBufferMissRate)
//
// The cmd/experiments binary regenerates every figure of the paper's
// evaluation; EXPERIMENTS.md records paper-vs-measured comparisons.
package smtdram

import (
	"io"

	"smtdram/internal/addrmap"
	"smtdram/internal/core"
	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
	"smtdram/internal/stats"
	"smtdram/internal/workload"
)

// Core simulation types.
type (
	// Config describes a full machine + experiment; see DefaultConfig.
	Config = core.Config
	// MemConfig describes the DRAM system (channels, ganging, mapping,
	// page mode, scheduling policy).
	MemConfig = core.MemConfig
	// Result carries every measurement of a run.
	Result = core.Result
	// Simulator is an assembled machine; use NewSimulator + Run, or the
	// package-level Run convenience.
	Simulator = core.Simulator
	// CacheSnapshot is one cache level's counters.
	CacheSnapshot = core.CacheSnapshot
	// DRAMKind selects DDR SDRAM or Direct Rambus.
	DRAMKind = core.DRAMKind
	// Breakdown is a CPI attribution across the memory hierarchy.
	Breakdown = stats.Breakdown
	// Mix is a Table 2 workload.
	Mix = workload.Mix
	// App is a synthetic SPEC CPU2000 application model.
	App = workload.App
	// FetchPolicy is an SMT instruction-fetch policy.
	FetchPolicy = cpu.FetchPolicy
	// SchedPolicy is a memory-access scheduling policy.
	SchedPolicy = memctrl.Policy
	// MapScheme is a DRAM address-mapping scheme.
	MapScheme = addrmap.Scheme
	// PageMode is the DRAM row-buffer management policy.
	PageMode = dram.PageMode
)

// DRAM technologies.
const (
	DDR   = core.DDR
	RDRAM = core.RDRAM
)

// Fetch policies (Section 5.1).
const (
	RoundRobin = cpu.RoundRobin
	ICOUNT     = cpu.ICOUNT
	FetchStall = cpu.FetchStall
	DG         = cpu.DG
	DWarn      = cpu.DWarn
)

// Access-scheduling policies (Sections 3 and 5.5).
const (
	FCFS         = memctrl.FCFS
	HitFirst     = memctrl.HitFirst
	AgeBased     = memctrl.AgeBased
	RequestBased = memctrl.RequestBased
	ROBBased     = memctrl.ROBBased
	IQBased      = memctrl.IQBased
)

// Address-mapping schemes (Section 5.4).
const (
	PageMapping = addrmap.Page
	XORMapping  = addrmap.XOR
)

// Page modes (Section 2).
const (
	OpenPage  = dram.OpenPage
	ClosePage = dram.ClosePage
)

// DefaultConfig returns the paper's Table 1 machine running the named
// applications, one per hardware thread.
func DefaultConfig(apps ...string) Config { return core.DefaultConfig(apps...) }

// NewSimulator builds the machine described by cfg.
func NewSimulator(cfg Config) (*Simulator, error) { return core.NewSimulator(cfg) }

// Run builds and runs a machine in one call.
func Run(cfg Config) (Result, error) { return core.Run(cfg) }

// RunAlone runs a single application on cfg's machine and returns its IPC —
// the weighted-speedup denominator.
func RunAlone(cfg Config, app string) (float64, error) { return core.RunAlone(cfg, app) }

// WeightedSpeedup runs cfg's mix and divides per-thread IPCs by single-thread
// baselines on the identical machine. baselineCache (keyed by app name) may
// be nil.
func WeightedSpeedup(cfg Config, baselineCache map[string]float64) (float64, Result, error) {
	return core.WeightedSpeedup(cfg, baselineCache)
}

// CPIBreakdown runs the paper's four-configuration CPI attribution
// (Section 4.2) for one application.
func CPIBreakdown(cfg Config, app string) (Breakdown, error) {
	return core.CPIBreakdown(cfg, app)
}

// Apps lists the 26 modeled SPEC CPU2000 application names.
func Apps() []string { return workload.Names() }

// AppByName returns one application model.
func AppByName(name string) (App, error) { return workload.ByName(name) }

// Mixes returns the paper's Table 2 workload catalog.
func Mixes() []Mix { return workload.Mixes() }

// MixByName looks up a Table 2 workload (e.g. "4-MEM").
func MixByName(name string) (Mix, error) { return workload.MixByName(name) }

// Source produces a thread's dynamic instruction stream. The synthetic
// application models implement it; so does Replay, for recorded traces.
type Source = cpu.Source

// TraceEvent describes one serviced DRAM request (see Config.Mem.Trace).
type TraceEvent = memctrl.TraceEvent

// Replay replays a recorded instruction trace as a Source.
type Replay = workload.Replay

// RecordTrace captures n instructions of an application model's stream into
// w, in the compact binary trace format readable by NewReplay.
func RecordTrace(app App, threadID int, seed int64, n uint64, w io.Writer) error {
	return workload.Record(app, threadID, seed, n, w)
}

// NewReplay decodes a recorded instruction trace.
func NewReplay(r io.Reader) (*Replay, error) { return workload.NewReplay(r) }

// Observability layer (see internal/obs and the README's Observability
// section): attach an Observer via Config.Observe to record cycle-sampled
// metrics, a request-lifecycle trace (exportable as JSONL or Chrome
// trace_event JSON for Perfetto), and event-loop profiling.
type (
	// Observer bundles one run's observability state.
	Observer = obs.Observer
	// ObsOptions selects which observability subsystems a run enables.
	ObsOptions = obs.Options
	// MetricsRegistry holds a run's metrics and sampled time series.
	MetricsRegistry = obs.Registry
	// LifecycleTracer records request-lifecycle events.
	LifecycleTracer = obs.Tracer
	// LifecycleEvent is one structured request-lifecycle record.
	LifecycleEvent = obs.Event
	// LifecycleFilter selects a subset of a lifecycle trace.
	LifecycleFilter = obs.Filter
)

// NewObserver builds an Observer, or nil when every subsystem is off. Typical
// use:
//
//	ob := smtdram.NewObserver(smtdram.ObsOptions{Trace: true, Metrics: true})
//	cfg.Observe = func() *smtdram.Observer { return ob }
//	res, _ := smtdram.Run(cfg)
//	ob.Trace.WriteChrome(f) // open f in ui.perfetto.dev
func NewObserver(o ObsOptions) *Observer { return obs.New(o) }

// Fault injection and resilience (see DESIGN.md §10): attach a FaultPlan via
// Config.Faults to inject seeded transient bit flips, stuck rows, request
// drops, and a hard mid-run channel failure; Result.Faults and
// Result.Failover report what happened and what it cost.
type (
	// FaultPlan describes what to inject; nil injects nothing.
	FaultPlan = faults.Plan
	// StuckRow pins a (channel, chip, bank, row) to permanent multi-bit
	// corruption.
	StuckRow = faults.StuckRow
	// ChannelFail hard-fails one channel at a planned cycle.
	ChannelFail = faults.ChannelFail
	// FaultReport is the end-of-run fault/ECC/retry accounting.
	FaultReport = core.FaultReport
	// FailoverReport measures IPC and latency around a channel failure.
	FailoverReport = core.FailoverReport
	// NoProgressError is Run's structured livelock-watchdog abort.
	NoProgressError = core.NoProgressError
)

// ParseFaultPlan parses a fault spec like
// "bitflip:rate=1e-6,seed=7;channel-fail:ch=1,at=2000000;drop:rate=1e-7"
// (the smtdram -faults syntax). An empty spec returns (nil, nil).
func ParseFaultPlan(spec string) (*FaultPlan, error) { return faults.Parse(spec) }
