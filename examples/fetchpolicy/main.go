// Fetchpolicy: the paper's Figures 2 and 3 in miniature — how the SMT
// instruction fetch policy changes what the memory system costs you.
//
// Expected shape (Section 5.1): on an 8-thread MIX workload, ICOUNT lets
// miss-bound threads clog the shared issue queues and throughput collapses;
// the miss-aware policies (Fetch-Stall, DG, DWarn) throttle those threads
// and keep the compute-bound threads running.
package main

import (
	"fmt"
	"log"

	"smtdram"
)

func main() {
	mix, err := smtdram.MixByName("8-MIX")
	if err != nil {
		log.Fatal(err)
	}

	policies := []smtdram.FetchPolicy{
		smtdram.ICOUNT,
		smtdram.FetchStall,
		smtdram.DG,
		smtdram.DWarn,
	}

	fmt.Printf("8-MIX (%v), 2-channel DDR\n\n", mix.Apps)
	fmt.Printf("%-12s %10s %22s\n", "policy", "total IPC", "ILP-thread IPC (gzip)")

	for _, pol := range policies {
		cfg := smtdram.DefaultConfig(mix.Apps...)
		cfg.WarmupInstr, cfg.TargetInstr = 100_000, 100_000
		cfg.CPU.Policy = pol

		res, err := smtdram.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %10.3f %22.3f\n", pol, res.TotalIPC(), res.IPC[0])
	}

	fmt.Println("\nWatch the gzip thread: under ICOUNT it is starved by mcf/ammp/swim/lucas")
	fmt.Println("holding the shared issue queues across their DRAM misses; the miss-aware")
	fmt.Println("policies bound that occupancy and give the bandwidth back.")
}
