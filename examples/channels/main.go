// Channels: the paper's Figures 6 and 7 in miniature — how channel count
// and channel ganging change performance for a memory-intensive mix.
//
// Expected shape (Section 5.3): more independent channels help MEM mixes a
// lot; ganging channels into wider logical ones costs concurrency and loses
// to independent organizations, by a wide margin at high thread counts.
package main

import (
	"fmt"
	"log"

	"smtdram"
)

func main() {
	mix, err := smtdram.MixByName("4-MEM")
	if err != nil {
		log.Fatal(err)
	}

	// Single-thread baselines are measured once, on the reference 2C-1G
	// machine, and reused for every organization — per-organization
	// baselines would cancel the very effect being measured.
	baselines := map[string]float64{}
	for _, app := range mix.Apps {
		if _, ok := baselines[app]; ok {
			continue
		}
		ref := smtdram.DefaultConfig(mix.Apps...)
		ref.WarmupInstr, ref.TargetInstr = 100_000, 100_000
		ipc, err := smtdram.RunAlone(ref, app)
		if err != nil {
			log.Fatal(err)
		}
		baselines[app] = ipc
	}
	run := func(phys, gang int) float64 {
		cfg := smtdram.DefaultConfig(mix.Apps...)
		cfg.WarmupInstr, cfg.TargetInstr = 100_000, 100_000
		cfg.Mem.PhysChannels = phys
		cfg.Mem.Gang = gang
		res, err := smtdram.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		var ws float64
		for i, app := range mix.Apps {
			ws += res.IPC[i] / baselines[app]
		}
		return ws
	}

	fmt.Printf("4-MEM (%v)\n\n", mix.Apps)
	fmt.Println("Channel scaling (independent logical channels):")
	base := run(2, 1)
	for _, ch := range []int{2, 4, 8} {
		ws := base
		if ch != 2 {
			ws = run(ch, 1)
		}
		fmt.Printf("  %d channels: WS %.3f (%.2f× the 2-channel system)\n", ch, ws, ws/base)
	}

	fmt.Println("\nGanging 8 physical channels:")
	for _, gang := range []int{1, 2, 4} {
		ws := run(8, gang)
		fmt.Printf("  8C-%dG (%d logical × %dB wide): WS %.3f\n",
			gang, 8/gang, 16*gang, ws)
	}
	fmt.Println("\nIndependent channels should win: serving many requests " +
		"concurrently beats shortening one request's transfer.")
}
