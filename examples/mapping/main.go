// Mapping: the paper's Figures 8 and 9 in miniature — row-buffer miss rates
// under page vs XOR (permutation-based) address mapping, on both DDR SDRAM
// (few banks) and Direct Rambus (many banks).
//
// Expected shape (Section 5.4): XOR reduces miss rates moderately on DDR —
// the 2-channel system has only 8 independent banks — and much more on
// RDRAM, whose 256 banks give the permutation room to spread conflicts.
package main

import (
	"fmt"
	"log"

	"smtdram"
)

func main() {
	mix, err := smtdram.MixByName("4-MEM")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("4-MEM (%v), 2 channels, open page\n\n", mix.Apps)
	fmt.Printf("%-7s %-6s %12s %14s\n", "DRAM", "map", "row miss", "avg read lat")

	for _, kind := range []smtdram.DRAMKind{smtdram.DDR, smtdram.RDRAM} {
		for _, scheme := range []smtdram.MapScheme{smtdram.PageMapping, smtdram.XORMapping} {
			cfg := smtdram.DefaultConfig(mix.Apps...)
			cfg.WarmupInstr, cfg.TargetInstr = 100_000, 100_000
			cfg.Mem.Kind = kind
			cfg.Mem.Scheme = scheme

			res, err := smtdram.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7v %-6v %11.1f%% %14.0f\n",
				kind, scheme, 100*res.RowBufferMissRate, res.AvgReadLatency)
		}
	}

	fmt.Println("\nXOR permutes the bank index with low row bits, so streams that")
	fmt.Println("conflict under page mapping spread across banks — most effective")
	fmt.Println("when there are many banks to spread over (RDRAM: 32/chip).")
}
