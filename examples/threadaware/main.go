// Threadaware: the paper's core contribution (Section 3 / Figure 10) in
// miniature — compare FCFS, hit-first, and the three thread-aware memory
// access scheduling schemes on a memory-intensive mix.
//
// Expected shape (Section 5.5): hit-first beats plain FCFS; the thread-aware
// schemes (outstanding-request-based especially) add further gains on MEM
// mixes by serving the thread that will release the most processor resources.
package main

import (
	"fmt"
	"log"

	"smtdram"
)

func main() {
	mix, err := smtdram.MixByName("4-MEM")
	if err != nil {
		log.Fatal(err)
	}

	policies := []smtdram.SchedPolicy{
		smtdram.FCFS,
		smtdram.HitFirst,
		smtdram.AgeBased,
		smtdram.RequestBased,
		smtdram.ROBBased,
		smtdram.IQBased,
	}

	fmt.Printf("4-MEM (%v), 2-channel DDR, DWarn fetch\n\n", mix.Apps)
	fmt.Printf("%-14s %10s %10s %12s\n", "policy", "total IPC", "vs FCFS", "avg DRAM lat")

	var base float64
	for _, pol := range policies {
		cfg := smtdram.DefaultConfig(mix.Apps...)
		cfg.WarmupInstr, cfg.TargetInstr = 100_000, 100_000
		cfg.Mem.Policy = pol

		res, err := smtdram.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if pol == smtdram.FCFS {
			base = res.TotalIPC()
		}
		fmt.Printf("%-14v %10.3f %+9.1f%% %12.0f\n",
			pol, res.TotalIPC(), 100*(res.TotalIPC()/base-1), res.AvgReadLatency)
	}

	fmt.Println("\nThe thread-aware schemes piggyback each thread's outstanding-request")
	fmt.Println("count and ROB/IQ occupancy on its memory requests; the controller uses")
	fmt.Println("them to break ties below the hit-first and read-first rules.")
}
