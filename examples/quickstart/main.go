// Quickstart: run the paper's 2-MEM mix (mcf + ammp) on the default
// Table 1 machine and print the headline measurements.
package main

import (
	"fmt"
	"log"

	"smtdram"
)

func main() {
	// The default machine: 2-channel DDR SDRAM, XOR mapping, open page,
	// hit-first scheduling, DWarn fetch policy.
	cfg := smtdram.DefaultConfig("mcf", "ammp")
	cfg.WarmupInstr = 100_000 // cache warmup, like the paper's fast-forward
	cfg.TargetInstr = 200_000 // measured instructions per thread

	res, err := smtdram.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("2-MEM mix on the paper's baseline machine")
	for i, app := range res.Apps {
		fmt.Printf("  thread %d (%-5s): IPC %.3f, %d squashes\n",
			i, app, res.IPC[i], res.Squashes[i])
	}
	fmt.Printf("  total IPC          %.3f\n", res.TotalIPC())
	fmt.Printf("  DRAM reads         %.2f per 100 instructions\n", res.MemReadsPer100Inst)
	fmt.Printf("  avg read latency   %.0f cycles\n", res.AvgReadLatency)
	fmt.Printf("  row-buffer misses  %.1f%%\n", 100*res.RowBufferMissRate)

	// Weighted speedup needs single-thread baselines on the same machine.
	ws, _, err := smtdram.WeightedSpeedup(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  weighted speedup   %.3f (2.0 = no interference)\n", ws)
}
