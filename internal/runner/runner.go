// Package runner provides the bounded worker pool that fans independent
// simulations out across GOMAXPROCS goroutines. Every simulated machine is
// still one goroutine (the event.Queue contract: a Queue is single-threaded);
// the pool only exploits the parallelism *between* machines — the dozens of
// independent core.Run calls behind every figure of the paper's evaluation.
//
// Determinism contract: Submit returns a Future immediately, and results are
// consumed by Wait-ing futures in submission order on the submitting
// goroutine. Each simulation is a pure function of its Config (private
// event queue, private rng), so the assembled output is byte-identical to a
// sequential run regardless of the completion order of the workers. A pool
// with Jobs()==1 degenerates to lazy inline execution: each job runs on the
// submitting goroutine at its future's first Wait — exactly the pre-pool
// compute/collect interleaving, with no goroutines involved.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Pool bounds how many submitted jobs run concurrently.
type Pool struct {
	jobs int
	sem  chan struct{}
	// instr, when set, observes every pooled job's slot wait (submission →
	// worker-slot acquisition). See Instrument.
	instr func(name string, wait time.Duration)
}

// New builds a pool running up to jobs submissions concurrently. jobs < 1
// selects runtime.GOMAXPROCS(0). A 1-job pool runs each submission inline,
// deferred to its future's first Wait.
func New(jobs int) *Pool {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: jobs}
	if jobs > 1 {
		p.sem = make(chan struct{}, jobs)
	}
	return p
}

// Sequential is the inline-execution pool; each job runs on the submitting
// goroutine when its future is first Waited.
func Sequential() *Pool { return New(1) }

// NewPooled builds a pool that always runs submissions on worker goroutines,
// even at jobs == 1. The serving daemon needs this form: its futures are
// awaited from per-flight goroutines, so lazy inline execution — which
// assumes the submitting goroutine does the waiting, and whose Future is not
// safe for concurrent Waits — would both race and break the concurrency
// bound. jobs < 1 selects runtime.GOMAXPROCS(0).
func NewPooled(jobs int) *Pool {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	return &Pool{jobs: jobs, sem: make(chan struct{}, jobs)}
}

// Jobs reports the concurrency bound.
func (p *Pool) Jobs() int { return p.jobs }

// Instrument installs a queue-wait observer: fn fires on the worker goroutine
// the moment a pooled job acquires its slot, carrying the job's label and how
// long it sat queued behind the concurrency bound. The serving daemon feeds
// this into its pool-wait histogram. fn must be safe to call from many worker
// goroutines at once. Lazy (1-job) pools never queue, so fn never fires for
// them. Install before the first Submit; later installation races with
// in-flight jobs reading the hook.
func (p *Pool) Instrument(fn func(name string, wait time.Duration)) { p.instr = fn }

// Future is the pending result of one submitted job.
type Future[T any] struct {
	fn   func() (T, error) // non-nil: lazy (1-job pool), runs at first Wait
	done chan struct{}     // non-nil: running on a worker goroutine
	val  T
	err  error
}

// Wait returns the job's result, blocking until the worker finishes (pooled
// jobs) or running the job now (1-job pools, which defer execution to Wait so
// sequential mode interleaves compute and collection exactly like a plain
// loop). Wait may be called more than once; lazy futures must be awaited on
// the submitting goroutine, pooled futures from anywhere.
func (f *Future[T]) Wait() (T, error) {
	if f.fn != nil {
		fn := f.fn
		f.fn = nil
		f.val, f.err = fn()
	} else if f.done != nil {
		<-f.done
	}
	return f.val, f.err
}

// Resolved builds an already-completed future carrying v. The baseline memo
// uses it to hand out cached values through the same Wait interface.
func Resolved[T any](v T, err error) *Future[T] {
	return &Future[T]{val: v, err: err}
}

// PanicError is the error a Future carries when its job panicked. The panic
// is confined to that one future — the pool, the process, and every other
// submitted job keep running — and the error preserves everything needed to
// debug the crash offline: the job's label (drivers pass the config
// fingerprint), the panic value, and the goroutine stack at the panic site.
type PanicError struct {
	// Job is the label passed to SubmitNamed ("" for unnamed submissions).
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	job := e.Job
	if job == "" {
		job = "job"
	}
	return fmt.Sprintf("runner: %s panicked: %v\n%s", job, e.Value, e.Stack)
}

// guard runs fn, converting a panic into a *PanicError so one crashing
// simulation cannot take down a whole sweep. It covers both execution paths:
// pooled worker goroutines (where an unrecovered panic would kill the
// process) and lazy Wait-time execution on the submitting goroutine.
func guard[T any](name string, fn func() (T, error)) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Submit schedules fn on the pool and returns its future. On a 1-job pool fn
// is deferred until the future's first Wait (on the calling goroutine);
// otherwise it runs on a worker goroutine once a slot frees up. fn must not
// Wait on other futures of the same pool (a job waiting on an unscheduled job
// could deadlock a full pool); waiting belongs on the submitting goroutine.
// A panicking fn fails only its own future (see PanicError).
func Submit[T any](p *Pool, fn func() (T, error)) *Future[T] {
	return SubmitNamed(p, "", fn)
}

// SubmitNamed is Submit with a job label that identifies the submission in
// PanicError should fn crash. Drivers running many configurations pass each
// config's fingerprint so a panic names the exact run that died.
func SubmitNamed[T any](p *Pool, name string, fn func() (T, error)) *Future[T] {
	return SubmitNamedCtx(p, context.Background(), name, func(context.Context) (T, error) { return fn() })
}

// SubmitCtx is SubmitNamedCtx without a job label.
func SubmitCtx[T any](p *Pool, ctx context.Context, fn func(context.Context) (T, error)) *Future[T] {
	return SubmitNamedCtx(p, ctx, "", fn)
}

// SubmitNamedCtx schedules fn with a cancellation context. A job whose ctx is
// cancelled while it is still queued (waiting for a pool slot, or awaiting a
// lazy Wait) resolves to ctx.Err() without ever running fn, so abandoned work
// costs no CPU; a job already running receives ctx and is expected to observe
// the cancellation itself (core.Simulator.RunContext checks it at its
// watchdog boundaries). Cancellation never poisons the pool: the slot is
// released as usual and later submissions run normally.
func SubmitNamedCtx[T any](p *Pool, ctx context.Context, name string, fn func(context.Context) (T, error)) *Future[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	run := func() (T, error) {
		if err := ctx.Err(); err != nil {
			var zero T
			return zero, err
		}
		return guard(name, func() (T, error) { return fn(ctx) })
	}
	if p.sem == nil {
		return &Future[T]{fn: run}
	}
	f := &Future[T]{done: make(chan struct{})}
	queued := time.Now()
	go func() {
		select {
		case p.sem <- struct{}{}:
		case <-ctx.Done():
			f.err = ctx.Err()
			close(f.done)
			return
		}
		defer func() { <-p.sem }()
		if p.instr != nil {
			p.instr(name, time.Since(queued))
		}
		f.val, f.err = run()
		close(f.done)
	}()
	return f
}

// Memo is a concurrency-safe, single-flight memoization table: the first
// Get for a key submits the compute job, every later Get — concurrent or
// not — receives the same future. The figures package uses it to run each
// alone-IPC baseline exactly once per experiments invocation, no matter how
// many figures (or concurrent weighted-speedup jobs) need it; the server's
// result path uses it to collapse identical in-flight simulation requests
// into one run.
//
// Only successes stay cached. A fn that returns an error or panics is
// forgotten the moment it fails: concurrent Gets already holding the future
// still see the failure (that flight is shared), but a later Get with the
// same key re-executes instead of replaying a stale error forever.
// A Memo is unbounded by default; SetCap bounds it, evicting the
// least-recently-used *resolved* entry when an insertion overflows the cap.
// In-flight futures are never evicted (they represent running work whose
// waiters hold the future anyway), so a memo can transiently exceed its cap
// while more than cap flights are airborne.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*Future[V]
	// use is each key's last-touch stamp from clock, the LRU order.
	use   map[K]uint64
	clock uint64
	cap   int
	// evicted counts cap-driven removals over the memo's lifetime.
	evicted uint64
}

// SetCap bounds the memo to n entries with LRU eviction of resolved futures
// (n <= 0 restores the unbounded default). Safe to call at any time; an
// over-cap memo sheds entries on subsequent insertions, not immediately.
func (m *Memo[K, V]) SetCap(n int) {
	m.mu.Lock()
	m.cap = n
	m.mu.Unlock()
}

// Evictions reports how many entries the cap has evicted.
func (m *Memo[K, V]) Evictions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// resolvedForEvict reports whether the future has a value (or error) and no
// pending execution — the only state eviction may discard. Pooled futures
// answer via their done channel; lazy and pre-resolved futures via fn.
func (f *Future[T]) resolvedForEvict() bool {
	if f.done != nil {
		select {
		case <-f.done:
			return true
		default:
			return false
		}
	}
	return f.fn == nil
}

// evictLocked sheds least-recently-used resolved entries until the memo fits
// its cap. Caller holds m.mu.
func (m *Memo[K, V]) evictLocked() {
	for m.cap > 0 && len(m.m) > m.cap {
		var (
			victim    K
			victimUse uint64
			found     bool
		)
		for k, f := range m.m {
			if !f.resolvedForEvict() {
				continue
			}
			if u := m.use[k]; !found || u < victimUse {
				victim, victimUse, found = k, u, true
			}
		}
		if !found {
			return // everything in flight: stay over cap rather than drop work
		}
		delete(m.m, victim)
		delete(m.use, victim)
		m.evicted++
	}
}

// Get returns the future for key, submitting fn on p only on the first call.
func (m *Memo[K, V]) Get(p *Pool, key K, fn func() (V, error)) *Future[V] {
	f, _ := m.GetCtx(p, context.Background(), key, func(context.Context) (V, error) { return fn() })
	return f
}

// GetCtx is Get with a cancellation context for the submitted job and a
// report of whether this call started the flight (created) or joined an
// existing one — the daemon's dedup counter. The context belongs to the
// flight, not the caller: it is the first Get's ctx that governs the run, so
// callers sharing a flight must manage a joint context themselves (the server
// refcounts one per fingerprint).
func (m *Memo[K, V]) GetCtx(p *Pool, ctx context.Context, key K, fn func(context.Context) (V, error)) (f *Future[V], created bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.m == nil {
		m.m = make(map[K]*Future[V])
		m.use = make(map[K]uint64)
	}
	m.clock++
	if f, ok := m.m[key]; ok {
		m.use[key] = m.clock
		return f, false
	}
	f = SubmitCtx(p, ctx, func(ctx context.Context) (V, error) {
		defer func() {
			if r := recover(); r != nil {
				m.Forget(key) // panic = failure: do not cache (guard rethrows as PanicError)
				panic(r)
			}
		}()
		v, err := fn(ctx)
		if err != nil {
			m.Forget(key)
		}
		return v, err
	})
	m.m[key] = f
	m.use[key] = m.clock
	m.evictLocked()
	return f, true
}

// Forget drops key's entry so the next Get re-executes. The memo calls it
// itself on failures; long-lived callers (the serving daemon) also call it
// after migrating a completed value into a bounded cache so the memo tracks
// only in-flight work and cannot grow without bound.
func (m *Memo[K, V]) Forget(key K) {
	m.mu.Lock()
	delete(m.m, key)
	delete(m.use, key)
	m.mu.Unlock()
}

// Len reports how many entries (in-flight or cached successes) the memo holds.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
