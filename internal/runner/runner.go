// Package runner provides the bounded worker pool that fans independent
// simulations out across GOMAXPROCS goroutines. Every simulated machine is
// still one goroutine (the event.Queue contract: a Queue is single-threaded);
// the pool only exploits the parallelism *between* machines — the dozens of
// independent core.Run calls behind every figure of the paper's evaluation.
//
// Determinism contract: Submit returns a Future immediately, and results are
// consumed by Wait-ing futures in submission order on the submitting
// goroutine. Each simulation is a pure function of its Config (private
// event queue, private rng), so the assembled output is byte-identical to a
// sequential run regardless of the completion order of the workers. A pool
// with Jobs()==1 degenerates to lazy inline execution: each job runs on the
// submitting goroutine at its future's first Wait — exactly the pre-pool
// compute/collect interleaving, with no goroutines involved.
package runner

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// Pool bounds how many submitted jobs run concurrently.
type Pool struct {
	jobs int
	sem  chan struct{}
}

// New builds a pool running up to jobs submissions concurrently. jobs < 1
// selects runtime.GOMAXPROCS(0). A 1-job pool runs each submission inline,
// deferred to its future's first Wait.
func New(jobs int) *Pool {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	p := &Pool{jobs: jobs}
	if jobs > 1 {
		p.sem = make(chan struct{}, jobs)
	}
	return p
}

// Sequential is the inline-execution pool; each job runs on the submitting
// goroutine when its future is first Waited.
func Sequential() *Pool { return New(1) }

// Jobs reports the concurrency bound.
func (p *Pool) Jobs() int { return p.jobs }

// Future is the pending result of one submitted job.
type Future[T any] struct {
	fn   func() (T, error) // non-nil: lazy (1-job pool), runs at first Wait
	done chan struct{}     // non-nil: running on a worker goroutine
	val  T
	err  error
}

// Wait returns the job's result, blocking until the worker finishes (pooled
// jobs) or running the job now (1-job pools, which defer execution to Wait so
// sequential mode interleaves compute and collection exactly like a plain
// loop). Wait may be called more than once; lazy futures must be awaited on
// the submitting goroutine, pooled futures from anywhere.
func (f *Future[T]) Wait() (T, error) {
	if f.fn != nil {
		fn := f.fn
		f.fn = nil
		f.val, f.err = fn()
	} else if f.done != nil {
		<-f.done
	}
	return f.val, f.err
}

// Resolved builds an already-completed future carrying v. The baseline memo
// uses it to hand out cached values through the same Wait interface.
func Resolved[T any](v T, err error) *Future[T] {
	return &Future[T]{val: v, err: err}
}

// PanicError is the error a Future carries when its job panicked. The panic
// is confined to that one future — the pool, the process, and every other
// submitted job keep running — and the error preserves everything needed to
// debug the crash offline: the job's label (drivers pass the config
// fingerprint), the panic value, and the goroutine stack at the panic site.
type PanicError struct {
	// Job is the label passed to SubmitNamed ("" for unnamed submissions).
	Job string
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	job := e.Job
	if job == "" {
		job = "job"
	}
	return fmt.Sprintf("runner: %s panicked: %v\n%s", job, e.Value, e.Stack)
}

// guard runs fn, converting a panic into a *PanicError so one crashing
// simulation cannot take down a whole sweep. It covers both execution paths:
// pooled worker goroutines (where an unrecovered panic would kill the
// process) and lazy Wait-time execution on the submitting goroutine.
func guard[T any](name string, fn func() (T, error)) (val T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: name, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Submit schedules fn on the pool and returns its future. On a 1-job pool fn
// is deferred until the future's first Wait (on the calling goroutine);
// otherwise it runs on a worker goroutine once a slot frees up. fn must not
// Wait on other futures of the same pool (a job waiting on an unscheduled job
// could deadlock a full pool); waiting belongs on the submitting goroutine.
// A panicking fn fails only its own future (see PanicError).
func Submit[T any](p *Pool, fn func() (T, error)) *Future[T] {
	return SubmitNamed(p, "", fn)
}

// SubmitNamed is Submit with a job label that identifies the submission in
// PanicError should fn crash. Drivers running many configurations pass each
// config's fingerprint so a panic names the exact run that died.
func SubmitNamed[T any](p *Pool, name string, fn func() (T, error)) *Future[T] {
	if p.sem == nil {
		return &Future[T]{fn: func() (T, error) { return guard(name, fn) }}
	}
	f := &Future[T]{done: make(chan struct{})}
	go func() {
		p.sem <- struct{}{}
		defer func() { <-p.sem }()
		f.val, f.err = guard(name, fn)
		close(f.done)
	}()
	return f
}

// Memo is a concurrency-safe, single-flight memoization table: the first
// Get for a key submits the compute job, every later Get — concurrent or
// not — receives the same future. The figures package uses it to run each
// alone-IPC baseline exactly once per experiments invocation, no matter how
// many figures (or concurrent weighted-speedup jobs) need it.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*Future[V]
}

// Get returns the future for key, submitting fn on p only on the first call.
func (m *Memo[K, V]) Get(p *Pool, key K, fn func() (V, error)) *Future[V] {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.m == nil {
		m.m = make(map[K]*Future[V])
	}
	if f, ok := m.m[key]; ok {
		return f
	}
	f := Submit(p, fn)
	m.m[key] = f
	return f
}
