package runner

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestMemoCapEvictsLRU: with a cap installed, an overflowing insertion sheds
// the least-recently-*touched* resolved entry — a Get that joins a cached
// entry refreshes its recency — and eviction is observable both through the
// counter and through the evicted key recomputing on its next Get.
func TestMemoCapEvictsLRU(t *testing.T) {
	p := New(4)
	var memo Memo[string, int]
	memo.SetCap(2)

	var computes atomic.Int32
	get := func(key string) int {
		v, err := memo.Get(p, key, func() (int, error) {
			computes.Add(1)
			return len(key), nil
		}).Wait()
		if err != nil {
			t.Fatal(err)
		}
		return v
	}

	get("a")
	get("bb")
	get("a")   // touch: "bb" is now the LRU entry
	get("ccc") // overflow: evicts "bb"
	if got := memo.Evictions(); got != 1 {
		t.Fatalf("Evictions = %d, want 1", got)
	}
	if got := memo.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}

	before := computes.Load()
	if v := get("a"); v != 1 {
		t.Fatalf("a = %d", v)
	}
	if computes.Load() != before {
		t.Fatal("touched entry 'a' was evicted; LRU order ignores recency")
	}
	if v := get("bb"); v != 2 {
		t.Fatalf("bb = %d", v)
	}
	if computes.Load() != before+1 {
		t.Fatal("evicted entry 'bb' did not recompute")
	}
}

// TestMemoCapNeverEvictsInFlight: running work survives any cap pressure —
// the memo transiently exceeds its cap instead — and resolved entries around
// it are shed first.
func TestMemoCapNeverEvictsInFlight(t *testing.T) {
	p := NewPooled(2)
	var memo Memo[string, int]
	memo.SetCap(1)

	var release sync.WaitGroup
	release.Add(1)
	var flightRuns atomic.Int32
	inflight := memo.Get(p, "inflight", func() (int, error) {
		flightRuns.Add(1)
		release.Wait()
		return 10, nil
	})

	// A resolved entry lands next to the airborne one: over cap, but the
	// flight must not be the victim.
	if v, err := memo.Get(p, "resolved", func() (int, error) { return 20, nil }).Wait(); v != 20 || err != nil {
		t.Fatalf("resolved = %d, %v", v, err)
	}

	// Another insertion forces eviction; the only eligible victim is
	// "resolved".
	if v, err := memo.Get(p, "next", func() (int, error) { return 30, nil }).Wait(); v != 30 || err != nil {
		t.Fatalf("next = %d, %v", v, err)
	}
	if memo.Evictions() == 0 {
		t.Fatal("no eviction despite resolved entries over cap")
	}

	release.Done()
	if v, err := inflight.Wait(); v != 10 || err != nil {
		t.Fatalf("inflight = %d, %v", v, err)
	}
	// The in-flight entry is still cached: a later Get joins it.
	if v, err := memo.Get(p, "inflight", func() (int, error) { return -1, nil }).Wait(); v != 10 || err != nil {
		t.Fatalf("post-flight join = %d, %v", v, err)
	}
	if got := flightRuns.Load(); got != 1 {
		t.Fatalf("in-flight entry ran %d times; eviction touched running work", got)
	}
}

// TestMemoCapZeroIsUnbounded: the default (and an explicit SetCap(0)) never
// evicts.
func TestMemoCapZeroIsUnbounded(t *testing.T) {
	p := New(2)
	var memo Memo[int, int]
	memo.SetCap(0)
	for i := 0; i < 64; i++ {
		i := i
		if _, err := memo.Get(p, i, func() (int, error) { return i, nil }).Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if got := memo.Evictions(); got != 0 {
		t.Fatalf("unbounded memo evicted %d entries", got)
	}
	if got := memo.Len(); got != 64 {
		t.Fatalf("Len = %d, want 64", got)
	}
}

// TestMemoCapLoweredShedsOnNextInsert: SetCap is lazy by contract — an
// over-cap memo sheds down to its bound at the next insertion, not at SetCap.
func TestMemoCapLoweredShedsOnNextInsert(t *testing.T) {
	p := New(2)
	var memo Memo[int, int]
	for i := 0; i < 8; i++ {
		i := i
		memo.Get(p, i, func() (int, error) { return i, nil }).Wait()
	}
	memo.SetCap(3)
	if got := memo.Len(); got != 8 {
		t.Fatalf("SetCap evicted immediately: Len = %d, want 8", got)
	}
	memo.Get(p, 100, func() (int, error) { return 100, nil }).Wait()
	if got := memo.Len(); got != 3 {
		t.Fatalf("Len after overflow insert = %d, want 3", got)
	}
	if got := memo.Evictions(); got != 6 {
		t.Fatalf("Evictions = %d, want 6", got)
	}
}
