package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialRunsLazilyAtWait(t *testing.T) {
	p := Sequential()
	if p.Jobs() != 1 {
		t.Fatalf("Sequential pool has %d jobs", p.Jobs())
	}
	runs := 0
	f := Submit(p, func() (int, error) { runs++; return 7, nil })
	if runs != 0 {
		t.Fatal("1-job pool must defer execution to Wait")
	}
	v, err := f.Wait()
	if v != 7 || err != nil {
		t.Fatalf("Wait = %d, %v", v, err)
	}
	if _, _ = f.Wait(); runs != 1 {
		t.Fatalf("job ran %d times, want exactly once", runs)
	}
}

func TestDefaultJobsIsGOMAXPROCS(t *testing.T) {
	if New(0).Jobs() < 1 || New(-3).Jobs() < 1 {
		t.Fatal("jobs < 1 must clamp to a positive bound")
	}
}

func TestSubmissionOrderCollection(t *testing.T) {
	p := New(8)
	const n = 100
	futs := make([]*Future[int], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = Submit(p, func() (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return i * i, nil
		})
	}
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil || v != i*i {
			t.Fatalf("job %d: got %d, %v", i, v, err)
		}
	}
}

func TestConcurrencyBound(t *testing.T) {
	const bound = 3
	p := New(bound)
	var cur, peak int32
	var futs []*Future[struct{}]
	for i := 0; i < 20; i++ {
		futs = append(futs, Submit(p, func() (struct{}, error) {
			n := atomic.AddInt32(&cur, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&cur, -1)
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		f.Wait()
	}
	if got := atomic.LoadInt32(&peak); got > bound {
		t.Fatalf("observed %d concurrent jobs, bound %d", got, bound)
	}
}

func TestErrorPropagation(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	f := Submit(p, func() (string, error) { return "", boom })
	if _, err := f.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
}

func TestWaitIsReentrant(t *testing.T) {
	p := New(4)
	f := Submit(p, func() (int, error) { return 42, nil })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, _ := f.Wait(); v != 42 {
				t.Error("re-entrant Wait returned wrong value")
			}
		}()
	}
	wg.Wait()
	if v, _ := f.Wait(); v != 42 {
		t.Fatal("Wait after Waits returned wrong value")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	p := New(8)
	var memo Memo[string, int]
	var computes int32
	var futs []*Future[int]
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%d", i%4)
		futs = append(futs, memo.Get(p, key, func() (int, error) {
			atomic.AddInt32(&computes, 1)
			time.Sleep(time.Millisecond)
			return len(key), nil
		}))
	}
	for _, f := range futs {
		if v, err := f.Wait(); err != nil || v != 2 {
			t.Fatalf("memo Wait = %d, %v", v, err)
		}
	}
	if got := atomic.LoadInt32(&computes); got != 4 {
		t.Fatalf("computed %d times, want exactly 4 (one per key)", got)
	}
}

func TestResolved(t *testing.T) {
	f := Resolved(3.5, nil)
	if v, err := f.Wait(); v != 3.5 || err != nil {
		t.Fatalf("Resolved Wait = %v, %v", v, err)
	}
}

func TestPanickingJobFailsOnlyItsFuture(t *testing.T) {
	p := New(4)
	boom := SubmitNamed(p, "doomed-run", func() (int, error) {
		panic("injected test panic")
	})
	ok := Submit(p, func() (int, error) { return 7, nil })

	if v, err := ok.Wait(); err != nil || v != 7 {
		t.Fatalf("healthy future = %d, %v; a sibling panic must not touch it", v, err)
	}
	_, err := boom.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking future returned %v, want *PanicError", err)
	}
	if pe.Job != "doomed-run" || pe.Value != "injected test panic" {
		t.Fatalf("PanicError = job %q value %v", pe.Job, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "doomed-run") {
		t.Fatalf("PanicError missing stack or label: %v", err)
	}
	// The pool must still schedule work after absorbing a panic.
	if v, err := Submit(p, func() (int, error) { return 8, nil }).Wait(); err != nil || v != 8 {
		t.Fatalf("post-panic submission = %d, %v", v, err)
	}
}

func TestPanicRecoveryOnLazyPool(t *testing.T) {
	p := Sequential()
	f := Submit(p, func() (int, error) { panic(42) })
	_, err := f.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("lazy panicking future returned %v, want *PanicError", err)
	}
	if pe.Value != 42 {
		t.Fatalf("panic value = %v, want 42", pe.Value)
	}
	// Wait is idempotent: the second call replays the same error.
	if _, err2 := f.Wait(); err2 != err {
		t.Fatalf("second Wait = %v, want the cached %v", err2, err)
	}
}

func TestSubmitCtxCancelledWhileQueuedNeverRuns(t *testing.T) {
	p := New(2)
	// Occupy both slots so a third submission must queue.
	var release sync.WaitGroup
	release.Add(1)
	for i := 0; i < 2; i++ {
		Submit(p, func() (int, error) { release.Wait(); return 0, nil })
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Bool
	queued := SubmitCtx(p, ctx, func(context.Context) (int, error) {
		ran.Store(true)
		return 1, nil
	})
	cancel()
	if _, err := queued.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued job returned %v, want context.Canceled", err)
	}
	if ran.Load() {
		t.Fatal("cancelled queued job ran its fn")
	}
	release.Done()
	// The pool is not poisoned: later submissions still run.
	if v, err := Submit(p, func() (int, error) { return 9, nil }).Wait(); err != nil || v != 9 {
		t.Fatalf("post-cancel submission = %d, %v", v, err)
	}
}

func TestSubmitCtxCancelledOnLazyPool(t *testing.T) {
	p := Sequential()
	ctx, cancel := context.WithCancel(context.Background())
	var ran bool
	f := SubmitNamedCtx(p, ctx, "lazy", func(context.Context) (int, error) { ran = true; return 1, nil })
	cancel()
	if _, err := f.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("lazy cancelled job returned %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("lazy cancelled job ran its fn")
	}
}

func TestSubmitCtxPassesContextThrough(t *testing.T) {
	p := New(2)
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "here")
	f := SubmitCtx(p, ctx, func(ctx context.Context) (string, error) {
		v, _ := ctx.Value(key{}).(string)
		return v, nil
	})
	if v, err := f.Wait(); err != nil || v != "here" {
		t.Fatalf("fn saw ctx value %q, err %v", v, err)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	p := New(2)
	var memo Memo[string, int]
	var calls atomic.Int32
	boom := errors.New("flaky")
	fn := func() (int, error) {
		if calls.Add(1) == 1 {
			return 0, boom
		}
		return 42, nil
	}
	if _, err := memo.Get(p, "k", fn).Wait(); !errors.Is(err, boom) {
		t.Fatalf("first flight returned %v, want the injected error", err)
	}
	// The failure must not be cached: a later Get re-executes.
	if v, err := memo.Get(p, "k", fn).Wait(); err != nil || v != 42 {
		t.Fatalf("retry after error = %d, %v; want 42, nil", v, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("fn ran %d times, want 2", got)
	}
	// The success IS cached: a third Get does not re-execute.
	if v, err := memo.Get(p, "k", fn).Wait(); err != nil || v != 42 {
		t.Fatalf("cached success = %d, %v", v, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("fn ran %d times after success, want still 2", got)
	}
}

func TestMemoPanicNotCached(t *testing.T) {
	for _, jobs := range []int{1, 4} { // lazy and pooled execution paths
		p := New(jobs)
		var memo Memo[string, int]
		calls := 0
		var mu sync.Mutex
		fn := func() (int, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				panic("injected memo panic")
			}
			return 7, nil
		}
		_, err := memo.Get(p, "k", fn).Wait()
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("jobs=%d: first flight returned %v, want *PanicError", jobs, err)
		}
		if v, err := memo.Get(p, "k", fn).Wait(); err != nil || v != 7 {
			t.Fatalf("jobs=%d: retry after panic = %d, %v; want 7, nil", jobs, v, err)
		}
		if memo.Len() != 1 {
			t.Fatalf("jobs=%d: memo holds %d entries, want 1 cached success", jobs, memo.Len())
		}
	}
}

func TestMemoGetCtxReportsCreated(t *testing.T) {
	p := New(2)
	var memo Memo[string, int]
	var release sync.WaitGroup
	release.Add(1)
	f1, created := memo.GetCtx(p, context.Background(), "k", func(context.Context) (int, error) {
		release.Wait()
		return 3, nil
	})
	if !created {
		t.Fatal("first GetCtx must report created")
	}
	f2, created := memo.GetCtx(p, context.Background(), "k", func(context.Context) (int, error) { return 0, nil })
	if created {
		t.Fatal("second GetCtx must join the in-flight future")
	}
	if f1 != f2 {
		t.Fatal("joined flight returned a different future")
	}
	release.Done()
	if v, err := f2.Wait(); err != nil || v != 3 {
		t.Fatalf("joined flight = %d, %v", v, err)
	}
	memo.Forget("k")
	if memo.Len() != 0 {
		t.Fatalf("after Forget, memo holds %d entries", memo.Len())
	}
}

// TestInstrumentObservesSlotWait: the hook fires once per pooled job with its
// label, and a job queued behind a saturated pool reports a wait at least as
// long as the blocking job's runtime.
func TestInstrumentObservesSlotWait(t *testing.T) {
	p := NewPooled(1)
	var mu sync.Mutex
	waits := map[string]time.Duration{}
	p.Instrument(func(name string, wait time.Duration) {
		mu.Lock()
		waits[name] = wait
		mu.Unlock()
	})

	block := make(chan struct{})
	first := SubmitNamed(p, "holder", func() (int, error) {
		<-block
		return 1, nil
	})
	// Give the holder time to take the only slot, then queue behind it.
	time.Sleep(20 * time.Millisecond)
	second := SubmitNamed(p, "queued", func() (int, error) { return 2, nil })
	time.Sleep(30 * time.Millisecond)
	close(block)
	if _, err := first.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := second.Wait(); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 2 {
		t.Fatalf("hook fired for %d jobs, want 2: %v", len(waits), waits)
	}
	if waits["queued"] < 25*time.Millisecond {
		t.Fatalf("queued job waited %v, want at least the holder's 25ms+ occupancy", waits["queued"])
	}
	if waits["holder"] > 20*time.Millisecond {
		t.Fatalf("holder job reports %v slot wait on an empty pool", waits["holder"])
	}
}

// TestInstrumentNeverFiresOnLazyPools: a 1-job Sequential pool runs inline at
// Wait and has no queue, so the hook must stay silent.
func TestInstrumentNeverFiresOnLazyPools(t *testing.T) {
	p := Sequential()
	fired := atomic.Int32{}
	p.Instrument(func(string, time.Duration) { fired.Add(1) })
	f := Submit(p, func() (int, error) { return 3, nil })
	if v, err := f.Wait(); v != 3 || err != nil {
		t.Fatalf("Wait = %d, %v", v, err)
	}
	if fired.Load() != 0 {
		t.Fatalf("instrument hook fired %d times on a lazy pool", fired.Load())
	}
}
