package runner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSequentialRunsLazilyAtWait(t *testing.T) {
	p := Sequential()
	if p.Jobs() != 1 {
		t.Fatalf("Sequential pool has %d jobs", p.Jobs())
	}
	runs := 0
	f := Submit(p, func() (int, error) { runs++; return 7, nil })
	if runs != 0 {
		t.Fatal("1-job pool must defer execution to Wait")
	}
	v, err := f.Wait()
	if v != 7 || err != nil {
		t.Fatalf("Wait = %d, %v", v, err)
	}
	if _, _ = f.Wait(); runs != 1 {
		t.Fatalf("job ran %d times, want exactly once", runs)
	}
}

func TestDefaultJobsIsGOMAXPROCS(t *testing.T) {
	if New(0).Jobs() < 1 || New(-3).Jobs() < 1 {
		t.Fatal("jobs < 1 must clamp to a positive bound")
	}
}

func TestSubmissionOrderCollection(t *testing.T) {
	p := New(8)
	const n = 100
	futs := make([]*Future[int], n)
	for i := 0; i < n; i++ {
		i := i
		futs[i] = Submit(p, func() (int, error) {
			if i%7 == 0 {
				time.Sleep(time.Millisecond) // scramble completion order
			}
			return i * i, nil
		})
	}
	for i, f := range futs {
		v, err := f.Wait()
		if err != nil || v != i*i {
			t.Fatalf("job %d: got %d, %v", i, v, err)
		}
	}
}

func TestConcurrencyBound(t *testing.T) {
	const bound = 3
	p := New(bound)
	var cur, peak int32
	var futs []*Future[struct{}]
	for i := 0; i < 20; i++ {
		futs = append(futs, Submit(p, func() (struct{}, error) {
			n := atomic.AddInt32(&cur, 1)
			for {
				old := atomic.LoadInt32(&peak)
				if n <= old || atomic.CompareAndSwapInt32(&peak, old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			atomic.AddInt32(&cur, -1)
			return struct{}{}, nil
		}))
	}
	for _, f := range futs {
		f.Wait()
	}
	if got := atomic.LoadInt32(&peak); got > bound {
		t.Fatalf("observed %d concurrent jobs, bound %d", got, bound)
	}
}

func TestErrorPropagation(t *testing.T) {
	p := New(2)
	boom := errors.New("boom")
	f := Submit(p, func() (string, error) { return "", boom })
	if _, err := f.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait err = %v, want boom", err)
	}
}

func TestWaitIsReentrant(t *testing.T) {
	p := New(4)
	f := Submit(p, func() (int, error) { return 42, nil })
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if v, _ := f.Wait(); v != 42 {
				t.Error("re-entrant Wait returned wrong value")
			}
		}()
	}
	wg.Wait()
	if v, _ := f.Wait(); v != 42 {
		t.Fatal("Wait after Waits returned wrong value")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	p := New(8)
	var memo Memo[string, int]
	var computes int32
	var futs []*Future[int]
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("k%d", i%4)
		futs = append(futs, memo.Get(p, key, func() (int, error) {
			atomic.AddInt32(&computes, 1)
			time.Sleep(time.Millisecond)
			return len(key), nil
		}))
	}
	for _, f := range futs {
		if v, err := f.Wait(); err != nil || v != 2 {
			t.Fatalf("memo Wait = %d, %v", v, err)
		}
	}
	if got := atomic.LoadInt32(&computes); got != 4 {
		t.Fatalf("computed %d times, want exactly 4 (one per key)", got)
	}
}

func TestResolved(t *testing.T) {
	f := Resolved(3.5, nil)
	if v, err := f.Wait(); v != 3.5 || err != nil {
		t.Fatalf("Resolved Wait = %v, %v", v, err)
	}
}

func TestPanickingJobFailsOnlyItsFuture(t *testing.T) {
	p := New(4)
	boom := SubmitNamed(p, "doomed-run", func() (int, error) {
		panic("injected test panic")
	})
	ok := Submit(p, func() (int, error) { return 7, nil })

	if v, err := ok.Wait(); err != nil || v != 7 {
		t.Fatalf("healthy future = %d, %v; a sibling panic must not touch it", v, err)
	}
	_, err := boom.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking future returned %v, want *PanicError", err)
	}
	if pe.Job != "doomed-run" || pe.Value != "injected test panic" {
		t.Fatalf("PanicError = job %q value %v", pe.Job, pe.Value)
	}
	if len(pe.Stack) == 0 || !strings.Contains(err.Error(), "doomed-run") {
		t.Fatalf("PanicError missing stack or label: %v", err)
	}
	// The pool must still schedule work after absorbing a panic.
	if v, err := Submit(p, func() (int, error) { return 8, nil }).Wait(); err != nil || v != 8 {
		t.Fatalf("post-panic submission = %d, %v", v, err)
	}
}

func TestPanicRecoveryOnLazyPool(t *testing.T) {
	p := Sequential()
	f := Submit(p, func() (int, error) { panic(42) })
	_, err := f.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("lazy panicking future returned %v, want *PanicError", err)
	}
	if pe.Value != 42 {
		t.Fatalf("panic value = %v, want 42", pe.Value)
	}
	// Wait is idempotent: the second call replays the same error.
	if _, err2 := f.Wait(); err2 != err {
		t.Fatalf("second Wait = %v, want the cached %v", err2, err)
	}
}
