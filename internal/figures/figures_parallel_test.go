package figures

import (
	"bytes"
	"testing"
)

// renderSweep runs a representative slice of the figure sweeps (weighted
// speedups with shared baselines, raw-result runs, and the four-run CPI
// attribution) at the given job count, returning the rendered tables and the
// verbose progress stream separately.
func renderSweep(t *testing.T, jobs int) (tables, progress string) {
	t.Helper()
	var tbl, prog bytes.Buffer
	o := Options{Warmup: 1_000, Target: 1_000, Seed: 42, Jobs: jobs,
		Out: &prog, Baselines: map[string]float64{}}

	rows1, err := Fig1(o)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig1(&tbl, rows1)

	cells, err := Fig2(o)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig2(&tbl, cells)

	rows8, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	PrintMapping(&tbl, "Figure 8: row-buffer miss rates, 2-channel DDR", rows8)
	return tbl.String(), prog.String()
}

// TestJobsOutputByteIdentical is the determinism contract end to end: the
// parallel scheduler must reproduce the sequential figure output (and even
// the verbose progress lines) byte for byte.
func TestJobsOutputByteIdentical(t *testing.T) {
	seqTables, seqProgress := renderSweep(t, 1)
	parTables, parProgress := renderSweep(t, 8)
	if parTables != seqTables {
		t.Fatalf("-jobs 8 tables differ from -jobs 1:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			seqTables, parTables)
	}
	if parProgress != seqProgress {
		t.Fatalf("-jobs 8 progress differs from -jobs 1:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
			seqProgress, parProgress)
	}
}

// TestParallelFiguresRace exercises the pool, the baseline memo, and the
// shared Baselines map under concurrency; run with -race (CI does) to check
// the synchronization, not just the results.
func TestParallelFiguresRace(t *testing.T) {
	o := Options{Warmup: 1_000, Target: 1_000, Seed: 42, Jobs: 4,
		Baselines: map[string]float64{}}
	rows, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9 mixes", len(rows))
	}
	filled := len(o.Baselines)
	if filled == 0 {
		t.Fatal("parallel sweep left the baseline cache empty")
	}
	// A second sweep over the same mixes must reuse every cached baseline.
	if _, err := Fig6(o); err != nil {
		t.Fatal(err)
	}
	if len(o.Baselines) != filled {
		t.Fatalf("second sweep grew the baseline cache %d → %d", filled, len(o.Baselines))
	}
}
