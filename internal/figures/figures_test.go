package figures

import (
	"bytes"
	"strings"
	"testing"

	"smtdram/internal/core"
	"smtdram/internal/memctrl"
	"smtdram/internal/workload"
)

// tinyOpts keeps figure tests fast; shapes are asserted loosely.
func tinyOpts() Options {
	return Options{Warmup: 20_000, Target: 20_000, Seed: 42, Baselines: map[string]float64{}}
}

func TestPrintTable2(t *testing.T) {
	var buf bytes.Buffer
	PrintTable2(&buf)
	out := buf.String()
	for _, m := range workload.Mixes() {
		if !strings.Contains(out, m.Name) {
			t.Fatalf("table 2 output missing %s", m.Name)
		}
	}
}

func TestFig3ShapeHolds(t *testing.T) {
	// Reduced check on the 2-thread mixes only (fast): performance retained
	// versus infinite L3 must be high for ILP, low for MEM.
	// ILP apps need their stream pools warm, so this test uses a fuller
	// warmup than tinyOpts.
	o := Options{Warmup: 100_000, Target: 30_000, Seed: 42, Baselines: map[string]float64{}}
	var ilp, mem Fig3Row
	for _, mixName := range []string{"2-ILP", "2-MEM"} {
		m, _ := workload.MixByName(mixName)
		ref := o.baseConfig(m.Apps...)
		ref.PerfectL3 = true
		refWS, _, err := o.weightedSpeedup(ref)
		if err != nil {
			t.Fatal(err)
		}
		cfg := o.baseConfig(m.Apps...)
		ws, _, err := o.weightedSpeedup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		row := Fig3Row{Mix: mixName, RelDWarn: ws / refWS}
		if mixName == "2-ILP" {
			ilp = row
		} else {
			mem = row
		}
	}
	if ilp.RelDWarn < 0.85 {
		t.Fatalf("2-ILP retained only %.2f of infinite-L3 performance; paper: ≈99%%", ilp.RelDWarn)
	}
	if mem.RelDWarn > 0.7 {
		t.Fatalf("2-MEM retained %.2f: DRAM should be a major bottleneck", mem.RelDWarn)
	}
	if mem.RelDWarn >= ilp.RelDWarn {
		t.Fatal("MEM workloads must lose more to DRAM than ILP workloads")
	}
}

func TestFig4and5Shapes(t *testing.T) {
	o := tinyOpts()
	rows, err := Fig4and5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9 mixes", len(rows))
	}
	byMix := map[string]ConcurrencyRow{}
	for _, r := range rows {
		byMix[r.Mix] = r
		var sum float64
		for _, b := range r.Outstanding {
			sum += b.Frac
		}
		if sum > 1.0001 {
			t.Fatalf("%s: outstanding fractions sum to %v", r.Mix, sum)
		}
	}
	// MEM workloads must show more concurrency than ILP at equal threads.
	tail := func(r ConcurrencyRow) float64 {
		var s float64
		for _, b := range r.Outstanding[2:] { // 5-8, 9-16, >16
			s += b.Frac
		}
		return s
	}
	if tail(byMix["4-MEM"]) <= tail(byMix["4-ILP"]) {
		t.Fatalf("4-MEM concurrency (%.3f) not above 4-ILP (%.3f)",
			tail(byMix["4-MEM"]), tail(byMix["4-ILP"]))
	}
	// Fig 5: 4-MEM's concurrent requests should usually involve ≥2 threads.
	r := byMix["4-MEM"]
	if len(r.ThreadSpread) != 4 {
		t.Fatalf("4-MEM thread spread has %d entries", len(r.ThreadSpread))
	}
	multi := r.ThreadSpread[1] + r.ThreadSpread[2] + r.ThreadSpread[3]
	if multi < 0.5 {
		t.Fatalf("4-MEM multi-thread concurrency fraction %.3f, want > 0.5", multi)
	}

	var buf bytes.Buffer
	PrintFig4(&buf, rows)
	PrintFig5(&buf, rows)
	if !strings.Contains(buf.String(), "8-MEM") {
		t.Fatal("printed output incomplete")
	}
}

func TestFig6ChannelScalingShape(t *testing.T) {
	// 4-MEM only (fast): more channels must monotonically help.
	o := tinyOpts()
	m, _ := workload.MixByName("4-MEM")
	ws := map[int]float64{}
	for _, ch := range []int{2, 4, 8} {
		cfg := o.baseConfig(m.Apps...)
		cfg.Mem.PhysChannels = ch
		v, _, err := o.weightedSpeedup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws[ch] = v
	}
	// 8 channels must clearly beat 2; 4-vs-8 can be noisy at this scale
	// (returns diminish once bandwidth stops being the bottleneck).
	if ws[8] <= ws[2]*1.05 {
		t.Fatalf("8 channels WS %.3f not above 2 channels %.3f", ws[8], ws[2])
	}
	if ws[4] <= ws[2] {
		t.Fatalf("4 channels WS %.3f not above 2 channels %.3f", ws[4], ws[2])
	}
}

func TestFig8XORHelps(t *testing.T) {
	o := tinyOpts()
	m, _ := workload.MixByName("4-MEM")
	miss := map[string]float64{}
	for _, scheme := range []string{"page", "xor"} {
		cfg := o.baseConfig(m.Apps...)
		if scheme == "xor" {
			cfg.Mem.Scheme = 1 // addrmap.XOR
		} else {
			cfg.Mem.Scheme = 0 // addrmap.Page
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		miss[scheme] = res.RowBufferMissRate
	}
	if miss["xor"] > miss["page"]+0.03 {
		t.Fatalf("XOR (%.3f) should not be clearly worse than page (%.3f)", miss["xor"], miss["page"])
	}
}

func TestFig10PoliciesBeatFCFS(t *testing.T) {
	o := tinyOpts()
	m, _ := workload.MixByName("4-MEM")
	ws := map[memctrl.Policy]float64{}
	for _, pol := range []memctrl.Policy{memctrl.FCFS, memctrl.HitFirst, memctrl.RequestBased} {
		cfg := o.baseConfig(m.Apps...)
		cfg.Mem.Policy = pol
		v, _, err := o.weightedSpeedup(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ws[pol] = v
	}
	if ws[memctrl.HitFirst] <= ws[memctrl.FCFS] {
		t.Fatalf("hit-first (%.3f) must beat FCFS (%.3f) on 4-MEM", ws[memctrl.HitFirst], ws[memctrl.FCFS])
	}
	if ws[memctrl.RequestBased] <= ws[memctrl.FCFS] {
		t.Fatalf("request-based (%.3f) must beat FCFS (%.3f) on 4-MEM", ws[memctrl.RequestBased], ws[memctrl.FCFS])
	}
}

func TestBaselineCacheReused(t *testing.T) {
	o := tinyOpts()
	cfg := o.baseConfig("gzip", "bzip2")
	if _, _, err := o.weightedSpeedup(cfg); err != nil {
		t.Fatal(err)
	}
	n := len(o.Baselines)
	if n != 2 {
		t.Fatalf("cache has %d entries, want 2", n)
	}
	if _, _, err := o.weightedSpeedup(cfg); err != nil {
		t.Fatal(err)
	}
	if len(o.Baselines) != n {
		t.Fatal("second run should reuse cached baselines")
	}
}

func TestWSHelper(t *testing.T) {
	ws, res, err := WS(tinyOpts(), core.DefaultConfig("gzip", "bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 || res.TotalIPC() <= 0 {
		t.Fatal("WS helper returned empty results")
	}
}

func TestGangOrgString(t *testing.T) {
	if (GangOrg{8, 4}).String() != "8C-4G" {
		t.Fatalf("GangOrg string = %s", GangOrg{8, 4})
	}
	if len(Fig7Orgs()) != 8 {
		t.Fatalf("Fig7Orgs = %d organizations", len(Fig7Orgs()))
	}
}
