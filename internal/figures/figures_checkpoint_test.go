package figures

import (
	"context"
	"reflect"
	"runtime"
	"testing"

	"smtdram/internal/checkpoint"
	"smtdram/internal/core"
	"smtdram/internal/workload"
)

// TestFig6RowsIdenticalWithCheckpoints: a full figure regenerated through the
// warmup-checkpoint cache is identical to one computed plainly — the cache
// changes wall-clock time and nothing else. This is the figure-level face of
// core's checkpoint equivalence suite.
func TestFig6RowsIdenticalWithCheckpoints(t *testing.T) {
	mk := func(ckpts *checkpoint.Cache) []Fig6Row {
		o := Options{Warmup: 10_000, Target: 10_000, Seed: 42,
			Jobs: runtime.GOMAXPROCS(0), Checkpoints: ckpts}
		rows, err := Fig6(o)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	plain := mk(nil)
	ckpts := checkpoint.New()
	cached := mk(ckpts)
	if !reflect.DeepEqual(plain, cached) {
		t.Fatalf("checkpointed figure diverged\nplain:  %+v\ncached: %+v", plain, cached)
	}
	st := ckpts.Snapshot()
	if st.Misses == 0 || st.Forks == 0 {
		t.Fatalf("cache counters = %+v; the cached sweep never used the cache", st)
	}
	if st.Bypassed != 0 {
		t.Fatalf("cache counters = %+v; figure configs must all be checkpointable", st)
	}
}

// TestFig6SweepSimcyclesPerPoint pins the tentpole invariant at sweep-point
// granularity: across the standard Figure 6 grid (every mix × every channel
// count), a run forked from a warmup checkpoint reports exactly the simulated
// cycle count of an uninterrupted run, point by point. The summed total is
// logged for the CI checkpoint-smoke gate, which pins it the way bench-smoke
// pins 225974/968233.
func TestFig6SweepSimcyclesPerPoint(t *testing.T) {
	ctx := context.Background()
	ckpts := checkpoint.New()
	channels := []int{2, 4, 8}
	prefixes := map[string]bool{}
	var points int
	var total uint64
	for _, m := range workload.Mixes() {
		for _, ch := range channels {
			cfg := core.DefaultConfig(m.Apps...)
			cfg.WarmupInstr, cfg.TargetInstr, cfg.Seed = 10_000, 10_000, 42
			cfg.Mem.PhysChannels = ch
			prefixes[cfg.WarmupFingerprint()] = true

			cold, err := core.Run(cfg)
			if err != nil {
				t.Fatalf("%s/%dch cold: %v", m.Name, ch, err)
			}
			warm, err := ckpts.Run(ctx, cfg)
			if err != nil {
				t.Fatalf("%s/%dch warm: %v", m.Name, ch, err)
			}
			if cold.Cycles != warm.Cycles {
				t.Fatalf("%s/%dch: simcycles diverged: cold=%d warm=%d",
					m.Name, ch, cold.Cycles, warm.Cycles)
			}
			points++
			total += cold.Cycles
		}
	}
	st := ckpts.Snapshot()
	if st.Misses != uint64(len(prefixes)) || st.Forks != uint64(points) {
		t.Fatalf("cache counters = %+v, want %d misses and %d forks", st, len(prefixes), points)
	}
	t.Logf("fig6 sweep: %d points, total simcycles = %d", points, total)
}
