// Package figures regenerates every table and figure from the paper's
// evaluation (Section 5). Each FigN function runs the simulations behind the
// corresponding figure and returns the series; Print helpers render the same
// rows the paper reports. cmd/experiments and the root benchmark harness are
// thin wrappers around this package.
package figures

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"smtdram/internal/addrmap"
	"smtdram/internal/checkpoint"
	"smtdram/internal/core"
	"smtdram/internal/cpu"
	"smtdram/internal/memctrl"
	"smtdram/internal/report"
	"smtdram/internal/runner"
	"smtdram/internal/stats"
	"smtdram/internal/workload"
)

// Render is the output format used by the Print helpers (text by default;
// cmd/experiments sets it from -format).
var Render = report.Text

// Options controls the experiment runs.
type Options struct {
	// Warmup and Target are per-thread instruction counts (defaults 100k).
	Warmup, Target uint64
	// Seed drives the generators.
	Seed int64
	// Jobs bounds how many simulations run concurrently (the -jobs flag).
	// 0 and 1 both mean sequential execution on the calling goroutine.
	// Figure output is byte-identical for every value: runs are collected in
	// submission order and each simulation is a pure function of its Config.
	Jobs int
	// Out receives progress and tables; nil discards. With Jobs > 1 the
	// progress lines still appear in deterministic (submission) order.
	Out io.Writer
	// Baselines caches single-thread IPCs across figures. Keyed by a
	// config-derived string; safe to share within a process (the figures
	// guard it internally when Jobs > 1).
	Baselines map[string]float64
	// Configure, when non-nil, is applied to every machine configuration the
	// figures build (including weighted-speedup baseline runs) before it
	// runs. cmd/experiments uses it to attach the observability layer.
	// Configure itself is only invoked on the calling goroutine, but any
	// hooks it installs on the Config (e.g. Observe) fire on worker
	// goroutines when Jobs > 1 and must be safe for concurrent use.
	Configure func(*core.Config)
	// Checkpoints, when non-nil, memoizes warmup across runs: every
	// checkpointable simulation forks from a cached warmup-boundary machine
	// state instead of re-simulating its warmup prefix (DESIGN §15). Results
	// are byte-identical with or without it — the cache only changes
	// wall-clock time. Share one cache across figures (and processes, when it
	// is store-backed) to maximize reuse; nil disables memoization.
	Checkpoints *checkpoint.Cache
	// Ctx, when non-nil, cancels the sweep: simulations still queued on the
	// pool resolve to ctx.Err() without running, and running ones abort at
	// their next watchdog boundary, so a figure stops burning CPU shortly
	// after cancellation instead of finishing every remaining configuration.
	// The serving daemon threads its per-job context through here; nil means
	// run to completion.
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Warmup == 0 {
		o.Warmup = 100_000
	}
	if o.Target == 0 {
		o.Target = 100_000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Baselines == nil {
		o.Baselines = map[string]float64{}
	}
	if o.Ctx == nil {
		o.Ctx = context.Background()
	}
	return o
}

// baseConfig is the paper's default machine for a mix under these options.
func (o Options) baseConfig(apps ...string) core.Config {
	cfg := core.DefaultConfig(apps...)
	cfg.WarmupInstr = o.Warmup
	cfg.TargetInstr = o.Target
	cfg.Seed = o.Seed
	if o.Configure != nil {
		o.Configure(&cfg)
	}
	return cfg
}

// figRun is the orchestration context for one figure: the worker pool that
// fans independent simulations out, and the single-flight memo that backs the
// alone-IPC baseline cache. Every figure submits all of its runs up front and
// then Waits for them in submission order, so the assembled rows (and the
// progress lines) are byte-identical to a sequential sweep no matter how the
// workers interleave. Jobs <= 1 degenerates to lazy inline execution, which
// reproduces the pre-pool compute/print interleaving exactly.
type figRun struct {
	o    Options
	pool *runner.Pool
	memo runner.Memo[string, float64]
	mu   sync.Mutex // guards o.Baselines
}

func (o Options) newRun() *figRun {
	jobs := o.Jobs
	if jobs < 1 {
		jobs = 1
	}
	return &figRun{o: o, pool: runner.New(jobs)}
}

// submitRun schedules one simulation on the pool under the run's context.
// Runs route through the options' checkpoint cache (a nil cache runs plainly;
// either way the result bytes are identical).
func (r *figRun) submitRun(cfg core.Config) *runner.Future[core.Result] {
	return runner.SubmitNamedCtx(r.pool, r.o.Ctx, cfg.Fingerprint(), func(ctx context.Context) (core.Result, error) {
		return r.o.Checkpoints.Run(ctx, cfg)
	})
}

// baseline returns the future of app's single-thread IPC on the paper's
// *reference* machine (the default 2-channel DDR configuration). Values
// persist into Options.Baselines so later figures of the same invocation
// reuse them; within one figure the memo guarantees each baseline simulation
// is submitted at most once, however many mixes share the application.
func (r *figRun) baseline(app string) *runner.Future[float64] {
	key := fmt.Sprintf("%s|%d|%d|%d", app, r.o.Warmup, r.o.Target, r.o.Seed)
	r.mu.Lock()
	v, ok := r.o.Baselines[key]
	r.mu.Unlock()
	if ok {
		return runner.Resolved(v, nil)
	}
	ref := r.o.baseConfig(app) // the reference machine, always
	ref.Apps = []string{app}   // what RunAlone would simulate, checkpoint-aware
	f, _ := r.memo.GetCtx(r.pool, r.o.Ctx, key, func(ctx context.Context) (float64, error) {
		res, err := r.o.Checkpoints.Run(ctx, ref)
		if err != nil {
			return 0, err
		}
		v := res.IPC[0]
		r.mu.Lock()
		r.o.Baselines[key] = v
		r.mu.Unlock()
		return v, nil
	})
	return f
}

// wsJob is one in-flight weighted-speedup computation: the mix run plus the
// baseline futures for its applications.
type wsJob struct {
	run   *runner.Future[core.Result]
	alone []*runner.Future[float64]
}

// submitWS schedules cfg and its baselines on the pool. Neither the run nor
// the baselines Wait on each other inside pool jobs — all Waits happen in
// wsJob.Wait on the submitting goroutine, per the runner deadlock rule.
func (r *figRun) submitWS(cfg core.Config) wsJob {
	j := wsJob{
		run: r.submitRun(cfg),
	}
	for _, app := range cfg.Apps {
		j.alone = append(j.alone, r.baseline(app))
	}
	return j
}

// Wait assembles the weighted speedup against single-thread baselines
// measured on the reference machine. Fixing the denominator is what makes
// weighted speedups comparable across machine configurations — with
// per-config baselines, a memory-system improvement would inflate the
// denominator too and cancel itself out of every figure.
func (j wsJob) Wait() (float64, core.Result, error) {
	res, err := j.run.Wait()
	if err != nil {
		return 0, core.Result{}, err
	}
	alone := make([]float64, len(j.alone))
	for i, f := range j.alone {
		v, err := f.Wait()
		if err != nil {
			return 0, core.Result{}, err
		}
		alone[i] = v
	}
	ws, err := stats.WeightedSpeedup(res.IPC, alone)
	return ws, res, err
}

// weightedSpeedup is the single-run form of submitWS/Wait, kept for callers
// (and tests) that need one weighted speedup outside a figure sweep.
func (o Options) weightedSpeedup(cfg core.Config) (float64, core.Result, error) {
	return o.newRun().submitWS(cfg).Wait()
}

// ---------------------------------------------------------------- Table 2

// PrintTable2 renders the workload-mix catalog.
func PrintTable2(w io.Writer) {
	t := report.New("Table 2: workload mixes", "mix", "applications")
	for _, m := range workload.Mixes() {
		t.AddRow(m.Name, fmt.Sprintf("%v", m.Apps))
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figure 1

// Fig1Row is one application's CPI breakdown.
type Fig1Row struct {
	App string
	stats.Breakdown
}

// Fig1 reproduces the CPI breakdown of all 26 SPEC2000 applications on the
// 2-channel DDR system, via the paper's four-run attribution. All 4×26 runs
// are independent and fan out on the pool together.
func Fig1(o Options) ([]Fig1Row, error) {
	o = o.withDefaults()
	r := o.newRun()
	apps := workload.Names()
	jobs := make([][4]*runner.Future[float64], len(apps))
	for i, app := range apps {
		for k, cfg := range core.CPIBreakdownConfigs(o.baseConfig(app), app) {
			jobs[i][k] = runner.SubmitNamedCtx(r.pool, o.Ctx, cfg.Fingerprint(), func(ctx context.Context) (float64, error) {
				res, err := o.Checkpoints.Run(ctx, cfg)
				if err != nil {
					return 0, err
				}
				return 1 / res.IPC[0], nil
			})
		}
	}
	var rows []Fig1Row
	for i, app := range apps {
		var cpi [4]float64
		for k, f := range jobs[i] {
			v, err := f.Wait()
			if err != nil {
				return nil, fmt.Errorf("fig1 %s: %w", app, err)
			}
			cpi[k] = v
		}
		b := stats.NewBreakdown(cpi[0], cpi[1], cpi[2], cpi[3])
		rows = append(rows, Fig1Row{App: app, Breakdown: b})
		fmt.Fprintf(o.Out, "  fig1 %-9s done\n", app)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Mem < rows[j].Mem })
	return rows, nil
}

// PrintFig1 renders the breakdown sorted by CPImem, as in the paper.
func PrintFig1(w io.Writer, rows []Fig1Row) {
	t := report.New("Figure 1: CPI breakdown (sorted by CPImem)",
		"app", "CPIproc", "CPIL2", "CPIL3", "CPImem", "total")
	for _, r := range rows {
		t.AddRow(r.App, r.Proc, r.L2, r.L3, r.Mem, r.Total())
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figure 2

// Fig2Cell is one (mix, fetch policy) weighted speedup.
type Fig2Cell struct {
	Mix    string
	Policy cpu.FetchPolicy
	WS     float64
}

// Fig2 compares the four fetch policies on every Table 2 mix.
func Fig2(o Options) ([]Fig2Cell, error) {
	o = o.withDefaults()
	r := o.newRun()
	type job struct {
		mix string
		pol cpu.FetchPolicy
		ws  wsJob
	}
	var jobs []job
	for _, m := range workload.Mixes() {
		for _, pol := range cpu.FetchPolicies() {
			cfg := o.baseConfig(m.Apps...)
			cfg.CPU.Policy = pol
			jobs = append(jobs, job{m.Name, pol, r.submitWS(cfg)})
		}
	}
	var out []Fig2Cell
	for _, j := range jobs {
		ws, _, err := j.ws.Wait()
		if err != nil {
			return nil, fmt.Errorf("fig2 %s/%v: %w", j.mix, j.pol, err)
		}
		out = append(out, Fig2Cell{Mix: j.mix, Policy: j.pol, WS: ws})
		fmt.Fprintf(o.Out, "  fig2 %-6s %-12v WS=%.3f\n", j.mix, j.pol, ws)
	}
	return out, nil
}

// PrintFig2 renders the policy comparison.
func PrintFig2(w io.Writer, cells []Fig2Cell) {
	cols := []string{"mix"}
	for _, p := range cpu.FetchPolicies() {
		cols = append(cols, p.String())
	}
	t := report.New("Figure 2: weighted speedup of fetch policies (2-channel DDR)", cols...)
	byMix := map[string]map[cpu.FetchPolicy]float64{}
	var order []string
	for _, c := range cells {
		if byMix[c.Mix] == nil {
			byMix[c.Mix] = map[cpu.FetchPolicy]float64{}
			order = append(order, c.Mix)
		}
		byMix[c.Mix][c.Policy] = c.WS
	}
	for _, mix := range order {
		row := []interface{}{mix}
		for _, p := range cpu.FetchPolicies() {
			row = append(row, byMix[mix][p])
		}
		t.AddRow(row...)
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figure 3

// Fig3Row is one mix's performance relative to the infinite-L3 reference.
type Fig3Row struct {
	Mix string
	// RelICOUNT and RelDWarn are the fraction of the infinite-L3 system's
	// weighted speedup retained with the realistic 2-channel DRAM.
	RelICOUNT, RelDWarn float64
}

// Fig3 measures the performance loss due to main memory accesses under
// ICOUNT and DWarn, against a system with an infinitely large L3.
func Fig3(o Options) ([]Fig3Row, error) {
	o = o.withDefaults()
	r := o.newRun()
	pols := []cpu.FetchPolicy{cpu.ICOUNT, cpu.DWarn}
	type job struct {
		mix      string
		ref      wsJob
		policies [2]wsJob
	}
	var jobs []job
	for _, m := range workload.Mixes() {
		ref := o.baseConfig(m.Apps...)
		ref.CPU.Policy = cpu.ICOUNT
		ref.PerfectL3 = true
		j := job{mix: m.Name, ref: r.submitWS(ref)}
		for i, pol := range pols {
			cfg := o.baseConfig(m.Apps...)
			cfg.CPU.Policy = pol
			j.policies[i] = r.submitWS(cfg)
		}
		jobs = append(jobs, j)
	}
	var out []Fig3Row
	for _, j := range jobs {
		refWS, _, err := j.ref.Wait()
		if err != nil {
			return nil, fmt.Errorf("fig3 %s ref: %w", j.mix, err)
		}
		row := Fig3Row{Mix: j.mix}
		for i, pol := range pols {
			ws, _, err := j.policies[i].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig3 %s/%v: %w", j.mix, pol, err)
			}
			if pol == cpu.ICOUNT {
				row.RelICOUNT = ws / refWS
			} else {
				row.RelDWarn = ws / refWS
			}
		}
		out = append(out, row)
		fmt.Fprintf(o.Out, "  fig3 %-6s icount=%.1f%% dwarn=%.1f%%\n",
			j.mix, 100*row.RelICOUNT, 100*row.RelDWarn)
	}
	return out, nil
}

// PrintFig3 renders the relative-performance table.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	t := report.New("Figure 3: performance retained vs infinite L3 (ICOUNT reference)",
		"mix", "ICOUNT%", "DWarn%")
	for _, r := range rows {
		t.AddRow(r.Mix, 100*r.RelICOUNT, 100*r.RelDWarn)
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figures 4 & 5

// ConcurrencyRow holds one mix's concurrency distributions.
type ConcurrencyRow struct {
	Mix string
	// Outstanding buckets: 1, 2-4, 5-8, 9-16, >16 (fractions of busy time).
	Outstanding []stats.Bucket
	// ThreadSpread[k] is the fraction of ≥2-outstanding time during which
	// exactly k+1 threads had requests pending.
	ThreadSpread []float64
}

// Fig4and5 measures the outstanding-request distribution (Figure 4) and the
// number of threads generating concurrent requests (Figure 5).
func Fig4and5(o Options) ([]ConcurrencyRow, error) {
	o = o.withDefaults()
	r := o.newRun()
	mixes := workload.Mixes()
	futs := make([]*runner.Future[core.Result], len(mixes))
	for i, m := range mixes {
		cfg := o.baseConfig(m.Apps...)
		futs[i] = r.submitRun(cfg)
	}
	var out []ConcurrencyRow
	for i, m := range mixes {
		res, err := futs[i].Wait()
		if err != nil {
			return nil, fmt.Errorf("fig4/5 %s: %w", m.Name, err)
		}
		row := ConcurrencyRow{
			Mix:         m.Name,
			Outstanding: stats.Bucketize(res.OutstandingHist, []int{1, 4, 8, 16}),
		}
		var total uint64
		for _, v := range res.ThreadSpreadHist {
			total += v
		}
		for k := 1; k <= m.Threads(); k++ {
			var f float64
			if total > 0 {
				f = float64(res.ThreadSpreadHist[k]) / float64(total)
			}
			row.ThreadSpread = append(row.ThreadSpread, f)
		}
		out = append(out, row)
		fmt.Fprintf(o.Out, "  fig4/5 %-6s done\n", m.Name)
	}
	return out, nil
}

// PrintFig4 renders the outstanding-request distribution.
func PrintFig4(w io.Writer, rows []ConcurrencyRow) {
	if len(rows) == 0 {
		return
	}
	cols := []string{"mix"}
	for _, b := range rows[0].Outstanding {
		cols = append(cols, b.Label)
	}
	t := report.New("Figure 4: outstanding requests while DRAM busy (fraction of busy time)", cols...)
	for _, r := range rows {
		row := []interface{}{r.Mix}
		for _, b := range r.Outstanding {
			row = append(row, b.Frac)
		}
		t.AddRow(row...)
	}
	_ = t.Render(w, Render)
}

// PrintFig5 renders the thread-spread distribution.
func PrintFig5(w io.Writer, rows []ConcurrencyRow) {
	t := report.New("Figure 5: #threads generating concurrent requests (fraction of ≥2-outstanding time)",
		"mix", "by #threads (k=1..n)")
	for _, r := range rows {
		var cells string
		for _, f := range r.ThreadSpread {
			cells += fmt.Sprintf(" %.3f", f)
		}
		t.AddRow(r.Mix, cells)
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figure 6

// Fig6Row is one mix's weighted speedup versus channel count, normalized to
// the 2-channel system.
type Fig6Row struct {
	Mix  string
	Norm map[int]float64 // channels → WS / WS(2ch)
}

// Fig6 sweeps 2/4/8 independent channels.
func Fig6(o Options) ([]Fig6Row, error) {
	o = o.withDefaults()
	r := o.newRun()
	channels := []int{2, 4, 8}
	mixes := workload.Mixes()
	jobs := make([][3]wsJob, len(mixes))
	for i, m := range mixes {
		for k, ch := range channels {
			cfg := o.baseConfig(m.Apps...)
			cfg.Mem.PhysChannels = ch
			jobs[i][k] = r.submitWS(cfg)
		}
	}
	var out []Fig6Row
	for i, m := range mixes {
		row := Fig6Row{Mix: m.Name, Norm: map[int]float64{}}
		var base float64
		for k, ch := range channels {
			ws, _, err := jobs[i][k].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig6 %s/%dch: %w", m.Name, ch, err)
			}
			if ch == 2 {
				base = ws
			}
			row.Norm[ch] = ws / base
		}
		out = append(out, row)
		fmt.Fprintf(o.Out, "  fig6 %-6s 4ch=%.3f 8ch=%.3f\n", m.Name, row.Norm[4], row.Norm[8])
	}
	return out, nil
}

// PrintFig6 renders the channel sweep.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	t := report.New("Figure 6: weighted speedup vs channel count (normalized to 2 channels)",
		"mix", "2ch", "4ch", "8ch")
	for _, r := range rows {
		t.AddRow(r.Mix, r.Norm[2], r.Norm[4], r.Norm[8])
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figure 7

// GangOrg names a physical-channel/gang organization, e.g. 8C-4G.
type GangOrg struct{ Phys, Gang int }

func (g GangOrg) String() string { return fmt.Sprintf("%dC-%dG", g.Phys, g.Gang) }

// Fig7Orgs are the organizations the paper compares.
func Fig7Orgs() []GangOrg {
	return []GangOrg{{2, 1}, {2, 2}, {4, 1}, {4, 2}, {4, 4}, {8, 1}, {8, 2}, {8, 4}}
}

// Fig7Row is one mix's weighted speedups across channel organizations,
// normalized to 2C-1G.
type Fig7Row struct {
	Mix  string
	Norm map[GangOrg]float64
}

// fig7Mixes: ILP workloads are insensitive (Figure 6), so the paper omits
// them here.
func fig7Mixes() []workload.Mix {
	var out []workload.Mix
	for _, m := range workload.Mixes() {
		if m.Name[2:] != "ILP" {
			out = append(out, m)
		}
	}
	return out
}

// Fig7 compares clustering physical channels into logical ones.
func Fig7(o Options) ([]Fig7Row, error) {
	o = o.withDefaults()
	r := o.newRun()
	orgs := Fig7Orgs()
	mixes := fig7Mixes()
	jobs := make([][]wsJob, len(mixes))
	for i, m := range mixes {
		for _, org := range orgs {
			cfg := o.baseConfig(m.Apps...)
			cfg.Mem.PhysChannels = org.Phys
			cfg.Mem.Gang = org.Gang
			jobs[i] = append(jobs[i], r.submitWS(cfg))
		}
	}
	var out []Fig7Row
	for i, m := range mixes {
		row := Fig7Row{Mix: m.Name, Norm: map[GangOrg]float64{}}
		var base float64
		for k, org := range orgs {
			ws, _, err := jobs[i][k].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig7 %s/%v: %w", m.Name, org, err)
			}
			if org == (GangOrg{2, 1}) {
				base = ws
			}
			row.Norm[org] = ws / base
		}
		out = append(out, row)
		fmt.Fprintf(o.Out, "  fig7 %-6s done\n", m.Name)
	}
	return out, nil
}

// PrintFig7 renders the ganging comparison.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	cols := []string{"mix"}
	for _, org := range Fig7Orgs() {
		cols = append(cols, org.String())
	}
	t := report.New("Figure 7: channel organizations (normalized to 2C-1G)", cols...)
	for _, r := range rows {
		row := []interface{}{r.Mix}
		for _, org := range Fig7Orgs() {
			row = append(row, r.Norm[org])
		}
		t.AddRow(row...)
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figures 8 & 9

// MappingRow is one mix's row-buffer miss rates under the two mapping
// schemes.
type MappingRow struct {
	Mix      string
	PageMiss float64
	XORMiss  float64
}

// figMapping runs the page-vs-XOR comparison on the given DRAM kind.
func figMapping(o Options, kind core.DRAMKind) ([]MappingRow, error) {
	o = o.withDefaults()
	r := o.newRun()
	schemes := []addrmap.Scheme{addrmap.Page, addrmap.XOR}
	mixes := fig7Mixes() // MEM and MIX mixes, like the paper
	jobs := make([][2]*runner.Future[core.Result], len(mixes))
	for i, m := range mixes {
		for k, scheme := range schemes {
			cfg := o.baseConfig(m.Apps...)
			cfg.Mem.Kind = kind
			cfg.Mem.Scheme = scheme
			jobs[i][k] = r.submitRun(cfg)
		}
	}
	var out []MappingRow
	for i, m := range mixes {
		row := MappingRow{Mix: m.Name}
		for k, scheme := range schemes {
			res, err := jobs[i][k].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig8/9 %s/%v/%v: %w", m.Name, kind, scheme, err)
			}
			if scheme == addrmap.Page {
				row.PageMiss = res.RowBufferMissRate
			} else {
				row.XORMiss = res.RowBufferMissRate
			}
		}
		out = append(out, row)
		fmt.Fprintf(o.Out, "  fig8/9 %-6s %v page=%.3f xor=%.3f\n", m.Name, kind, row.PageMiss, row.XORMiss)
	}
	return out, nil
}

// Fig8 compares mapping schemes on the 2-channel DDR SDRAM system.
func Fig8(o Options) ([]MappingRow, error) { return figMapping(o, core.DDR) }

// Fig9 compares mapping schemes on the 2-channel Direct Rambus system.
func Fig9(o Options) ([]MappingRow, error) { return figMapping(o, core.RDRAM) }

// PrintMapping renders a Figure 8/9 table.
func PrintMapping(w io.Writer, title string, rows []MappingRow) {
	t := report.New(title, "mix", "page", "xor")
	for _, r := range rows {
		t.AddRow(r.Mix, r.PageMiss, r.XORMiss)
	}
	_ = t.Render(w, Render)
}

// ---------------------------------------------------------------- Figure 10

// Fig10Cell is one (mix, scheduling policy) weighted speedup, normalized to
// FCFS.
type Fig10Cell struct {
	Mix    string
	Policy memctrl.Policy
	WS     float64
	Norm   float64
}

// Fig10 compares the six access-scheduling policies.
func Fig10(o Options) ([]Fig10Cell, error) {
	o = o.withDefaults()
	r := o.newRun()
	pols := memctrl.Policies()
	mixes := fig7Mixes()
	jobs := make([][]wsJob, len(mixes))
	for i, m := range mixes {
		for _, pol := range pols {
			cfg := o.baseConfig(m.Apps...)
			cfg.Mem.Policy = pol
			jobs[i] = append(jobs[i], r.submitWS(cfg))
		}
	}
	var out []Fig10Cell
	for i, m := range mixes {
		var base float64
		for k, pol := range pols {
			ws, _, err := jobs[i][k].Wait()
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%v: %w", m.Name, pol, err)
			}
			if pol == memctrl.FCFS {
				base = ws
			}
			out = append(out, Fig10Cell{Mix: m.Name, Policy: pol, WS: ws, Norm: ws / base})
			fmt.Fprintf(o.Out, "  fig10 %-6s %-14v WS=%.3f (%.3f× FCFS)\n", m.Name, pol, ws, ws/base)
		}
	}
	return out, nil
}

// PrintFig10 renders the scheduling comparison.
func PrintFig10(w io.Writer, cells []Fig10Cell) {
	cols := []string{"mix"}
	for _, p := range memctrl.Policies() {
		cols = append(cols, p.String())
	}
	t := report.New("Figure 10: access scheduling policies (weighted speedup, ×FCFS)", cols...)
	byMix := map[string]map[memctrl.Policy]float64{}
	var order []string
	for _, c := range cells {
		if byMix[c.Mix] == nil {
			byMix[c.Mix] = map[memctrl.Policy]float64{}
			order = append(order, c.Mix)
		}
		byMix[c.Mix][c.Policy] = c.Norm
	}
	for _, mix := range order {
		row := []interface{}{mix}
		for _, p := range memctrl.Policies() {
			row = append(row, byMix[mix][p])
		}
		t.AddRow(row...)
	}
	_ = t.Render(w, Render)
}

// WS exposes the options' cached weighted-speedup computation for external
// harnesses (the root benchmark suite).
func WS(o Options, cfg core.Config) (float64, core.Result, error) {
	o = o.withDefaults()
	cfg.WarmupInstr, cfg.TargetInstr, cfg.Seed = o.Warmup, o.Target, o.Seed
	return o.weightedSpeedup(cfg)
}
