package faults

import (
	"strings"
	"testing"
)

func TestParseEmptySpecIsNilPlan(t *testing.T) {
	p, err := Parse("  ")
	if err != nil || p != nil {
		t.Fatalf("Parse(blank) = %v, %v; want nil, nil", p, err)
	}
	if !p.Empty() {
		t.Fatal("nil plan must be Empty")
	}
	if NewInjector(p) != nil {
		t.Fatal("nil plan must build a nil injector")
	}
}

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("bitflip:rate=1e-6,seed=7;channel-fail:ch=1,at=2000000;drop:rate=1e-7;stuckrow:ch=0,bank=1,row=42")
	if err != nil {
		t.Fatal(err)
	}
	if p.BitFlipRate != 1e-6 || p.DropRate != 1e-7 || p.Seed != 7 {
		t.Fatalf("rates/seed = %g/%g/%d", p.BitFlipRate, p.DropRate, p.Seed)
	}
	if p.ChannelFail == nil || p.ChannelFail.Channel != 1 || p.ChannelFail.At != 2000000 {
		t.Fatalf("channel-fail = %+v", p.ChannelFail)
	}
	want := StuckRow{Channel: 0, Chip: 0, Bank: 1, Row: 42}
	if len(p.Stuck) != 1 || p.Stuck[0] != want {
		t.Fatalf("stuck = %+v", p.Stuck)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"frobnicate:rate=1",     // unknown clause
		"bitflip:rate=abc",      // bad float
		"bitflip:rate=1,oops=2", // unknown key
		"bitflip:rate",          // not key=value
		"channel-fail:ch=0",     // missing at=
		"stuckrow:row=1",        // missing ch=
		"channel-fail:ch=0,at=1;channel-fail:ch=1,at=2", // duplicate
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	p, err := Parse("drop:rate=0.25;bitflip:rate=0.5,seed=9;stuckrow:ch=1,row=3;channel-fail:ch=0,at=500")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if p2.String() != p.String() {
		t.Fatalf("round trip changed the plan: %q -> %q", p.String(), p2.String())
	}
	if p2.Seed != 9 || p2.BitFlipRate != 0.5 || p2.DropRate != 0.25 || p2.ChannelFail == nil {
		t.Fatalf("round trip lost fields: %+v", p2)
	}
}

func TestValidate(t *testing.T) {
	if err := (&Plan{BitFlipRate: 2}).Validate(2); err == nil {
		t.Error("rate > 1 accepted")
	}
	if err := (&Plan{BitFlipRate: 0.6, DropRate: 0.6}).Validate(2); err == nil {
		t.Error("rates summing past 1 accepted")
	}
	if err := (&Plan{ChannelFail: &ChannelFail{Channel: 2, At: 5}}).Validate(2); err == nil {
		t.Error("out-of-range failing channel accepted")
	}
	if err := (&Plan{ChannelFail: &ChannelFail{Channel: 0, At: 5}}).Validate(1); err == nil {
		t.Error("channel-fail with no survivor accepted")
	}
	if err := (&Plan{Stuck: []StuckRow{{Channel: 5}}}).Validate(2); err == nil {
		t.Error("out-of-range stuck channel accepted")
	}
	ok := &Plan{BitFlipRate: 1e-6, DropRate: 1e-7, Seed: 3,
		Stuck:       []StuckRow{{Channel: 1, Bank: 2, Row: 7}},
		ChannelFail: &ChannelFail{Channel: 1, At: 100}}
	if err := ok.Validate(2); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	plan := &Plan{BitFlipRate: 0.3, DropRate: 0.1, Seed: 42}
	a, b := NewInjector(plan), NewInjector(plan)
	for i := 0; i < 10_000; i++ {
		fa := a.OnRead(0, 0, i%4, uint64(i))
		fb := b.OnRead(0, 0, i%4, uint64(i))
		if fa != fb {
			t.Fatalf("read %d: %v vs %v with identical seeds", i, fa, fb)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.Total() != a.Stats.BitFlips+a.Stats.MultiBit+a.Stats.Drops {
		t.Fatal("Total does not sum the classes")
	}
}

func TestInjectorRates(t *testing.T) {
	in := NewInjector(&Plan{BitFlipRate: 0.5, DropRate: 0.25, Seed: 1})
	const n = 100_000
	for i := 0; i < n; i++ {
		in.OnRead(0, 0, 0, uint64(i))
	}
	flip := float64(in.Stats.BitFlips) / n
	drop := float64(in.Stats.Drops) / n
	if flip < 0.48 || flip > 0.52 {
		t.Errorf("bit-flip rate %.3f far from 0.5", flip)
	}
	if drop < 0.23 || drop > 0.27 {
		t.Errorf("drop rate %.3f far from 0.25", drop)
	}
}

func TestStuckRowAlwaysFaults(t *testing.T) {
	in := NewInjector(&Plan{Stuck: []StuckRow{{Channel: 1, Chip: 0, Bank: 2, Row: 9}}})
	for i := 0; i < 100; i++ {
		if f := in.OnRead(1, 0, 2, 9); f != FaultMultiBit {
			t.Fatalf("stuck row read %d: %v", i, f)
		}
		if f := in.OnRead(1, 0, 2, 10); f != FaultNone {
			t.Fatalf("healthy row read %d: %v", i, f)
		}
	}
	if in.Stats.MultiBit != 100 {
		t.Fatalf("MultiBit = %d, want 100", in.Stats.MultiBit)
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if f := in.OnRead(0, 0, 0, 0); f != FaultNone {
		t.Fatalf("nil injector injected %v", f)
	}
	if ch, at := in.ChannelFailAt(); ch != -1 || at != 0 {
		t.Fatalf("nil injector reports failover (%d, %d)", ch, at)
	}
	if in.Plan() != nil {
		t.Fatal("nil injector has a plan")
	}
}

func TestChannelFailAt(t *testing.T) {
	in := NewInjector(&Plan{ChannelFail: &ChannelFail{Channel: 1, At: 777}})
	ch, at := in.ChannelFailAt()
	if ch != 1 || at != 777 {
		t.Fatalf("ChannelFailAt = (%d, %d)", ch, at)
	}
}

func TestSeedChangesStream(t *testing.T) {
	mk := func(seed uint64) string {
		in := NewInjector(&Plan{BitFlipRate: 0.5, Seed: seed})
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			if in.OnRead(0, 0, 0, uint64(i)) == FaultSingleBit {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		return sb.String()
	}
	if mk(1) == mk(2) {
		t.Fatal("different seeds produced identical fault streams")
	}
}

// TestParseEdgeCases covers the spec-grammar corners a hand-typed -faults
// flag actually hits: stray separators, duplicate keys within a clause,
// malformed and overflowing numbers, and empty keys.
func TestParseEdgeCases(t *testing.T) {
	// Whitespace, empty clauses, and mixed case are tolerated.
	for _, spec := range []string{
		";;bitflip:rate=1e-6;;",
		"  BitFlip : rate=1e-6  ",
		"bitflip:rate=1e-6;\n drop:rate=1e-7",
	} {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v, want success", spec, err)
		}
	}

	for _, tc := range []struct {
		spec, wantSub string
	}{
		{"bitflip:rate=1e-6,rate=1e-3", "duplicate key"},
		{"stuckrow:ch=0,CH=1,row=1", "duplicate key"},
		{"bitflip:=1e-6", "empty key"},
		{"drop:rate=", "invalid syntax"},
		{"drop:rate=1e", "invalid syntax"},
		{"stuckrow:ch=0,row=-1", "invalid syntax"}, // row is unsigned
		{"stuckrow:ch=0,row=99999999999999999999", "value out of range"},
		{"channel-fail:ch=zero,at=1", "invalid syntax"},
		{"seed:v=-3", "invalid syntax"},
		{"bitflip:rate=1e-6,seed=1.5", "invalid syntax"},
	} {
		_, err := Parse(tc.spec)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.spec, err, tc.wantSub)
		}
	}
}

// TestValidateRanges pins the range checks the CLI relies on for exit-2 flag
// validation: channels and rows beyond the machine shape must be rejected.
func TestValidateRanges(t *testing.T) {
	if err := (&Plan{Stuck: []StuckRow{{Channel: -1}}}).Validate(4); err == nil {
		t.Error("negative stuck channel accepted")
	}
	if err := (&Plan{Stuck: []StuckRow{{Channel: 0, Chip: -2}}}).Validate(4); err == nil {
		t.Error("negative chip accepted")
	}
	if err := (&Plan{ChannelFail: &ChannelFail{Channel: -1, At: 5}}).Validate(4); err == nil {
		t.Error("negative failing channel accepted")
	}
	if err := (&Plan{ChannelFail: &ChannelFail{Channel: 1, At: 0}}).Validate(4); err == nil {
		t.Error("channel-fail at cycle 0 accepted")
	}
	if err := (&Plan{BitFlipRate: -0.1}).Validate(4); err == nil {
		t.Error("negative bitflip rate accepted")
	}
	if err := (&Plan{DropRate: 1.1}).Validate(4); err == nil {
		t.Error("drop rate above 1 accepted")
	}
}
