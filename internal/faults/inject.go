package faults

import "fmt"

// Fault classifies what (if anything) the injector did to one DRAM read.
type Fault int

const (
	// FaultNone: the read completed clean.
	FaultNone Fault = iota
	// FaultSingleBit: a transient single-bit flip — SEC-DED corrects it.
	FaultSingleBit
	// FaultMultiBit: a multi-bit (stuck-at) error — SEC-DED detects it but
	// cannot correct; the controller must retry or give up.
	FaultMultiBit
	// FaultDrop: the request's data was lost in the controller; the
	// controller must retry.
	FaultDrop
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSingleBit:
		return "single-bit"
	case FaultMultiBit:
		return "multi-bit"
	case FaultDrop:
		return "drop"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Stats counts what the injector actually injected. The accounting contract
// is exact: every injected fault receives one disposition downstream
// (corrected, uncorrected, or dropped-retried), so
//
//	BitFlips + MultiBit + Drops == corrected + uncorrected + dropped.
type Stats struct {
	// BitFlips is the number of transient single-bit flips injected.
	BitFlips uint64
	// MultiBit is the number of reads that hit a stuck row.
	MultiBit uint64
	// Drops is the number of requests whose data was discarded.
	Drops uint64
}

// Total is the number of fault events injected.
func (s Stats) Total() uint64 { return s.BitFlips + s.MultiBit + s.Drops }

// Injector executes a Plan. It is built once per simulation and consumed
// single-threaded (the simulator's event loop), drawing exactly one random
// per read so the fault stream is a pure function of (plan, read order) —
// which is itself deterministic — and therefore identical across runs and
// at any -jobs value.
type Injector struct {
	plan  *Plan
	rng   uint64
	stuck map[StuckRow]struct{}

	// Stats counts injected faults by class.
	Stats Stats
}

// NewInjector builds an injector for the plan; a nil or empty plan returns
// nil, and a nil *Injector injects nothing.
func NewInjector(p *Plan) *Injector {
	if p.Empty() {
		return nil
	}
	seed := p.Seed
	if seed == 0 {
		seed = 1
	}
	in := &Injector{plan: p, rng: seed}
	if len(p.Stuck) > 0 {
		in.stuck = make(map[StuckRow]struct{}, len(p.Stuck))
		for _, s := range p.Stuck {
			in.stuck[s] = struct{}{}
		}
	}
	return in
}

// Plan returns the injector's plan (nil for a nil injector).
func (in *Injector) Plan() *Plan {
	if in == nil {
		return nil
	}
	return in.plan
}

// ChannelFailAt returns the channel-fail clause's (channel, cycle), or
// (-1, 0) when the plan has none.
func (in *Injector) ChannelFailAt() (channel int, at uint64) {
	if in == nil || in.plan.ChannelFail == nil {
		return -1, 0
	}
	return in.plan.ChannelFail.Channel, in.plan.ChannelFail.At
}

// next is a splitmix64 step: a full-period, statistically strong 64-bit
// generator in three lines, with no shared state and no allocation.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// nextFloat returns a uniform draw in [0, 1).
func (in *Injector) nextFloat() float64 {
	return float64(in.next()>>11) / (1 << 53)
}

// OnRead decides the fate of one DRAM read of (channel, chip, bank, row).
// Stuck rows always fault; otherwise one uniform draw selects drop, bit
// flip, or a clean read. Nil-safe.
func (in *Injector) OnRead(channel, chip, bank int, row uint64) Fault {
	if in == nil {
		return FaultNone
	}
	if in.stuck != nil {
		if _, ok := in.stuck[StuckRow{Channel: channel, Chip: chip, Bank: bank, Row: row}]; ok {
			in.Stats.MultiBit++
			return FaultMultiBit
		}
	}
	if in.plan.DropRate == 0 && in.plan.BitFlipRate == 0 {
		return FaultNone
	}
	p := in.nextFloat()
	switch {
	case p < in.plan.DropRate:
		in.Stats.Drops++
		return FaultDrop
	case p < in.plan.DropRate+in.plan.BitFlipRate:
		in.Stats.BitFlips++
		return FaultSingleBit
	default:
		return FaultNone
	}
}
