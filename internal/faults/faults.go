// Package faults is the deterministic fault-injection subsystem: a Plan
// (parsed from the -faults CLI spec) describes which DRAM-system faults a run
// should experience, and an Injector executes the plan with a seeded
// generator so that two runs of the same spec are byte-identical.
//
// Four fault classes are modeled, matching where real memory systems degrade:
//
//   - bitflip: transient single-bit flips on DRAM reads (cosmic-ray upsets),
//     correctable by SEC-DED ECC;
//   - stuckrow: a hard stuck-at fault pinned to one DRAM row — every read of
//     it returns a multi-bit error, which SEC-DED detects but cannot correct;
//   - drop: requests lost inside the controller (timeout/CRC-fail on the
//     link), recovered by bounded retry with exponential backoff;
//   - channel-fail: a whole channel dies at a given cycle; traffic fails
//     over to the surviving channels via the degraded address remap.
//
// The spec grammar is semicolon-separated clauses of comma-separated k=v
// pairs, e.g.:
//
//	bitflip:rate=1e-6,seed=7;channel-fail:ch=1,at=2000000;drop:rate=1e-7
//	stuckrow:ch=0,chip=0,bank=1,row=42;bitflip:rate=1e-5
//
// The package is a leaf below dram/memctrl/core: it imports nothing from the
// simulator, so every layer can consume a Plan or an Injector.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// StuckRow pins a permanent multi-bit fault to one DRAM row.
type StuckRow struct {
	Channel, Chip, Bank int
	Row                 uint64
}

// ChannelFail kills a whole logical channel at a given cycle.
type ChannelFail struct {
	// Channel is the logical channel index that dies.
	Channel int
	// At is the cycle the failure strikes.
	At uint64
}

// Plan is a parsed fault-injection specification. The zero Plan injects
// nothing; a nil *Plan disables the subsystem entirely (and is what every
// fault-free run carries, so the hot path pays only nil checks).
type Plan struct {
	// BitFlipRate is the per-read probability of a transient single-bit
	// flip (ECC-correctable).
	BitFlipRate float64
	// DropRate is the per-read probability that the request's data is lost
	// in the controller and must be retried.
	DropRate float64
	// Seed drives the injector's generator (default 1).
	Seed uint64
	// Stuck lists permanently faulty rows (reads are ECC-uncorrectable).
	Stuck []StuckRow
	// ChannelFail, when non-nil, is the hard channel failure.
	ChannelFail *ChannelFail
}

// Empty reports whether the plan injects nothing.
func (p *Plan) Empty() bool {
	return p == nil || (p.BitFlipRate == 0 && p.DropRate == 0 &&
		len(p.Stuck) == 0 && p.ChannelFail == nil)
}

// Validate checks the plan against the machine it will run on. channels is
// the logical channel count of the DRAM system.
func (p *Plan) Validate(channels int) error {
	if p == nil {
		return nil
	}
	if p.BitFlipRate < 0 || p.BitFlipRate > 1 {
		return fmt.Errorf("faults: bitflip rate %g outside [0,1]", p.BitFlipRate)
	}
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("faults: drop rate %g outside [0,1]", p.DropRate)
	}
	if p.BitFlipRate+p.DropRate > 1 {
		return fmt.Errorf("faults: bitflip rate %g + drop rate %g exceeds 1", p.BitFlipRate, p.DropRate)
	}
	for _, s := range p.Stuck {
		if s.Channel < 0 || s.Channel >= channels {
			return fmt.Errorf("faults: stuck row channel %d out of range (%d channels)", s.Channel, channels)
		}
		if s.Chip < 0 || s.Bank < 0 {
			return fmt.Errorf("faults: negative stuck row location %+v", s)
		}
	}
	if f := p.ChannelFail; f != nil {
		if f.Channel < 0 || f.Channel >= channels {
			return fmt.Errorf("faults: failing channel %d out of range (%d channels)", f.Channel, channels)
		}
		if channels < 2 {
			return fmt.Errorf("faults: cannot fail channel %d of a %d-channel system (no survivor to fail over to)", f.Channel, channels)
		}
		if f.At == 0 {
			return fmt.Errorf("faults: channel-fail cycle must be positive")
		}
	}
	return nil
}

// String renders the plan in canonical spec form (clauses in a fixed order),
// suitable for labels and round-tripping through Parse.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.BitFlipRate > 0 {
		parts = append(parts, fmt.Sprintf("bitflip:rate=%g", p.BitFlipRate))
	}
	if p.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop:rate=%g", p.DropRate))
	}
	stuck := append([]StuckRow(nil), p.Stuck...)
	sort.Slice(stuck, func(i, j int) bool {
		a, b := stuck[i], stuck[j]
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		if a.Bank != b.Bank {
			return a.Bank < b.Bank
		}
		return a.Row < b.Row
	})
	for _, s := range stuck {
		parts = append(parts, fmt.Sprintf("stuckrow:ch=%d,chip=%d,bank=%d,row=%d", s.Channel, s.Chip, s.Bank, s.Row))
	}
	if f := p.ChannelFail; f != nil {
		parts = append(parts, fmt.Sprintf("channel-fail:ch=%d,at=%d", f.Channel, f.At))
	}
	if p.Seed != 0 && p.Seed != 1 {
		parts = append(parts, fmt.Sprintf("seed:v=%d", p.Seed))
	}
	return strings.Join(parts, ";")
}

// Parse builds a Plan from a -faults spec. An empty spec returns (nil, nil):
// no plan, no injection, no overhead.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &Plan{Seed: 1}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		kind, rest, _ := strings.Cut(clause, ":")
		kind = strings.ToLower(strings.TrimSpace(kind))
		kv, err := parseKV(kind, rest)
		if err != nil {
			return nil, err
		}
		switch kind {
		case "bitflip":
			if p.BitFlipRate, err = kv.rate("rate"); err != nil {
				return nil, err
			}
			if err := kv.seed(p); err != nil {
				return nil, err
			}
		case "drop":
			if p.DropRate, err = kv.rate("rate"); err != nil {
				return nil, err
			}
			if err := kv.seed(p); err != nil {
				return nil, err
			}
		case "stuckrow":
			var s StuckRow
			if s.Channel, err = kv.num("ch"); err != nil {
				return nil, err
			}
			s.Chip, _ = kv.numDefault("chip", 0)
			s.Bank, _ = kv.numDefault("bank", 0)
			row, err := kv.u64("row")
			if err != nil {
				return nil, err
			}
			s.Row = row
			p.Stuck = append(p.Stuck, s)
		case "channel-fail":
			if p.ChannelFail != nil {
				return nil, fmt.Errorf("faults: more than one channel-fail clause")
			}
			var f ChannelFail
			if f.Channel, err = kv.num("ch"); err != nil {
				return nil, err
			}
			if f.At, err = kv.u64("at"); err != nil {
				return nil, err
			}
			p.ChannelFail = &f
		case "seed":
			if err := kv.seed(p); err != nil {
				return nil, err
			}
			if v, ok := kv.m["v"]; ok {
				s, err := strconv.ParseUint(v, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("faults: seed %q: %v", v, err)
				}
				p.Seed = s
				delete(kv.m, "v")
			}
		default:
			return nil, fmt.Errorf("faults: unknown clause %q (want bitflip, drop, stuckrow, channel-fail, or seed)", kind)
		}
		if err := kv.leftover(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// kvSet is one clause's key=value pairs; accessors delete consumed keys so
// leftover() can reject typos.
type kvSet struct {
	clause string
	m      map[string]string
}

func parseKV(clause, rest string) (*kvSet, error) {
	kv := &kvSet{clause: clause, m: map[string]string{}}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %s: %q is not key=value", clause, pair)
		}
		key := strings.ToLower(strings.TrimSpace(k))
		if key == "" {
			return nil, fmt.Errorf("faults: %s: %q has an empty key", clause, pair)
		}
		// Reject duplicates instead of silently taking the last value: a spec
		// like rate=1e-6,rate=1e-3 is almost certainly an editing mistake.
		if _, dup := kv.m[key]; dup {
			return nil, fmt.Errorf("faults: %s: duplicate key %q", clause, key)
		}
		kv.m[key] = strings.TrimSpace(v)
	}
	return kv, nil
}

func (kv *kvSet) rate(key string) (float64, error) {
	v, ok := kv.m[key]
	if !ok {
		return 0, fmt.Errorf("faults: %s: missing %s=", kv.clause, key)
	}
	delete(kv.m, key)
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %s=%q: %v", kv.clause, key, v, err)
	}
	return f, nil
}

func (kv *kvSet) num(key string) (int, error) {
	v, ok := kv.m[key]
	if !ok {
		return 0, fmt.Errorf("faults: %s: missing %s=", kv.clause, key)
	}
	delete(kv.m, key)
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %s=%q: %v", kv.clause, key, v, err)
	}
	return n, nil
}

func (kv *kvSet) numDefault(key string, def int) (int, error) {
	if _, ok := kv.m[key]; !ok {
		return def, nil
	}
	return kv.num(key)
}

func (kv *kvSet) u64(key string) (uint64, error) {
	v, ok := kv.m[key]
	if !ok {
		return 0, fmt.Errorf("faults: %s: missing %s=", kv.clause, key)
	}
	delete(kv.m, key)
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("faults: %s: %s=%q: %v", kv.clause, key, v, err)
	}
	return n, nil
}

// seed consumes an optional seed= key (allowed in any clause; last one wins).
func (kv *kvSet) seed(p *Plan) error {
	v, ok := kv.m["seed"]
	if !ok {
		return nil
	}
	delete(kv.m, "seed")
	s, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return fmt.Errorf("faults: %s: seed=%q: %v", kv.clause, v, err)
	}
	p.Seed = s
	return nil
}

func (kv *kvSet) leftover() error {
	for k := range kv.m {
		return fmt.Errorf("faults: %s: unknown key %q", kv.clause, k)
	}
	return nil
}
