package mem

import "testing"

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("Kind strings: %v %v", Read, Write)
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind must print")
	}
}

func TestIsRead(t *testing.T) {
	r := Request{Kind: Read}
	w := Request{Kind: Write}
	if !r.IsRead() || w.IsRead() {
		t.Fatal("IsRead wrong")
	}
}

func TestThreadStateZeroValue(t *testing.T) {
	var r Request
	if r.State.Outstanding != 0 || r.State.ROBOccupancy != 0 || r.State.IQOccupancy != 0 {
		t.Fatal("zero request must carry zero thread state")
	}
}
