// Package mem defines the request types exchanged between the cache
// hierarchy and the DRAM memory controller, including the thread-state
// information that the paper's thread-aware scheduling schemes piggyback on
// each request.
package mem

import "fmt"

// Kind distinguishes memory-controller request types.
type Kind uint8

const (
	// Read is a cache-line fill (demand miss from the L3).
	Read Kind = iota
	// Write is a dirty-line writeback from the L3.
	Write
)

func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// InvalidThread marks requests, such as writebacks, that are not attributed
// to any hardware thread for scheduling purposes.
const InvalidThread = -1

// ThreadState is the processor-side state snapshot piggybacked on a request
// when the cache miss is sent to the memory controller. The paper notes the
// controller's view may be slightly stale; the schemes are heuristic and
// tolerate that, so a snapshot at miss time is exactly what is modeled.
type ThreadState struct {
	// Outstanding is the number of main-memory requests the thread had
	// pending when this request was generated (including this one).
	Outstanding int
	// ROBOccupancy is the number of reorder-buffer entries the thread held.
	ROBOccupancy int
	// IQOccupancy is the number of integer issue-queue entries the thread
	// held (the paper uses the integer queue: it has the higher occupancy).
	IQOccupancy int
}

// Request is one 64-byte line transfer requested from the DRAM system.
type Request struct {
	// ID is a simulator-unique identifier, assigned by the issuer.
	ID uint64
	// Addr is the physical byte address of the line.
	Addr uint64
	// Kind says whether this is a line fill or a writeback.
	Kind Kind
	// Thread is the hardware-thread that caused the request, or
	// InvalidThread for writebacks.
	Thread int
	// Critical marks demand requests the processor is stalled on.
	Critical bool
	// Arrive is the cycle the request entered the memory controller queue;
	// the controller fills it in.
	Arrive uint64
	// State is the piggybacked thread-state snapshot (see ThreadState).
	State ThreadState
	// OnComplete, if non-nil, fires when the last data beat of the line has
	// transferred. For writes this fires when the write has been issued to
	// the DRAM; nobody usually waits on it.
	OnComplete func(now uint64)
	// Src, when set by the issuer, points back at the issuer-owned wrapper
	// that carries this request. It is opaque to the controller; the snapshot
	// codec uses it to name in-flight requests the controller only holds as
	// *Request.
	Src any
}

// IsRead reports whether the request is a line fill.
func (r *Request) IsRead() bool { return r.Kind == Read }

// Controller is the interface the cache hierarchy uses to hand requests to
// the DRAM subsystem.
type Controller interface {
	// Enqueue accepts a request, returning false when the controller queue
	// for the request's channel is full; the caller must retry later.
	Enqueue(now uint64, r *Request) bool
}
