package cache

// Snapshot/Restore for the cache hierarchy (DESIGN §15): each Level
// serializes its line arrays, LRU clock, MSHR file (including waiter
// references), writeback buffer, and prefetch state; the MemBackend
// serializes its retry buffer and request-ID counter. References to pending
// completions are encoded as typed snap.Refs and resolved back to live
// objects by the core resolver at restore time.

import (
	"fmt"
	"sort"

	"smtdram/internal/event"
	"smtdram/internal/mem"
	"smtdram/internal/snap"
)

const (
	sectionLevel   = 0x4C56454C // "LEVL"
	sectionBackend = 0x4D454D42 // "BMEM"
)

// SetSnapID names the level for snapshot references. The core assigns stable
// IDs at assembly (0=l1i, 1=l1d, 2=l2, 3=l3); levels outside a Simulator
// never snapshot, so their zero ID is unused.
func (l *Level) SetSnapID(id uint8) { l.snapID = id }

func metaArgs(m Meta) []uint64 {
	return []uint64{
		snap.Zig(int64(m.Thread)), boolArg(m.Critical),
		snap.Zig(int64(m.State.Outstanding)),
		snap.Zig(int64(m.State.ROBOccupancy)),
		snap.Zig(int64(m.State.IQOccupancy)),
	}
}

func metaFromArgs(a []uint64) (Meta, error) {
	if len(a) != 5 {
		return Meta{}, fmt.Errorf("%w: meta needs 5 args, got %d", snap.ErrCorrupt, len(a))
	}
	return Meta{
		Thread:   int(snap.Unzig(a[0])),
		Critical: a[1] != 0,
		State: mem.ThreadState{
			Outstanding:  int(snap.Unzig(a[2])),
			ROBOccupancy: int(snap.Unzig(a[3])),
			IQOccupancy:  int(snap.Unzig(a[4])),
		},
	}, nil
}

func writeMeta(w *snap.Writer, m Meta) {
	for _, a := range metaArgs(m) {
		w.U64(a)
	}
}

func readMeta(r *snap.Reader) Meta {
	m, _ := metaFromArgs([]uint64{r.U64(), r.U64(), r.U64(), r.U64(), r.U64()})
	return m
}

// fillerRef encodes a pending completion carrier, failing on carriers the
// codec cannot name (test closures wrapped in event.FillFunc).
func fillerRef(f event.Filler) (snap.Ref, error) {
	rm, ok := f.(event.RefMaker)
	if !ok {
		return snap.Ref{}, fmt.Errorf("%w: fill carrier %T has no SnapRef", snap.ErrUnsupported, f)
	}
	return rm.SnapRef(), nil
}

// Snapshot serializes the level's mutable state. The configuration is not
// written: restore targets a level built from an identical Config (enforced
// upstream by the warmup-prefix fingerprint).
func (l *Level) Snapshot(w *snap.Writer) error {
	w.Marker(sectionLevel)
	w.U8(l.snapID)
	w.U64(l.tick)
	w.U64(l.Stats.Accesses)
	w.U64(l.Stats.Misses)
	w.U64(l.Stats.Merged)
	w.U64(l.Stats.Writebacks)
	w.U64(l.Stats.MSHRFull)
	w.U64(l.Prefetch.Issued)
	w.U64(l.Prefetch.Useful)
	w.U64(l.Prefetch.Late)
	w.U64(l.Prefetch.Dropped)

	w.U64(uint64(len(l.pendingWB)))
	for _, e := range l.pendingWB {
		w.U64(e.addr)
		writeMeta(w, e.meta)
	}

	w.U64(uint64(l.pfInFlight))
	pf := make([]uint64, 0, len(l.pfPending))
	for la := range l.pfPending {
		pf = append(pf, la)
	}
	sort.Slice(pf, func(i, j int) bool { return pf[i] < pf[j] })
	w.U64(uint64(len(pf)))
	for _, la := range pf {
		w.U64(la)
	}

	w.Bool(l.cfg.Perfect)
	if !l.cfg.Perfect {
		for _, set := range l.sets {
			for _, ln := range set {
				w.U64(ln.tag)
				w.Bool(ln.valid)
				w.Bool(ln.dirty)
				w.Bool(ln.prefetched)
				w.U64(ln.used)
			}
		}
	}

	addrs := make([]uint64, 0, len(l.mshrs))
	for a := range l.mshrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	w.U64(uint64(len(addrs)))
	for _, a := range addrs {
		m := l.mshrs[a]
		w.U64(m.addr)
		w.Bool(m.dirty)
		w.Bool(m.issued)
		writeMeta(w, m.meta)
		w.U64(uint64(len(m.waiters)))
		for _, wt := range m.waiters {
			ref, err := fillerRef(wt)
			if err != nil {
				return fmt.Errorf("level %s mshr %#x: %w", l.cfg.Name, m.addr, err)
			}
			w.Ref(&ref)
		}
	}
	return nil
}

// Restore rebuilds the level's mutable state from r. MSHRs are recreated
// first (so queue restoration can resolve references to them); their waiter
// references resolve through resolve, which must already cover the CPU and
// any level above this one — the core restores top-down.
func (l *Level) Restore(r *snap.Reader, resolve event.Resolver) error {
	r.Expect(sectionLevel)
	if id := r.U8(); r.Err() == nil && id != l.snapID {
		return fmt.Errorf("%w: level snapshot for id %d, restoring into %d", snap.ErrCorrupt, id, l.snapID)
	}
	l.tick = r.U64()
	l.Stats = Stats{
		Accesses:   r.U64(),
		Misses:     r.U64(),
		Merged:     r.U64(),
		Writebacks: r.U64(),
		MSHRFull:   r.U64(),
	}
	l.Prefetch = prefetchStats{
		Issued:  r.U64(),
		Useful:  r.U64(),
		Late:    r.U64(),
		Dropped: r.U64(),
	}

	l.pendingWB = l.pendingWB[:0]
	nWB := r.U64()
	for i := uint64(0); i < nWB && r.Err() == nil; i++ {
		l.pendingWB = append(l.pendingWB, wbEntry{addr: r.U64(), meta: readMeta(r)})
	}

	l.pfInFlight = int(r.U64())
	for la := range l.pfPending {
		delete(l.pfPending, la)
	}
	nPf := r.U64()
	for i := uint64(0); i < nPf && r.Err() == nil; i++ {
		l.pfPending[r.U64()] = struct{}{}
	}

	perfect := r.Bool()
	if r.Err() == nil && perfect != l.cfg.Perfect {
		return fmt.Errorf("%w: snapshot perfect=%v, level perfect=%v", snap.ErrCorrupt, perfect, l.cfg.Perfect)
	}
	if !l.cfg.Perfect {
		for si := range l.sets {
			set := l.sets[si]
			for wi := range set {
				set[wi] = line{
					tag:        r.U64(),
					valid:      r.Bool(),
					dirty:      r.Bool(),
					prefetched: r.Bool(),
					used:       r.U64(),
				}
			}
		}
	}

	for a, m := range l.mshrs {
		l.releaseMSHR(m)
		delete(l.mshrs, a)
	}
	nM := r.U64()
	for i := uint64(0); i < nM; i++ {
		m := l.getMSHR()
		m.addr = r.U64()
		m.dirty = r.Bool()
		m.issued = r.Bool()
		m.meta = readMeta(r)
		nw := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		for j := uint64(0); j < nw; j++ {
			ref := r.Ref()
			if err := r.Err(); err != nil {
				return err
			}
			obj, err := resolve(ref, event.RoleFiller)
			if err != nil {
				return fmt.Errorf("level %s mshr %#x waiter: %w", l.cfg.Name, m.addr, err)
			}
			f, ok := obj.(event.Filler)
			if !ok {
				return fmt.Errorf("%w: mshr waiter resolved to %T", snap.ErrCorrupt, obj)
			}
			m.waiters = append(m.waiters, f)
		}
		l.mshrs[m.addr] = m
	}
	return r.Err()
}

// ResolveRef maps a cache-kind reference back to this level's live object.
func (l *Level) ResolveRef(ref *snap.Ref) (any, error) {
	switch ref.Kind {
	case snap.KCacheMSHR:
		if len(ref.Args) != 2 {
			return nil, fmt.Errorf("%w: mshr ref needs 2 args", snap.ErrCorrupt)
		}
		m, ok := l.mshrs[ref.Args[1]]
		if !ok {
			return nil, fmt.Errorf("%w: no mshr for line %#x in %s", snap.ErrCorrupt, ref.Args[1], l.cfg.Name)
		}
		return m, nil
	case snap.KCacheWBRetry:
		return &l.wbretry, nil
	case snap.KCachePfIssue:
		if len(ref.Args) != 7 {
			return nil, fmt.Errorf("%w: prefetch-issue ref needs 7 args", snap.ErrCorrupt)
		}
		m, err := metaFromArgs(ref.Args[2:])
		if err != nil {
			return nil, err
		}
		return &pfIssue{l: l, la: ref.Args[1], meta: m}, nil
	case snap.KCachePfFill:
		if len(ref.Args) != 2 {
			return nil, fmt.Errorf("%w: prefetch-fill ref needs 2 args", snap.ErrCorrupt)
		}
		return &pfFill{l: l, la: ref.Args[1]}, nil
	default:
		return nil, fmt.Errorf("%w: ref kind %d is not a cache kind", snap.ErrCorrupt, ref.Kind)
	}
}

// Snapshot serializes the backend's retry buffer and ID counter.
func (b *MemBackend) Snapshot(w *snap.Writer) error {
	w.Marker(sectionBackend)
	w.U64(b.nextID)
	w.U64(uint64(len(b.pending)))
	for _, req := range b.pending {
		rm, ok := req.Src.(event.RefMaker)
		if !ok {
			return fmt.Errorf("%w: pending request %d has no source wrapper", snap.ErrUnsupported, req.ID)
		}
		ref := rm.SnapRef()
		w.Ref(&ref)
	}
	return nil
}

// Restore rebuilds the backend's retry buffer. It also arms the restore-time
// request memo that ResolveRef uses, so every reference to one in-flight
// request (the controller's queue entry, this retry buffer) resolves to the
// same wrapper; the core calls FinishRestore once the whole machine is back.
func (b *MemBackend) Restore(r *snap.Reader, resolve event.Resolver) error {
	b.restoreReqs = make(map[uint64]*pooledReq)
	for i := range b.pending {
		b.pending[i] = nil
	}
	b.pending = b.pending[:0]
	r.Expect(sectionBackend)
	b.nextID = r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		ref := r.Ref()
		if err := r.Err(); err != nil {
			return err
		}
		obj, err := resolve(ref, event.RoleHandler)
		if err != nil {
			return fmt.Errorf("backend pending %d: %w", i, err)
		}
		req, ok := obj.(*mem.Request)
		if !ok {
			return fmt.Errorf("%w: pending entry resolved to %T", snap.ErrCorrupt, obj)
		}
		b.pending = append(b.pending, req)
	}
	return nil
}

// FinishRestore drops the restore-time request memo.
func (b *MemBackend) FinishRestore() { b.restoreReqs = nil }

// ResolveRef maps backend-kind references to live objects: the backend
// itself (its retry timer) or an in-flight request, rebuilt on first
// reference and memoized by ID so aliased references share one wrapper.
func (b *MemBackend) ResolveRef(ref *snap.Ref, resolve event.Resolver) (any, error) {
	switch ref.Kind {
	case snap.KMemBackend:
		return b, nil
	case snap.KMemBackendReq:
		if len(ref.Args) != 9 {
			return nil, fmt.Errorf("%w: request ref needs 9 args", snap.ErrCorrupt)
		}
		id := ref.Args[0]
		if b.restoreReqs == nil {
			b.restoreReqs = make(map[uint64]*pooledReq)
		}
		if p, ok := b.restoreReqs[id]; ok {
			return &p.req, nil
		}
		p := b.getReq()
		p.req.ID = id
		p.req.Addr = ref.Args[1]
		p.req.Kind = mem.Kind(ref.Args[2])
		p.req.Thread = int(snap.Unzig(ref.Args[3]))
		p.req.Critical = ref.Args[4] != 0
		p.req.Arrive = ref.Args[5]
		p.req.State = mem.ThreadState{
			Outstanding:  int(snap.Unzig(ref.Args[6])),
			ROBOccupancy: int(snap.Unzig(ref.Args[7])),
			IQOccupancy:  int(snap.Unzig(ref.Args[8])),
		}
		p.done = nil
		if ref.Inner != nil {
			if ref.Inner.Kind == snap.KNone {
				return nil, fmt.Errorf("%w: request %d carries an unserializable completion", snap.ErrUnsupported, id)
			}
			obj, err := resolve(ref.Inner, event.RoleFiller)
			if err != nil {
				return nil, fmt.Errorf("request %d completion: %w", id, err)
			}
			f, ok := obj.(event.Filler)
			if !ok {
				return nil, fmt.Errorf("%w: request completion resolved to %T", snap.ErrCorrupt, obj)
			}
			p.done = f
		}
		b.restoreReqs[id] = p
		return &p.req, nil
	default:
		return nil, fmt.Errorf("%w: ref kind %d is not a backend kind", snap.ErrCorrupt, ref.Kind)
	}
}
