package cache

import (
	"testing"
	"testing/quick"

	"smtdram/internal/event"
	"smtdram/internal/mem"
)

func smallCfg(name string) Config {
	return Config{Name: name, SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 4}
}

func newSmall(t *testing.T, q *event.Queue, lower Backend) *Level {
	t.Helper()
	l, err := New(q, smallCfg("L1"), lower)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"good", smallCfg("x"), true},
		{"perfect ignores geometry", Config{Perfect: true}, true},
		{"zero size", Config{SizeBytes: 0, Assoc: 2, LineBytes: 64, MSHRs: 1}, false},
		{"bad assoc split", Config{SizeBytes: 192, Assoc: 4, LineBytes: 64, MSHRs: 1}, false},
		{"no mshrs", Config{SizeBytes: 1024, Assoc: 2, LineBytes: 64, MSHRs: 0}, false},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 100)
	l := newSmall(t, &q, lower)

	var first, second uint64
	l.ReadLine(0, 0x1000, Meta{Thread: 0}, event.FillFunc(func(at uint64) { first = at }))
	q.RunUntil(1 << 20)
	if first != 101 { // L1 latency 1 + lower 100
		t.Fatalf("miss completion at %d, want 101", first)
	}
	if !l.Contains(0x1000) {
		t.Fatal("line not installed after fill")
	}
	l.ReadLine(200, 0x1000, Meta{Thread: 0}, event.FillFunc(func(at uint64) { second = at }))
	q.RunUntil(1 << 20)
	if second != 201 { // hit: L1 latency only
		t.Fatalf("hit completion at %d, want 201", second)
	}
	if l.Stats.Accesses != 2 || l.Stats.Misses != 1 {
		t.Fatalf("accesses/misses = %d/%d, want 2/1", l.Stats.Accesses, l.Stats.Misses)
	}
	if got := l.Stats.MissRate(); got != 0.5 {
		t.Fatalf("MissRate = %v, want 0.5", got)
	}
}

func TestMissMerging(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 100)
	l := newSmall(t, &q, lower)

	var done int
	for i := 0; i < 3; i++ {
		// Same line, different offsets: one fill must wake all three.
		if !l.ReadLine(0, 0x2000+uint64(i*8), Meta{}, event.FillFunc(func(uint64) { done++ })) {
			t.Fatal("merged access rejected")
		}
	}
	q.RunUntil(1 << 20)
	if done != 3 {
		t.Fatalf("%d waiters woken, want 3", done)
	}
	if lower.Reads != 1 {
		t.Fatalf("lower saw %d reads, want 1 (merged)", lower.Reads)
	}
	if l.Stats.Merged != 2 {
		t.Fatalf("Merged = %d, want 2", l.Stats.Merged)
	}
}

func TestMSHRExhaustion(t *testing.T) {
	var q event.Queue
	l := newSmall(t, &q, NewFixedLatency(&q, 1000))
	accepted := 0
	for i := 0; i < 10; i++ {
		if l.ReadLine(0, uint64(i)*0x1000, Meta{}, event.FillFunc(func(uint64) {})) {
			accepted++
		}
	}
	if accepted != 4 {
		t.Fatalf("accepted %d distinct misses, want 4 (MSHR limit)", accepted)
	}
	if l.Stats.MSHRFull != 6 {
		t.Fatalf("MSHRFull = %d, want 6", l.Stats.MSHRFull)
	}
	if l.OutstandingMisses() != 4 {
		t.Fatalf("OutstandingMisses = %d, want 4", l.OutstandingMisses())
	}
	q.RunUntil(1 << 20)
	if l.OutstandingMisses() != 0 {
		t.Fatal("MSHRs not released after fills")
	}
}

func TestLRUEviction(t *testing.T) {
	var q event.Queue
	l := newSmall(t, &q, NewFixedLatency(&q, 10))
	// 1024B/64B/2-way = 8 sets; set stride = 512B. Three lines in one set.
	a, b, c := uint64(0), uint64(512), uint64(1024)
	for _, addr := range []uint64{a, b} {
		l.ReadLine(0, addr, Meta{}, nil)
	}
	q.RunUntil(1 << 20)
	// Touch a so b becomes LRU.
	l.ReadLine(100, a, Meta{}, nil)
	q.RunUntil(1 << 20)
	l.ReadLine(200, c, Meta{}, nil)
	q.RunUntil(1 << 20)
	if !l.Contains(a) || !l.Contains(c) {
		t.Fatal("expected a and c resident")
	}
	if l.Contains(b) {
		t.Fatal("LRU victim b still resident")
	}
}

func TestWriteAllocateAndWriteback(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 10)
	l := newSmall(t, &q, lower)

	// Store misses allocate and dirty the line.
	if !l.WriteLine(0, 0x40, Meta{Thread: 0}) {
		t.Fatal("store miss rejected")
	}
	q.RunUntil(1 << 20)
	if !l.Contains(0x40) {
		t.Fatal("store miss did not allocate")
	}
	// Evict it by filling the set with two more lines (2-way).
	l.ReadLine(100, 0x40+512, Meta{}, nil)
	l.ReadLine(100, 0x40+1024, Meta{}, nil)
	q.RunUntil(1 << 20)
	if lower.Writes != 1 {
		t.Fatalf("lower saw %d writebacks, want 1", lower.Writes)
	}
	if l.Stats.Writebacks != 1 {
		t.Fatalf("Writebacks = %d, want 1", l.Stats.Writebacks)
	}
}

func TestStoreHitMarksDirtyWithoutTraffic(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 10)
	l := newSmall(t, &q, lower)
	l.ReadLine(0, 0x80, Meta{}, nil)
	q.RunUntil(1 << 20)
	reads := lower.Reads
	if !l.WriteLine(50, 0x80, Meta{}) {
		t.Fatal("store hit rejected")
	}
	if lower.Reads != reads {
		t.Fatal("store hit generated lower-level traffic")
	}
}

func TestPerfectLevelAlwaysHits(t *testing.T) {
	var q event.Queue
	l, err := New(&q, Config{Name: "pL3", Latency: 20, Perfect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var at uint64
	for i := 0; i < 100; i++ {
		if !l.ReadLine(0, uint64(i)*4096, Meta{}, event.FillFunc(func(a uint64) { at = a })) {
			t.Fatal("perfect level rejected access")
		}
	}
	q.RunUntil(1 << 20)
	if at != 20 {
		t.Fatalf("perfect hit completes at %d, want 20", at)
	}
	if l.Stats.Misses != 0 {
		t.Fatal("perfect level recorded misses")
	}
	if !l.WriteLine(0, 0, Meta{}) {
		t.Fatal("perfect level rejected write")
	}
}

func TestTwoLevelStack(t *testing.T) {
	var q event.Queue
	memb := NewFixedLatency(&q, 300)
	l2, err := New(&q, Config{Name: "L2", SizeBytes: 4096, Assoc: 2, LineBytes: 64, Latency: 10, MSHRs: 4}, memb)
	if err != nil {
		t.Fatal(err)
	}
	l1 := newSmall(t, &q, l2)

	var at uint64
	l1.ReadLine(0, 0x5000, Meta{Thread: 1}, event.FillFunc(func(a uint64) { at = a }))
	q.RunUntil(1 << 20)
	// 1 (L1) + 10 (L2 lookup) + 300 (memory) = 311.
	if at != 311 {
		t.Fatalf("two-level miss completes at %d, want 311", at)
	}
	if !l1.Contains(0x5000) || !l2.Contains(0x5000) {
		t.Fatal("fill did not populate both levels")
	}
	// L1 eviction writes back into L2, not memory.
	at = 0
	l1.ReadLine(1000, 0x5000+512, Meta{}, nil)
	l1.ReadLine(1000, 0x5000+1024, Meta{}, nil)
	q.RunUntil(1 << 20)
	if memb.Writes != 0 {
		t.Fatal("clean L1 victim reached memory")
	}
}

func TestMissHooks(t *testing.T) {
	var q event.Queue
	l := newSmall(t, &q, NewFixedLatency(&q, 50))
	var begins, ends int
	l.MissBegin = func(Meta) { begins++ }
	l.MissEnd = func(Meta) { ends++ }
	l.ReadLine(0, 0x100, Meta{}, nil)
	l.ReadLine(0, 0x100, Meta{}, nil) // merge: no second begin
	if begins != 1 {
		t.Fatalf("begins = %d, want 1", begins)
	}
	q.RunUntil(1 << 20)
	if ends != 1 {
		t.Fatalf("ends = %d, want 1", ends)
	}
}

func TestBackendRetryOnRejection(t *testing.T) {
	var q event.Queue
	rej := &rejecting{q: &q, after: 3}
	l := newSmall(t, &q, rej)
	var at uint64
	l.ReadLine(0, 0x300, Meta{}, event.FillFunc(func(a uint64) { at = a }))
	q.RunUntil(1 << 20)
	if at == 0 {
		t.Fatal("fill never completed despite retries")
	}
	if rej.attempts < 4 {
		t.Fatalf("lower saw %d attempts, want ≥4", rej.attempts)
	}
}

// rejecting refuses the first `after` ReadLine calls.
type rejecting struct {
	q        *event.Queue
	after    int
	attempts int
}

func (r *rejecting) ReadLine(now uint64, addr uint64, meta Meta, done event.Filler) bool {
	r.attempts++
	if r.attempts <= r.after {
		return false
	}
	r.q.ScheduleFiller(now+1, done)
	return true
}
func (r *rejecting) WriteLine(uint64, uint64, Meta) bool { return true }

// Property: after any sequence of reads, a repeated read to any previously
// read address hits (no spurious invalidation), as long as the trace touches
// at most Assoc distinct lines per set.
func TestPropertyResidency(t *testing.T) {
	f := func(offsets []uint8) bool {
		var q event.Queue
		l, err := New(&q, Config{Name: "p", SizeBytes: 8192, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 16}, NewFixedLatency(&q, 10))
		if err != nil {
			return false
		}
		// 64 sets: use at most 2 distinct lines per set by construction.
		for _, o := range offsets {
			addr := uint64(o&63)*64 + uint64(o>>7)*8192
			l.ReadLine(0, addr, Meta{}, nil)
			q.RunUntil(1 << 20)
			if !l.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMemBackendTranslation(t *testing.T) {
	var q event.Queue
	ctrl := &fakeCtrl{}
	b := NewMemBackend(&q, ctrl)
	meta := Meta{Thread: 3, Critical: true, State: mem.ThreadState{Outstanding: 2, ROBOccupancy: 100, IQOccupancy: 9}}
	var at uint64
	if !b.ReadLine(5, 0xABC0, meta, event.FillFunc(func(a uint64) { at = a })) {
		t.Fatal("ReadLine rejected")
	}
	if len(ctrl.got) != 1 {
		t.Fatalf("controller saw %d requests", len(ctrl.got))
	}
	r := ctrl.got[0]
	if r.Thread != 3 || !r.Critical || r.State.ROBOccupancy != 100 || r.Kind != mem.Read {
		t.Fatalf("request fields wrong: %+v", r)
	}
	r.OnComplete(99)
	if at != 99 {
		t.Fatal("completion not propagated")
	}
	if !b.WriteLine(6, 0xDEF0, Meta{Thread: mem.InvalidThread}) {
		t.Fatal("WriteLine rejected")
	}
	if ctrl.got[1].Kind != mem.Write {
		t.Fatal("writeback not translated to write request")
	}
}

func TestMemBackendBuffersRejections(t *testing.T) {
	var q event.Queue
	ctrl := &fakeCtrl{rejectFirst: 2}
	b := NewMemBackend(&q, ctrl)
	var done bool
	if !b.ReadLine(0, 0x40, Meta{}, event.FillFunc(func(uint64) { done = true })) {
		t.Fatal("backend should buffer the first rejection")
	}
	q.RunUntil(1 << 20)
	if len(ctrl.got) != 1 {
		t.Fatalf("controller accepted %d requests, want 1 after retries", len(ctrl.got))
	}
	ctrl.got[0].OnComplete(1)
	if !done {
		t.Fatal("buffered request never completed")
	}
}

type fakeCtrl struct {
	got         []*mem.Request
	rejectFirst int
}

func (f *fakeCtrl) Enqueue(now uint64, r *mem.Request) bool {
	if f.rejectFirst > 0 {
		f.rejectFirst--
		return false
	}
	f.got = append(f.got, r)
	return true
}
