package cache

import (
	"testing"

	"smtdram/internal/event"
)

func pfCfg() Config {
	return Config{
		Name: "L2", SizeBytes: 8192, Assoc: 2, LineBytes: 64,
		Latency: 2, MSHRs: 8, PrefetchNextLine: true, PrefetchMSHRs: 4,
	}
}

func TestPrefetchFetchesNextLine(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 50)
	l, err := New(&q, pfCfg(), lower)
	if err != nil {
		t.Fatal(err)
	}
	l.ReadLine(0, 0x1000, Meta{Thread: 0}, nil)
	q.RunUntil(1 << 20)
	if lower.Reads != 2 {
		t.Fatalf("lower saw %d reads, want 2 (demand + next-line prefetch)", lower.Reads)
	}
	if !l.Contains(0x1040) {
		t.Fatal("next line not prefetched")
	}
	if l.Prefetch.Issued != 1 {
		t.Fatalf("Issued = %d, want 1", l.Prefetch.Issued)
	}
	// Demanding the prefetched line is a hit and counts as useful.
	var hitAt uint64
	l.ReadLine(1000, 0x1040, Meta{Thread: 0}, event.FillFunc(func(at uint64) { hitAt = at }))
	q.RunUntil(1 << 20)
	if hitAt != 1002 {
		t.Fatalf("prefetched line demanded at %d, want hit at 1002", hitAt)
	}
	if l.Prefetch.Useful != 1 {
		t.Fatalf("Useful = %d, want 1", l.Prefetch.Useful)
	}
}

func TestPrefetchPoolExhaustion(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 1000) // slow: prefetches stay in flight
	l, err := New(&q, pfCfg(), lower)
	if err != nil {
		t.Fatal(err)
	}
	// Six demand misses to well-separated lines: only 4 prefetches may be
	// outstanding; the rest are dropped, and demand misses are never blocked
	// by prefetch-pool pressure.
	for i := 0; i < 6; i++ {
		if !l.ReadLine(0, uint64(0x10000+i*0x1000), Meta{}, nil) {
			t.Fatalf("demand miss %d rejected", i)
		}
	}
	if l.Prefetch.Issued != 4 {
		t.Fatalf("Issued = %d, want 4 (pool limit)", l.Prefetch.Issued)
	}
	if l.Prefetch.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", l.Prefetch.Dropped)
	}
	q.RunUntil(1 << 21)
	if l.pfInFlight != 0 {
		t.Fatalf("prefetch pool not drained: %d", l.pfInFlight)
	}
}

func TestPrefetchSuppressedWhenLinePresent(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 10)
	l, err := New(&q, pfCfg(), lower)
	if err != nil {
		t.Fatal(err)
	}
	// Fill 0x2040 first, then miss 0x2000: next line is present → no
	// prefetch.
	l.ReadLine(0, 0x2040, Meta{}, nil)
	q.RunUntil(1 << 20)
	issued := l.Prefetch.Issued
	l.ReadLine(100, 0x2000, Meta{}, nil)
	q.RunUntil(1 << 20)
	if l.Prefetch.Issued != issued {
		t.Fatal("prefetch issued for an already-present line")
	}
}

func TestLatePrefetchDoesNotDoubleInstall(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 200)
	l, err := New(&q, pfCfg(), lower)
	if err != nil {
		t.Fatal(err)
	}
	// Miss 0x3000 → prefetch 0x3040 (in flight for 200 cycles). A demand
	// miss to 0x3040 arrives meanwhile and allocates a real MSHR. Both
	// complete; the line must be installed once and the demand waiter woken.
	l.ReadLine(0, 0x3000, Meta{}, nil)
	var woken bool
	l.ReadLine(10, 0x3040, Meta{}, event.FillFunc(func(uint64) { woken = true }))
	q.RunUntil(1 << 20)
	if !woken {
		t.Fatal("demand waiter on the racing line never woke")
	}
	if !l.Contains(0x3040) {
		t.Fatal("racing line not resident")
	}
	if l.Prefetch.Late != 1 {
		t.Fatalf("Late = %d, want 1", l.Prefetch.Late)
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 10)
	cfg := pfCfg()
	cfg.PrefetchNextLine = false
	l, err := New(&q, cfg, lower)
	if err != nil {
		t.Fatal(err)
	}
	l.ReadLine(0, 0x4000, Meta{}, nil)
	q.RunUntil(1 << 20)
	if lower.Reads != 1 || l.Prefetch.Issued != 0 {
		t.Fatalf("prefetching active while disabled: %d reads, %d issued", lower.Reads, l.Prefetch.Issued)
	}
}

func TestPrefetchDefaultPoolSize(t *testing.T) {
	var q event.Queue
	cfg := pfCfg()
	cfg.PrefetchMSHRs = 0 // default
	l, err := New(&q, cfg, NewFixedLatency(&q, 10))
	if err != nil {
		t.Fatal(err)
	}
	if l.cfg.PrefetchMSHRs != 4 {
		t.Fatalf("default prefetch pool = %d, want 4 (Table 1)", l.cfg.PrefetchMSHRs)
	}
}

func TestSequentialStreamProfitsFromPrefetch(t *testing.T) {
	// Walk 64 sequential lines with and without prefetching; prefetching
	// must convert a large share of the demand misses into hits.
	run := func(pf bool) (misses uint64) {
		var q event.Queue
		cfg := pfCfg()
		cfg.PrefetchNextLine = pf
		l, err := New(&q, cfg, NewFixedLatency(&q, 100))
		if err != nil {
			t.Fatal(err)
		}
		now := uint64(0)
		for i := 0; i < 64; i++ {
			addr := uint64(0x100000 + i*64)
			l.ReadLine(now, addr, Meta{}, nil)
			now += 150 // enough time for fills and prefetches to land
			q.RunUntil(now)
		}
		return l.Stats.Misses
	}
	without := run(false)
	with := run(true)
	if with >= without/2 {
		t.Fatalf("prefetching left %d misses of %d; want at least half removed", with, without)
	}
}
