package cache

import "smtdram/internal/snap"

// Next-line prefetching with dedicated prefetch MSHRs.
//
// Table 1 of the paper provisions "Prefetch MSHR entries: 4/cache" alongside
// the 16 demand MSHRs. This file implements the matching mechanism: on a
// demand miss to line X, the level may speculatively fetch line X+1 through
// a separate, smaller MSHR pool so prefetches never steal demand miss
// bandwidth. Prefetched fills install clean and are tagged so usefulness can
// be measured.
//
// Prefetching defaults off in core.DefaultConfig — the workload calibration
// in DESIGN.md was performed without it — but the ablation benchmark
// (BenchmarkAblationPrefetch) and any Config with PrefetchNextLine=true
// exercise it end to end.

// prefetchStats counts prefetch activity for one level.
type prefetchStats struct {
	Issued  uint64 // prefetches sent to the lower level
	Useful  uint64 // prefetched lines later hit by demand accesses
	Late    uint64 // demand access arrived while the prefetch was in flight
	Dropped uint64 // suppressed: line present, MSHR busy, or pool exhausted
}

// maybePrefetch is called on a demand miss to la; it may start a next-line
// prefetch.
func (l *Level) maybePrefetch(now uint64, la uint64, meta Meta) {
	if !l.cfg.PrefetchNextLine || l.cfg.Perfect {
		return
	}
	next := la + uint64(l.cfg.LineBytes)
	if l.lookup(next) != nil {
		l.Prefetch.Dropped++
		return
	}
	if _, pending := l.mshrs[next]; pending {
		l.Prefetch.Dropped++
		return
	}
	if l.pfInFlight >= l.cfg.PrefetchMSHRs {
		l.Prefetch.Dropped++
		return
	}
	if _, dup := l.pfPending[next]; dup {
		l.Prefetch.Dropped++
		return
	}

	l.pfInFlight++
	l.pfPending[next] = struct{}{}
	l.Prefetch.Issued++
	pfMeta := meta
	pfMeta.Critical = false // prefetches are never critical
	l.issuePrefetch(now, next, pfMeta)
}

// pfIssue is a scheduled prefetch issue (event.Handler): it hands the
// speculative fill to the lower level when it fires, rescheduling itself on
// backpressure. A typed object rather than a closure so in-flight prefetches
// serialize.
type pfIssue struct {
	l    *Level
	la   uint64
	meta Meta
}

func (p *pfIssue) OnEvent(now uint64) {
	l := p.l
	if !l.lower.ReadLine(now, p.la, p.meta, &pfFill{l: l, la: p.la}) {
		l.issuePrefetch(now+retryGap, p.la, p.meta)
	}
}

// SnapRef implements event.RefMaker.
func (p *pfIssue) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCachePfIssue,
		Args: append([]uint64{uint64(p.l.snapID), p.la}, metaArgs(p.meta)...)}
}

// pfFill is a prefetch's data-arrival continuation (event.Filler).
type pfFill struct {
	l  *Level
	la uint64
}

func (p *pfFill) OnFill(fillAt uint64) {
	l, la := p.l, p.la
	l.pfInFlight--
	delete(l.pfPending, la)
	// A demand miss may have allocated its own MSHR for this line while the
	// prefetch was in flight; in that case the demand fill will install it,
	// and installing here too would double-count.
	if _, demand := l.mshrs[la]; demand {
		l.Prefetch.Late++
		return
	}
	if l.lookup(la) == nil {
		l.installPrefetched(fillAt, la)
	}
}

// SnapRef implements event.RefMaker.
func (p *pfFill) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCachePfFill, Args: []uint64{uint64(p.l.snapID), p.la}}
}

// issuePrefetch schedules the speculative fill's issue, retrying while the
// lower level is saturated (prefetches are patient; they never block demand).
func (l *Level) issuePrefetch(at uint64, la uint64, meta Meta) {
	l.q.ScheduleHandler(at+l.cfg.Latency, &pfIssue{l: l, la: la, meta: meta})
}

// installPrefetched places a clean, prefetch-tagged line.
func (l *Level) installPrefetched(now uint64, la uint64) {
	l.install(now, la, false, Meta{Thread: -1})
	if ln := l.lookup(la); ln != nil {
		ln.prefetched = true
	}
}

// notePrefetchHit records a demand hit on a prefetched line (called from the
// hit paths) and, tagged-prefetch style, keeps the stream running by
// prefetching the following line — otherwise a sequential walk would only
// ever cover alternate lines.
func (l *Level) notePrefetchHit(now uint64, la uint64, ln *line, meta Meta) {
	if ln.prefetched {
		ln.prefetched = false
		l.Prefetch.Useful++
		l.maybePrefetch(now, la, meta)
	}
}
