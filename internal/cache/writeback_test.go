package cache

import (
	"testing"

	"smtdram/internal/event"
)

// These tests pin down the writeback-vs-store distinction: WriteLine is a
// full-line writeback (installs directly, never fetches), Store is a CPU
// store commit (write-allocate, fetch-on-write).

func TestWritebackInstallsWithoutFetch(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 100)
	l := newSmall(t, &q, lower)

	if !l.WriteLine(0, 0x1000, Meta{}) {
		t.Fatal("writeback rejected")
	}
	if lower.Reads != 0 {
		t.Fatalf("writeback triggered %d fetches from below", lower.Reads)
	}
	if !l.Contains(0x1000) {
		t.Fatal("writeback did not install the line")
	}
	// The installed line is dirty: evicting it must push it down.
	l.ReadLine(10, 0x1000+512, Meta{}, nil)
	l.ReadLine(10, 0x1000+1024, Meta{}, nil)
	q.RunUntil(1 << 20)
	if lower.Writes != 1 {
		t.Fatalf("dirty writeback-installed victim produced %d lower writes, want 1", lower.Writes)
	}
}

func TestStoreMissFetches(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 50)
	l := newSmall(t, &q, lower)

	if !l.Store(0, 0x2000, Meta{}) {
		t.Fatal("store miss rejected")
	}
	q.RunUntil(1 << 20)
	if lower.Reads != 1 {
		t.Fatalf("store miss fetched %d lines, want 1 (write-allocate)", lower.Reads)
	}
	if !l.Contains(0x2000) {
		t.Fatal("store miss did not allocate")
	}
}

func TestWritebackMergesIntoPendingFill(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 100)
	l := newSmall(t, &q, lower)

	// Start a read fill, then write back the same line while it's in
	// flight: the fill must land dirty (so eviction writes it down), and no
	// extra fetch may be issued.
	l.ReadLine(0, 0x3000, Meta{}, nil)
	if !l.WriteLine(1, 0x3000, Meta{}) {
		t.Fatal("writeback into pending fill rejected")
	}
	q.RunUntil(1 << 20)
	if lower.Reads != 1 {
		t.Fatalf("lower saw %d reads, want 1", lower.Reads)
	}
	// Evict: 2-way set, stride 512 in the small config.
	l.ReadLine(500, 0x3000+512, Meta{}, nil)
	l.ReadLine(500, 0x3000+1024, Meta{}, nil)
	q.RunUntil(1 << 20)
	if lower.Writes != 1 {
		t.Fatalf("merged-dirty line not written back (%d writes)", lower.Writes)
	}
}

func TestStoreHitDoesNotTouchLower(t *testing.T) {
	var q event.Queue
	lower := NewFixedLatency(&q, 50)
	l := newSmall(t, &q, lower)
	l.ReadLine(0, 0x100, Meta{}, nil)
	q.RunUntil(1 << 20)
	reads := lower.Reads
	if !l.Store(100, 0x100, Meta{}) {
		t.Fatal("store hit rejected")
	}
	if lower.Reads != reads || lower.Writes != 0 {
		t.Fatal("store hit generated lower-level traffic")
	}
}

func TestPerfectStoreAlwaysAccepts(t *testing.T) {
	var q event.Queue
	l, err := New(&q, Config{Name: "p", Latency: 1, Perfect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !l.Store(0, uint64(i)*4096, Meta{}) {
			t.Fatal("perfect level rejected store")
		}
	}
}
