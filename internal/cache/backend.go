package cache

import (
	"smtdram/internal/event"
	"smtdram/internal/mem"
)

// MemBackend terminates the cache hierarchy at a DRAM memory controller,
// translating line fills and writebacks into mem.Requests. It absorbs
// controller backpressure with a small retry buffer so a momentarily full
// channel queue does not wedge an L3 MSHR.
type MemBackend struct {
	q      *event.Queue
	ctrl   mem.Controller
	nextID uint64

	// pending holds requests the controller refused, retried on a timer.
	pending []*mem.Request

	// pendingCap bounds the retry buffer; beyond it, backpressure is
	// propagated to the caller.
	pendingCap int
}

var _ Backend = (*MemBackend)(nil)

// NewMemBackend wraps ctrl as a cache Backend.
func NewMemBackend(q *event.Queue, ctrl mem.Controller) *MemBackend {
	return &MemBackend{q: q, ctrl: ctrl, pendingCap: 32}
}

// ReadLine implements Backend.
func (b *MemBackend) ReadLine(now uint64, addr uint64, meta Meta, done func(at uint64)) bool {
	r := &mem.Request{
		ID:         b.id(),
		Addr:       addr,
		Kind:       mem.Read,
		Thread:     meta.Thread,
		Critical:   meta.Critical,
		State:      meta.State,
		OnComplete: done,
	}
	return b.submit(now, r)
}

// WriteLine implements Backend.
func (b *MemBackend) WriteLine(now uint64, addr uint64, meta Meta) bool {
	r := &mem.Request{
		ID:     b.id(),
		Addr:   addr,
		Kind:   mem.Write,
		Thread: meta.Thread,
		State:  meta.State,
	}
	return b.submit(now, r)
}

func (b *MemBackend) id() uint64 {
	b.nextID++
	return b.nextID
}

func (b *MemBackend) submit(now uint64, r *mem.Request) bool {
	if len(b.pending) > 0 || !b.ctrl.Enqueue(now, r) {
		if len(b.pending) >= b.pendingCap {
			return false
		}
		b.pending = append(b.pending, r)
		if len(b.pending) == 1 {
			b.q.Schedule(now+retryGap, b.drain)
		}
	}
	return true
}

func (b *MemBackend) drain(now uint64) {
	for len(b.pending) > 0 {
		if !b.ctrl.Enqueue(now, b.pending[0]) {
			b.q.Schedule(now+retryGap, b.drain)
			return
		}
		b.pending = b.pending[1:]
	}
}

// FixedLatency is a Backend with a constant service time and unlimited
// bandwidth. It terminates hierarchies in unit tests and models the
// "infinitely large" next level in CPI-breakdown runs.
type FixedLatency struct {
	q       *event.Queue
	Latency uint64

	Reads  uint64
	Writes uint64
}

var _ Backend = (*FixedLatency)(nil)

// NewFixedLatency builds the backend.
func NewFixedLatency(q *event.Queue, latency uint64) *FixedLatency {
	return &FixedLatency{q: q, Latency: latency}
}

// ReadLine implements Backend.
func (f *FixedLatency) ReadLine(now uint64, addr uint64, meta Meta, done func(at uint64)) bool {
	f.Reads++
	if done != nil {
		f.q.Schedule(now+f.Latency, done)
	}
	return true
}

// WriteLine implements Backend.
func (f *FixedLatency) WriteLine(now uint64, addr uint64, meta Meta) bool {
	f.Writes++
	return true
}
