package cache

import (
	"smtdram/internal/event"
	"smtdram/internal/mem"
)

// MemBackend terminates the cache hierarchy at a DRAM memory controller,
// translating line fills and writebacks into mem.Requests. It absorbs
// controller backpressure with a small retry buffer so a momentarily full
// channel queue does not wedge an L3 MSHR.
type MemBackend struct {
	q      *event.Queue
	ctrl   mem.Controller
	nextID uint64

	// pending holds requests the controller refused, retried on a timer.
	pending []*mem.Request

	// pendingCap bounds the retry buffer; beyond it, backpressure is
	// propagated to the caller.
	pendingCap int

	// freeReqs recycles request wrappers; the controller hands a request
	// back (OnComplete) strictly after its last read of it, so a completed
	// request can be reissued immediately.
	freeReqs []*pooledReq
}

var _ Backend = (*MemBackend)(nil)
var _ event.Handler = (*MemBackend)(nil)

// pooledReq is a recyclable mem.Request. Its OnComplete is bound once, to
// complete below, which returns the wrapper to the backend's free list and
// then runs the caller's fill callback — so per-access traffic reuses both
// the request struct and its completion closure.
type pooledReq struct {
	b    *MemBackend
	req  mem.Request
	done func(at uint64) // caller's callback for this use; nil for writes
}

func (p *pooledReq) complete(at uint64) {
	done := p.done
	p.done = nil
	p.b.freeReqs = append(p.b.freeReqs, p)
	if done != nil {
		done(at)
	}
}

func (b *MemBackend) getReq() *pooledReq {
	if n := len(b.freeReqs); n > 0 {
		p := b.freeReqs[n-1]
		b.freeReqs[n-1] = nil
		b.freeReqs = b.freeReqs[:n-1]
		return p
	}
	p := &pooledReq{b: b}
	p.req.OnComplete = p.complete
	return p
}

// NewMemBackend wraps ctrl as a cache Backend.
func NewMemBackend(q *event.Queue, ctrl mem.Controller) *MemBackend {
	return &MemBackend{q: q, ctrl: ctrl, pendingCap: 32}
}

// ReadLine implements Backend.
func (b *MemBackend) ReadLine(now uint64, addr uint64, meta Meta, done func(at uint64)) bool {
	p := b.getReq()
	p.req.ID = b.id()
	p.req.Addr = addr
	p.req.Kind = mem.Read
	p.req.Thread = meta.Thread
	p.req.Critical = meta.Critical
	p.req.State = meta.State
	p.done = done
	return b.submit(now, p)
}

// WriteLine implements Backend.
func (b *MemBackend) WriteLine(now uint64, addr uint64, meta Meta) bool {
	p := b.getReq()
	p.req.ID = b.id()
	p.req.Addr = addr
	p.req.Kind = mem.Write
	p.req.Thread = meta.Thread
	p.req.Critical = false
	p.req.State = meta.State
	p.done = nil
	return b.submit(now, p)
}

func (b *MemBackend) id() uint64 {
	b.nextID++
	return b.nextID
}

func (b *MemBackend) submit(now uint64, p *pooledReq) bool {
	if len(b.pending) > 0 || !b.ctrl.Enqueue(now, &p.req) {
		if len(b.pending) >= b.pendingCap {
			p.done = nil
			b.freeReqs = append(b.freeReqs, p)
			return false
		}
		b.pending = append(b.pending, &p.req)
		if len(b.pending) == 1 {
			b.q.ScheduleHandler(now+retryGap, b)
		}
	}
	return true
}

// OnEvent is the retry-buffer drain timer: it re-offers refused requests to
// the controller in order, compacting the buffer in place.
func (b *MemBackend) OnEvent(now uint64) {
	n := 0
	for n < len(b.pending) && b.ctrl.Enqueue(now, b.pending[n]) {
		n++
	}
	if n > 0 {
		m := copy(b.pending, b.pending[n:])
		for i := m; i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = b.pending[:m]
	}
	if len(b.pending) > 0 {
		b.q.ScheduleHandler(now+retryGap, b)
	}
}

// FixedLatency is a Backend with a constant service time and unlimited
// bandwidth. It terminates hierarchies in unit tests and models the
// "infinitely large" next level in CPI-breakdown runs.
type FixedLatency struct {
	q       *event.Queue
	Latency uint64

	Reads  uint64
	Writes uint64
}

var _ Backend = (*FixedLatency)(nil)

// NewFixedLatency builds the backend.
func NewFixedLatency(q *event.Queue, latency uint64) *FixedLatency {
	return &FixedLatency{q: q, Latency: latency}
}

// ReadLine implements Backend.
func (f *FixedLatency) ReadLine(now uint64, addr uint64, meta Meta, done func(at uint64)) bool {
	f.Reads++
	if done != nil {
		f.q.Schedule(now+f.Latency, done)
	}
	return true
}

// WriteLine implements Backend.
func (f *FixedLatency) WriteLine(now uint64, addr uint64, meta Meta) bool {
	f.Writes++
	return true
}
