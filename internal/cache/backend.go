package cache

import (
	"smtdram/internal/event"
	"smtdram/internal/mem"
	"smtdram/internal/snap"
)

// MemBackend terminates the cache hierarchy at a DRAM memory controller,
// translating line fills and writebacks into mem.Requests. It absorbs
// controller backpressure with a small retry buffer so a momentarily full
// channel queue does not wedge an L3 MSHR.
type MemBackend struct {
	q      *event.Queue
	ctrl   mem.Controller
	nextID uint64

	// pending holds requests the controller refused, retried on a timer.
	pending []*mem.Request

	// pendingCap bounds the retry buffer; beyond it, backpressure is
	// propagated to the caller.
	pendingCap int

	// freeReqs recycles request wrappers; the controller hands a request
	// back (OnComplete) strictly after its last read of it, so a completed
	// request can be reissued immediately.
	freeReqs []*pooledReq

	// restoreReqs memoizes in-flight request wrappers by ID while a snapshot
	// restore is resolving references (see ResolveRef); nil otherwise.
	restoreReqs map[uint64]*pooledReq
}

var _ Backend = (*MemBackend)(nil)
var _ event.Handler = (*MemBackend)(nil)

// pooledReq is a recyclable mem.Request. Its OnComplete is bound once, to
// complete below, which returns the wrapper to the backend's free list and
// then runs the caller's fill carrier — so per-access traffic reuses both
// the request struct and its completion closure. The request's Src field
// points back at the wrapper, letting the controller's snapshot name the
// in-flight request it only knows as a *mem.Request.
type pooledReq struct {
	b    *MemBackend
	req  mem.Request
	done event.Filler // caller's completion for this use; nil for writes
}

func (p *pooledReq) complete(at uint64) {
	done := p.done
	p.done = nil
	p.b.freeReqs = append(p.b.freeReqs, p)
	if done != nil {
		done.OnFill(at)
	}
}

// SnapRef implements event.RefMaker: the request's scalar fields plus, as
// the nested ref, its completion carrier. A completion that is itself
// unserializable (a test's FillFunc) nests as KNone, which resolution
// rejects with a typed error.
func (p *pooledReq) SnapRef() snap.Ref {
	ref := snap.Ref{Kind: snap.KMemBackendReq, Args: []uint64{
		p.req.ID, p.req.Addr, uint64(p.req.Kind), snap.Zig(int64(p.req.Thread)),
		boolArg(p.req.Critical), p.req.Arrive,
		snap.Zig(int64(p.req.State.Outstanding)),
		snap.Zig(int64(p.req.State.ROBOccupancy)),
		snap.Zig(int64(p.req.State.IQOccupancy)),
	}}
	if p.done != nil {
		inner := snap.Ref{Kind: snap.KNone}
		if rm, ok := p.done.(event.RefMaker); ok {
			inner = rm.SnapRef()
		}
		ref.Inner = &inner
	}
	return ref
}

func boolArg(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (b *MemBackend) getReq() *pooledReq {
	if n := len(b.freeReqs); n > 0 {
		p := b.freeReqs[n-1]
		b.freeReqs[n-1] = nil
		b.freeReqs = b.freeReqs[:n-1]
		return p
	}
	p := &pooledReq{b: b}
	p.req.OnComplete = p.complete
	p.req.Src = p
	return p
}

// NewMemBackend wraps ctrl as a cache Backend.
func NewMemBackend(q *event.Queue, ctrl mem.Controller) *MemBackend {
	return &MemBackend{q: q, ctrl: ctrl, pendingCap: 32}
}

// ReadLine implements Backend.
func (b *MemBackend) ReadLine(now uint64, addr uint64, meta Meta, done event.Filler) bool {
	p := b.getReq()
	p.req.ID = b.id()
	p.req.Addr = addr
	p.req.Kind = mem.Read
	p.req.Thread = meta.Thread
	p.req.Critical = meta.Critical
	p.req.State = meta.State
	p.done = done
	return b.submit(now, p)
}

// WriteLine implements Backend.
func (b *MemBackend) WriteLine(now uint64, addr uint64, meta Meta) bool {
	p := b.getReq()
	p.req.ID = b.id()
	p.req.Addr = addr
	p.req.Kind = mem.Write
	p.req.Thread = meta.Thread
	p.req.Critical = false
	p.req.State = meta.State
	p.done = nil
	return b.submit(now, p)
}

func (b *MemBackend) id() uint64 {
	b.nextID++
	return b.nextID
}

func (b *MemBackend) submit(now uint64, p *pooledReq) bool {
	if len(b.pending) > 0 || !b.ctrl.Enqueue(now, &p.req) {
		if len(b.pending) >= b.pendingCap {
			p.done = nil
			b.freeReqs = append(b.freeReqs, p)
			return false
		}
		b.pending = append(b.pending, &p.req)
		if len(b.pending) == 1 {
			b.q.ScheduleHandler(now+retryGap, b)
		}
	}
	return true
}

// OnEvent is the retry-buffer drain timer: it re-offers refused requests to
// the controller in order, compacting the buffer in place.
func (b *MemBackend) OnEvent(now uint64) {
	n := 0
	for n < len(b.pending) && b.ctrl.Enqueue(now, b.pending[n]) {
		n++
	}
	if n > 0 {
		m := copy(b.pending, b.pending[n:])
		for i := m; i < len(b.pending); i++ {
			b.pending[i] = nil
		}
		b.pending = b.pending[:m]
	}
	if len(b.pending) > 0 {
		b.q.ScheduleHandler(now+retryGap, b)
	}
}

// SnapRef implements event.RefMaker (the retry-drain timer).
func (b *MemBackend) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KMemBackend}
}

// FixedLatency is a Backend with a constant service time and unlimited
// bandwidth. It terminates hierarchies in unit tests and models the
// "infinitely large" next level in CPI-breakdown runs.
type FixedLatency struct {
	q       *event.Queue
	Latency uint64

	Reads  uint64
	Writes uint64
}

var _ Backend = (*FixedLatency)(nil)

// NewFixedLatency builds the backend.
func NewFixedLatency(q *event.Queue, latency uint64) *FixedLatency {
	return &FixedLatency{q: q, Latency: latency}
}

// ReadLine implements Backend.
func (f *FixedLatency) ReadLine(now uint64, addr uint64, meta Meta, done event.Filler) bool {
	f.Reads++
	if done != nil {
		f.q.ScheduleFiller(now+f.Latency, done)
	}
	return true
}

// WriteLine implements Backend.
func (f *FixedLatency) WriteLine(now uint64, addr uint64, meta Meta) bool {
	f.Writes++
	return true
}
