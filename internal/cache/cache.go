// Package cache implements the non-blocking, write-back cache hierarchy of
// the simulated machine: set-associative levels with LRU replacement,
// MSHR-limited miss handling with miss merging, dirty-victim writebacks, and
// "perfect" (always-hit) variants used for the paper's CPI-breakdown runs.
package cache

import (
	"fmt"
	"strings"

	"smtdram/internal/event"
	"smtdram/internal/mem"
	"smtdram/internal/obs"
	"smtdram/internal/snap"
)

// Meta carries the processor-side context of an access down the hierarchy so
// the memory controller can apply thread-aware scheduling.
type Meta struct {
	// Thread is the issuing hardware thread (mem.InvalidThread for
	// writebacks).
	Thread int
	// Critical marks demand accesses the processor is stalled on.
	Critical bool
	// State is the thread's resource-occupancy snapshot at issue time.
	State mem.ThreadState
}

// Backend is a level that can service line fills and accept writebacks. Both
// methods return false when the component is out of buffering and the caller
// must retry.
type Backend interface {
	// ReadLine requests a full line; done fires when the critical word (we
	// model whole-line delivery) arrives. done is a typed completion carrier
	// (not a closure) so in-flight fills can be named by the snapshot codec;
	// tests can wrap a plain function with event.FillFunc.
	ReadLine(now uint64, addr uint64, meta Meta, done event.Filler) bool
	// WriteLine hands a dirty line down; nobody waits for it.
	WriteLine(now uint64, addr uint64, meta Meta) bool
}

// Config sizes one cache level.
type Config struct {
	// Name labels the level in stats output ("L1D", "L2", ...).
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// LineBytes is the line size (64 throughout the paper).
	LineBytes int
	// Latency is the lookup latency in cycles.
	Latency uint64
	// MSHRs bounds concurrent outstanding misses (16 per cache in Table 1).
	MSHRs int
	// Perfect makes every access hit, modeling the paper's infinitely large
	// cache runs used to attribute CPI to hierarchy levels.
	Perfect bool
	// PrefetchNextLine enables next-line prefetching on demand misses,
	// through the dedicated PrefetchMSHRs pool (Table 1: 4/cache).
	PrefetchNextLine bool
	// PrefetchMSHRs bounds concurrent prefetches (default 4 when
	// prefetching is enabled).
	PrefetchMSHRs int
}

// Validate rejects configurations the set math cannot support.
func (c Config) Validate() error {
	if c.Perfect {
		return nil
	}
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.LineBytes <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines%c.Assoc != 0 || lines/c.Assoc == 0 {
		return fmt.Errorf("cache %s: %d lines not divisible into %d-way sets", c.Name, lines, c.Assoc)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: need at least one MSHR", c.Name)
	}
	return nil
}

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool   // installed by a prefetch, not yet demanded
	used       uint64 // LRU stamp
}

// mshr tracks one outstanding miss. MSHRs are recycled through the level's
// free list; each is a dual-role event object — its OnEvent is the issue
// (and issue-retry) event, its OnFill the data-arrival continuation — so the
// steady-state miss path allocates neither closures nor tracker structs, and
// both roles serialize as one typed reference.
type mshr struct {
	addr    uint64
	waiters []event.Filler
	dirty   bool // a store merged into this miss; mark line dirty on fill
	issued  bool // handed to the lower level (vs still retrying)

	l    *Level
	meta Meta // processor context of the allocating access
}

// OnEvent is the issue (and issue-retry) event: hand the fill request to the
// lower level, backing off while it is saturated.
func (m *mshr) OnEvent(now uint64) {
	if m.l.lower.ReadLine(now, m.addr, m.meta, m) {
		m.issued = true
		return
	}
	m.l.q.ScheduleHandler(now+retryGap, m)
}

// OnFill installs the returned line, releases the MSHR, and wakes all
// waiters.
func (m *mshr) OnFill(now uint64) {
	l := m.l
	l.install(now, m.addr, m.dirty, m.meta)
	delete(l.mshrs, m.addr)
	if l.MissEnd != nil {
		l.MissEnd(m.meta)
	}
	for _, w := range m.waiters {
		w.OnFill(now)
	}
	l.releaseMSHR(m)
	l.drainWB(now)
}

// SnapRef implements event.RefMaker: a live MSHR is named by its level and
// line address (the level's mshrs map resolves it at restore).
func (m *mshr) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCacheMSHR, Args: []uint64{uint64(m.l.snapID), m.addr}}
}

// Stats counts per-level activity.
type Stats struct {
	Accesses   uint64 // demand reads + writes reaching this level
	Misses     uint64 // demand misses (MSHR allocations + merges are split below)
	Merged     uint64 // misses merged into an existing MSHR
	Writebacks uint64 // dirty victims pushed down
	MSHRFull   uint64 // rejections due to MSHR exhaustion
}

// MissRate is Misses/Accesses.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Level is one cache level. It implements Backend so levels stack.
type Level struct {
	cfg   Config
	q     *event.Queue
	lower Backend
	sets  [][]line
	nsets uint64
	mshrs map[uint64]*mshr
	tick  uint64 // LRU clock

	// snapID names this level in snapshot references (see SetSnapID).
	snapID uint8

	// pendingWB holds dirty victims the lower level refused; retried on a
	// timer so eviction never blocks the fill path.
	pendingWB []wbEntry
	wbretry   wbRetry // pre-bound writeback retry event

	// freeMSHRs recycles miss trackers and their bound fill callbacks.
	freeMSHRs []*mshr

	// MissBegin/MissEnd, when set, fire when a demand miss allocates an
	// MSHR and when its fill returns. The CPU uses these to track per-thread
	// outstanding-miss state for the DG/DWarn/Fetch-Stall policies.
	MissBegin func(meta Meta)
	MissEnd   func(meta Meta)

	// Wake, when set, fires whenever a fill installs a line at this level.
	// The two-speed clock (DESIGN §11) sets it on the L1s: an install there
	// can change what the CPU's next Tick does (a parked access can proceed,
	// an MSHR frees), so it must end a deep-skip span. Lower levels leave it
	// nil — their fills stay invisible to the CPU until a chained fill
	// reaches an L1.
	Wake func()

	// prefetch machinery (see prefetch.go)
	pfInFlight int
	pfPending  map[uint64]struct{}

	Stats Stats
	// Prefetch counts prefetcher activity (zero when disabled).
	Prefetch prefetchStats
}

type wbEntry struct {
	addr uint64
	meta Meta
}

// wbRetry is the writeback-drain timer; one lives in each Level so arming a
// retry never allocates.
type wbRetry struct{ l *Level }

func (w *wbRetry) OnEvent(now uint64) { w.l.drainWB(now) }

// SnapRef implements event.RefMaker (resolved to the level's embedded timer).
func (w *wbRetry) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCacheWBRetry, Args: []uint64{uint64(w.l.snapID)}}
}

var _ Backend = (*Level)(nil)

// New builds a cache level on top of lower.
func New(q *event.Queue, cfg Config, lower Backend) (*Level, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.PrefetchNextLine && cfg.PrefetchMSHRs == 0 {
		cfg.PrefetchMSHRs = 4
	}
	l := &Level{
		cfg: cfg, q: q, lower: lower,
		mshrs:     make(map[uint64]*mshr),
		pfPending: make(map[uint64]struct{}),
	}
	l.wbretry = wbRetry{l: l}
	if !cfg.Perfect {
		l.nsets = uint64(cfg.SizeBytes / cfg.LineBytes / cfg.Assoc)
		l.sets = make([][]line, l.nsets)
		backing := make([]line, int(l.nsets)*cfg.Assoc)
		for i := range l.sets {
			l.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
		}
	}
	return l, nil
}

// Name returns the configured level name.
func (l *Level) Name() string { return l.cfg.Name }

// Config returns the level's configuration.
func (l *Level) Config() Config { return l.cfg }

// OutstandingMisses reports live MSHR occupancy.
func (l *Level) OutstandingMisses() int { return len(l.mshrs) }

func (l *Level) lineAddr(addr uint64) uint64 { return addr &^ uint64(l.cfg.LineBytes-1) }

// lookup returns the way holding addr, or nil.
func (l *Level) lookup(la uint64) *line {
	set := l.sets[(la/uint64(l.cfg.LineBytes))%l.nsets]
	tag := la / uint64(l.cfg.LineBytes) / l.nsets
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// ReadLine implements Backend.
func (l *Level) ReadLine(now uint64, addr uint64, meta Meta, done event.Filler) bool {
	la := l.lineAddr(addr)
	l.Stats.Accesses++
	if l.cfg.Perfect {
		l.complete(now+l.cfg.Latency, done)
		return true
	}
	if ln := l.lookup(la); ln != nil {
		l.tick++
		ln.used = l.tick
		l.notePrefetchHit(now, la, ln, meta)
		l.complete(now+l.cfg.Latency, done)
		return true
	}
	return l.miss(now, la, meta, done, false)
}

// Probe is the instruction-fetch port: it reports a hit synchronously (so
// fetch can continue in the same cycle) and starts a fill on a miss, calling
// fill when the line arrives. accepted is false when the MSHRs are full and
// no fill was started; the caller retries next cycle.
func (l *Level) Probe(now uint64, addr uint64, meta Meta, fill event.Filler) (hit, accepted bool) {
	la := l.lineAddr(addr)
	l.Stats.Accesses++
	if l.cfg.Perfect {
		return true, true
	}
	if ln := l.lookup(la); ln != nil {
		l.tick++
		ln.used = l.tick
		l.notePrefetchHit(now, la, ln, meta)
		return true, true
	}
	return false, l.miss(now, la, meta, fill, false)
}

// WriteLine implements Backend: a full dirty line arriving from the level
// above (a writeback). The whole line is present, so no fetch is needed —
// it is installed directly, dirty. Treating writebacks as write-allocate
// stores would refetch every dirty victim from below, inflating DRAM reads.
func (l *Level) WriteLine(now uint64, addr uint64, meta Meta) bool {
	la := l.lineAddr(addr)
	l.Stats.Accesses++
	if l.cfg.Perfect {
		return true
	}
	if ln := l.lookup(la); ln != nil {
		l.tick++
		ln.used = l.tick
		ln.dirty = true
		return true
	}
	if _, pending := l.mshrs[la]; pending {
		// A fill for this line is in flight; mark it to land dirty.
		l.mshrs[la].dirty = true
		return true
	}
	l.install(now, la, true, meta)
	return true
}

// WouldBlock reports — without touching stats, LRU state, or MSHRs —
// whether a demand access to addr (ReadLine or Store) would currently be
// rejected by MSHR backpressure: the line misses, there is no in-flight MSHR
// to merge into, and the MSHR file is full. While the condition holds, an
// access attempt's only observable effect is one MSHRFull count, and only a
// fill event can change the outcome; the two-speed clock (DESIGN §11) relies
// on both to skip MSHR-blocked windows, replaying the per-cycle MSHRFull
// counts in aggregate.
func (l *Level) WouldBlock(addr uint64) bool {
	if l.cfg.Perfect {
		return false
	}
	la := l.lineAddr(addr)
	if l.lookup(la) != nil {
		return false
	}
	if _, ok := l.mshrs[la]; ok {
		return false
	}
	return len(l.mshrs) >= l.cfg.MSHRs
}

// Store is the CPU's store-commit port into the L1D: write-allocate, so a
// miss fetches the line (the store writes only part of it) and dirties it
// on fill.
func (l *Level) Store(now uint64, addr uint64, meta Meta) bool {
	la := l.lineAddr(addr)
	l.Stats.Accesses++
	if l.cfg.Perfect {
		return true
	}
	if ln := l.lookup(la); ln != nil {
		l.tick++
		ln.used = l.tick
		ln.dirty = true
		return true
	}
	return l.miss(now, la, meta, nil, true)
}

// miss allocates or merges an MSHR for la. done may be nil (writes).
func (l *Level) miss(now uint64, la uint64, meta Meta, done event.Filler, dirty bool) bool {
	l.Stats.Misses++
	if m, ok := l.mshrs[la]; ok {
		l.Stats.Merged++
		if done != nil {
			m.waiters = append(m.waiters, done)
		}
		m.dirty = m.dirty || dirty
		return true
	}
	if len(l.mshrs) >= l.cfg.MSHRs {
		l.Stats.Misses-- // rejected, caller retries: not a serviced miss
		l.Stats.Accesses--
		l.Stats.MSHRFull++
		return false
	}
	m := l.getMSHR()
	m.addr, m.dirty, m.meta = la, dirty, meta
	if done != nil {
		m.waiters = append(m.waiters, done)
	}
	l.mshrs[la] = m
	if l.MissBegin != nil {
		l.MissBegin(meta)
	}
	l.q.ScheduleHandler(now+l.cfg.Latency, m)
	l.maybePrefetch(now, la, meta)
	return true
}

func (l *Level) getMSHR() *mshr {
	if n := len(l.freeMSHRs); n > 0 {
		m := l.freeMSHRs[n-1]
		l.freeMSHRs[n-1] = nil
		l.freeMSHRs = l.freeMSHRs[:n-1]
		return m
	}
	return &mshr{l: l}
}

func (l *Level) releaseMSHR(m *mshr) {
	for i := range m.waiters {
		m.waiters[i] = nil
	}
	m.waiters = m.waiters[:0]
	m.dirty, m.issued = false, false
	l.freeMSHRs = append(l.freeMSHRs, m)
}

// retryGap is how long a component waits before re-attempting a transfer a
// lower level refused. A handful of cycles: short against DRAM latencies.
const retryGap = 8

// install places la in its set, evicting the LRU way; dirty victims are
// written back down.
func (l *Level) install(now uint64, la uint64, dirty bool, meta Meta) {
	set := l.sets[(la/uint64(l.cfg.LineBytes))%l.nsets]
	tag := la / uint64(l.cfg.LineBytes) / l.nsets
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid && v.dirty {
		setIdx := (la / uint64(l.cfg.LineBytes)) % l.nsets
		victimAddr := (v.tag*l.nsets + setIdx) * uint64(l.cfg.LineBytes)
		l.writeback(now, victimAddr)
	}
	l.tick++
	*v = line{tag: tag, valid: true, dirty: dirty, used: l.tick}
	if l.Wake != nil {
		l.Wake()
	}
	_ = meta
}

// writeback pushes a dirty victim down, buffering it if the lower level is
// saturated.
func (l *Level) writeback(now uint64, addr uint64) {
	l.Stats.Writebacks++
	meta := Meta{Thread: mem.InvalidThread}
	if l.lower.WriteLine(now, addr, meta) {
		return
	}
	l.pendingWB = append(l.pendingWB, wbEntry{addr: addr, meta: meta})
	if len(l.pendingWB) == 1 {
		l.scheduleWBRetry(now + retryGap)
	}
}

func (l *Level) scheduleWBRetry(at uint64) {
	l.q.ScheduleHandler(at, &l.wbretry)
}

func (l *Level) drainWB(now uint64) {
	n := 0
	for n < len(l.pendingWB) && l.lower.WriteLine(now, l.pendingWB[n].addr, l.pendingWB[n].meta) {
		n++
	}
	if n > 0 {
		m := copy(l.pendingWB, l.pendingWB[n:])
		l.pendingWB = l.pendingWB[:m]
	}
	if len(l.pendingWB) > 0 {
		l.scheduleWBRetry(now + retryGap)
	}
}

// complete schedules a hit completion.
func (l *Level) complete(at uint64, done event.Filler) {
	if done == nil {
		return
	}
	l.q.ScheduleFiller(at, done)
}

// RegisterMetrics exposes the level's counters and live MSHR occupancy
// through the metrics registry, under "cache.<name>." (the level's configured
// name, lowercased). Safe on a nil registry.
func (l *Level) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	prefix := "cache." + strings.ToLower(l.cfg.Name) + "."
	reg.Gauge(prefix+"accesses", func(uint64) float64 { return float64(l.Stats.Accesses) })
	reg.Gauge(prefix+"misses", func(uint64) float64 { return float64(l.Stats.Misses) })
	reg.Gauge(prefix+"merged", func(uint64) float64 { return float64(l.Stats.Merged) })
	reg.Gauge(prefix+"writebacks", func(uint64) float64 { return float64(l.Stats.Writebacks) })
	reg.Gauge(prefix+"mshr_full", func(uint64) float64 { return float64(l.Stats.MSHRFull) })
	reg.Gauge(prefix+"miss_rate", func(uint64) float64 { return l.Stats.MissRate() })
	reg.Sampled(prefix+"mshr_occupancy", func(uint64) float64 { return float64(len(l.mshrs)) })
}

// Contains reports whether addr is resident (for tests).
func (l *Level) Contains(addr uint64) bool {
	if l.cfg.Perfect {
		return true
	}
	return l.lookup(l.lineAddr(addr)) != nil
}
