package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Tracer collects request-lifecycle events in emission order. It implements
// Sink. The simulator is single-threaded and deterministic, so two runs with
// the same seed produce byte-identical exports.
type Tracer struct {
	events []Event
	open   map[uint64]int // ReqID → index of last non-terminal milestone
}

// NewTracer builds an empty tracer.
func NewTracer() *Tracer { return &Tracer{open: map[uint64]int{}} }

// Emit implements Sink.
func (t *Tracer) Emit(e Event) {
	t.events = append(t.events, e)
	switch e.Kind {
	case KEnqueue:
		t.open[e.ReqID] = len(t.events) - 1
	case KDone, KCancel:
		delete(t.open, e.ReqID)
	}
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int { return len(t.events) }

// Events returns the recorded events (shared slice; do not mutate).
func (t *Tracer) Events() []Event { return t.events }

// Finish emits a KCancel terminal for every request still in flight at the
// end of the run, so every traced request reaches a terminal state. Cancels
// are emitted in enqueue order (deterministic).
func (t *Tracer) Finish(now uint64) {
	if len(t.open) == 0 {
		return
	}
	idxs := make([]int, 0, len(t.open))
	for _, i := range t.open {
		idxs = append(idxs, i)
	}
	// insertion sort: the open set is small (bounded by queue depths)
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	for _, i := range idxs {
		e := t.events[i]
		t.Emit(Event{
			Kind: KCancel, At: now, End: now, ReqID: e.ReqID, Addr: e.Addr,
			Thread: e.Thread, Channel: e.Channel, Chip: e.Chip, Bank: e.Bank,
			Row: e.Row, Read: e.Read,
		})
	}
}

// WriteJSONL exports the trace, one JSON object per line.
func (t *Tracer) WriteJSONL(w io.Writer) error { return WriteJSONL(w, t.events) }

// WriteChrome exports the trace as Chrome trace_event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error { return WriteChrome(w, t.events) }

// jsonEvent is the JSONL wire form of an Event.
type jsonEvent struct {
	Kind    string `json:"kind"`
	At      uint64 `json:"at"`
	End     uint64 `json:"end,omitempty"`
	ReqID   uint64 `json:"req"`
	Addr    string `json:"addr"`
	Thread  int    `json:"thread"`
	Channel int    `json:"channel"`
	Chip    int    `json:"chip"`
	Bank    int    `json:"bank"`
	Row     uint64 `json:"row"`
	Read    bool   `json:"read"`
	Outcome string `json:"outcome,omitempty"`
	Queue   int    `json:"queue,omitempty"`
}

// WriteJSONL writes events as JSON lines, in order.
func WriteJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		je := jsonEvent{
			Kind: e.Kind.String(), At: e.At, ReqID: e.ReqID,
			Addr: fmt.Sprintf("0x%x", e.Addr), Thread: e.Thread,
			Channel: e.Channel, Chip: e.Chip, Bank: e.Bank, Row: e.Row,
			Read: e.Read, Outcome: e.Outcome, Queue: e.Queue,
		}
		if e.End != e.At {
			je.End = e.End
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one trace_event record. Timestamps are in microseconds per
// the format; we map 1 simulated cycle → 1 µs so cycle numbers read directly
// off the Perfetto timeline.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Ts    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes events as Chrome trace_event JSON, loadable in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Each DRAM channel becomes a
// process; each hardware thread a track within it (writebacks on track 0);
// lifecycle phases render as complete slices and transitions as instants.
func WriteChrome(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	appendLifecycleEvents(&out.TraceEvents, events, 0, 0, "", nil)
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// appendLifecycleEvents renders cycle-domain lifecycle events into out.
// pidBase offsets every channel's process id and procPrefix its process name
// (so a merged two-domain export keeps the cycle lanes distinct from the
// wall-clock lanes); tsOffset shifts every timestamp (1 cycle → 1 µs), which
// anchors cycle 0 at a wall-clock instant in merged traces; extraArgs is
// stamped into every event's args (the job-id correlation bridge).
func appendLifecycleEvents(out *[]chromeEvent, events []Event, pidBase int, tsOffset uint64, procPrefix string, extraArgs map[string]any) {
	type lane struct{ pid, tid int }
	seen := map[lane]bool{}
	for _, e := range events {
		pid, tid := pidBase+e.Channel, e.Thread+1
		l := lane{pid, tid}
		if !seen[l] {
			seen[l] = true
			*out = append(*out,
				chromeEvent{Name: "process_name", Phase: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("%schannel %d (cycles)", procPrefix, e.Channel)}},
				chromeEvent{Name: "thread_name", Phase: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": laneName(e.Thread)}},
			)
		}
		args := map[string]any{
			"req":   e.ReqID,
			"addr":  fmt.Sprintf("0x%x", e.Addr),
			"bank":  fmt.Sprintf("%d/%d", e.Chip, e.Bank),
			"row":   e.Row,
			"read":  e.Read,
			"cycle": e.At,
		}
		if e.Outcome != "" {
			args["outcome"] = e.Outcome
		}
		for k, v := range extraArgs {
			args[k] = v
		}
		ce := chromeEvent{
			Name: e.Kind.String(), Cat: reqCat(e.Read),
			Ts: tsOffset + e.At, Pid: pid, Tid: tid, Args: args,
		}
		if e.End > e.At {
			ce.Phase = "X"
			ce.Dur = e.End - e.At
		} else {
			ce.Phase = "i"
			ce.Scope = "t"
		}
		*out = append(*out, ce)
	}
}

func laneName(thread int) string {
	if thread < 0 {
		return "writeback"
	}
	return fmt.Sprintf("thread %d", thread)
}

func reqCat(read bool) string {
	if read {
		return "read"
	}
	return "write"
}

// Filter selects a subset of a trace. Nil pointer fields match anything.
type Filter struct {
	// Thread, Channel, Bank restrict by location (writebacks are thread -1).
	Thread, Channel, Bank *int
	// From/To bound the cycle range: an event is kept when it overlaps
	// [From, To]. To == 0 means unbounded.
	From, To uint64
}

// Match reports whether e passes the filter.
func (f Filter) Match(e Event) bool {
	if f.Thread != nil && e.Thread != *f.Thread {
		return false
	}
	if f.Channel != nil && e.Channel != *f.Channel {
		return false
	}
	if f.Bank != nil && e.Bank != *f.Bank {
		return false
	}
	if e.End < f.From {
		return false
	}
	if f.To != 0 && e.At > f.To {
		return false
	}
	return true
}

// FilterEvents returns the events matching f, preserving order.
func FilterEvents(events []Event, f Filter) []Event {
	out := make([]Event, 0, len(events))
	for _, e := range events {
		if f.Match(e) {
			out = append(out, e)
		}
	}
	return out
}

// GroupByRequest splits a trace into per-request event groups, ordered by
// each request's first appearance.
func GroupByRequest(events []Event) [][]Event {
	idx := map[uint64]int{}
	var groups [][]Event
	for _, e := range events {
		i, ok := idx[e.ReqID]
		if !ok {
			i = len(groups)
			idx[e.ReqID] = i
			groups = append(groups, nil)
		}
		groups[i] = append(groups[i], e)
	}
	return groups
}
