package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// GaugeFunc reads an instantaneous value; now is the current cycle, so rate
// gauges (busy fraction, events/cycle) can normalize by elapsed time.
type GaugeFunc func(now uint64) float64

// Counter is a monotonically increasing metric. All methods are nil-safe: a
// nil *Counter (from a nil Registry) is a no-op, so instrumented code can
// increment unconditionally. Increments and reads are atomic, so a serving
// daemon's worker goroutines can bump counters while /metrics renders the
// registry without a data race (histograms and gauges stay single-writer:
// concurrent users must hold their own lock, as the server's metricsMu does).
type Counter struct {
	name string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram counts observations into buckets with inclusive upper bounds; an
// implicit overflow bucket catches the rest. Nil-safe like Counter.
type Histogram struct {
	name   string
	bounds []uint64
	counts []uint64
	n      uint64
	sum    uint64
	max    uint64
}

// NewHistogram builds a standalone histogram (used when no registry exists).
// bounds must be ascending.
func NewHistogram(name string, bounds []uint64) *Histogram {
	return &Histogram{name: name, bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// ObserveN records the same value n times, exactly as n Observe calls would
// but in O(1) — the two-speed clock uses it to replay a skip window's worth
// of identical per-cycle observations.
func (h *Histogram) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i] += n
	h.n += n
	h.sum += v * n
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Mean returns the mean observed value.
func (h *Histogram) Mean() float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest observed value.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observed distribution
// by linear interpolation inside the bucket that holds the target rank: ranks
// below a bucket's cumulative count are spread uniformly across [lower bound,
// upper bound). The overflow bucket interpolates toward the observed maximum,
// so p99 of a histogram whose tail escaped the last bound still reports a
// finite, data-bounded value. Returns 0 for an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.n == 0 {
		return 0
	}
	if q <= 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.n)
	var cum uint64
	lower := 0.0
	for i, c := range h.counts {
		if c == 0 {
			if i < len(h.bounds) {
				lower = float64(h.bounds[i])
			}
			continue
		}
		upper := float64(h.max)
		if i < len(h.bounds) {
			upper = float64(h.bounds[i])
		}
		if upper > float64(h.max) {
			upper = float64(h.max) // the data never reached the bound
		}
		if upper < lower {
			upper = lower
		}
		next := cum + c
		if rank <= float64(next) {
			frac := (rank - float64(cum)) / float64(c)
			return lower + frac*(upper-lower)
		}
		cum = next
		lower = upper
	}
	return float64(h.max)
}

// Buckets returns the (bounds, counts) pair; counts has one extra overflow
// slot.
func (h *Histogram) Buckets() ([]uint64, []uint64) {
	if h == nil {
		return nil, nil
	}
	return h.bounds, h.counts
}

// String renders "≤b:n" pairs for humans.
func (h *Histogram) String() string {
	if h == nil || h.n == 0 {
		return "(empty)"
	}
	out := ""
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		if i < len(h.bounds) {
			out += fmt.Sprintf("≤%d:%d", h.bounds[i], c)
		} else {
			out += fmt.Sprintf(">%d:%d", h.bounds[len(h.bounds)-1], c)
		}
	}
	return out
}

type gauge struct {
	name    string
	f       GaugeFunc
	sampled bool
	series  []float64 // one value per Registry sample, sampled gauges only
}

// Metric is one (name, value) pair of a final snapshot.
type Metric struct {
	Name  string
	Value float64
}

// Registry holds a run's metrics and samples its Sampled gauges every
// interval cycles into time series. It is single-threaded, like the
// simulator. The zero Registry is not usable; a nil *Registry is and
// disables everything (registrations return nil-safe handles).
type Registry struct {
	interval uint64
	next     uint64
	cycles   []uint64 // cycles at which samples were taken
	gauges   []*gauge
	byName   map[string]*gauge
	counters []*Counter
	hists    []*Histogram
}

// NewRegistry builds a registry sampling every interval cycles (≥ 1).
func NewRegistry(interval uint64) *Registry {
	if interval == 0 {
		interval = 1000
	}
	return &Registry{interval: interval, byName: map[string]*gauge{}}
}

// Interval returns the sampling period in cycles.
func (r *Registry) Interval() uint64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// Gauge registers a read-on-demand metric reported only in the final
// snapshot. Nil registries ignore the registration.
func (r *Registry) Gauge(name string, f GaugeFunc) { r.addGauge(name, f, false) }

// Sampled registers a gauge that is additionally recorded as a time series
// every sampling interval.
func (r *Registry) Sampled(name string, f GaugeFunc) { r.addGauge(name, f, true) }

func (r *Registry) addGauge(name string, f GaugeFunc, sampled bool) {
	if r == nil {
		return
	}
	if g, ok := r.byName[name]; ok { // re-registration replaces the reader
		g.f = f
		g.sampled = g.sampled || sampled
		return
	}
	g := &gauge{name: name, f: f, sampled: sampled}
	r.gauges = append(r.gauges, g)
	r.byName[name] = g
}

// Counter registers (or returns the existing) named counter. A nil registry
// returns a nil counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	for _, c := range r.counters {
		if c.name == name {
			return c
		}
	}
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Histogram registers (or returns the existing) named histogram.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	if r == nil {
		return nil
	}
	for _, h := range r.hists {
		if h.name == name {
			return h
		}
	}
	h := NewHistogram(name, bounds)
	r.hists = append(r.hists, h)
	return h
}

// MaybeSample records a sample when the interval has elapsed. The run loop
// calls this every cycle; off-interval cycles cost one comparison.
func (r *Registry) MaybeSample(now uint64) {
	if now < r.next {
		return
	}
	r.cycles = append(r.cycles, now)
	for _, g := range r.gauges {
		if g.sampled {
			g.series = append(g.series, g.f(now))
		}
	}
	r.next = now + r.interval
}

// NextSampleAt returns the cycle of the next scheduled sample (0 for nil).
// The two-speed clock never fast-forwards past it, so every sample reads the
// machine at exactly the cycle an unskipped run would.
func (r *Registry) NextSampleAt() uint64 {
	if r == nil {
		return 0
	}
	return r.next
}

// Series returns a sampled gauge's time series (shared slices; do not
// mutate). ok is false for unknown or unsampled names.
func (r *Registry) Series(name string) (cycles []uint64, values []float64, ok bool) {
	if r == nil {
		return nil, nil, false
	}
	g := r.byName[name]
	if g == nil || !g.sampled {
		return nil, nil, false
	}
	return r.cycles, g.series, true
}

// Value evaluates one gauge or counter now. ok is false for unknown names.
func (r *Registry) Value(name string, now uint64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	if g := r.byName[name]; g != nil {
		return g.f(now), true
	}
	for _, c := range r.counters {
		if c.name == name {
			return float64(c.Value()), true
		}
	}
	return 0, false
}

// Final snapshots every gauge and counter at cycle now, in registration
// order (deterministic).
func (r *Registry) Final(now uint64) []Metric {
	if r == nil {
		return nil
	}
	out := make([]Metric, 0, len(r.gauges)+len(r.counters))
	for _, g := range r.gauges {
		out = append(out, Metric{Name: g.name, Value: g.f(now)})
	}
	for _, c := range r.counters {
		out = append(out, Metric{Name: c.name, Value: float64(c.Value())})
	}
	return out
}

// metricsLine is one JSONL record of the metrics export.
type metricsLine struct {
	Type     string             `json:"type"`
	Label    string             `json:"label,omitempty"`
	Interval uint64             `json:"interval,omitempty"`
	Cycle    uint64             `json:"cycle,omitempty"`
	Values   map[string]float64 `json:"values,omitempty"`
	Name     string             `json:"name,omitempty"`
	Bounds   []uint64           `json:"bounds,omitempty"`
	Counts   []uint64           `json:"counts,omitempty"`
	Count    uint64             `json:"count,omitempty"`
	Sum      uint64             `json:"sum,omitempty"`
	Max      uint64             `json:"max,omitempty"`
}

// WriteJSONL exports the registry as JSON lines: a meta record, one sample
// record per interval (sampled gauges only), histogram records, and a final
// snapshot of every metric at cycle now. Output is deterministic: map keys
// are marshalled in sorted order and records follow registration order.
func (r *Registry) WriteJSONL(w io.Writer, label string, now uint64) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(metricsLine{Type: "meta", Label: label, Interval: r.interval, Cycle: now}); err != nil {
		return err
	}
	for i, cyc := range r.cycles {
		vals := map[string]float64{}
		for _, g := range r.gauges {
			if g.sampled {
				vals[g.name] = g.series[i]
			}
		}
		if err := enc.Encode(metricsLine{Type: "sample", Cycle: cyc, Values: vals}); err != nil {
			return err
		}
	}
	for _, h := range r.hists {
		if err := enc.Encode(metricsLine{
			Type: "hist", Name: h.name, Bounds: h.bounds, Counts: h.counts,
			Count: h.n, Sum: h.sum, Max: h.max,
		}); err != nil {
			return err
		}
	}
	vals := map[string]float64{}
	for _, m := range r.Final(now) {
		vals[m.Name] = m.Value
	}
	return enc.Encode(metricsLine{Type: "final", Cycle: now, Values: vals})
}

// Names lists every registered gauge and counter, sorted (for docs/tests).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	var out []string
	for _, g := range r.gauges {
		out = append(out, g.name)
	}
	for _, c := range r.counters {
		out = append(out, c.name)
	}
	sort.Strings(out)
	return out
}
