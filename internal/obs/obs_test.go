package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// Nil handles must be safe no-ops so instrumented code never branches on
// whether observability is enabled.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Gauge("g", func(uint64) float64 { return 1 })
	r.Sampled("s", func(uint64) float64 { return 1 })
	c := r.Counter("c")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter must read 0")
	}
	h := r.Histogram("h", []uint64{1, 2})
	h.Observe(7)
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Fatal("nil histogram must read zero")
	}
	if h.String() != "(empty)" {
		t.Fatalf("nil histogram String = %q", h.String())
	}
	if _, _, ok := r.Series("s"); ok {
		t.Fatal("nil registry must have no series")
	}
	if _, ok := r.Value("g", 0); ok {
		t.Fatal("nil registry must have no values")
	}
	if r.Final(0) != nil || r.Names() != nil {
		t.Fatal("nil registry snapshots must be empty")
	}
	if err := r.WriteJSONL(&bytes.Buffer{}, "x", 0); err != nil {
		t.Fatal(err)
	}
}

func TestNewObserverAllOff(t *testing.T) {
	if ob := New(Options{}); ob != nil {
		t.Fatal("New with everything off must return nil")
	}
	ob := New(Options{Metrics: true})
	if ob == nil || ob.Reg == nil || ob.Trace != nil || ob.Prof != nil {
		t.Fatalf("New(Metrics) = %+v", ob)
	}
	if ob.Reg.Interval() != 1000 {
		t.Fatalf("default interval = %d, want 1000", ob.Reg.Interval())
	}
}

func TestRegistrySampling(t *testing.T) {
	r := NewRegistry(10)
	v := 0.0
	r.Sampled("x", func(uint64) float64 { return v })
	r.Gauge("y", func(uint64) float64 { return 42 })
	for now := uint64(1); now <= 35; now++ {
		v = float64(now)
		r.MaybeSample(now)
	}
	cycles, vals, ok := r.Series("x")
	if !ok {
		t.Fatal("series x missing")
	}
	// First sample fires on the first cycle, then every 10 cycles.
	wantCycles := []uint64{1, 11, 21, 31}
	if len(cycles) != len(wantCycles) {
		t.Fatalf("sampled at %v, want %v", cycles, wantCycles)
	}
	for i, c := range wantCycles {
		if cycles[i] != c || vals[i] != float64(c) {
			t.Fatalf("sample %d = (%d, %v), want (%d, %d)", i, cycles[i], vals[i], c, c)
		}
	}
	if _, _, ok := r.Series("y"); ok {
		t.Fatal("unsampled gauge must not expose a series")
	}
	if got, ok := r.Value("y", 0); !ok || got != 42 {
		t.Fatalf("Value(y) = %v, %v", got, ok)
	}
	fin := r.Final(99)
	if len(fin) != 2 || fin[0].Name != "x" || fin[1].Name != "y" {
		t.Fatalf("Final = %+v, want registration order x,y", fin)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram("h", []uint64{1, 4})
	for _, v := range []uint64{0, 1, 2, 4, 5, 100} {
		h.Observe(v)
	}
	_, counts := h.Buckets()
	// ≤1: {0,1}; ≤4: {2,4}; overflow: {5,100}
	if counts[0] != 2 || counts[1] != 2 || counts[2] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if h.Count() != 6 || h.Max() != 100 {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
}

func TestTracerFinishCancelsOpenRequests(t *testing.T) {
	tr := NewTracer()
	tr.Emit(Event{Kind: KEnqueue, At: 1, End: 1, ReqID: 7})
	tr.Emit(Event{Kind: KEnqueue, At: 2, End: 2, ReqID: 8})
	tr.Emit(Event{Kind: KDone, At: 50, End: 50, ReqID: 7})
	tr.Finish(100)
	var cancels []uint64
	for _, e := range tr.Events() {
		if e.Kind == KCancel {
			cancels = append(cancels, e.ReqID)
			if e.At != 100 {
				t.Fatalf("cancel at %d, want final cycle 100", e.At)
			}
		}
	}
	if len(cancels) != 1 || cancels[0] != 8 {
		t.Fatalf("cancelled %v, want [8]", cancels)
	}
}

func TestFilter(t *testing.T) {
	th0, ch1 := 0, 1
	events := []Event{
		{Kind: KEnqueue, At: 10, End: 10, ReqID: 1, Thread: 0, Channel: 0},
		{Kind: KEnqueue, At: 20, End: 20, ReqID: 2, Thread: 1, Channel: 1},
		{Kind: KData, At: 30, End: 40, ReqID: 1, Thread: 0, Channel: 0},
	}
	if got := FilterEvents(events, Filter{Thread: &th0}); len(got) != 2 {
		t.Fatalf("thread filter kept %d, want 2", len(got))
	}
	if got := FilterEvents(events, Filter{Channel: &ch1}); len(got) != 1 || got[0].ReqID != 2 {
		t.Fatalf("channel filter = %+v", got)
	}
	// Range [35, 100]: the spanning KData event overlaps, the instants do not.
	if got := FilterEvents(events, Filter{From: 35, To: 100}); len(got) != 1 || got[0].Kind != KData {
		t.Fatalf("range filter = %+v", got)
	}
	// To == 0 means unbounded.
	if got := FilterEvents(events, Filter{From: 15}); len(got) != 2 {
		t.Fatalf("open range kept %d, want 2", len(got))
	}
}

func TestGroupByRequest(t *testing.T) {
	events := []Event{
		{Kind: KEnqueue, ReqID: 5},
		{Kind: KEnqueue, ReqID: 3},
		{Kind: KDone, ReqID: 5},
	}
	groups := GroupByRequest(events)
	if len(groups) != 2 || groups[0][0].ReqID != 5 || len(groups[0]) != 2 || groups[1][0].ReqID != 3 {
		t.Fatalf("groups = %+v", groups)
	}
}

// The Chrome export must be one valid JSON object with a traceEvents array of
// well-formed records: metadata ("M"), complete slices ("X") with durations,
// and instants ("i").
func TestWriteChromeValidJSON(t *testing.T) {
	events := []Event{
		{Kind: KEnqueue, At: 1, End: 1, ReqID: 1, Thread: 0, Channel: 0, Addr: 0x1000},
		{Kind: KQueued, At: 1, End: 9, ReqID: 1, Thread: 0, Channel: 0, Addr: 0x1000},
		{Kind: KIssue, At: 9, End: 9, ReqID: 1, Thread: 0, Channel: 0, Outcome: "hit"},
		{Kind: KData, At: 54, End: 74, ReqID: 1, Thread: 0, Channel: 0},
		{Kind: KDone, At: 74, End: 74, ReqID: 1, Thread: 0, Channel: 0},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			Ts    uint64 `json:"ts"`
			Dur   uint64 `json:"dur"`
			Pid   int    `json:"pid"`
			Tid   int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		phases[e.Phase]++
		if e.Phase == "X" && e.Dur == 0 {
			t.Fatalf("complete slice %q with zero duration", e.Name)
		}
	}
	// 2 metadata records for the one lane, 2 slices (queued, data), 3 instants.
	if phases["M"] != 2 || phases["X"] != 2 || phases["i"] != 3 {
		t.Fatalf("phase counts = %v", phases)
	}
}

func TestWriteJSONLRoundTrippable(t *testing.T) {
	events := []Event{
		{Kind: KEnqueue, At: 1, End: 1, ReqID: 1, Addr: 0xbeef, Thread: 2, Queue: 3},
		{Kind: KData, At: 5, End: 9, ReqID: 1, Addr: 0xbeef, Thread: 2},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line %q: %v", ln, err)
		}
		if m["addr"] != "0xbeef" {
			t.Fatalf("addr = %v, want hex string", m["addr"])
		}
	}
	if !strings.Contains(lines[1], `"end":9`) {
		t.Fatalf("phase event must carry end: %s", lines[1])
	}
}

func TestRegistryWriteJSONL(t *testing.T) {
	r := NewRegistry(5)
	r.Sampled("depth", func(now uint64) float64 { return float64(now) })
	h := r.Histogram("lat", []uint64{10})
	h.Observe(3)
	h.Observe(50)
	for now := uint64(1); now <= 12; now++ {
		r.MaybeSample(now)
	}
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, "test-run", 12); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// meta + 3 samples (cycles 1, 6, 11) + 1 hist + final
	if len(lines) != 6 {
		t.Fatalf("%d lines: %v", len(lines), lines)
	}
	var meta map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatal(err)
	}
	if meta["type"] != "meta" || meta["label"] != "test-run" {
		t.Fatalf("meta = %v", meta)
	}
	var last map[string]any
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last["type"] != "final" {
		t.Fatalf("last record = %v, want final", last)
	}
}

func TestLoopProfStandalone(t *testing.T) {
	p := NewLoopProf(nil)
	fired := uint64(0)
	for now := uint64(1); now <= 100; now++ {
		fired += now % 3 // 0,1,2 events per cycle
		p.cycle(now, fired)
	}
	p.finish(100)
	if p.Cycles() != 100 {
		t.Fatalf("Cycles = %d", p.Cycles())
	}
	if p.Hist.Count() != 100 || p.Hist.Max() != 2 {
		t.Fatalf("hist count %d max %d", p.Hist.Count(), p.Hist.Max())
	}
	if s := p.Summary(); !strings.Contains(s, "event loop: 100 cycles") {
		t.Fatalf("Summary = %q", s)
	}
}
