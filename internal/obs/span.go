package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// This file is the wall-clock half of the tracing story. The Tracer in
// trace.go records the *simulated* clock domain — request lifecycles in
// cycles, deterministic, single-threaded. The Spanner records the *serving*
// clock domain — what the daemon spends real time on per job: admission,
// queue wait, warmup, simulation, response. Both export Chrome trace_event
// JSON, so one Perfetto file can show a job's wall-clock spans next to its
// simulation's cycle-domain lifecycle, correlated by a job-id attribute
// (WriteChromeJobTrace).
//
// Unlike the rest of the package, the Spanner is safe for concurrent use:
// spans are started, annotated, and ended from HTTP handlers, pool workers,
// and the run loop at once. It is still nil-safe in the package's style — a
// nil *Spanner or nil *Span turns every operation into a no-op, so span hooks
// cost instrumented code one pointer check when tracing is off.

// SpanID identifies one span within a Spanner. 0 is "no span".
type SpanID uint64

// Attr is one key=value annotation on a span.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// A builds an Attr.
func A(key, val string) Attr { return Attr{Key: key, Val: val} }

// Span is one live wall-clock span. Mutations go through methods, which
// lock the owning Spanner; the exported snapshot form is SpanRecord.
type Span struct {
	sp     *Spanner
	id     SpanID
	root   SpanID // the top of this span's tree (its own id for roots)
	parent SpanID
	name   string
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
}

// SpanRecord is an immutable snapshot of one span.
type SpanRecord struct {
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"`
	Root   SpanID    `json:"root"`
	Name   string    `json:"name"`
	Start  time.Time `json:"start"`
	// End is zero while the span is still open.
	End   time.Time `json:"end,omitempty"`
	Attrs []Attr    `json:"attrs,omitempty"`
}

// Open reports whether the span had not ended when the snapshot was taken.
func (r SpanRecord) Open() bool { return r.End.IsZero() }

// Duration is End-Start for closed spans; open spans are measured to now.
func (r SpanRecord) Duration(now time.Time) time.Duration {
	if r.Open() {
		return now.Sub(r.Start)
	}
	return r.End.Sub(r.Start)
}

// Attr returns the value of the named attribute ("" when absent).
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val
		}
	}
	return ""
}

// Spanner collects wall-clock spans with bounded retention. All methods are
// safe for concurrent use and nil-safe.
type Spanner struct {
	mu      sync.Mutex
	base    time.Time
	next    SpanID
	spans   []*Span
	cap     int
	dropped uint64
}

// NewSpanner builds a Spanner retaining up to capacity spans (<=0 selects
// 8192). When full, the oldest *ended* spans are dropped first; open spans
// are never dropped.
func NewSpanner(capacity int) *Spanner {
	if capacity <= 0 {
		capacity = 8192
	}
	return &Spanner{base: time.Now(), cap: capacity}
}

func (sp *Spanner) lock()   { sp.mu.Lock() }
func (sp *Spanner) unlock() { sp.mu.Unlock() }

// Base is the spanner's epoch: Chrome exports report timestamps in
// microseconds since it.
func (sp *Spanner) Base() time.Time {
	if sp == nil {
		return time.Time{}
	}
	return sp.base
}

// Dropped reports how many ended spans retention has discarded.
func (sp *Spanner) Dropped() uint64 {
	if sp == nil {
		return 0
	}
	sp.lock()
	defer sp.unlock()
	return sp.dropped
}

// Start opens a root span.
func (sp *Spanner) Start(name string, attrs ...Attr) *Span {
	if sp == nil {
		return nil
	}
	sp.lock()
	defer sp.unlock()
	sp.next++
	s := &Span{sp: sp, id: sp.next, root: sp.next, name: name, start: time.Now(), attrs: attrs}
	sp.add(s)
	return s
}

// Child opens a span nested under s (nil-safe: a nil parent yields nil).
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	sp := s.sp
	sp.lock()
	defer sp.unlock()
	sp.next++
	c := &Span{sp: sp, id: sp.next, root: s.root, parent: s.id, name: name, start: time.Now(), attrs: attrs}
	sp.add(c)
	return c
}

// add appends under the lock, evicting the oldest ended spans beyond cap.
func (sp *Spanner) add(s *Span) {
	sp.spans = append(sp.spans, s)
	if len(sp.spans) <= sp.cap {
		return
	}
	for i, old := range sp.spans {
		if !old.end.IsZero() {
			sp.spans = append(sp.spans[:i], sp.spans[i+1:]...)
			sp.dropped++
			return
		}
	}
	// Everything is open (pathological); retain rather than lose live spans.
}

// SetAttr sets (or replaces) an attribute on the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.sp.lock()
	defer s.sp.unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = val
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
}

// End closes the span at now. Ending an ended span is a no-op, so defer-style
// cleanup can race a happy-path End safely.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.sp.lock()
	defer s.sp.unlock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
}

// ID returns the span's id (0 for nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// Len reports how many spans the buffer currently retains.
func (sp *Spanner) Len() int {
	if sp == nil {
		return 0
	}
	sp.lock()
	defer sp.unlock()
	return len(sp.spans)
}

// Snapshot copies every retained span, in start order.
func (sp *Spanner) Snapshot() []SpanRecord {
	if sp == nil {
		return nil
	}
	sp.lock()
	defer sp.unlock()
	out := make([]SpanRecord, len(sp.spans))
	for i, s := range sp.spans {
		out[i] = SpanRecord{
			ID: s.id, Parent: s.parent, Root: s.root, Name: s.name,
			Start: s.start, End: s.end,
			Attrs: append([]Attr(nil), s.attrs...),
		}
	}
	return out
}

// FilterSpans returns the spans for which pred holds on the span itself or on
// any ancestor — a matching span brings its whole subtree. spans must be in
// start order (parents before children), which Snapshot guarantees.
func FilterSpans(spans []SpanRecord, pred func(SpanRecord) bool) []SpanRecord {
	matched := make(map[SpanID]bool, len(spans))
	var out []SpanRecord
	for _, s := range spans {
		if pred(s) || matched[s.Parent] {
			matched[s.ID] = true
			out = append(out, s)
		}
	}
	return out
}

// spanJSON is the JSONL wire form of a SpanRecord.
type spanJSON struct {
	ID     SpanID `json:"id"`
	Parent SpanID `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartUs/EndUs are microseconds since the export's base time.
	StartUs int64  `json:"start_us"`
	EndUs   int64  `json:"end_us,omitempty"`
	Open    bool   `json:"open,omitempty"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// WriteSpanJSONL exports spans as JSON lines with timestamps in microseconds
// since base.
func WriteSpanJSONL(w io.Writer, spans []SpanRecord, base time.Time) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		js := spanJSON{
			ID: s.ID, Parent: s.Parent, Name: s.Name,
			StartUs: s.Start.Sub(base).Microseconds(),
			Attrs:   s.Attrs,
		}
		if s.Open() {
			js.Open = true
		} else {
			js.EndUs = s.End.Sub(base).Microseconds()
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return nil
}

// wallPid is the Chrome-export process id hosting every wall-clock span
// track; cycle-domain lanes start at cyclePidBase + channel so the two
// domains never collide.
const (
	wallPid      = 1
	cyclePidBase = 100
)

// chromeSpanEvents renders spans as Chrome trace events: one process for the
// wall-clock domain, one track (tid) per span tree, so concurrent jobs render
// as parallel tracks and nested spans stack within their job's track. Open
// spans are drawn to now.
func chromeSpanEvents(spans []SpanRecord, base time.Time) []chromeEvent {
	now := time.Now()
	out := []chromeEvent{{
		Name: "process_name", Phase: "M", Pid: wallPid,
		Args: map[string]any{"name": "smtdramd (wall clock, µs)"},
	}}
	named := map[SpanID]bool{}
	for _, s := range spans {
		tid := int(s.Root)
		if !named[s.Root] {
			named[s.Root] = true
			track := fmt.Sprintf("trace %d", s.Root)
			for _, r := range spans {
				if r.ID == s.Root {
					if job := r.Attr("job"); job != "" {
						track = job
					} else {
						track = fmt.Sprintf("%s %d", r.Name, r.Root)
					}
					break
				}
			}
			out = append(out, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: wallPid, Tid: tid,
				Args: map[string]any{"name": track},
			})
		}
		args := map[string]any{"span": uint64(s.ID)}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		dur := uint64(s.Duration(now).Microseconds())
		if dur == 0 {
			dur = 1 // keep zero-length phases visible on the timeline
		}
		if s.Open() {
			args["open"] = true
		}
		out = append(out, chromeEvent{
			Name: s.Name, Cat: "wall", Phase: "X",
			Ts: uint64(s.Start.Sub(base).Microseconds()), Dur: dur,
			Pid: wallPid, Tid: tid, Args: args,
		})
	}
	return out
}

// WriteChromeSpans exports wall-clock spans alone as Chrome trace_event JSON
// (the daemon-wide /debug/trace payload).
func WriteChromeSpans(w io.Writer, spans []SpanRecord, base time.Time) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: chromeSpanEvents(spans, base)}
	return json.NewEncoder(w).Encode(&out)
}

// JobTrace bundles one served job's two clock domains for a single Perfetto
// file: the daemon's wall-clock spans, and (when the job was traced) the
// simulation's cycle-domain request lifecycle, anchored so cycle 0 lands at
// the wall-clock instant the run started.
type JobTrace struct {
	// JobID correlates the two domains: it is stamped into the args of every
	// exported event.
	JobID string
	// Spans are the job's wall-clock spans; Base is their epoch.
	Spans []SpanRecord
	Base  time.Time
	// SimEvents is the cycle-domain lifecycle trace (nil when the job was not
	// submitted with tracing). SimStart is the wall-clock instant of cycle 0;
	// the export maps 1 cycle → 1 µs from there, so the cycle domain reads in
	// cycles while sitting at the right spot on the wall timeline.
	SimEvents []Event
	SimStart  time.Time
}

// WriteChromeJobTrace writes the combined two-domain trace as Chrome
// trace_event JSON.
func WriteChromeJobTrace(w io.Writer, t JobTrace) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: chromeSpanEvents(t.Spans, t.Base)}
	if len(t.SimEvents) > 0 {
		offset := uint64(0)
		if !t.SimStart.IsZero() && t.SimStart.After(t.Base) {
			offset = uint64(t.SimStart.Sub(t.Base).Microseconds())
		}
		appendLifecycleEvents(&out.TraceEvents, t.SimEvents, cyclePidBase, offset,
			fmt.Sprintf("job %s · ", t.JobID), map[string]any{"job": t.JobID})
	}
	for i := range out.TraceEvents {
		if out.TraceEvents[i].Phase == "M" {
			continue
		}
		if out.TraceEvents[i].Args == nil {
			out.TraceEvents[i].Args = map[string]any{}
		}
		out.TraceEvents[i].Args["job"] = t.JobID
	}
	return json.NewEncoder(w).Encode(&out)
}
