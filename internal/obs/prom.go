package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// PromName sanitizes a registry metric name into the Prometheus exposition
// alphabet ([a-zA-Z0-9_:]): the registry's dotted names ("event.pending")
// become underscored ("event_pending"), and any other illegal rune is
// replaced with '_'. A leading digit gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): every gauge as a gauge evaluated at cycle now,
// every counter as a counter, and every histogram as the cumulative
// _bucket/_sum/_count triplet. namespace, when non-empty, prefixes each
// metric name ("smtdram" -> "smtdram_jobs_accepted_total"). Output order is
// registration order, so two renders of the same registry diff cleanly.
//
// Counter reads are atomic, so concurrent increments never race the render.
// Gauges and histograms stay single-writer: callers scraping a registry whose
// gauge state or histograms another goroutine mutates (the serving daemon)
// must hold their own lock around both the mutation and the render, as the
// server's metricsMu does.
func (r *Registry) WritePrometheus(w io.Writer, namespace string, now uint64) error {
	return r.WritePrometheusLabeled(w, namespace, now, nil)
}

// Label is one constant label attached to every sample of a labeled render —
// fleet deployments stamp node_id and role so multi-node scrapes stay
// distinguishable.
type Label struct {
	Key, Val string
}

// WritePrometheusLabeled renders like WritePrometheus with the given constant
// labels on every sample. Histogram buckets merge the labels with their `le`
// label. An empty label set renders unlabeled samples, byte-identical to
// WritePrometheus.
func (r *Registry) WritePrometheusLabeled(w io.Writer, namespace string, now uint64, labels []Label) error {
	if r == nil {
		return nil
	}
	prefix := ""
	if namespace != "" {
		prefix = PromName(namespace) + "_"
	}
	// ls is the rendered label set for scalar samples ("" or `{k="v",...}`);
	// lsIn is the same pairs positioned inside a histogram bucket's braces
	// ("" or `k="v",...` followed by ","), so `le` merges in after them.
	var ls, lsIn string
	if len(labels) > 0 {
		var b strings.Builder
		for i, l := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%s=%q", PromName(l.Key), l.Val)
		}
		lsIn = b.String() + ","
		ls = "{" + b.String() + "}"
	}
	for _, g := range r.gauges {
		name := prefix + PromName(g.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", name, name, ls, promFloat(g.f(now))); err != nil {
			return err
		}
	}
	for _, c := range r.counters {
		name := prefix + PromName(c.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", name, name, ls, c.Value()); err != nil {
			return err
		}
	}
	for _, h := range r.hists {
		name := prefix + PromName(h.name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.bounds {
			cum += h.counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", name, lsIn, bound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n%s_sum%s %d\n%s_count%s %d\n",
			name, lsIn, h.n, name, ls, h.sum, name, ls, h.n); err != nil {
			return err
		}
	}
	return nil
}
