// Package obs is the simulator-wide observability layer: a metrics registry
// of counters, gauges, and histograms with optional cycle-interval sampling
// into time series; a request-lifecycle tracer that records every memory
// request's enqueue → schedule → precharge/activate/CAS → data-return
// transitions as structured events (exportable as JSONL and Chrome
// trace_event JSON for Perfetto/about:tracing); and profiling hooks for the
// discrete-event loop.
//
// The package is a leaf: it imports nothing from the simulator, so every
// component (memctrl, dram, cache, cpu, core) can depend on it. All hooks are
// nil-safe — a disabled Observer, Registry, Counter, Histogram, or Tracer
// costs the instrumented code exactly one nil check — so observability is
// free when off and the simulator's determinism is untouched when on.
package obs

// Kind enumerates request-lifecycle transitions. Instant kinds mark a single
// cycle (At == End); phase kinds span [At, End).
type Kind uint8

const (
	// KEnqueue: the request entered a controller channel queue (instant).
	KEnqueue Kind = iota
	// KReject: the request bounced off a full channel queue (instant). A
	// rejected request is retried by the issuer and re-traced on acceptance.
	KReject
	// KQueued: the queueing phase, enqueue → dispatch (phase).
	KQueued
	// KIssue: the scheduler dispatched the request to its bank (instant).
	KIssue
	// KPrecharge: the bank precharged a conflicting open row (phase).
	KPrecharge
	// KActivate: the row access / activation (phase).
	KActivate
	// KCAS: the column access (phase).
	KCAS
	// KData: the line's data-bus transfer (phase).
	KData
	// KDone: the last data beat transferred — terminal (instant).
	KDone
	// KCancel: the run ended with the request still in flight — terminal
	// (instant). Emitted by Tracer.Finish so every traced request reaches a
	// terminal state.
	KCancel
	// KFault: the fault injector hit this request's service — Outcome
	// carries the ECC/drop disposition ("corrected", "uncorrected",
	// "dropped") (instant).
	KFault
	// KRetry: the controller re-queued the request after a fault; Outcome
	// carries the attempt number, or "gave up" when retries were exhausted
	// (instant).
	KRetry
	// KFailover: the request was migrated off a hard-failed channel; the
	// Channel field is the new home and Outcome names the failed channel
	// (instant).
	KFailover
)

var kindNames = [...]string{
	KEnqueue:   "enqueue",
	KReject:    "reject",
	KQueued:    "queued",
	KIssue:     "issue",
	KPrecharge: "precharge",
	KActivate:  "activate",
	KCAS:       "cas",
	KData:      "data",
	KDone:      "done",
	KCancel:    "cancel",
	KFault:     "fault",
	KRetry:     "retry",
	KFailover:  "failover",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Terminal reports whether the kind ends a request's lifecycle.
func (k Kind) Terminal() bool { return k == KDone || k == KCancel }

// Event is one structured request-lifecycle record.
type Event struct {
	// Kind is the transition or phase.
	Kind Kind
	// At and End bound the event in cycles; End == At for instants.
	At, End uint64
	// ReqID is the simulator-unique request identifier.
	ReqID uint64
	// Addr is the physical line address.
	Addr uint64
	// Thread is the originating hardware thread (-1 for writebacks).
	Thread int
	// Channel, Chip, Bank, Row locate the DRAM access.
	Channel, Chip, Bank int
	Row                 uint64
	// Read distinguishes line fills from writebacks.
	Read bool
	// Outcome is the row-buffer outcome ("hit", "closed", "conflict"),
	// set on KIssue events.
	Outcome string
	// Queue is the channel queue length observed on KEnqueue.
	Queue int
}

// Sink receives lifecycle events. *Tracer is the standard implementation;
// tests substitute their own.
type Sink interface {
	Emit(Event)
}

// Options selects which observability subsystems a run enables.
type Options struct {
	// Metrics enables the registry (and cycle sampling of Sampled gauges).
	Metrics bool
	// MetricsInterval is the sampling period in cycles (default 1000).
	MetricsInterval uint64
	// Trace enables the request-lifecycle tracer.
	Trace bool
	// Profile enables event-loop profiling.
	Profile bool
	// Label tags the run in exported output.
	Label string
}

// SkipStats summarizes the two-speed clock's fast-forwarding over one run:
// how many cycles were skipped (their per-cycle bookkeeping replayed in
// aggregate rather than ticked), across how many contiguous windows, and the
// longest single window. Purely an efficiency observation — a skipped run's
// results are byte-identical to an unskipped one — so it lives beside the
// run's Result, not inside it.
type SkipStats struct {
	// Skipped is the total number of cycles fast-forwarded over.
	Skipped uint64
	// Segments is the number of contiguous skip windows.
	Segments uint64
	// Longest is the largest single window in cycles.
	Longest uint64
	// Wall is the total number of wall-clock simulation cycles the run
	// traversed, warmup included — the honest denominator for Rate. (The
	// Result's Cycles field counts only the measured window, so Skipped can
	// legitimately exceed it.)
	Wall uint64
}

// Rate returns the skipped fraction of the run's wall cycles.
func (s SkipStats) Rate() float64 {
	if s.Wall == 0 {
		return 0
	}
	return float64(s.Skipped) / float64(s.Wall)
}

// Observer bundles one run's observability state. Components receive it at
// construction and register their metrics / hold its Trace sink. A nil
// *Observer disables everything.
type Observer struct {
	// Reg is the metrics registry (nil when metrics are off).
	Reg *Registry
	// Trace is the lifecycle tracer (nil when tracing is off).
	Trace *Tracer
	// Prof is the event-loop profiler (nil when profiling is off).
	Prof *LoopProf
	// Label tags the run in exported output.
	Label string
	// FinalCycle is the cycle the run finished at (set by Finish).
	FinalCycle uint64
	// Skip is the run's two-speed-clock summary (zero when skipping was
	// disabled or never engaged). The run loop copies it in before Finish.
	Skip SkipStats
	// OnFinish, when non-nil, runs after Finish — the hook multi-run
	// harnesses use to flush per-run output.
	OnFinish func(*Observer)

	// RunSpan, when non-nil, is the wall-clock span covering this run in a
	// serving trace; the run loop opens "warmup"/"measure" child spans on it
	// at phase boundaries. Wall-clock only — it never feeds back into the
	// simulation, so results stay byte-identical with or without it.
	RunSpan *Span

	// Progress, when non-nil, fires on the run goroutine roughly every
	// ProgressInterval landed cycles — the serving daemon's streaming hook.
	// Unlike registry samples, progress points do NOT constrain the
	// two-speed clock (NextBoundary ignores them): a fast-forwarded window
	// simply reports from its landing cycle, which is exactly when something
	// next happened. The callback may read the simulator freely (same
	// goroutine) but must not mutate it.
	Progress func(now uint64)
	// ProgressInterval is the minimum cycle gap between Progress calls
	// (default 10 000 when Progress is set).
	ProgressInterval uint64
	nextProgress     uint64
}

// New builds an Observer, or returns nil when every subsystem is off, so
// callers can pass the result straight into a config's Observe hook.
func New(o Options) *Observer {
	if !o.Metrics && !o.Trace && !o.Profile {
		return nil
	}
	ob := &Observer{Label: o.Label}
	if o.Metrics {
		iv := o.MetricsInterval
		if iv == 0 {
			iv = 1000
		}
		ob.Reg = NewRegistry(iv)
	}
	if o.Trace {
		ob.Trace = NewTracer()
	}
	if o.Profile {
		ob.Prof = NewLoopProf(ob.Reg)
	}
	return ob
}

// OnCycle is the per-cycle hook the run loop calls after draining the event
// queue: fired is the cumulative event count from the queue.
func (ob *Observer) OnCycle(now, fired uint64) {
	if ob.Prof != nil {
		ob.Prof.cycle(now, fired)
	}
	if ob.Reg != nil {
		ob.Reg.MaybeSample(now)
	}
	if ob.Progress != nil && now >= ob.nextProgress {
		iv := ob.ProgressInterval
		if iv == 0 {
			iv = 10_000
		}
		ob.Progress(now)
		ob.nextProgress = now + iv
	}
}

// NextBoundary returns the next cycle the observer must see land to stay
// byte-identical across a fast-forward — the registry's next sample cycle —
// or 0 when nothing constrains the jump. The run loop clamps skip targets to
// it so sampled gauges are read at exactly the cycles an unskipped run would
// read them.
func (ob *Observer) NextBoundary() uint64 {
	if ob.Reg != nil {
		return ob.Reg.NextSampleAt()
	}
	return 0
}

// OnCycleSkip replays the per-cycle observer bookkeeping for the skipped
// cycles (from, to] in aggregate; fired is the queue's cumulative event
// count as of cycle from, necessarily unchanged through to (the span drain
// surfaces every event cycle separately, through OnEventCycle or by
// landing). No-op when to <= from. Registry sampling needs no replay —
// NextBoundary keeps sample cycles landed.
func (ob *Observer) OnCycleSkip(from, to, fired uint64) {
	if ob.Prof != nil {
		ob.Prof.skip(from, to, fired)
	}
}

// OnEventCycle observes an event cycle a deep-skip span sailed through: the
// cycle's events fired at their exact cycle, but the run loop never landed,
// so the jump-aware skip replay stands in for the landed path's per-cycle
// profiling. Only loop profiling is replayed here — registry sampling is
// bounded by NextBoundary (sample cycles always land), and progress
// reporting is documented to fire at landed cycles only.
func (ob *Observer) OnEventCycle(at, fired uint64) {
	if ob.Prof != nil {
		ob.Prof.cycle(at, fired)
	}
}

// Finish closes the run at its final cycle: open traced requests are
// cancelled, profiling totals close, and OnFinish (if any) fires.
func (ob *Observer) Finish(now uint64) {
	ob.FinalCycle = now
	if ob.Trace != nil {
		ob.Trace.Finish(now)
	}
	if ob.Prof != nil {
		ob.Prof.finish(now)
	}
	if ob.OnFinish != nil {
		ob.OnFinish(ob)
	}
}
