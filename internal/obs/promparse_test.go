package obs

import (
	"strings"
	"testing"
)

const validExposition = `# HELP smtdram_jobs_accepted_total Jobs admitted.
# TYPE smtdram_jobs_accepted_total counter
smtdram_jobs_accepted_total 42
# TYPE smtdram_queue_depth gauge
smtdram_queue_depth 3
# TYPE smtdram_job_latency_served_ms histogram
smtdram_job_latency_served_ms_bucket{le="10"} 1
smtdram_job_latency_served_ms_bucket{le="100"} 4
smtdram_job_latency_served_ms_bucket{le="+Inf"} 5
smtdram_job_latency_served_ms_sum 321
smtdram_job_latency_served_ms_count 5
`

// TestParsePrometheusValid accepts a well-formed exposition and returns its
// families with values and bucket series intact.
func TestParsePrometheusValid(t *testing.T) {
	fams, err := ParsePrometheus(strings.NewReader(validExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	c := fams["smtdram_jobs_accepted_total"]
	if c == nil || c.Type != "counter" || c.Samples["smtdram_jobs_accepted_total"] != 42 {
		t.Fatalf("counter family = %+v", c)
	}
	h := fams["smtdram_job_latency_served_ms"]
	if h == nil || h.Type != "histogram" {
		t.Fatalf("histogram family = %+v", h)
	}
	if len(h.BucketLe) != 3 || h.BucketLe[2] != "+Inf" || h.BucketCount[2] != 5 {
		t.Fatalf("bucket series = %v %v", h.BucketLe, h.BucketCount)
	}
	if h.Sum != 321 || h.Count != 5 {
		t.Fatalf("sum/count = %g/%g", h.Sum, h.Count)
	}
	if n, err := ValidateExposition(strings.NewReader(validExposition)); err != nil || n != 3 {
		t.Fatalf("ValidateExposition = %d, %v", n, err)
	}
}

// TestParsePrometheusViolations: each class of format breakage is rejected
// with an error mentioning the offense — the teeth behind CI's promlint.
func TestParsePrometheusViolations(t *testing.T) {
	cases := []struct {
		name, input, wantErr string
	}{
		{
			"sample without TYPE",
			"smtdram_x_total 1\n",
			"no preceding TYPE",
		},
		{
			"unknown metric type",
			"# TYPE smtdram_x widget\nsmtdram_x 1\n",
			"unknown metric type",
		},
		{
			"duplicate TYPE",
			"# TYPE a counter\na 1\n# TYPE a counter\n",
			"duplicate TYPE",
		},
		{
			"interleaved sample",
			"# TYPE a counter\n# TYPE b counter\na 1\n",
			"interleaved",
		},
		{
			"duplicate sample",
			"# TYPE a counter\na 1\na 2\n",
			"duplicate sample",
		},
		{
			"illegal metric name",
			"# TYPE bad-name counter\nbad-name 1\n",
			"illegal rune",
		},
		{
			"unparsable value",
			"# TYPE a gauge\na forty\n",
			"unparsable sample value",
		},
		{
			"negative counter",
			"# TYPE a counter\na -1\n",
			"negative",
		},
		{
			"histogram without buckets",
			"# TYPE h histogram\nh_sum 1\nh_count 1\n",
			"no buckets",
		},
		{
			"histogram missing +Inf",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
			"want +Inf",
		},
		{
			"non-cumulative buckets",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 5\nh_bucket{le=\"20\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative",
		},
		{
			"bucket bounds not ascending",
			"# TYPE h histogram\nh_bucket{le=\"20\"} 1\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n",
			"not ascending",
		},
		{
			"missing _count",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n",
			"missing _sum or _count",
		},
		{
			"+Inf disagrees with _count",
			"# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n",
			"!= _count",
		},
		{
			"bucket without le label",
			"# TYPE h histogram\nh_bucket{job=\"x\"} 1\n",
			"without le label",
		},
		{
			"zero count non-zero sum",
			"# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 7\nh_count 0\n",
			"zero count",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePrometheus(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("accepted invalid exposition:\n%s", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParsePrometheusOverDaemonRegistry belongs in the server tests (it needs
// a live registry); here we only pin down that HELP lines and blank lines are
// tolerated, since WritePrometheus emits them.
func TestParsePrometheusTolerance(t *testing.T) {
	in := "\n# HELP a something helpful\n# TYPE a counter\na 1\n\n"
	if _, err := ParsePrometheus(strings.NewReader(in)); err != nil {
		t.Fatalf("HELP/blank lines rejected: %v", err)
	}
}
