package obs

import (
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"event.pending":       "event_pending",
		"jobs_accepted_total": "jobs_accepted_total",
		"weird name/π":        "weird_name__",
		"9lives":              "_9lives",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(1000)
	r.Gauge("queue.depth", func(now uint64) float64 { return float64(now) / 2 })
	r.Counter("jobs.accepted").Add(3)
	h := r.Histogram("latency.ms", []uint64{1, 10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var b strings.Builder
	if err := r.WritePrometheus(&b, "smtdram", 10); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE smtdram_queue_depth gauge\nsmtdram_queue_depth 5\n",
		"# TYPE smtdram_jobs_accepted counter\nsmtdram_jobs_accepted 3\n",
		"# TYPE smtdram_latency_ms histogram\n",
		"smtdram_latency_ms_bucket{le=\"1\"} 0\n",
		"smtdram_latency_ms_bucket{le=\"10\"} 1\n",
		"smtdram_latency_ms_bucket{le=\"100\"} 2\n",
		"smtdram_latency_ms_bucket{le=\"+Inf\"} 3\n",
		"smtdram_latency_ms_sum 5055\n",
		"smtdram_latency_ms_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// A nil registry renders nothing and does not crash.
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&b, "x", 0); err != nil {
		t.Fatal(err)
	}
}

func TestObserverProgressHook(t *testing.T) {
	var at []uint64
	ob := &Observer{ProgressInterval: 100, Progress: func(now uint64) { at = append(at, now) }}
	for now := uint64(1); now <= 250; now++ {
		ob.OnCycle(now, 0)
	}
	// First fire at cycle 1 (nextProgress starts at 0), then every >=100.
	want := []uint64{1, 101, 201}
	if len(at) != len(want) {
		t.Fatalf("progress fired at %v, want %v", at, want)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("progress fired at %v, want %v", at, want)
		}
	}
}
