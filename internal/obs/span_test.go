package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanNestingAndAttrs: children record their parent and root, attributes
// set at start and via SetAttr both land in the snapshot, and End freezes the
// record.
func TestSpanNestingAndAttrs(t *testing.T) {
	sp := NewSpanner(16)
	root := sp.Start("job", A("kind", "sim"))
	child := root.Child("admission")
	grand := child.Child("validate", A("step", "1"))
	grand.SetAttr("step", "2")  // replace
	grand.SetAttr("ok", "true") // append
	grand.End()
	child.End()

	recs := sp.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("snapshot has %d spans, want 3", len(recs))
	}
	r0, r1, r2 := recs[0], recs[1], recs[2]
	if r0.Parent != 0 || r0.Root != r0.ID || r0.Name != "job" {
		t.Fatalf("root record = %+v", r0)
	}
	if r1.Parent != r0.ID || r1.Root != r0.ID {
		t.Fatalf("child parent/root = %d/%d, want %d/%d", r1.Parent, r1.Root, r0.ID, r0.ID)
	}
	if r2.Parent != r1.ID || r2.Root != r0.ID {
		t.Fatalf("grandchild parent/root = %d/%d", r2.Parent, r2.Root)
	}
	if r0.Attr("kind") != "sim" {
		t.Fatalf("root kind attr = %q", r0.Attr("kind"))
	}
	if r2.Attr("step") != "2" || r2.Attr("ok") != "true" {
		t.Fatalf("grandchild attrs = %v", r2.Attrs)
	}
	if !r0.Open() || r1.Open() || r2.Open() {
		t.Fatalf("open flags = %v/%v/%v, want open/closed/closed", r0.Open(), r1.Open(), r2.Open())
	}
	if d := r1.Duration(time.Now()); d < 0 {
		t.Fatalf("closed span duration = %v", d)
	}
}

// TestSpannerRetention: beyond capacity the oldest *ended* spans are evicted
// and counted, while open spans survive arbitrary pressure.
func TestSpannerRetention(t *testing.T) {
	sp := NewSpanner(4)
	open := sp.Start("stays-open")
	for i := 0; i < 10; i++ {
		s := sp.Start("churn")
		s.End()
	}
	if got := sp.Len(); got != 4 {
		t.Fatalf("Len = %d, want capacity 4", got)
	}
	if got := sp.Dropped(); got != 7 {
		// 11 started, 4 retained -> 7 dropped, all of them ended churn spans.
		t.Fatalf("Dropped = %d, want 7", got)
	}
	found := false
	for _, r := range sp.Snapshot() {
		if r.ID == open.ID() {
			found = true
			if !r.Open() {
				t.Fatalf("open span was ended by retention")
			}
		}
	}
	if !found {
		t.Fatalf("retention evicted an open span")
	}
}

// TestFilterSpansSubtree: a predicate match on a root brings every
// descendant, and non-matching trees are excluded entirely.
func TestFilterSpansSubtree(t *testing.T) {
	sp := NewSpanner(0)
	a := sp.Start("job", A("job", "j-1"))
	a.Child("run").Child("warmup")
	b := sp.Start("job", A("job", "j-2"))
	b.Child("run")

	got := FilterSpans(sp.Snapshot(), func(r SpanRecord) bool { return r.Attr("job") == "j-1" })
	if len(got) != 3 {
		t.Fatalf("filter kept %d spans, want 3 (root + 2 descendants)", len(got))
	}
	for _, r := range got {
		if r.Root != a.ID() {
			t.Fatalf("filtered span %d has root %d, want tree %d only", r.ID, r.Root, a.ID())
		}
	}
}

// TestSpanNilSafety: every operation on a nil Spanner/Span is a no-op, the
// contract that lets span hooks run unconditionally when tracing is off.
func TestSpanNilSafety(t *testing.T) {
	var sp *Spanner
	if sp.Start("x") != nil {
		t.Fatalf("nil Spanner.Start returned a span")
	}
	if sp.Snapshot() != nil || sp.Len() != 0 || sp.Dropped() != 0 {
		t.Fatalf("nil Spanner reads are not empty")
	}
	if !sp.Base().IsZero() {
		t.Fatalf("nil Spanner base not zero")
	}
	var s *Span
	s.SetAttr("k", "v")
	s.End()
	if s.Child("c") != nil {
		t.Fatalf("nil Span.Child returned a span")
	}
	if s.ID() != 0 {
		t.Fatalf("nil Span.ID = %d", s.ID())
	}
}

// TestSpannerConcurrent exercises the Spanner from many goroutines under the
// race detector: starts, children, attrs, ends, and snapshots interleaved.
func TestSpannerConcurrent(t *testing.T) {
	sp := NewSpanner(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s := sp.Start("job")
				c := s.Child("phase")
				c.SetAttr("i", "x")
				c.End()
				s.End()
				_ = sp.Snapshot()
				_ = sp.Len()
			}
		}()
	}
	wg.Wait()
	if sp.Len() > 64 {
		t.Fatalf("Len = %d exceeds capacity", sp.Len())
	}
}

// TestWriteSpanJSONL: every retained span becomes one JSON line with
// microsecond offsets from base and the open flag on unfinished spans.
func TestWriteSpanJSONL(t *testing.T) {
	sp := NewSpanner(0)
	r := sp.Start("job", A("job", "j-9"))
	r.Child("run").End()

	var buf bytes.Buffer
	if err := WriteSpanJSONL(&buf, sp.Snapshot(), sp.Base()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	if open, _ := lines[0]["open"].(bool); !open {
		t.Fatalf("root line missing open flag: %v", lines[0])
	}
	if _, ok := lines[1]["open"]; ok {
		t.Fatalf("ended span marked open: %v", lines[1])
	}
}

// TestWriteChromeJobTrace: the combined export is valid Chrome trace JSON
// containing both clock domains — wall spans on the wall pid, cycle-domain
// lifecycle slices on the cycle pids — every non-metadata event stamped with
// the job id, and the cycle events offset to the simulation's wall start.
func TestWriteChromeJobTrace(t *testing.T) {
	sp := NewSpanner(0)
	root := sp.Start("job", A("job", "j-5"))
	run := root.Child("run")
	simStart := time.Now()
	tr := NewTracer()
	tr.Emit(Event{Kind: KEnqueue, At: 1, End: 1, ReqID: 7, Addr: 0x40, Thread: 0, Read: true})
	tr.Emit(Event{Kind: KQueued, At: 1, End: 20, ReqID: 7, Addr: 0x40, Thread: 0, Read: true})
	tr.Emit(Event{Kind: KIssue, At: 20, End: 20, ReqID: 7, Addr: 0x40, Thread: 0, Read: true, Outcome: "hit"})
	tr.Emit(Event{Kind: KDone, At: 90, End: 90, ReqID: 7, Addr: 0x40, Thread: 0, Read: true})
	run.End()
	root.End()

	var buf bytes.Buffer
	err := WriteChromeJobTrace(&buf, JobTrace{
		JobID: "j-5", Spans: sp.Snapshot(), Base: sp.Base(),
		SimEvents: tr.Events(), SimStart: simStart,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Pid   int            `json:"pid"`
			Ts    uint64         `json:"ts"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var wall, cycle int
	for _, ev := range out.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.Args["job"] != "j-5" {
			t.Fatalf("event %q missing job correlation arg: %v", ev.Name, ev.Args)
		}
		switch {
		case ev.Pid == wallPid:
			wall++
		case ev.Pid >= cyclePidBase:
			cycle++
			wallOff := uint64(simStart.Sub(sp.Base()).Microseconds())
			if ev.Ts < wallOff {
				t.Fatalf("cycle event at ts=%d precedes sim start offset %d", ev.Ts, wallOff)
			}
		default:
			t.Fatalf("event %q on unexpected pid %d", ev.Name, ev.Pid)
		}
	}
	if wall == 0 || cycle == 0 {
		t.Fatalf("export has wall=%d cycle=%d events, want both domains present", wall, cycle)
	}
}

// TestWriteChromeSpansValid: the daemon-wide /debug/trace payload parses and
// names the wall-clock process.
func TestWriteChromeSpansValid(t *testing.T) {
	sp := NewSpanner(0)
	sp.Start("job", A("job", "j-1")).End()

	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, sp.Snapshot(), sp.Base()); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"traceEvents"`) || !strings.Contains(s, "wall clock") {
		t.Fatalf("Chrome span export missing expected structure: %s", s)
	}
	var any map[string]any
	if err := json.Unmarshal(buf.Bytes(), &any); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
}

// TestHistogramQuantile: interpolation inside buckets, the overflow bucket
// bounded by the observed max, and edge cases (empty, clamped q).
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram("lat", []uint64{10, 100, 1000})
	if h.Quantile(0.5) != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", h.Quantile(0.5))
	}
	// 100 observations uniform in (10,100]: the p50 interpolates near the
	// middle of that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(55)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 10 || p50 > 100 {
		t.Fatalf("p50 = %v, want inside (10,100]", p50)
	}
	// Overflow: values beyond the last bound interpolate toward the max, never
	// beyond it.
	h2 := NewHistogram("lat", []uint64{10})
	h2.Observe(500)
	h2.Observe(900)
	if q := h2.Quantile(0.99); q > 900 {
		t.Fatalf("overflow p99 = %v exceeds observed max 900", q)
	}
	if q := h2.Quantile(1.0); q != 900 {
		t.Fatalf("p100 = %v, want the max 900", q)
	}
	if q := h2.Quantile(2.0); q != 900 {
		t.Fatalf("clamped q>1 = %v, want 900", q)
	}
	var hn *Histogram
	if hn.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram quantile nonzero")
	}
}
