package obs

import (
	"fmt"
	"strings"
	"time"
)

// megacycle is the wall-time reporting granularity.
const megacycle = 1_000_000

// LoopProf profiles the discrete-event loop: an events-fired-per-cycle
// histogram (how bursty the event queue drain is), and wall time per
// simulated megacycle (how fast the simulator itself runs). Wall-clock data
// is deliberately kept out of the deterministic metrics export; it is
// reported through Summary instead.
type LoopProf struct {
	// Hist is the events-fired-per-cycle histogram. When the profiler is
	// built over a Registry the histogram is registered there too.
	Hist *Histogram

	cycles    uint64
	lastFired uint64
	start     time.Time
	megaStart time.Time
	nextMega  uint64
	megaWall  []time.Duration
	total     time.Duration
}

// NewLoopProf builds a profiler; reg may be nil (standalone histogram).
func NewLoopProf(reg *Registry) *LoopProf {
	bounds := []uint64{0, 1, 2, 4, 8, 16, 32}
	p := &LoopProf{nextMega: megacycle, start: time.Now()}
	p.megaStart = p.start
	if reg != nil {
		p.Hist = reg.Histogram("event.events_per_cycle", bounds)
	} else {
		p.Hist = NewHistogram("event.events_per_cycle", bounds)
	}
	return p
}

// cycle records one simulated cycle; fired is the queue's cumulative count.
func (p *LoopProf) cycle(now, fired uint64) {
	p.cycles++
	p.Hist.Observe(fired - p.lastFired)
	p.lastFired = fired
	if now >= p.nextMega {
		p.megaWall = append(p.megaWall, time.Since(p.megaStart))
		p.megaStart = time.Now()
		p.nextMega += megacycle
	}
}

// skip replays cycle for every skipped cycle in (from, to] at once: the first
// cycle consumes any outstanding fired delta (always zero in practice — the
// clock never skips across a pending event), the rest observe zero, and the
// megacycle wall clock catches up one entry per crossed mark, exactly as the
// per-cycle path would have appended them.
func (p *LoopProf) skip(from, to, fired uint64) {
	if to <= from {
		return
	}
	k := to - from
	p.cycles += k
	p.Hist.Observe(fired - p.lastFired)
	p.Hist.ObserveN(0, k-1)
	p.lastFired = fired
	for p.nextMega <= to {
		p.megaWall = append(p.megaWall, time.Since(p.megaStart))
		p.megaStart = time.Now()
		p.nextMega += megacycle
	}
}

func (p *LoopProf) finish(now uint64) {
	_ = now
	p.total = time.Since(p.start)
}

// Cycles returns the number of simulated cycles observed.
func (p *LoopProf) Cycles() uint64 { return p.cycles }

// Wall returns total wall time (valid after Finish).
func (p *LoopProf) Wall() time.Duration { return p.total }

// MegacycleWall returns wall time per completed simulated megacycle.
func (p *LoopProf) MegacycleWall() []time.Duration { return p.megaWall }

// Summary renders a human-readable profile report.
func (p *LoopProf) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "event loop: %d cycles, %d events (%.3f events/cycle, max %d/cycle)\n",
		p.cycles, p.lastFired, p.Hist.Mean(), p.Hist.Max())
	fmt.Fprintf(&b, "events/cycle histogram: %s\n", p.Hist)
	if p.total > 0 && p.cycles > 0 {
		fmt.Fprintf(&b, "wall: %v total, %.2f Mcycles/s",
			p.total.Truncate(time.Microsecond),
			float64(p.cycles)/1e6/p.total.Seconds())
		if len(p.megaWall) > 0 {
			b.WriteString(", per megacycle:")
			for _, d := range p.megaWall {
				fmt.Fprintf(&b, " %v", d.Truncate(time.Microsecond))
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
