package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is a strict validator for the Prometheus text exposition format
// (version 0.0.4) as this repo emits it — the test- and CI-side counterpart
// of WritePrometheus. It is deliberately stricter than a scraping client:
// every sample must belong to a declared family, TYPE lines must precede
// their samples, histogram buckets must be cumulative and monotone, and the
// sum/count invariants must hold. Substring checks rot; an invariant parser
// catches the regressions they miss (a gauge renamed, a bucket series that
// forgot to accumulate, a histogram missing its _count).

// PromFamily is one parsed metric family.
type PromFamily struct {
	// Name is the family name ("smtdram_job_latency_served_ms").
	Name string
	// Type is "counter", "gauge", or "histogram".
	Type string
	// Samples maps each sample line's full name+labels key to its value;
	// for plain counters/gauges the key is just the name.
	Samples map[string]float64
	// BucketLe and BucketCount hold a histogram's cumulative bucket series in
	// exposition order ("+Inf" last).
	BucketLe    []string
	BucketCount []float64
	// Sum and Count are the histogram's _sum/_count samples.
	Sum, Count float64
	hasSum     bool
	hasCount   bool
}

// ParsePrometheus reads a full text exposition and returns its families by
// name, enforcing the format invariants. Any violation is an error naming the
// offending line.
func ParsePrometheus(r io.Reader) (map[string]*PromFamily, error) {
	families := map[string]*PromFamily{}
	var cur *PromFamily
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) != 4 || fields[1] != "TYPE" {
				return nil, fmt.Errorf("line %d: malformed comment %q (want \"# TYPE name kind\")", lineNo, line)
			}
			name, kind := fields[2], fields[3]
			if err := checkPromName(name); err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			switch kind {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, kind)
			}
			if _, dup := families[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate TYPE declaration for %q", lineNo, name)
			}
			cur = &PromFamily{Name: name, Type: kind, Samples: map[string]float64{}}
			families[name] = cur
			continue
		}

		// Sample line: name[{labels}] value
		name, labels, value, err := splitSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		fam := familyOf(families, name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding TYPE declaration", lineNo, name)
		}
		if fam != cur {
			return nil, fmt.Errorf("line %d: sample %q is interleaved outside its family block", lineNo, name)
		}
		key := name
		if labels != "" {
			key = name + "{" + labels + "}"
		}
		if _, dup := fam.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", lineNo, key)
		}
		fam.Samples[key] = value

		if fam.Type == "histogram" {
			switch {
			case name == fam.Name+"_bucket":
				le, ok := labelValue(labels, "le")
				if !ok {
					return nil, fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
				}
				fam.BucketLe = append(fam.BucketLe, le)
				fam.BucketCount = append(fam.BucketCount, value)
			case name == fam.Name+"_sum":
				fam.Sum, fam.hasSum = value, true
			case name == fam.Name+"_count":
				fam.Count, fam.hasCount = value, true
			default:
				return nil, fmt.Errorf("line %d: sample %q does not belong to histogram %q", lineNo, name, fam.Name)
			}
		} else if name != fam.Name {
			return nil, fmt.Errorf("line %d: sample %q does not match family %q", lineNo, name, fam.Name)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fam := range sortedFamilies(families) {
		if err := fam.check(); err != nil {
			return nil, err
		}
	}
	return families, nil
}

// ValidateExposition parses and validates, returning the family count.
func ValidateExposition(r io.Reader) (int, error) {
	fams, err := ParsePrometheus(r)
	return len(fams), err
}

// check enforces per-family invariants.
func (f *PromFamily) check() error {
	switch f.Type {
	case "counter":
		for k, v := range f.Samples {
			if v < 0 {
				return fmt.Errorf("counter %q is negative (%g)", k, v)
			}
		}
	case "histogram":
		if len(f.BucketLe) == 0 {
			return fmt.Errorf("histogram %q has no buckets", f.Name)
		}
		if f.BucketLe[len(f.BucketLe)-1] != "+Inf" {
			return fmt.Errorf("histogram %q: last bucket le=%q, want +Inf", f.Name, f.BucketLe[len(f.BucketLe)-1])
		}
		prevLe := 0.0
		for i, le := range f.BucketLe {
			if i > 0 && f.BucketCount[i] < f.BucketCount[i-1] {
				return fmt.Errorf("histogram %q: bucket le=%q count %g < previous %g (not cumulative)",
					f.Name, le, f.BucketCount[i], f.BucketCount[i-1])
			}
			if le == "+Inf" {
				if i != len(f.BucketLe)-1 {
					return fmt.Errorf("histogram %q: +Inf bucket is not last", f.Name)
				}
				continue
			}
			b, err := strconv.ParseFloat(le, 64)
			if err != nil {
				return fmt.Errorf("histogram %q: unparsable le=%q", f.Name, le)
			}
			if i > 0 && b <= prevLe {
				return fmt.Errorf("histogram %q: bucket bounds not ascending at le=%q", f.Name, le)
			}
			prevLe = b
		}
		if !f.hasSum || !f.hasCount {
			return fmt.Errorf("histogram %q missing _sum or _count", f.Name)
		}
		if inf := f.BucketCount[len(f.BucketCount)-1]; inf != f.Count {
			return fmt.Errorf("histogram %q: +Inf bucket (%g) != _count (%g)", f.Name, inf, f.Count)
		}
		if f.Count == 0 && f.Sum != 0 {
			return fmt.Errorf("histogram %q: zero count with non-zero sum %g", f.Name, f.Sum)
		}
	}
	return nil
}

// splitSample parses `name{labels} value` / `name value`.
func splitSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.IndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q (want \"name value\")", line)
		}
		name, rest = fields[0], fields[1]
	}
	if err := checkPromName(name); err != nil {
		return "", "", 0, err
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", "", 0, fmt.Errorf("malformed sample value in %q", line)
	}
	v, perr := strconv.ParseFloat(fields[0], 64)
	if perr != nil {
		return "", "", 0, fmt.Errorf("unparsable sample value %q in %q", fields[0], line)
	}
	return name, labels, v, nil
}

// checkPromName enforces the exposition metric-name alphabet.
func checkPromName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			return fmt.Errorf("metric name %q contains illegal rune %q", name, r)
		}
	}
	return nil
}

// labelValue extracts one label's (unquoted) value from a raw label-set body
// like `le="100",job="x"`.
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || k != key {
			continue
		}
		v = strings.TrimSpace(v)
		if len(v) >= 2 && v[0] == '"' && v[len(v)-1] == '"' {
			return v[1 : len(v)-1], true
		}
		return "", false // label values must be quoted
	}
	return "", false
}

// familyOf resolves a sample name to its family: exact match, or the
// histogram base name for _bucket/_sum/_count suffixes.
func familyOf(families map[string]*PromFamily, name string) *PromFamily {
	if f, ok := families[name]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return f
			}
		}
	}
	return nil
}

func sortedFamilies(m map[string]*PromFamily) []*PromFamily {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*PromFamily, len(names))
	for i, n := range names {
		out[i] = m[n]
	}
	return out
}
