package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// RuntimeVitals is one coherent snapshot of the Go runtime's health.
type RuntimeVitals struct {
	Goroutines   int
	HeapAlloc    uint64
	HeapSys      uint64
	GCPauseTotal time.Duration
	GCCycles     uint32
	SchedP50     float64 // scheduler latency, seconds
	SchedP99     float64
}

// runtimeSampler caches one snapshot of the runtime's vitals so a single
// /metrics render — which evaluates every gauge — calls
// runtime.ReadMemStats and metrics.Read once, not once per gauge. The cache
// expires after runtimeSampleTTL, which also bounds the stop-the-world cost
// of ReadMemStats under aggressive scraping. All reads go through vitals(),
// which locks, so concurrent scrapers never race.
type runtimeSampler struct {
	mu      sync.Mutex
	taken   time.Time
	cur     RuntimeVitals
	samples []metrics.Sample
}

const runtimeSampleTTL = 100 * time.Millisecond

func newRuntimeSampler() *runtimeSampler {
	return &runtimeSampler{
		samples: []metrics.Sample{
			{Name: "/sched/latencies:seconds"},
		},
	}
}

func (rs *runtimeSampler) vitals() RuntimeVitals {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.taken.IsZero() || time.Since(rs.taken) >= runtimeSampleTTL {
		var mem runtime.MemStats
		runtime.ReadMemStats(&mem)
		metrics.Read(rs.samples)
		rs.cur = RuntimeVitals{
			Goroutines:   runtime.NumGoroutine(),
			HeapAlloc:    mem.HeapAlloc,
			HeapSys:      mem.HeapSys,
			GCPauseTotal: time.Duration(mem.PauseTotalNs),
			GCCycles:     mem.NumGC,
			SchedP50:     schedLatencyQuantile(rs.samples[0], 0.50),
			SchedP99:     schedLatencyQuantile(rs.samples[0], 0.99),
		}
		rs.taken = time.Now()
	}
	return rs.cur
}

// schedLatencyQuantile estimates a quantile of the scheduler-latency
// distribution from runtime/metrics' Float64Histogram, in seconds. The
// bucket holding the target rank reports its midpoint; the open-ended edge
// buckets report their finite edge.
func schedLatencyQuantile(s metrics.Sample, q float64) float64 {
	if s.Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := s.Value.Float64Histogram()
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if lo < 0 { // -Inf underflow bucket
				return hi
			}
			if hi > 1e18 { // +Inf overflow bucket
				return lo
			}
			return (lo + hi) / 2
		}
	}
	return 0
}

// RegisterRuntimeMetrics registers Go runtime health gauges on reg: goroutine
// count, heap usage, cumulative GC pause time and cycle count, and scheduler
// latency quantiles. The gauges are safe to evaluate concurrently (the
// sampler locks internally), and one render triggers at most one
// ReadMemStats. No-op on a nil registry. Returns a reader for callers (the
// daemon's /v1/stats) that want the same snapshot without going through
// gauge evaluation.
func RegisterRuntimeMetrics(reg *Registry) func() RuntimeVitals {
	rs := newRuntimeSampler()
	if reg != nil {
		reg.Gauge("go.goroutines", func(uint64) float64 {
			return float64(rs.vitals().Goroutines)
		})
		reg.Gauge("go.heap_alloc_bytes", func(uint64) float64 {
			return float64(rs.vitals().HeapAlloc)
		})
		reg.Gauge("go.heap_sys_bytes", func(uint64) float64 {
			return float64(rs.vitals().HeapSys)
		})
		reg.Gauge("go.gc_pause_total_seconds", func(uint64) float64 {
			return rs.vitals().GCPauseTotal.Seconds()
		})
		reg.Gauge("go.gc_cycles_total", func(uint64) float64 {
			return float64(rs.vitals().GCCycles)
		})
		reg.Gauge("go.sched_latency_p50_seconds", func(uint64) float64 {
			return rs.vitals().SchedP50
		})
		reg.Gauge("go.sched_latency_p99_seconds", func(uint64) float64 {
			return rs.vitals().SchedP99
		})
	}
	return rs.vitals
}
