package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"sync/atomic"
)

// The write-ahead job journal records every job lifecycle transition so a
// crashed daemon can reconstruct its job table on restart: jobs that were
// queued or running are re-enqueued, finished jobs are rehydrated from the
// result store, and cancelled ones stay cancelled.
//
// Frame format, all integers little-endian:
//
//	length u32 | crc32c(payload) u32 | payload (JSON-encoded Record)
//
// A crash can tear the final frame (short write); ReadJournal stops at the
// first frame that fails length or checksum validation and returns everything
// before it — by write-ahead ordering the torn record had not yet taken
// effect, so dropping it is exactly correct. After replay the daemon rotates
// the journal (RotateJournal): live state is rewritten compactly and the torn
// tail disappears.

// RecordType is a journal record's lifecycle kind.
type RecordType string

const (
	// RecSubmitted marks an admitted job, carrying the request needed to
	// re-run it after a crash.
	RecSubmitted RecordType = "submitted"
	// RecStarted marks a job whose flight reached a pool worker.
	RecStarted RecordType = "started"
	// RecResolved marks a finished job (State done or failed).
	RecResolved RecordType = "resolved"
	// RecCancelled marks a client-cancelled job.
	RecCancelled RecordType = "cancelled"
)

// Record is one journal entry. Submitted records carry everything needed to
// re-create the job (kind, fingerprint, request body); later records need
// only the job id plus their outcome.
type Record struct {
	Type RecordType `json:"type"`
	Job  string     `json:"job"`
	Kind string     `json:"kind,omitempty"` // "sim" or "figure" (submitted)
	FP   string     `json:"fp,omitempty"`   // cache/store fingerprint (submitted)
	// Request is the original wire request (submitted records), replayed to
	// rebuild the identical flight after a crash.
	Request json.RawMessage `json:"request,omitempty"`
	// State ("done" or "failed") and Error describe resolved records.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
}

// maxRecordLen bounds a frame's declared length while reading, so a corrupt
// header cannot demand an absurd allocation.
const maxRecordLen = 16 << 20

// Journal is the append-only write-ahead log. Safe for concurrent use.
type Journal struct {
	path  string
	fsync FsyncPolicy

	mu       sync.Mutex
	f        *os.File
	appended atomic.Uint64
	degraded atomic.Bool
}

// ReadJournal replays the journal at path. A missing file is an empty
// journal. Reading stops cleanly at the first torn or corrupt frame (the
// expected shape of a crash mid-append); only an unreadable file is an error.
func ReadJournal(path string) ([]Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	var recs []Record
	for len(b) >= 8 {
		n := binary.LittleEndian.Uint32(b)
		if n == 0 || n > maxRecordLen || uint64(n) > uint64(len(b)-8) {
			break // torn tail
		}
		want := binary.LittleEndian.Uint32(b[4:])
		payload := b[8 : 8+n]
		if crc32.Checksum(payload, castagnoli) != want {
			break // torn or corrupt tail
		}
		var r Record
		if json.Unmarshal(payload, &r) != nil {
			break
		}
		recs = append(recs, r)
		b = b[8+n:]
	}
	return recs, nil
}

// RotateJournal atomically replaces the journal at path with one holding
// exactly records (the compacted live state after replay), then reopens it
// for appending. The rename is atomic: a crash mid-rotation leaves either
// the old journal or the new one, never a mix.
func RotateJournal(path string, records []Record, fsync FsyncPolicy) (*Journal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	for _, r := range records {
		frame, err := encodeFrame(r)
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return nil, err
		}
		if _, err := f.Write(frame); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return nil, fmt.Errorf("store: journal: %w", err)
		}
	}
	if fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
			return nil, fmt.Errorf("store: journal: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return OpenJournal(path, fsync)
}

// OpenJournal opens (creating if needed) the journal at path for appending.
func OpenJournal(path string, fsync FsyncPolicy) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return &Journal{path: path, fsync: fsync, f: f}, nil
}

// Append writes one record. An IO error flips the journal to degraded mode
// (sticky until restart): later appends short-circuit with ErrDegraded and
// the daemon keeps serving without write-ahead durability.
func (j *Journal) Append(r Record) error {
	if j.degraded.Load() {
		return ErrDegraded
	}
	frame, err := encodeFrame(r)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(frame); err != nil {
		j.degraded.Store(true)
		return fmt.Errorf("store: journal: %w", err)
	}
	if j.fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			j.degraded.Store(true)
			return fmt.Errorf("store: journal: %w", err)
		}
	}
	j.appended.Add(1)
	return nil
}

// Appended returns how many records this process has written.
func (j *Journal) Appended() uint64 { return j.appended.Load() }

// Degraded reports whether an append error has disabled the journal.
func (j *Journal) Degraded() bool { return j.degraded.Load() }

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

func encodeFrame(r Record) ([]byte, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	frame := make([]byte, 0, 8+len(payload))
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	return append(frame, payload...), nil
}
