package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPutGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	key := "sim|apps=mcf seed=42 fetch=dwarn"
	payload := []byte(`{"ipc":1.23}`)
	meta := []byte(`{"skip":{"rate":0.8}}`)
	if err := s.Put(key, payload, meta); err != nil {
		t.Fatal(err)
	}
	gotP, gotM, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotP, payload) || !bytes.Equal(gotM, meta) {
		t.Fatalf("round trip mismatch: payload %q meta %q", gotP, gotM)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir(), FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
}

func TestReopenCountsEntries(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, []byte(k), nil); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 3 {
		t.Fatalf("reopened Len = %d, want 3", s2.Len())
	}
	if p, _, err := s2.Get("b"); err != nil || string(p) != "b" {
		t.Fatalf("reopened Get(b) = %q, %v", p, err)
	}
}

func TestPutOverwriteKeepsCount(t *testing.T) {
	s, err := Open(t.TempDir(), FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("one"), nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("two"), nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
	p, _, err := s.Get("k")
	if err != nil || string(p) != "two" {
		t.Fatalf("Get = %q, %v; want two", p, err)
	}
}

// corrupt entries are quarantined on read and reported as *CorruptError.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("payload"), nil); err != nil {
		t.Fatal(err)
	}
	path := s.pathFor("k")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0xff // flip a bit mid-entry
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = s.Get("k")
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("Get(corrupt) = %v, want *CorruptError", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still present in data dir")
	}
	q := filepath.Join(dir, "quarantine", filepath.Base(path))
	if _, err := os.Stat(q); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d after quarantine, want 0", s.Len())
	}
	// A rewrite heals the entry.
	if err := s.Put("k", []byte("payload"), nil); err != nil {
		t.Fatal(err)
	}
	if p, _, err := s.Get("k"); err != nil || string(p) != "payload" {
		t.Fatalf("healed Get = %q, %v", p, err)
	}
}

func TestTruncatedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", bytes.Repeat([]byte("x"), 4096), nil); err != nil {
		t.Fatal(err)
	}
	path := s.pathFor("k")
	b, _ := os.ReadFile(path)
	if err := os.WriteFile(path, b[:len(b)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	var ce *CorruptError
	if _, _, err := s.Get("k"); !errors.As(err, &ce) {
		t.Fatalf("Get(truncated) = %v, want *CorruptError", err)
	}
}

// A write failure degrades the store to memory-only mode, stickily.
func TestWriteErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("before", []byte("ok"), nil); err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the store: CreateTemp fails.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v"), nil); err == nil {
		t.Fatal("Put into removed dir succeeded")
	}
	if !s.Degraded() {
		t.Fatal("store not degraded after write error")
	}
	if err := s.Put("k2", []byte("v"), nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("Put while degraded = %v, want ErrDegraded", err)
	}
}

// Open removes torn temp files left by a crashed write.
func TestOpenCleansTempFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, tmpPrefix+"123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, FsyncOff); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, tmpPrefix+"123")); !os.IsNotExist(err) {
		t.Fatal("torn temp file survived Open")
	}
}

func TestKeysWithArbitraryCharacters(t *testing.T) {
	s, err := Open(t.TempDir(), FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"sim|apps=mcf,ammp channels=2 gang=1|traced",
		"fig=table2 warm=0 target=0 seed=0",
		"weird/../key with spaces\nand newlines",
		strings.Repeat("long", 1000),
	}
	for i, k := range keys {
		if err := s.Put(k, []byte{byte(i)}, nil); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		p, _, err := s.Get(k)
		if err != nil || len(p) != 1 || p[0] != byte(i) {
			t.Fatalf("Get(%q) = %v, %v", k, p, err)
		}
	}
	if s.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", s.Len(), len(keys))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"": FsyncOff, "off": FsyncOff, "OFF": FsyncOff,
		"always": FsyncAlways, "Always": FsyncAlways,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseFsyncPolicy(sometimes) succeeded")
	}
}
