package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func journalPath(t *testing.T) string {
	return filepath.Join(t.TempDir(), "journal.wal")
}

func TestJournalAppendReplay(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Type: RecSubmitted, Job: "j-1", Kind: "sim", FP: "sim|a", Request: json.RawMessage(`{"apps":["mcf"]}`)},
		{Type: RecStarted, Job: "j-1"},
		{Type: RecResolved, Job: "j-1", State: "done"},
		{Type: RecSubmitted, Job: "j-2", Kind: "figure", FP: "fig|2"},
		{Type: RecCancelled, Job: "j-2"},
	}
	for _, r := range recs {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if j.Appended() != uint64(len(recs)) {
		t.Fatalf("Appended = %d, want %d", j.Appended(), len(recs))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, recs)
	}
}

func TestReadJournalMissingFile(t *testing.T) {
	got, err := ReadJournal(journalPath(t))
	if err != nil || got != nil {
		t.Fatalf("ReadJournal(missing) = %v, %v; want nil, nil", got, err)
	}
}

// A torn final frame — the expected shape of a SIGKILL mid-append — is
// silently dropped; every complete frame before it replays.
func TestReadJournalTornTail(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: RecSubmitted, Job: "j-1", FP: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Type: RecResolved, Job: "j-1", State: "done"}); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 12; cut++ { // tear at various depths into a third frame
		torn := append(append([]byte{}, b...), make([]byte, cut)...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := ReadJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(got))
		}
	}
}

// A corrupt byte mid-stream stops replay at the damaged frame.
func TestReadJournalCorruptFrameStops(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(Record{Type: RecStarted, Job: "j-1"}); err != nil {
			t.Fatal(err)
		}
	}
	_ = j.Close()
	b, _ := os.ReadFile(path)
	frame := len(b) / 3
	b[frame+10] ^= 0xff // corrupt the second frame's payload
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("replayed %d records past corruption, want 1", len(got))
	}
}

// Rotation rewrites the journal compactly and atomically, and the rotated
// journal accepts further appends.
func TestRotateJournal(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := j.Append(Record{Type: RecStarted, Job: "j-old"}); err != nil {
			t.Fatal(err)
		}
	}
	_ = j.Close()

	compact := []Record{
		{Type: RecResolved, Job: "j-1", State: "done", FP: "sim|a"},
		{Type: RecSubmitted, Job: "j-2", Kind: "sim", FP: "sim|b", Request: json.RawMessage(`{}`)},
	}
	j2, err := RotateJournal(path, compact, FsyncAlways)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(Record{Type: RecStarted, Job: "j-2"}); err != nil {
		t.Fatal(err)
	}
	_ = j2.Close()

	got, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	want := append(append([]Record{}, compact...), Record{Type: RecStarted, Job: "j-2"})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rotated replay mismatch:\n got %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("rotation temp file survived")
	}
}

func TestJournalAppendErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	j, err := OpenJournal(path, FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	_ = j.f.Close() // force the next write to fail
	if err := j.Append(Record{Type: RecStarted, Job: "j-1"}); err == nil {
		t.Fatal("Append on closed file succeeded")
	}
	if !j.Degraded() {
		t.Fatal("journal not degraded after append error")
	}
}
