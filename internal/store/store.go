// Package store is the durability layer under the smtdramd daemon: a
// content-addressed on-disk result store keyed by configuration fingerprint,
// and an append-only CRC-framed write-ahead job journal (journal.go).
//
// The store exploits the simulator's determinism: a fingerprint names the
// complete configuration, the configuration fully determines the result
// bytes, so a stored entry is valid forever — there is no invalidation
// problem, only integrity. Every entry therefore carries a CRC32C checksum;
// a corrupt entry is quarantined on read and transparently recomputed by the
// caller, never served.
//
// Failure ladder (graceful degradation, never an outage):
//
//  1. healthy      — reads and writes hit the disk tier;
//  2. degraded     — a write error (disk full, permission, IO) flips the
//     store to memory-only mode: reads keep working where possible, writes
//     become no-ops, the daemon keeps serving from its in-memory LRU and
//     recomputation. Degradation is sticky until restart and is surfaced
//     through Degraded() for /readyz and a Prometheus gauge;
//  3. corrupt entry — quarantined under <dir>/quarantine and reported as a
//     miss; the caller recomputes and rewrites it.
//
// On-disk layout under the data directory:
//
//	<sha256(key)>.res   one result entry (format below)
//	quarantine/         corrupt entries, moved aside for post-mortem
//	journal.wal         the write-ahead job journal (journal.go)
//	.tmp-*              in-flight writes (ignored, cleaned opportunistically)
//
// Entry format, all integers little-endian:
//
//	magic "SDRS" | version u8 | keyLen u32 | key | metaLen u32 | meta |
//	payloadLen u32 | payload | crc32c u32 over everything before it
//
// The key is stored verbatim so a read can reject the (astronomically
// unlikely) hash collision and so quarantined files identify themselves.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// FsyncPolicy selects how aggressively the store and journal flush to stable
// storage. Off survives process death (SIGKILL included — the data already
// crossed into the kernel); Always additionally survives OS crash and power
// loss at the cost of an fsync per write.
type FsyncPolicy int

const (
	// FsyncOff never calls fsync. Durable against process crash, not
	// against kernel crash or power loss.
	FsyncOff FsyncPolicy = iota
	// FsyncAlways fsyncs every journal append and every store write (and
	// the directory on rename).
	FsyncAlways
)

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off":
		return FsyncOff, nil
	case "always":
		return FsyncAlways, nil
	}
	return FsyncOff, fmt.Errorf("store: unknown fsync policy %q (want off or always)", s)
}

func (p FsyncPolicy) String() string {
	if p == FsyncAlways {
		return "always"
	}
	return "off"
}

// ErrNotFound reports a key with no stored entry.
var ErrNotFound = errors.New("store: not found")

// ErrDegraded reports a write refused because the store already degraded to
// memory-only mode.
var ErrDegraded = errors.New("store: degraded to memory-only mode")

// CorruptError reports an entry that failed integrity checks; the file has
// been quarantined and the caller should recompute.
type CorruptError struct {
	Key    string
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("store: entry for %q corrupt (%s); quarantined", e.Key, e.Reason)
}

const (
	entryMagic   = "SDRS"
	entryVersion = 1
	entrySuffix  = ".res"
	tmpPrefix    = ".tmp-"
	// maxFieldLen bounds each length field while decoding, so a corrupt
	// header cannot demand an absurd allocation.
	maxFieldLen = 64 << 20
)

// castagnoli is the CRC32C polynomial table shared by entries and journal
// frames.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Stats is a point-in-time snapshot of the store's counters for /v1/stats.
type Stats struct {
	Entries  int
	Degraded bool
}

// Store is the content-addressed result store. Safe for concurrent use.
type Store struct {
	dir   string
	fsync FsyncPolicy

	mu       sync.Mutex // serializes writes and quarantine moves
	entries  atomic.Int64
	degraded atomic.Bool
}

// Open prepares dir (and its quarantine subdirectory) and counts existing
// entries. A leftover temp file from a crashed write is removed.
func Open(dir string, fsync FsyncPolicy) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "quarantine"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, fsync: fsync}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	n := int64(0)
	for _, de := range names {
		name := de.Name()
		switch {
		case strings.HasSuffix(name, entrySuffix):
			n++
		case strings.HasPrefix(name, tmpPrefix):
			_ = os.Remove(filepath.Join(dir, name)) // torn write from a crash
		}
	}
	s.entries.Store(n)
	return s, nil
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of stored entries.
func (s *Store) Len() int { return int(s.entries.Load()) }

// Degraded reports whether a write error has flipped the store to
// memory-only mode (sticky until restart).
func (s *Store) Degraded() bool { return s.degraded.Load() }

// Snapshot returns the store's current stats.
func (s *Store) Snapshot() Stats {
	return Stats{Entries: s.Len(), Degraded: s.Degraded()}
}

// pathFor maps a key to its content-addressed file path.
func (s *Store) pathFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+entrySuffix)
}

// Get returns the payload and meta bytes stored for key. A missing entry
// returns ErrNotFound; a corrupt one is quarantined and returns a
// *CorruptError — both mean "recompute". Reads keep working in degraded
// mode: whatever made it to disk is still served.
func (s *Store) Get(key string) (payload, meta []byte, err error) {
	path := s.pathFor(key)
	b, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, ErrNotFound
		}
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	gotKey, meta, payload, derr := decodeEntry(b)
	if derr == nil && gotKey != key {
		derr = fmt.Errorf("key mismatch: holds %q", gotKey)
	}
	if derr != nil {
		s.quarantine(path)
		return nil, nil, &CorruptError{Key: key, Reason: derr.Error()}
	}
	return payload, meta, nil
}

// quarantine moves a corrupt entry aside (overwriting any previous
// quarantined copy of the same file) and drops it from the entry count.
func (s *Store) quarantine(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst := filepath.Join(s.dir, "quarantine", filepath.Base(path))
	if err := os.Rename(path, dst); err != nil {
		_ = os.Remove(path) // removal also clears the bad entry
	}
	if _, err := os.Stat(path); os.IsNotExist(err) {
		s.entries.Add(-1)
	}
}

// Put stores payload and meta under key via an atomic temp+rename write.
// Any IO error flips the store to degraded (memory-only) mode and is
// returned; subsequent Puts short-circuit with ErrDegraded.
func (s *Store) Put(key string, payload, meta []byte) error {
	if s.degraded.Load() {
		return ErrDegraded
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.put(key, payload, meta); err != nil {
		s.degraded.Store(true)
		return err
	}
	return nil
}

func (s *Store) put(key string, payload, meta []byte) error {
	final := s.pathFor(key)
	_, statErr := os.Stat(final)
	fresh := os.IsNotExist(statErr)

	f, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { _ = f.Close(); _ = os.Remove(tmp) }
	if _, err := f.Write(encodeEntry(key, meta, payload)); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if s.fsync == FsyncAlways {
		if err := f.Sync(); err != nil {
			cleanup()
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if s.fsync == FsyncAlways {
		if d, err := os.Open(s.dir); err == nil {
			_ = d.Sync()
			_ = d.Close()
		}
	}
	if fresh {
		s.entries.Add(1)
	}
	return nil
}

// EncodeEntry frames key, meta, and payload in the store's on-disk entry
// format (magic, version, length-prefixed fields, trailing CRC32C). Fleet
// cache peering ships entries between nodes in exactly this framing so the
// receiver can verify integrity with DecodeEntry before trusting the bytes.
func EncodeEntry(key string, meta, payload []byte) []byte {
	return encodeEntry(key, meta, payload)
}

// DecodeEntry validates an EncodeEntry framing — magic, version, field
// structure, and CRC32C — and returns its parts. It is the receiver half of
// peer-to-peer entry transfer: a corrupt or truncated entry fails here and is
// never served.
func DecodeEntry(b []byte) (key string, meta, payload []byte, err error) {
	return decodeEntry(b)
}

// encodeEntry frames key, meta, and payload with the trailing CRC32C.
func encodeEntry(key string, meta, payload []byte) []byte {
	b := make([]byte, 0, len(entryMagic)+1+12+len(key)+len(meta)+len(payload)+4)
	b = append(b, entryMagic...)
	b = append(b, entryVersion)
	b = appendField(b, []byte(key))
	b = appendField(b, meta)
	b = appendField(b, payload)
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

func appendField(b, field []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(field)))
	return append(b, field...)
}

// decodeEntry validates an entry's framing and checksum.
func decodeEntry(b []byte) (key string, meta, payload []byte, err error) {
	if len(b) < len(entryMagic)+1+12+4 {
		return "", nil, nil, errors.New("truncated")
	}
	if string(b[:len(entryMagic)]) != entryMagic {
		return "", nil, nil, errors.New("bad magic")
	}
	if b[len(entryMagic)] != entryVersion {
		return "", nil, nil, fmt.Errorf("unknown version %d", b[len(entryMagic)])
	}
	body, crcBytes := b[:len(b)-4], b[len(b)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(crcBytes) {
		return "", nil, nil, errors.New("checksum mismatch")
	}
	rest := body[len(entryMagic)+1:]
	keyB, rest, err := takeField(rest)
	if err != nil {
		return "", nil, nil, err
	}
	meta, rest, err = takeField(rest)
	if err != nil {
		return "", nil, nil, err
	}
	payload, rest, err = takeField(rest)
	if err != nil {
		return "", nil, nil, err
	}
	if len(rest) != 0 {
		return "", nil, nil, errors.New("trailing bytes")
	}
	return string(keyB), meta, payload, nil
}

func takeField(b []byte) (field, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, errors.New("truncated length")
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxFieldLen || uint64(n) > uint64(len(b)-4) {
		return nil, nil, errors.New("length out of range")
	}
	return b[4 : 4+n], b[4+n:], nil
}
