// Package checkpoint is the warmup-memoization layer between the sweep
// drivers (internal/figures, the serving daemon) and the core simulator.
//
// Every sweep point pays the same warmup prefix before its measurement phase
// begins, and the machine state at the warmup boundary is a pure function of
// the warmup-prefix fingerprint (core.Config.WarmupFingerprint). The Cache
// exploits that: the first run of a prefix simulates warmup once and captures
// a core.Checkpoint; every later run of the same prefix — concurrent or not,
// in this process or (with a backing store) a later one — forks from the
// frozen machine and simulates only the measurement phase. The fork is
// byte-identical to an uninterrupted run (core's equivalence suite and the
// lockstep oracle enforce this), so memoization changes wall-clock time and
// nothing else.
//
// A Cache is safe for concurrent use and nil-safe: a nil *Cache runs every
// configuration plainly, so callers thread an optional cache without
// branching. Configurations that cannot checkpoint (no warmup phase, fault
// plans, observers, trace sinks — see core.CheckpointSupported) bypass the
// cache and are counted as such.
package checkpoint

import (
	"context"
	"encoding/binary"
	"sync/atomic"

	"smtdram/internal/core"
	"smtdram/internal/runner"
	"smtdram/internal/store"
)

// keyPrefix namespaces checkpoint entries inside a store.Store, so a cache
// pointed at the daemon's data directory can never collide with result
// entries (results are keyed by the full fingerprint, checkpoints by the
// warmup prefix; the namespace makes the separation structural).
const keyPrefix = "ckpt|"

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// Hits counts runs served from a previously captured checkpoint —
	// in-memory, joined in flight, or read back from the store.
	Hits uint64
	// Misses counts warmup phases actually simulated.
	Misses uint64
	// Forks counts measurement phases started from a checkpoint.
	Forks uint64
	// Bypassed counts runs that could not checkpoint and ran plainly.
	Bypassed uint64
	// Evictions counts in-memory entries shed by the cap (SetCap).
	Evictions uint64
	// Entries is the current in-memory entry count (in-flight included).
	Entries int
}

// Cache memoizes warmup checkpoints by warmup-prefix fingerprint.
//
// The in-memory tier is a single-flight LRU memo: concurrent requests for one
// prefix share a single warmup simulation. Warmups execute on the cache's own
// worker pool, never on the caller's, so a sweep worker blocked on a shared
// warmup cannot deadlock the pool it runs in. The optional store tier
// persists frames across processes; corrupt or missing entries silently fall
// back to recomputation (the frame's CRC and fingerprint are validated on
// restore, so a bad entry can degrade speed, never correctness).
type Cache struct {
	pool *runner.Pool
	memo runner.Memo[string, *core.Checkpoint]
	st   *store.Store

	hits, misses, forks, bypassed atomic.Uint64
}

// New builds an in-memory cache. Attach a persistence tier with Persist.
func New() *Cache {
	return &Cache{pool: runner.NewPooled(0)}
}

// Open builds a cache persisted under dir (creating it if needed).
func Open(dir string, fsync store.FsyncPolicy) (*Cache, error) {
	st, err := store.Open(dir, fsync)
	if err != nil {
		return nil, err
	}
	c := New()
	c.Persist(st)
	return c, nil
}

// Persist attaches a backing store: captured checkpoints are written through,
// and an in-memory miss consults the store before simulating warmup. Install
// before the first Run; later attachment races with in-flight lookups.
func (c *Cache) Persist(st *store.Store) { c.st = st }

// Store returns the backing store, nil when the cache is memory-only.
func (c *Cache) Store() *store.Store {
	if c == nil {
		return nil
	}
	return c.st
}

// SetCap bounds the in-memory tier to n checkpoints with LRU eviction
// (n <= 0 restores the unbounded default). A store-backed cache re-reads
// evicted entries from disk; a memory-only cache re-simulates them.
func (c *Cache) SetCap(n int) { c.memo.SetCap(n) }

// Snapshot returns the cache's counters. Nil-safe (all zeros).
func (c *Cache) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Forks:     c.forks.Load(),
		Bypassed:  c.bypassed.Load(),
		Evictions: c.memo.Evictions(),
		Entries:   c.memo.Len(),
	}
}

// Run executes cfg, forking from a memoized warmup checkpoint when the
// configuration supports it and running plainly when it does not. On a nil
// cache every run is plain. The result is byte-identical either way.
func (c *Cache) Run(ctx context.Context, cfg core.Config) (core.Result, error) {
	if c == nil {
		return core.RunContext(ctx, cfg)
	}
	if err := core.CheckpointSupported(cfg); err != nil {
		c.bypassed.Add(1)
		return core.RunContext(ctx, cfg)
	}
	chk, err := c.Get(ctx, cfg)
	if err != nil {
		return core.Result{}, err
	}
	c.forks.Add(1)
	return core.RunFromCheckpoint(ctx, cfg, chk)
}

// Get returns the warmup checkpoint for cfg's prefix, simulating the warmup
// phase only if neither tier holds it. Concurrent Gets for one prefix share a
// single flight; the flight runs under the first caller's context.
func (c *Cache) Get(ctx context.Context, cfg core.Config) (*core.Checkpoint, error) {
	if err := core.CheckpointSupported(cfg); err != nil {
		return nil, err
	}
	prefix := cfg.WarmupFingerprint()
	f, created := c.memo.GetCtx(c.pool, ctx, prefix, func(ctx context.Context) (*core.Checkpoint, error) {
		// A store read-back is only a hit if its frame actually restores: the
		// store's own CRC covers what was written, not that what was written
		// is a decodable checkpoint. A frame that fails the trial restore is
		// recomputed, so a damaged entry degrades speed, never correctness.
		if chk := c.fromStore(prefix); chk != nil {
			if _, err := core.NewCheckpointedSimulator(cfg, chk); err == nil {
				c.hits.Add(1)
				return chk, nil
			}
		}
		c.misses.Add(1)
		chk, err := core.WarmupCheckpoint(ctx, cfg)
		if err != nil {
			return nil, err
		}
		c.toStore(chk)
		return chk, nil
	})
	if !created {
		c.hits.Add(1)
	}
	return f.Wait()
}

// fromStore reads a persisted checkpoint back; any miss, corruption, or
// malformed metadata returns nil and the caller recomputes. The store
// quarantines corrupt entries itself, and the frame's own CRC plus the
// fingerprint check at restore time guard the payload end-to-end.
func (c *Cache) fromStore(prefix string) *core.Checkpoint {
	if c.st == nil {
		return nil
	}
	payload, meta, err := c.st.Get(keyPrefix + prefix)
	if err != nil || len(meta) != 8 {
		return nil
	}
	now := binary.LittleEndian.Uint64(meta)
	if now == 0 || len(payload) == 0 {
		return nil
	}
	return &core.Checkpoint{Prefix: prefix, Now: now, Data: payload}
}

// toStore writes a fresh checkpoint through to the persistence tier. Write
// errors are swallowed: the store degrades to memory-only mode on its own and
// the cache keeps working from RAM.
func (c *Cache) toStore(chk *core.Checkpoint) {
	if c.st == nil {
		return
	}
	var meta [8]byte
	binary.LittleEndian.PutUint64(meta[:], chk.Now)
	_ = c.st.Put(keyPrefix+chk.Prefix, chk.Data, meta[:])
}
