package checkpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"sync"
	"testing"

	"smtdram/internal/core"
	"smtdram/internal/store"
)

func fastCfg(apps ...string) core.Config {
	cfg := core.DefaultConfig(apps...)
	cfg.WarmupInstr = 10_000
	cfg.TargetInstr = 15_000
	return cfg
}

// run executes cfg through c and returns the result's canonical JSON.
func run(t *testing.T, c *Cache, cfg core.Config) []byte {
	t.Helper()
	res, err := c.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNilCacheRunsPlainly(t *testing.T) {
	cfg := fastCfg("mcf")
	var c *Cache
	got := run(t, c, cfg)
	plain, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(plain)
	if !bytes.Equal(got, want) {
		t.Fatalf("nil cache diverged from a plain run\ngot:  %s\nwant: %s", got, want)
	}
	if st := c.Snapshot(); st != (Stats{}) {
		t.Fatalf("nil cache Snapshot = %+v, want zeros", st)
	}
}

func TestRunMemoizesWarmup(t *testing.T) {
	cfg := fastCfg("mcf", "art")
	plain, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(plain)

	c := New()
	first := run(t, c, cfg)
	if !bytes.Equal(first, want) {
		t.Fatalf("first cached run diverged from a plain run\ngot:  %s\nwant: %s", first, want)
	}
	second := run(t, c, cfg)
	if !bytes.Equal(second, want) {
		t.Fatalf("forked run diverged from a plain run\ngot:  %s\nwant: %s", second, want)
	}

	st := c.Snapshot()
	if st.Misses != 1 || st.Hits != 1 || st.Forks != 2 || st.Bypassed != 0 {
		t.Fatalf("counters = %+v, want 1 miss, 1 hit, 2 forks", st)
	}
	if st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
}

func TestUnsupportedConfigBypasses(t *testing.T) {
	cfg := fastCfg("mcf")
	cfg.WarmupInstr = 0 // nothing to checkpoint
	plain, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(plain)

	c := New()
	if got := run(t, c, cfg); !bytes.Equal(got, want) {
		t.Fatalf("bypassed run diverged from a plain run\ngot:  %s\nwant: %s", got, want)
	}
	st := c.Snapshot()
	if st.Bypassed != 1 || st.Hits != 0 || st.Misses != 0 || st.Forks != 0 {
		t.Fatalf("counters = %+v, want exactly 1 bypass", st)
	}
}

// TestConcurrentRunsShareOneWarmup: concurrent Runs of one prefix collapse to
// a single warmup simulation; everyone else joins the flight and is a hit.
func TestConcurrentRunsShareOneWarmup(t *testing.T) {
	cfg := fastCfg("mcf", "art")
	c := New()
	const n = 8
	results := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := c.Run(context.Background(), cfg)
			if err != nil {
				t.Error(err)
				return
			}
			results[i], _ = json.Marshal(res)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("concurrent run %d diverged", i)
		}
	}
	st := c.Snapshot()
	if st.Misses != 1 {
		t.Fatalf("Misses = %d, want exactly 1 shared warmup", st.Misses)
	}
	if st.Hits != n-1 || st.Forks != n {
		t.Fatalf("counters = %+v, want %d hits and %d forks", st, n-1, n)
	}
}

func TestStorePersistsAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg("mcf", "art")

	cold, err := Open(dir, store.FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	want := run(t, cold, cfg)
	if st := cold.Snapshot(); st.Misses != 1 {
		t.Fatalf("cold cache Misses = %d, want 1", st.Misses)
	}

	// A fresh cache over the same directory serves the warmup from disk.
	warm, err := Open(dir, store.FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, warm, cfg); !bytes.Equal(got, want) {
		t.Fatalf("disk-served run diverged\ngot:  %s\nwant: %s", got, want)
	}
	st := warm.Snapshot()
	if st.Hits != 1 || st.Misses != 0 || st.Forks != 1 {
		t.Fatalf("warm cache counters = %+v, want a pure disk hit", st)
	}
}

// TestCorruptStoreEntryRecomputes: a store entry whose payload is not a
// decodable checkpoint frame (the store's own CRC can still pass — it seals
// whatever was written) must degrade to a recomputed warmup, never a failed
// or wrong run.
func TestCorruptStoreEntryRecomputes(t *testing.T) {
	dir := t.TempDir()
	cfg := fastCfg("mcf")
	want, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	c, err := Open(dir, store.FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	// Plant a well-stored but undecodable entry under the prefix's key.
	meta := []byte{1, 0, 0, 0, 0, 0, 0, 0}
	if err := c.Store().Put(keyPrefix+cfg.WarmupFingerprint(), []byte("not a checkpoint frame"), meta); err != nil {
		t.Fatal(err)
	}

	if got := run(t, c, cfg); !bytes.Equal(got, wantJSON) {
		t.Fatalf("run over corrupt entry diverged\ngot:  %s\nwant: %s", got, wantJSON)
	}
	st := c.Snapshot()
	if st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("counters = %+v, want the corrupt entry to recompute as a miss", st)
	}

	// The recompute overwrote the bad entry: a fresh cache now hits cleanly.
	again, err := Open(dir, store.FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	if got := run(t, again, cfg); !bytes.Equal(got, wantJSON) {
		t.Fatalf("post-repair run diverged\ngot:  %s\nwant: %s", got, wantJSON)
	}
	if st := again.Snapshot(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("post-repair counters = %+v, want a disk hit", st)
	}
}

func TestSetCapEvicts(t *testing.T) {
	c := New()
	c.SetCap(1)
	run(t, c, fastCfg("mcf"))
	run(t, c, fastCfg("art")) // different prefix: overflows the cap
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 1 {
		t.Fatalf("counters = %+v, want 1 eviction leaving 1 entry", st)
	}
}
