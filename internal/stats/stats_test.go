package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(ws, 1.5) {
		t.Fatalf("WS = %v, want 1.5", ws)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero alone-IPC accepted")
	}
}

// Property: WS of n identical threads running at alone speed is exactly n.
func TestPropertyWSIdentity(t *testing.T) {
	f := func(raw []float64) bool {
		ipcs := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e6 {
				ipcs = append(ipcs, v)
			}
		}
		if len(ipcs) == 0 {
			return true
		}
		ws, err := WeightedSpeedup(ipcs, ipcs)
		return err == nil && math.Abs(ws-float64(len(ipcs))) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown(5.0, 2.0, 1.5, 1.0)
	if !almost(b.Proc, 1.0) || !almost(b.L2, 0.5) || !almost(b.L3, 0.5) || !almost(b.Mem, 3.0) {
		t.Fatalf("breakdown = %+v", b)
	}
	if !almost(b.Total(), 5.0) {
		t.Fatalf("Total = %v, want 5", b.Total())
	}
}

func TestBreakdownClampsNoise(t *testing.T) {
	// perfectL2 run slightly faster than the proc run: clamp, don't go
	// negative.
	b := NewBreakdown(1.0, 1.0, 0.99, 1.0)
	if b.L2 != 0 {
		t.Fatalf("L2 = %v, want clamped 0", b.L2)
	}
}

func TestBucketize(t *testing.T) {
	hist := make([]uint64, 20)
	hist[1] = 10
	hist[3] = 10
	hist[9] = 20
	hist[19] = 10
	bs := Bucketize(hist, []int{1, 4, 8, 16})
	labels := []string{"1", "2-4", "5-8", "9-16", ">16"}
	fracs := []float64{0.2, 0.2, 0, 0.4, 0.2}
	if len(bs) != len(labels) {
		t.Fatalf("got %d buckets, want %d", len(bs), len(labels))
	}
	for i := range bs {
		if bs[i].Label != labels[i] {
			t.Errorf("bucket %d label %q, want %q", i, bs[i].Label, labels[i])
		}
		if !almost(bs[i].Frac, fracs[i]) {
			t.Errorf("bucket %q frac %v, want %v", bs[i].Label, bs[i].Frac, fracs[i])
		}
	}
}

func TestBucketizeEmpty(t *testing.T) {
	bs := Bucketize(make([]uint64, 8), []int{2, 4})
	for _, b := range bs {
		if b.Frac != 0 {
			t.Fatalf("empty histogram produced frac %v", b.Frac)
		}
	}
}

// Property: bucket fractions always sum to 1 for nonempty histograms (within
// float error) and each lies in [0,1].
func TestPropertyBucketsPartition(t *testing.T) {
	f := func(vals []uint16) bool {
		hist := make([]uint64, 33)
		var mass uint64
		for i, v := range vals {
			hist[1+i%32] += uint64(v)
			mass += uint64(v)
		}
		bs := Bucketize(hist, []int{1, 4, 8, 16})
		var sum float64
		for _, b := range bs {
			if b.Frac < 0 || b.Frac > 1 {
				return false
			}
			sum += b.Frac
		}
		if mass == 0 {
			return sum == 0
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTailFrac(t *testing.T) {
	hist := make([]uint64, 20)
	hist[2] = 30
	hist[10] = 70
	if got := TailFrac(hist, 9); !almost(got, 0.7) {
		t.Fatalf("TailFrac = %v, want 0.7", got)
	}
	if got := TailFrac(make([]uint64, 5), 2); got != 0 {
		t.Fatalf("TailFrac of empty = %v", got)
	}
}

func TestMean(t *testing.T) {
	hist := make([]uint64, 10)
	hist[2] = 1
	hist[4] = 1
	if got := Mean(hist); !almost(got, 3) {
		t.Fatalf("Mean = %v, want 3", got)
	}
	if got := Mean(make([]uint64, 4)); got != 0 {
		t.Fatalf("Mean of empty = %v", got)
	}
}
