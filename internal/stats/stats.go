// Package stats holds the measurement helpers the paper's evaluation uses:
// weighted speedup for SMT workloads, the CPI-breakdown arithmetic of
// Section 4.2, and histogram bucketing for the concurrency distributions of
// Figures 4 and 5.
package stats

import "fmt"

// WeightedSpeedup is the SMT metric of Tullsen & Brown used throughout the
// paper: the sum over threads of IPC running together divided by IPC running
// alone on the same machine.
func WeightedSpeedup(together, alone []float64) (float64, error) {
	if len(together) != len(alone) {
		return 0, fmt.Errorf("stats: %d together IPCs vs %d alone IPCs", len(together), len(alone))
	}
	var ws float64
	for i := range together {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("stats: thread %d has non-positive alone IPC %v", i, alone[i])
		}
		ws += together[i] / alone[i]
	}
	return ws, nil
}

// Breakdown is an application's CPI split across the hierarchy, computed
// exactly as in Section 4.2 of the paper from four runs:
//
//	CPIoverall — realistic memory system,
//	CPIpL3     — infinitely large L3,
//	CPIpL2     — infinitely large L2,
//	CPIproc    — infinitely large L1s.
type Breakdown struct {
	Proc float64 // processor core + L1
	L2   float64 // L2 accesses
	L3   float64 // L3 accesses
	Mem  float64 // main memory accesses
}

// NewBreakdown applies the paper's subtraction. Negative components are
// clamped to zero: they arise from statistical noise between runs (the paper
// has the same exposure; its clips are samples too).
func NewBreakdown(overall, perfectL3, perfectL2, proc float64) Breakdown {
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		return v
	}
	return Breakdown{
		Proc: clamp(proc),
		L2:   clamp(perfectL2 - proc),
		L3:   clamp(perfectL3 - perfectL2),
		Mem:  clamp(overall - perfectL3),
	}
}

// Total is the reassembled overall CPI.
func (b Breakdown) Total() float64 { return b.Proc + b.L2 + b.L3 + b.Mem }

// Bucket is one range of a reported histogram.
type Bucket struct {
	// Label is the presentation label, e.g. "2-4".
	Label string
	// Frac is the fraction of mass in the bucket.
	Frac float64
}

// Bucketize groups hist[lo..] into the ranges ending at each edge
// (inclusive), with a final open bucket for everything beyond the last edge.
// hist[i] is the mass at value i; index 0 is skipped (the distributions are
// conditioned on the system being busy). Fractions are of the total included
// mass; an all-zero histogram yields zero fractions.
func Bucketize(hist []uint64, edges []int) []Bucket {
	var total uint64
	for i := 1; i < len(hist); i++ {
		total += hist[i]
	}
	out := make([]Bucket, 0, len(edges)+1)
	lo := 1
	sumRange := func(lo, hi int) uint64 {
		var s uint64
		for i := lo; i <= hi && i < len(hist); i++ {
			s += hist[i]
		}
		return s
	}
	frac := func(v uint64) float64 {
		if total == 0 {
			return 0
		}
		return float64(v) / float64(total)
	}
	for _, e := range edges {
		label := fmt.Sprintf("%d-%d", lo, e)
		if lo == e {
			label = fmt.Sprintf("%d", lo)
		}
		out = append(out, Bucket{Label: label, Frac: frac(sumRange(lo, e))})
		lo = e + 1
	}
	out = append(out, Bucket{Label: fmt.Sprintf(">%d", lo-1), Frac: frac(sumRange(lo, len(hist)-1))})
	return out
}

// TailFrac returns the fraction of histogram mass at or above k
// (conditioned on index ≥ 1), e.g. "probability more than eight requests
// are presented" with k=9.
func TailFrac(hist []uint64, k int) float64 {
	var total, tail uint64
	for i := 1; i < len(hist); i++ {
		total += hist[i]
		if i >= k {
			tail += hist[i]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(tail) / float64(total)
}

// Mean returns the weighted mean index of the histogram (index ≥ 1).
func Mean(hist []uint64) float64 {
	var total, sum uint64
	for i := 1; i < len(hist); i++ {
		total += hist[i]
		sum += uint64(i) * hist[i]
	}
	if total == 0 {
		return 0
	}
	return float64(sum) / float64(total)
}
