package core

import (
	"context"
	"errors"
	"testing"

	"smtdram/internal/obs"
	"smtdram/internal/runner"
)

// A pre-cancelled context aborts the run at the first watchdog boundary with
// the context's own error, and the simulator closes out cleanly.
func TestRunContextCancelled(t *testing.T) {
	cfg := DefaultConfig("mcf")
	cfg.WarmupInstr, cfg.TargetInstr = 5_000, 50_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %+v, %v; want context.Canceled", res, err)
	}
}

// Cancellation through the pool: a cancelled job's future resolves to
// context.Canceled and the pool keeps serving later jobs (not poisoned).
func TestCancelledJobThroughPool(t *testing.T) {
	pool := runner.New(2)
	cfg := DefaultConfig("mcf")
	cfg.WarmupInstr, cfg.TargetInstr = 5_000, 20_000

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fut := runner.SubmitNamedCtx(pool, ctx, cfg.Fingerprint(), func(ctx context.Context) (Result, error) {
		return RunContext(ctx, cfg)
	})
	if _, err := fut.Wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pooled run = %v, want context.Canceled", err)
	}

	ok := runner.SubmitNamedCtx(pool, context.Background(), cfg.Fingerprint(), func(ctx context.Context) (Result, error) {
		return RunContext(ctx, cfg)
	})
	res, err := ok.Wait()
	if err != nil {
		t.Fatalf("post-cancel run failed: %v", err)
	}
	if res.IPC[0] <= 0 {
		t.Fatalf("post-cancel run produced no progress: %+v", res)
	}
}

// A run cancelled mid-flight (from a progress hook, i.e. on the run
// goroutine) stops promptly and still reports skip/observer close-out.
func TestRunContextCancelledMidRun(t *testing.T) {
	cfg := DefaultConfig("mcf")
	cfg.WarmupInstr, cfg.TargetInstr = 50_000, 200_000
	ctx, cancel := context.WithCancel(context.Background())
	ob := &obs.Observer{ProgressInterval: 2_000}
	var fired int
	ob.Progress = func(now uint64) {
		fired++
		if now > 10_000 {
			cancel()
		}
	}
	cfg.Observe = func() *obs.Observer { return ob }
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel = %v, want context.Canceled", err)
	}
	if fired == 0 {
		t.Fatal("progress hook never fired")
	}
	if ob.FinalCycle == 0 {
		t.Fatal("observer was not finished on cancellation")
	}
	// The progress snapshot works and reports a consistent machine.
	p := s.Progress(ob.FinalCycle)
	if p.Cycle != ob.FinalCycle || p.Committed == 0 || p.TargetTotal != 250_000 {
		t.Fatalf("progress snapshot inconsistent: %+v", p)
	}
}
