package core

import (
	"bytes"
	"math"
	"testing"

	"smtdram/internal/analysis"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
)

// runObserved runs a fast mix with the given observability options attached
// and returns the observer and result.
func runObserved(t *testing.T, opts obs.Options, mutate func(*Config)) (*obs.Observer, Result) {
	t.Helper()
	cfg := fastCfg("mcf", "ammp")
	ob := obs.New(opts)
	cfg.Observe = func() *obs.Observer { return ob }
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ob, res
}

// Every traced request must reach exactly one terminal state (done or
// cancelled), its events must appear with nondecreasing At, and every phase
// must have End ≥ At.
func TestLifecycleInvariants(t *testing.T) {
	ob, res := runObserved(t, obs.Options{Trace: true}, nil)
	events := ob.Trace.Events()
	if len(events) == 0 {
		t.Fatal("memory-bound mix produced no lifecycle events")
	}
	if ob.FinalCycle == 0 {
		t.Fatal("Finish did not record the final cycle")
	}
	_ = res
	groups := obs.GroupByRequest(events)
	for _, g := range groups {
		var lastAt uint64
		terminals := 0
		for i, e := range g {
			if e.End < e.At {
				t.Fatalf("req %d event %v: End %d < At %d", e.ReqID, e.Kind, e.End, e.At)
			}
			if e.At < lastAt {
				t.Fatalf("req %d: event %d (%v at %d) before predecessor at %d",
					e.ReqID, i, e.Kind, e.At, lastAt)
			}
			lastAt = e.At
			if e.Kind.Terminal() {
				terminals++
				if i != len(g)-1 {
					t.Fatalf("req %d: terminal %v not last", e.ReqID, e.Kind)
				}
			}
		}
		// A rejected request's only record may be KReject; everything that
		// entered a queue must terminate.
		if g[0].Kind == obs.KReject && len(g) == 1 {
			continue
		}
		if terminals != 1 {
			t.Fatalf("req %d: %d terminal events, want exactly 1", g[0].ReqID, terminals)
		}
	}
}

// Two runs with the same seed must export byte-identical traces and metrics —
// the property that makes traces diffable across refactorings.
func TestTraceDeterminism(t *testing.T) {
	exportAll := func() (jsonl, chrome, metrics []byte) {
		ob, _ := runObserved(t, obs.Options{Trace: true, Metrics: true, MetricsInterval: 500}, nil)
		var j, c, m bytes.Buffer
		if err := ob.Trace.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := ob.Trace.WriteChrome(&c); err != nil {
			t.Fatal(err)
		}
		if err := ob.Reg.WriteJSONL(&m, "det", ob.FinalCycle); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes(), m.Bytes()
	}
	j1, c1, m1 := exportAll()
	j2, c2, m2 := exportAll()
	if !bytes.Equal(j1, j2) {
		t.Fatal("same-seed JSONL traces differ")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("same-seed Chrome traces differ")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("same-seed metrics exports differ")
	}
	if len(j1) == 0 || len(c1) == 0 || len(m1) == 0 {
		t.Fatal("empty export")
	}
}

// The registry's aggregates must agree with the independent numbers computed
// by the result collection and the offline analysis package.
func TestMetricsMatchAnalysis(t *testing.T) {
	var coll analysis.Collector
	traced := 0
	ob, res := runObserved(t, obs.Options{Metrics: true, MetricsInterval: 1}, func(cfg *Config) {
		cfg.WarmupInstr = 0 // measure from cycle 0 so cumulative counters align
		cfg.Mem.Trace = func(e memctrl.TraceEvent) {
			traced++
			coll.Add(e)
		}
	})
	if traced == 0 {
		t.Fatal("no DRAM traffic")
	}
	sum, err := coll.Summarize()
	if err != nil {
		t.Fatal(err)
	}

	hitRate, ok := ob.Reg.Value("memctrl.row_hit_rate", ob.FinalCycle)
	if !ok {
		t.Fatal("memctrl.row_hit_rate not registered")
	}
	if math.Abs(hitRate-sum.RowHitRate) > 1e-9 {
		t.Fatalf("registry row hit rate %.6f != analysis %.6f", hitRate, sum.RowHitRate)
	}
	if math.Abs(hitRate-(1-res.RowBufferMissRate)) > 1e-9 {
		t.Fatalf("registry row hit rate %.6f != result %.6f", hitRate, 1-res.RowBufferMissRate)
	}

	if v, ok := ob.Reg.Value("memctrl.reads", ob.FinalCycle); !ok || uint64(v) != res.MemReads {
		t.Fatalf("memctrl.reads = %v, result %d", v, res.MemReads)
	}
	if v, ok := ob.Reg.Value("memctrl.avg_read_latency", ob.FinalCycle); !ok || math.Abs(v-res.AvgReadLatency) > 1e-9 {
		t.Fatalf("memctrl.avg_read_latency = %v, result %f", v, res.AvgReadLatency)
	}

	// The per-cycle outstanding.total series, integrated, must agree with the
	// controller's time-weighted OutstandingHist: both measure request-cycles
	// in the DRAM system. Sampling reads post-cycle state while the histogram
	// integrates intra-cycle change points, so allow a small relative slack.
	cycles, series, ok := ob.Reg.Series("memctrl.outstanding.total")
	if !ok || len(series) == 0 {
		t.Fatal("memctrl.outstanding.total series missing")
	}
	if len(cycles) != len(series) {
		t.Fatalf("series length mismatch: %d cycles, %d values", len(cycles), len(series))
	}
	var sampled float64
	for _, v := range series {
		sampled += v
	}
	var weighted float64
	for i, dt := range res.OutstandingHist {
		weighted += float64(i) * float64(dt)
	}
	if weighted == 0 {
		t.Fatal("OutstandingHist empty")
	}
	if rel := math.Abs(sampled-weighted) / weighted; rel > 0.05 {
		t.Fatalf("sampled outstanding integral %.0f vs histogram %.0f (%.1f%% off)",
			sampled, weighted, 100*rel)
	}

	// Per-thread outstanding series must sum to the total at every sample.
	s0, ok0 := seriesOf(t, ob.Reg, "memctrl.outstanding.t0")
	s1, ok1 := seriesOf(t, ob.Reg, "memctrl.outstanding.t1")
	if !ok0 || !ok1 {
		t.Fatal("per-thread outstanding series missing")
	}
	for i := range series {
		if perThread := s0[i] + s1[i]; perThread > series[i] {
			t.Fatalf("sample %d: per-thread outstanding %f > total %f (writebacks excluded)",
				i, perThread, series[i])
		}
	}
}

func seriesOf(t *testing.T, reg *obs.Registry, name string) ([]float64, bool) {
	t.Helper()
	_, s, ok := reg.Series(name)
	return s, ok
}

// Tracing must not change simulation results: the observer only reads state.
func TestObservabilityIsPassive(t *testing.T) {
	cfg := fastCfg("mcf", "ammp")
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ob, observed := runObserved(t, obs.Options{Trace: true, Metrics: true, Profile: true}, nil)
	if plain.Cycles != observed.Cycles || plain.TotalIPC() != observed.TotalIPC() ||
		plain.MemReads != observed.MemReads || plain.RowHits != observed.RowHits {
		t.Fatalf("observability changed results: %+v vs %+v", plain, observed)
	}
	if ob.Prof.Cycles() == 0 {
		t.Fatal("profiler observed no cycles")
	}
}

// The past-schedule hazard counter must be visible through the registry and
// zero on a healthy run.
func TestEventQueueMetrics(t *testing.T) {
	ob, _ := runObserved(t, obs.Options{Metrics: true}, nil)
	if v, ok := ob.Reg.Value("event.past_schedules", ob.FinalCycle); !ok || v != 0 {
		t.Fatalf("event.past_schedules = %v, %v; want 0 on a healthy run", v, ok)
	}
	if v, ok := ob.Reg.Value("event.fired", ob.FinalCycle); !ok || v == 0 {
		t.Fatalf("event.fired = %v, %v; want nonzero", v, ok)
	}
	if v, ok := ob.Reg.Value("event.max_pending", ob.FinalCycle); !ok || v == 0 {
		t.Fatalf("event.max_pending = %v, %v; want nonzero", v, ok)
	}
}
