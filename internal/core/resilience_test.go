package core

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"smtdram/internal/cpu"
	"smtdram/internal/faults"
	"smtdram/internal/workload"
)

// faultyCfg is fastCfg plus a fault plan.
func faultyCfg(plan *faults.Plan, apps ...string) Config {
	cfg := fastCfg(apps...)
	cfg.Faults = plan
	return cfg
}

func TestValidateRejectsBadFaultPlan(t *testing.T) {
	// The default machine has 2 logical channels; failing channel 5 is out of
	// range and must be rejected before the machine is even built.
	cfg := faultyCfg(&faults.Plan{ChannelFail: &faults.ChannelFail{Channel: 5, At: 1000}}, "mcf")
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted a channel-fail clause outside the geometry")
	}
	if _, err := NewSimulator(cfg); err == nil {
		t.Fatal("NewSimulator accepted a channel-fail clause outside the geometry")
	}
	cfg = faultyCfg(&faults.Plan{BitFlipRate: 1.5}, "mcf")
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted a bit-flip rate above 1")
	}
}

func TestSeededFaultPlanDeterminism(t *testing.T) {
	plan := &faults.Plan{BitFlipRate: 1e-2, DropRate: 1e-3, Seed: 7}
	run := func() Result {
		res, err := Run(faultyCfg(plan, "mcf", "art"))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs of the same seeded fault plan diverged:\n%+v\n%+v", a, b)
	}
	if a.Faults == nil || a.Faults.Injected == 0 {
		t.Fatalf("fault plan injected nothing: %+v", a.Faults)
	}
}

func TestFaultAccountingExact(t *testing.T) {
	plan := &faults.Plan{BitFlipRate: 5e-2, DropRate: 5e-3, Seed: 11}
	res, err := Run(faultyCfg(plan, "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Faults
	if f == nil {
		t.Fatal("no fault report on a faulty run")
	}
	if f.Injected != f.Corrected+f.Uncorrected+f.Drops {
		t.Fatalf("accounting: injected %d != corrected %d + uncorrected %d + dropped %d",
			f.Injected, f.Corrected, f.Uncorrected, f.Drops)
	}
	if f.BitFlips == 0 || f.BitFlips != f.Corrected {
		t.Fatalf("every single-bit flip must be corrected: %+v", f)
	}
	if f.Detected != f.Corrected+f.Uncorrected {
		t.Fatalf("ECC detected %d != corrected %d + uncorrected %d", f.Detected, f.Corrected, f.Uncorrected)
	}
	if res.Failover != nil {
		t.Fatal("failover report without a channel-fail clause")
	}
}

func TestChannelFailRunCompletesViaFailover(t *testing.T) {
	plan := &faults.Plan{ChannelFail: &faults.ChannelFail{Channel: 1, At: 40_000}}
	res, err := Run(faultyCfg(plan, "mcf", "art"))
	if err != nil {
		t.Fatalf("channel-fail run must complete via failover, got %v", err)
	}
	rep := res.Failover
	if rep == nil {
		t.Fatal("no failover report after a planned channel failure")
	}
	if rep.FailedChannel != 1 || rep.AtCycle < 40_000 {
		t.Fatalf("failover report = %+v, want channel 1 at ≥40000", rep)
	}
	if rep.PreIPC <= 0 || rep.PostIPC <= 0 {
		t.Fatalf("failover report missing IPC on one side: %+v", rep)
	}
	if rep.PreAvgReadLat <= 0 || rep.PostAvgReadLat <= 0 {
		t.Fatalf("failover report missing latency on one side: %+v", rep)
	}
	// Losing half the DRAM system must not come for free.
	if rep.PostAvgReadLat <= rep.PreAvgReadLat {
		t.Errorf("read latency did not degrade after losing a channel: %+v", rep)
	}
}

// stuckSource emits instructions that never complete, livelocking the core.
type stuckSource struct{}

func (stuckSource) Next() workload.Instr {
	return workload.Instr{Kind: workload.IntOp, Lat: 1 << 40}
}

func TestWatchdogAbortsLivelock(t *testing.T) {
	cfg := fastCfg("stuck")
	cfg.Sources = []cpu.Source{stuckSource{}}
	cfg.MaxCycles = 50_000_000
	cfg.WatchdogCycles = 20_000
	_, err := Run(cfg)
	var npe *NoProgressError
	if !errors.As(err, &npe) {
		t.Fatalf("livelocked run returned %v, want *NoProgressError", err)
	}
	if npe.Committed != 0 || npe.Window != 20_000 {
		t.Fatalf("watchdog error = %+v", npe)
	}
	// The whole point: abort well under the MaxCycles budget.
	if npe.Cycle > 100_000 {
		t.Fatalf("watchdog fired at cycle %d, far beyond its 20000-cycle window", npe.Cycle)
	}
}

func TestWarmupTimeoutColdWindow(t *testing.T) {
	cfg := fastCfg("mcf")
	cfg.WarmupInstr = 1 << 40 // never warms up
	cfg.MaxCycles = 100_000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("run that never warmed up must report TimedOut")
	}
	// Cold-window fallback: the measurement window is the whole run.
	if res.Cycles < 100_000 {
		t.Fatalf("cold window covers %d cycles, want the full 100000", res.Cycles)
	}
	if res.IPC[0] <= 0 {
		t.Fatal("cold window must still report partial IPC")
	}
}

func TestConfigFingerprint(t *testing.T) {
	cfg := faultyCfg(&faults.Plan{BitFlipRate: 1e-6, Seed: 9}, "mcf", "art")
	fp := cfg.Fingerprint()
	for _, want := range []string{"mcf+art", "seed=42", "fetch=", "bitflip"} {
		if !strings.Contains(fp, want) {
			t.Fatalf("fingerprint %q missing %q", fp, want)
		}
	}
	if plain := fastCfg("mcf").Fingerprint(); strings.Contains(plain, "faults=") {
		t.Fatalf("fault-free fingerprint mentions faults: %q", plain)
	}
	// The fetch policy changes results (the paper's main variable), and the
	// daemon keys its result cache on the fingerprint — two configs differing
	// only in fetch policy must not collide.
	icount := fastCfg("mcf")
	icount.CPU.Policy = cpu.ICOUNT
	if fastCfg("mcf").Fingerprint() == icount.Fingerprint() {
		t.Fatalf("fingerprint ignores the fetch policy: %q", icount.Fingerprint())
	}
}
