package core

import (
	"fmt"
	"testing"

	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/memctrl"
)

// TestSkipLockstepDeep is the strong oracle for the deep-skip protocol: it
// drives one machine with the exact sub-span re-probe sequence the run loop
// uses (ProbeQuiet, sail-through, wake, re-probe) and a twin with plain
// per-cycle Ticks, comparing the full observable CPU fingerprint at every
// landed cycle — and, stricter, asserting the twin's fingerprint never moves
// during a cycle the protocol skipped. The end-to-end equivalence tests in
// skip_test.go compare final Results; this test pins down *which cycle* a
// divergence first appears at, and is the only one that can catch a
// multi-cycle optimism bug (a probe bound that is too far out) whose damage
// happens mid-window. The one-cycle oracle in the cpu package
// (TestNextWorkAtPredictsQuietCycles) structurally cannot.
func TestSkipLockstepDeep(t *testing.T) {
	base := func() Config {
		cfg := fastCfg("mcf", "ammp", "swim", "lucas")
		cfg.WarmupInstr = 60_000
		cfg.TargetInstr = 40_000
		return cfg
	}
	serialized := func() Config {
		// The MEMMix benchmark machine: four copies of the most memory-bound
		// app on a ganged close-page FCFS controller with a serialized
		// in-flight window, under the fetch-stall frontend policy. This is
		// the deepest-skipping configuration in the repo, so it exercises
		// the re-probe path (and the FetchStall gate bounds) hardest.
		cfg := fastCfg("mcf", "mcf", "mcf", "mcf")
		cfg.WarmupInstr = 60_000
		cfg.TargetInstr = 40_000
		cfg.Mem.PhysChannels = 4
		cfg.Mem.Gang = 4
		cfg.Mem.PageMode = dram.ClosePage
		cfg.Mem.Policy = memctrl.FCFS
		cfg.Mem.QueueDepth = 8
		cfg.Mem.MaxInFlight = 1
		cfg.CPU.Policy = cpu.FetchStall
		return cfg
	}
	for _, tc := range []struct {
		name string
		cfg  func() Config
	}{
		{"default-mix", base},
		{"serialized-fetchstall", serialized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lockstepDeep(t, tc.cfg)
		})
	}
}

func lockstepDeep(t *testing.T, mkCfg func() Config) {
	mk := func() *Simulator {
		s, err := NewSimulator(mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s, u := mk(), mk()

	// A short ring of recent protocol decisions, dumped on failure so the
	// offending span is visible without re-instrumenting.
	var decisions []string
	logd := func(f string, a ...any) {
		decisions = append(decisions, fmt.Sprintf(f, a...))
		if len(decisions) > 12 {
			decisions = decisions[1:]
		}
	}

	const limit = 400_000
	uNow := uint64(0)
	for now := uint64(1); now <= limit; now++ {
		s.q.RunUntil(now)
		s.cpu.Tick(now)
		for uNow < now {
			uNow++
			u.q.RunUntil(uNow)
			pre := u.cpu.Fingerprint()
			u.cpu.Tick(uNow)
			if uNow != now {
				if post := u.cpu.Fingerprint(); post != pre {
					for _, d := range decisions {
						t.Log(d)
					}
					t.Fatalf("twin acted at skipped cycle %d\npre:  %s\npost: %s", uNow, pre, post)
				}
			}
		}
		a, b := s.cpu.Fingerprint(), u.cpu.Fingerprint()
		if a != b {
			for _, d := range decisions {
				t.Log(d)
			}
			t.Fatalf("diverged at landed cycle %d\nskip: %s\ntick: %s", now, a, b)
		}
		if s.cpu.AllFinished() {
			break
		}
		if s.cpu.Acted() {
			continue
		}
		// Deep sub-span re-probe, mirroring Simulator.Run (no watchdog or
		// observer clamps here; the cycle limit stands in for the budget).
		cpuNext, fx, quiet := s.cpu.ProbeQuiet(now)
		if !quiet || cpuNext <= now+1 {
			continue
		}
		if cpuNext == ^uint64(0) {
			if _, qok := s.q.NextAt(); !qok && !s.ctrl.Quiet() {
				continue
			}
		}
		target := cpuNext
		if target > limit+1 {
			target = limit + 1
		}
		if target <= now+1 {
			continue
		}
		from := now
		s.cpu.TakeWake()
		land := target
		logd("span open now=%d cpuNext=%d", now, cpuNext)
		for {
			ea, eok := s.q.NextAt()
			if !eok || ea >= land {
				break
			}
			s.q.RunUntil(ea)
			if !s.cpu.TakeWake() {
				continue // memory-internal: sail through
			}
			s.cpu.ApplyQuiet(fx, ea-1-from)
			from = ea - 1
			next, nfx, q := s.cpu.ProbeQuiet(from)
			if !q || next <= ea {
				land = ea
				logd("  wake ea=%d -> land", ea)
				break
			}
			fx = nfx
			land = next
			if land > limit+1 {
				land = limit + 1
			}
			if land <= ea {
				land = ea + 1
			}
			logd("  wake ea=%d next=%d reopen land=%d", ea, next, land)
		}
		s.cpu.ApplyQuiet(fx, land-1-from)
		now = land - 1
	}
}
