package core

import (
	"fmt"
	"testing"

	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
)

// TestSkipLockstepDeep is the strong oracle for the deep-skip protocol: it
// drives one machine with the exact span-drain sequence the run loop uses
// (ProbeQuiet, DrainQuiet sail-through, wake, re-probe) and a twin with plain
// per-cycle Ticks, comparing the full observable CPU fingerprint at every
// landed cycle — and, stricter, asserting the twin's fingerprint never moves
// during a cycle the protocol skipped. The end-to-end equivalence tests in
// skip_test.go compare final Results; this test pins down *which cycle* a
// divergence first appears at, and is the only one that can catch a
// multi-cycle optimism bug (a probe bound that is too far out) whose damage
// happens mid-window. The one-cycle oracle in the cpu package
// (TestNextWorkAtPredictsQuietCycles) structurally cannot.
//
// The observed variant attaches a loop profiler to both machines and replays
// it exactly as the run loop would (OnCycle on landed cycles, OnEventCycle on
// sailed-through event cycles, OnCycleSkip on quiet gaps), asserting the
// replayed profile is identical to the ticked twin's per-cycle one. The
// seeded-fault variant routes retry backoff timers and ECC scrubbing through
// the span drain, where a deadline the controller probe failed to report
// would surface as a lockstep divergence at its exact cycle.
func TestSkipLockstepDeep(t *testing.T) {
	base := func() Config {
		cfg := fastCfg("mcf", "ammp", "swim", "lucas")
		cfg.WarmupInstr = 60_000
		cfg.TargetInstr = 40_000
		return cfg
	}
	serialized := func() Config {
		// The MEMMix benchmark machine: four copies of the most memory-bound
		// app on a ganged close-page FCFS controller with a serialized
		// in-flight window, under the fetch-stall frontend policy. This is
		// the deepest-skipping configuration in the repo, so it exercises
		// the re-probe path (and the FetchStall gate bounds) hardest.
		cfg := fastCfg("mcf", "mcf", "mcf", "mcf")
		cfg.WarmupInstr = 60_000
		cfg.TargetInstr = 40_000
		cfg.Mem.PhysChannels = 4
		cfg.Mem.Gang = 4
		cfg.Mem.PageMode = dram.ClosePage
		cfg.Mem.Policy = memctrl.FCFS
		cfg.Mem.QueueDepth = 8
		cfg.Mem.MaxInFlight = 1
		cfg.CPU.Policy = cpu.FetchStall
		return cfg
	}
	faulty := func() Config {
		// Seeded bit-flip and drop faults arm retry backoff timers whose
		// expiries are in-span events; the controller probe must report them
		// (and the ECC scrub latency bumps) or the twin acts mid-window.
		cfg := faultyCfg(&faults.Plan{BitFlipRate: 5e-2, DropRate: 5e-3, Seed: 11},
			"mcf", "art", "swim", "lucas")
		cfg.WarmupInstr = 60_000
		cfg.TargetInstr = 40_000
		return cfg
	}
	for _, tc := range []struct {
		name     string
		cfg      func() Config
		observed bool
	}{
		{"default-mix", base, false},
		{"serialized-fetchstall", serialized, false},
		{"seeded-faults", faulty, false},
		{"observed-default-mix", base, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lockstepDeep(t, tc.cfg, tc.observed)
		})
	}
}

func lockstepDeep(t *testing.T, mkCfg func() Config, observed bool) {
	mk := func() *Simulator {
		s, err := NewSimulator(mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s, u := mk(), mk()

	// The observed variant profiles both machines: the skipping one through
	// the replay protocol, the ticked twin through the plain per-cycle hook.
	var sob, uob *obs.Observer
	if observed {
		sob = obs.New(obs.Options{Profile: true})
		uob = obs.New(obs.Options{Profile: true})
	}

	// A short ring of recent protocol decisions, dumped on failure so the
	// offending span is visible without re-instrumenting.
	var decisions []string
	logd := func(f string, a ...any) {
		decisions = append(decisions, fmt.Sprintf(f, a...))
		if len(decisions) > 12 {
			decisions = decisions[1:]
		}
	}

	// The span drain's stop callback, mirroring Simulator.Run's drainStop:
	// wake decision plus exact observer replay bookkeeping.
	var obsFrom, obsFired uint64
	drainStop := func(ea uint64) bool {
		woke := s.cpu.TakeWake()
		if sob != nil {
			sob.OnCycleSkip(obsFrom, ea-1, obsFired)
			if woke {
				obsFrom = ea - 1
			} else {
				obsFired = s.q.Fired()
				sob.OnEventCycle(ea, obsFired)
				obsFrom = ea
			}
		}
		return woke
	}

	const limit = 400_000
	uNow := uint64(0)
	var now uint64
	for now = 1; now <= limit; now++ {
		s.q.RunUntil(now)
		s.cpu.Tick(now)
		if sob != nil {
			sob.OnCycle(now, s.q.Fired())
		}
		for uNow < now {
			uNow++
			u.q.RunUntil(uNow)
			pre := u.cpu.Fingerprint()
			u.cpu.Tick(uNow)
			if uob != nil {
				uob.OnCycle(uNow, u.q.Fired())
			}
			if uNow != now {
				if post := u.cpu.Fingerprint(); post != pre {
					for _, d := range decisions {
						t.Log(d)
					}
					t.Fatalf("twin acted at skipped cycle %d\npre:  %s\npost: %s", uNow, pre, post)
				}
			}
		}
		a, b := s.cpu.Fingerprint(), u.cpu.Fingerprint()
		if a != b {
			for _, d := range decisions {
				t.Log(d)
			}
			t.Fatalf("diverged at landed cycle %d\nskip: %s\ntick: %s", now, a, b)
		}
		if s.cpu.AllFinished() {
			break
		}
		// The controller probe's soundness invariant, asserted at every
		// landed cycle: a non-quiet controller always has a finite next
		// deadline, and that deadline is covered by a pending event — this
		// is what makes the run loop's empty-queue lost-wakeup guard sound.
		if mn, mq := s.ctrl.ProbeQuiet(now); !mq {
			if mn == ^uint64(0) {
				t.Fatalf("cycle %d: controller non-quiet with no finite deadline", now)
			}
			if _, qok := s.q.NextAt(); !qok {
				t.Fatalf("cycle %d: controller non-quiet with an empty event queue", now)
			}
		}
		if s.cpu.Acted() {
			continue
		}
		// Deep sub-span re-probe, mirroring Simulator.Run (no watchdog or
		// sample-boundary clamps here; the cycle limit stands in for the
		// budget).
		cpuNext, fx, quiet := s.cpu.ProbeQuiet(now)
		if !quiet || cpuNext <= now+1 {
			continue
		}
		if cpuNext == ^uint64(0) {
			if _, qok := s.q.NextAt(); !qok {
				if _, mquiet := s.ctrl.ProbeQuiet(now); !mquiet {
					continue
				}
			}
		}
		target := cpuNext
		if target > limit+1 {
			target = limit + 1
		}
		if target <= now+1 {
			continue
		}
		from := now
		s.cpu.TakeWake()
		obsFrom, obsFired = now, s.q.Fired()
		land := target
		logd("span open now=%d cpuNext=%d", now, cpuNext)
		for {
			ea, woke := s.q.DrainQuiet(land, drainStop)
			if !woke {
				break
			}
			s.cpu.ApplyQuiet(fx, ea-1-from)
			from = ea - 1
			next, nfx, q := s.cpu.ProbeQuiet(from)
			if !q || next <= ea {
				land = ea
				logd("  wake ea=%d -> land", ea)
				break
			}
			fx = nfx
			if sob != nil {
				obsFired = s.q.Fired()
				sob.OnEventCycle(ea, obsFired)
				obsFrom = ea
			}
			land = next
			if land > limit+1 {
				land = limit + 1
			}
			if land <= ea {
				land = ea + 1
			}
			logd("  wake ea=%d next=%d reopen land=%d", ea, next, land)
		}
		s.cpu.ApplyQuiet(fx, land-1-from)
		if sob != nil {
			sob.OnCycleSkip(obsFrom, land-1, obsFired)
		}
		s.ctrl.ApplyQuiet(land - 1)
		now = land - 1
	}

	// A final span may fast-forward right up to the cycle limit, exiting the
	// loop with the ticked twin still behind: the skipping machine replayed
	// those cycles in aggregate, so catch the twin up through the same window
	// (asserting it stays inert there too) before the closing comparison.
	if now > limit {
		now = limit
	}
	for uNow < now {
		uNow++
		u.q.RunUntil(uNow)
		pre := u.cpu.Fingerprint()
		u.cpu.Tick(uNow)
		if uob != nil {
			uob.OnCycle(uNow, u.q.Fired())
		}
		if post := u.cpu.Fingerprint(); post != pre {
			t.Fatalf("twin acted at final skipped cycle %d\npre:  %s\npost: %s", uNow, pre, post)
		}
	}
	if a, b := s.cpu.Fingerprint(), u.cpu.Fingerprint(); a != b {
		t.Fatalf("diverged at final cycle %d\nskip: %s\ntick: %s", now, a, b)
	}

	if observed {
		// The replayed profile must be indistinguishable from the ticked
		// twin's: same cycle count, same events-per-cycle distribution.
		if sc, uc := sob.Prof.Cycles(), uob.Prof.Cycles(); sc != uc {
			t.Fatalf("profiled cycle counts diverge: skip=%d tick=%d", sc, uc)
		}
		if sh, uh := sob.Prof.Hist.String(), uob.Prof.Hist.String(); sh != uh {
			t.Fatalf("events-per-cycle histograms diverge:\nskip: %s\ntick: %s", sh, uh)
		}
		if sob.Prof.Hist.Count() == 0 {
			t.Fatal("observed lockstep profiled nothing")
		}
	}
}
