package core

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"testing"

	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
	"smtdram/internal/snap"
)

// ckptConfigs is the configuration table shared by the checkpoint equivalence
// and byte-stability tests: the default mix, the deepest-skipping serialized
// machine (the restore path must rebuild its ganged close-page controller
// state exactly), a single-app baseline (the shape the figures runner forks
// most), and an unskipped run (checkpoint placement must not depend on the
// two-speed clock).
func ckptConfigs() []struct {
	name string
	cfg  func() Config
} {
	return []struct {
		name string
		cfg  func() Config
	}{
		{"default-mix", func() Config {
			return fastCfg("mcf", "art", "swim", "lucas")
		}},
		{"serialized-fetchstall", func() Config {
			cfg := fastCfg("mcf", "mcf", "mcf", "mcf")
			cfg.Mem.PhysChannels = 4
			cfg.Mem.Gang = 4
			cfg.Mem.PageMode = dram.ClosePage
			cfg.Mem.Policy = memctrl.FCFS
			cfg.Mem.QueueDepth = 8
			cfg.Mem.MaxInFlight = 1
			cfg.CPU.Policy = cpu.FetchStall
			return cfg
		}},
		{"single-app", func() Config {
			return fastCfg("mcf")
		}},
		{"unskipped", func() Config {
			cfg := fastCfg("art", "mcf")
			cfg.DisableClockSkip = true
			return cfg
		}},
	}
}

// TestCheckpointEquivalence is the tentpole invariant: a run forked from a
// warmup checkpoint produces results byte-identical to an uninterrupted run —
// the same Result struct, the same JSON bytes, and the same skip accounting —
// and forking twice from one checkpoint neither diverges nor mutates the
// checkpoint's frame.
func TestCheckpointEquivalence(t *testing.T) {
	ctx := context.Background()
	for _, tc := range ckptConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			cold, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			coldRes, err := cold.RunContext(ctx)
			if err != nil {
				t.Fatal(err)
			}

			chk, err := WarmupCheckpoint(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if chk.Now == 0 || chk.Prefix != cfg.WarmupFingerprint() {
				t.Fatalf("malformed checkpoint: now=%d prefix=%q", chk.Now, chk.Prefix)
			}
			frame := append([]byte(nil), chk.Data...)

			warm, err := NewCheckpointedSimulator(cfg, chk)
			if err != nil {
				t.Fatal(err)
			}
			warmRes, err := warm.RunContext(ctx)
			if err != nil {
				t.Fatal(err)
			}

			coldJSON, _ := json.Marshal(coldRes)
			warmJSON, _ := json.Marshal(warmRes)
			if !bytes.Equal(coldJSON, warmJSON) {
				t.Fatalf("restored run diverged from cold run\ncold: %s\nwarm: %s", coldJSON, warmJSON)
			}
			if cs, ws := cold.SkipStats(), warm.SkipStats(); cs != ws {
				t.Fatalf("skip accounting diverged: cold=%+v warm=%+v", cs, ws)
			}

			// Second fork from the same checkpoint: identical again, and the
			// frame must be exactly as it was before either restore.
			againRes, err := RunFromCheckpoint(ctx, cfg, chk)
			if err != nil {
				t.Fatal(err)
			}
			againJSON, _ := json.Marshal(againRes)
			if !bytes.Equal(coldJSON, againJSON) {
				t.Fatalf("second fork diverged\ncold: %s\nfork: %s", coldJSON, againJSON)
			}
			if !bytes.Equal(frame, chk.Data) {
				t.Fatal("restoring mutated the checkpoint frame")
			}
		})
	}
}

// TestCheckpointReencodeByteStable is the encode→decode→encode golden
// property: re-serializing a freshly restored machine reproduces the original
// frame byte for byte. This is what makes checkpoints content-addressable.
func TestCheckpointReencodeByteStable(t *testing.T) {
	ctx := context.Background()
	for _, tc := range ckptConfigs() {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			chk, err := WarmupCheckpoint(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewCheckpointedSimulator(cfg, chk)
			if err != nil {
				t.Fatal(err)
			}
			again, err := s.encode(s.resumeAt, s.resumeLC, s.resumeLP)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(chk.Data, again) {
				t.Fatalf("re-encode is not byte-stable: %d vs %d bytes", len(chk.Data), len(again))
			}
		})
	}
}

// TestCheckpointLockstepRestoredVsCold extends the lockstep oracle to the
// restore path: a machine decoded from a warmup checkpoint must hold the exact
// CPU fingerprint of a cold twin ticked plainly to the same cycle, and stay in
// fingerprint lockstep with it cycle by cycle through the measurement phase.
// Where the equivalence test compares final Results, this pins down *which
// cycle* a restore bug first acts at.
func TestCheckpointLockstepRestoredVsCold(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		cfg  func() Config
	}{
		{"default-mix", ckptConfigs()[0].cfg},
		{"serialized-fetchstall", ckptConfigs()[1].cfg},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg()
			chk, err := WarmupCheckpoint(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			s, err := NewCheckpointedSimulator(cfg, chk)
			if err != nil {
				t.Fatal(err)
			}
			u, err := NewSimulator(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for c := uint64(1); c <= chk.Now; c++ {
				u.q.RunUntil(c)
				u.cpu.Tick(c)
			}
			if a, b := s.cpu.Fingerprint(), u.cpu.Fingerprint(); a != b {
				t.Fatalf("restored state diverges at the warmup boundary (cycle %d)\nrestored: %s\ncold:     %s", chk.Now, a, b)
			}
			const extra = 100_000
			for c := chk.Now + 1; c <= chk.Now+extra; c++ {
				s.q.RunUntil(c)
				s.cpu.Tick(c)
				u.q.RunUntil(c)
				u.cpu.Tick(c)
				if a, b := s.cpu.Fingerprint(), u.cpu.Fingerprint(); a != b {
					t.Fatalf("diverged at cycle %d (%d past the boundary)\nrestored: %s\ncold:     %s", c, c-chk.Now, a, b)
				}
				if s.cpu.AllFinished() {
					return
				}
			}
		})
	}
}

// TestCheckpointUnsupported pins the bypass gates: configurations the codec
// cannot represent are rejected up front with snap.ErrUnsupported, so callers
// fall back to a plain run instead of capturing a lying checkpoint.
func TestCheckpointUnsupported(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-warmup", func(c *Config) { c.WarmupInstr = 0 }},
		{"fault-plan", func(c *Config) {
			c.Faults = &faults.Plan{BitFlipRate: 5e-2, Seed: 11}
		}},
		{"observer", func(c *Config) {
			c.Observe = func() *obs.Observer { return obs.New(obs.Options{Profile: true}) }
		}},
		{"trace-sink", func(c *Config) {
			c.Mem.Trace = func(memctrl.TraceEvent) {}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastCfg("mcf")
			tc.mutate(&cfg)
			if err := CheckpointSupported(cfg); !errors.Is(err, snap.ErrUnsupported) {
				t.Fatalf("CheckpointSupported = %v, want snap.ErrUnsupported", err)
			}
			if _, err := WarmupCheckpoint(ctx, cfg); !errors.Is(err, snap.ErrUnsupported) {
				t.Fatalf("WarmupCheckpoint = %v, want snap.ErrUnsupported", err)
			}
		})
	}
}

// TestCheckpointRestoreRejects exercises the restore path's defenses: damaged
// frames and mismatched configurations fail with the right typed error, never
// a half-restored machine.
func TestCheckpointRestoreRejects(t *testing.T) {
	ctx := context.Background()
	cfg := fastCfg("mcf", "art")
	chk, err := WarmupCheckpoint(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}

	damaged := func(mutate func([]byte) []byte) *Checkpoint {
		data := mutate(append([]byte(nil), chk.Data...))
		return &Checkpoint{Prefix: chk.Prefix, Now: chk.Now, Data: data}
	}

	t.Run("bit-flip", func(t *testing.T) {
		bad := damaged(func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
		if _, err := NewCheckpointedSimulator(cfg, bad); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("bit-flipped frame: got %v, want snap.ErrCorrupt", err)
		}
	})
	t.Run("truncated-short", func(t *testing.T) {
		bad := damaged(func(b []byte) []byte { return b[:5] })
		if _, err := NewCheckpointedSimulator(cfg, bad); !errors.Is(err, snap.ErrTruncated) {
			t.Fatalf("short frame: got %v, want snap.ErrTruncated", err)
		}
	})
	t.Run("truncated-tail", func(t *testing.T) {
		// Dropping the tail leaves a full-length-looking frame whose checksum
		// no longer matches: corruption, caught before any field is read.
		bad := damaged(func(b []byte) []byte { return b[:len(b)-1] })
		if _, err := NewCheckpointedSimulator(cfg, bad); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("truncated frame: got %v, want snap.ErrCorrupt", err)
		}
	})
	t.Run("version-skew", func(t *testing.T) {
		// A well-formed frame from a future codec: bump the version byte and
		// re-seal the checksum so only the version check can object.
		bad := damaged(func(b []byte) []byte {
			body := b[:len(b)-4]
			body[4]++
			sum := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
			binary.LittleEndian.PutUint32(b[len(b)-4:], sum)
			return b
		})
		if _, err := NewCheckpointedSimulator(cfg, bad); !errors.Is(err, snap.ErrVersion) {
			t.Fatalf("version-skewed frame: got %v, want snap.ErrVersion", err)
		}
	})
	t.Run("config-mismatch", func(t *testing.T) {
		other := fastCfg("swim", "lucas")
		if _, err := NewCheckpointedSimulator(other, chk); !errors.Is(err, snap.ErrCorrupt) {
			t.Fatalf("mismatched configuration: got %v, want snap.ErrCorrupt", err)
		}
	})
}
