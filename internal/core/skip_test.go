package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
)

// runBothSpeeds executes the same configuration with the two-speed clock
// enabled and force-disabled and returns both results plus the skipping
// run's skip statistics.
func runBothSpeeds(t *testing.T, cfg Config) (skip, tick Result, st obs.SkipStats) {
	t.Helper()
	cfg.DisableClockSkip = false
	s, err := NewSimulator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	skip, err = s.Run()
	if err != nil {
		t.Fatal(err)
	}
	st = s.SkipStats()
	cfg.DisableClockSkip = true
	tick, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return skip, tick, st
}

// The two-speed clock's contract is byte-identity, not statistical closeness:
// across every fetch policy the full Result struct — IPCs, latencies,
// per-cycle-accumulated histograms, cache counters — must be exactly equal
// with skipping enabled and disabled. The MEM-class mix maximizes quiescent
// windows, so this also asserts skipping actually engages.
func TestSkipEquivalenceAcrossPolicies(t *testing.T) {
	for _, p := range cpu.FetchPolicies() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := fastCfg("mcf", "art")
			cfg.CPU.Policy = p
			skip, tick, st := runBothSpeeds(t, cfg)
			if !reflect.DeepEqual(skip, tick) {
				t.Fatalf("results diverge between clock speeds:\nskip: %+v\ntick: %+v", skip, tick)
			}
			if st.Skipped == 0 {
				t.Fatalf("MEM-class mix under %v skipped no cycles", p)
			}
			if st.Segments == 0 || st.Longest == 0 || st.Longest > st.Skipped {
				t.Fatalf("inconsistent skip stats: %+v", st)
			}
		})
	}
}

// A 4-thread all-MEM mix is the paper's (and the skip optimization's) best
// case; the windows must be long, and byte-identity must hold there too.
func TestSkipEquivalenceMEMMix(t *testing.T) {
	cfg := fastCfg("mcf", "art", "swim", "lucas")
	skip, tick, st := runBothSpeeds(t, cfg)
	if !reflect.DeepEqual(skip, tick) {
		t.Fatalf("results diverge between clock speeds:\nskip: %+v\ntick: %+v", skip, tick)
	}
	if st.Skipped == 0 {
		t.Fatal("all-MEM mix skipped no cycles")
	}
}

// TestSkipEquivalenceSerializedController pins the MEMMix benchmark machine:
// a ganged close-page FCFS controller with a serialized in-flight window
// (MaxInFlight=1) under the fetch-stall frontend policy. This is the
// deepest-skipping configuration in the repo — the one the ≥2x wall-clock
// claim is measured on — so its byte-identity deserves a dedicated gate
// rather than riding on the benchmark's simcycle check alone.
func TestSkipEquivalenceSerializedController(t *testing.T) {
	cfg := fastCfg("mcf", "mcf", "mcf", "mcf")
	cfg.Mem.PhysChannels = 4
	cfg.Mem.Gang = 4
	cfg.Mem.PageMode = dram.ClosePage
	cfg.Mem.Policy = memctrl.FCFS
	cfg.Mem.QueueDepth = 8
	cfg.Mem.MaxInFlight = 1
	cfg.CPU.Policy = cpu.FetchStall
	skip, tick, st := runBothSpeeds(t, cfg)
	if !reflect.DeepEqual(skip, tick) {
		t.Fatalf("results diverge between clock speeds:\nskip: %+v\ntick: %+v", skip, tick)
	}
	if st.Skipped == 0 {
		t.Fatal("serialized controller mix skipped no cycles")
	}
}

// Fault-injected runs exercise retry backoff timers and ECC scrubbing whose
// exact timing must survive fast-forwarding; a planned channel failure adds
// the failover snapshot, which is taken by polling the controller every cycle
// and so is the easiest thing for a jump to land a cycle late.
func TestSkipEquivalenceWithFaults(t *testing.T) {
	plans := map[string]*faults.Plan{
		"bitflip+drop": {BitFlipRate: 5e-2, DropRate: 5e-3, Seed: 11},
		"channel-fail": {ChannelFail: &faults.ChannelFail{Channel: 1, At: 40_000}},
	}
	for name, plan := range plans {
		name, plan := name, plan
		t.Run(name, func(t *testing.T) {
			skip, tick, _ := runBothSpeeds(t, faultyCfg(plan, "mcf", "art"))
			if !reflect.DeepEqual(skip, tick) {
				t.Fatalf("faulty results diverge between clock speeds:\nskip: %+v\ntick: %+v", skip, tick)
			}
			if plan.ChannelFail != nil {
				if skip.Failover == nil {
					t.Fatal("channel-fail plan produced no failover report")
				}
			} else if skip.Faults == nil || skip.Faults.Injected == 0 {
				t.Fatal("fault plan injected nothing; the test exercised no resilience path")
			}
		})
	}
}

// The lifecycle trace and the sampled metrics export observe the machine
// mid-run — every event cycle and every sampled gauge value must match
// byte-for-byte across clock speeds, which is what makes traces diffable
// across this optimization.
func TestSkipEquivalenceObserved(t *testing.T) {
	export := func(disable bool) (jsonl, chrome, metrics []byte, sk obs.SkipStats) {
		cfg := fastCfg("mcf", "ammp")
		cfg.DisableClockSkip = disable
		// Profile:true byte-gates the deep-skip observer replay: the
		// events-per-cycle histogram lands in the metrics export, so a
		// sailed-through event cycle that was replayed wrong (or a quiet gap
		// double-counted at a wake landing) diffs the export below.
		ob := obs.New(obs.Options{Trace: true, Metrics: true, MetricsInterval: 500, Profile: true})
		cfg.Observe = func() *obs.Observer { return ob }
		s, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		var j, c, m bytes.Buffer
		if err := ob.Trace.WriteJSONL(&j); err != nil {
			t.Fatal(err)
		}
		if err := ob.Trace.WriteChrome(&c); err != nil {
			t.Fatal(err)
		}
		if err := ob.Reg.WriteJSONL(&m, "skip-eq", ob.FinalCycle); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), c.Bytes(), m.Bytes(), ob.Skip
	}
	j1, c1, m1, sk := export(false)
	j2, c2, m2, noSk := export(true)
	if !bytes.Equal(j1, j2) {
		t.Fatal("lifecycle JSONL traces differ between clock speeds")
	}
	if !bytes.Equal(c1, c2) {
		t.Fatal("Chrome traces differ between clock speeds")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics exports differ between clock speeds")
	}
	if len(j1) == 0 || len(m1) == 0 {
		t.Fatal("empty export")
	}
	if sk.Skipped == 0 {
		t.Fatal("observed run skipped no cycles; observer boundaries are over-clamping")
	}
	// Wall is recorded either way (it is the denominator, not a skip count);
	// everything else must be zero when skipping is disabled.
	if noSk.Skipped != 0 || noSk.Segments != 0 || noSk.Longest != 0 {
		t.Fatalf("skip-disabled run reported skip stats: %+v", noSk)
	}
	if noSk.Wall == 0 || noSk.Wall != sk.Wall {
		t.Fatalf("wall cycles disagree between clock speeds: skip=%d noskip=%d", sk.Wall, noSk.Wall)
	}
}

// Attaching an observer must not change how far the two-speed clock reaches:
// a daemon-style progress observer (no registry, so no sample boundaries)
// constrains nothing, and the run must skip exactly the same windows it
// would unobserved — the regression this pins is the old run loop silently
// dropping every observed run to the slow shallow path. Results stay
// byte-identical too, via the usual contract.
func TestSkipStatsUnchangedByObserver(t *testing.T) {
	run := func(ob *obs.Observer) (Result, obs.SkipStats) {
		cfg := fastCfg("mcf", "art", "swim", "lucas")
		if ob != nil {
			cfg.Observe = func() *obs.Observer { return ob }
		}
		s, err := NewSimulator(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res, s.SkipStats()
	}
	bare, bareSt := run(nil)
	var ticks int
	obRes, obSt := run(&obs.Observer{
		Progress:         func(uint64) { ticks++ },
		ProgressInterval: 10_000,
	})
	if !reflect.DeepEqual(bare, obRes) {
		t.Fatalf("results diverge with an observer attached:\nbare: %+v\nobs:  %+v", bare, obRes)
	}
	if bareSt != obSt {
		t.Fatalf("skip stats diverge with an observer attached:\nbare: %+v\nobs:  %+v", bareSt, obSt)
	}
	if bareSt.Skipped == 0 {
		t.Fatal("MEM mix skipped no cycles")
	}
	if ticks == 0 {
		t.Fatal("progress observer never fired")
	}
}

// The watchdog must trip at exactly the same cycle whether the livelocked
// window was ticked through or fast-forwarded: its 1024-cycle check
// boundaries are emulated, not approximated.
func TestSkipWatchdogEquivalence(t *testing.T) {
	trip := func(disable bool) *NoProgressError {
		cfg := fastCfg("stuck")
		cfg.Sources = []cpu.Source{stuckSource{}}
		cfg.MaxCycles = 50_000_000
		cfg.WatchdogCycles = 20_000
		cfg.DisableClockSkip = disable
		_, err := Run(cfg)
		var npe *NoProgressError
		if !errors.As(err, &npe) {
			t.Fatalf("livelocked run returned %v, want *NoProgressError", err)
		}
		return npe
	}
	skip, tick := trip(false), trip(true)
	if *skip != *tick {
		t.Fatalf("watchdog diverges between clock speeds: skip=%+v tick=%+v", skip, tick)
	}
}

// Higher-level drivers (figure sweeps, weighted speedup) must also be
// oblivious to the clock speed; this guards the snapshot/collect plumbing end
// to end through WeightedSpeedup's multi-run path.
func TestSkipEquivalenceWeightedSpeedup(t *testing.T) {
	run := func(disable bool) (float64, Result) {
		cfg := fastCfg("mcf", "art")
		cfg.DisableClockSkip = disable
		ws, res, err := WeightedSpeedup(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ws, res
	}
	ws1, r1 := run(false)
	ws2, r2 := run(true)
	if ws1 != ws2 || !reflect.DeepEqual(r1, r2) {
		t.Fatalf("weighted speedup diverges: %v vs %v", ws1, ws2)
	}
}

// Fingerprint must ignore the clock-speed toggle: the two modes are the same
// experiment, and the runner's memoization must treat them as such.
func TestSkipAbsentFromFingerprint(t *testing.T) {
	a := fastCfg("mcf")
	b := fastCfg("mcf")
	b.DisableClockSkip = true
	if fa, fb := a.Fingerprint(), b.Fingerprint(); fa != fb {
		t.Fatalf("fingerprint depends on DisableClockSkip:\n%s\n%s", fa, fb)
	}
}
