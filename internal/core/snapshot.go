package core

// Warmup checkpointing (DESIGN §15). A Simulator's full state — CPU, cache
// hierarchy, memory backend, controller, DRAM devices, event queue, and
// workload generators — serializes into one CRC-framed binary blob at the
// warmup boundary (the cycle the last thread crosses WarmupInstr). A sweep
// point restored from that blob produces byte-identical results to an
// uninterrupted run, so drivers run warmup once per warmup-prefix fingerprint
// and fork every sweep point from the checkpoint.

import (
	"context"
	"errors"
	"fmt"

	"smtdram/internal/cache"
	"smtdram/internal/obs"
	"smtdram/internal/snap"
)

const (
	ckptMagic   = "SMTC"
	ckptVersion = 1
	sectionSim  = 0x434F5245 // "CORE"
)

// errPaused is RunContext's internal signal that the run stopped at the armed
// warmup boundary instead of finishing.
var errPaused = errors.New("core: paused at warmup boundary")

// Checkpoint is a machine frozen at its warmup boundary.
type Checkpoint struct {
	// Prefix is the warmup-prefix fingerprint (Config.WarmupFingerprint) the
	// checkpoint was taken under; restore validates it against the target
	// configuration.
	Prefix string
	// Now is the cycle the last thread crossed WarmupInstr.
	Now uint64
	// Data is the versioned, CRC-framed machine state.
	Data []byte
}

// CheckpointSupported reports whether cfg can participate in warmup
// checkpointing. Unsupported configurations (no warmup phase, fault plans,
// external instruction sources, attached observers or trace sinks) return a
// snap.ErrUnsupported-wrapped explanation; callers fall back to a plain run.
func CheckpointSupported(cfg Config) error {
	switch {
	case cfg.WarmupInstr == 0:
		return fmt.Errorf("%w: no warmup phase to checkpoint", snap.ErrUnsupported)
	case !cfg.Faults.Empty():
		return fmt.Errorf("%w: fault plans arm mid-run events", snap.ErrUnsupported)
	case cfg.Sources != nil:
		return fmt.Errorf("%w: externally supplied instruction sources", snap.ErrUnsupported)
	case cfg.Observe != nil:
		return fmt.Errorf("%w: observer state is not serializable", snap.ErrUnsupported)
	case cfg.Mem.Trace != nil:
		return fmt.Errorf("%w: a DRAM trace sink would miss warmup events", snap.ErrUnsupported)
	}
	return nil
}

// WarmupCheckpoint runs cfg's warmup phase and captures the machine at the
// exact cycle measurement would begin. The returned checkpoint is reusable by
// every configuration sharing cfg's WarmupFingerprint.
func WarmupCheckpoint(ctx context.Context, cfg Config) (*Checkpoint, error) {
	if err := CheckpointSupported(cfg); err != nil {
		return nil, err
	}
	s, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	s.pauseArmed = true
	_, err = s.RunContext(ctx)
	switch {
	case errors.Is(err, errPaused):
		return &Checkpoint{Prefix: cfg.WarmupFingerprint(), Now: s.pauseNow, Data: s.pauseData}, nil
	case err != nil:
		return nil, err
	default:
		return nil, fmt.Errorf("core: run finished without reaching the warmup boundary")
	}
}

// NewCheckpointedSimulator builds the machine described by cfg and restores
// chk into it, ready for RunContext to continue from the warmup boundary.
func NewCheckpointedSimulator(cfg Config, chk *Checkpoint) (*Simulator, error) {
	if err := CheckpointSupported(cfg); err != nil {
		return nil, err
	}
	s, err := NewSimulator(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.decode(chk.Data); err != nil {
		return nil, err
	}
	return s, nil
}

// RunFromCheckpoint restores chk into a fresh machine built from cfg and runs
// the measurement phase. The result is byte-identical to RunContext on the
// same cfg (the equivalence suite and the lockstep oracle assert this).
func RunFromCheckpoint(ctx context.Context, cfg Config, chk *Checkpoint) (Result, error) {
	s, err := NewCheckpointedSimulator(cfg, chk)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx)
}

// encode serializes the full machine plus the run-loop registers that survive
// the pause (cycle position, watchdog progress state, skip accounting).
func (s *Simulator) encode(now, lastCommitted, lastProgress uint64) ([]byte, error) {
	w := &snap.Writer{}
	w.Marker(sectionSim)
	w.String(s.cfg.WarmupFingerprint())
	w.U64(now)
	w.U64(lastCommitted)
	w.U64(lastProgress)
	w.U64(s.skip.Skipped)
	w.U64(s.skip.Segments)
	w.U64(s.skip.Longest)
	if err := s.cpu.Snapshot(w); err != nil {
		return nil, err
	}
	for _, l := range []*cache.Level{s.l1i, s.l1d, s.l2, s.l3} {
		if err := l.Snapshot(w); err != nil {
			return nil, err
		}
	}
	if err := s.mb.Snapshot(w); err != nil {
		return nil, err
	}
	if err := s.ctrl.Snapshot(w); err != nil {
		return nil, err
	}
	if err := s.q.Snapshot(w); err != nil {
		return nil, err
	}
	w.U64(uint64(len(s.gens)))
	for _, g := range s.gens {
		if err := g.Snapshot(w); err != nil {
			return nil, err
		}
	}
	return w.Frame(ckptMagic, ckptVersion), nil
}

// decode rebuilds the machine from a checkpoint frame. Restoration order
// follows reference direction: the CPU first (its fill carriers resolve from
// pools alone), then the cache levels top-down (a level's MSHR waiters point
// at the level above), then the memory backend, the controller (queued
// entries reference backend requests), the event queue (references
// everything), and the workload generators.
func (s *Simulator) decode(data []byte) error {
	r, err := snap.NewReader(data, ckptMagic, ckptVersion)
	if err != nil {
		return err
	}
	r.Expect(sectionSim)
	prefix := r.String()
	now := r.U64()
	lastCommitted := r.U64()
	lastProgress := r.U64()
	skipped, segments, longest := r.U64(), r.U64(), r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if want := s.cfg.WarmupFingerprint(); prefix != want {
		return fmt.Errorf("%w: checkpoint prefix %q does not match configuration %q", snap.ErrCorrupt, prefix, want)
	}
	if now == 0 || now > s.cfg.maxCycles() {
		return fmt.Errorf("%w: checkpoint cycle %d outside the run's budget", snap.ErrCorrupt, now)
	}
	if err := s.cpu.Restore(r); err != nil {
		return err
	}
	for _, l := range []*cache.Level{s.l1i, s.l1d, s.l2, s.l3} {
		if err := l.Restore(r, s.resolveRef); err != nil {
			return err
		}
	}
	if err := s.mb.Restore(r, s.resolveRef); err != nil {
		return err
	}
	if err := s.ctrl.Restore(r, s.resolveRef); err != nil {
		return err
	}
	if err := s.q.Restore(r, s.resolveRef); err != nil {
		return err
	}
	nG := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nG != uint64(len(s.gens)) {
		return fmt.Errorf("%w: checkpoint has %d generators, machine has %d", snap.ErrCorrupt, nG, len(s.gens))
	}
	for _, g := range s.gens {
		if err := g.Restore(r); err != nil {
			return err
		}
	}
	r.Done()
	if err := r.Err(); err != nil {
		return err
	}
	s.mb.FinishRestore()
	s.skip = obs.SkipStats{Skipped: skipped, Segments: segments, Longest: longest}
	s.resumeAt, s.resumeLC, s.resumeLP = now, lastCommitted, lastProgress
	return nil
}

// resolveRef is the production event.Resolver: it dispatches a decoded
// reference to the component that owns its kind.
func (s *Simulator) resolveRef(ref *snap.Ref, role uint8) (any, error) {
	switch ref.Kind {
	case snap.KCPULoadFill, snap.KCPUIFill, snap.KCPUBranch:
		return s.cpu.ResolveRef(ref, role)
	case snap.KCacheMSHR, snap.KCacheWBRetry, snap.KCachePfIssue, snap.KCachePfFill:
		if len(ref.Args) < 1 {
			return nil, fmt.Errorf("%w: cache ref missing level id", snap.ErrCorrupt)
		}
		levels := [4]*cache.Level{s.l1i, s.l1d, s.l2, s.l3}
		id := ref.Args[0]
		if id >= uint64(len(levels)) {
			return nil, fmt.Errorf("%w: cache ref level id %d out of range", snap.ErrCorrupt, id)
		}
		return levels[id].ResolveRef(ref)
	case snap.KMemBackend, snap.KMemBackendReq:
		return s.mb.ResolveRef(ref, s.resolveRef)
	case snap.KMemEntry, snap.KMemRetry, snap.KMemFailover:
		return s.ctrl.ResolveRef(ref, s.resolveRef)
	default:
		return nil, fmt.Errorf("%w: unknown ref kind %d", snap.ErrCorrupt, ref.Kind)
	}
}
