package core

import (
	"testing"

	"smtdram/internal/memctrl"
)

// End-to-end coverage for the beyond-the-paper extensions: refresh, bus
// turnaround, prefetching, the criticality policy, and DRAM tracing.

func TestRefreshCostsPerformance(t *testing.T) {
	ideal, err := Run(fastCfg("swim"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg("swim")
	cfg.Mem.Refresh = true
	refreshed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh is a small tax: it must cost something but not cripple.
	if refreshed.IPC[0] > ideal.IPC[0] {
		t.Fatalf("refresh improved IPC: %.4f vs %.4f", refreshed.IPC[0], ideal.IPC[0])
	}
	if refreshed.IPC[0] < ideal.IPC[0]*0.8 {
		t.Fatalf("refresh cost %.1f%%, implausibly high",
			100*(1-refreshed.IPC[0]/ideal.IPC[0]))
	}
}

func TestTurnaroundCostsPerformance(t *testing.T) {
	ideal, err := Run(fastCfg("swim", "lucas"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg("swim", "lucas")
	cfg.Mem.TurnaroundNS = 10
	pen, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pen.TotalIPC() > ideal.TotalIPC() {
		t.Fatalf("turnaround penalty improved IPC: %.4f vs %.4f", pen.TotalIPC(), ideal.TotalIPC())
	}
}

func TestPrefetchHelpsStreamingEndToEnd(t *testing.T) {
	off, err := Run(fastCfg("swim"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg("swim")
	cfg.L2.PrefetchNextLine = true
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.IPC[0] <= off.IPC[0] {
		t.Fatalf("L2 next-line prefetch did not help swim: %.3f vs %.3f", on.IPC[0], off.IPC[0])
	}
}

func TestCriticalityPolicyEndToEnd(t *testing.T) {
	cfg := fastCfg("gzip", "mcf")
	cfg.Mem.Policy = memctrl.CriticalityBased
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("criticality-based run made no progress")
	}
}

func TestTraceEventsConsistent(t *testing.T) {
	var events []memctrl.TraceEvent
	cfg := fastCfg("mcf", "ammp")
	cfg.Mem.Trace = func(e memctrl.TraceEvent) { events = append(events, e) }
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) < res.MemReads {
		t.Fatalf("traced %d events but measured %d reads", len(events), res.MemReads)
	}
	geo, _ := cfg.Mem.Geometry()
	var reads uint64
	for _, e := range events {
		if e.Done <= e.Issue || e.Issue < e.Arrive {
			t.Fatalf("event time travel: %+v", e)
		}
		if e.Channel < 0 || e.Channel >= geo.Channels ||
			e.Bank < 0 || e.Bank >= geo.BanksPerChip ||
			e.Chip < 0 || e.Chip >= geo.ChipsPerChannel {
			t.Fatalf("event location out of range: %+v", e)
		}
		if e.Read {
			reads++
			if e.Thread < 0 || e.Thread > 1 {
				t.Fatalf("read from thread %d", e.Thread)
			}
		}
	}
	if reads == 0 {
		t.Fatal("no read events traced")
	}
}

func TestThreadAwareFirstPlumbing(t *testing.T) {
	cfg := fastCfg("mcf", "ammp")
	cfg.Mem.Policy = memctrl.RequestBased
	cfg.Mem.ThreadAwareFirst = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("inverted-priority run made no progress")
	}
}
