package core

import (
	"testing"

	"smtdram/internal/addrmap"
	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/memctrl"
)

// fastCfg is a quick-running configuration for tests.
func fastCfg(apps ...string) Config {
	cfg := DefaultConfig(apps...)
	cfg.WarmupInstr = 20_000
	cfg.TargetInstr = 30_000
	return cfg
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig("mcf").Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"no apps", func(c *Config) { c.Apps = nil }},
		{"zero target", func(c *Config) { c.TargetInstr = 0 }},
		{"bad cpu", func(c *Config) { c.CPU.IntIQ = 0 }},
		{"bad gang", func(c *Config) { c.Mem.Gang = 3 }},
		{"rdram ganged", func(c *Config) { c.Mem.Kind = RDRAM; c.Mem.Gang = 2 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig("mcf")
		c.mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: Validate accepted bad config", c.name)
		}
	}
	if _, err := NewSimulator(Config{}); err == nil {
		t.Fatal("NewSimulator accepted empty config")
	}
	if _, err := Run(fastCfg("nosuchapp")); err == nil {
		t.Fatal("Run accepted unknown application")
	}
}

func TestGeometryDerivation(t *testing.T) {
	m := MemConfig{Kind: DDR, PhysChannels: 8, Gang: 2}
	g, err := m.Geometry()
	if err != nil {
		t.Fatal(err)
	}
	if g.Channels != 4 || g.ChipsPerChannel != 1 || g.BanksPerChip != 4 {
		t.Fatalf("8C-2G DDR geometry = %+v", g)
	}
	p, err := m.Params()
	if err != nil {
		t.Fatal(err)
	}
	// Ganged width 32B: a 64B line takes one DDR bus clock = 15 cycles.
	if p.Burst != 15 {
		t.Fatalf("ganged burst = %d, want 15", p.Burst)
	}

	r := MemConfig{Kind: RDRAM, PhysChannels: 2, Gang: 1}
	g, err = r.Geometry()
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalBanks() != 2*4*32 {
		t.Fatalf("RDRAM total banks = %d, want 256", g.TotalBanks())
	}
}

func TestParseDRAMKind(t *testing.T) {
	if k, err := ParseDRAMKind("rdram"); err != nil || k != RDRAM {
		t.Fatalf("ParseDRAMKind(rdram) = %v, %v", k, err)
	}
	if k, err := ParseDRAMKind("DDR"); err != nil || k != DDR {
		t.Fatalf("ParseDRAMKind(DDR) = %v, %v", k, err)
	}
	if _, err := ParseDRAMKind("sram"); err == nil {
		t.Fatal("ParseDRAMKind accepted sram")
	}
	if DDR.String() != "ddr" || RDRAM.String() != "rdram" {
		t.Fatal("DRAMKind strings wrong")
	}
}

func TestRunSingleThread(t *testing.T) {
	cfg := fastCfg("gzip")
	cfg.WarmupInstr = 100_000 // gzip's stream pools need a full lap to warm
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut {
		t.Fatal("gzip timed out")
	}
	if len(res.IPC) != 1 || res.IPC[0] <= 0.5 {
		t.Fatalf("gzip IPC = %v, want > 0.5", res.IPC)
	}
	if res.MemReadsPer100Inst > 0.3 {
		t.Fatalf("gzip generated %.2f DRAM reads/100 instr, want ≈0 (cache-resident)", res.MemReadsPer100Inst)
	}
	// The warmup snapshot lands mid-commit-burst, so the measured window can
	// undershoot the target by up to a commit width.
	if res.Committed[0] < 30_000-uint64(cfg.CPU.CommitWidth) {
		t.Fatalf("committed %d below target", res.Committed[0])
	}
	if len(res.Caches) != 4 {
		t.Fatalf("expected 4 cache snapshots, got %d", len(res.Caches))
	}
}

func TestRunMemBoundThread(t *testing.T) {
	res, err := Run(fastCfg("mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if res.MemReadsPer100Inst < 2 {
		t.Fatalf("mcf generated %.2f DRAM reads/100, want memory-bound behaviour", res.MemReadsPer100Inst)
	}
	if res.IPC[0] > 0.8 {
		t.Fatalf("mcf IPC %.2f too high for a memory-bound app", res.IPC[0])
	}
	if res.AvgReadLatency < 100 {
		t.Fatalf("avg DRAM read latency %.0f implausibly low", res.AvgReadLatency)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(fastCfg("gzip", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastCfg("gzip", "mcf"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.MemReads != b.MemReads {
		t.Fatalf("same seed produced different runs: %d/%d cycles, %d/%d reads",
			a.Cycles, b.Cycles, a.MemReads, b.MemReads)
	}
	for i := range a.IPC {
		if a.IPC[i] != b.IPC[i] {
			t.Fatalf("thread %d IPC differs: %v vs %v", i, a.IPC[i], b.IPC[i])
		}
	}
	c := fastCfg("gzip", "mcf")
	c.Seed = 7
	d, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Cycles == a.Cycles && d.MemReads == a.MemReads {
		t.Fatal("different seeds produced identical runs")
	}
}

func TestPerfectL3RemovesDRAMTraffic(t *testing.T) {
	cfg := fastCfg("mcf", "ammp")
	cfg.PerfectL3 = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemReads != 0 {
		t.Fatalf("perfect L3 still produced %d DRAM reads", res.MemReads)
	}
	real, err := Run(fastCfg("mcf", "ammp"))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalIPC() <= real.TotalIPC() {
		t.Fatalf("perfect L3 (%.3f) not faster than realistic memory (%.3f)",
			res.TotalIPC(), real.TotalIPC())
	}
}

func TestPerfectHierarchyOrdering(t *testing.T) {
	// CPI(perfectL1) ≤ CPI(perfectL2) ≤ CPI(perfectL3) ≤ CPI(real), the
	// invariant the Section 4.2 breakdown rests on.
	var last float64
	for i, mut := range []func(*Config){
		func(c *Config) { c.PerfectL1 = true },
		func(c *Config) { c.PerfectL2 = true },
		func(c *Config) { c.PerfectL3 = true },
		func(c *Config) {},
	} {
		cfg := fastCfg("equake")
		mut(&cfg)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cpi := 1 / res.IPC[0]
		if cpi < last*0.95 { // 5% statistical tolerance
			t.Fatalf("step %d: CPI %.3f < previous %.3f: hierarchy ordering violated", i, cpi, last)
		}
		if cpi > last {
			last = cpi
		}
	}
}

func TestCPIBreakdown(t *testing.T) {
	b, err := CPIBreakdown(fastCfg("swim"), "swim")
	if err != nil {
		t.Fatal(err)
	}
	if b.Proc <= 0 {
		t.Fatalf("CPIproc = %v, want > 0", b.Proc)
	}
	if b.Mem <= 0 {
		t.Fatalf("swim CPImem = %v, want > 0 (streaming app)", b.Mem)
	}
	if b.Total() < b.Proc {
		t.Fatal("total CPI below CPIproc")
	}
}

func TestWeightedSpeedupAndCache(t *testing.T) {
	cache := map[string]float64{}
	ws, res, err := WeightedSpeedup(fastCfg("gzip", "bzip2"), cache)
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0.5 || ws > 2.0 {
		t.Fatalf("2-ILP weighted speedup = %.3f, want in (0.5, 2]", ws)
	}
	if len(cache) != 2 {
		t.Fatalf("baseline cache holds %d entries, want 2", len(cache))
	}
	if res.TotalIPC() <= 0 {
		t.Fatal("no throughput")
	}
	// Cached second call must not change the answer.
	ws2, _, err := WeightedSpeedup(fastCfg("gzip", "bzip2"), cache)
	if err != nil {
		t.Fatal(err)
	}
	if ws != ws2 {
		t.Fatalf("cached WS differs: %v vs %v", ws, ws2)
	}
}

func TestMoreChannelsHelpMEM(t *testing.T) {
	cfg2 := fastCfg("mcf", "ammp", "swim", "lucas")
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := fastCfg("mcf", "ammp", "swim", "lucas")
	cfg8.Mem.PhysChannels = 8
	res8, err := Run(cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if res8.TotalIPC() <= res2.TotalIPC()*1.1 {
		t.Fatalf("8 channels (%.3f) should clearly beat 2 (%.3f) on 4-MEM",
			res8.TotalIPC(), res2.TotalIPC())
	}
}

func TestGangingHurtsMEM(t *testing.T) {
	indep := fastCfg("mcf", "ammp", "swim", "lucas")
	indep.Mem.PhysChannels = 8
	ri, err := Run(indep)
	if err != nil {
		t.Fatal(err)
	}
	ganged := fastCfg("mcf", "ammp", "swim", "lucas")
	ganged.Mem.PhysChannels = 8
	ganged.Mem.Gang = 4
	rg, err := Run(ganged)
	if err != nil {
		t.Fatal(err)
	}
	if rg.TotalIPC() >= ri.TotalIPC() {
		t.Fatalf("8C-4G (%.3f) should lose to 8C-1G (%.3f) on a MEM mix",
			rg.TotalIPC(), ri.TotalIPC())
	}
}

func TestXORReducesRowBufferMisses(t *testing.T) {
	page := fastCfg("swim", "lucas")
	page.Mem.Scheme = addrmap.Page
	rp, err := Run(page)
	if err != nil {
		t.Fatal(err)
	}
	xor := fastCfg("swim", "lucas")
	xor.Mem.Scheme = addrmap.XOR
	rx, err := Run(xor)
	if err != nil {
		t.Fatal(err)
	}
	if rx.RowBufferMissRate > rp.RowBufferMissRate+0.02 {
		t.Fatalf("XOR miss rate %.3f worse than page %.3f on streaming mix",
			rx.RowBufferMissRate, rp.RowBufferMissRate)
	}
}

func TestRDRAMManyBanksReduceConflicts(t *testing.T) {
	ddr := fastCfg("mcf", "ammp")
	rd := fastCfg("mcf", "ammp")
	rd.Mem.Kind = RDRAM
	rddr, err := Run(ddr)
	if err != nil {
		t.Fatal(err)
	}
	rrd, err := Run(rd)
	if err != nil {
		t.Fatal(err)
	}
	if rrd.RowBufferMissRate >= rddr.RowBufferMissRate {
		t.Fatalf("RDRAM (256 banks, %.3f) should miss less than DDR (8 banks, %.3f)",
			rrd.RowBufferMissRate, rddr.RowBufferMissRate)
	}
}

func TestClosePageNeverHits(t *testing.T) {
	cfg := fastCfg("swim")
	cfg.Mem.PageMode = dram.ClosePage
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowHits != 0 {
		t.Fatalf("close page recorded %d row hits", res.RowHits)
	}
}

func TestFetchPolicyPlumbing(t *testing.T) {
	for _, pol := range []cpu.FetchPolicy{cpu.ICOUNT, cpu.DWarn} {
		cfg := fastCfg("gzip", "mcf")
		cfg.CPU.Policy = pol
		if _, err := Run(cfg); err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
	}
}

func TestSchedulingPolicyPlumbing(t *testing.T) {
	for _, pol := range memctrl.Policies() {
		cfg := fastCfg("mcf", "ammp")
		cfg.Mem.Policy = pol
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if res.TotalIPC() <= 0 {
			t.Fatalf("%v: no progress", pol)
		}
	}
}

func TestConcurrencyHistogramsPopulated(t *testing.T) {
	res, err := Run(fastCfg("mcf", "ammp", "swim", "lucas"))
	if err != nil {
		t.Fatal(err)
	}
	var busy uint64
	for i := 1; i < len(res.OutstandingHist); i++ {
		busy += res.OutstandingHist[i]
	}
	if busy == 0 {
		t.Fatal("4-MEM never had outstanding DRAM requests")
	}
	var spread uint64
	for k := 2; k < len(res.ThreadSpreadHist); k++ {
		spread += res.ThreadSpreadHist[k]
	}
	if spread == 0 {
		t.Fatal("concurrent requests never came from multiple threads")
	}
}

func TestTimeoutPath(t *testing.T) {
	cfg := fastCfg("mcf")
	cfg.MaxCycles = 30_000 // far too few to warm up and finish
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expected TimedOut")
	}
	if res.IPC[0] <= 0 {
		t.Fatal("timed-out run must still report partial IPC")
	}
}

func TestThreadLatencyReported(t *testing.T) {
	res, err := Run(fastCfg("mcf", "ammp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ThreadAvgReadLatency) != 2 {
		t.Fatalf("per-thread latencies = %v", res.ThreadAvgReadLatency)
	}
	for i, lat := range res.ThreadAvgReadLatency {
		if lat < 100 {
			t.Fatalf("thread %d avg latency %.0f implausible", i, lat)
		}
	}
}
