package core

import (
	"context"
	"fmt"
	"strconv"

	"smtdram/internal/addrmap"
	"smtdram/internal/cache"
	"smtdram/internal/cpu"
	"smtdram/internal/event"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
	"smtdram/internal/stats"
	"smtdram/internal/workload"
)

// CacheSnapshot is one level's counters at end of run.
type CacheSnapshot struct {
	Name       string
	Accesses   uint64
	Misses     uint64
	Writebacks uint64
	MissRate   float64
}

// Result is everything a single simulation measures.
type Result struct {
	// Cycles is the total simulated cycle count.
	Cycles uint64
	// TimedOut is set when MaxCycles elapsed before every thread reached
	// the instruction target; IPCs then reflect partial progress.
	TimedOut bool

	// Per-thread results, index = hardware thread.
	Apps      []string
	Committed []uint64
	IPC       []float64
	Squashes  []uint64

	// Memory-system results.
	MemReads           uint64
	MemWrites          uint64
	MemReadsPer100Inst float64
	AvgReadLatency     float64
	// ThreadAvgReadLatency is the mean DRAM read latency per thread.
	ThreadAvgReadLatency []float64
	RowHits              uint64
	RowClosed            uint64
	RowConflicts         uint64
	RowBufferMissRate    float64
	OutstandingHist      []uint64
	ThreadSpreadHist     []uint64

	// Cache results, L1I/L1D/L2/L3 order.
	Caches []CacheSnapshot

	// Faults summarizes fault injection and the resilience machinery's
	// response (nil on fault-free runs).
	Faults *FaultReport
	// Failover reports the throughput/latency degradation around a
	// mid-run hard channel failure (nil when no channel failed).
	Failover *FailoverReport
}

// FaultReport is the end-of-run fault accounting. The contract is exact:
// Injected == Corrected + Uncorrected + Drops.
type FaultReport struct {
	// Injected faults by class (what the injector did).
	Injected, BitFlips, MultiBit, Drops uint64
	// SEC-DED decoder verdicts (what the ECC saw).
	Detected, Corrected, Uncorrected uint64
	// Controller response: backoff re-queues, reads delivered after
	// exhausting retries, and requests migrated off a failed channel.
	Retries, RetryGiveUps, FailedOver uint64
}

// FailoverReport measures the cost of losing a channel mid-run: whole-machine
// IPC and mean DRAM read latency before the failure cycle versus after it.
type FailoverReport struct {
	// FailedChannel is the hard-failed logical channel.
	FailedChannel int
	// AtCycle is the cycle the failover executed.
	AtCycle uint64
	// PreIPC and PostIPC are committed instructions per cycle summed over
	// threads, before and after the failure.
	PreIPC, PostIPC float64
	// PreAvgReadLat and PostAvgReadLat are the mean DRAM read latencies in
	// cycles on each side of the failure.
	PreAvgReadLat, PostAvgReadLat float64
}

// NoProgressError is returned by Run when the watchdog trips: no instruction
// committed on any thread for Window consecutive cycles. It distinguishes a
// livelocked machine (a bug or a pathological configuration) from a slow one,
// which would otherwise burn the full MaxCycles budget before surfacing.
type NoProgressError struct {
	// Cycle is when the watchdog gave up.
	Cycle uint64
	// Window is the no-commit bound that was exceeded.
	Window uint64
	// Committed is the total instruction count, frozen since the livelock.
	Committed uint64
}

func (e *NoProgressError) Error() string {
	return fmt.Sprintf("core: no instruction committed in %d cycles (watchdog at cycle %d, %d committed total)",
		e.Window, e.Cycle, e.Committed)
}

// TotalIPC is the sum of per-thread IPCs (the throughput metric).
func (r Result) TotalIPC() float64 {
	var s float64
	for _, v := range r.IPC {
		s += v
	}
	return s
}

// Simulator is an assembled machine, ready to run once.
type Simulator struct {
	cfg  Config
	q    event.Queue
	cpu  *cpu.CPU
	ctrl *memctrl.Controller
	l1i  *cache.Level
	l1d  *cache.Level
	l2   *cache.Level
	l3   *cache.Level
	mb   *cache.MemBackend
	gens []*workload.Gen // nil when cfg.Sources drives the threads
	obs  *obs.Observer
	fsn  *failSnap
	skip obs.SkipStats

	// Warmup-checkpoint plumbing (see snapshot.go). pauseArmed makes
	// RunContext serialize the machine and stop at the warmup boundary;
	// resumeAt (with the restored watchdog registers) makes it continue a
	// decoded checkpoint from that same boundary.
	pauseArmed bool
	pauseData  []byte
	pauseNow   uint64
	resumeAt   uint64
	resumeLC   uint64
	resumeLP   uint64
}

// SkipStats reports how much of the run the two-speed clock fast-forwarded
// (zero when Config.DisableClockSkip was set or no window ever qualified).
func (s *Simulator) SkipStats() obs.SkipStats { return s.skip }

// recordSkip accounts one fast-forwarded span of k cycles.
func (s *Simulator) recordSkip(k uint64) {
	s.skip.Skipped += k
	s.skip.Segments++
	if k > s.skip.Longest {
		s.skip.Longest = k
	}
}

// failSnap freezes the counters the failover report needs at the cycle the
// channel failure executed.
type failSnap struct {
	atCycle   uint64
	committed uint64
	reads     uint64
	latSum    uint64
}

// Observer returns the run's observability attachment (nil when disabled).
func (s *Simulator) Observer() *obs.Observer { return s.obs }

// NewSimulator builds the machine described by cfg.
func NewSimulator(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Simulator{cfg: cfg}
	if cfg.Observe != nil {
		s.obs = cfg.Observe()
	}

	geo, err := cfg.Mem.Geometry()
	if err != nil {
		return nil, err
	}
	params, err := cfg.Mem.Params()
	if err != nil {
		return nil, err
	}
	mapper, err := addrmap.NewMapper(geo, cfg.Mem.Scheme)
	if err != nil {
		return nil, err
	}
	s.ctrl, err = memctrl.New(&s.q, memctrl.Config{
		Mapper:           mapper,
		Params:           params,
		Policy:           cfg.Mem.Policy,
		QueueDepth:       cfg.Mem.QueueDepth,
		MaxInFlight:      cfg.Mem.MaxInFlight,
		ThreadAwareFirst: cfg.Mem.ThreadAwareFirst,
		Trace:            cfg.Mem.Trace,
		Obs:              s.obs,
		Threads:          len(cfg.Apps),
		Injector:         faults.NewInjector(cfg.Faults),
	})
	if err != nil {
		return nil, err
	}

	l3cfg := cfg.L3
	l3cfg.Perfect = l3cfg.Perfect || cfg.PerfectL3
	l2cfg := cfg.L2
	l2cfg.Perfect = l2cfg.Perfect || cfg.PerfectL2
	l1dcfg := cfg.L1D
	l1icfg := cfg.L1I
	l1dcfg.Perfect = l1dcfg.Perfect || cfg.PerfectL1
	l1icfg.Perfect = l1icfg.Perfect || cfg.PerfectL1

	s.mb = cache.NewMemBackend(&s.q, s.ctrl)
	s.l3, err = cache.New(&s.q, l3cfg, s.mb)
	if err != nil {
		return nil, err
	}
	s.l2, err = cache.New(&s.q, l2cfg, s.l3)
	if err != nil {
		return nil, err
	}
	s.l1d, err = cache.New(&s.q, l1dcfg, s.l2)
	if err != nil {
		return nil, err
	}
	s.l1i, err = cache.New(&s.q, l1icfg, s.l2)
	if err != nil {
		return nil, err
	}
	// Stable level identities for snapshot references (DESIGN §15).
	s.l1i.SetSnapID(0)
	s.l1d.SetSnapID(1)
	s.l2.SetSnapID(2)
	s.l3.SetSnapID(3)

	gens := make([]cpu.Source, len(cfg.Apps))
	for i, name := range cfg.Apps {
		if cfg.Sources != nil {
			gens[i] = cfg.Sources[i]
			continue
		}
		app, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		g, err := workload.NewGen(app, i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		gens[i] = g
		s.gens = append(s.gens, g)
	}
	s.cpu, err = cpu.New(&s.q, cfg.CPU, gens, s.l1i, s.l1d)
	if err != nil {
		return nil, err
	}
	s.cpu.SetTarget(cfg.WarmupInstr, cfg.TargetInstr)
	s.cpu.SetMemPressure(s.ctrl.Outstanding)
	if s.obs != nil && s.obs.Reg != nil {
		reg := s.obs.Reg
		for _, l := range []*cache.Level{s.l1i, s.l1d, s.l2, s.l3} {
			l.RegisterMetrics(reg)
		}
		s.cpu.RegisterMetrics(reg)
		reg.Gauge("event.fired", func(uint64) float64 { return float64(s.q.Fired()) })
		reg.Gauge("event.past_schedules", func(uint64) float64 { return float64(s.q.PastSchedules()) })
		reg.Gauge("event.max_pending", func(uint64) float64 { return float64(s.q.MaxLen()) })
		reg.Sampled("event.pending", func(uint64) float64 { return float64(s.q.Len()) })
	}
	return s, nil
}

// snapshot captures every cumulative counter at measurement start so warmup
// activity is excluded from results.
type snapshot struct {
	mem       memctrl.Stats
	rowHits   uint64
	rowClosed uint64
	rowConf   uint64
	caches    []cache.Stats
	committed []uint64
	taken     bool
	atCycle   uint64
}

func (s *Simulator) takeSnapshot(now uint64) snapshot {
	sn := snapshot{mem: s.ctrl.Stats, taken: true, atCycle: now}
	sn.rowHits, sn.rowClosed, sn.rowConf = s.ctrl.RowBufferStats()
	for _, l := range []*cache.Level{s.l1i, s.l1d, s.l2, s.l3} {
		sn.caches = append(sn.caches, l.Stats)
	}
	for i := range s.cfg.Apps {
		sn.committed = append(sn.committed, s.cpu.Committed(i))
	}
	return sn
}

// Progress is a mid-run snapshot of the machine, safe to take from the run's
// own goroutine (the serving daemon samples it through an obs.Observer
// Progress hook and streams it to clients). Purely observational: taking a
// snapshot perturbs nothing, so a watched run stays byte-identical to an
// unwatched one.
type Progress struct {
	// Cycle is the current simulated cycle.
	Cycle uint64 `json:"cycle"`
	// Committed is the total committed-instruction count across threads.
	Committed uint64 `json:"committed"`
	// TargetTotal is the whole-run commit goal: threads × (warmup + target).
	TargetTotal uint64 `json:"target_total"`
	// IPC is the whole-run throughput so far (Committed / Cycle).
	IPC float64 `json:"ipc"`
	// Outstanding is the controller's live pending demand-request count.
	Outstanding int `json:"outstanding"`
	// PendingEvents is the event queue's depth.
	PendingEvents int `json:"pending_events"`
	// SkippedCycles and SkipSegments summarize the two-speed clock so far.
	SkippedCycles uint64 `json:"skipped_cycles"`
	SkipSegments  uint64 `json:"skip_segments"`
}

// Progress snapshots the machine at cycle now.
func (s *Simulator) Progress(now uint64) Progress {
	p := Progress{
		Cycle:         now,
		Committed:     s.cpu.TotalCommitted,
		TargetTotal:   uint64(len(s.cfg.Apps)) * (s.cfg.WarmupInstr + s.cfg.TargetInstr),
		PendingEvents: s.q.Len(),
		SkippedCycles: s.skip.Skipped,
		SkipSegments:  s.skip.Segments,
	}
	if now > 0 {
		p.IPC = float64(p.Committed) / float64(now)
	}
	for t := range s.cfg.Apps {
		p.Outstanding += s.ctrl.Outstanding(t)
	}
	return p
}

// Run executes the simulation to completion (every thread warms up and then
// reaches the target, or MaxCycles elapse) and returns measurements covering
// only the post-warmup window.
func (s *Simulator) Run() (Result, error) {
	return s.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: the context is checked at
// the same 1024-cycle boundaries as the progress watchdog, so an abandoned
// job (an HTTP client that hung up, a deadline that passed) stops burning CPU
// within at most one watchdog window plus the current quiet-window jump. A
// cancelled run returns ctx.Err() after closing its stats and observer
// exactly like a watchdog abort, leaving the simulator in a consistent
// (finished) state.
func (s *Simulator) RunContext(ctx context.Context) (Result, error) {
	limit := s.cfg.maxCycles()
	wd := s.cfg.WatchdogCycles
	if wd == 0 {
		wd = 500_000
	}
	watchFail := s.cfg.Faults != nil && s.cfg.Faults.ChannelFail != nil
	var lastCommitted, lastProgress uint64
	var now uint64
	var sn snapshot
	if s.cfg.WarmupInstr == 0 {
		sn = s.takeSnapshot(0)
	}
	// Serving traces: when the daemon attached a wall-clock run span, open a
	// child per simulation phase so the Perfetto timeline shows where warmup
	// ends and measurement begins in wall time. Spans are observation only —
	// they never feed back into the simulation, so results stay
	// byte-identical with tracing on or off.
	var runSpan, phaseSpan *obs.Span
	if s.obs != nil {
		runSpan = s.obs.RunSpan
	}
	endPhase := func(at uint64) {
		if phaseSpan != nil {
			phaseSpan.SetAttr("end_cycle", strconv.FormatUint(at, 10))
			phaseSpan.End()
			phaseSpan = nil
		}
	}
	if runSpan != nil {
		if sn.taken {
			phaseSpan = runSpan.Child("measure", obs.A("start_cycle", "0"))
		} else {
			phaseSpan = runSpan.Child("warmup", obs.A("start_cycle", "0"))
		}
	}
	skipping := !s.cfg.DisableClockSkip
	// Deep skip lets a quiet span pass through event cycles whose work is
	// internal to the memory system (an MSHR chain hop, a controller
	// bank-ready retry, a fault-retry backoff expiry) without landing: the
	// events fire at their exact cycles via the queue's span drain, and the
	// span ends only when one delivers CPU-visible state — a fill reaching
	// an L1, a branch resolving — which the caches and CPU report through
	// the wakeup hint (cpu.TakeWake). Observed and failover-watching runs
	// take the same path: loop profiling replays sailed-through event cycles
	// through OnEventCycle and the skipped remainder through OnCycleSkip,
	// registry sampling is bounded by clamp (sample cycles always land), and
	// clamp caps any span crossing the planned channel-failure cycle so the
	// landed failover poll below sees it exactly when a ticked run would.
	//
	// obsFrom/obsFired are the observer replay cursor inside the open span:
	// the last observed cycle and the queue's cumulative event count there.
	var obsFrom, obsFired uint64
	// drainStop is the span drain's per-event-cycle callback: it decides
	// whether the batch at ea delivered CPU-visible state, and keeps the
	// observer's per-cycle accounting exact either way — the quiet gap
	// (obsFrom, ea-1] replays as skipped, and a sailed-through ea is
	// observed as an event cycle. On a wake the cursor stops at ea-1: cycle
	// ea is observed by whichever path lands on or re-opens across it.
	drainStop := func(ea uint64) bool {
		woke := s.cpu.TakeWake()
		if s.obs != nil {
			s.obs.OnCycleSkip(obsFrom, ea-1, obsFired)
			if woke {
				obsFrom = ea - 1
			} else {
				obsFired = s.q.Fired()
				s.obs.OnEventCycle(ea, obsFired)
				obsFrom = ea
			}
		}
		return woke
	}
	// clamp bounds a quiet jump from cycle n: the watchdog's 1024-cycle
	// boundaries are emulated (inside a quiet window nothing commits, so the
	// first skipped boundary would record any progress made since the last
	// check, and the check trips at the first boundary a full watchdog window
	// past lastProgress — replicate the recording and land on the trip
	// boundary, where the landed check fires exactly as the baseline's
	// would), observer sample boundaries force a landing, a still-pending
	// planned channel failure forces a landing on its cycle (the failover
	// snapshot is taken by landed polling), and the jump never exits the
	// cycle budget.
	clamp := func(n, target uint64) uint64 {
		if c := s.cpu.TotalCommitted; c != lastCommitted {
			if b0 := (n>>10 + 1) << 10; target > b0 {
				lastCommitted, lastProgress = c, b0
			}
		}
		if s.cpu.TotalCommitted == lastCommitted {
			if trip := (lastProgress + wd + 1023) >> 10 << 10; trip < target {
				target = trip
			}
		}
		if s.obs != nil {
			if b := s.obs.NextBoundary(); b > 0 && b < target {
				target = b
			}
		}
		if watchFail && s.fsn == nil {
			if fa, ok := s.ctrl.PlannedFailAt(); ok && fa < target {
				target = fa
			}
		}
		if target > limit+1 {
			target = limit + 1
		}
		return target
	}
	// Warmup-checkpoint restore: the checkpoint was taken at the warmup
	// boundary, after its cycle's events and Tick but before the warmup
	// transition, so the resumed loop enters at that cycle and performs only
	// the remainder of its iteration (guarded below) before continuing
	// normally — landing on the exact instruction stream an uninterrupted run
	// would execute.
	resumed := s.resumeAt > 0
	startAt := uint64(1)
	if resumed {
		startAt = s.resumeAt
		lastCommitted, lastProgress = s.resumeLC, s.resumeLP
	}
	for now = startAt; now <= limit; now++ {
		if resumed {
			resumed = false
			s.ctrl.FinishStats(now)
			sn = s.takeSnapshot(now)
			if runSpan != nil {
				endPhase(now)
				phaseSpan = runSpan.Child("measure", obs.A("start_cycle", strconv.FormatUint(now, 10)))
			}
		} else {
			s.q.RunUntil(now)
			s.cpu.Tick(now)
			if s.obs != nil {
				s.obs.OnCycle(now, s.q.Fired())
			}
			// Progress watchdog: a machine that commits nothing for wd cycles
			// is livelocked, not slow — abort with a structured error instead
			// of burning the remaining MaxCycles budget. Cancellation shares
			// the boundary: one Err() load per 1024 cycles is noise, and a
			// cancelled run unwinds through the same stats/observer close-out
			// as an abort.
			if now&1023 == 0 {
				if err := ctx.Err(); err != nil {
					endPhase(now)
					s.ctrl.FinishStats(now)
					s.skip.Wall = now
					if s.obs != nil {
						s.obs.Skip = s.skip
						s.obs.Finish(now)
					}
					return Result{}, err
				}
				if c := s.cpu.TotalCommitted; c != lastCommitted {
					lastCommitted, lastProgress = c, now
				} else if now-lastProgress >= wd {
					endPhase(now)
					s.ctrl.FinishStats(now)
					s.skip.Wall = now
					if s.obs != nil {
						s.obs.Skip = s.skip
						s.obs.Finish(now)
					}
					return Result{}, &NoProgressError{Cycle: now, Window: wd, Committed: c}
				}
			}
			if watchFail && s.fsn == nil {
				if _, at := s.ctrl.Failover(); at > 0 {
					s.fsn = &failSnap{atCycle: now, committed: s.cpu.TotalCommitted,
						reads: s.ctrl.Stats.Reads, latSum: s.ctrl.Stats.ReadLatencySum}
				}
			}
			if !sn.taken && s.cpu.AllWarmed() {
				if s.pauseArmed {
					// Armed warmup checkpoint: freeze the machine exactly here
					// — before the transition work the resumed run replays —
					// and hand the frame back through the pause fields.
					s.pauseArmed = false
					data, err := s.encode(now, lastCommitted, lastProgress)
					if err != nil {
						return Result{}, err
					}
					s.pauseData, s.pauseNow = data, now
					return Result{}, errPaused
				}
				s.ctrl.FinishStats(now)
				sn = s.takeSnapshot(now)
				if runSpan != nil {
					endPhase(now)
					phaseSpan = runSpan.Child("measure", obs.A("start_cycle", strconv.FormatUint(now, 10)))
				}
			}
		}
		if sn.taken && s.cpu.AllFinished() {
			break
		}
		if !skipping {
			continue
		}

		// Two-speed clock (DESIGN §11): when neither the event queue nor the
		// CPU can do anything before some future cycle, replace the
		// intervening Ticks with their aggregate bookkeeping and land the
		// loop directly on that cycle. Every per-cycle duty above is either
		// replayed in aggregate (cycle counters, gated-dispatch accounting,
		// loop profiling) or provably inert across a quiet window (warmup,
		// finish, and failover transitions all require landed work), and the
		// watchdog's 1024-cycle boundaries are emulated below — so a skipped
		// run is byte-identical to an unskipped one.
		if s.cpu.Acted() {
			// The Tick above made real progress, so the machine is almost
			// never on the edge of a quiet window — defer the (expensive)
			// quiescence probe until a Tick comes back idle. Pure heuristic:
			// it can only delay a window's start by a cycle, never skip a
			// cycle the contract would forbid.
			continue
		}
		// One fused probe per side yields the skip bound and the replay
		// terms, captured before any in-window event can mutate the state
		// they are derived from. The event queue is not consulted up front —
		// in-span events are handled by DrainQuiet, at their exact cycles. A
		// memory-internal event (an MSHR chain hop, a controller retry
		// timer) changes neither the CPU nor the L1s, so the span sails
		// straight through it. An event that does deliver CPU-visible state
		// closes the current sub-span — but the span only ends there if the
		// CPU actually has work at that cycle: a fill that matures a mid-ROB
		// entry with no ready dependents leaves the machine just as idle, so
		// the span re-opens from the post-event state, which is exactly what
		// a ticked run's subsequent idle cycles would see.
		cpuNext, fx, quiet := s.cpu.ProbeQuiet(now)
		if !quiet || cpuNext <= now+1 {
			continue
		}
		if cpuNext == ^uint64(0) {
			// Only a memory-side event can unblock the CPU. The controller's
			// mirror probe guarantees a non-quiet controller has its next
			// interaction covered by a pending event, so an empty queue
			// facing a non-quiet controller is a lost wakeup — a bug, but
			// one that must deadlock identically in both modes, so step
			// instead of skipping over it.
			if _, qok := s.q.NextAt(); !qok {
				if _, mquiet := s.ctrl.ProbeQuiet(now); !mquiet {
					continue
				}
			}
		}
		target := clamp(now, cpuNext)
		if target <= now+1 {
			continue
		}
		from := now
		var total uint64
		s.cpu.TakeWake() // events up to now already informed this Tick
		obsFrom, obsFired = now, s.q.Fired()
		land := target
		for {
			ea, woke := s.q.DrainQuiet(land, drainStop)
			if !woke {
				break
			}
			total += ea - 1 - from
			s.cpu.ApplyQuiet(fx, ea-1-from)
			from = ea - 1
			next, nfx, q := s.cpu.ProbeQuiet(from)
			if !q || next <= ea {
				land = ea // Tick(ea) has real work: land on it
				break
			}
			fx = nfx
			if s.obs != nil {
				obsFired = s.q.Fired()
				s.obs.OnEventCycle(ea, obsFired)
				obsFrom = ea
			}
			land = clamp(from, next)
			if land <= ea {
				land = ea + 1 // defensive: next > ea keeps this exact
			}
		}
		total += land - 1 - from
		s.cpu.ApplyQuiet(fx, land-1-from)
		if s.obs != nil {
			s.obs.OnCycleSkip(obsFrom, land-1, obsFired)
		}
		// Settle the controller's span-aggregated accounting at the landing:
		// the time-weighted concurrency histograms advance through the span
		// in one exact step instead of lagging until the next state change.
		s.ctrl.ApplyQuiet(land - 1)
		if total > 0 {
			s.recordSkip(total)
		}
		now = land - 1
	}
	if !sn.taken {
		// Timed out during warmup: report whole-run (cold) measurements
		// rather than an empty window.
		sn = snapshot{
			taken:     true,
			caches:    make([]cache.Stats, 4),
			committed: make([]uint64, len(s.cfg.Apps)),
		}
	}
	endPhase(now)
	s.ctrl.FinishStats(now)
	s.skip.Wall = now
	if s.obs != nil {
		s.obs.Skip = s.skip
		s.obs.Finish(now)
	}
	return s.collect(now, sn)
}

func (s *Simulator) collect(now uint64, sn snapshot) (Result, error) {
	r := Result{
		Cycles:   now - sn.atCycle,
		TimedOut: !s.cpu.AllFinished(),
		Apps:     append([]string(nil), s.cfg.Apps...),
	}
	var totalCommitted uint64
	for i := range s.cfg.Apps {
		committed := s.cpu.Committed(i) - sn.committed[i]
		totalCommitted += committed
		fin, warm := s.cpu.FinishedAt(i), s.cpu.WarmedAt(i)
		var ipc float64
		switch {
		case fin > 0 && fin > warm:
			ipc = float64(s.cfg.TargetInstr) / float64(fin-warm)
		case r.Cycles > 0:
			ipc = float64(committed) / float64(r.Cycles)
		}
		if ipc <= 0 {
			return r, fmt.Errorf("core: thread %d (%s) made no progress in %d cycles", i, s.cfg.Apps[i], now)
		}
		r.Committed = append(r.Committed, committed)
		r.IPC = append(r.IPC, ipc)
		r.Squashes = append(r.Squashes, s.cpu.Squashes(i))
	}

	st := &s.ctrl.Stats
	r.MemReads, r.MemWrites = st.Reads-sn.mem.Reads, st.Writes-sn.mem.Writes
	if totalCommitted > 0 {
		r.MemReadsPer100Inst = 100 * float64(r.MemReads) / float64(totalCommitted)
	}
	if r.MemReads > 0 {
		r.AvgReadLatency = float64(st.ReadLatencySum-sn.mem.ReadLatencySum) / float64(r.MemReads)
	}
	for i := range s.cfg.Apps {
		if i >= len(st.ThreadReads) {
			break
		}
		n := st.ThreadReads[i] - sn.mem.ThreadReads[i]
		var lat float64
		if n > 0 {
			lat = float64(st.ThreadReadLatencySum[i]-sn.mem.ThreadReadLatencySum[i]) / float64(n)
		}
		r.ThreadAvgReadLatency = append(r.ThreadAvgReadLatency, lat)
	}
	hits, closed, conf := s.ctrl.RowBufferStats()
	r.RowHits, r.RowClosed, r.RowConflicts = hits-sn.rowHits, closed-sn.rowClosed, conf-sn.rowConf
	if total := r.RowHits + r.RowClosed + r.RowConflicts; total > 0 {
		r.RowBufferMissRate = float64(r.RowClosed+r.RowConflicts) / float64(total)
	}
	r.OutstandingHist = make([]uint64, len(st.OutstandingHist))
	r.ThreadSpreadHist = make([]uint64, len(st.ThreadSpreadHist))
	for i := range st.OutstandingHist {
		r.OutstandingHist[i] = st.OutstandingHist[i] - sn.mem.OutstandingHist[i]
		r.ThreadSpreadHist[i] = st.ThreadSpreadHist[i] - sn.mem.ThreadSpreadHist[i]
	}

	levels := []*cache.Level{s.l1i, s.l1d, s.l2, s.l3}
	for li, l := range levels {
		base := sn.caches[li]
		acc := l.Stats.Accesses - base.Accesses
		miss := l.Stats.Misses - base.Misses
		var mr float64
		if acc > 0 {
			mr = float64(miss) / float64(acc)
		}
		r.Caches = append(r.Caches, CacheSnapshot{
			Name:       l.Name(),
			Accesses:   acc,
			Misses:     miss,
			Writebacks: l.Stats.Writebacks - base.Writebacks,
			MissRate:   mr,
		})
	}

	if inj := s.ctrl.Injector(); inj != nil {
		ecc := s.ctrl.ECCStats()
		r.Faults = &FaultReport{
			Injected: inj.Stats.Total(), BitFlips: inj.Stats.BitFlips,
			MultiBit: inj.Stats.MultiBit, Drops: inj.Stats.Drops,
			Detected: ecc.Detected, Corrected: ecc.Corrected, Uncorrected: ecc.Uncorrected,
			Retries: st.Retries, RetryGiveUps: st.RetryGiveUps, FailedOver: st.FailedOver,
		}
		if ch, at := s.ctrl.Failover(); at > 0 && s.fsn != nil {
			f := s.fsn
			rep := &FailoverReport{FailedChannel: ch, AtCycle: at}
			if f.atCycle > 0 {
				rep.PreIPC = float64(f.committed) / float64(f.atCycle)
			}
			if now > f.atCycle {
				rep.PostIPC = float64(s.cpu.TotalCommitted-f.committed) / float64(now-f.atCycle)
			}
			if f.reads > 0 {
				rep.PreAvgReadLat = float64(f.latSum) / float64(f.reads)
			}
			if dr := st.Reads - f.reads; dr > 0 {
				rep.PostAvgReadLat = float64(st.ReadLatencySum-f.latSum) / float64(dr)
			}
			r.Failover = rep
		}
	}
	return r, nil
}

// Run builds and runs a machine in one call.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext builds and runs a machine under ctx in one call.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	s, err := NewSimulator(cfg)
	if err != nil {
		return Result{}, err
	}
	return s.RunContext(ctx)
}

// RunAlone runs a single application on the machine described by cfg
// (ignoring cfg.Apps) and returns its IPC — the denominator of weighted
// speedup.
func RunAlone(cfg Config, app string) (float64, error) {
	return RunAloneContext(context.Background(), cfg, app)
}

// RunAloneContext is RunAlone under a cancellation context.
func RunAloneContext(ctx context.Context, cfg Config, app string) (float64, error) {
	cfg.Apps = []string{app}
	res, err := RunContext(ctx, cfg)
	if err != nil {
		return 0, err
	}
	return res.IPC[0], nil
}

// WeightedSpeedup runs cfg's mix and divides by single-thread baselines on
// the identical machine, caching baselines in baselineCache (keyed by app
// name) when non-nil so figure sweeps don't rerun them.
func WeightedSpeedup(cfg Config, baselineCache map[string]float64) (float64, Result, error) {
	res, err := Run(cfg)
	if err != nil {
		return 0, Result{}, err
	}
	alone := make([]float64, len(cfg.Apps))
	for i, app := range cfg.Apps {
		if baselineCache != nil {
			if v, ok := baselineCache[app]; ok {
				alone[i] = v
				continue
			}
		}
		v, err := RunAlone(cfg, app)
		if err != nil {
			return 0, Result{}, err
		}
		if baselineCache != nil {
			baselineCache[app] = v
		}
		alone[i] = v
	}
	ws, err := stats.WeightedSpeedup(res.IPC, alone)
	if err != nil {
		return 0, Result{}, err
	}
	return ws, res, nil
}

// CPIBreakdownConfigs returns the four machine configurations behind the
// paper's CPI attribution for a single application (Section 4.2), in
// attribution order: realistic, perfect L3, perfect L2, perfect L1. The four
// runs are independent, so callers may execute them concurrently and feed the
// CPIs to stats.NewBreakdown in the same order.
func CPIBreakdownConfigs(cfg Config, app string) [4]Config {
	cfg.Apps = []string{app}
	cfgs := [4]Config{cfg, cfg, cfg, cfg}
	cfgs[1].PerfectL3 = true
	cfgs[2].PerfectL2 = true
	cfgs[3].PerfectL1 = true
	return cfgs
}

// CPIBreakdown runs the four-configuration attribution sequentially.
func CPIBreakdown(cfg Config, app string) (stats.Breakdown, error) {
	var cpi [4]float64
	for i, c := range CPIBreakdownConfigs(cfg, app) {
		res, err := Run(c)
		if err != nil {
			return stats.Breakdown{}, err
		}
		cpi[i] = 1 / res.IPC[0]
	}
	return stats.NewBreakdown(cpi[0], cpi[1], cpi[2], cpi[3]), nil
}
