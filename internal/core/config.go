// Package core assembles the full simulated machine — SMT processor,
// three-level cache hierarchy, and multi-channel DRAM system — and exposes
// the configuration and run API used by the examples, the CLI, and the
// benchmark harness that regenerates the paper's figures.
package core

import (
	"fmt"
	"strings"

	"smtdram/internal/addrmap"
	"smtdram/internal/cache"
	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/memctrl"
	"smtdram/internal/obs"
)

// DRAMKind selects the memory technology.
type DRAMKind int

const (
	// DDR is the multi-channel DDR SDRAM system (16 B × 200 MHz DDR
	// channels, 1 chip group × 4 banks per channel).
	DDR DRAMKind = iota
	// RDRAM is the Direct Rambus system (narrow 800 MT/s channels, 4 chips
	// × 32 banks per channel).
	RDRAM
)

func (k DRAMKind) String() string {
	if k == RDRAM {
		return "rdram"
	}
	return "ddr"
}

// ParseDRAMKind converts a CLI name.
func ParseDRAMKind(s string) (DRAMKind, error) {
	switch strings.ToLower(s) {
	case "ddr":
		return DDR, nil
	case "rdram":
		return RDRAM, nil
	}
	return 0, fmt.Errorf("core: unknown DRAM kind %q (want ddr or rdram)", s)
}

// MemConfig describes the main memory system.
type MemConfig struct {
	// Kind is the DRAM technology.
	Kind DRAMKind
	// PhysChannels is the number of physical channels (2/4/8 in the paper).
	PhysChannels int
	// Gang clusters this many physical channels into one logical channel
	// ("4C-2G" = PhysChannels 4, Gang 2). DDR only.
	Gang int
	// PageMode is open or close page.
	PageMode dram.PageMode
	// Scheme is the address mapping scheme (page or XOR).
	Scheme addrmap.Scheme
	// Policy is the access-scheduling policy.
	Policy memctrl.Policy
	// QueueDepth and MaxInFlight tune the controller (0 = defaults).
	QueueDepth  int
	MaxInFlight int
	// ThreadAwareFirst ranks the thread-aware criterion above hit-first,
	// inverting the paper's recommended order (ablation only).
	ThreadAwareFirst bool
	// Refresh enables realistic all-bank refresh (7.8 µs interval, 70 ns
	// duration at 3 GHz). Off by default: the paper does not model it, and
	// its ~1% bandwidth tax is invisible at figure scale.
	Refresh bool
	// TurnaroundNS is the bus direction-switch penalty in nanoseconds
	// (0 = ideal bus, the paper's assumption).
	TurnaroundNS int
	// Trace, when non-nil, receives one event per serviced DRAM request.
	Trace func(memctrl.TraceEvent)
}

// LogicalChannels returns the post-ganging channel count.
func (m MemConfig) LogicalChannels() (int, error) {
	ch, _, err := addrmap.Gang(m.PhysChannels, m.Gang, 16)
	return ch, err
}

// Geometry builds the logical DRAM geometry.
func (m MemConfig) Geometry() (addrmap.Geometry, error) {
	ch, err := m.LogicalChannels()
	if err != nil {
		return addrmap.Geometry{}, err
	}
	g := addrmap.Geometry{
		Channels:  ch,
		PageBytes: 2048,
		LineBytes: 64,
	}
	switch m.Kind {
	case DDR:
		g.ChipsPerChannel = 1
		g.BanksPerChip = 4
	case RDRAM:
		if m.Gang != 1 {
			return addrmap.Geometry{}, fmt.Errorf("core: RDRAM channels cannot be ganged")
		}
		g.ChipsPerChannel = 4
		g.BanksPerChip = 32
	}
	return g, nil
}

// Params builds the per-logical-channel DRAM timing.
func (m MemConfig) Params() (dram.Params, error) {
	var p dram.Params
	switch m.Kind {
	case DDR:
		_, width, err := addrmap.Gang(m.PhysChannels, m.Gang, 16)
		if err != nil {
			return dram.Params{}, err
		}
		p = dram.DDRParams(width, 64, m.PageMode)
	case RDRAM:
		p = dram.RDRAMParams(64, m.PageMode)
	default:
		return dram.Params{}, fmt.Errorf("core: unknown DRAM kind %d", m.Kind)
	}
	if m.Refresh {
		p.RefreshInterval = 23400 // 7.8 µs at 3 GHz
		p.RefreshDuration = 210   // 70 ns
	}
	p.Turnaround = uint64(m.TurnaroundNS) * 3
	return p, nil
}

// Config is the full machine + experiment configuration.
type Config struct {
	// Apps names the application run on each hardware thread (Table 2
	// mixes, or any subset of the 26 modeled SPEC2000 apps). When Sources
	// is set, Apps only labels the threads.
	Apps []string
	// Sources, when non-nil, supplies each thread's instruction stream
	// directly — e.g. workload.Replay traces recorded with
	// workload.Record — instead of the synthetic generators. Must match
	// Apps in length.
	Sources []cpu.Source
	// Seed drives all generators; same seed = same simulation.
	Seed int64
	// WarmupInstr is the per-thread instruction count retired before
	// measurement starts, mirroring the paper's cache warmup during
	// fast-forward. Stats are snapshotted when the last thread crosses it.
	WarmupInstr uint64
	// TargetInstr is the per-thread committed-instruction goal past warmup;
	// per the paper's methodology a thread's IPC is measured when it crosses
	// the target, and it keeps running to preserve contention.
	TargetInstr uint64
	// MaxCycles bounds the simulation (0 = auto: 400 cycles/instruction).
	MaxCycles uint64

	// Faults, when non-nil and non-empty, attaches the fault-injection
	// subsystem (see internal/faults): seeded transient bit flips, stuck
	// rows, request drops, and a hard channel failure at a given cycle. Nil
	// keeps the memory path byte-identical to a fault-free build.
	Faults *faults.Plan
	// WatchdogCycles is the no-progress bound: if no instruction commits for
	// this many cycles the run aborts with a *NoProgressError instead of
	// spinning to MaxCycles (0 = default 500 000).
	WatchdogCycles uint64
	// DisableClockSkip forces the run loop to tick every cycle instead of
	// fast-forwarding across quiescent windows (see DESIGN §11). Skipping is
	// byte-identical to ticking by construction, so this exists only for the
	// equivalence tests, benchmarking the two speeds against each other, and
	// debugging; it is deliberately absent from Fingerprint.
	DisableClockSkip bool

	// CPU is the core configuration (Table 1 defaults).
	CPU cpu.Config
	// Mem is the DRAM system configuration.
	Mem MemConfig

	// Cache geometry (Table 1 defaults via DefaultConfig).
	L1I, L1D, L2, L3 cache.Config

	// PerfectL1/L2/L3 model the paper's infinitely large caches for CPI
	// breakdown: PerfectL3 removes all DRAM traffic, PerfectL2 removes L3
	// and DRAM traffic, PerfectL1 isolates CPIproc.
	PerfectL1, PerfectL2, PerfectL3 bool

	// Observe, when non-nil, is called once per constructed simulator to
	// build its observability attachment (metrics registry, request-lifecycle
	// tracer, event-loop profiler — see internal/obs). A factory rather than
	// a value because some drivers (CPIBreakdown, WeightedSpeedup) run
	// several simulations from one Config; each needs a fresh observer. A nil
	// return disables observability for that run.
	Observe func() *obs.Observer
}

// DefaultConfig returns the paper's Table 1 machine running the given apps
// on a 2-channel DDR system with the DWarn fetch policy, XOR mapping, open
// page, and hit-first scheduling (the paper's baseline for Sections 5.1-5.4).
func DefaultConfig(apps ...string) Config {
	return Config{
		Apps:        apps,
		Seed:        42,
		WarmupInstr: 100_000,
		TargetInstr: 200_000,
		CPU:         cpu.DefaultConfig(),
		Mem: MemConfig{
			Kind:         DDR,
			PhysChannels: 2,
			Gang:         1,
			PageMode:     dram.OpenPage,
			Scheme:       addrmap.XOR,
			Policy:       memctrl.HitFirst,
		},
		L1I: cache.Config{Name: "L1I", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 16},
		L1D: cache.Config{Name: "L1D", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 16},
		L2:  cache.Config{Name: "L2", SizeBytes: 512 << 10, Assoc: 2, LineBytes: 64, Latency: 10, MSHRs: 16},
		L3:  cache.Config{Name: "L3", SizeBytes: 4 << 20, Assoc: 4, LineBytes: 64, Latency: 20, MSHRs: 16},
	}
}

// Validate rejects incoherent configurations.
func (c Config) Validate() error {
	if len(c.Apps) == 0 {
		return fmt.Errorf("core: no applications configured")
	}
	if c.TargetInstr == 0 {
		return fmt.Errorf("core: zero instruction target")
	}
	if c.Sources != nil && len(c.Sources) != len(c.Apps) {
		return fmt.Errorf("core: %d sources for %d threads", len(c.Sources), len(c.Apps))
	}
	if err := c.CPU.Validate(); err != nil {
		return err
	}
	geo, err := c.Mem.Geometry()
	if err != nil {
		return err
	}
	if _, err := c.Mem.Params(); err != nil {
		return err
	}
	if err := c.Faults.Validate(geo.Channels); err != nil {
		return err
	}
	return nil
}

// Fingerprint is a one-line deterministic description of the configuration,
// attached to worker-panic errors so a crash in a parallel sweep identifies
// the exact run that died. The serving daemon also keys its result cache and
// request dedup on it, so every knob that changes simulation results and that
// a driver can vary must appear here (equivalence-only toggles like
// DisableClockSkip are deliberately absent).
func (c Config) Fingerprint() string {
	fp := fmt.Sprintf("apps=%s seed=%d warm=%d target=%d fetch=%s mem=%s-%dch-g%d %s %s %s",
		strings.Join(c.Apps, "+"), c.Seed, c.WarmupInstr, c.TargetInstr,
		c.CPU.Policy,
		c.Mem.Kind, c.Mem.PhysChannels, c.Mem.Gang,
		c.Mem.PageMode, c.Mem.Scheme, c.Mem.Policy)
	if !c.Faults.Empty() {
		fp += " faults=" + c.Faults.String()
	}
	return fp
}

// WarmupFingerprint identifies a configuration's warmup prefix: every knob
// that can influence the machine's state — or the run loop's bookkeeping — at
// the cycle the last thread crosses WarmupInstr. Sweep points that differ only
// in knobs acting after measurement begins (TargetInstr, most prominently)
// share a fingerprint and therefore a warmup checkpoint. Unlike Fingerprint,
// this includes every geometry and tuning field: a checkpoint is raw machine
// state, so anything that shapes that state must key it. The cycle budget and
// watchdog window appear because the two-speed clock's landing schedule (and
// with it the skip accounting a checkpoint carries) is clamped by them.
func (c Config) WarmupFingerprint() string {
	return fmt.Sprintf("apps=%s seed=%d warm=%d max=%d wd=%d noskip=%v cpu=%+v"+
		" mem=%s-%dch-g%d %s %s %s q%d if%d taf=%v refresh=%v turn=%d"+
		" l1i=%+v l1d=%+v l2=%+v l3=%+v perfect=%v%v%v",
		strings.Join(c.Apps, "+"), c.Seed, c.WarmupInstr, c.maxCycles(),
		c.WatchdogCycles, c.DisableClockSkip, c.CPU,
		c.Mem.Kind, c.Mem.PhysChannels, c.Mem.Gang,
		c.Mem.PageMode, c.Mem.Scheme, c.Mem.Policy,
		c.Mem.QueueDepth, c.Mem.MaxInFlight, c.Mem.ThreadAwareFirst,
		c.Mem.Refresh, c.Mem.TurnaroundNS,
		c.L1I, c.L1D, c.L2, c.L3, c.PerfectL1, c.PerfectL2, c.PerfectL3)
}

func (c Config) maxCycles() uint64 {
	if c.MaxCycles > 0 {
		return c.MaxCycles
	}
	mc := (c.WarmupInstr + c.TargetInstr) * 400
	if mc < 2_000_000 {
		mc = 2_000_000
	}
	return mc
}
