// Package analysis computes offline statistics over DRAM request traces
// (memctrl.TraceEvent streams): per-bank utilization, row-buffer locality,
// inter-arrival clustering, per-thread service quality, and queueing-delay
// distributions. It is the post-processing half of cmd/tracedump and the
// numerical backbone for scheduler debugging — everything the paper's
// Figures 4, 5, 8 and 9 summarize can be recomputed from a trace with it.
package analysis

import (
	"fmt"
	"math"
	"sort"

	"smtdram/internal/dram"
	"smtdram/internal/memctrl"
)

// Summary aggregates a full trace.
type Summary struct {
	// Events is the number of requests analyzed.
	Events int
	// Reads and Writes split the traffic.
	Reads, Writes int
	// Span is last-done minus first-arrive, in cycles.
	Span uint64

	// RowHitRate, RowClosedRate, RowConflictRate partition outcomes.
	RowHitRate, RowClosedRate, RowConflictRate float64

	// MeanQueueDelay and MeanService decompose latency: arrival→issue and
	// issue→done, in cycles (reads only).
	MeanQueueDelay, MeanService float64
	// P95QueueDelay is the 95th-percentile read queue delay.
	P95QueueDelay uint64

	// MeanInterArrival is the mean gap between consecutive arrivals;
	// ClusterCV is the coefficient of variation of inter-arrival gaps
	// (CV ≈ 1 for Poisson arrivals; CV ≫ 1 means clustered/bursty traffic,
	// the paper's Section 3 premise).
	MeanInterArrival float64
	ClusterCV        float64

	// PerThread holds read service quality per originating thread.
	PerThread []ThreadSummary
	// PerBank holds the busiest banks first.
	PerBank []BankSummary
}

// ThreadSummary is one hardware thread's read service quality.
type ThreadSummary struct {
	Thread         int
	Reads          int
	MeanQueueDelay float64
	MeanLatency    float64 // arrival → done
}

// BankSummary is one bank's share of traffic.
type BankSummary struct {
	Channel, Chip, Bank int
	Accesses            int
	RowHitRate          float64
}

// Collector accumulates trace events incrementally; safe for use as a
// memctrl Trace callback (single simulator goroutine).
type Collector struct {
	events []memctrl.TraceEvent
}

// Add appends one event.
func (c *Collector) Add(e memctrl.TraceEvent) { c.events = append(c.events, e) }

// Len reports the number of collected events.
func (c *Collector) Len() int { return len(c.events) }

// Summarize computes the full summary. It returns an error for an empty
// collection.
func (c *Collector) Summarize() (Summary, error) {
	return Summarize(c.events)
}

// Summarize computes statistics over a complete trace.
func Summarize(events []memctrl.TraceEvent) (Summary, error) {
	if len(events) == 0 {
		return Summary{}, fmt.Errorf("analysis: empty trace")
	}
	s := Summary{Events: len(events)}

	var (
		firstArrive  = events[0].Arrive
		lastDone     uint64
		hits, closed int
		conflicts    int
		qDelaySum    float64
		serviceSum   float64
		readCount    int
		queueDelays  []uint64
		threadAgg    = map[int]*ThreadSummary{}
		bankAgg      = map[[3]int]*BankSummary{}
		bankHits     = map[[3]int]int{}
		arrivals     []uint64
		gapSum       float64
		gaps         []float64
	)
	for _, e := range events {
		if e.Arrive < firstArrive {
			firstArrive = e.Arrive
		}
		if e.Done > lastDone {
			lastDone = e.Done
		}
		switch e.Outcome {
		case dram.Hit:
			hits++
		case dram.Closed:
			closed++
		default:
			conflicts++
		}
		if e.Read {
			s.Reads++
			readCount++
			qd := e.Issue - e.Arrive
			qDelaySum += float64(qd)
			serviceSum += float64(e.Done - e.Issue)
			queueDelays = append(queueDelays, qd)
			t := threadAgg[e.Thread]
			if t == nil {
				t = &ThreadSummary{Thread: e.Thread}
				threadAgg[e.Thread] = t
			}
			t.Reads++
			t.MeanQueueDelay += float64(qd)
			t.MeanLatency += float64(e.Done - e.Arrive)
		} else {
			s.Writes++
		}
		key := [3]int{e.Channel, e.Chip, e.Bank}
		b := bankAgg[key]
		if b == nil {
			b = &BankSummary{Channel: e.Channel, Chip: e.Chip, Bank: e.Bank}
			bankAgg[key] = b
		}
		b.Accesses++
		if e.Outcome == dram.Hit {
			bankHits[key]++
		}
		arrivals = append(arrivals, e.Arrive)
	}
	s.Span = lastDone - firstArrive
	total := float64(len(events))
	s.RowHitRate = float64(hits) / total
	s.RowClosedRate = float64(closed) / total
	s.RowConflictRate = float64(conflicts) / total

	if readCount > 0 {
		s.MeanQueueDelay = qDelaySum / float64(readCount)
		s.MeanService = serviceSum / float64(readCount)
		sort.Slice(queueDelays, func(i, j int) bool { return queueDelays[i] < queueDelays[j] })
		s.P95QueueDelay = queueDelays[(len(queueDelays)*95)/100]
	}

	// Inter-arrival clustering. Traces from the controller arrive in issue
	// order, not arrival order, so sort first.
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
	for i := 1; i < len(arrivals); i++ {
		g := float64(arrivals[i] - arrivals[i-1])
		gaps = append(gaps, g)
		gapSum += g
	}
	if len(gaps) > 0 {
		mean := gapSum / float64(len(gaps))
		s.MeanInterArrival = mean
		var varSum float64
		for _, g := range gaps {
			d := g - mean
			varSum += d * d
		}
		if mean > 0 {
			s.ClusterCV = math.Sqrt(varSum/float64(len(gaps))) / mean
		}
	}

	for _, t := range threadAgg {
		if t.Reads > 0 {
			t.MeanQueueDelay /= float64(t.Reads)
			t.MeanLatency /= float64(t.Reads)
		}
		s.PerThread = append(s.PerThread, *t)
	}
	sort.Slice(s.PerThread, func(i, j int) bool { return s.PerThread[i].Thread < s.PerThread[j].Thread })

	for key, b := range bankAgg {
		if b.Accesses > 0 {
			b.RowHitRate = float64(bankHits[key]) / float64(b.Accesses)
		}
		s.PerBank = append(s.PerBank, *b)
	}
	sort.Slice(s.PerBank, func(i, j int) bool {
		a, b := s.PerBank[i], s.PerBank[j]
		if a.Accesses != b.Accesses {
			return a.Accesses > b.Accesses
		}
		if a.Channel != b.Channel {
			return a.Channel < b.Channel
		}
		if a.Chip != b.Chip {
			return a.Chip < b.Chip
		}
		return a.Bank < b.Bank
	})
	return s, nil
}

// BankImbalance returns max/mean bank access counts — 1.0 is perfectly
// balanced; large values mean hot banks (what the XOR mapping fixes).
func (s Summary) BankImbalance() float64 {
	if len(s.PerBank) == 0 {
		return 0
	}
	maxA, sum := 0, 0
	for _, b := range s.PerBank {
		if b.Accesses > maxA {
			maxA = b.Accesses
		}
		sum += b.Accesses
	}
	mean := float64(sum) / float64(len(s.PerBank))
	return float64(maxA) / mean
}

// String renders a compact human-readable report.
func (s Summary) String() string {
	out := fmt.Sprintf(
		"events=%d (r=%d w=%d) span=%d cycles\nrow: hit=%.3f closed=%.3f conflict=%.3f\n"+
			"reads: queue=%.0f (p95=%d) service=%.0f cycles\narrivals: mean gap=%.1f CV=%.2f\n"+
			"banks: %d touched, imbalance=%.2f\n",
		s.Events, s.Reads, s.Writes, s.Span,
		s.RowHitRate, s.RowClosedRate, s.RowConflictRate,
		s.MeanQueueDelay, s.P95QueueDelay, s.MeanService,
		s.MeanInterArrival, s.ClusterCV,
		len(s.PerBank), s.BankImbalance(),
	)
	for _, t := range s.PerThread {
		out += fmt.Sprintf("thread %d: %d reads, queue=%.0f latency=%.0f\n",
			t.Thread, t.Reads, t.MeanQueueDelay, t.MeanLatency)
	}
	return out
}
