package analysis

import (
	"math"
	"strings"
	"testing"

	"smtdram/internal/dram"
	"smtdram/internal/memctrl"
)

func ev(arrive, issue, done uint64, thread int, read bool, ch, bank int, out dram.Outcome) memctrl.TraceEvent {
	return memctrl.TraceEvent{
		Arrive: arrive, Issue: issue, Done: done,
		Thread: thread, Read: read, Channel: ch, Bank: bank, Outcome: out,
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("Summarize accepted an empty trace")
	}
	var c Collector
	if _, err := c.Summarize(); err == nil {
		t.Fatal("Collector.Summarize accepted an empty trace")
	}
}

func TestBasicAggregates(t *testing.T) {
	events := []memctrl.TraceEvent{
		ev(0, 10, 100, 0, true, 0, 0, dram.Closed),
		ev(5, 15, 130, 1, true, 0, 1, dram.Hit),
		ev(20, 20, 160, -1, false, 1, 0, dram.Conflict),
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.Events != 3 || s.Reads != 2 || s.Writes != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if s.Span != 160 {
		t.Fatalf("Span = %d, want 160", s.Span)
	}
	if math.Abs(s.RowHitRate-1.0/3) > 1e-9 || math.Abs(s.RowConflictRate-1.0/3) > 1e-9 {
		t.Fatalf("outcome rates: %+v", s)
	}
	// Reads: queue delays 10 and 10 → mean 10; services 90 and 115 → 102.5.
	if s.MeanQueueDelay != 10 {
		t.Fatalf("MeanQueueDelay = %v", s.MeanQueueDelay)
	}
	if s.MeanService != 102.5 {
		t.Fatalf("MeanService = %v", s.MeanService)
	}
}

func TestPerThreadAndBank(t *testing.T) {
	events := []memctrl.TraceEvent{
		ev(0, 0, 50, 0, true, 0, 0, dram.Hit),
		ev(0, 40, 90, 1, true, 0, 0, dram.Hit),
		ev(0, 80, 130, 1, true, 0, 1, dram.Conflict),
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PerThread) != 2 {
		t.Fatalf("PerThread = %v", s.PerThread)
	}
	if s.PerThread[0].Thread != 0 || s.PerThread[0].MeanQueueDelay != 0 {
		t.Fatalf("thread 0 summary: %+v", s.PerThread[0])
	}
	if s.PerThread[1].Reads != 2 || s.PerThread[1].MeanQueueDelay != 60 {
		t.Fatalf("thread 1 summary: %+v", s.PerThread[1])
	}
	// Bank (0,0,0) has 2 accesses, both hits; bank (0,0,1) has 1 conflict.
	if len(s.PerBank) != 2 || s.PerBank[0].Accesses != 2 || s.PerBank[0].RowHitRate != 1 {
		t.Fatalf("PerBank = %+v", s.PerBank)
	}
	// Imbalance: max 2 / mean 1.5.
	if math.Abs(s.BankImbalance()-2.0/1.5) > 1e-9 {
		t.Fatalf("BankImbalance = %v", s.BankImbalance())
	}
}

func TestClusteringCV(t *testing.T) {
	// Evenly spaced arrivals → CV ≈ 0; one giant gap → CV large.
	var even, bursty []memctrl.TraceEvent
	for i := 0; i < 100; i++ {
		even = append(even, ev(uint64(i*10), uint64(i*10), uint64(i*10+50), 0, true, 0, 0, dram.Hit))
	}
	for i := 0; i < 50; i++ {
		bursty = append(bursty, ev(uint64(i), uint64(i), uint64(i+50), 0, true, 0, 0, dram.Hit))
		bursty = append(bursty, ev(uint64(100000+i), uint64(100000+i), uint64(100000+i+50), 0, true, 0, 0, dram.Hit))
	}
	se, err := Summarize(even)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Summarize(bursty)
	if err != nil {
		t.Fatal(err)
	}
	if se.ClusterCV > 0.01 {
		t.Fatalf("even arrivals CV = %v, want ≈0", se.ClusterCV)
	}
	if sb.ClusterCV < 3 {
		t.Fatalf("bursty arrivals CV = %v, want ≫1", sb.ClusterCV)
	}
}

func TestP95QueueDelay(t *testing.T) {
	var events []memctrl.TraceEvent
	for i := 0; i < 100; i++ {
		events = append(events, ev(0, uint64(i), uint64(i+50), 0, true, 0, 0, dram.Hit))
	}
	s, err := Summarize(events)
	if err != nil {
		t.Fatal(err)
	}
	if s.P95QueueDelay != 95 {
		t.Fatalf("P95QueueDelay = %d, want 95", s.P95QueueDelay)
	}
}

func TestStringReport(t *testing.T) {
	s, err := Summarize([]memctrl.TraceEvent{ev(0, 1, 2, 0, true, 0, 0, dram.Hit)})
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	for _, want := range []string{"events=1", "row:", "thread 0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCollectorAccumulates(t *testing.T) {
	var c Collector
	for i := 0; i < 10; i++ {
		c.Add(ev(uint64(i), uint64(i), uint64(i+10), 0, true, 0, 0, dram.Hit))
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	s, err := c.Summarize()
	if err != nil || s.Events != 10 {
		t.Fatalf("Summarize: %v %+v", err, s)
	}
}
