// Package snap is the simulator's snapshot codec: a versioned, CRC-framed
// binary format shared by every engine package that serializes state
// (internal/event, internal/cache, internal/cpu, internal/memctrl,
// internal/dram, internal/workload, and the core assembler that frames them
// all into one checkpoint).
//
// The format mirrors the durability discipline of internal/store: a 4-byte
// magic, a 1-byte version, a length-bounded payload, and a trailing CRC-32C
// (Castagnoli) over everything before it. Decoding validates the frame before
// looking at a single payload byte, and every failure is a typed error
// (ErrTruncated, ErrCorrupt, ErrVersion) so callers can distinguish "not a
// snapshot" from "a damaged one" — truncated or bit-flipped frames never
// decode into garbage state.
//
// Within the payload, integers are unsigned varints (zigzag for signed),
// byte strings are length-prefixed, and section markers let decoders fail
// fast on structural drift. Encoding the same state twice yields identical
// bytes (maps are emitted in sorted key order by their owners), which is what
// makes content-addressed checkpoint storage and the encode→decode→encode
// golden tests possible.
package snap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Typed decode failures. Errors returned by the Reader wrap one of these, so
// errors.Is classifies any failure.
var (
	// ErrTruncated: the frame or a field ends before its declared length.
	ErrTruncated = errors.New("snap: truncated")
	// ErrCorrupt: checksum mismatch, bad magic, a bounds violation, or a
	// structural marker that does not match the expected schema.
	ErrCorrupt = errors.New("snap: corrupt")
	// ErrVersion: the frame is well-formed but written by an incompatible
	// codec version; callers treat it as a cache miss, not an error.
	ErrVersion = errors.New("snap: version mismatch")
	// ErrUnsupported: the live state contains something the codec cannot
	// represent (a raw closure in the event queue, an attached observer, a
	// fault plan). Snapshot callers fall back to an uncheckpointed run.
	ErrUnsupported = errors.New("snap: state not serializable")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const (
	// maxFieldLen bounds any single length-prefixed field, mirroring
	// internal/store: a corrupt length can never drive a huge allocation.
	maxFieldLen = 64 << 20
	// maxRefDepth bounds Ref nesting (an entry holds a request holds a fill;
	// anything deeper is structural corruption).
	maxRefDepth = 4
	// maxRefArgs bounds a Ref's argument count.
	maxRefArgs = 32
)

// ---------------------------------------------------------------- Writer

// Writer builds a snapshot payload. The zero value is ready to use; Frame
// seals the payload into a checksummed frame.
type Writer struct {
	buf []byte
}

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// U64 appends an unsigned varint.
func (w *Writer) U64(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

// I64 appends a zigzag-encoded signed varint.
func (w *Writer) I64(v int64) { w.buf = binary.AppendVarint(w.buf, v) }

// Bool appends a 0/1 byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.U64(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.U64(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Marker appends a section marker the Reader can assert with Expect.
func (w *Writer) Marker(m uint64) { w.U64(m) }

// Ref appends a reference descriptor (nil encodes as an absent ref).
func (w *Writer) Ref(r *Ref) {
	if r == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.U8(r.Kind)
	w.U64(uint64(len(r.Args)))
	for _, a := range r.Args {
		w.U64(a)
	}
	w.Ref(r.Inner)
}

// Len reports the current payload size in bytes.
func (w *Writer) Len() int { return len(w.buf) }

// Frame seals the payload: magic (4 bytes) | version | payload | CRC-32C
// (little-endian) over everything before it. The Writer stays usable, but
// callers conventionally Frame exactly once.
func (w *Writer) Frame(magic string, version uint8) []byte {
	if len(magic) != 4 {
		panic("snap: frame magic must be 4 bytes")
	}
	out := make([]byte, 0, 4+1+len(w.buf)+4)
	out = append(out, magic...)
	out = append(out, version)
	out = append(out, w.buf...)
	sum := crc32.Checksum(out, castagnoli)
	return binary.LittleEndian.AppendUint32(append(out, 0, 0, 0, 0)[:len(out)], sum)
}

// ---------------------------------------------------------------- Reader

// Reader decodes a snapshot payload. Errors are sticky: after the first
// failure every subsequent read returns the zero value and Err reports the
// failure, so decode loops need only one check at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader validates frame's magic, version, and checksum, returning a
// Reader over the payload. Mirrors internal/store's decode discipline: the
// checksum is verified before any payload byte is interpreted.
func NewReader(frame []byte, magic string, version uint8) (*Reader, error) {
	if len(magic) != 4 {
		panic("snap: frame magic must be 4 bytes")
	}
	if len(frame) < 4+1+4 {
		return nil, fmt.Errorf("%w: frame %d bytes, need at least %d", ErrTruncated, len(frame), 4+1+4)
	}
	body, tail := frame[:len(frame)-4], frame[len(frame)-4:]
	if want, got := binary.LittleEndian.Uint32(tail), crc32.Checksum(body, castagnoli); want != got {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, want, got)
	}
	if string(body[:4]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrCorrupt, body[:4], magic)
	}
	if body[4] != version {
		return nil, fmt.Errorf("%w: version %d (reader speaks %d)", ErrVersion, body[4], version)
	}
	return &Reader{buf: body[5:]}, nil
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(fmt.Errorf("%w: u8 at offset %d", ErrTruncated, r.off))
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

// U64 reads an unsigned varint.
func (r *Reader) U64() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: uvarint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// I64 reads a zigzag-encoded signed varint.
func (r *Reader) I64() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(fmt.Errorf("%w: varint at offset %d", ErrTruncated, r.off))
		return 0
	}
	r.off += n
	return v
}

// Bool reads a 0/1 byte; any other value is corruption.
func (r *Reader) Bool() bool {
	switch v := r.U8(); v {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("%w: bool byte %d", ErrCorrupt, v))
		return false
	}
}

// Bytes reads a length-prefixed byte string (always a fresh copy).
func (r *Reader) Bytes() []byte {
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > maxFieldLen {
		r.fail(fmt.Errorf("%w: field length %d exceeds limit %d", ErrCorrupt, n, maxFieldLen))
		return nil
	}
	if uint64(len(r.buf)-r.off) < n {
		r.fail(fmt.Errorf("%w: field needs %d bytes, %d remain", ErrTruncated, n, len(r.buf)-r.off))
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}

// String reads a length-prefixed string.
func (r *Reader) String() string { return string(r.Bytes()) }

// Expect reads a section marker and fails with ErrCorrupt on mismatch.
func (r *Reader) Expect(marker uint64) {
	if got := r.U64(); r.err == nil && got != marker {
		r.fail(fmt.Errorf("%w: section marker %#x (want %#x)", ErrCorrupt, got, marker))
	}
}

// Remaining reports how many payload bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done fails with ErrCorrupt if payload bytes remain (no trailing garbage,
// mirroring internal/store's decode).
func (r *Reader) Done() {
	if r.err == nil && r.off != len(r.buf) {
		r.fail(fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(r.buf)-r.off))
	}
}

// Ref reads a reference descriptor (nil when absent).
func (r *Reader) Ref() *Ref { return r.refDepth(0) }

func (r *Reader) refDepth(depth int) *Ref {
	if !r.Bool() || r.err != nil {
		return nil
	}
	if depth >= maxRefDepth {
		r.fail(fmt.Errorf("%w: ref nesting beyond %d", ErrCorrupt, maxRefDepth))
		return nil
	}
	ref := &Ref{Kind: r.U8()}
	n := r.U64()
	if r.err != nil {
		return nil
	}
	if n > maxRefArgs {
		r.fail(fmt.Errorf("%w: ref arg count %d exceeds %d", ErrCorrupt, n, maxRefArgs))
		return nil
	}
	ref.Args = make([]uint64, n)
	for i := range ref.Args {
		ref.Args[i] = r.U64()
	}
	ref.Inner = r.refDepth(depth + 1)
	if r.err != nil {
		return nil
	}
	return ref
}

// ---------------------------------------------------------------- Ref

// Ref is a serializable description of a live object scheduled in the event
// queue or parked in a component's wait list — the typed replacement for the
// closures the engine used to capture. Kind selects a reconstruction recipe,
// Args carries its scalar parameters (signed values zigzag-encoded by the
// producer via Zig/Unzig), and Inner chains a nested continuation (a memory
// request's completion fill, for example). The core resolver maps a decoded
// Ref back to a live object inside a freshly built simulator.
type Ref struct {
	Kind  uint8
	Args  []uint64
	Inner *Ref
}

// Ref kinds. The space is owned here so producer packages (cpu, cache,
// memctrl) never collide and the core resolver can dispatch without importing
// their internals.
const (
	// KNone marks an absent continuation.
	KNone uint8 = iota
	// KCPULoadFill is a load-miss completion: args tid, seq, epoch.
	KCPULoadFill
	// KCPUIFill is an instruction-fetch completion: args tid, line, epoch.
	KCPUIFill
	// KCPUBranch is a pending branch resolution: args tid, seq, epoch.
	KCPUBranch
	// KCacheMSHR is a cache level's MSHR, in either role (issue-retry
	// handler or fill continuation): args levelID, addr.
	KCacheMSHR
	// KCacheWBRetry is a level's writeback drain handler: args levelID.
	KCacheWBRetry
	// KCachePfIssue is a scheduled prefetch issue: args levelID, line
	// address, then the 5-word request meta.
	KCachePfIssue
	// KCachePfFill is a prefetch fill continuation: args levelID, line addr.
	KCachePfFill
	// KMemBackend is the memory backend's pending-retry drain handler.
	KMemBackend
	// KMemBackendReq is a pooled memory request: args id, addr, kind,
	// zig(thread), critical, arrive, then the 3-word thread state; Inner is
	// the completion fill.
	KMemBackendReq
	// KMemEntry is a controller queue entry: args channel, seq, queuedBehind,
	// attempt, backoff; Inner is the KMemBackendReq it carries.
	KMemEntry
	// KMemRetry is a channel's retry-wake handler: args channel.
	KMemRetry
	// KMemFailover is the controller's planned-failover handler.
	KMemFailover
)

// Zig maps a signed int into the uint64 Ref-arg space.
func Zig(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// Unzig inverts Zig.
func Unzig(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
