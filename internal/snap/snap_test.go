package snap

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

const (
	testMagic   = "TEST"
	testVersion = 3
)

// buildFrame seals a payload exercising every field type the codec offers.
func buildFrame() []byte {
	w := &Writer{}
	w.Marker(0x5EC7)
	w.U8(0xAB)
	w.U64(0)
	w.U64(1<<63 + 12345)
	w.I64(-987654321)
	w.I64(0)
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte{1, 2, 3, 0xFF})
	w.Bytes(nil)
	w.String("warmup prefix")
	w.Ref(nil)
	w.Ref(&Ref{Kind: KMemEntry, Args: []uint64{7, 8, 9},
		Inner: &Ref{Kind: KMemBackendReq, Args: []uint64{1, 0xDEAD, 0, Zig(-3), 1, 42},
			Inner: &Ref{Kind: KCPULoadFill, Args: []uint64{2, 77, 1}}}})
	return w.Frame(testMagic, testVersion)
}

// readFrame decodes what buildFrame wrote, returning the reader for Err/Done.
func readFrame(t *testing.T, frame []byte) *Reader {
	t.Helper()
	r, err := NewReader(frame, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	r.Expect(0x5EC7)
	if got := r.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 zero = %d", got)
	}
	if got := r.U64(); got != 1<<63+12345 {
		t.Fatalf("U64 big = %d", got)
	}
	if got := r.I64(); got != -987654321 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.I64(); got != 0 {
		t.Fatalf("I64 zero = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round-trip broke")
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3, 0xFF}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.Bytes(); len(got) != 0 {
		t.Fatalf("empty Bytes = %v", got)
	}
	if got := r.String(); got != "warmup prefix" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Ref(); got != nil {
		t.Fatalf("nil Ref = %+v", got)
	}
	ref := r.Ref()
	if ref == nil || ref.Kind != KMemEntry || len(ref.Args) != 3 ||
		ref.Inner == nil || ref.Inner.Kind != KMemBackendReq ||
		Unzig(ref.Inner.Args[3]) != -3 ||
		ref.Inner.Inner == nil || ref.Inner.Inner.Kind != KCPULoadFill {
		t.Fatalf("nested Ref round-trip broke: %+v", ref)
	}
	return r
}

func TestFrameRoundTrip(t *testing.T) {
	r := readFrame(t, buildFrame())
	r.Done()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDeterministic: encoding the same state twice yields identical
// frames — the property content-addressed checkpoint storage depends on.
func TestEncodeDeterministic(t *testing.T) {
	if !bytes.Equal(buildFrame(), buildFrame()) {
		t.Fatal("two encodes of identical state differ")
	}
}

// TestBitFlipIsCorrupt: any single-bit flip anywhere in a sealed frame —
// magic, version, payload, or the checksum itself — fails frame validation
// with ErrCorrupt before a single payload byte is interpreted.
func TestBitFlipIsCorrupt(t *testing.T) {
	frame := buildFrame()
	for i := range frame {
		for bit := 0; bit < 8; bit++ {
			bad := append([]byte(nil), frame...)
			bad[i] ^= 1 << bit
			if _, err := NewReader(bad, testMagic, testVersion); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("flip byte %d bit %d: got %v, want ErrCorrupt", i, bit, err)
			}
		}
	}
}

func TestTruncatedFrame(t *testing.T) {
	frame := buildFrame()
	// Below the minimum viable frame (magic+version+crc): truncation.
	for n := 0; n < 9; n++ {
		if _, err := NewReader(frame[:n], testMagic, testVersion); !errors.Is(err, ErrTruncated) {
			t.Fatalf("len %d: got %v, want ErrTruncated", n, err)
		}
	}
	// Any longer prefix still fails — as corruption, since the bytes that
	// land in the checksum position no longer match the body.
	for n := 9; n < len(frame); n++ {
		if _, err := NewReader(frame[:n], testMagic, testVersion); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("len %d: got %v, want ErrCorrupt", n, err)
		}
	}
}

// reseal recomputes the trailing checksum after a deliberate body mutation,
// isolating the post-checksum validation under test.
func reseal(frame []byte) []byte {
	body := frame[:len(frame)-4]
	sum := crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(frame[len(frame)-4:], sum)
	return frame
}

func TestVersionMismatch(t *testing.T) {
	frame := buildFrame()
	frame[4] = testVersion + 1
	if _, err := NewReader(reseal(frame), testMagic, testVersion); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestBadMagic(t *testing.T) {
	frame := buildFrame()
	copy(frame, "NOPE")
	if _, err := NewReader(reseal(frame), testMagic, testVersion); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestFieldTruncation: a field whose declared length runs past the payload is
// caught at the field, not by over-reading.
func TestFieldTruncation(t *testing.T) {
	w := &Writer{}
	w.U64(1000) // claims a 1000-byte string that is not there
	r, err := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes(); !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", r.Err())
	}
}

// TestFieldLengthBound: an absurd declared length is corruption, rejected
// before it can drive an allocation.
func TestFieldLengthBound(t *testing.T) {
	w := &Writer{}
	w.U64(maxFieldLen + 1)
	r, err := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes(); !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", r.Err())
	}
}

func TestStructuralErrors(t *testing.T) {
	t.Run("marker-mismatch", func(t *testing.T) {
		w := &Writer{}
		w.Marker(1)
		r, _ := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
		r.Expect(2)
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", r.Err())
		}
	})
	t.Run("bool-byte", func(t *testing.T) {
		w := &Writer{}
		w.U8(7)
		r, _ := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
		r.Bool()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", r.Err())
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		w := &Writer{}
		w.U64(1)
		w.U64(2)
		r, _ := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
		r.U64()
		r.Done()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", r.Err())
		}
	})
	t.Run("ref-depth", func(t *testing.T) {
		deep := &Ref{Kind: 1}
		for i := 0; i < maxRefDepth+1; i++ {
			deep = &Ref{Kind: 1, Inner: deep}
		}
		w := &Writer{}
		w.Ref(deep)
		r, _ := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
		r.Ref()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", r.Err())
		}
	})
	t.Run("ref-args", func(t *testing.T) {
		w := &Writer{}
		w.Ref(&Ref{Kind: 1, Args: make([]uint64, maxRefArgs+1)})
		r, _ := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
		r.Ref()
		if !errors.Is(r.Err(), ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", r.Err())
		}
	})
	t.Run("errors-stick", func(t *testing.T) {
		w := &Writer{}
		w.U8(7) // bad bool
		w.U64(99)
		r, _ := NewReader(w.Frame(testMagic, testVersion), testMagic, testVersion)
		r.Bool()
		first := r.Err()
		if got := r.U64(); got != 0 {
			t.Fatalf("read after failure returned %d, want zero value", got)
		}
		if r.Err() != first {
			t.Fatal("later reads replaced the first error")
		}
	})
}

func TestZigUnzig(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := Unzig(Zig(v)); got != v {
			t.Fatalf("Unzig(Zig(%d)) = %d", v, got)
		}
	}
}

// FuzzReader throws arbitrary bytes at frame validation and, when a frame
// passes, at every field decoder: nothing may panic, and a frame that decodes
// must re-encode to the same bytes it was decoded from.
func FuzzReader(f *testing.F) {
	f.Add(buildFrame())
	f.Add([]byte{})
	f.Add([]byte("TEST\x03junkjunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data, testMagic, testVersion)
		if err != nil {
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("untyped frame error: %v", err)
			}
			return
		}
		// Drive every decoder shape; sticky errors make this safe even when
		// the fuzzer found a frame whose payload is gibberish.
		r.Expect(0x5EC7)
		r.U8()
		r.U64()
		r.U64()
		r.I64()
		r.I64()
		r.Bool()
		r.Bool()
		r.Bytes()
		r.Bytes()
		_ = r.String()
		r.Ref()
		r.Ref()
		r.Done()
		if err := r.Err(); err != nil &&
			!errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("untyped field error: %v", err)
		}
	})
}

// FuzzRoundTrip builds a frame from fuzzed primitives and asserts
// encode→decode→encode byte-stability plus value fidelity.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), []byte(nil), true)
	f.Add(uint64(1<<62), int64(-1<<40), []byte{1, 2, 3}, false)
	f.Fuzz(func(t *testing.T, u uint64, i int64, b []byte, flag bool) {
		encode := func() []byte {
			w := &Writer{}
			w.U64(u)
			w.I64(i)
			w.Bytes(b)
			w.Bool(flag)
			w.Ref(&Ref{Kind: KCacheMSHR, Args: []uint64{u % 7, Zig(i)}})
			return w.Frame(testMagic, testVersion)
		}
		frame := encode()
		r, err := NewReader(frame, testMagic, testVersion)
		if err != nil {
			t.Fatal(err)
		}
		if got := r.U64(); got != u {
			t.Fatalf("U64 = %d, want %d", got, u)
		}
		if got := r.I64(); got != i {
			t.Fatalf("I64 = %d, want %d", got, i)
		}
		if got := r.Bytes(); !bytes.Equal(got, b) {
			t.Fatalf("Bytes = %v, want %v", got, b)
		}
		if got := r.Bool(); got != flag {
			t.Fatalf("Bool = %v, want %v", got, flag)
		}
		ref := r.Ref()
		if ref == nil || ref.Kind != KCacheMSHR || Unzig(ref.Args[1]) != i {
			t.Fatalf("Ref round-trip broke: %+v", ref)
		}
		r.Done()
		if err := r.Err(); err != nil {
			t.Fatal(err)
		}
		if again := encode(); !bytes.Equal(frame, again) {
			t.Fatal("encode is not deterministic")
		}
	})
}
