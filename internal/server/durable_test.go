package server_test

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"smtdram/internal/core"
	"smtdram/internal/server"
	"smtdram/internal/store"
)

// directRunBytes computes what `smtdram -json` would print for req — the
// byte-identity oracle for everything the durable path serves.
func directRunBytes(t *testing.T, req server.SimRequest) []byte {
	t.Helper()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRestartRehydratesDoneJob: a finished job survives a restart — its id
// still answers, its result bytes are identical, and a fresh submission of
// the same configuration is served from the disk tier without recomputing.
func TestRestartRehydratesDoneJob(t *testing.T) {
	dir := t.TempDir()
	req := smallSim()
	want := directRunBytes(t, req)
	ctx := context.Background()

	srv1, c1 := newTestDaemon(t, server.Config{DataDir: dir, Logger: testLogger(t)})
	st, err := c1.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c1.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	srv1.Close()

	// Second daemon, same data dir, empty LRU and job table.
	_, c2 := newTestDaemon(t, server.Config{DataDir: dir, Logger: testLogger(t)})

	// The old job id was rehydrated from the journal + store.
	got, err := c2.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("recovered job %s: %v", st.ID, err)
	}
	if string(got) != string(want) {
		t.Fatalf("rehydrated result differs from direct run:\n got %s\nwant %s", got, want)
	}

	// A fresh submission of the same configuration hits the disk tier: it is
	// answered synchronously as cached, with the same bytes, and the id is a
	// new one (the recovered id space is preserved, not reused).
	st2, err := c2.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("resubmission after restart: cached = false, want true (state %s)", st2.State)
	}
	if st2.ID == st.ID {
		t.Fatalf("fresh submission reused recovered id %s", st.ID)
	}
	got2, err := c2.Result(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != string(want) {
		t.Fatalf("disk-tier result differs from direct run:\n got %s\nwant %s", got2, want)
	}

	stats, err := c2.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Store.Hits == 0 {
		t.Fatalf("store hits = 0 after rehydration + disk-tier serve; stats = %+v", stats.Store)
	}
	if stats.Recovery.Rehydrated == 0 {
		t.Fatalf("recovery rehydrated = 0, want >= 1")
	}
	if !stats.Store.Configured || stats.Store.Degraded {
		t.Fatalf("store health = %+v, want configured and not degraded", stats.Store.StoreHealth)
	}
}

// TestRecoveryReenqueuesInterruptedJob: a journal holding only a submitted
// record (the daemon died before the run finished) re-runs the job at startup
// under its original id, and the result is byte-identical to a direct run.
func TestRecoveryReenqueuesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	req := smallSim()
	want := directRunBytes(t, req)
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	// Hand-write the crashed daemon's journal: job j-7 accepted, never
	// resolved.
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	jp := filepath.Join(dir, "journal.wal")
	jn, err := store.OpenJournal(jp, store.FsyncOff)
	if err != nil {
		t.Fatal(err)
	}
	rec := store.Record{
		Type: store.RecSubmitted, Job: "j-7", Kind: "sim",
		FP: "sim|" + cfg.Fingerprint(), Request: reqJSON,
	}
	if err := jn.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	_, c := newTestDaemon(t, server.Config{DataDir: dir, Logger: testLogger(t)})
	ctx := context.Background()

	st, err := c.Wait(ctx, "j-7", 0)
	if err != nil {
		t.Fatalf("recovered job j-7: %v", err)
	}
	if st.State != server.StateDone {
		t.Fatalf("recovered job state = %s (%s), want done", st.State, st.Error)
	}
	got, err := c.Result(ctx, "j-7")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("re-run result differs from direct run:\n got %s\nwant %s", got, want)
	}

	// Once the re-run finishes, recovery is complete and the daemon is ready.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err := c.Readyz(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready; reasons = %v", rep.Reasons)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Fresh ids must not collide with the recovered id space.
	st2, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ID == "j-7" {
		t.Fatalf("fresh submission reused recovered id j-7")
	}
}

// TestReadyzSplitsFromHealthz: /healthz stays 200 in states where /readyz
// reports 503 — here, a data dir that cannot be opened (a regular file in
// the way) degrades the store to memory-only and flips readiness only.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	dir := t.TempDir()
	blocked := filepath.Join(dir, "not-a-dir")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, c := newTestDaemon(t, server.Config{DataDir: blocked, Logger: testLogger(t)})
	ctx := context.Background()

	rep, err := c.Readyz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ready {
		t.Fatalf("readyz reports ready with an unopenable data dir")
	}
	if !rep.Store.Configured || !rep.Store.Degraded {
		t.Fatalf("store health = %+v, want configured and degraded", rep.Store)
	}

	// Liveness is unaffected: serving still works, memory-only.
	st, err := c.SubmitSim(ctx, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("memory-only job state = %s (%s), want done", st.State, st.Error)
	}
}

// TestReadyzReportsDraining: Drain flips readiness off while liveness stays
// up, so a load balancer pulls the instance before shutdown.
func TestReadyzReportsDraining(t *testing.T) {
	srv, c := newTestDaemon(t, server.Config{Logger: testLogger(t)})
	ctx := context.Background()

	rep, err := c.Readyz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ready {
		t.Fatalf("fresh idle daemon unready; reasons = %v", rep.Reasons)
	}

	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if rep, err = c.Readyz(ctx); err != nil {
		t.Fatal(err)
	}
	if rep.Ready {
		t.Fatalf("readyz reports ready while draining")
	}
}

// TestRestartCompactsJournal: after a clean lifecycle (submit, finish,
// restart), the rotated journal holds exactly one record per live job — no
// unbounded growth across restarts.
func TestRestartCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	srv1, c1 := newTestDaemon(t, server.Config{DataDir: dir, Logger: testLogger(t)})
	st, err := c1.SubmitSim(ctx, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c1.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	srv1.Close()

	// First restart compacts submitted+started+resolved down to one record.
	srv2, _ := newTestDaemon(t, server.Config{DataDir: dir, Logger: testLogger(t)})
	srv2.Close()

	recs, err := store.ReadJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	perJob := map[string]int{}
	for _, r := range recs {
		perJob[r.Job]++
	}
	if n := perJob[st.ID]; n != 1 {
		t.Fatalf("compacted journal has %d records for %s, want 1 (journal: %+v)", n, st.ID, recs)
	}
}
