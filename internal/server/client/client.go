// Package client is the Go client for the smtdramd daemon (internal/server):
// typed submission, polling, cancellation, SSE progress consumption, and a
// load generator the benchmark suite uses to measure the serving path.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"smtdram/internal/server"
)

// Client talks to one daemon.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Retry, when set, retries transient failures (502/503/504, transport
	// errors) with jittered exponential backoff. See RetryPolicy.
	Retry *RetryPolicy
}

// New builds a client for baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RetryAfterError is returned when the daemon sheds load (429): the queue was
// full and the caller should wait After before resubmitting.
type RetryAfterError struct {
	After time.Duration
	Msg   string
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("server busy (retry after %s): %s", e.After, e.Msg)
}

// APIError is any other non-2xx response.
type APIError struct {
	Code int
	Msg  string
}

func (e *APIError) Error() string { return fmt.Sprintf("server returned %d: %s", e.Code, e.Msg) }

// errorBody extracts the {"error": ...} payload.
func errorBody(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	return c.doRetry(ctx, func(ctx context.Context) error {
		return c.doOnce(ctx, method, path, in, out)
	})
}

func (c *Client) doOnce(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := time.Second
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		return &RetryAfterError{After: after, Msg: errorBody(raw)}
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return &APIError{Code: resp.StatusCode, Msg: errorBody(raw)}
	}
	if out == nil {
		return nil
	}
	if rawOut, ok := out.(*json.RawMessage); ok {
		*rawOut = raw
		return nil
	}
	return json.Unmarshal(raw, out)
}

// SubmitSim submits a simulation, returning its job status (state "done"
// immediately on a cache hit).
func (c *Client) SubmitSim(ctx context.Context, req server.SimRequest) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/sim", req, &st)
	return st, err
}

// SubmitFigure submits a figure sweep.
func (c *Client) SubmitFigure(ctx context.Context, req server.FigRequest) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/figures", req, &st)
	return st, err
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Result fetches a done job's raw result bytes — the payload that is
// byte-identical to `smtdram -json` for the same configuration.
func (c *Client) Result(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw)
	return raw, err
}

// Trace fetches one job's Chrome trace_event JSON — the wall-clock span tree
// (admission → queue → run → respond) plus, for jobs submitted with
// SimRequest.Trace, the cycle-domain request lifecycle, all in one
// Perfetto-loadable payload.
func (c *Client) Trace(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/trace", nil, &raw)
	return raw, err
}

// Stats fetches the daemon's /v1/stats snapshot.
func (c *Client) Stats(ctx context.Context) (server.Stats, error) {
	var st server.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Healthz probes /healthz liveness: nil means the process is serving HTTP.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Readyz fetches the /readyz readiness report. Unlike the other calls, a 503
// is not an error here: readiness is the report's Ready field, and the
// reasons for unreadiness travel in the body either way.
func (c *Client) Readyz(ctx context.Context) (server.Readiness, error) {
	var rep server.Readiness
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/readyz", nil)
	if err != nil {
		return rep, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return rep, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return rep, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		return rep, &APIError{Code: resp.StatusCode, Msg: errorBody(raw)}
	}
	return rep, json.Unmarshal(raw, &rep)
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (server.JobStatus, error) {
	var st server.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state, at the given interval
// (default 10ms), or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (server.JobStatus, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		switch st.State {
		case server.StateDone, server.StateFailed, server.StateCancelled:
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-t.C:
		}
	}
}

// Event is one server-sent event from a job's stream.
type Event struct {
	// Name is "progress" or a terminal state ("done", "failed", "cancelled").
	Name string
	// Data is the event payload: a core.Progress sample for progress
	// events, a JobStatus for terminal ones.
	Data json.RawMessage
}

// Events consumes a job's SSE stream, invoking fn per event until the
// terminal event (after which it returns nil) or ctx/stream end.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		return &APIError{Code: resp.StatusCode, Msg: errorBody(raw)}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(strings.TrimPrefix(line, "data: "))
		case line == "" && ev.Name != "":
			if err := fn(ev); err != nil {
				return err
			}
			if ev.Name != "progress" {
				return nil // terminal event
			}
			ev = Event{}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return io.ErrUnexpectedEOF // stream ended without a terminal event
}

// MetricValue scrapes /metrics and returns the value of one metric by its
// exposition name (e.g. "smtdram_jobs_cached_total").
func (c *Client) MetricValue(ctx context.Context, name string) (float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, &APIError{Code: resp.StatusCode, Msg: errorBody(raw)}
	}
	for _, line := range strings.Split(string(raw), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			return strconv.ParseFloat(fields[1], 64)
		}
	}
	return 0, fmt.Errorf("client: metric %q not found", name)
}
