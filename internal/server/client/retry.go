package client

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"
)

// RetryPolicy makes the client ride out transient fleet weather: a
// coordinator returning 502/503 while a worker is being ejected or rejoining,
// or a connection severed mid-forward. Attach one to Client.Retry and every
// API call retries those failures with jittered exponential backoff.
// Retrying submissions is safe because the daemon keys work by configuration
// fingerprint — a duplicate POST lands on the same cache/dedup entry, not a
// second simulation. 429 (load shed) is deliberately NOT retried here: it
// carries the server's own Retry-After contract, which the load generator's
// backoff honors instead.
type RetryPolicy struct {
	// MaxAttempts caps total tries per call (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (default 100ms); the delay
	// before attempt n is jittered around Base·2ⁿ⁻¹, capped at MaxBackoff
	// (default 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PerAttemptTimeout bounds each individual attempt (0 leaves attempts
	// bounded only by the caller's context). A timed-out attempt counts as
	// transient and retries while the parent context is still live.
	PerAttemptTimeout time.Duration

	// retried counts attempts that were retried, for the load generator's
	// report.
	retried atomic.Uint64
}

func (p *RetryPolicy) attempts() int {
	if p == nil || p.MaxAttempts <= 0 {
		return 3
	}
	return p.MaxAttempts
}

// Retried reports how many failed attempts this policy has retried.
func (p *RetryPolicy) Retried() uint64 {
	if p == nil {
		return 0
	}
	return p.retried.Load()
}

// retryable decides whether an attempt's error is transient: gateway-layer
// 502/503/504 (a fleet mid-rebalance) or a transport failure (connection
// refused/reset, attempt timeout). Other API errors are the server meaning
// what it said.
func retryable(err error) bool {
	var api *APIError
	if errors.As(err, &api) {
		switch api.Code {
		case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	var ra *RetryAfterError
	return !errors.As(err, &ra) // anything else non-HTTP is transport-level
}

// backoff computes the jittered delay before retry i (0-based).
func (p *RetryPolicy) backoff(i int) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = 2 * time.Second
	}
	d := base << i
	if d > maxB || d <= 0 {
		d = maxB
	}
	return jitter(d)
}

// doRetry runs one API call under the policy. With no policy attached it is
// a single attempt.
func (c *Client) doRetry(ctx context.Context, call func(ctx context.Context) error) error {
	p := c.Retry
	if p == nil {
		return call(ctx)
	}
	var err error
	for i := 0; i < p.attempts(); i++ {
		actx, cancel := ctx, context.CancelFunc(func() {})
		if p.PerAttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.PerAttemptTimeout)
		}
		err = call(actx)
		cancel()
		if err == nil || !retryable(err) || ctx.Err() != nil || i == p.attempts()-1 {
			return err
		}
		p.retried.Add(1)
		select {
		case <-time.After(p.backoff(i)):
		case <-ctx.Done():
			return err
		}
	}
	return err
}
