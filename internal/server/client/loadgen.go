package client

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"smtdram/internal/server"
)

// LoadGenConfig shapes one load-generation run against a daemon.
type LoadGenConfig struct {
	// Requests is the total number of submissions (default 100).
	Requests int
	// Clients is the number of concurrent submitters (default 8).
	Clients int
	// Mix is the request pool, cycled round-robin across submissions.
	// Repetition within the pool is what exercises the result cache and the
	// single-flight dedup. Empty selects DefaultLoadMix.
	Mix []server.SimRequest
	// Poll is the completion-poll interval (default 10ms).
	Poll time.Duration
}

// DefaultLoadMix is a small mixed-configuration pool: a handful of distinct
// machines, each appearing more than once across a run so a warm daemon
// serves a healthy fraction from cache and dedup.
func DefaultLoadMix() []server.SimRequest {
	w, t := uint64(2_000), uint64(10_000)
	var reqs []server.SimRequest
	for _, apps := range [][]string{{"mcf"}, {"ammp"}, {"mcf", "ammp"}, {"swim", "mcf"}} {
		for _, seed := range []int64{42, 7} {
			seed := seed
			reqs = append(reqs, server.SimRequest{Apps: apps, Warmup: &w, Target: &t, Seed: &seed})
		}
	}
	reqs = append(reqs,
		server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &t, Policy: "fcfs"},
		server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &t, PageMode: "close"},
	)
	return reqs
}

// LoadGenReport is the measured outcome of a load-generation run.
type LoadGenReport struct {
	Requests   int `json:"requests"`
	Completed  int `json:"completed"`
	Failed     int `json:"failed"`
	Rejections int `json:"rejections_429"`
	// Retries5xx counts attempts the client's RetryPolicy retried after a
	// transient 5xx or transport failure (0 when no policy is attached).
	Retries5xx     uint64  `json:"retries_5xx"`
	WallSeconds    float64 `json:"wall_seconds"`
	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Ms          float64 `json:"p50_ms"`
	P90Ms          float64 `json:"p90_ms"`
	P99Ms          float64 `json:"p99_ms"`
	// CacheHitRatio is (cached + deduped) / accepted over the run, from the
	// daemon's own counters.
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	SimsRun       float64 `json:"sims_run"`
}

// LoadGen drives the daemon with Requests submissions from Clients
// concurrent workers, waits for every job, and reports throughput, latency
// percentiles, and the cache-hit ratio. A 429 backs the worker off by the
// server's Retry-After and retries the same request (counted, never
// dropped); any accepted job that fails fails the run's Completed count.
func (c *Client) LoadGen(ctx context.Context, cfg LoadGenConfig) (LoadGenReport, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 100
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 8
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = DefaultLoadMix()
	}

	before := snapshotCounters(ctx, c)
	retriedBefore := c.Retry.Retried()

	var (
		mu         sync.Mutex
		latencies  []float64
		failed     int
		rejections int
	)
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				req := cfg.Mix[i%len(cfg.Mix)]
				t0 := time.Now()
				st, err := c.submitWithBackoff(ctx, req, &mu, &rejections)
				if err == nil && !st.State.Terminal() {
					st, err = c.Wait(ctx, st.ID, cfg.Poll)
				}
				lat := time.Since(t0).Seconds() * 1000
				mu.Lock()
				if err != nil || st.State != server.StateDone {
					failed++
				} else {
					latencies = append(latencies, lat)
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			close(work)
			wg.Wait()
			return LoadGenReport{}, ctx.Err()
		}
	}
	close(work)
	wg.Wait()
	wall := time.Since(start)

	after := snapshotCounters(ctx, c)

	sort.Float64s(latencies)
	rep := LoadGenReport{
		Requests:    cfg.Requests,
		Completed:   len(latencies),
		Failed:      failed,
		Rejections:  rejections,
		Retries5xx:  c.Retry.Retried() - retriedBefore,
		WallSeconds: wall.Seconds(),
		P50Ms:       percentile(latencies, 0.50),
		P90Ms:       percentile(latencies, 0.90),
		P99Ms:       percentile(latencies, 0.99),
		SimsRun:     after["smtdram_sims_run_total"] - before["smtdram_sims_run_total"],
	}
	if wall > 0 {
		rep.RequestsPerSec = float64(len(latencies)) / wall.Seconds()
	}
	accepted := after["smtdram_jobs_accepted_total"] - before["smtdram_jobs_accepted_total"]
	hits := (after["smtdram_jobs_cached_total"] - before["smtdram_jobs_cached_total"]) +
		(after["smtdram_jobs_deduped_total"] - before["smtdram_jobs_deduped_total"])
	if accepted > 0 {
		rep.CacheHitRatio = hits / accepted
	}
	if failed > 0 {
		return rep, fmt.Errorf("client: %d of %d requests failed", failed, cfg.Requests)
	}
	return rep, nil
}

// submitWithBackoff retries 429s after the server's Retry-After; any other
// error is final. The sleep is jittered across [After/2, 1.5·After) so a
// burst of rejected clients fans back out instead of re-arriving as the same
// synchronized thundering herd that just overflowed the queue.
func (c *Client) submitWithBackoff(ctx context.Context, req server.SimRequest, mu *sync.Mutex, rejections *int) (server.JobStatus, error) {
	for {
		st, err := c.SubmitSim(ctx, req)
		var retry *RetryAfterError
		if !errors.As(err, &retry) {
			return st, err
		}
		mu.Lock()
		*rejections++
		mu.Unlock()
		select {
		case <-time.After(jitter(retry.After)):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// jitter spreads d uniformly over [d/2, 3d/2).
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

func snapshotCounters(ctx context.Context, c *Client) map[string]float64 {
	out := map[string]float64{}
	for _, name := range []string{
		"smtdram_jobs_accepted_total", "smtdram_jobs_cached_total",
		"smtdram_jobs_deduped_total", "smtdram_sims_run_total",
	} {
		v, err := c.MetricValue(ctx, name)
		if err == nil {
			out[name] = v
		}
	}
	return out
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
