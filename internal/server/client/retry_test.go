package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestRetryTransient503: a policy-equipped client rides out transient 503s
// and reports how many attempts it retried.
func TestRetryTransient503(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"worker rebalancing"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond}
	if err := c.Healthz(context.Background()); err != nil {
		t.Fatalf("retrying client failed: %v (calls=%d)", err, calls.Load())
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if got := c.Retry.Retried(); got != 2 {
		t.Fatalf("Retried() = %d, want 2", got)
	}
}

// TestRetryAttemptCap: the cap is honored and the final error surfaces.
func TestRetryAttemptCap(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad gateway"}`, http.StatusBadGateway)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}
	err := c.Healthz(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.Code != http.StatusBadGateway {
		t.Fatalf("err = %v, want APIError 502", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}

// TestRetryNonTransientNotRetried: a 400 means what it says — one attempt.
func TestRetryNonTransientNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such app"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}
	err := c.Healthz(context.Background())
	var api *APIError
	if !errors.As(err, &api) || api.Code != http.StatusBadRequest {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (400 is not transient)", got)
	}
}

// TestRetry429NotRetried: load-shed responses keep their Retry-After
// contract instead of being hammered by the policy.
func TestRetry429NotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond}
	err := c.Healthz(context.Background())
	var ra *RetryAfterError
	if !errors.As(err, &ra) || ra.After != 7*time.Second {
		t.Fatalf("err = %v, want RetryAfterError 7s", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (429 is the server's backoff)", got)
	}
}

// TestRetryPerAttemptTimeout: a hung attempt is cut off and retried, and the
// call succeeds within the parent context.
func TestRetryPerAttemptTimeout(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // hang until the attempt context kills the request
			case <-r.Context().Done():
			case <-time.After(10 * time.Second):
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = &RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond, PerAttemptTimeout: 100 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("per-attempt timeout did not rescue the call: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d calls, want 2", got)
	}
}
