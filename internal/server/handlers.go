package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"smtdram/internal/obs"
	"smtdram/internal/store"
)

// maxBodyBytes bounds request bodies; configurations are tiny.
const maxBodyBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{Error: msg})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if !decodeBody(w, r, &req) {
		return
	}
	cfg, err := req.Config()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	fp := simShardKey(cfg, req.Trace)
	reqJSON, _ := json.Marshal(req) // canonical form for the write-ahead journal
	s.submit(w, r, "sim", fp, reqJSON, func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return s.simFlightFn(fl, cfg, req.Trace)
	})
}

func (s *Server) handleFigures(w http.ResponseWriter, r *http.Request) {
	var req FigRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// Validate the figure name up front so a typo is a 400, not a failed job.
	if err := (FigRequest{Fig: req.Fig}).validate(); err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	reqJSON, _ := json.Marshal(req)
	s.submit(w, r, "figure", "fig|"+req.key(), reqJSON, func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return s.figFlightFn(fl, req)
	})
}

// jobFromPath resolves the {id} path value, writing a 404 on a miss.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		writeErr(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
		return nil
	}
	return j
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	writeJSON(w, http.StatusOK, j.status(true))
}

// handleJobResult serves the raw result bytes — exactly what a CLI
// `smtdram -json` run with the same configuration prints, byte for byte. The
// producing run's two-speed-clock summary travels in X-Smtdram-Skip-* headers
// (absent for figure sweeps), keeping the body byte-identical.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, result, errMsg, skip := j.state, j.result, j.errMsg, j.skip
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		if skip != nil {
			w.Header().Set("X-Smtdram-Skipped-Cycles", fmt.Sprintf("%d", skip.Skipped))
			w.Header().Set("X-Smtdram-Wall-Cycles", fmt.Sprintf("%d", skip.Wall))
			w.Header().Set("X-Smtdram-Skiprate", fmt.Sprintf("%.4f", skip.Rate))
		}
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(result)
	case StateFailed:
		writeErr(w, http.StatusInternalServerError, errMsg)
	case StateCancelled:
		writeErr(w, http.StatusGone, "job was cancelled")
	default:
		writeErr(w, http.StatusConflict, fmt.Sprintf("job is %s; poll until done", state))
	}
}

func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}

	// Detach from the flight first so a concurrent completion cannot race a
	// double cancel; the last job off a flight cancels the simulation.
	s.mu.Lock()
	fl := j.flight
	var cancelFlight bool
	if fl != nil {
		j.flight = nil
		for i, jj := range fl.jobs {
			if jj == j {
				fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
				break
			}
		}
		fl.refs--
		cancelFlight = fl.refs == 0
	}
	s.mu.Unlock()

	j.mu.Lock()
	already := j.state.Terminal()
	if !already {
		j.state = StateCancelled
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
	dur := time.Since(j.created)
	j.mu.Unlock()

	if !already {
		s.releaseSlot(j)
		s.count(s.mCancelled)
		s.journalAppend(store.Record{Type: store.RecCancelled, Job: j.id, Kind: j.kind, FP: j.fp})
		j.span.SetAttr("state", string(StateCancelled))
		j.span.End()
		s.log.Info("job cancelled", "job", j.id, "flight", j.flightID,
			"dur", dur.Truncate(time.Millisecond), "flight_cancelled", cancelFlight)
	}
	if cancelFlight {
		fl.cancel()
	}
	writeJSON(w, http.StatusOK, j.status(false))
}

// subscribe registers an SSE listener on j. The returned channel receives
// progress samples and is closed at the job's terminal transition; a nil
// channel means the job is already terminal. cancelSub removes the
// registration (client hung up early).
func (j *job) subscribe() (ch chan []byte, cancelSub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return nil, func() {}
	}
	ch = make(chan []byte, 16)
	j.subs = append(j.subs, ch)
	return ch, func() {
		j.mu.Lock()
		defer j.mu.Unlock()
		for i, c := range j.subs {
			if c == ch {
				j.subs = append(j.subs[:i], j.subs[i+1:]...)
				return
			}
		}
	}
}

// handleJobEvents streams a job's life as server-sent events: zero or more
// `progress` events (core.Progress samples: cycle, committed, IPC,
// outstanding requests, pending events, skip stats), then exactly one
// terminal event named after the final state (`done`, `failed`, or
// `cancelled`) carrying the JobStatus.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	ch, cancelSub := j.subscribe()
	defer cancelSub()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	emit := func(event string, data []byte) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	terminal := func() {
		st := j.status(false) // results can be large; clients fetch them via /result
		b, _ := json.Marshal(st)
		emit(string(st.State), b)
	}

	if ch == nil { // already terminal
		terminal()
		return
	}
	for {
		select {
		case sample, open := <-ch:
			if !open {
				terminal()
				return
			}
			emit("progress", sample)
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.syncCheckpointMetrics() // fold the checkpoint cache's tallies in first
	// Fleet nodes label every sample with their identity so a multi-node
	// scrape stays distinguishable; standalone daemons render unlabeled,
	// byte-compatible with pre-fleet scrapes.
	var labels []obs.Label
	if s.cfg.NodeID != "" {
		labels = []obs.Label{{Key: "node_id", Val: s.cfg.NodeID}, {Key: "role", Val: s.Role()}}
	}
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	_ = s.reg.WritePrometheusLabeled(w, "smtdram", uint64(time.Since(s.startedAt)/time.Second), labels)
}

// handleHealthz is pure liveness: 200 whenever the process can serve HTTP at
// all — during drain, during recovery, in store-degraded mode. Orchestrators
// restart on liveness failure; everything condition-shaped lives in /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}{Status: "ok", UptimeSeconds: time.Since(s.startedAt).Seconds()})
}

// handleReadyz is readiness: 503 (with the reasons) while draining, while
// journal recovery is still re-running interrupted jobs, or while the
// durable store has degraded to memory-only mode — states where a load
// balancer should route elsewhere even though the process is alive.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	rep := s.readiness()
	code := http.StatusOK
	if !rep.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}
