package server

import "container/list"

// lruCache is a fixed-capacity least-recently-used result cache keyed by
// configuration fingerprint. Values are the marshalled core.Result (or
// rendered figure) bytes — immutable once stored, so readers can hand them
// straight to responses without copying. Not safe for concurrent use; the
// server guards it with its own mutex.
type lruCache struct {
	cap     int
	order   *list.List // front = most recent; values are *lruEntry
	entries map[string]*list.Element
}

type lruEntry struct {
	key string
	val []byte
	// skip is the producing run's two-speed-clock summary (nil for figure
	// sweeps and for results cached before skip reporting existed). Cached
	// answers replay it so a cache hit reports the same skip statistics the
	// original run did — the payload bytes stay untouched either way.
	skip *SkipInfo
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached bytes (and the producing run's skip summary, if any)
// for key, promoting the entry on a hit. Hit and miss accounting lives in the
// server's registry counters, not here: the server counts per submission,
// while a single submission may probe the cache twice (once before and once
// after admission).
func (c *lruCache) get(key string) ([]byte, *SkipInfo, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*lruEntry)
	return e.val, e.skip, true
}

// add stores key's bytes and skip summary, evicting the least-recently-used
// entry when full. Re-adding an existing key refreshes its value and recency.
func (c *lruCache) add(key string, val []byte, skip *SkipInfo) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*lruEntry)
		e.val, e.skip = val, skip
		c.order.MoveToFront(el)
		return
	}
	for len(c.entries) >= c.cap {
		tail := c.order.Back()
		if tail == nil {
			break
		}
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*lruEntry).key)
	}
	c.entries[key] = c.order.PushFront(&lruEntry{key: key, val: val, skip: skip})
}

func (c *lruCache) len() int { return len(c.entries) }
