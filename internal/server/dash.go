package server

import "net/http"

// handleDash serves the live serving-health dashboard: a single
// zero-dependency HTML page that subscribes to /debug/dash/stream
// (server-sent Stats snapshots, one per second) and renders queue depth,
// worker occupancy, cache hit ratio, per-phase latency percentiles, and
// sparklines of the last two minutes — no build step, no external assets.
func (s *Server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(dashHTML))
}

const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>smtdramd — serving dashboard</title>
<style>
  :root { color-scheme: dark; }
  body { font: 14px/1.5 system-ui, sans-serif; background: #14161a; color: #dde3ea; margin: 2rem; }
  h1 { font-size: 1.2rem; font-weight: 600; }
  h1 small { color: #7d8794; font-weight: 400; margin-left: .75rem; }
  .grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(230px, 1fr)); gap: 1rem; margin-top: 1rem; }
  .card { background: #1c2026; border: 1px solid #2a3038; border-radius: 8px; padding: .9rem 1.1rem; }
  .card h2 { font-size: .75rem; text-transform: uppercase; letter-spacing: .08em; color: #8a93a0; margin: 0 0 .35rem; }
  .big { font-size: 1.7rem; font-variant-numeric: tabular-nums; }
  .sub { color: #7d8794; font-size: .85rem; }
  svg.spark { width: 100%; height: 42px; margin-top: .4rem; }
  svg.spark polyline { fill: none; stroke: #4fa3ff; stroke-width: 1.5; }
  table { border-collapse: collapse; width: 100%; margin-top: .3rem; font-variant-numeric: tabular-nums; }
  th, td { text-align: right; padding: .15rem .5rem; font-size: .85rem; }
  th:first-child, td:first-child { text-align: left; }
  th { color: #8a93a0; font-weight: 500; }
  #state { float: right; font-size: .8rem; color: #7d8794; }
  #state.live { color: #5dd39e; }
  a { color: #4fa3ff; }
</style>
</head>
<body>
<h1>smtdramd <small>serving dashboard</small><span id="state">connecting…</span></h1>
<div class="sub">
  <a href="/v1/stats">/v1/stats</a> · <a href="/metrics">/metrics</a> ·
  <a href="/debug/trace">/debug/trace</a> (load in <a href="https://ui.perfetto.dev">Perfetto</a>)
</div>
<div class="grid">
  <div class="card"><h2>Queue</h2><div class="big" id="queue">–</div>
    <div class="sub" id="queueCap"></div><svg class="spark" id="sparkQueue"></svg></div>
  <div class="card"><h2>Workers busy</h2><div class="big" id="busy">–</div>
    <div class="sub" id="busyCap"></div><svg class="spark" id="sparkBusy"></svg></div>
  <div class="card"><h2>Cache hit ratio</h2><div class="big" id="hitRatio">–</div>
    <div class="sub" id="cacheDetail"></div><svg class="spark" id="sparkHit"></svg></div>
  <div class="card"><h2>Served p95</h2><div class="big" id="p95">–</div>
    <div class="sub" id="servedDetail"></div><svg class="spark" id="sparkP95"></svg></div>
  <div class="card"><h2>Skip rate</h2><div class="big" id="skipRate">–</div>
    <div class="sub" id="skipDetail"></div><svg class="spark" id="sparkSkip"></svg></div>
  <div class="card"><h2>Warmup checkpoints</h2><div class="big" id="ckptRatio">–</div>
    <div class="sub" id="ckptDetail"></div></div>
  <div class="card"><h2>Durable store</h2><div class="big" id="storeState">–</div>
    <div class="sub" id="storeDetail"></div></div>
  <div class="card"><h2>Jobs</h2>
    <table><tbody id="jobsTable"></tbody></table></div>
  <div class="card"><h2>Go runtime</h2>
    <table><tbody id="rtTable"></tbody></table></div>
</div>
<div class="card" style="margin-top:1rem">
  <h2>Latency phases (served jobs, ms)</h2>
  <table>
    <thead><tr><th>phase</th><th>count</th><th>mean</th><th>p50</th><th>p95</th><th>p99</th><th>max</th></tr></thead>
    <tbody id="phaseTable"></tbody>
  </table>
</div>
<script>
"use strict";
const hist = { queue: [], busy: [], hit: [], p95: [], skip: [] };
const MAXPTS = 120; // two minutes at 1 Hz
function push(series, v) { series.push(v); if (series.length > MAXPTS) series.shift(); }
function spark(id, series) {
  const svg = document.getElementById(id);
  const w = svg.clientWidth || 200, h = svg.clientHeight || 42;
  const max = Math.max(1e-9, ...series);
  const pts = series.map((v, i) =>
    (i * w / Math.max(1, series.length - 1)).toFixed(1) + "," +
    (h - 2 - (v / max) * (h - 6)).toFixed(1)).join(" ");
  svg.setAttribute("viewBox", "0 0 " + w + " " + h);
  svg.innerHTML = '<polyline points="' + pts + '"/>';
}
function fmt(x, d) { return Number(x).toFixed(d === undefined ? 2 : d); }
function row(cells) { return "<tr>" + cells.map(c => "<td>" + c + "</td>").join("") + "</tr>"; }
function kv(rows) { return rows.map(r => row(r)).join(""); }
function phaseRow(name, s) {
  return row([name, s.count, fmt(s.mean_ms), fmt(s.p50_ms), fmt(s.p95_ms), fmt(s.p99_ms), fmt(s.max_ms)]);
}
function render(st) {
  document.getElementById("queue").textContent = st.queue.depth;
  document.getElementById("queueCap").textContent = "of " + st.queue.capacity + " slots";
  document.getElementById("busy").textContent = st.workers.busy;
  document.getElementById("busyCap").textContent = "of " + st.workers.total + " workers";
  document.getElementById("hitRatio").textContent = fmt(st.cache.hit_ratio * 100, 1) + "%";
  document.getElementById("cacheDetail").textContent =
    st.cache.hits + " hits / " + st.cache.misses + " misses / " + st.cache.entries + " entries";
  document.getElementById("p95").textContent = fmt(st.end_to_end.served.p95_ms, 1) + " ms";
  document.getElementById("servedDetail").textContent =
    st.end_to_end.served.count + " served, p99 " + fmt(st.end_to_end.served.p99_ms, 1) + " ms";
  document.getElementById("skipRate").textContent = fmt(st.skip.rate * 100, 1) + "%";
  document.getElementById("skipDetail").textContent =
    st.skip.sim_runs + " runs, " + st.skip.cycles_skipped + " of " + st.skip.cycles_wall + " cycles fast-forwarded";
  const ck = st.checkpoint;
  document.getElementById("ckptRatio").textContent = fmt(ck.hit_ratio * 100, 1) + "%";
  document.getElementById("ckptDetail").textContent =
    ck.hits + " hits / " + ck.misses + " misses / " + ck.forks + " forks · " +
    ck.entries + " entries" + (ck.bypassed ? " · " + ck.bypassed + " bypassed" : "") +
    (ck.evictions ? " · " + ck.evictions + " evicted" : "");
  const sst = st.store, rec = st.recovery;
  document.getElementById("storeState").textContent =
    !sst.configured ? "memory-only" : (sst.degraded ? "DEGRADED" : sst.entries + " entries");
  document.getElementById("storeDetail").textContent = sst.configured
    ? sst.hits + " hits / " + sst.misses + " misses / " + sst.corrupt + " corrupt · " +
      sst.journal_records + " journaled · recovery " + rec.rehydrated + " rehydrated, " +
      rec.reenqueued + " re-enqueued" + (rec.outstanding ? " (" + rec.outstanding + " running)" : "")
    : "start with -data-dir for crash durability";
  document.getElementById("jobsTable").innerHTML = kv([
    ["accepted", st.jobs.accepted], ["completed", st.jobs.completed],
    ["deduped", st.jobs.deduped], ["cached", st.jobs.cached],
    ["failed", st.jobs.failed], ["cancelled", st.jobs.cancelled],
    ["rejected", st.jobs.rejected], ["tracked", st.jobs.tracked]]);
  document.getElementById("rtTable").innerHTML = kv([
    ["goroutines", st.runtime.goroutines],
    ["heap", fmt(st.runtime.heap_alloc_bytes / 1048576, 1) + " MiB"],
    ["GC cycles", st.runtime.gc_cycles],
    ["GC pause total", fmt(st.runtime.gc_pause_total_seconds * 1000, 1) + " ms"],
    ["sched p99", fmt(st.runtime.sched_latency_p99_ms, 3) + " ms"],
    ["trace spans", st.trace.spans + (st.trace.spans_dropped ? " (+" + st.trace.spans_dropped + " dropped)" : "")]]);
  document.getElementById("phaseTable").innerHTML =
    phaseRow("admission", st.phases.admission) + phaseRow("queue", st.phases.queue) +
    phaseRow("run", st.phases.run) + phaseRow("respond", st.phases.respond) +
    phaseRow("pool wait", st.pool_wait) + phaseRow("end-to-end", st.end_to_end.served) +
    phaseRow("cache hit", st.end_to_end.cache);
  push(hist.queue, st.queue.depth); push(hist.busy, st.workers.busy);
  push(hist.hit, st.cache.hit_ratio); push(hist.p95, st.end_to_end.served.p95_ms);
  push(hist.skip, st.skip.rate);
  spark("sparkQueue", hist.queue); spark("sparkBusy", hist.busy);
  spark("sparkHit", hist.hit); spark("sparkP95", hist.p95);
  spark("sparkSkip", hist.skip);
}
const es = new EventSource("/debug/dash/stream");
const state = document.getElementById("state");
es.addEventListener("stats", ev => {
  state.textContent = "live"; state.className = "live";
  render(JSON.parse(ev.data));
});
es.onerror = () => { state.textContent = "reconnecting…"; state.className = ""; };
</script>
</body>
</html>
`
