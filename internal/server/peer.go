package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"smtdram/internal/store"
)

// This file is the daemon's fleet surface (DESIGN §16): the hooks a fleet
// wires in (cache peering, tenant/priority admission) and the two endpoints
// other fleet members call (peer entry transfer, identity probe). The server
// never imports internal/fleet — fleet implements these interfaces and
// cmd/smtdramd connects the two — so the dependency arrow stays one-way.

// PeerFetcher consults fleet peers for a durable-store entry on a local
// miss. A hit returns the entry's payload and meta sidecar, already
// CRC-verified against the store framing; ErrPeerMiss is a clean miss, and an
// error wrapping ErrPeerCorrupt reports an entry that failed verification
// (counted, then treated as a miss — corrupt bytes are never served).
type PeerFetcher interface {
	Fetch(ctx context.Context, key string) (payload, meta []byte, err error)
}

// ErrPeerMiss reports that no peer holds the key.
var ErrPeerMiss = errors.New("peer: entry not found")

// ErrPeerCorrupt reports a peer entry that failed CRC verification.
var ErrPeerCorrupt = errors.New("peer: entry corrupt")

// Admission layers per-tenant quotas and two-level priority in front of the
// bounded queue. Charge is spent by every submission (cached answers
// included: the quota prices requests, not simulations); Acquire gates only
// jobs that take a queue slot, and its release runs exactly once when the
// slot frees.
type Admission interface {
	Charge(tenant string) (ok bool, retryAfter time.Duration)
	Acquire(high bool) (release func(), ok bool)
}

// Role reports how this daemon presents in a fleet: "worker" when it has a
// node identity, "single" otherwise. (The coordinator is its own process and
// reports "coordinator".)
func (s *Server) Role() string {
	if s.cfg.NodeID != "" {
		return "worker"
	}
	return "single"
}

// peerGet is the peering tier of the cache ladder (LRU → disk → peer →
// compute): on a local miss, ask the fleet for the key's previous owner's
// copy. A hit is written through to the local store so the entry's new owner
// serves it from disk next time.
func (s *Server) peerGet(ctx context.Context, fp string) ([]byte, *SkipInfo, bool) {
	if s.cfg.PeerFetch == nil {
		return nil, nil, false
	}
	timeout := s.cfg.PeerTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	payload, meta, err := s.cfg.PeerFetch.Fetch(ctx, fp)
	switch {
	case err == nil:
		s.count(s.mPeerHits)
		s.log.Info("peer cache hit", "fp", fp)
		s.storePut(fp, payload, skipFromMeta(meta))
		return payload, skipFromMeta(meta), true
	case errors.Is(err, ErrPeerCorrupt):
		s.count(s.mPeerCorrupt)
		s.count(s.mPeerMisses)
		s.log.Warn("peer entry corrupt; recomputing locally", "fp", fp, "err", err)
	default:
		s.count(s.mPeerMisses)
	}
	return nil, nil, false
}

// handlePeerResult serves one durable entry to a fleet peer in the store's
// CRC-framed entry format (GET /v1/peer/result?key=K). The LRU answers
// first; the disk tier backs it. A corrupt on-disk entry has already been
// quarantined by store.Get and reports as a miss here — a peer never
// receives bytes the local daemon would not serve itself.
func (s *Server) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeErr(w, http.StatusBadRequest, "missing key parameter")
		return
	}
	s.mu.Lock()
	payload, sk, ok := s.cache.get(key)
	s.mu.Unlock()
	if !ok {
		if payload, sk, ok = s.storeGet(key); !ok {
			s.count(s.mPeerServeMisses)
			writeErr(w, http.StatusNotFound, "no entry for key")
			return
		}
	}
	var meta []byte
	if sk != nil {
		meta, _ = json.Marshal(storeMeta{Skip: sk})
	}
	s.count(s.mPeerServed)
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(store.EncodeEntry(key, meta, payload))
}

// NodeSelf is the /v1/fleet/self payload: the identity probe the coordinator
// uses to learn a worker's node id and readiness in one round trip.
type NodeSelf struct {
	NodeID        string   `json:"node_id"`
	Role          string   `json:"role"`
	Ready         bool     `json:"ready"`
	Reasons       []string `json:"reasons,omitempty"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}

func (s *Server) handleFleetSelf(w http.ResponseWriter, r *http.Request) {
	rep := s.readiness()
	writeJSON(w, http.StatusOK, NodeSelf{
		NodeID:        s.cfg.NodeID,
		Role:          s.Role(),
		Ready:         rep.Ready,
		Reasons:       rep.Reasons,
		UptimeSeconds: time.Since(s.startedAt).Seconds(),
	})
}
