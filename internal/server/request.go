package server

import (
	"context"
	"fmt"
	"io"
	"strings"

	"smtdram/internal/addrmap"
	"smtdram/internal/checkpoint"
	"smtdram/internal/core"
	"smtdram/internal/cpu"
	"smtdram/internal/dram"
	"smtdram/internal/faults"
	"smtdram/internal/figures"
	"smtdram/internal/memctrl"
	"smtdram/internal/workload"
)

// SimRequest is the wire form of one simulation submission: the same knobs
// cmd/smtdram exposes as flags, with the same defaults, so a request that
// mirrors a CLI invocation builds the identical core.Config — the root of the
// byte-identical guarantee. Zero values mean "default", matching the CLI.
type SimRequest struct {
	// Mix names a Table 2 mix (overrides Apps), Apps lists one application
	// per hardware thread.
	Mix  string   `json:"mix,omitempty"`
	Apps []string `json:"apps,omitempty"`
	// Channels (default 2) and Gang (default 1) shape the memory system.
	Channels int `json:"channels,omitempty"`
	Gang     int `json:"gang,omitempty"`
	// DRAM is "ddr" (default) or "rdram".
	DRAM string `json:"dram,omitempty"`
	// Scheme is "xor" (default) or "page".
	Scheme string `json:"scheme,omitempty"`
	// PageMode is "open" (default) or "close".
	PageMode string `json:"pagemode,omitempty"`
	// Policy is the access-scheduling policy (default "hit-first").
	Policy string `json:"policy,omitempty"`
	// Fetch is the SMT fetch policy (default "dwarn").
	Fetch string `json:"fetch,omitempty"`
	// Warmup and Target are per-thread instruction counts (defaults 100 000
	// and 200 000, the CLI's). Pointers so an explicit 0 warmup survives.
	Warmup *uint64 `json:"warmup,omitempty"`
	Target *uint64 `json:"target,omitempty"`
	// Seed drives the workload generators (default 42).
	Seed *int64 `json:"seed,omitempty"`
	// Faults is a fault-injection spec in the CLI's -faults syntax.
	Faults string `json:"faults,omitempty"`
	// Trace additionally records the simulator's cycle-domain request
	// lifecycle, retrievable merged with the job's wall-clock spans at
	// GET /v1/jobs/{id}/trace. Tracing is observation-only — the result
	// bytes are identical either way — but traced and untraced submissions
	// get separate cache/dedup keys so an untraced cached result is never
	// served where a trace was asked for.
	Trace bool `json:"trace,omitempty"`
}

// Config materializes the request into a validated core.Config.
func (r SimRequest) Config() (core.Config, error) {
	names := r.Apps
	if r.Mix != "" {
		m, err := workload.MixByName(r.Mix)
		if err != nil {
			return core.Config{}, err
		}
		names = m.Apps
	}
	if len(names) == 0 {
		return core.Config{}, fmt.Errorf("server: request names no applications (set apps or mix)")
	}
	// Resolve every app name now so a typo is a 400, not a failed job.
	for _, name := range names {
		if _, err := workload.ByName(name); err != nil {
			return core.Config{}, err
		}
	}
	cfg := core.DefaultConfig(names...)
	if r.Warmup != nil {
		cfg.WarmupInstr = *r.Warmup
	}
	if r.Target != nil {
		cfg.TargetInstr = *r.Target
	}
	if r.Seed != nil {
		cfg.Seed = *r.Seed
	}
	if r.Channels != 0 {
		cfg.Mem.PhysChannels = r.Channels
	}
	if r.Gang != 0 {
		cfg.Mem.Gang = r.Gang
	}
	var err error
	if r.DRAM != "" {
		if cfg.Mem.Kind, err = core.ParseDRAMKind(r.DRAM); err != nil {
			return core.Config{}, err
		}
	}
	if r.Policy != "" {
		if cfg.Mem.Policy, err = memctrl.ParsePolicy(r.Policy); err != nil {
			return core.Config{}, err
		}
	}
	if r.Fetch != "" {
		if cfg.CPU.Policy, err = cpu.ParseFetchPolicy(r.Fetch); err != nil {
			return core.Config{}, err
		}
	}
	switch strings.ToLower(r.Scheme) {
	case "", "xor":
		cfg.Mem.Scheme = addrmap.XOR
	case "page":
		cfg.Mem.Scheme = addrmap.Page
	default:
		return core.Config{}, fmt.Errorf("server: unknown mapping scheme %q (want page or xor)", r.Scheme)
	}
	switch strings.ToLower(r.PageMode) {
	case "", "open":
		cfg.Mem.PageMode = dram.OpenPage
	case "close":
		cfg.Mem.PageMode = dram.ClosePage
	default:
		return core.Config{}, fmt.Errorf("server: unknown page mode %q (want open or close)", r.PageMode)
	}
	if cfg.Faults, err = faults.Parse(r.Faults); err != nil {
		return core.Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return core.Config{}, err
	}
	return cfg, nil
}

// simShardKey is the cache/dedup/routing key for one simulation
// configuration. Traced submissions get a separate key: the result bytes are
// identical, but a trace must reach a real run to collect cycle events.
func simShardKey(cfg core.Config, traced bool) string {
	fp := "sim|" + cfg.Fingerprint()
	if traced {
		fp += "|traced"
	}
	return fp
}

// ShardKey returns the key the daemon caches, dedups, and — in a fleet —
// routes this request by: the same Config.Fingerprint-derived string at
// every layer, which is what keeps LRU locality and checkpoint-prefix reuse
// intact across scale-out. The coordinator calls this to pick a ring owner
// without running anything.
func (r SimRequest) ShardKey() (string, error) {
	cfg, err := r.Config()
	if err != nil {
		return "", err
	}
	return simShardKey(cfg, r.Trace), nil
}

// FigRequest submits one figure sweep from the paper's evaluation.
type FigRequest struct {
	// Fig selects the sweep: "table2" or "1".."10".
	Fig string `json:"fig"`
	// Warmup, Target, Seed mirror figures.Options (0 = that package's
	// defaults: 100k/100k/42).
	Warmup uint64 `json:"warmup,omitempty"`
	Target uint64 `json:"target,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// key is the result-cache key. Jobs is deliberately absent: figure output is
// byte-identical at any worker count, so all concurrency levels share one
// cache entry.
func (r FigRequest) key() string {
	return fmt.Sprintf("fig=%s warm=%d target=%d seed=%d", r.Fig, r.Warmup, r.Target, r.Seed)
}

// ShardKey is the figure sweep's cache/routing key (see SimRequest.ShardKey).
func (r FigRequest) ShardKey() (string, error) {
	if err := (FigRequest{Fig: r.Fig}).validate(); err != nil {
		return "", err
	}
	return "fig|" + r.key(), nil
}

// validate rejects unknown figure names without running anything.
func (r FigRequest) validate() error {
	switch r.Fig {
	case "table2", "1", "2", "3", "4", "5", "6", "7", "8", "9", "10":
		return nil
	}
	return fmt.Errorf("server: unknown figure %q (want table2 or 1..10)", r.Fig)
}

// run executes the figure sweep with the given internal parallelism, writing
// the rendered table to w. ctx aborts the sweep: queued simulations never
// run, and running ones stop at their next watchdog boundary. ckpts is the
// daemon's warmup-checkpoint cache (nil runs every point cold); output is
// byte-identical either way.
func (r FigRequest) run(ctx context.Context, jobs int, w io.Writer, ckpts *checkpoint.Cache) error {
	o := figures.Options{Warmup: r.Warmup, Target: r.Target, Seed: r.Seed, Jobs: jobs, Ctx: ctx, Checkpoints: ckpts}
	switch r.Fig {
	case "table2":
		figures.PrintTable2(w)
		return nil
	case "1":
		rows, err := figures.Fig1(o)
		if err != nil {
			return err
		}
		figures.PrintFig1(w, rows)
	case "2":
		cells, err := figures.Fig2(o)
		if err != nil {
			return err
		}
		figures.PrintFig2(w, cells)
	case "3":
		rows, err := figures.Fig3(o)
		if err != nil {
			return err
		}
		figures.PrintFig3(w, rows)
	case "4", "5":
		rows, err := figures.Fig4and5(o)
		if err != nil {
			return err
		}
		if r.Fig == "4" {
			figures.PrintFig4(w, rows)
		} else {
			figures.PrintFig5(w, rows)
		}
	case "6":
		rows, err := figures.Fig6(o)
		if err != nil {
			return err
		}
		figures.PrintFig6(w, rows)
	case "7":
		rows, err := figures.Fig7(o)
		if err != nil {
			return err
		}
		figures.PrintFig7(w, rows)
	case "8":
		rows, err := figures.Fig8(o)
		if err != nil {
			return err
		}
		figures.PrintMapping(w, "Figure 8: row-buffer miss rates, 2-channel DDR", rows)
	case "9":
		rows, err := figures.Fig9(o)
		if err != nil {
			return err
		}
		figures.PrintMapping(w, "Figure 9: row-buffer miss rates, 2-channel Direct Rambus", rows)
	case "10":
		cells, err := figures.Fig10(o)
		if err != nil {
			return err
		}
		figures.PrintFig10(w, cells)
	default:
		return fmt.Errorf("server: unknown figure %q (want table2 or 1..10)", r.Fig)
	}
	return nil
}
