// Package chaostest kill-9s the real smtdramd binary at randomized points in
// the job lifecycle and checks the durability contract after every restart:
//
//   - no lost jobs: every submission the daemon acknowledged with 202 is
//     still known after recovery, and eventually reaches done;
//   - no duplicated completions: each job id resolves to exactly one result;
//   - byte-identical results: everything served after any number of crashes
//     equals json.Marshal(core.Run(cfg)) for the same configuration — the
//     same oracle the in-process server tests use.
//
// The harness builds cmd/smtdramd with the local toolchain, launches it as a
// subprocess against a shared -data-dir, drives it over HTTP with the client
// package, and SIGKILLs it with randomized timing: mid-run, mid-write, and —
// on a fraction of cycles — a double-kill landing mid-recovery. Determinism
// is what makes the oracle cheap: a fingerprint names its result forever, so
// "recovered correctly" is a byte comparison, not a heuristic.
package chaostest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"smtdram/internal/core"
	"smtdram/internal/server"
	"smtdram/internal/server/client"
	"smtdram/internal/store"
)

// buildDaemon compiles cmd/smtdramd into dir and returns the binary path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "smtdramd")
	cmd := exec.Command("go", "build", "-o", bin, "smtdram/cmd/smtdramd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building smtdramd: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves an ephemeral port and releases it for the daemon. The
// same port is reused across restarts so job handles stay valid URLs.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// daemon is one subprocess incarnation of smtdramd.
type daemon struct {
	cmd *exec.Cmd
}

// startDaemon launches the binary against dataDir and waits for liveness.
// Readiness may lag (recovery re-runs), which is exactly what the chaos
// cycles want to interrupt.
func startDaemon(t *testing.T, bin, dataDir string, port int) *daemon {
	t.Helper()
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	deadline := time.Now().Add(15 * time.Second)
	for {
		cmd := exec.Command(bin, "-addr", addr, "-data-dir", dataDir, "-quiet", "-drain-timeout", "5s")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("starting smtdramd: %v", err)
		}
		d := &daemon{cmd: cmd}
		if d.waitLive(port, 5*time.Second) {
			return d
		}
		// Bind race with the previous incarnation's dying socket: reap and
		// retry until the overall deadline.
		d.kill()
		if time.Now().After(deadline) {
			t.Fatalf("smtdramd never became live on %s", addr)
		}
	}
}

func (d *daemon) waitLive(port int, timeout time.Duration) bool {
	c := client.New(fmt.Sprintf("http://127.0.0.1:%d", port))
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return true
		}
		if d.cmd.ProcessState != nil {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

// kill SIGKILLs the incarnation and reaps it.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_, _ = d.cmd.Process.Wait()
}

// stop shuts the incarnation down gracefully (SIGTERM, drain) so the final
// verification daemon leaves a clean journal behind.
func (d *daemon) stop() {
	_ = d.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan struct{})
	go func() { _, _ = d.cmd.Process.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		d.kill()
	}
}

// workload is the request pool: distinct fingerprints, each small enough that
// a kill can land before, during, or after its run.
func workload() []server.SimRequest {
	var reqs []server.SimRequest
	for _, n := range []uint64{10_000, 14_000, 18_000, 22_000, 26_000, 30_000} {
		w, tgt := uint64(2_000), n
		reqs = append(reqs, server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt})
	}
	return reqs
}

// controls runs every workload request in-process: the byte-identity oracle.
func controls(t *testing.T, reqs []server.SimRequest) [][]byte {
	t.Helper()
	out := make([][]byte, len(reqs))
	for i, req := range reqs {
		cfg, err := req.Config()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out[i], err = json.Marshal(res); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// accepted is one job the daemon acknowledged with 202 and must never lose.
type accepted struct {
	id  string
	req int // workload index
}

// submitSome pushes a random prefix of the workload at the daemon. Jobs
// answered synchronously from cache (202-free path) are verified on the spot
// and not tracked: a cache answer delivers the result in the same response,
// so there is nothing left to lose. 429s are retried briefly; a dead daemon
// (killed mid-loop by the caller's timer on a previous cycle) just ends the
// batch.
func submitSome(t *testing.T, c *client.Client, rng *rand.Rand, reqs []server.SimRequest, want [][]byte) []accepted {
	t.Helper()
	var acks []accepted
	n := 1 + rng.Intn(len(reqs))
	for _, i := range rng.Perm(len(reqs))[:n] {
		var st server.JobStatus
		var err error
		for attempt := 0; attempt < 20; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			st, err = c.SubmitSim(ctx, reqs[i])
			cancel()
			var ra *client.RetryAfterError
			if errors.As(err, &ra) {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			break
		}
		if err != nil {
			return acks // daemon gone or still saturated; the cycle moves on
		}
		if st.Cached {
			if string(st.Result) != string(want[i]) {
				t.Fatalf("cached answer for workload[%d] differs from direct run", i)
			}
			continue
		}
		acks = append(acks, accepted{id: st.ID, req: i})
	}
	return acks
}

// TestKill9Recovery is the chaos loop: randomized SIGKILL/restart cycles with
// full-workload verification at the end. 20 cycles normally, 6 under -short.
func TestKill9Recovery(t *testing.T) {
	if testing.Short() {
		t.Log("short mode: 6 chaos cycles")
	}
	cycles := 20
	if testing.Short() {
		cycles = 6
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chaos seed %d", seed)

	bin := buildDaemon(t, t.TempDir())
	dataDir := t.TempDir()
	port := freePort(t)
	url := fmt.Sprintf("http://127.0.0.1:%d", port)
	c := client.New(url)

	reqs := workload()
	want := controls(t, reqs)
	tracked := map[string]int{} // job id -> workload index, every 202 ever issued

	for cycle := 0; cycle < cycles; cycle++ {
		d := startDaemon(t, bin, dataDir, port)

		for _, a := range submitSome(t, c, rng, reqs, want) {
			if prev, dup := tracked[a.id]; dup {
				t.Fatalf("cycle %d: job id %s issued twice (workload %d and %d)", cycle, a.id, prev, a.req)
			}
			tracked[a.id] = a.req
		}

		// Let the kill land anywhere in the lifecycle: before the first run
		// starts, mid-run, or mid-result-write.
		time.Sleep(time.Duration(rng.Intn(60)) * time.Millisecond)
		d.kill()

		// A quarter of the cycles kill again almost immediately after
		// restart, landing mid-recovery (journal rotation, re-enqueued runs).
		if rng.Intn(4) == 0 {
			d = startDaemon(t, bin, dataDir, port)
			time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			d.kill()
		}
	}

	// Final incarnation: wait for full readiness (recovery re-runs drained),
	// then verify the whole contract.
	d := startDaemon(t, bin, dataDir, port)
	defer d.kill()
	ctx := context.Background()
	waitReady(t, c, 60*time.Second)

	for id, i := range tracked {
		st, err := c.Wait(ctx, id, 0)
		if err != nil {
			t.Errorf("job %s (workload %d) lost after recovery: %v", id, i, err)
			continue
		}
		if st.State != server.StateDone {
			t.Errorf("job %s (workload %d) recovered to %s (%s), want done", id, i, st.State, st.Error)
			continue
		}
		got, err := c.Result(ctx, id)
		if err != nil {
			t.Errorf("job %s result: %v", id, err)
			continue
		}
		if string(got) != string(want[i]) {
			t.Errorf("job %s (workload %d): result differs from never-killed control", id, i)
		}
	}
	t.Logf("verified %d acknowledged jobs across %d kill cycles", len(tracked), cycles)

	// Warm-restart measurement: resubmit the full workload; every answer must
	// now come straight from the store/LRU ladder.
	warmHits := 0
	for i, req := range reqs {
		st, err := c.SubmitSim(ctx, req)
		if err != nil {
			t.Fatalf("warm resubmission of workload[%d]: %v", i, err)
		}
		if st.Cached {
			warmHits++
			if string(st.Result) != string(want[i]) {
				t.Errorf("warm cached answer for workload[%d] differs from control", i)
			}
		}
	}
	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("warm restart: %d/%d resubmissions served from cache ladder; store entries=%d hits=%d corrupt=%d",
		warmHits, len(reqs), stats.Store.Entries, stats.Store.Hits, stats.Store.Corrupt)
	if warmHits != len(reqs) {
		t.Errorf("warm restart served %d/%d from cache, want all (store degraded=%v)",
			warmHits, len(reqs), stats.Store.Degraded)
	}

	writeBench(t, benchReport{
		Cycles:          cycles,
		Seed:            seed,
		TrackedJobs:     len(tracked),
		WorkloadSize:    len(reqs),
		WarmCacheHits:   warmHits,
		WarmHitRatio:    float64(warmHits) / float64(len(reqs)),
		StoreEntries:    stats.Store.Entries,
		StoreHits:       stats.Store.Hits,
		StoreCorrupt:    stats.Store.Corrupt,
		JournalReplayed: stats.Recovery.ReplayedRecords,
		JobsRehydrated:  stats.Recovery.Rehydrated,
		JobsReenqueued:  stats.Recovery.Reenqueued,
	})

	// Clean shutdown, then a fresh recovery must compact the journal to one
	// record per live job — the no-unbounded-growth half of the contract.
	d.stop()
	d2 := startDaemon(t, bin, dataDir, port)
	waitReady(t, c, 60*time.Second)
	d2.stop()
	recs, err := store.ReadJournal(filepath.Join(dataDir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	perJob := map[string]int{}
	for _, r := range recs {
		perJob[r.Job]++
	}
	for id, n := range perJob {
		if n != 1 {
			t.Errorf("compacted journal holds %d records for %s, want 1", n, id)
		}
	}
}

func waitReady(t *testing.T, c *client.Client, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		rep, err := c.Readyz(ctx)
		cancel()
		if err == nil && rep.Ready {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became ready (err=%v, reasons=%v)", err, rep.Reasons)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// benchReport is the BENCH_durable.json payload: the warm-restart cache-hit
// ratio the acceptance criteria ask for, plus the recovery tallies behind it.
type benchReport struct {
	Cycles          int     `json:"cycles"`
	Seed            int64   `json:"seed"`
	TrackedJobs     int     `json:"tracked_jobs"`
	WorkloadSize    int     `json:"workload_size"`
	WarmCacheHits   int     `json:"warm_cache_hits"`
	WarmHitRatio    float64 `json:"warm_hit_ratio"`
	StoreEntries    int     `json:"store_entries"`
	StoreHits       uint64  `json:"store_hits"`
	StoreCorrupt    uint64  `json:"store_corrupt"`
	JournalReplayed int     `json:"journal_replayed_records"`
	JobsRehydrated  int     `json:"jobs_rehydrated"`
	JobsReenqueued  int     `json:"jobs_reenqueued"`
}

// writeBench records the chaos run's measurements when CHAOS_BENCH_OUT names
// a destination file (how BENCH_durable.json at the repo root is produced).
func writeBench(t *testing.T, rep benchReport) {
	t.Helper()
	path := os.Getenv("CHAOS_BENCH_OUT")
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("bench report written to %s", path)
}
