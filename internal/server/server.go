// Package server is the simulation-as-a-service daemon behind cmd/smtdramd:
// an HTTP/JSON API that accepts simulation and figure-sweep submissions,
// runs them on a bounded worker pool, and serves results from a
// fingerprint-keyed LRU cache with single-flight deduplication of identical
// in-flight requests.
//
// The serving contract mirrors the CLI exactly: a submitted configuration
// produces a core.Result byte-identical to `smtdram -json` with the same
// knobs, because both paths build the same core.Config and marshal the same
// struct. On top of that the daemon adds the serving machinery a sweep
// workload wants: admission control (429 + Retry-After when the queue is
// full), request dedup (two identical in-flight submissions share one
// simulation), result caching (a repeated configuration is answered without
// simulating), per-job cancellation threaded into the run loop, streaming
// progress over SSE, Prometheus metrics, and graceful drain.
//
// Endpoints:
//
//	POST   /v1/sim             submit a simulation (SimRequest) -> JobStatus
//	POST   /v1/figures         submit a figure sweep (FigRequest) -> JobStatus
//	GET    /v1/jobs/{id}       poll a job -> JobStatus (result inline when done)
//	GET    /v1/jobs/{id}/result raw result bytes (the byte-identical payload)
//	GET    /v1/jobs/{id}/events SSE progress stream (progress*, then done)
//	DELETE /v1/jobs/{id}       cancel a queued or running job
//	GET    /v1/jobs/{id}/trace Chrome trace_event JSON for one job (wall + cycle domains)
//	GET    /v1/stats           JSON stats snapshot (per-phase latency percentiles)
//	GET    /metrics            Prometheus text exposition
//	GET    /healthz            pure liveness (200 whenever the process serves)
//	GET    /readyz             readiness: 503 during drain, journal recovery, or store-degraded mode
//	GET    /debug/trace        Chrome trace_event JSON of the whole span buffer
//	GET    /debug/dash         live HTML dashboard (SSE-fed)
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smtdram/internal/checkpoint"
	"smtdram/internal/core"
	"smtdram/internal/obs"
	"smtdram/internal/runner"
	"smtdram/internal/store"
)

// Config tunes the daemon.
type Config struct {
	// QueueDepth bounds how many jobs may be queued or running at once
	// (admission control; default 64). Submissions beyond it get 429.
	QueueDepth int
	// Workers bounds how many simulations run concurrently (default
	// GOMAXPROCS). Figure sweeps use the same value for their internal
	// parallelism.
	Workers int
	// CacheEntries is the result cache capacity (default 256; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// ProgressInterval is the minimum simulated-cycle gap between streamed
	// progress samples (default 10 000).
	ProgressInterval uint64
	// MaxTrackedJobs bounds the job table; the oldest finished jobs are
	// forgotten beyond it (default 4096).
	MaxTrackedJobs int
	// SpanCapacity bounds the wall-clock span buffer behind /debug/trace and
	// the per-job traces; the oldest finished spans fall off first (default
	// 8192).
	SpanCapacity int
	// Logger receives structured lifecycle logs with job/flight correlation
	// keys. Nil discards all logging.
	Logger *slog.Logger
	// DataDir enables the durability layer: a content-addressed on-disk
	// result store and a write-ahead job journal live under it, and startup
	// replays the journal to recover jobs interrupted by a crash. Empty
	// keeps the daemon memory-only.
	DataDir string
	// Fsync is the store/journal flush policy. The default (off) is durable
	// against process death — SIGKILL included — because writes have crossed
	// into the kernel; FsyncAlways additionally survives OS crash and power
	// loss.
	Fsync store.FsyncPolicy
	// CheckpointDir persists warmup checkpoints (DESIGN §15) under its own
	// content-addressed store, so figure sweeps fork warm re-runs across
	// daemon restarts. Empty keeps warmup memoization in-memory only.
	CheckpointDir string
	// CheckpointEntries bounds the in-memory checkpoint tier (default 64;
	// 0 keeps the default, negative removes the bound).
	CheckpointEntries int
	// NodeID names this daemon in a fleet (DESIGN §16). When set, job ids
	// become "j-<node>-<n>" so a coordinator can route job lookups
	// statelessly, and /metrics and /v1/stats carry node_id/role labels.
	// Must not contain '-'; empty means a standalone daemon.
	NodeID string
	// PeerFetch, when non-nil, adds the peering tier to the cache ladder:
	// on a local store miss the daemon asks fleet peers for the entry before
	// computing. internal/fleet provides the implementation.
	PeerFetch PeerFetcher
	// PeerTimeout bounds one peer fetch (default 2s).
	PeerTimeout time.Duration
	// Admission, when non-nil, layers per-tenant token buckets and two-level
	// priority admission in front of the bounded queue.
	Admission Admission
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = 10_000
	}
	if c.MaxTrackedJobs <= 0 {
		c.MaxTrackedJobs = 4096
	}
	if c.SpanCapacity <= 0 {
		c.SpanCapacity = 8192
	}
	if c.CheckpointEntries == 0 {
		c.CheckpointEntries = 64
	}
	return c
}

// State is a job's lifecycle phase.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SkipInfo is the wire form of a run's two-speed-clock summary (obs.SkipStats
// plus the derived rate). It rides beside the result — in JobStatus, in
// X-Smtdram-Skip-* headers on /result, and in the /v1/stats aggregate — never
// inside it: the result payload stays byte-identical to the CLI's -json
// output, which byte-identity gates compare against.
type SkipInfo struct {
	// Skipped is the number of cycles fast-forwarded over; Wall is the run's
	// total wall-clock simulation cycles (warmup included).
	Skipped uint64 `json:"skipped_cycles"`
	Wall    uint64 `json:"wall_cycles"`
	// Segments counts contiguous skip windows; Longest is the largest one.
	Segments uint64 `json:"segments"`
	Longest  uint64 `json:"longest"`
	// Rate is Skipped/Wall.
	Rate float64 `json:"rate"`
}

// skipInfoOf converts a run's SkipStats for the wire; nil when the run never
// engaged the two-speed clock (disabled, or a zero-cycle run).
func skipInfoOf(st obs.SkipStats) *SkipInfo {
	if st.Wall == 0 {
		return nil
	}
	return &SkipInfo{
		Skipped: st.Skipped, Wall: st.Wall,
		Segments: st.Segments, Longest: st.Longest,
		Rate: st.Rate(),
	}
}

// JobStatus is the wire form of a job.
type JobStatus struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       State  `json:"state"`
	Fingerprint string `json:"fingerprint"`
	// Cached marks a submission answered straight from the result cache;
	// Deduped marks one that joined another submission's in-flight run; Peer
	// marks a cached answer whose bytes were fetched from a fleet peer.
	Cached  bool `json:"cached,omitempty"`
	Deduped bool `json:"deduped,omitempty"`
	Peer    bool `json:"peer,omitempty"`
	// Error is set on failed jobs.
	Error string `json:"error,omitempty"`
	// Result is the raw result payload, present once State is done.
	Result json.RawMessage `json:"result,omitempty"`
	// Progress is the latest streamed progress sample, if any arrived.
	Progress json.RawMessage `json:"progress,omitempty"`
	// Skip is the run's two-speed-clock summary, present on done simulation
	// jobs (cached answers replay the producing run's). Figure sweeps, which
	// aggregate many runs, omit it.
	Skip *SkipInfo `json:"skip,omitempty"`
}

// job is one tracked submission.
type job struct {
	id      string
	kind    string // "sim" or "figure"
	fp      string
	created time.Time // submit-entry instant; anchors the phase accounting
	deduped bool
	cached  bool
	peer    bool

	// Tracing state, written under Server.mu before the job is reachable (or,
	// for simEvents, by awaitFlight under Server.mu before detaching): the
	// job's root span, its queue-wait child, the flight it rode, and — for
	// traced simulations — the cycle-domain lifecycle events correlated into
	// the per-job trace.
	span      *obs.Span
	queueSpan *obs.Span
	flightID  string
	simEvents []obs.Event
	simStart  time.Time

	// tAdmitted is set under Server.mu pre-publication; tRunStart under
	// job.mu (markRunning), or pre-publication for jobs joining a started
	// flight. With created and the finish instant they telescope: admission +
	// queue + run + respond == end-to-end, exactly.
	tAdmitted time.Time
	tRunStart time.Time

	// flight is the in-flight computation this job is attached to (nil once
	// resolved or detached). Guarded by Server.mu.
	flight *flight

	mu        sync.Mutex
	state     State
	result    []byte
	errMsg    string
	progress  []byte
	skip      *SkipInfo // set with result (or pre-publication for cached jobs)
	subs      []chan []byte
	slotFreed bool
	// classRelease returns the job's priority-class slot (Config.Admission);
	// releaseSlot runs it exactly once, with the admission token.
	classRelease func()
}

// status snapshots the job for the wire. includeResult controls whether the
// (possibly large) result payload rides along.
func (j *job) status(includeResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: j.state, Fingerprint: j.fp,
		Cached: j.cached, Deduped: j.deduped, Peer: j.peer, Error: j.errMsg,
		Progress: j.progress,
	}
	if j.state == StateDone {
		st.Skip = j.skip
	}
	if includeResult && j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// flight is one in-flight computation, shared by every job submitted with
// the same fingerprint while it runs. Exactly one goroutine (awaitFlight)
// waits on the future, so the pool's lazy single-worker mode stays safe.
type flight struct {
	id     string // "f-N", the trace correlation key shared by deduped jobs
	fp     string
	ctx    context.Context
	cancel context.CancelFunc
	fut    *runner.Future[json.RawMessage]
	// refs counts attached (undetached) jobs; the last cancellation cancels
	// the context. jobs lists them for progress broadcast and completion.
	// Both guarded by Server.mu.
	refs    int
	jobs    []*job
	started bool
	// rootSpan is the initiating job's root span (set at creation); span is
	// the "run" child opened when a worker picks the flight up (markRunning)
	// and ended when the future resolves. For traced simulations simStart
	// anchors cycle 0 in wall time and simEvents holds the lifecycle trace.
	// All guarded by Server.mu.
	rootSpan  *obs.Span
	span      *obs.Span
	simStart  time.Time
	simEvents []obs.Event
	// skip is the finished run's two-speed-clock summary (simulation flights
	// only), written by the compute fn under Server.mu before the future
	// resolves and handed to every rider by awaitFlight.
	skip *SkipInfo
}

// Server is the daemon. Build with New, mount Handler, and Drain on
// shutdown.
type Server struct {
	cfg  Config
	pool *runner.Pool
	memo runner.Memo[string, json.RawMessage]

	mu        sync.Mutex
	jobs      map[string]*job
	jobOrder  []string // insertion order, for bounded retention
	flights   map[string]*flight
	cache     *lruCache
	startedAt time.Time

	// checkpoints memoizes warmup prefixes for the figure-sweep path
	// (DESIGN §15); always non-nil, store-backed when CheckpointDir is set.
	checkpoints *checkpoint.Cache

	// Durability layer (durable.go). store/journal are nil when DataDir is
	// empty or opening failed; storeWanted distinguishes "memory-only by
	// choice" from "degraded". recovered and the recN counts are written
	// once during New's journal recovery, before the handler is reachable.
	store                                     *store.Store
	journal                                   *store.Journal
	storeWanted                               bool
	recovered                                 []*job
	recReplayed, recRehydrated, recReenqueued int

	slots      chan struct{} // admission tokens: queued + running jobs
	wg         sync.WaitGroup
	baseCtx    context.Context
	baseStop   context.CancelFunc
	draining   atomic.Bool
	nextID     atomic.Uint64
	nextFlight atomic.Uint64
	busy       atomic.Int64 // flights currently executing on a pool worker

	log    *slog.Logger
	spans  *obs.Spanner // wall-clock serving trace
	vitals func() obs.RuntimeVitals

	// Server metrics live in an obs.Registry rendered by /metrics. Counters
	// are internally atomic; gauges and histograms are single-writer, so
	// metricsMu guards every histogram observation and every render.
	// metricsMu nests OUTSIDE s.mu: never acquire it while holding s.mu.
	metricsMu    sync.Mutex
	reg          *obs.Registry
	mAccepted    *obs.Counter
	mRejected    *obs.Counter
	mDeduped     *obs.Counter
	mCached      *obs.Counter
	mCompleted   *obs.Counter
	mFailed      *obs.Counter
	mCancelled   *obs.Counter
	mSimsRun     *obs.Counter
	mFigsRun     *obs.Counter
	mCacheHits   *obs.Counter
	mCacheMisses *obs.Counter
	// Two-speed-clock aggregates across completed simulation runs: how many
	// runs reported skip statistics, and the summed skipped/wall cycles
	// (their ratio is the fleet-wide skip rate served by /v1/stats).
	mSkipRuns      *obs.Counter
	mCyclesSkipped *obs.Counter
	mCyclesWall    *obs.Counter
	// Disk-tier counters: store lookups (a corrupt entry counts both corrupt
	// and miss), write-through failures, and journal appends.
	mStoreHits        *obs.Counter
	mStoreMisses      *obs.Counter
	mStoreCorrupt     *obs.Counter
	mStoreWriteErrors *obs.Counter
	mJournalRecords   *obs.Counter
	mJournalErrors    *obs.Counter
	// Fleet counters: the peering tier's fetch outcomes (a corrupt peer entry
	// counts both corrupt and miss, mirroring the disk tier), entries served
	// to peers, and submissions shed by tenant quota or priority capacity.
	mPeerHits        *obs.Counter
	mPeerMisses      *obs.Counter
	mPeerCorrupt     *obs.Counter
	mPeerServed      *obs.Counter
	mPeerServeMisses *obs.Counter
	mQuotaRejected   *obs.Counter
	// Warmup-checkpoint counters mirror the checkpoint cache's internal
	// tallies into the registry; syncCheckpointMetrics folds the deltas in
	// before every render so /metrics keeps counter semantics.
	mCkptHits      *obs.Counter
	mCkptMisses    *obs.Counter
	mCkptForks     *obs.Counter
	mCkptBypassed  *obs.Counter
	mCkptEvictions *obs.Counter
	// End-to-end latency splits by how the job was answered: served (a real
	// run, or joining one) vs cache (answered from the LRU). Folding both
	// into one histogram would poison the percentiles — cache hits are ~0 ms.
	latServed *obs.Histogram // ms
	latCache  *obs.Histogram // ms
	// µs-resolution series feed /v1/stats' percentiles: the served
	// end-to-end plus its exact phase partition, and the pool's slot wait.
	latServedUs *obs.Histogram
	latCacheUs  *obs.Histogram
	phAdmitUs   *obs.Histogram
	phQueueUs   *obs.Histogram
	phRunUs     *obs.Histogram
	phRespondUs *obs.Histogram
	poolWaitUs  *obs.Histogram
}

// New builds a Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		pool:      runner.NewPooled(cfg.Workers),
		jobs:      map[string]*job{},
		flights:   map[string]*flight{},
		cache:     newLRU(cfg.CacheEntries),
		slots:     make(chan struct{}, cfg.QueueDepth),
		startedAt: time.Now(),
	}
	s.baseCtx, s.baseStop = context.WithCancel(context.Background())
	s.log = cfg.Logger
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.spans = obs.NewSpanner(cfg.SpanCapacity)

	// Warmup-checkpoint cache: memory-only by default, store-backed when a
	// checkpoint directory is configured. An unopenable directory degrades to
	// memory-only memoization rather than refusing to serve.
	s.checkpoints = checkpoint.New()
	if cfg.CheckpointDir != "" {
		if c, err := checkpoint.Open(cfg.CheckpointDir, cfg.Fsync); err != nil {
			s.log.Warn("checkpoint store unavailable; memoizing warmups in memory only", "dir", cfg.CheckpointDir, "err", err)
		} else {
			s.checkpoints = c
		}
	}
	if cfg.CheckpointEntries > 0 {
		s.checkpoints.SetCap(cfg.CheckpointEntries)
	}

	msBounds := []uint64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}
	usBounds := []uint64{
		50, 100, 250, 500,
		1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
		1_000_000, 2_500_000, 5_000_000, 10_000_000, 30_000_000,
	}
	s.reg = obs.NewRegistry(1)
	s.mAccepted = s.reg.Counter("jobs_accepted_total")
	s.mRejected = s.reg.Counter("jobs_rejected_total")
	s.mDeduped = s.reg.Counter("jobs_deduped_total")
	s.mCached = s.reg.Counter("jobs_cached_total")
	s.mCompleted = s.reg.Counter("jobs_completed_total")
	s.mFailed = s.reg.Counter("jobs_failed_total")
	s.mCancelled = s.reg.Counter("jobs_cancelled_total")
	s.mSimsRun = s.reg.Counter("sims_run_total")
	s.mFigsRun = s.reg.Counter("figures_run_total")
	s.latServed = s.reg.Histogram("job_latency_served_ms", msBounds)
	s.latCache = s.reg.Histogram("job_latency_cache_ms", msBounds)
	s.latServedUs = s.reg.Histogram("job_latency_served_us", usBounds)
	s.latCacheUs = s.reg.Histogram("job_latency_cache_us", usBounds)
	s.phAdmitUs = s.reg.Histogram("phase_admission_us", usBounds)
	s.phQueueUs = s.reg.Histogram("phase_queue_us", usBounds)
	s.phRunUs = s.reg.Histogram("phase_run_us", usBounds)
	s.phRespondUs = s.reg.Histogram("phase_respond_us", usBounds)
	s.poolWaitUs = s.reg.Histogram("pool_wait_us", usBounds)
	s.pool.Instrument(func(_ string, wait time.Duration) {
		s.metricsMu.Lock()
		s.poolWaitUs.Observe(usOf(wait))
		s.metricsMu.Unlock()
	})
	s.reg.Gauge("queue_depth", func(uint64) float64 { return float64(len(s.slots)) })
	s.reg.Gauge("queue_capacity", func(uint64) float64 { return float64(cfg.QueueDepth) })
	s.reg.Gauge("workers", func(uint64) float64 { return float64(s.pool.Jobs()) })
	s.reg.Gauge("workers_busy", func(uint64) float64 { return float64(s.busy.Load()) })
	s.reg.Gauge("uptime_seconds", func(uint64) float64 { return time.Since(s.startedAt).Seconds() })
	s.reg.Gauge("trace_spans_dropped", func(uint64) float64 { return float64(s.spans.Dropped()) })
	s.reg.Gauge("cache_entries", func(uint64) float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.cache.len())
	})
	s.vitals = obs.RegisterRuntimeMetrics(s.reg)
	// Hits and misses are monotonic, so they are registry counters (the
	// _total suffix promises counter semantics to Prometheus tooling), counted
	// per submission: one outcome for the first lookup, plus a hit if the
	// post-admission re-check finds a result that landed in between.
	s.mCacheHits = s.reg.Counter("cache_hits_total")
	s.mCacheMisses = s.reg.Counter("cache_misses_total")
	s.mSkipRuns = s.reg.Counter("sim_skip_reports_total")
	s.mCyclesSkipped = s.reg.Counter("sim_cycles_skipped_total")
	s.mCyclesWall = s.reg.Counter("sim_cycles_wall_total")
	s.mStoreHits = s.reg.Counter("store_hits_total")
	s.mStoreMisses = s.reg.Counter("store_misses_total")
	s.mStoreCorrupt = s.reg.Counter("store_corrupt_total")
	s.mStoreWriteErrors = s.reg.Counter("store_write_errors_total")
	s.mJournalRecords = s.reg.Counter("journal_records_total")
	s.mJournalErrors = s.reg.Counter("journal_errors_total")
	s.mPeerHits = s.reg.Counter("peer_hits_total")
	s.mPeerMisses = s.reg.Counter("peer_misses_total")
	s.mPeerCorrupt = s.reg.Counter("peer_corrupt_total")
	s.mPeerServed = s.reg.Counter("peer_served_total")
	s.mPeerServeMisses = s.reg.Counter("peer_serve_misses_total")
	s.mQuotaRejected = s.reg.Counter("jobs_quota_rejected_total")
	s.mCkptHits = s.reg.Counter("checkpoint_hits_total")
	s.mCkptMisses = s.reg.Counter("checkpoint_misses_total")
	s.mCkptForks = s.reg.Counter("checkpoint_forks_total")
	s.mCkptBypassed = s.reg.Counter("checkpoint_bypassed_total")
	s.mCkptEvictions = s.reg.Counter("checkpoint_evictions_total")
	s.reg.Gauge("checkpoint_entries", func(uint64) float64 {
		return float64(s.checkpoints.Snapshot().Entries)
	})
	s.reg.Gauge("store_entries", func(uint64) float64 {
		if s.store == nil {
			return 0
		}
		return float64(s.store.Len())
	})
	s.reg.Gauge("store_degraded", func(uint64) float64 {
		if s.durabilityDegraded() {
			return 1
		}
		return 0
	})
	s.reg.Gauge("recovery_outstanding", func(uint64) float64 { return float64(s.recoveryOutstanding()) })
	// Open the disk tier and replay the journal last: recovery re-enqueues
	// interrupted jobs through the flight machinery built above.
	s.openDurable()
	return s
}

// count increments a server counter; counters are atomic, so no lock.
func (s *Server) count(c *obs.Counter) { c.Inc() }

// syncCheckpointMetrics folds the checkpoint cache's internal tallies into
// the registry counters and returns the snapshot. Both sides are monotonic,
// so adding the delta under metricsMu preserves counter semantics however
// many renders race the cache's own increments.
func (s *Server) syncCheckpointMetrics() checkpoint.Stats {
	st := s.checkpoints.Snapshot()
	s.metricsMu.Lock()
	s.mCkptHits.Add(st.Hits - s.mCkptHits.Value())
	s.mCkptMisses.Add(st.Misses - s.mCkptMisses.Value())
	s.mCkptForks.Add(st.Forks - s.mCkptForks.Value())
	s.mCkptBypassed.Add(st.Bypassed - s.mCkptBypassed.Value())
	s.mCkptEvictions.Add(st.Evictions - s.mCkptEvictions.Value())
	s.metricsMu.Unlock()
	return st
}

// usOf converts a duration to whole non-negative microseconds.
func usOf(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d.Microseconds())
}

// observeCacheHit records a cache-answered submission's end-to-end latency.
func (s *Server) observeCacheHit(d time.Duration) {
	s.metricsMu.Lock()
	s.latCache.Observe(uint64(d.Milliseconds()))
	s.latCacheUs.Observe(usOf(d))
	s.metricsMu.Unlock()
}

// observeServed records a served job's end-to-end latency and its exact
// phase partition (admission + queue + run + respond == e2e).
func (s *Server) observeServed(e2e, admit, queue, run, respond time.Duration) {
	s.metricsMu.Lock()
	s.latServed.Observe(uint64(e2e.Milliseconds()))
	s.latServedUs.Observe(usOf(e2e))
	s.phAdmitUs.Observe(usOf(admit))
	s.phQueueUs.Observe(usOf(queue))
	s.phRunUs.Observe(usOf(run))
	s.phRespondUs.Observe(usOf(respond))
	s.metricsMu.Unlock()
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", s.handleSim)
	mux.HandleFunc("POST /v1/figures", s.handleFigures)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/peer/result", s.handlePeerResult)
	mux.HandleFunc("GET /v1/fleet/self", s.handleFleetSelf)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /debug/trace", s.handleDebugTrace)
	mux.HandleFunc("GET /debug/dash", s.handleDash)
	mux.HandleFunc("GET /debug/dash/stream", s.handleDashStream)
	return mux
}

// Drain stops admitting work and waits for every in-flight job to finish.
// When ctx expires first, remaining flights are cancelled and Drain returns
// ctx.Err() after they unwind — a bounded wait, because cancellation reaches
// every queued simulation immediately and every running one (including each
// leg of a figure sweep) at its next watchdog boundary.
//
// The draining flag flips under s.mu: submit re-checks it under the same
// mutex before its wg.Add, so once Drain holds and releases the lock no new
// flight can be added while wg.Wait may be observing a zero counter.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseStop() // cancel every flight; runs unwind at the next watchdog boundary
		<-done
		return ctx.Err()
	}
}

// Close cancels all in-flight work immediately (tests; Drain is the polite
// path).
func (s *Server) Close() {
	s.mu.Lock()
	s.draining.Store(true)
	s.mu.Unlock()
	s.baseStop()
	s.wg.Wait()
}

// ---------------------------------------------------------------- submission

// newJobLocked allocates and registers a job; the caller holds s.mu. Fleet
// nodes embed their id ("j-w1-3") so a coordinator can route any job lookup
// to the node that owns it by parsing the id alone.
func (s *Server) newJobLocked(kind, fp string) *job {
	n := s.nextID.Add(1)
	id := fmt.Sprintf("j-%d", n)
	if s.cfg.NodeID != "" {
		id = fmt.Sprintf("j-%s-%d", s.cfg.NodeID, n)
	}
	return s.registerJobLocked(id, kind, fp)
}

// registerJobLocked registers a job under an explicit id — fresh ids from
// newJobLocked, or original ids preserved across a crash by journal
// recovery. The caller holds s.mu.
func (s *Server) registerJobLocked(id, kind, fp string) *job {
	j := &job{
		id:      id,
		kind:    kind,
		fp:      fp,
		created: time.Now(),
		state:   StateQueued,
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	// Bounded retention: forget the oldest *finished* jobs beyond the cap.
	for len(s.jobs) > s.cfg.MaxTrackedJobs {
		evicted := false
		for i, id := range s.jobOrder {
			old := s.jobs[id]
			if old == nil {
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
			old.mu.Lock()
			terminal := old.state.Terminal()
			old.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything is live; let the table run hot rather than drop state
		}
	}
	return j
}

// admit takes one queue slot, or reports rejection. Cached answers bypass it.
func (s *Server) admit() bool {
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseSlot frees j's admission token (and its priority-class slot, if
// any) exactly once.
func (s *Server) releaseSlot(j *job) {
	j.mu.Lock()
	freed := j.slotFreed
	j.slotFreed = true
	rel := j.classRelease
	j.classRelease = nil
	j.mu.Unlock()
	if !freed {
		<-s.slots
		if rel != nil {
			rel()
		}
	}
}

// serveCachedLocked registers a done-from-cache job holding b and answers the
// submission. The caller holds s.mu; it is released here, before any counter
// is touched (metricsMu nests outside s.mu — the /metrics render holds it
// while gauges read s.mu). root/adm are the submission's spans; both end
// here with the cache-hit outcome.
func (s *Server) serveCachedLocked(w http.ResponseWriter, kind, fp string, b []byte, sk *SkipInfo, t0 time.Time, root, adm *obs.Span, peer bool) {
	j := s.newJobLocked(kind, fp)
	j.cached = true
	j.peer = peer
	j.state = StateDone
	j.result = b
	j.skip = sk
	j.span = root
	root.SetAttr("job", j.id)
	s.mu.Unlock()
	outcome := "cache_hit"
	if peer {
		outcome = "peer_hit"
	}
	adm.SetAttr("outcome", outcome)
	adm.End()
	root.SetAttr("state", string(StateDone))
	root.End()
	s.count(s.mCacheHits)
	s.count(s.mAccepted)
	s.count(s.mCached)
	s.observeCacheHit(time.Since(t0))
	s.log.Info("job cache hit", "job", j.id, "kind", kind, "fp", fp, "peer", peer)
	writeJSON(w, http.StatusOK, j.status(true))
}

// flightForLocked finds fp's in-flight computation or starts a new one
// running fn. The caller holds s.mu; created reports whether a new flight
// (and its awaitFlight waiter) was launched.
func (s *Server) flightForLocked(fp string, root *obs.Span, fn func(*flight) func(context.Context) (json.RawMessage, error)) (fl *flight, created bool) {
	if fl = s.flights[fp]; fl != nil {
		return fl, false
	}
	fl = &flight{id: fmt.Sprintf("f-%d", s.nextFlight.Add(1)), fp: fp, rootSpan: root}
	fl.ctx, fl.cancel = context.WithCancel(s.baseCtx)
	fl.fut, _ = s.memo.GetCtx(s.pool, fl.ctx, fp, fn(fl))
	s.flights[fp] = fl
	s.wg.Add(1)
	go s.awaitFlight(fl)
	return fl, true
}

// submit runs the common submission path: answer from the LRU, the disk
// store, or a fleet peer; join an in-flight twin; or start a new flight
// computing fn. reqJSON is the original wire request, journaled write-ahead
// so a crashed daemon can re-run the job. r carries the tenant and priority
// headers for admission. Every outcome — even a rejection — leaves a span
// tree in the serving trace.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, kind, fp string, reqJSON []byte, fn func(*flight) func(context.Context) (json.RawMessage, error)) {
	t0 := time.Now()
	root := s.spans.Start("job", obs.A("kind", kind), obs.A("fp", fp))
	adm := root.Child("admission")
	endWith := func(outcome string) { // unadmitted exits: close the tree
		adm.SetAttr("outcome", outcome)
		adm.End()
		root.SetAttr("state", outcome)
		root.End()
	}
	if s.draining.Load() { // fast path; re-checked under s.mu before wg.Add
		endWith("draining")
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	// Tenant quota first: the bucket prices every submission — cached answers
	// included — so a tenant hammering warm keys still pays for the requests.
	tenant := r.Header.Get("X-Smtdram-Tenant")
	if tenant == "" {
		tenant = "default"
	}
	high := strings.EqualFold(r.Header.Get("X-Smtdram-Priority"), "high")
	if s.cfg.Admission != nil {
		if ok, retry := s.cfg.Admission.Charge(tenant); !ok {
			s.count(s.mQuotaRejected)
			s.count(s.mRejected)
			endWith("rejected_tenant_quota")
			secs := int((retry + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			w.Header().Set("X-Smtdram-Tenant", tenant)
			writeErr(w, http.StatusTooManyRequests, fmt.Sprintf("tenant %q over quota; retry in %ds", tenant, secs))
			return
		}
	}

	s.mu.Lock()
	if b, sk, ok := s.cache.get(fp); ok {
		s.serveCachedLocked(w, kind, fp, b, sk, t0, root, adm, false)
		return
	}
	s.mu.Unlock()
	// Disk tier: an LRU miss falls back to the content-addressed store (IO
	// outside s.mu) before computing. A hit is promoted into the LRU, so the
	// ladder is LRU → disk → peer → compute.
	if b, sk, ok := s.storeGet(fp); ok {
		s.mu.Lock()
		s.cache.add(fp, b, sk)
		s.serveCachedLocked(w, kind, fp, b, sk, t0, root, adm, false)
		return
	}
	// Peering tier: in a fleet, the key's previous ring owner may hold the
	// result this node has never computed (membership changed, or the sweep
	// warmed a sibling). CRC-verified transfer, then write-through above.
	if b, sk, ok := s.peerGet(r.Context(), fp); ok {
		s.mu.Lock()
		s.cache.add(fp, b, sk)
		s.serveCachedLocked(w, kind, fp, b, sk, t0, root, adm, true)
		return
	}
	s.count(s.mCacheMisses)

	// Priority-class slot, then the global queue slot: the class gate keeps
	// reserved headroom for high-priority work, the queue bounds everything.
	classRelease, classOK := func() (func(), bool) {
		if s.cfg.Admission == nil {
			return func() {}, true
		}
		return s.cfg.Admission.Acquire(high)
	}()
	if !classOK {
		s.count(s.mQuotaRejected)
		s.count(s.mRejected)
		endWith("rejected_priority_capacity")
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "priority-class capacity exhausted; retry later")
		return
	}
	if !s.admit() {
		classRelease()
		s.count(s.mRejected)
		endWith("rejected_queue_full")
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, fmt.Sprintf("job queue full (%d queued or running); retry later", s.cfg.QueueDepth))
		return
	}

	s.mu.Lock()
	// Re-check draining under s.mu: Drain flips the flag under the same mutex
	// before wg.Wait, so admitting here (wg.Add below) would race the Wait and
	// let a late flight outlive the drain.
	if s.draining.Load() {
		s.mu.Unlock()
		<-s.slots // return the admission token
		classRelease()
		endWith("draining")
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	// Re-check the cache too: an identical flight may have completed between
	// the first check and admission, and starting a fresh simulation for bytes
	// the cache already holds is wasted work.
	if b, sk, ok := s.cache.get(fp); ok {
		s.serveCachedLocked(w, kind, fp, b, sk, t0, root, adm, false)
		<-s.slots // return the admission token; no flight was started
		classRelease()
		return
	}
	fl, created := s.flightForLocked(fp, root, fn)
	deduped := !created
	j := s.newJobLocked(kind, fp)
	j.created = t0 // anchor phase accounting at submit entry, not allocation
	j.deduped = deduped
	j.classRelease = classRelease // freed with the admission token
	j.flight = fl
	j.flightID = fl.id
	j.span = root
	root.SetAttr("job", j.id)
	root.SetAttr("flight", fl.id)
	j.tAdmitted = time.Now()
	if fl.started {
		// Joined a flight already on a worker: the queue phase is empty.
		j.state = StateRunning
		j.tRunStart = j.tAdmitted
	} else {
		j.queueSpan = root.Child("queue_wait")
	}
	fl.refs++
	fl.jobs = append(fl.jobs, j)
	s.mu.Unlock()

	outcome := "admitted"
	if deduped {
		outcome = "deduped"
	}
	adm.SetAttr("outcome", outcome)
	adm.End()
	s.count(s.mAccepted)
	if deduped {
		s.count(s.mDeduped)
	}
	// Write-ahead: the submitted record (with the full request) is on disk
	// before the client hears "accepted", so an acknowledged job survives a
	// crash at any later point.
	s.journalAppend(store.Record{Type: store.RecSubmitted, Job: j.id, Kind: kind, FP: fp, Request: reqJSON})
	s.log.Info("job accepted", "job", j.id, "kind", kind, "fp", fp, "flight", fl.id, "deduped", deduped)
	writeJSON(w, http.StatusAccepted, j.status(false))
}

// awaitFlight is the flight's sole waiter: it resolves the future, caches a
// success, retires the flight, and completes every attached job.
func (s *Server) awaitFlight(fl *flight) {
	defer s.wg.Done()
	val, err := fl.fut.Wait()
	resolved := time.Now()

	s.mu.Lock()
	skip := fl.skip
	if err == nil {
		s.cache.add(fl.fp, val, skip)
	}
	if s.flights[fl.fp] == fl {
		delete(s.flights, fl.fp)
	}
	// The memo tracks only in-flight work: successes move to the LRU, and
	// failures already forgot themselves, so this is a no-op there.
	s.memo.Forget(fl.fp)
	if fl.span != nil {
		if err != nil {
			fl.span.SetAttr("error", err.Error())
		}
		fl.span.End()
	}
	jobs := append([]*job(nil), fl.jobs...)
	fl.jobs = nil
	for _, j := range jobs {
		j.flight = nil
		// Hand the cycle-domain trace (if any) to every rider, so each job's
		// /trace shows both clock domains. The slice is immutable from here.
		j.simEvents = fl.simEvents
		j.simStart = fl.simStart
	}
	s.mu.Unlock()
	fl.cancel() // release the context; the run is over

	// Write the result through to the disk tier before any job resolves:
	// once a resolved record hits the journal, the bytes it promises are
	// already durable (write-ahead ordering).
	if err == nil {
		s.storePut(fl.fp, val, skip)
	}

	for _, j := range jobs {
		s.finishJob(j, val, skip, err, resolved)
	}
}

// finishJob moves one job to its terminal state (unless cancellation beat
// us), wakes its subscribers, frees its slot, closes its span tree, and
// records the phase-partitioned latency metrics. resolved is the instant the
// flight's future resolved — the run→respond phase boundary shared by every
// rider of the flight.
func (s *Server) finishJob(j *job, val []byte, skip *SkipInfo, err error, resolved time.Time) {
	respond := j.span.Child("respond")
	j.mu.Lock()
	transitioned := false
	if !j.state.Terminal() {
		transitioned = true
		if err != nil {
			j.state = StateFailed
			j.errMsg = err.Error()
		} else {
			j.state = StateDone
			j.result = val
			j.skip = skip
		}
		for _, ch := range j.subs {
			close(ch)
		}
		j.subs = nil
	}
	state, errMsg := j.state, j.errMsg
	tAdmitted, tRunStart := j.tAdmitted, j.tRunStart
	j.mu.Unlock()

	s.releaseSlot(j)
	respond.End()
	j.span.SetAttr("state", string(state))
	j.span.End()
	done := time.Now()
	dur := done.Sub(j.created)
	if transitioned {
		s.journalAppend(store.Record{Type: store.RecResolved, Job: j.id, Kind: j.kind, FP: j.fp, State: string(state), Error: errMsg})
		if state == StateFailed {
			s.count(s.mFailed)
			s.log.Warn("job failed", "job", j.id, "flight", j.flightID, "dur", dur.Truncate(time.Millisecond), "err", err)
		} else {
			s.count(s.mCompleted)
			s.log.Info("job done", "job", j.id, "flight", j.flightID, "dur", dur.Truncate(time.Millisecond))
			// The four phases partition [created, done] exactly:
			// admission ends at tAdmitted, queue at tRunStart, run at
			// resolved, respond at done.
			s.observeServed(dur, tAdmitted.Sub(j.created), tRunStart.Sub(tAdmitted), resolved.Sub(tRunStart), done.Sub(resolved))
		}
	}
}

// markRunning flips a flight's attached jobs to running; called by the
// flight's compute fn the moment a pool worker picks it up. It also opens
// the flight's "run" span (a child of the initiating job's root) and closes
// every rider's queue_wait span, stamping the run-start instant the phase
// accounting uses. Returns the run span for the compute fn to hand to the
// simulator.
func (s *Server) markRunning(fl *flight) *obs.Span {
	now := time.Now()
	s.mu.Lock()
	fl.started = true
	if fl.span == nil {
		fl.span = fl.rootSpan.Child("run", obs.A("flight", fl.id))
	}
	run := fl.span
	jobs := append([]*job(nil), fl.jobs...)
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == StateQueued {
			j.state = StateRunning
		}
		if j.tRunStart.IsZero() {
			j.tRunStart = now
		}
		qs := j.queueSpan
		j.queueSpan = nil
		j.mu.Unlock()
		qs.End()
		s.journalAppend(store.Record{Type: store.RecStarted, Job: j.id})
	}
	return run
}

// broadcastProgress fans a progress sample out to every subscriber of every
// job attached to the flight. Slow subscribers drop samples rather than
// stall the simulation.
func (s *Server) broadcastProgress(fl *flight, sample []byte) {
	s.mu.Lock()
	jobs := append([]*job(nil), fl.jobs...)
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		j.progress = sample
		for _, ch := range j.subs {
			select {
			case ch <- sample:
			default:
			}
		}
		j.mu.Unlock()
	}
}

// simFlightFn builds the compute function for one simulation flight: run the
// machine under the flight's context with a progress-streaming observer and
// marshal the Result. The marshalled bytes are the byte-identical payload —
// the same json.Marshal of the same core.Result the CLI's -json flag emits.
func (s *Server) simFlightFn(fl *flight, cfg core.Config, traced bool) func(context.Context) (json.RawMessage, error) {
	return func(ctx context.Context) (json.RawMessage, error) {
		runSpan := s.markRunning(fl)
		s.busy.Add(1)
		defer s.busy.Add(-1)
		s.count(s.mSimsRun)
		var sim *core.Simulator
		ob := &obs.Observer{ProgressInterval: s.cfg.ProgressInterval, RunSpan: runSpan}
		ob.Progress = func(now uint64) {
			if sim == nil {
				return // constructor-time call; nothing to report yet
			}
			if b, err := json.Marshal(sim.Progress(now)); err == nil {
				s.broadcastProgress(fl, b)
			}
		}
		if traced {
			// Cycle-domain lifecycle trace, merged into per-job traces by
			// wall-clock offset. Observation only: the tracer never constrains
			// the two-speed clock, so results stay byte-identical.
			ob.Trace = obs.NewTracer()
		}
		cfg.Observe = func() *obs.Observer { return ob }
		var err error
		sim, err = core.NewSimulator(cfg)
		if err != nil {
			return nil, err
		}
		simStart := time.Now() // wall-clock instant of cycle 0
		res, err := sim.RunContext(ctx)
		// Skip statistics ride beside the result, never inside it: the
		// payload below stays byte-identical to the CLI's -json output.
		skip := skipInfoOf(sim.SkipStats())
		s.mu.Lock()
		fl.skip = skip
		if ob.Trace != nil {
			fl.simStart = simStart
			fl.simEvents = ob.Trace.Events()
		}
		s.mu.Unlock()
		if skip != nil {
			s.mSkipRuns.Inc()
			s.mCyclesSkipped.Add(skip.Skipped)
			s.mCyclesWall.Add(skip.Wall)
		}
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
}

// figFlightFn builds the compute function for one figure sweep: render the
// tables into a buffer and wrap them in a small JSON envelope. ctx threads
// through figures.Options into every simulation the sweep schedules, so a
// cancelled or drained sweep aborts between configurations (and mid-run at
// the watchdog boundary) instead of finishing the remaining grid.
func (s *Server) figFlightFn(fl *flight, req FigRequest) func(context.Context) (json.RawMessage, error) {
	return func(ctx context.Context) (json.RawMessage, error) {
		s.markRunning(fl)
		s.busy.Add(1)
		defer s.busy.Add(-1)
		s.count(s.mFigsRun)
		var buf bytes.Buffer
		if err := req.run(ctx, s.pool.Jobs(), &buf, s.checkpoints); err != nil {
			return nil, err
		}
		return json.Marshal(struct {
			Fig    string `json:"fig"`
			Output string `json:"output"`
		}{Fig: req.Fig, Output: buf.String()})
	}
}
