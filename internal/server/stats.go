package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"smtdram/internal/obs"
)

// LatencySummary condenses one latency histogram for /v1/stats: observation
// count, mean, bucket-interpolated percentiles, and the observed maximum,
// all in milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// summarizeUs condenses a µs-resolution histogram into millisecond figures.
// Caller holds metricsMu (histograms are single-writer).
func summarizeUs(h *obs.Histogram) LatencySummary {
	const usPerMs = 1000.0
	return LatencySummary{
		Count:  h.Count(),
		MeanMs: h.Mean() / usPerMs,
		P50Ms:  h.Quantile(0.50) / usPerMs,
		P95Ms:  h.Quantile(0.95) / usPerMs,
		P99Ms:  h.Quantile(0.99) / usPerMs,
		MaxMs:  float64(h.Max()) / usPerMs,
	}
}

// Stats is the /v1/stats payload: a point-in-time JSON snapshot of the
// daemon's serving health. The per-phase summaries partition the served
// end-to-end latency: admission + queue + run + respond == end_to_end.served
// for every job, so the phase means (weighted by count) sum to the served
// mean up to microsecond truncation.
type Stats struct {
	// NodeID and Role identify this daemon in a fleet scrape ("" / "single"
	// standalone, the node id / "worker" on a fleet node).
	NodeID        string  `json:"node_id,omitempty"`
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`
	Jobs          struct {
		Accepted      uint64 `json:"accepted"`
		Rejected      uint64 `json:"rejected"`
		QuotaRejected uint64 `json:"quota_rejected"`
		Deduped       uint64 `json:"deduped"`
		Cached        uint64 `json:"cached"`
		Completed     uint64 `json:"completed"`
		Failed        uint64 `json:"failed"`
		Cancelled     uint64 `json:"cancelled"`
		Tracked       int    `json:"tracked"`
	} `json:"jobs"`
	Queue struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Workers struct {
		Total int   `json:"total"`
		Busy  int64 `json:"busy"`
	} `json:"workers"`
	Cache struct {
		Entries  int     `json:"entries"`
		Hits     uint64  `json:"hits"`
		Misses   uint64  `json:"misses"`
		HitRatio float64 `json:"hit_ratio"`
	} `json:"cache"`
	// Store is the disk tier of the cache ladder (LRU → disk → compute):
	// content-addressed results that survive restarts. Degraded means an IO
	// error flipped the daemon to memory-only serving.
	Store struct {
		StoreHealth
		Hits        uint64 `json:"hits"`
		Misses      uint64 `json:"misses"`
		Corrupt     uint64 `json:"corrupt"`
		WriteErrors uint64 `json:"write_errors"`
		// JournalRecords counts write-ahead records appended this process.
		JournalRecords uint64 `json:"journal_records"`
	} `json:"store"`
	// Peer is the fleet-peering tier of the cache ladder: entries fetched
	// from (and served to) other fleet nodes. Corrupt counts peer entries
	// that failed CRC verification and were recomputed locally instead.
	Peer struct {
		Hits    uint64 `json:"hits"`
		Misses  uint64 `json:"misses"`
		Corrupt uint64 `json:"corrupt"`
		Served  uint64 `json:"served"`
	} `json:"peer"`
	// Recovery reports the startup journal replay: jobs rehydrated from the
	// store and jobs re-enqueued (outstanding until their re-run finishes).
	Recovery RecoveryStatus `json:"recovery"`
	Runtime  struct {
		Goroutines          int     `json:"goroutines"`
		HeapAllocBytes      uint64  `json:"heap_alloc_bytes"`
		GCPauseTotalSeconds float64 `json:"gc_pause_total_seconds"`
		GCCycles            uint32  `json:"gc_cycles"`
		SchedLatencyP50Ms   float64 `json:"sched_latency_p50_ms"`
		SchedLatencyP99Ms   float64 `json:"sched_latency_p99_ms"`
	} `json:"runtime"`
	EndToEnd struct {
		Served LatencySummary `json:"served"`
		Cache  LatencySummary `json:"cache"`
	} `json:"end_to_end"`
	// Phases breaks the served end-to-end latency into its exact partition.
	Phases struct {
		Admission LatencySummary `json:"admission"`
		Queue     LatencySummary `json:"queue"`
		Run       LatencySummary `json:"run"`
		Respond   LatencySummary `json:"respond"`
	} `json:"phases"`
	// Skip aggregates the two-speed clock across every completed simulation
	// run: summed skipped and wall cycles and their ratio — the fleet-wide
	// fraction of simulated cycles the daemon fast-forwarded instead of
	// ticking.
	Skip struct {
		SimRuns       uint64  `json:"sim_runs"`
		CyclesSkipped uint64  `json:"cycles_skipped"`
		CyclesWall    uint64  `json:"cycles_wall"`
		Rate          float64 `json:"rate"`
	} `json:"skip"`
	// Checkpoint is the warmup-memoization layer (DESIGN §15) behind the
	// figure-sweep path: hits are warmup prefixes served from a cached
	// machine state, misses are warmups actually simulated, forks are
	// measurement phases started from a checkpoint, and bypassed counts runs
	// whose configuration cannot checkpoint.
	Checkpoint struct {
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Forks     uint64  `json:"forks"`
		Bypassed  uint64  `json:"bypassed"`
		Evictions uint64  `json:"evictions"`
		Entries   int     `json:"entries"`
		HitRatio  float64 `json:"hit_ratio"`
	} `json:"checkpoint"`
	PoolWait LatencySummary `json:"pool_wait"`
	Trace    struct {
		Spans   int    `json:"spans"`
		Dropped uint64 `json:"spans_dropped"`
	} `json:"trace"`
}

// statsSnapshot assembles the current Stats. Lock order: s.mu first (job
// table, cache), then metricsMu (histograms) — never nested.
func (s *Server) statsSnapshot() Stats {
	var st Stats
	st.NodeID = s.cfg.NodeID
	st.Role = s.Role()
	st.UptimeSeconds = time.Since(s.startedAt).Seconds()
	st.Draining = s.draining.Load()
	st.Jobs.Accepted = s.mAccepted.Value()
	st.Jobs.Rejected = s.mRejected.Value()
	st.Jobs.QuotaRejected = s.mQuotaRejected.Value()
	st.Jobs.Deduped = s.mDeduped.Value()
	st.Jobs.Cached = s.mCached.Value()
	st.Jobs.Completed = s.mCompleted.Value()
	st.Jobs.Failed = s.mFailed.Value()
	st.Jobs.Cancelled = s.mCancelled.Value()
	st.Queue.Depth = len(s.slots)
	st.Queue.Capacity = s.cfg.QueueDepth
	st.Workers.Total = s.pool.Jobs()
	st.Workers.Busy = s.busy.Load()
	st.Cache.Hits = s.mCacheHits.Value()
	st.Cache.Misses = s.mCacheMisses.Value()
	if lookups := st.Cache.Hits + st.Cache.Misses; lookups > 0 {
		st.Cache.HitRatio = float64(st.Cache.Hits) / float64(lookups)
	}
	st.Store.StoreHealth = s.storeHealth()
	st.Store.Hits = s.mStoreHits.Value()
	st.Store.Misses = s.mStoreMisses.Value()
	st.Store.Corrupt = s.mStoreCorrupt.Value()
	st.Store.WriteErrors = s.mStoreWriteErrors.Value()
	st.Store.JournalRecords = s.mJournalRecords.Value()
	st.Peer.Hits = s.mPeerHits.Value()
	st.Peer.Misses = s.mPeerMisses.Value()
	st.Peer.Corrupt = s.mPeerCorrupt.Value()
	st.Peer.Served = s.mPeerServed.Value()
	st.Recovery = s.recoveryStatus()
	st.Skip.SimRuns = s.mSkipRuns.Value()
	st.Skip.CyclesSkipped = s.mCyclesSkipped.Value()
	st.Skip.CyclesWall = s.mCyclesWall.Value()
	if st.Skip.CyclesWall > 0 {
		st.Skip.Rate = float64(st.Skip.CyclesSkipped) / float64(st.Skip.CyclesWall)
	}
	ck := s.syncCheckpointMetrics()
	st.Checkpoint.Hits = ck.Hits
	st.Checkpoint.Misses = ck.Misses
	st.Checkpoint.Forks = ck.Forks
	st.Checkpoint.Bypassed = ck.Bypassed
	st.Checkpoint.Evictions = ck.Evictions
	st.Checkpoint.Entries = ck.Entries
	if lookups := ck.Hits + ck.Misses; lookups > 0 {
		st.Checkpoint.HitRatio = float64(ck.Hits) / float64(lookups)
	}

	s.mu.Lock()
	st.Jobs.Tracked = len(s.jobs)
	st.Cache.Entries = s.cache.len()
	s.mu.Unlock()

	s.metricsMu.Lock()
	st.EndToEnd.Served = summarizeUs(s.latServedUs)
	st.EndToEnd.Cache = summarizeUs(s.latCacheUs)
	st.Phases.Admission = summarizeUs(s.phAdmitUs)
	st.Phases.Queue = summarizeUs(s.phQueueUs)
	st.Phases.Run = summarizeUs(s.phRunUs)
	st.Phases.Respond = summarizeUs(s.phRespondUs)
	st.PoolWait = summarizeUs(s.poolWaitUs)
	s.metricsMu.Unlock()

	v := s.vitals()
	st.Runtime.Goroutines = v.Goroutines
	st.Runtime.HeapAllocBytes = v.HeapAlloc
	st.Runtime.GCPauseTotalSeconds = v.GCPauseTotal.Seconds()
	st.Runtime.GCCycles = v.GCCycles
	st.Runtime.SchedLatencyP50Ms = v.SchedP50 * 1000
	st.Runtime.SchedLatencyP99Ms = v.SchedP99 * 1000

	st.Trace.Spans = s.spans.Len()
	st.Trace.Dropped = s.spans.Dropped()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsSnapshot())
}

// handleDashStream feeds the /debug/dash page: one SSE "stats" event per
// second carrying a Stats snapshot, until the client hangs up.
func (s *Server) handleDashStream(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	emit := func() bool {
		b, err := json.Marshal(s.statsSnapshot())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: stats\ndata: %s\n\n", b); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !emit() {
		return
	}
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			if !emit() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}
