package server

import "testing"

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"))
	c.add("b", []byte("2"))
	c.add("c", []byte("3")) // evicts a
	if _, ok := c.get("a"); ok {
		t.Fatalf("a should have been evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"))
	c.add("b", []byte("2"))
	if _, ok := c.get("a"); !ok { // a is now most recent
		t.Fatalf("a should be cached")
	}
	c.add("c", []byte("3")) // evicts b, not a
	if _, ok := c.get("b"); ok {
		t.Fatalf("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatalf("a should have survived via promotion")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"))
	c.add("a", []byte("2"))
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 after re-add", c.len())
	}
	b, ok := c.get("a")
	if !ok || string(b) != "2" {
		t.Fatalf("get(a) = %q, %v; want \"2\", true", b, ok)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	c.add("a", []byte("1"))
	if _, ok := c.get("a"); ok {
		t.Fatalf("disabled cache must not store entries")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
}
