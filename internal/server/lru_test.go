package server

import "testing"

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"), nil)
	c.add("b", []byte("2"), nil)
	c.add("c", []byte("3"), nil) // evicts a
	if _, _, ok := c.get("a"); ok {
		t.Fatalf("a should have been evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, _, ok := c.get(k); !ok {
			t.Fatalf("%s should still be cached", k)
		}
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"), nil)
	c.add("b", []byte("2"), nil)
	if _, _, ok := c.get("a"); !ok { // a is now most recent
		t.Fatalf("a should be cached")
	}
	c.add("c", []byte("3"), nil) // evicts b, not a
	if _, _, ok := c.get("b"); ok {
		t.Fatalf("b should have been evicted")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatalf("a should have survived via promotion")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"), nil)
	c.add("a", []byte("2"), &SkipInfo{Skipped: 5, Wall: 10, Rate: 0.5})
	if c.len() != 1 {
		t.Fatalf("len = %d, want 1 after re-add", c.len())
	}
	b, sk, ok := c.get("a")
	if !ok || string(b) != "2" {
		t.Fatalf("get(a) = %q, %v; want \"2\", true", b, ok)
	}
	if sk == nil || sk.Skipped != 5 {
		t.Fatalf("get(a) skip = %+v; re-add should refresh the skip summary", sk)
	}
}

func TestLRUSkipRidesAlong(t *testing.T) {
	c := newLRU(2)
	c.add("a", []byte("1"), &SkipInfo{Skipped: 80, Wall: 100, Segments: 3, Longest: 40, Rate: 0.8})
	_, sk, ok := c.get("a")
	if !ok || sk == nil {
		t.Fatalf("cached skip summary went missing: %+v, %v", sk, ok)
	}
	if sk.Skipped != 80 || sk.Wall != 100 || sk.Rate != 0.8 {
		t.Fatalf("cached skip summary mangled: %+v", sk)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	c.add("a", []byte("1"), nil)
	if _, _, ok := c.get("a"); ok {
		t.Fatalf("disabled cache must not store entries")
	}
	if c.len() != 0 {
		t.Fatalf("len = %d, want 0", c.len())
	}
}
