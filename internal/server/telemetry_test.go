package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"smtdram/internal/core"
	"smtdram/internal/obs"
	"smtdram/internal/server"
)

// TestMetricsScrapeRace hammers /metrics, /v1/stats, and /debug/trace while a
// burst of submissions (fresh runs, dedup joins, and cache hits) flows through
// the daemon. Run with -race this is the regression test for the render race:
// counters increment from worker goroutines while the exposition renders.
func TestMetricsScrapeRace(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{Workers: 4, QueueDepth: 32})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	get := func(path string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}

	done := make(chan struct{})
	var scrapeErr error
	var scrapeMu sync.Mutex
	var wg sync.WaitGroup
	for _, path := range []string{"/metrics", "/v1/stats", "/debug/trace", "/metrics"} {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if err := get(path); err != nil {
					scrapeMu.Lock()
					scrapeErr = err
					scrapeMu.Unlock()
					return
				}
			}
		}(path)
	}

	w, tgt := uint64(500), uint64(3_000)
	apps := []string{"mcf", "ammp", "art"}
	var subWg sync.WaitGroup
	for i := 0; i < 12; i++ {
		subWg.Add(1)
		go func(i int) {
			defer subWg.Done()
			req := server.SimRequest{Apps: []string{apps[i%len(apps)]}, Warmup: &w, Target: &tgt}
			st, err := c.SubmitSim(ctx, req)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			if _, err := c.Wait(ctx, st.ID, 0); err != nil {
				t.Errorf("wait %d: %v", i, err)
			}
		}(i)
	}
	subWg.Wait()
	close(done)
	wg.Wait()
	scrapeMu.Lock()
	defer scrapeMu.Unlock()
	if scrapeErr != nil {
		t.Fatalf("scrape during burst: %v", scrapeErr)
	}
}

// chromeEvents decodes a Chrome trace payload's events.
type chromeTraceDoc struct {
	TraceEvents []struct {
		Name  string         `json:"name"`
		Phase string         `json:"ph"`
		Pid   int            `json:"pid"`
		Args  map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestTracedJobTwoDomainTrace is the tentpole acceptance test: a job
// submitted with trace=true serves a result byte-identical to a direct run,
// and its /trace payload is one Chrome JSON document holding both clock
// domains — wall-clock daemon spans (admission/queue/run/respond plus the run
// loop's warmup/measure phases) and the simulation's cycle-domain lifecycle —
// every event correlated by the job id.
func TestTracedJobTwoDomainTrace(t *testing.T) {
	req := smallSim()
	req.Trace = true
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	_, c := newTestDaemon(t, server.Config{Logger: testLogger(t)})
	ctx := context.Background()
	st, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("traced job = %s (%s), want done", st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("traced result differs from direct run:\n got %s\nwant %s", got, want)
	}

	raw, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome JSON: %v", err)
	}
	var wall, cycle int
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.Args["job"] != st.ID {
			t.Fatalf("event %q missing job=%s correlation: %v", ev.Name, st.ID, ev.Args)
		}
		names[ev.Name] = true
		if ev.Pid == 1 {
			wall++
		} else {
			cycle++
		}
	}
	if wall == 0 || cycle == 0 {
		t.Fatalf("trace has wall=%d cycle=%d events, want both domains", wall, cycle)
	}
	for _, span := range []string{"job", "admission", "run", "respond", "warmup", "measure"} {
		if !names[span] {
			t.Fatalf("trace is missing the %q span (have %v)", span, names)
		}
	}
}

// TestUntracedJobTraceWallOnly: without trace=true the job still has its
// wall-clock span tree, just no cycle-domain events.
func TestUntracedJobTraceWallOnly(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	st, err := c.SubmitSim(ctx, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Trace(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var doc chromeTraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var wall, cycle int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "M" {
			continue
		}
		if ev.Pid == 1 {
			wall++
		} else {
			cycle++
		}
	}
	if wall == 0 {
		t.Fatalf("untraced job has no wall-clock spans")
	}
	if cycle != 0 {
		t.Fatalf("untraced job leaked %d cycle-domain events", cycle)
	}
}

// TestStatsPhasePartition: /v1/stats reports served jobs whose per-phase
// latencies (admission + queue + run + respond) sum to the end-to-end served
// latency — the partition is exact in wall time, so the histogram sums may
// differ only by microsecond truncation.
func TestStatsPhasePartition(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{Workers: 2})
	ctx := context.Background()

	w, tgt := uint64(1_000), uint64(8_000)
	for _, app := range []string{"mcf", "ammp", "art"} {
		st, err := c.SubmitSim(ctx, server.SimRequest{Apps: []string{app}, Warmup: &w, Target: &tgt})
		if err != nil {
			t.Fatal(err)
		}
		if st, err = c.Wait(ctx, st.ID, 0); err != nil {
			t.Fatal(err)
		}
		if st.State != server.StateDone {
			t.Fatalf("%s: state %s (%s)", app, st.State, st.Error)
		}
	}
	// And one cache hit, which must land in the cache summary, not served.
	if _, err := c.SubmitSim(ctx, server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt}); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Jobs.Accepted != 4 || st.Jobs.Completed != 3 || st.Jobs.Cached != 1 {
		t.Fatalf("jobs = %+v, want 4 accepted (3 served + 1 cache hit), 3 completed, 1 cached", st.Jobs)
	}
	if st.Workers.Total != 2 {
		t.Fatalf("workers.total = %d, want 2", st.Workers.Total)
	}
	if st.EndToEnd.Served.Count != 3 {
		t.Fatalf("served count = %d, want 3", st.EndToEnd.Served.Count)
	}
	if st.EndToEnd.Cache.Count != 1 {
		t.Fatalf("cache-hit count = %d, want 1", st.EndToEnd.Cache.Count)
	}
	for name, ph := range map[string]server.LatencySummary{
		"admission": st.Phases.Admission, "queue": st.Phases.Queue,
		"run": st.Phases.Run, "respond": st.Phases.Respond,
	} {
		if ph.Count != 3 {
			t.Fatalf("phase %s count = %d, want 3 (one per served job)", name, ph.Count)
		}
	}
	phaseSum := st.Phases.Admission.MeanMs + st.Phases.Queue.MeanMs +
		st.Phases.Run.MeanMs + st.Phases.Respond.MeanMs
	e2e := st.EndToEnd.Served.MeanMs
	// Each phase observation truncates < 1µs, so the per-job discrepancy is
	// bounded by 5µs = 0.005ms; allow double for slack.
	if diff := e2e - phaseSum; diff < -0.01 || diff > 0.01 {
		t.Fatalf("phase means sum to %.4fms but end-to-end mean is %.4fms (diff %.4fms)",
			phaseSum, e2e, e2e-phaseSum)
	}
	if st.EndToEnd.Served.P50Ms <= 0 || st.Phases.Run.P95Ms <= 0 {
		t.Fatalf("percentiles not populated: served p50=%v run p95=%v",
			st.EndToEnd.Served.P50Ms, st.Phases.Run.P95Ms)
	}
	if st.Runtime.Goroutines <= 0 {
		t.Fatalf("runtime vitals missing: %+v", st.Runtime)
	}
	if st.Trace.Spans == 0 {
		t.Fatalf("no spans retained after serving jobs")
	}
}

// TestMetricsExpositionStrictlyValid runs the strict Prometheus parser over
// the live daemon's full /metrics output after real traffic — the in-process
// version of CI's promlint gate.
func TestMetricsExpositionStrictlyValid(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	st, err := c.SubmitSim(ctx, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitSim(ctx, smallSim()); err != nil { // one cache hit
		t.Fatal(err)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := obs.ValidateExposition(resp.Body)
	if err != nil {
		t.Fatalf("daemon exposition violates the format: %v", err)
	}
	// The registry carries at minimum the job counters, latency histograms,
	// phase histograms, and Go runtime gauges.
	if n < 15 {
		t.Fatalf("exposition has only %d families, expected the full registry", n)
	}
}

// TestDebugDashServes: the dashboard page is self-contained HTML wired to the
// SSE stream, and the stream's first event arrives immediately with a valid
// Stats payload.
func TestDebugDashServes(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})

	resp, err := http.Get(c.BaseURL + "/debug/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dash content-type = %q", ct)
	}
	page := string(body)
	if !strings.Contains(page, "EventSource") || !strings.Contains(page, "/debug/dash/stream") {
		t.Fatalf("dash page is not wired to the SSE stream")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/debug/dash/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	buf := make([]byte, 8192)
	n, err := sresp.Body.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	first := string(buf[:n])
	if !strings.HasPrefix(first, "event: stats\ndata: ") {
		t.Fatalf("first SSE frame = %q", first)
	}
	var st server.Stats
	payload := strings.TrimPrefix(strings.SplitN(first, "\n", 3)[1], "data: ")
	if err := json.Unmarshal([]byte(payload), &st); err != nil {
		t.Fatalf("stream payload is not a Stats snapshot: %v", err)
	}
	if st.Queue.Capacity <= 0 {
		t.Fatalf("stream Stats missing queue capacity: %+v", st.Queue)
	}
}
