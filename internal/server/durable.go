package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"smtdram/internal/core"
	"smtdram/internal/obs"
	"smtdram/internal/store"
)

// This file wires the durability layer (internal/store) into the daemon:
//
//   - the result cache gains a disk tier: lookups fall back LRU → disk →
//     compute, and every computed result is written through to the
//     content-addressed store before its jobs resolve;
//   - every job lifecycle transition is journaled write-ahead (submitted
//     with the full request, started, resolved, cancelled);
//   - startup replays the journal: finished jobs are rehydrated from the
//     store (so their ids keep answering), jobs that were queued or running
//     at crash time are re-enqueued under their original ids, and the
//     journal is compacted to exactly the live state;
//   - /readyz reports 503 until recovery's re-enqueued jobs finish, and
//     whenever the store or journal has degraded to memory-only mode.
//
// Determinism makes all of this cheap to trust: a fingerprint fully names a
// result, so a stored entry never goes stale and a re-run after a crash
// produces byte-identical output.

// journalFileName is the write-ahead journal's file name under DataDir.
const journalFileName = "journal.wal"

// storeMeta is the sidecar blob stored beside each result payload: data that
// rides next to — never inside — the byte-identical result bytes.
type storeMeta struct {
	Skip *SkipInfo `json:"skip,omitempty"`
}

func skipFromMeta(meta []byte) *SkipInfo {
	if len(meta) == 0 {
		return nil
	}
	var m storeMeta
	if json.Unmarshal(meta, &m) != nil {
		return nil
	}
	return m.Skip
}

// openDurable opens the store and journal under cfg.DataDir and runs crash
// recovery. Open failures degrade to memory-only serving with a warning —
// the daemon always comes up.
func (s *Server) openDurable() {
	if s.cfg.DataDir == "" {
		return
	}
	s.storeWanted = true
	st, err := store.Open(s.cfg.DataDir, s.cfg.Fsync)
	if err != nil {
		s.log.Warn("result store unavailable; serving memory-only", "dir", s.cfg.DataDir, "err", err)
		return
	}
	s.store = st
	s.recoverFromJournal(filepath.Join(s.cfg.DataDir, journalFileName))
}

// storeGet is the disk tier of the cache ladder. A corrupt entry has already
// been quarantined by the store; it reports as a miss and the caller
// recomputes.
func (s *Server) storeGet(fp string) ([]byte, *SkipInfo, bool) {
	if s.store == nil {
		return nil, nil, false
	}
	payload, meta, err := s.store.Get(fp)
	switch {
	case err == nil:
		s.count(s.mStoreHits)
		return payload, skipFromMeta(meta), true
	case errors.Is(err, store.ErrNotFound):
		s.count(s.mStoreMisses)
	default:
		s.count(s.mStoreCorrupt)
		s.count(s.mStoreMisses)
		s.log.Warn("store entry corrupt; quarantined, recomputing", "fp", fp, "err", err)
	}
	return nil, nil, false
}

// storePut writes a computed result through to the disk tier. Write errors
// degrade the store to memory-only mode: serving continues from the LRU and
// recomputation, and /readyz turns unready.
func (s *Server) storePut(fp string, payload []byte, skip *SkipInfo) {
	if s.store == nil {
		return
	}
	var meta []byte
	if skip != nil {
		meta, _ = json.Marshal(storeMeta{Skip: skip})
	}
	if err := s.store.Put(fp, payload, meta); err != nil {
		s.count(s.mStoreWriteErrors)
		if !errors.Is(err, store.ErrDegraded) {
			s.log.Warn("store write failed; degrading to memory-only result serving",
				"fp", fp, "err", err)
		}
	}
}

// journalAppend writes one write-ahead record; append failures disable the
// journal (memory-only durability) rather than failing the job.
func (s *Server) journalAppend(r store.Record) {
	if s.journal == nil {
		return
	}
	if err := s.journal.Append(r); err != nil {
		s.count(s.mJournalErrors)
		if !errors.Is(err, store.ErrDegraded) {
			s.log.Warn("journal append failed; write-ahead durability disabled", "job", r.Job, "err", err)
		}
		return
	}
	s.count(s.mJournalRecords)
}

// durabilityDegraded reports whether the configured disk tier is not fully
// functional (open failure, write error, or journal failure).
func (s *Server) durabilityDegraded() bool {
	if !s.storeWanted {
		return false
	}
	return s.store == nil || s.store.Degraded() ||
		s.journal == nil || s.journal.Degraded()
}

// recoveryOutstanding counts re-enqueued jobs that have not yet finished
// their post-crash re-run.
func (s *Server) recoveryOutstanding() int {
	n := 0
	for _, j := range s.recovered {
		j.mu.Lock()
		if !j.state.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// foldedJob is one job's state reconstructed from journal replay. Records
// are folded order-independently: a resolved record landing (in wall time)
// before its submitted record still folds to a complete picture.
type foldedJob struct {
	kind, fp string
	req      json.RawMessage
	state    State // zero ⇒ queued/running (re-enqueue)
	errMsg   string
}

// recoverFromJournal replays the write-ahead journal, rebuilds the job
// table, compacts the journal, and re-enqueues interrupted jobs. It runs
// inside New, before the handler is reachable, so clients never observe a
// half-recovered table; the re-enqueued runs themselves proceed in the
// background and /readyz reports 503 until they finish.
func (s *Server) recoverFromJournal(path string) {
	recs, err := store.ReadJournal(path)
	if err != nil {
		s.log.Warn("journal unreadable; starting with an empty job table", "path", path, "err", err)
		recs = nil
	}
	span := s.spans.Start("recovery", obs.A("records", strconv.Itoa(len(recs))))
	s.recReplayed = len(recs)

	var order []string
	byID := map[string]*foldedJob{}
	var maxID uint64
	for _, r := range recs {
		f := byID[r.Job]
		if f == nil {
			f = &foldedJob{}
			byID[r.Job] = f
			order = append(order, r.Job)
		}
		if n, ok := parseJobID(r.Job); ok && n > maxID {
			maxID = n
		}
		// Kind and fingerprint ride on submitted, resolved, and cancelled
		// records alike: a compacted journal holds only the latest record per
		// job, so every type must be able to name the job on its own.
		if f.kind == "" {
			f.kind = r.Kind
		}
		if f.fp == "" {
			f.fp = r.FP
		}
		switch r.Type {
		case store.RecSubmitted:
			f.req = r.Request
		case store.RecResolved:
			if r.State == string(StateFailed) {
				f.state, f.errMsg = StateFailed, r.Error
			} else {
				f.state = StateDone
			}
		case store.RecCancelled:
			f.state = StateCancelled
		}
	}
	// Fresh ids must never collide with recovered ones. Single-threaded:
	// the handler is not reachable yet.
	if s.nextID.Load() < maxID {
		s.nextID.Store(maxID)
	}

	// Pass 1: rehydrate terminal jobs and decide which to re-enqueue; the
	// compacted journal is exactly this live state.
	var compact []store.Record
	type pendingJob struct {
		id string
		f  *foldedJob
	}
	var pending []pendingJob
	for _, id := range order {
		f := byID[id]
		if f.state == StateDone || f.state == "" {
			// Done jobs rehydrate from the store; interrupted jobs whose
			// fingerprint already has a stored result (a sibling finished
			// and persisted before the crash) rehydrate the same way.
			if payload, sk, ok := s.storeGet(f.fp); ok {
				s.rehydrateTerminal(id, f.kind, f.fp, StateDone, "", payload, sk)
				s.recRehydrated++
				// Keep the (tiny) request in the compacted record: if the
				// stored result is ever quarantined, a later recovery re-runs
				// the job instead of failing it.
				compact = append(compact, store.Record{Type: store.RecResolved, Job: id, Kind: f.kind, FP: f.fp, State: string(StateDone), Request: f.req})
				continue
			}
			if len(f.req) == 0 {
				// Result lost and no request to re-run (pre-durability
				// record or torn journal): the id must still answer.
				s.rehydrateTerminal(id, f.kind, f.fp, StateFailed, "recovery: result lost and request not journaled", nil, nil)
				compact = append(compact, store.Record{Type: store.RecResolved, Job: id, Kind: f.kind, FP: f.fp, State: string(StateFailed), Error: "recovery: result lost and request not journaled"})
				continue
			}
			pending = append(pending, pendingJob{id: id, f: f})
			compact = append(compact, store.Record{Type: store.RecSubmitted, Job: id, Kind: f.kind, FP: f.fp, Request: f.req})
			continue
		}
		s.rehydrateTerminal(id, f.kind, f.fp, f.state, f.errMsg, nil, nil)
		rec := store.Record{Type: store.RecResolved, Job: id, Kind: f.kind, FP: f.fp, State: string(f.state), Error: f.errMsg}
		if f.state == StateCancelled {
			rec = store.Record{Type: store.RecCancelled, Job: id, Kind: f.kind, FP: f.fp}
		}
		compact = append(compact, rec)
	}

	// Rotate before re-enqueueing, so the re-runs' started/resolved records
	// land in the fresh journal, after their compacted submitted records.
	j, err := store.RotateJournal(path, compact, s.cfg.Fsync)
	if err != nil {
		s.log.Warn("journal rotation failed; write-ahead durability disabled", "path", path, "err", err)
	} else {
		s.journal = j
	}

	for _, p := range pending {
		if rj := s.reenqueueRecovered(p.id, p.f); rj != nil {
			s.recovered = append(s.recovered, rj)
			s.recReenqueued++
		}
	}

	span.SetAttr("rehydrated", strconv.Itoa(s.recRehydrated))
	span.SetAttr("reenqueued", strconv.Itoa(s.recReenqueued))
	span.End()
	if s.recReplayed > 0 {
		s.log.Info("journal recovery complete",
			"records", s.recReplayed, "rehydrated", s.recRehydrated, "reenqueued", s.recReenqueued)
	}
}

// parseJobID extracts the numeric suffix of a job id — "j-N" standalone,
// "j-<node>-N" on a fleet node (node ids never contain '-').
func parseJobID(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, false
	}
	if i := strings.LastIndexByte(rest, '-'); i >= 0 {
		rest = rest[i+1:]
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	return n, err == nil
}

// rehydrateTerminal registers a job already in a terminal state — a finished
// job surviving the restart, so its id keeps answering /v1/jobs/{id}.
func (s *Server) rehydrateTerminal(id, kind, fp string, state State, errMsg string, result []byte, skip *SkipInfo) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.registerJobLocked(id, kind, fp)
	j.state = state
	j.errMsg = errMsg
	j.result = result
	j.skip = skip
	j.slotFreed = true // never held an admission token in this process
	return j
}

// reenqueueRecovered rebuilds the flight for a job that was queued or
// running at crash time and re-runs it under its original id. A request that
// no longer parses (schema drift across a binary upgrade) fails the job
// rather than dropping it.
func (s *Server) reenqueueRecovered(id string, f *foldedJob) *job {
	var fn func(*flight) func(context.Context) (json.RawMessage, error)
	switch f.kind {
	case "sim":
		var req SimRequest
		var cfg core.Config
		err := json.Unmarshal(f.req, &req)
		if err == nil {
			cfg, err = req.Config()
		}
		if err != nil {
			return s.rehydrateTerminal(id, f.kind, f.fp, StateFailed, "recovery: "+err.Error(), nil, nil)
		}
		fn = func(fl *flight) func(context.Context) (json.RawMessage, error) {
			return s.simFlightFn(fl, cfg, req.Trace)
		}
	case "figure":
		var req FigRequest
		err := json.Unmarshal(f.req, &req)
		if err == nil {
			err = (FigRequest{Fig: req.Fig}).validate()
		}
		if err != nil {
			return s.rehydrateTerminal(id, f.kind, f.fp, StateFailed, "recovery: "+err.Error(), nil, nil)
		}
		fn = func(fl *flight) func(context.Context) (json.RawMessage, error) {
			return s.figFlightFn(fl, req)
		}
	default:
		return s.rehydrateTerminal(id, f.kind, f.fp, StateFailed, fmt.Sprintf("recovery: unknown job kind %q", f.kind), nil, nil)
	}

	root := s.spans.Start("job", obs.A("kind", f.kind), obs.A("fp", f.fp), obs.A("recovered", "true"))
	s.mu.Lock()
	fl, created := s.flightForLocked(f.fp, root, fn)
	j := s.registerJobLocked(id, f.kind, f.fp)
	j.deduped = !created
	j.flight = fl
	j.flightID = fl.id
	j.span = root
	root.SetAttr("job", j.id)
	root.SetAttr("flight", fl.id)
	j.tAdmitted = j.created
	if fl.started {
		j.state = StateRunning
		j.tRunStart = j.tAdmitted
	} else {
		j.queueSpan = root.Child("queue_wait")
	}
	fl.refs++
	fl.jobs = append(fl.jobs, j)
	// Take an admission token if one is free; recovered jobs were admitted
	// before the crash, so they re-enter even when the queue shrank.
	select {
	case s.slots <- struct{}{}:
	default:
		j.slotFreed = true
	}
	s.mu.Unlock()
	s.log.Info("job re-enqueued from journal", "job", id, "kind", f.kind, "fp", f.fp, "flight", fl.id)
	return j
}

// StoreHealth is the durable-store section of /readyz and /v1/stats.
type StoreHealth struct {
	// Configured reports whether a data directory was given at all.
	Configured bool `json:"configured"`
	// Degraded reports a store or journal that hit an IO error and fell
	// back to memory-only operation (sticky until restart).
	Degraded bool `json:"degraded"`
	Entries  int  `json:"entries"`
}

// RecoveryStatus reports startup journal recovery progress.
type RecoveryStatus struct {
	ReplayedRecords int `json:"replayed_records"`
	Rehydrated      int `json:"rehydrated"`
	Reenqueued      int `json:"reenqueued"`
	// Outstanding counts re-enqueued jobs still re-running; readiness
	// requires zero.
	Outstanding int `json:"outstanding"`
}

// Readiness is the /readyz payload.
type Readiness struct {
	Ready    bool           `json:"ready"`
	Draining bool           `json:"draining"`
	Store    StoreHealth    `json:"store"`
	Recovery RecoveryStatus `json:"recovery"`
	// Reasons lists why Ready is false (empty when ready).
	Reasons []string `json:"reasons,omitempty"`
}

func (s *Server) storeHealth() StoreHealth {
	h := StoreHealth{Configured: s.storeWanted, Degraded: s.durabilityDegraded()}
	if s.store != nil {
		h.Entries = s.store.Len()
	}
	return h
}

func (s *Server) recoveryStatus() RecoveryStatus {
	return RecoveryStatus{
		ReplayedRecords: s.recReplayed,
		Rehydrated:      s.recRehydrated,
		Reenqueued:      s.recReenqueued,
		Outstanding:     s.recoveryOutstanding(),
	}
}

// readiness assembles the /readyz verdict: unready while draining, while
// journal recovery is still re-running interrupted jobs, and while the disk
// tier is degraded.
func (s *Server) readiness() Readiness {
	r := Readiness{
		Draining: s.draining.Load(),
		Store:    s.storeHealth(),
		Recovery: s.recoveryStatus(),
	}
	if r.Draining {
		r.Reasons = append(r.Reasons, "draining")
	}
	if r.Recovery.Outstanding > 0 {
		r.Reasons = append(r.Reasons, fmt.Sprintf("recovering (%d jobs re-running)", r.Recovery.Outstanding))
	}
	if r.Store.Degraded {
		r.Reasons = append(r.Reasons, "store degraded to memory-only mode")
	}
	r.Ready = len(r.Reasons) == 0
	return r
}
