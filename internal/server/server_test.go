package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"smtdram/internal/core"
	"smtdram/internal/server"
	"smtdram/internal/server/client"
)

func newTestDaemon(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, client.New(ts.URL)
}

// testLogWriter routes the daemon's slog output into the test log.
type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

func smallSim() server.SimRequest {
	w, tgt := uint64(2_000), uint64(20_000)
	return server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt}
}

// TestSimResultByteIdenticalToDirectRun is the core acceptance check: the
// payload the daemon serves equals json.Marshal of the same configuration run
// directly — i.e. what `smtdram -json` prints.
func TestSimResultByteIdenticalToDirectRun(t *testing.T) {
	req := smallSim()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}

	_, c := newTestDaemon(t, server.Config{Logger: testLogger(t)})
	ctx := context.Background()
	st, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job state = %s (%s), want done", st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("served result differs from direct run:\n got %s\nwant %s", got, want)
	}
}

// TestFetchPolicyKeysResultCache: two requests differing only in the SMT
// fetch policy (the paper's main variable) must build configurations with
// distinct fingerprints — otherwise the daemon's cache and dedup would hand
// one policy's results to the other.
func TestFetchPolicyKeysResultCache(t *testing.T) {
	dwarnReq, icountReq := smallSim(), smallSim()
	icountReq.Fetch = "icount"
	dwarn, err := dwarnReq.Config()
	if err != nil {
		t.Fatal(err)
	}
	icount, err := icountReq.Config()
	if err != nil {
		t.Fatal(err)
	}
	if dwarn.Fingerprint() == icount.Fingerprint() {
		t.Fatalf("fetch policy missing from the cache key: %q", dwarn.Fingerprint())
	}
}

// TestCacheHitSecondSubmission: a repeated configuration is answered from
// cache without a second simulation, and the daemon's counters say so.
func TestCacheHitSecondSubmission(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()
	req := smallSim()

	st1, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st1, err = c.Wait(ctx, st1.ID, 0); err != nil {
		t.Fatal(err)
	}
	first, err := c.Result(ctx, st1.ID)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != server.StateDone {
		t.Fatalf("second submission: cached=%v state=%s, want cached done", st2.Cached, st2.State)
	}
	if !bytes.Equal(st2.Result, first) {
		t.Fatalf("cached result differs from the original")
	}
	if v, err := c.MetricValue(ctx, "smtdram_jobs_cached_total"); err != nil || v != 1 {
		t.Fatalf("jobs_cached_total = %v (%v), want 1", v, err)
	}
	if v, err := c.MetricValue(ctx, "smtdram_sims_run_total"); err != nil || v != 1 {
		t.Fatalf("sims_run_total = %v (%v), want exactly 1 simulation", v, err)
	}
}

// TestSkipStatsSurfaced checks every surface the two-speed-clock summary is
// served on: the done JobStatus, the X-Smtdram-Skip-* headers beside the
// byte-identical /result body, the /v1/stats aggregate, and a cache-hit
// answer replaying the producing run's numbers.
func TestSkipStatsSurfaced(t *testing.T) {
	srv := server.New(server.Config{Logger: testLogger(t)})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	c := client.New(ts.URL)
	ctx := context.Background()

	st, err := c.SubmitSim(ctx, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.Skip == nil {
		t.Fatal("done JobStatus carries no skip summary")
	}
	if st.Skip.Wall == 0 || st.Skip.Skipped == 0 || st.Skip.Skipped > st.Skip.Wall {
		t.Fatalf("implausible skip summary: %+v", st.Skip)
	}
	if want := float64(st.Skip.Skipped) / float64(st.Skip.Wall); st.Skip.Rate != want {
		t.Fatalf("skip rate %v != skipped/wall %v", st.Skip.Rate, want)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Smtdram-Skipped-Cycles"); got != fmt.Sprint(st.Skip.Skipped) {
		t.Fatalf("X-Smtdram-Skipped-Cycles = %q, want %d", got, st.Skip.Skipped)
	}
	if got := resp.Header.Get("X-Smtdram-Wall-Cycles"); got != fmt.Sprint(st.Skip.Wall) {
		t.Fatalf("X-Smtdram-Wall-Cycles = %q, want %d", got, st.Skip.Wall)
	}
	if resp.Header.Get("X-Smtdram-Skiprate") == "" {
		t.Fatal("result response missing X-Smtdram-Skiprate")
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skip.SimRuns != 1 || stats.Skip.CyclesSkipped != st.Skip.Skipped || stats.Skip.CyclesWall != st.Skip.Wall {
		t.Fatalf("stats skip aggregate %+v does not match the run's %+v", stats.Skip, st.Skip)
	}
	if stats.Skip.Rate != st.Skip.Rate {
		t.Fatalf("stats skip rate %v != run rate %v", stats.Skip.Rate, st.Skip.Rate)
	}

	// A cache hit must replay the producing run's summary without rerunning.
	st2, err := c.SubmitSim(ctx, smallSim())
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.State != server.StateDone {
		t.Fatalf("second submission: cached=%v state=%s, want cached done", st2.Cached, st2.State)
	}
	if st2.Skip == nil || *st2.Skip != *st.Skip {
		t.Fatalf("cached skip summary %+v differs from the producing run's %+v", st2.Skip, st.Skip)
	}
}

// TestSSEProgressThenDone consumes a real simulation's event stream through
// the client: at least one progress sample, then the done event.
func TestSSEProgressThenDone(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{ProgressInterval: 1_000})
	ctx := context.Background()

	w, tgt := uint64(0), uint64(200_000)
	st, err := c.SubmitSim(ctx, server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt})
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	var terminal client.Event
	err = c.Events(ctx, st.ID, func(ev client.Event) error {
		if ev.Name == "progress" {
			progress++
			var p core.Progress
			if err := json.Unmarshal(ev.Data, &p); err != nil {
				return err
			}
			if p.TargetTotal != tgt {
				t.Errorf("progress target_total = %d, want %d", p.TargetTotal, tgt)
			}
		} else {
			terminal = ev
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if progress == 0 {
		t.Fatalf("saw no progress events before the terminal event")
	}
	if terminal.Name != "done" {
		t.Fatalf("terminal event = %q, want done", terminal.Name)
	}
}

// TestFigureSweep runs the cheapest figure job end to end and checks the
// envelope, plus the figure result cache.
func TestFigureSweep(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	st, err := c.SubmitFigure(ctx, server.FigRequest{Fig: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("figure job = %s (%s), want done", st.State, st.Error)
	}
	raw, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var env struct {
		Fig    string `json:"fig"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Fig != "table2" || !strings.Contains(env.Output, "Table 2") {
		t.Fatalf("figure envelope = %+v, want table2 output", env)
	}

	st2, err := c.SubmitFigure(ctx, server.FigRequest{Fig: "table2"})
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("second identical figure submission should hit the cache")
	}
}

// TestBadRequests: malformed bodies, unknown knobs, and unknown jobs map to
// 400/404, not 500s or hung jobs.
func TestBadRequests(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	checkCode := func(err error, want int, what string) {
		t.Helper()
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != want {
			t.Fatalf("%s: err = %v, want APIError %d", what, err, want)
		}
	}

	_, err := c.SubmitSim(ctx, server.SimRequest{Apps: []string{"no-such-app"}})
	checkCode(err, http.StatusBadRequest, "unknown app")
	_, err = c.SubmitSim(ctx, server.SimRequest{Apps: []string{"mcf"}, DRAM: "sdram"})
	checkCode(err, http.StatusBadRequest, "unknown dram kind")
	_, err = c.SubmitFigure(ctx, server.FigRequest{Fig: "11"})
	checkCode(err, http.StatusBadRequest, "unknown figure")
	_, err = c.Job(ctx, "j-999999")
	checkCode(err, http.StatusNotFound, "unknown job")
	_, err = c.Result(ctx, "j-999999")
	checkCode(err, http.StatusNotFound, "unknown job result")

	// A request body with unknown fields is rejected up front.
	resp, err := http.Post(c.BaseURL+"/v1/sim", "application/json", strings.NewReader(`{"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d, want 400", resp.StatusCode)
	}
}

// TestDrainRejectsNewWork: a draining daemon answers 503 and Drain returns
// once in-flight work is done.
func TestDrainRejectsNewWork(t *testing.T) {
	srv, c := newTestDaemon(t, server.Config{})
	ctx := context.Background()

	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatalf("drain of an idle daemon: %v", err)
	}
	_, err := c.SubmitSim(ctx, smallSim())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: %v, want 503", err)
	}
}

// TestLoadGenSmoke runs the load generator against an in-process daemon with
// a tiny repeated mix: no request may be dropped, and the repeats must be
// served by cache or dedup rather than fresh simulations.
func TestLoadGenSmoke(t *testing.T) {
	_, c := newTestDaemon(t, server.Config{Workers: 2, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	w, tgt := uint64(1_000), uint64(5_000)
	mix := []server.SimRequest{
		{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt},
		{Apps: []string{"ammp"}, Warmup: &w, Target: &tgt},
	}
	rep, err := c.LoadGen(ctx, client.LoadGenConfig{Requests: 10, Clients: 4, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != 10 || rep.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want 10/0", rep.Completed, rep.Failed)
	}
	if rep.SimsRun > 2 {
		t.Fatalf("sims_run = %.0f, want at most 2 (everything else cached or deduped)", rep.SimsRun)
	}
	if rep.CacheHitRatio <= 0 {
		t.Fatalf("cache_hit_ratio = %v, want > 0", rep.CacheHitRatio)
	}
}
