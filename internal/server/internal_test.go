package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// blockingFn builds a submit fn that parks until release fires (or the flight
// context is cancelled), counting executions.
func blockingFn(release <-chan struct{}, out json.RawMessage, runs *atomic.Int64) func(*flight) func(context.Context) (json.RawMessage, error) {
	return func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return func(ctx context.Context) (json.RawMessage, error) {
			if runs != nil {
				runs.Add(1)
			}
			select {
			case <-release:
				return out, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
}

// submitReq builds the bare request submit needs for header-driven admission.
func submitReq() *http.Request {
	return httptest.NewRequest(http.MethodPost, "/v1/sim", nil)
}

func decodeStatus(t *testing.T, rec *httptest.ResponseRecorder) JobStatus {
	t.Helper()
	var st JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding response %q: %v", rec.Body.String(), err)
	}
	return st
}

// waitState polls a job until it reaches want (or the deadline).
func waitState(t *testing.T, s *Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		j := s.jobs[id]
		s.mu.Unlock()
		if j == nil {
			t.Fatalf("job %s vanished", id)
		}
		st := j.status(true)
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s, want %s", id, st.State, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDedupSharesOneFlight is the acceptance check for single-flight dedup:
// two identical in-flight submissions must run exactly one computation, and
// both jobs must complete with the same bytes.
func TestDedupSharesOneFlight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()

	release := make(chan struct{})
	var runs atomic.Int64
	fn := blockingFn(release, json.RawMessage(`{"v":1}`), &runs)

	rec1 := httptest.NewRecorder()
	s.submit(rec1, submitReq(), "sim", "fp-x", nil, fn)
	rec2 := httptest.NewRecorder()
	s.submit(rec2, submitReq(), "sim", "fp-x", nil, fn)
	if rec1.Code != http.StatusAccepted || rec2.Code != http.StatusAccepted {
		t.Fatalf("codes = %d, %d; want both 202", rec1.Code, rec2.Code)
	}
	st1, st2 := decodeStatus(t, rec1), decodeStatus(t, rec2)
	if st1.Deduped {
		t.Fatalf("first submission must not be marked deduped")
	}
	if !st2.Deduped {
		t.Fatalf("second identical submission must join the first's flight")
	}

	close(release)
	got1 := waitState(t, s, st1.ID, StateDone)
	got2 := waitState(t, s, st2.ID, StateDone)
	if runs.Load() != 1 {
		t.Fatalf("computation ran %d times, want exactly 1", runs.Load())
	}
	if string(got1.Result) != `{"v":1}` || string(got2.Result) != `{"v":1}` {
		t.Fatalf("results = %q, %q; want both {\"v\":1}", got1.Result, got2.Result)
	}
}

// TestBackpressure429 checks admission control: a full queue rejects with 429
// and Retry-After, and completing a job frees its slot.
func TestBackpressure429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()

	release := make(chan struct{})
	fn := blockingFn(release, json.RawMessage(`{}`), nil)

	rec1 := httptest.NewRecorder()
	s.submit(rec1, submitReq(), "sim", "fp-a", nil, fn)
	if rec1.Code != http.StatusAccepted {
		t.Fatalf("first submission: %d, want 202", rec1.Code)
	}
	rec2 := httptest.NewRecorder()
	s.submit(rec2, submitReq(), "sim", "fp-b", nil, blockingFn(release, json.RawMessage(`{}`), nil))
	if rec2.Code != http.StatusTooManyRequests {
		t.Fatalf("second submission: %d, want 429", rec2.Code)
	}
	if got := rec2.Result().Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}

	close(release)
	waitState(t, s, decodeStatus(t, rec1).ID, StateDone)

	rec3 := httptest.NewRecorder()
	s.submit(rec3, submitReq(), "sim", "fp-c", nil, blockingFn(nil, nil, nil))
	if rec3.Code != http.StatusAccepted {
		t.Fatalf("submission after slot freed: %d, want 202", rec3.Code)
	}
}

// TestCancelFreesSlotAndCancelsFlight checks DELETE: the job goes to
// cancelled, the underlying computation sees context cancellation, the
// admission slot frees, and the terminal state survives the flight unwinding.
func TestCancelFreesSlotAndCancelsFlight(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sawCancel := make(chan struct{})
	rec := httptest.NewRecorder()
	s.submit(rec, submitReq(), "sim", "fp-cancel", nil, func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return func(ctx context.Context) (json.RawMessage, error) {
			<-ctx.Done()
			close(sawCancel)
			return nil, ctx.Err()
		}
	})
	st := decodeStatus(t, rec)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d, want 200", resp.StatusCode)
	}
	var got JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after DELETE = %s, want cancelled", got.State)
	}

	select {
	case <-sawCancel:
	case <-time.After(5 * time.Second):
		t.Fatalf("computation never observed cancellation")
	}

	// The slot must free: a new submission is admitted with QueueDepth 1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec2 := httptest.NewRecorder()
		s.submit(rec2, submitReq(), "sim", "fp-after", nil, blockingFn(nil, nil, nil))
		if rec2.Code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never freed after cancel (last code %d)", rec2.Code)
		}
		time.Sleep(time.Millisecond)
	}

	// And cancelled must stick even after the flight's error unwinds.
	time.Sleep(10 * time.Millisecond)
	final := waitState(t, s, st.ID, StateCancelled)
	if final.State != StateCancelled {
		t.Fatalf("final state = %s, want cancelled", final.State)
	}
}

// TestCancelOneDedupedSiblingKeepsOther: deleting one of two deduped jobs
// must not cancel the shared simulation; the surviving job still completes.
func TestCancelOneDedupedSiblingKeepsOther(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	fn := blockingFn(release, json.RawMessage(`{"kept":true}`), nil)
	rec1 := httptest.NewRecorder()
	s.submit(rec1, submitReq(), "sim", "fp-shared", nil, fn)
	rec2 := httptest.NewRecorder()
	s.submit(rec2, submitReq(), "sim", "fp-shared", nil, fn)
	st1, st2 := decodeStatus(t, rec1), decodeStatus(t, rec2)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st2.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	close(release)
	got := waitState(t, s, st1.ID, StateDone)
	if string(got.Result) != `{"kept":true}` {
		t.Fatalf("surviving sibling result = %q", got.Result)
	}
	waitState(t, s, st2.ID, StateCancelled)
}

// TestSSEStreamDeterministic drives the event stream end to end with a
// hand-rolled computation: subscribe, emit one progress sample, finish, and
// check the wire framing.
func TestSSEStreamDeterministic(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	subscribed := make(chan struct{})
	release := make(chan struct{})
	rec := httptest.NewRecorder()
	s.submit(rec, submitReq(), "sim", "fp-sse", nil, func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return func(ctx context.Context) (json.RawMessage, error) {
			select {
			case <-subscribed:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			s.broadcastProgress(fl, []byte(`{"cycle":42}`))
			select {
			case <-release:
				return json.RawMessage(`{"done":true}`), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
	st := decodeStatus(t, rec)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	// Wait for the handler to register its subscription, then let the
	// computation emit.
	s.mu.Lock()
	j := s.jobs[st.ID]
	s.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		j.mu.Lock()
		n := len(j.subs)
		j.mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	close(subscribed)

	sc := bufio.NewScanner(resp.Body)
	readEvent := func() (name, data string) {
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "" && name != "":
				return name, data
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return "", ""
	}

	name, data := readEvent()
	if name != "progress" || data != `{"cycle":42}` {
		t.Fatalf("first event = %q %q, want progress {\"cycle\":42}", name, data)
	}
	close(release)
	name, data = readEvent()
	if name != "done" {
		t.Fatalf("terminal event = %q, want done", name)
	}
	var final JobStatus
	if err := json.Unmarshal([]byte(data), &final); err != nil || final.State != StateDone {
		t.Fatalf("terminal payload = %q (err %v), want a done JobStatus", data, err)
	}
}

// TestCacheCountersAreCounters: a repeated submission is served from cache,
// the hit/miss counters track it, and /metrics exposes them with counter
// semantics (the _total suffix promises rate()-ability to Prometheus tooling).
func TestCacheCountersAreCounters(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	instant := func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return func(context.Context) (json.RawMessage, error) {
			return json.RawMessage(`{"v":1}`), nil
		}
	}
	rec1 := httptest.NewRecorder()
	s.submit(rec1, submitReq(), "sim", "fp-counted", nil, instant)
	waitState(t, s, decodeStatus(t, rec1).ID, StateDone)

	rec2 := httptest.NewRecorder()
	s.submit(rec2, submitReq(), "sim", "fp-counted", nil, instant)
	if rec2.Code != http.StatusOK || !decodeStatus(t, rec2).Cached {
		t.Fatalf("repeat submission: code %d, want 200 served from cache", rec2.Code)
	}

	s.metricsMu.Lock()
	hits, _ := s.reg.Value("cache_hits_total", 0)
	misses, _ := s.reg.Value("cache_misses_total", 0)
	s.metricsMu.Unlock()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits=%v misses=%v, want 1/1", hits, misses)
	}

	rec := httptest.NewRecorder()
	s.handleMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE smtdram_cache_hits_total counter",
		"# TYPE smtdram_cache_misses_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestDrainSubmitRace hammers submit while Drain runs: the draining flag and
// wg.Add are ordered by s.mu against wg.Wait, so the race detector must stay
// quiet and Drain must not miss a late-admitted flight.
func TestDrainSubmitRace(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	instant := func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return func(context.Context) (json.RawMessage, error) {
			return json.RawMessage(`{}`), nil
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				s.submit(rec, submitReq(), "sim", fmt.Sprintf("fp-race-%d-%d", i, n), nil, instant)
			}
		}(i)
	}

	time.Sleep(2 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := s.Drain(ctx)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatalf("drain under submission load: %v", err)
	}
}

// TestFailedFlightNotCached: a failing computation must not poison the cache
// or the memo — a later identical submission runs again.
func TestFailedFlightNotCached(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Close()

	var runs atomic.Int64
	fail := func(fl *flight) func(context.Context) (json.RawMessage, error) {
		return func(ctx context.Context) (json.RawMessage, error) {
			runs.Add(1)
			return nil, context.DeadlineExceeded
		}
	}
	rec1 := httptest.NewRecorder()
	s.submit(rec1, submitReq(), "sim", "fp-fail", nil, fail)
	st1 := decodeStatus(t, rec1)
	waitState(t, s, st1.ID, StateFailed)

	rec2 := httptest.NewRecorder()
	s.submit(rec2, submitReq(), "sim", "fp-fail", nil, fail)
	if rec2.Code != http.StatusAccepted {
		t.Fatalf("resubmission after failure: %d, want 202 (not served from cache)", rec2.Code)
	}
	st2 := decodeStatus(t, rec2)
	if st2.Cached {
		t.Fatalf("failed result must not be cached")
	}
	waitState(t, s, st2.ID, StateFailed)
	if runs.Load() != 2 {
		t.Fatalf("computation ran %d times, want 2 (failure not memoised)", runs.Load())
	}
}
