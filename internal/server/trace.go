package server

import (
	"net/http"

	"smtdram/internal/obs"
)

// handleJobTrace serves one job's combined two-domain trace as Chrome
// trace_event JSON: the job's wall-clock spans (admission → queue → run →
// respond, plus the simulator's warmup/measure phases), and — when the job
// was submitted with "trace": true — the simulation's cycle-domain request
// lifecycle, anchored so cycle 0 lands at the wall-clock instant the run
// started. Load the payload in ui.perfetto.dev; every event carries a "job"
// arg correlating the domains.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	simEvents, simStart := j.simEvents, j.simStart
	s.mu.Unlock()

	id, flightID := j.id, j.flightID
	spans := obs.FilterSpans(s.spans.Snapshot(), func(rec obs.SpanRecord) bool {
		// The job's own tree, plus the run span of the flight it rode — for a
		// deduped job that subtree hangs off the initiating job's root.
		if rec.Attr("job") == id {
			return true
		}
		return flightID != "" && rec.Attr("flight") == flightID
	})
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeJobTrace(w, obs.JobTrace{
		JobID: id, Spans: spans, Base: s.spans.Base(),
		SimEvents: simEvents, SimStart: simStart,
	})
}

// handleDebugTrace dumps the daemon's whole wall-clock span buffer as Chrome
// trace_event JSON — every retained job's spans side by side, one track per
// job, open spans drawn to now.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = obs.WriteChromeSpans(w, s.spans.Snapshot(), s.spans.Base())
}
