package workload

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	app, _ := ByName("mcf")
	var buf bytes.Buffer
	const n = 50_000
	if err := Record(app, 0, 7, n, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Len() != n {
		t.Fatalf("replay length %d, want %d", rep.Len(), n)
	}
	// The replayed stream must match the generator exactly.
	g, _ := NewGen(app, 0, 7)
	for i := 0; i < n; i++ {
		want := g.Next()
		got := rep.Next()
		if got != want {
			t.Fatalf("instruction %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestReplayLoops(t *testing.T) {
	app, _ := ByName("gzip")
	var buf bytes.Buffer
	if err := Record(app, 0, 1, 100, &buf); err != nil {
		t.Fatal(err)
	}
	rep, err := NewReplay(&buf)
	if err != nil {
		t.Fatal(err)
	}
	first := rep.Next()
	for i := 0; i < rep.Len()-1; i++ {
		rep.Next()
	}
	if again := rep.Next(); again != first {
		t.Fatalf("loop restart mismatch: %+v vs %+v", again, first)
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOTATRACE"),
		"header only": append([]byte{}, traceMagic[:]...),
		"truncated":   append(append([]byte{}, traceMagic[:]...), 0x01),
	}
	for name, data := range cases {
		if _, err := NewReplay(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: error = %v, want ErrBadTrace", name, err)
		}
	}
}

func TestTraceWriterCount(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tw.Write(Instr{Kind: IntOp, Lat: 1, PC: uint64(i * 4)}); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 5 {
		t.Fatalf("Count = %d", tw.Count())
	}
}

// Property: any well-formed instruction survives an encode/decode cycle.
func TestPropertyTraceEncoding(t *testing.T) {
	f := func(kind8 uint8, mispredict, taken bool, lat8 uint8, d1, d2 uint8, pc uint32, addr uint64) bool {
		in := Instr{
			Kind:       Kind(kind8 % 5),
			Mispredict: mispredict,
			Taken:      taken,
			Lat:        int(lat8%16) + 1,
			Dep1:       int(d1 % 64),
			Dep2:       int(d2 % 64),
			PC:         uint64(pc),
		}
		if in.Kind == Load || in.Kind == Store {
			in.Addr = addr
		}
		var buf bytes.Buffer
		tw, err := NewTraceWriter(&buf)
		if err != nil {
			return false
		}
		if err := tw.Write(in); err != nil || tw.Flush() != nil {
			return false
		}
		rep, err := NewReplay(&buf)
		if err != nil || rep.Len() != 1 {
			return false
		}
		return rep.Next() == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCompactness(t *testing.T) {
	// The varint encoding should stay well under 16 bytes/instruction for
	// realistic streams.
	app, _ := ByName("swim")
	var buf bytes.Buffer
	const n = 20_000
	if err := Record(app, 0, 3, n, &buf); err != nil {
		t.Fatal(err)
	}
	if perInstr := float64(buf.Len()) / n; perInstr > 16 {
		t.Fatalf("trace uses %.1f bytes/instruction, want < 16", perInstr)
	}
}
