package workload

import (
	"fmt"
	"sort"
)

// Pool size shorthands.
const (
	kb = int64(1) << 10
	mb = int64(1) << 20
)

// apps is the model catalog for the 26 SPEC CPU2000 applications. Pool
// sizes are chosen against the simulated hierarchy (64 KB L1D, 512 KB L2,
// 4 MB L3) so each model lands in its paper-reported behaviour class; the
// per-app cold/stream fractions are calibrated so misses-per-100-instructions
// and the CPI breakdown track Figure 1 of the paper qualitatively (mcf worst,
// then the streaming FP codes, with the ILP codes cache-resident).
var apps = map[string]App{
	// ---- integer applications -------------------------------------------
	"gzip": {
		Name: "gzip", Class: ILP,
		LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.17,
		MispredictRate: 0.06, TakenRate: 0.6,
		MeanDep: 4.0, IndepFrac: 0.18, Dep2Frac: 0.35, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.80,
		Streams: 4, StreamBytes: 32 * kb, StreamFrac: 0.20, StrideBytes: 8,
		CodeBytes: 32 * kb, JumpFrac: 0.05,
	},
	"vpr": {
		Name: "vpr", Class: MEM,
		LoadFrac: 0.25, StoreFrac: 0.07, BranchFrac: 0.14,
		MispredictRate: 0.08, TakenRate: 0.6,
		MeanDep: 3.0, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.03,
		HotBytes: 16 * kb, HotFrac: 0.815,
		Streams: 2, StreamBytes: 96 * kb, StreamFrac: 0.16, StrideBytes: 8,
		ColdBytes: 24 * mb, ChaseFrac: 0.2, BurstDuty: 0.3, BurstLen: 300,
		CodeBytes: 48 * kb, JumpFrac: 0.05,
	},
	"gcc": {
		Name: "gcc", Class: MID,
		LoadFrac: 0.25, StoreFrac: 0.11, BranchFrac: 0.16,
		MispredictRate: 0.05, TakenRate: 0.65,
		MeanDep: 3.5, IndepFrac: 0.30, Dep2Frac: 0.35, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.78,
		Streams: 2, StreamBytes: 48 * kb, StreamFrac: 0.16, StrideBytes: 8,
		ColdBytes: 192 * kb, ChaseFrac: 0.1, BurstDuty: 0.4, BurstLen: 200,
		CodeBytes: 256 * kb, JumpFrac: 0.15,
	},
	"mcf": {
		Name: "mcf", Class: MEM,
		LoadFrac: 0.30, StoreFrac: 0.09, BranchFrac: 0.19,
		MispredictRate: 0.09, TakenRate: 0.6,
		MeanDep: 2.2, IndepFrac: 0.22, Dep2Frac: 0.45, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.71,
		Streams: 2, StreamBytes: 512 * kb, StreamFrac: 0.20, StrideBytes: 8,
		ColdBytes: 160 * mb, ChaseFrac: 0.8, BurstDuty: 0.25, BurstLen: 400,
		CodeBytes: 24 * kb, JumpFrac: 0.05,
	},
	"crafty": {
		Name: "crafty", Class: ILP,
		LoadFrac: 0.27, StoreFrac: 0.07, BranchFrac: 0.12,
		MispredictRate: 0.08, TakenRate: 0.55,
		MeanDep: 4.0, IndepFrac: 0.18, Dep2Frac: 0.35, LongLatFrac: 0.03,
		HotBytes: 16 * kb, HotFrac: 0.90,
		Streams: 2, StreamBytes: 16 * kb, StreamFrac: 0.10, StrideBytes: 8,
		CodeBytes: 128 * kb, JumpFrac: 0.20,
	},
	"parser": {
		Name: "parser", Class: MID,
		LoadFrac: 0.24, StoreFrac: 0.09, BranchFrac: 0.17,
		MispredictRate: 0.06, TakenRate: 0.6,
		MeanDep: 3.2, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.84,
		Streams: 2, StreamBytes: 32 * kb, StreamFrac: 0.13, StrideBytes: 8,
		ColdBytes: 128 * kb, ChaseFrac: 0.25, BurstDuty: 0.3, BurstLen: 200,
		CodeBytes: 64 * kb, JumpFrac: 0.08,
	},
	"eon": {
		Name: "eon", Class: ILP,
		LoadFrac: 0.26, StoreFrac: 0.13, BranchFrac: 0.11,
		MispredictRate: 0.04, TakenRate: 0.55,
		MeanDep: 4.5, IndepFrac: 0.18, Dep2Frac: 0.3, LongLatFrac: 0.04,
		HotBytes: 12 * kb, HotFrac: 0.95,
		Streams: 1, StreamBytes: 8 * kb, StreamFrac: 0.05, StrideBytes: 8,
		CodeBytes: 96 * kb, JumpFrac: 0.15,
	},
	"perlbmk": {
		Name: "perlbmk", Class: MID,
		LoadFrac: 0.25, StoreFrac: 0.12, BranchFrac: 0.15,
		MispredictRate: 0.05, TakenRate: 0.6,
		MeanDep: 3.8, IndepFrac: 0.30, Dep2Frac: 0.35, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.87,
		Streams: 2, StreamBytes: 24 * kb, StreamFrac: 0.09, StrideBytes: 8,
		ColdBytes: 128 * kb, ChaseFrac: 0.1,
		CodeBytes: 192 * kb, JumpFrac: 0.18,
	},
	"gap": {
		Name: "gap", Class: MID,
		LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.14,
		MispredictRate: 0.04, TakenRate: 0.6,
		MeanDep: 3.8, IndepFrac: 0.30, Dep2Frac: 0.35, LongLatFrac: 0.03,
		HotBytes: 16 * kb, HotFrac: 0.76,
		Streams: 2, StreamBytes: 48 * kb, StreamFrac: 0.20, StrideBytes: 8,
		ColdBytes: 128 * kb, ChaseFrac: 0.1,
		CodeBytes: 64 * kb, JumpFrac: 0.1,
	},
	"vortex": {
		Name: "vortex", Class: MID,
		LoadFrac: 0.27, StoreFrac: 0.14, BranchFrac: 0.14,
		MispredictRate: 0.03, TakenRate: 0.6,
		MeanDep: 4.0, IndepFrac: 0.30, Dep2Frac: 0.3, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.84,
		Streams: 2, StreamBytes: 32 * kb, StreamFrac: 0.12, StrideBytes: 8,
		ColdBytes: 128 * kb, ChaseFrac: 0.15,
		CodeBytes: 128 * kb, JumpFrac: 0.12,
	},
	"bzip2": {
		Name: "bzip2", Class: ILP,
		LoadFrac: 0.23, StoreFrac: 0.10, BranchFrac: 0.15,
		MispredictRate: 0.07, TakenRate: 0.6,
		MeanDep: 3.8, IndepFrac: 0.18, Dep2Frac: 0.35, LongLatFrac: 0.02,
		HotBytes: 16 * kb, HotFrac: 0.70,
		Streams: 2, StreamBytes: 48 * kb, StreamFrac: 0.30, StrideBytes: 8,
		CodeBytes: 32 * kb, JumpFrac: 0.05,
	},
	"twolf": {
		Name: "twolf", Class: MID,
		LoadFrac: 0.24, StoreFrac: 0.06, BranchFrac: 0.15,
		MispredictRate: 0.09, TakenRate: 0.55,
		MeanDep: 3.0, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.03,
		HotBytes: 24 * kb, HotFrac: 0.75,
		Streams: 1, StreamBytes: 16 * kb, StreamFrac: 0.05, StrideBytes: 8,
		ColdBytes: 192 * kb, ChaseFrac: 0.2, BurstDuty: 0.3, BurstLen: 200,
		CodeBytes: 48 * kb, JumpFrac: 0.06,
	},

	// ---- floating-point applications ------------------------------------
	"wupwise": {
		Name: "wupwise", Class: ILP, FP: true,
		LoadFrac: 0.23, StoreFrac: 0.09, BranchFrac: 0.05, FPFrac: 0.6,
		MispredictRate: 0.02, TakenRate: 0.7,
		MeanDep: 5.0, IndepFrac: 0.18, Dep2Frac: 0.35, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.60,
		Streams: 2, StreamBytes: 64 * kb, StreamFrac: 0.40, StrideBytes: 8,
		CodeBytes: 24 * kb, JumpFrac: 0.03,
	},
	"swim": {
		Name: "swim", Class: MEM, FP: true,
		LoadFrac: 0.26, StoreFrac: 0.10, BranchFrac: 0.02, FPFrac: 0.75,
		MispredictRate: 0.01, TakenRate: 0.8,
		MeanDep: 5.5, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.52,
		Streams: 4, StreamBytes: 190 * mb, StreamFrac: 0.48, StrideBytes: 8,
		CodeBytes: 16 * kb, JumpFrac: 0.02,
	},
	"mgrid": {
		Name: "mgrid", Class: MID, FP: true,
		LoadFrac: 0.30, StoreFrac: 0.03, BranchFrac: 0.03, FPFrac: 0.7,
		MispredictRate: 0.01, TakenRate: 0.8,
		MeanDep: 5.5, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.78,
		Streams: 8, StreamBytes: 56 * mb, StreamFrac: 0.12, StrideBytes: 8,
		ColdBytes: 128 * kb, ChaseFrac: 0,
		CodeBytes: 16 * kb, JumpFrac: 0.02,
	},
	"applu": {
		Name: "applu", Class: MEM, FP: true,
		LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.02, FPFrac: 0.75,
		MispredictRate: 0.01, TakenRate: 0.8,
		MeanDep: 5.0, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.06,
		HotBytes: 16 * kb, HotFrac: 0.70,
		Streams: 6, StreamBytes: 160 * mb, StreamFrac: 0.30, StrideBytes: 8,
		CodeBytes: 24 * kb, JumpFrac: 0.02,
	},
	"mesa": {
		Name: "mesa", Class: ILP, FP: true,
		LoadFrac: 0.25, StoreFrac: 0.09, BranchFrac: 0.08, FPFrac: 0.45,
		MispredictRate: 0.03, TakenRate: 0.6,
		MeanDep: 4.5, IndepFrac: 0.18, Dep2Frac: 0.3, LongLatFrac: 0.04,
		HotBytes: 16 * kb, HotFrac: 0.85,
		Streams: 2, StreamBytes: 24 * kb, StreamFrac: 0.15, StrideBytes: 8,
		CodeBytes: 64 * kb, JumpFrac: 0.08,
	},
	"galgel": {
		Name: "galgel", Class: ILP, FP: true,
		LoadFrac: 0.28, StoreFrac: 0.06, BranchFrac: 0.05, FPFrac: 0.65,
		MispredictRate: 0.01, TakenRate: 0.75,
		MeanDep: 5.0, IndepFrac: 0.18, Dep2Frac: 0.4, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.60,
		Streams: 4, StreamBytes: 64 * kb, StreamFrac: 0.40, StrideBytes: 8,
		CodeBytes: 24 * kb, JumpFrac: 0.02,
	},
	"art": {
		Name: "art", Class: MID, FP: true,
		LoadFrac: 0.30, StoreFrac: 0.05, BranchFrac: 0.08, FPFrac: 0.6,
		MispredictRate: 0.02, TakenRate: 0.75,
		MeanDep: 4.5, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.04,
		HotBytes: 16 * kb, HotFrac: 0.50,
		Streams: 2, StreamBytes: 1 * mb, StreamFrac: 0.45, StrideBytes: 64,
		ColdBytes: 96 * kb, ChaseFrac: 0,
		CodeBytes: 16 * kb, JumpFrac: 0.02,
	},
	"equake": {
		Name: "equake", Class: MEM, FP: true,
		LoadFrac: 0.28, StoreFrac: 0.07, BranchFrac: 0.06, FPFrac: 0.6,
		MispredictRate: 0.02, TakenRate: 0.7,
		MeanDep: 4.0, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.78,
		Streams: 2, StreamBytes: 32 * mb, StreamFrac: 0.20, StrideBytes: 8,
		ColdBytes: 16 * mb, ChaseFrac: 0.2, BurstDuty: 0.35, BurstLen: 300,
		CodeBytes: 24 * kb, JumpFrac: 0.03,
	},
	"facerec": {
		Name: "facerec", Class: MEM, FP: true,
		LoadFrac: 0.26, StoreFrac: 0.06, BranchFrac: 0.04, FPFrac: 0.65,
		MispredictRate: 0.01, TakenRate: 0.75,
		MeanDep: 5.0, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.70,
		Streams: 2, StreamBytes: 12 * mb, StreamFrac: 0.30, StrideBytes: 8,
		CodeBytes: 24 * kb, JumpFrac: 0.02,
	},
	"ammp": {
		Name: "ammp", Class: MEM, FP: true,
		LoadFrac: 0.28, StoreFrac: 0.08, BranchFrac: 0.07, FPFrac: 0.55,
		MispredictRate: 0.02, TakenRate: 0.65,
		MeanDep: 2.5, IndepFrac: 0.22, Dep2Frac: 0.45, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.71,
		Streams: 2, StreamBytes: 1 * mb, StreamFrac: 0.25, StrideBytes: 8,
		ColdBytes: 24 * mb, ChaseFrac: 0.05, BurstDuty: 0.12, BurstLen: 400,
		CodeBytes: 24 * kb, JumpFrac: 0.03,
	},
	"lucas": {
		Name: "lucas", Class: MEM, FP: true,
		LoadFrac: 0.24, StoreFrac: 0.10, BranchFrac: 0.02, FPFrac: 0.8,
		MispredictRate: 0.01, TakenRate: 0.8,
		MeanDep: 5.5, IndepFrac: 0.30, Dep2Frac: 0.4, LongLatFrac: 0.06,
		HotBytes: 16 * kb, HotFrac: 0.58,
		Streams: 2, StreamBytes: 128 * mb, StreamFrac: 0.42, StrideBytes: 8,
		CodeBytes: 16 * kb, JumpFrac: 0.02,
	},
	"fma3d": {
		Name: "fma3d", Class: MID, FP: true,
		LoadFrac: 0.26, StoreFrac: 0.09, BranchFrac: 0.06, FPFrac: 0.6,
		MispredictRate: 0.02, TakenRate: 0.7,
		MeanDep: 4.5, IndepFrac: 0.30, Dep2Frac: 0.35, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.80,
		Streams: 4, StreamBytes: 16 * mb, StreamFrac: 0.15, StrideBytes: 8,
		ColdBytes: 64 * kb, ChaseFrac: 0,
		CodeBytes: 96 * kb, JumpFrac: 0.05,
	},
	"sixtrack": {
		Name: "sixtrack", Class: ILP, FP: true,
		LoadFrac: 0.25, StoreFrac: 0.08, BranchFrac: 0.04, FPFrac: 0.7,
		MispredictRate: 0.01, TakenRate: 0.75,
		MeanDep: 5.5, IndepFrac: 0.18, Dep2Frac: 0.35, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.90,
		Streams: 2, StreamBytes: 16 * kb, StreamFrac: 0.10, StrideBytes: 8,
		CodeBytes: 48 * kb, JumpFrac: 0.03,
	},
	"apsi": {
		Name: "apsi", Class: MID, FP: true,
		LoadFrac: 0.26, StoreFrac: 0.08, BranchFrac: 0.05, FPFrac: 0.65,
		MispredictRate: 0.02, TakenRate: 0.7,
		MeanDep: 4.5, IndepFrac: 0.30, Dep2Frac: 0.35, LongLatFrac: 0.05,
		HotBytes: 16 * kb, HotFrac: 0.75,
		Streams: 4, StreamBytes: 8 * mb, StreamFrac: 0.20, StrideBytes: 8,
		ColdBytes: 128 * kb, ChaseFrac: 0,
		CodeBytes: 32 * kb, JumpFrac: 0.03,
	},
}

// ByName returns an application model.
func ByName(name string) (App, error) {
	a, ok := apps[name]
	if !ok {
		return App{}, fmt.Errorf("workload: unknown application %q", name)
	}
	return a, nil
}

// Names lists all 26 modeled applications, sorted.
func Names() []string {
	out := make([]string, 0, len(apps))
	for n := range apps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Mix is one of the paper's Table 2 workloads.
type Mix struct {
	// Name is e.g. "4-MEM".
	Name string
	// Apps are the application names, one per hardware thread.
	Apps []string
}

// Threads is the hardware thread count of the mix.
func (m Mix) Threads() int { return len(m.Apps) }

// mixes reproduces Table 2 exactly.
var mixes = []Mix{
	{Name: "2-ILP", Apps: []string{"bzip2", "gzip"}},
	{Name: "2-MIX", Apps: []string{"gzip", "mcf"}},
	{Name: "2-MEM", Apps: []string{"mcf", "ammp"}},
	{Name: "4-ILP", Apps: []string{"bzip2", "gzip", "sixtrack", "eon"}},
	{Name: "4-MIX", Apps: []string{"gzip", "mcf", "bzip2", "ammp"}},
	{Name: "4-MEM", Apps: []string{"mcf", "ammp", "swim", "lucas"}},
	{Name: "8-ILP", Apps: []string{"gzip", "bzip2", "sixtrack", "eon", "mesa", "galgel", "crafty", "wupwise"}},
	{Name: "8-MIX", Apps: []string{"gzip", "mcf", "bzip2", "ammp", "sixtrack", "swim", "eon", "lucas"}},
	{Name: "8-MEM", Apps: []string{"mcf", "ammp", "swim", "lucas", "equake", "applu", "vpr", "facerec"}},
}

// Mixes returns the Table 2 workload catalog in presentation order.
func Mixes() []Mix {
	out := make([]Mix, len(mixes))
	copy(out, mixes)
	return out
}

// MixByName looks up a Table 2 workload.
func MixByName(name string) (Mix, error) {
	for _, m := range mixes {
		if m.Name == name {
			return m, nil
		}
	}
	return Mix{}, fmt.Errorf("workload: unknown mix %q", name)
}

// MixApps resolves a mix's application models.
func MixApps(m Mix) ([]App, error) {
	out := make([]App, len(m.Apps))
	for i, n := range m.Apps {
		a, err := ByName(n)
		if err != nil {
			return nil, err
		}
		out[i] = a
	}
	return out, nil
}
