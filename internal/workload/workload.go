// Package workload provides synthetic instruction-stream models of the 26
// SPEC CPU2000 applications the paper mixes into SMT workloads, plus the
// Table 2 workload catalog.
//
// Real SPEC binaries and reference inputs are not available here, so each
// application is modeled as a statistical generator over three address pools
// — a hot pool that fits in the L1, sequential streams, and a cold random
// region — with an instruction mix, a dependence-distance distribution, and
// branch behaviour. The pools are sized against the simulated hierarchy
// (64 KB L1D / 512 KB L2 / 4 MB L3) so each application reproduces its
// paper-reported behaviour class: cache-resident ILP codes, streaming
// array codes with high row-buffer locality (swim, lucas, applu), and
// pointer-chasing codes with poor locality and serialized misses (mcf,
// ammp). See DESIGN.md §2 for the substitution rationale.
package workload

import (
	"fmt"
	"math/rand"
)

// Kind is an instruction class.
type Kind uint8

const (
	IntOp Kind = iota
	FPOp
	Load
	Store
	Branch
)

func (k Kind) String() string {
	switch k {
	case IntOp:
		return "int"
	case FPOp:
		return "fp"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Class is the paper's application category.
type Class int

const (
	// ILP applications have small CPIproc and CPImem: compute-bound.
	ILP Class = iota
	// MID applications fall between the paper's two categories.
	MID
	// MEM applications have large CPImem: memory-bound.
	MEM
)

func (c Class) String() string {
	switch c {
	case ILP:
		return "ILP"
	case MID:
		return "MID"
	case MEM:
		return "MEM"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Instr is one dynamic instruction produced by a generator.
type Instr struct {
	// Kind classifies the instruction.
	Kind Kind
	// PC is the instruction's address (for I-cache modeling).
	PC uint64
	// Addr is the data address for Load/Store.
	Addr uint64
	// Dep1 and Dep2 are producer distances in dynamic instructions
	// (0 = no dependence). The consumer cannot issue until instructions
	// Dep* earlier have completed.
	Dep1, Dep2 int
	// Lat is the execution latency in cycles (loads: cache adds more).
	Lat int
	// Mispredict marks a branch that will squash younger instructions when
	// it resolves.
	Mispredict bool
	// Taken marks branches that redirect fetch (ends the fetch block).
	Taken bool
}

// App is a synthetic application model.
type App struct {
	Name  string
	Class Class
	FP    bool // floating-point benchmark

	// Instruction mix (fractions of the dynamic stream; remainder is
	// IntOp/FPOp split by FPFrac).
	LoadFrac, StoreFrac, BranchFrac float64
	// FPFrac is the fraction of non-memory ALU work that is floating point.
	FPFrac float64
	// MispredictRate is the fraction of branches mispredicted.
	MispredictRate float64
	// TakenRate is the fraction of branches taken.
	TakenRate float64

	// MeanDep is the mean producer distance (larger = more ILP).
	MeanDep float64
	// IndepFrac is the probability an instruction has no register
	// dependences at all (immediates, loop counters in renamed registers,
	// address arithmetic off long-ready bases). This bounds how much of a
	// stalled thread transitively blocks in the shared issue queues — real
	// codes leak a steady stream of independent work even while a miss is
	// outstanding.
	IndepFrac float64
	// Dep2Frac is the probability an instruction has a second producer.
	Dep2Frac float64
	// LongLatFrac is the fraction of ALU ops with long latency (mult/div).
	LongLatFrac float64

	// HotBytes is the L1-resident pool (stack, locals, hot structures).
	HotBytes int64
	// HotFrac is the fraction of memory references to the hot pool.
	HotFrac float64
	// Streams is the number of concurrent sequential streams.
	Streams int
	// StreamBytes is the total footprint walked by the streams.
	StreamBytes int64
	// StreamFrac is the fraction of references that advance a stream.
	StreamFrac float64
	// StrideBytes is the stream stride.
	StrideBytes int64
	// ColdBytes is the random-access region; references that are neither
	// hot nor streaming land here uniformly.
	ColdBytes int64
	// ChaseFrac is the probability a cold load depends on the previous cold
	// load (pointer chasing: serialized misses).
	ChaseFrac float64
	// BurstDuty makes cold references bursty: they arrive only during miss
	// phases covering this fraction of execution, at proportionally higher
	// intensity, preserving the average rate. 0 (or 1) disables phasing.
	// This models the paper's observation that "cache misses tend to be
	// clustered together", which is what creates DRAM queueing and gives
	// access scheduling its reordering window.
	BurstDuty float64
	// BurstLen is the mean burst length in instructions (default 300).
	BurstLen int

	// CodeBytes is the instruction footprint.
	CodeBytes int64
	// JumpFrac is the fraction of taken branches that jump far (to a random
	// line in the code footprint) rather than locally.
	JumpFrac float64
}

// Validate sanity-checks fractions and sizes.
func (a App) Validate() error {
	sum := a.LoadFrac + a.StoreFrac + a.BranchFrac
	if sum <= 0 || sum >= 1 {
		return fmt.Errorf("workload %s: load+store+branch = %v, want (0,1)", a.Name, sum)
	}
	if a.HotFrac+a.StreamFrac > 1 {
		return fmt.Errorf("workload %s: hot+stream fractions exceed 1", a.Name)
	}
	if a.HotBytes <= 0 || a.CodeBytes <= 0 {
		return fmt.Errorf("workload %s: non-positive pool size", a.Name)
	}
	if a.StreamFrac > 0 && (a.Streams <= 0 || a.StreamBytes <= 0 || a.StrideBytes <= 0) {
		return fmt.Errorf("workload %s: streaming enabled with empty stream geometry", a.Name)
	}
	if a.HotFrac+a.StreamFrac < 1 && a.ColdBytes <= 0 {
		return fmt.Errorf("workload %s: cold references enabled with no cold region", a.Name)
	}
	return nil
}

// threadAddrBits separates per-thread address spaces: thread i's addresses
// live at i << threadAddrBits. Threads share caches but not data, matching
// the paper's multiprogrammed (not parallel) workloads.
const threadAddrBits = 40

// threadSkew staggers each thread's pools within its address space so
// different threads' hot data do not collide on the same cache sets. This
// models the bin-hopping virtual→physical page mapping the paper uses
// ("the cache interference between threads may be reduced by using a
// virtual-physical address mapping called bin hopping ... A similar mapping
// is used in our simulation"). The stride is an odd multiple of the line
// size, so consecutive threads land on well-separated sets at every level.
const threadSkew = 64 * 22651

// countingSource wraps the generator's random source, counting draws at the
// source level. Every rand.Rand method the generator uses bottoms out in
// exactly one source step per draw (with identical internal rejection loops
// re-drawing through the same path), so the count is a complete description
// of the stream position: a fresh source fast-forwarded count steps is
// byte-identical to the live one. That is what makes the generator's RNG
// state serializable without exposing math/rand internals.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (s *countingSource) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *countingSource) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *countingSource) Seed(seed int64) { s.src.Seed(seed) }

// Gen produces the dynamic instruction stream of one thread running app.
type Gen struct {
	app  App
	rng  *rand.Rand
	src  *countingSource
	base uint64
	skew uint64

	pc        uint64
	streamPos []int64
	sinceCold int // dynamic distance since the previous cold load
	count     uint64
	inBurst   bool
}

// NewGen builds a deterministic generator for hardware thread threadID.
func NewGen(app App, threadID int, seed int64) (*Gen, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	src := &countingSource{
		src: rand.NewSource(seed ^ int64(threadID+1)*0x5E3779B97F4A7C15).(rand.Source64),
	}
	g := &Gen{
		app:       app,
		rng:       rand.New(src),
		src:       src,
		base:      uint64(threadID) << threadAddrBits,
		skew:      uint64(threadID) * threadSkew,
		streamPos: make([]int64, max(app.Streams, 1)),
	}
	g.pc = g.codeBase() // code region starts at the (skewed) thread base
	// Stagger stream start positions so streams live in distinct rows.
	for i := range g.streamPos {
		if app.Streams > 0 {
			g.streamPos[i] = int64(i) * (app.StreamBytes / int64(app.Streams))
		}
	}
	return g, nil
}

// App returns the model being generated.
func (g *Gen) App() App { return g.app }

// Generated returns the number of instructions produced so far.
func (g *Gen) Generated() uint64 { return g.count }

// regions within a thread's address space (byte offsets from base).
const (
	codeOff   = uint64(0)
	hotOff    = uint64(1) << 28 // 256 MB in: clear of the code
	streamOff = uint64(1) << 30
	coldOff   = uint64(1) << 33
)

func (g *Gen) codeBase() uint64 { return g.base + codeOff + g.skew }

// Next produces the next dynamic instruction.
func (g *Gen) Next() Instr {
	g.count++
	a := &g.app
	in := Instr{PC: g.pc, Lat: 1}
	g.pc += 4

	r := g.rng.Float64()
	switch {
	case r < a.LoadFrac:
		in.Kind = Load
		in.Addr = g.dataAddr(&in)
	case r < a.LoadFrac+a.StoreFrac:
		in.Kind = Store
		in.Addr = g.dataAddr(nil)
	case r < a.LoadFrac+a.StoreFrac+a.BranchFrac:
		in.Kind = Branch
		in.Mispredict = g.rng.Float64() < a.MispredictRate
		if g.rng.Float64() < a.TakenRate {
			in.Taken = true
			g.branchTarget()
		}
	default:
		if g.rng.Float64() < a.FPFrac {
			in.Kind = FPOp
			in.Lat = 4
		} else {
			in.Kind = IntOp
			in.Lat = 1
		}
		if g.rng.Float64() < a.LongLatFrac {
			in.Lat = 7
		}
	}

	switch {
	case in.Dep1 < 0:
		in.Dep1 = 0 // forced independent
	case in.Dep1 == 0 && g.rng.Float64() >= a.IndepFrac:
		in.Dep1 = g.depDist()
	}
	if in.Dep1 != 0 && g.rng.Float64() < a.Dep2Frac {
		in.Dep2 = g.depDist()
	}
	if g.sinceCold >= 0 {
		g.sinceCold++
	}
	return in
}

// depDist samples a geometric-ish producer distance with mean MeanDep.
func (g *Gen) depDist() int {
	d := 1
	p := 1 - 1/g.app.MeanDep
	for g.rng.Float64() < p && d < 64 {
		d++
	}
	return d
}

// burstStep advances the two-state miss-phase modulator and returns the
// effective cold-reference fraction for this reference.
func (g *Gen) burstStep() float64 {
	a := &g.app
	cold := 1 - a.HotFrac - a.StreamFrac
	duty := a.BurstDuty
	if duty <= 0 || duty >= 1 || cold <= 0 {
		return cold
	}
	blen := float64(a.BurstLen)
	if blen <= 0 {
		blen = 300
	}
	if g.inBurst {
		if g.rng.Float64() < 1/blen {
			g.inBurst = false
		}
	} else {
		if g.rng.Float64() < duty/((1-duty)*blen) {
			g.inBurst = true
		}
	}
	if !g.inBurst {
		return 0
	}
	eff := cold / duty
	if max := 1 - a.StreamFrac; eff > max {
		eff = max
	}
	return eff
}

// dataAddr picks the data pool and produces an address. For cold loads it
// may also wire a pointer-chase dependence into in.
func (g *Gen) dataAddr(in *Instr) uint64 {
	a := &g.app
	cold := g.burstStep()
	r := g.rng.Float64()
	switch {
	case r >= 1-cold:
		if in != nil {
			if a.ChaseFrac > 0 && g.sinceCold >= 0 &&
				g.sinceCold < 64 && g.rng.Float64() < a.ChaseFrac {
				in.Dep1 = g.sinceCold
			} else {
				// Non-chased cold loads are independent gathers: their
				// index arithmetic is cache-resident and long since done.
				// This is what lets bursty codes expose real memory-level
				// parallelism (clusters of concurrent misses, Fig 4).
				in.Dep1 = -1
			}
			g.sinceCold = 0
		}
		return g.base + coldOff + g.skew + uint64(g.rng.Int63n(a.ColdBytes))&^7
	case r < a.HotFrac || r >= a.HotFrac+a.StreamFrac:
		return g.base + hotOff + g.skew + uint64(g.rng.Int63n(a.HotBytes))&^7
	default:
		s := g.rng.Intn(a.Streams)
		span := a.StreamBytes / int64(a.Streams)
		addr := g.base + streamOff + g.skew + uint64(int64(s)*span+g.streamPos[s]%span)
		g.streamPos[s] += a.StrideBytes
		return addr &^ 7
	}
}

// branchTarget redirects the PC on a taken branch: usually a short local
// jump (loop), occasionally a far jump across the code footprint.
func (g *Gen) branchTarget() {
	a := &g.app
	cb := g.codeBase()
	if g.rng.Float64() < a.JumpFrac {
		g.pc = cb + uint64(g.rng.Int63n(a.CodeBytes))&^3
		return
	}
	// Local backward jump of up to 64 instructions: a loop.
	back := uint64(g.rng.Intn(64)+1) * 4
	if g.pc-cb > back {
		g.pc -= back
	}
	// Keep the PC inside the code footprint.
	if g.pc-cb >= uint64(a.CodeBytes) {
		g.pc = cb + (g.pc-cb)%uint64(a.CodeBytes)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
