package workload

import (
	"math"
	"testing"
)

// These tests pin down the miss-phase (burst) modulator and the
// independence structure of cold loads.

func TestBurstPreservesAverageColdRate(t *testing.T) {
	// mcf's cold share must be preserved on average whether or not phasing
	// is enabled.
	a, _ := ByName("mcf")
	coldShare := 1 - a.HotFrac - a.StreamFrac

	count := func(app App) float64 {
		g, err := NewGen(app, 0, 21)
		if err != nil {
			t.Fatal(err)
		}
		// Long sample: burst episodes are ~1600 references long, so shorter
		// windows see only a handful of phases and the estimate is noisy.
		const n = 2_000_000
		cold := 0
		for i := 0; i < n; i++ {
			in := g.Next()
			if (in.Kind == Load || in.Kind == Store) && in.Addr >= coldOff {
				cold++
			}
		}
		return float64(cold) / n
	}

	bursty := count(a)
	flat := a
	flat.BurstDuty = 0
	smooth := count(flat)

	wantRate := (a.LoadFrac + a.StoreFrac) * coldShare
	for name, got := range map[string]float64{"bursty": bursty, "smooth": smooth} {
		if math.Abs(got-wantRate) > wantRate*0.25 {
			t.Errorf("%s cold rate = %.4f, want ≈%.4f", name, got, wantRate)
		}
	}
}

func TestBurstsAreClustered(t *testing.T) {
	// With phasing on, cold references must cluster: the variance of
	// per-window cold counts should far exceed the Poisson-like variance of
	// the memoryless generator.
	variance := func(app App) float64 {
		g, _ := NewGen(app, 0, 33)
		const windows, win = 300, 1000
		var sum, sumSq float64
		for w := 0; w < windows; w++ {
			cold := 0.0
			for i := 0; i < win; i++ {
				in := g.Next()
				if (in.Kind == Load || in.Kind == Store) && in.Addr >= coldOff {
					cold++
				}
			}
			sum += cold
			sumSq += cold * cold
		}
		mean := sum / windows
		return sumSq/windows - mean*mean
	}

	a, _ := ByName("ammp")
	bursty := variance(a)
	flat := a
	flat.BurstDuty = 0
	smooth := variance(flat)
	if bursty < 3*smooth {
		t.Fatalf("burst variance %.1f not clearly above memoryless variance %.1f", bursty, smooth)
	}
}

func TestColdGathersAreIndependent(t *testing.T) {
	// ammp (ChaseFrac 0.05): nearly all cold loads must carry no
	// dependences, so bursts expose memory-level parallelism.
	a, _ := ByName("ammp")
	g, _ := NewGen(a, 0, 11)
	coldLoads, independent := 0, 0
	for i := 0; i < 300_000; i++ {
		in := g.Next()
		if in.Kind == Load && in.Addr >= coldOff {
			coldLoads++
			if in.Dep1 == 0 && in.Dep2 == 0 {
				independent++
			}
		}
	}
	if coldLoads == 0 {
		t.Fatal("no cold loads generated")
	}
	if frac := float64(independent) / float64(coldLoads); frac < 0.85 {
		t.Fatalf("only %.2f of ammp cold loads independent, want ≥0.85", frac)
	}
}

func TestChaseStillSerializesMcf(t *testing.T) {
	a, _ := ByName("mcf")
	g, _ := NewGen(a, 0, 11)
	coldLoads, chased := 0, 0
	for i := 0; i < 300_000; i++ {
		in := g.Next()
		if in.Kind == Load && in.Addr >= coldOff {
			coldLoads++
			if in.Dep1 > 0 {
				chased++
			}
		}
	}
	if coldLoads == 0 {
		t.Fatal("no cold loads generated")
	}
	if frac := float64(chased) / float64(coldLoads); frac < 0.6 {
		t.Fatalf("only %.2f of mcf cold loads chained, want ≥0.6 (ChaseFrac 0.8)", frac)
	}
}

func TestThreadSkewSeparatesPools(t *testing.T) {
	a, _ := ByName("gzip")
	g0, _ := NewGen(a, 0, 5)
	g1, _ := NewGen(a, 1, 5)
	// Hot-pool addresses of different threads must not share cache sets:
	// their skews differ by an odd multiple of the line size.
	const spaceMask = uint64(1)<<threadAddrBits - 1
	var a0, a1 uint64
	for i := 0; i < 1_000_000 && (a0 == 0 || a1 == 0); i++ {
		if in := g0.Next(); in.Kind == Load && in.Addr >= hotOff && in.Addr < streamOff {
			a0 = in.Addr
		}
		if in := g1.Next(); in.Kind == Load {
			if off := in.Addr & spaceMask; off >= hotOff && off < streamOff {
				a1 = in.Addr
			}
		}
	}
	if a0 == 0 || a1 == 0 {
		t.Fatal("hot-pool references not found")
	}
	if off := a1 & spaceMask; off < hotOff+threadSkew {
		t.Fatalf("thread 1 hot pool at %#x, want skewed by %#x", off, uint64(threadSkew))
	}
}
