package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogComplete(t *testing.T) {
	if got := len(Names()); got != 26 {
		t.Fatalf("catalog has %d applications, want 26 (all of SPEC CPU2000)", got)
	}
	for _, n := range Names() {
		a, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if _, err := ByName("doom"); err == nil {
		t.Fatal("ByName accepted an unknown app")
	}
}

func TestTable2Mixes(t *testing.T) {
	ms := Mixes()
	if len(ms) != 9 {
		t.Fatalf("got %d mixes, want 9", len(ms))
	}
	wantThreads := map[string]int{
		"2-ILP": 2, "2-MIX": 2, "2-MEM": 2,
		"4-ILP": 4, "4-MIX": 4, "4-MEM": 4,
		"8-ILP": 8, "8-MIX": 8, "8-MEM": 8,
	}
	for _, m := range ms {
		if m.Threads() != wantThreads[m.Name] {
			t.Errorf("%s has %d threads, want %d", m.Name, m.Threads(), wantThreads[m.Name])
		}
		as, err := MixApps(m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(as) != m.Threads() {
			t.Fatalf("%s resolved %d apps", m.Name, len(as))
		}
	}
	// Spot-check exact Table 2 contents.
	m, err := MixByName("2-MEM")
	if err != nil || m.Apps[0] != "mcf" || m.Apps[1] != "ammp" {
		t.Fatalf("2-MEM = %v, want [mcf ammp]", m.Apps)
	}
	if _, err := MixByName("16-MEM"); err == nil {
		t.Fatal("MixByName accepted unknown mix")
	}
}

func TestMEMWorkloadsUseMEMApps(t *testing.T) {
	for _, name := range []string{"2-MEM", "4-MEM", "8-MEM"} {
		m, _ := MixByName(name)
		for _, an := range m.Apps {
			a, _ := ByName(an)
			if a.Class == ILP {
				t.Errorf("%s contains ILP app %s", name, an)
			}
		}
	}
	for _, name := range []string{"2-ILP", "4-ILP", "8-ILP"} {
		m, _ := MixByName(name)
		for _, an := range m.Apps {
			a, _ := ByName(an)
			if a.Class == MEM {
				t.Errorf("%s contains MEM app %s", name, an)
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, _ := ByName("mcf")
	g1, err := NewGen(a, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewGen(a, 0, 7)
	for i := 0; i < 5000; i++ {
		x, y := g1.Next(), g2.Next()
		if x != y {
			t.Fatalf("instruction %d diverged: %+v vs %+v", i, x, y)
		}
	}
	if g1.Generated() != 5000 {
		t.Fatalf("Generated = %d", g1.Generated())
	}
}

func TestDifferentThreadsDisjointAddressSpaces(t *testing.T) {
	a, _ := ByName("swim")
	g0, _ := NewGen(a, 0, 1)
	g1, _ := NewGen(a, 1, 1)
	for i := 0; i < 2000; i++ {
		x, y := g0.Next(), g1.Next()
		if x.Addr != 0 && x.Addr>>threadAddrBits != 0 {
			t.Fatalf("thread 0 address %#x escaped its space", x.Addr)
		}
		if y.Addr != 0 && y.Addr>>threadAddrBits != 1 {
			t.Fatalf("thread 1 address %#x escaped its space", y.Addr)
		}
		if x.PC>>threadAddrBits != 0 || y.PC>>threadAddrBits != 1 {
			t.Fatal("PCs escaped thread spaces")
		}
	}
}

func TestInstructionMixMatchesModel(t *testing.T) {
	a, _ := ByName("gzip")
	g, _ := NewGen(a, 0, 3)
	const n = 200000
	var loads, stores, branches float64
	for i := 0; i < n; i++ {
		switch g.Next().Kind {
		case Load:
			loads++
		case Store:
			stores++
		case Branch:
			branches++
		}
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"loads", loads / n, a.LoadFrac},
		{"stores", stores / n, a.StoreFrac},
		{"branches", branches / n, a.BranchFrac},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > 0.01 {
			t.Errorf("%s fraction = %.3f, want %.3f ± .01", c.name, c.got, c.want)
		}
	}
}

func TestStreamingAppWalksSequentially(t *testing.T) {
	a, _ := ByName("swim")
	g, _ := NewGen(a, 0, 11)
	// Collect stream-region addresses; they must be dominated by small
	// positive deltas within each stream.
	perStream := map[uint64][]uint64{}
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Kind != Load && in.Kind != Store {
			continue
		}
		off := in.Addr &^ (uint64(1)<<threadAddrBits - 1)
		_ = off
		if in.Addr >= streamOff && in.Addr < coldOff {
			span := uint64(a.StreamBytes) / uint64(a.Streams)
			s := (in.Addr - streamOff) / span
			perStream[s] = append(perStream[s], in.Addr)
		}
	}
	if len(perStream) != a.Streams {
		t.Fatalf("observed %d streams, want %d", len(perStream), a.Streams)
	}
	for s, addrs := range perStream {
		increasing := 0
		for i := 1; i < len(addrs); i++ {
			if addrs[i] == addrs[i-1]+uint64(a.StrideBytes) {
				increasing++
			}
		}
		if frac := float64(increasing) / float64(len(addrs)-1); frac < 0.95 {
			t.Errorf("stream %d only %.2f sequential", s, frac)
		}
	}
}

func TestPointerChaseCreatesLoadDependences(t *testing.T) {
	a, _ := ByName("mcf")
	g, _ := NewGen(a, 0, 5)
	coldLoads, chased := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Kind == Load && in.Addr >= coldOff {
			coldLoads++
			if in.Dep1 > 0 && in.Dep1 < 64 {
				chased++
			}
		}
	}
	if coldLoads == 0 {
		t.Fatal("mcf generated no cold loads")
	}
	// All loads have some dependence; the chase ensures a healthy share are
	// close dependences on the prior cold load.
	if frac := float64(chased) / float64(coldLoads); frac < 0.5 {
		t.Fatalf("only %.2f of cold loads have close dependences", frac)
	}
}

func TestHotPoolStaysSmall(t *testing.T) {
	a, _ := ByName("eon")
	g, _ := NewGen(a, 0, 9)
	for i := 0; i < 50000; i++ {
		in := g.Next()
		if in.Kind != Load && in.Kind != Store {
			continue
		}
		if in.Addr >= hotOff && in.Addr < streamOff {
			if off := in.Addr - hotOff; off >= uint64(a.HotBytes) {
				t.Fatalf("hot reference %#x outside hot pool of %d bytes", off, a.HotBytes)
			}
		}
	}
}

func TestPCStaysInCodeFootprint(t *testing.T) {
	a, _ := ByName("crafty")
	g, _ := NewGen(a, 0, 13)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if off := in.PC - g.base; off >= uint64(a.CodeBytes)+4*64 {
			t.Fatalf("PC offset %#x far outside %d-byte code footprint", off, a.CodeBytes)
		}
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	good, _ := ByName("gzip")
	bad := good
	bad.LoadFrac = 0.9
	bad.StoreFrac = 0.3
	if bad.Validate() == nil {
		t.Fatal("Validate accepted mix fractions > 1")
	}
	bad = good
	bad.HotFrac = 0.9
	bad.StreamFrac = 0.5
	if bad.Validate() == nil {
		t.Fatal("Validate accepted pool fractions > 1")
	}
	bad = good
	bad.HotFrac = 0.5
	bad.StreamFrac = 0.2
	bad.ColdBytes = 0
	if bad.Validate() == nil {
		t.Fatal("Validate accepted cold refs without a cold region")
	}
	if _, err := NewGen(bad, 0, 1); err == nil {
		t.Fatal("NewGen accepted an invalid model")
	}
}

// Property: every generated instruction is well-formed — dependences point
// backwards by a bounded distance, latencies are positive, and memory ops
// carry addresses.
func TestPropertyWellFormedInstructions(t *testing.T) {
	a, _ := ByName("ammp")
	g, _ := NewGen(a, 2, 17)
	f := func(_ uint8) bool {
		in := g.Next()
		if in.Lat <= 0 || in.Dep1 < 0 || in.Dep1 > 64 || in.Dep2 < 0 || in.Dep2 > 64 {
			return false
		}
		if (in.Kind == Load || in.Kind == Store) && in.Addr == 0 {
			return false
		}
		if in.Kind != Branch && (in.Mispredict || in.Taken) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestKindAndClassStrings(t *testing.T) {
	for k, want := range map[Kind]string{IntOp: "int", FPOp: "fp", Load: "load", Store: "store", Branch: "branch"} {
		if k.String() != want {
			t.Errorf("Kind %d = %q, want %q", k, k, want)
		}
	}
	if ILP.String() != "ILP" || MEM.String() != "MEM" || MID.String() != "MID" {
		t.Fatal("Class strings wrong")
	}
	if Kind(200).String() == "" || Class(42).String() == "" {
		t.Fatal("unknown enum values must print")
	}
}

// TestNextDoesNotAllocate pins the generator hot path: after warmup, drawing
// instructions allocates nothing — Instr is returned by value and the
// generator state is all inline.
func TestNextDoesNotAllocate(t *testing.T) {
	a, err := ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGen(a, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		g.Next() // settle any lazily built state
	}
	var sink Instr
	avg := testing.AllocsPerRun(1000, func() { sink = g.Next() })
	if avg != 0 {
		t.Fatalf("Gen.Next allocates %v/op, want 0", avg)
	}
	_ = sink
}
