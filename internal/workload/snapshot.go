package workload

// Snapshot/Restore for the synthetic instruction generators (DESIGN §15).
// The RNG serializes as its draw count: restore rebuilds the seeded source
// and fast-forwards it, which reproduces the stream position exactly (see
// countingSource). Everything else is plain scalar state.

import (
	"fmt"

	"smtdram/internal/snap"
)

const sectionGen = 0x4E454757 // "WGEN"

// Snapshot serializes the generator's mutable state. The application model,
// seed, and thread identity are not written — restore targets a generator
// built by NewGen with identical arguments (enforced upstream by the
// warmup-prefix fingerprint).
func (g *Gen) Snapshot(w *snap.Writer) error {
	w.Marker(sectionGen)
	w.U64(g.src.n)
	w.U64(g.pc)
	w.U64(uint64(len(g.streamPos)))
	for _, p := range g.streamPos {
		w.I64(p)
	}
	w.I64(int64(g.sinceCold))
	w.U64(g.count)
	w.Bool(g.inBurst)
	return nil
}

// Restore rebuilds the generator's state from r. The receiver must be
// freshly built by NewGen with the same app/thread/seed as the snapshotted
// generator: the RNG is fast-forwarded from its seeded origin.
func (g *Gen) Restore(r *snap.Reader) error {
	r.Expect(sectionGen)
	draws := r.U64()
	pc := r.U64()
	nStreams := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nStreams != uint64(len(g.streamPos)) {
		return fmt.Errorf("%w: snapshot has %d streams, generator %d", snap.ErrCorrupt, nStreams, len(g.streamPos))
	}
	for i := range g.streamPos {
		g.streamPos[i] = r.I64()
	}
	g.sinceCold = int(r.I64())
	g.count = r.U64()
	g.inBurst = r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if g.src.n > draws {
		return fmt.Errorf("%w: generator already advanced %d draws, snapshot at %d", snap.ErrCorrupt, g.src.n, draws)
	}
	for g.src.n < draws {
		g.src.Uint64()
	}
	g.pc = pc
	return nil
}
