package workload

// Instruction-trace record and replay.
//
// The synthetic generators stand in for SPEC binaries, but the simulator
// does not care where its instruction stream comes from: anything
// implementing the CPU's Source interface works. This file provides a
// compact binary trace format so streams can be recorded once (from the
// synthetic models, or converted from an external trace) and replayed
// deterministically — the "bring your own trace" path.
//
// Format: a 8-byte magic/version header, then one varint-encoded record per
// instruction:
//
//	kind      uvarint (Kind)
//	flags     uvarint (bit0 mispredict, bit1 taken)
//	lat       uvarint
//	dep1,dep2 uvarint
//	pcDelta   varint  (PC delta from previous instruction)
//	addr      uvarint (memory ops only)

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// traceMagic identifies the trace format ("SMTDRAM1").
var traceMagic = [8]byte{'S', 'M', 'T', 'D', 'R', 'A', 'M', '1'}

// TraceWriter encodes an instruction stream.
type TraceWriter struct {
	w      *bufio.Writer
	lastPC uint64
	count  uint64
	buf    [binary.MaxVarintLen64]byte
}

// NewTraceWriter writes the header and returns a writer.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return nil, err
	}
	return &TraceWriter{w: bw}, nil
}

func (t *TraceWriter) uvarint(v uint64) error {
	n := binary.PutUvarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

func (t *TraceWriter) varint(v int64) error {
	n := binary.PutVarint(t.buf[:], v)
	_, err := t.w.Write(t.buf[:n])
	return err
}

// Write appends one instruction.
func (t *TraceWriter) Write(in Instr) error {
	var flags uint64
	if in.Mispredict {
		flags |= 1
	}
	if in.Taken {
		flags |= 2
	}
	if err := t.uvarint(uint64(in.Kind)); err != nil {
		return err
	}
	if err := t.uvarint(flags); err != nil {
		return err
	}
	if err := t.uvarint(uint64(in.Lat)); err != nil {
		return err
	}
	if err := t.uvarint(uint64(in.Dep1)); err != nil {
		return err
	}
	if err := t.uvarint(uint64(in.Dep2)); err != nil {
		return err
	}
	if err := t.varint(int64(in.PC) - int64(t.lastPC)); err != nil {
		return err
	}
	t.lastPC = in.PC
	if in.Kind == Load || in.Kind == Store {
		if err := t.uvarint(in.Addr); err != nil {
			return err
		}
	}
	t.count++
	return nil
}

// Count returns the number of instructions written.
func (t *TraceWriter) Count() uint64 { return t.count }

// Flush drains buffered output.
func (t *TraceWriter) Flush() error { return t.w.Flush() }

// Record captures n instructions of app's synthetic stream into w.
func Record(app App, threadID int, seed int64, n uint64, w io.Writer) error {
	g, err := NewGen(app, threadID, seed)
	if err != nil {
		return err
	}
	tw, err := NewTraceWriter(w)
	if err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		if err := tw.Write(g.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// Replay is a cpu.Source that replays a recorded trace. When the trace is
// exhausted it loops back to the first instruction (threads must be able to
// run past their target to preserve contention), re-basing PCs so fetch
// stays sequential.
type Replay struct {
	ins  []Instr
	next int
}

// ErrBadTrace reports a malformed or truncated trace stream.
var ErrBadTrace = errors.New("workload: malformed trace")

// NewReplay decodes an entire trace into memory.
func NewReplay(r io.Reader) (*Replay, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic[:])
	}
	rep := &Replay{}
	var pc uint64
	for {
		kind, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		if kind > uint64(Branch) {
			return nil, fmt.Errorf("%w: kind %d", ErrBadTrace, kind)
		}
		flags, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		lat, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		dep1, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		dep2, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		pcDelta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		pc = uint64(int64(pc) + pcDelta)
		in := Instr{
			Kind:       Kind(kind),
			Mispredict: flags&1 != 0,
			Taken:      flags&2 != 0,
			Lat:        int(lat),
			Dep1:       int(dep1),
			Dep2:       int(dep2),
			PC:         pc,
		}
		if in.Kind == Load || in.Kind == Store {
			addr, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
			}
			in.Addr = addr
		}
		rep.ins = append(rep.ins, in)
	}
	if len(rep.ins) == 0 {
		return nil, fmt.Errorf("%w: empty trace", ErrBadTrace)
	}
	return rep, nil
}

// Len returns the trace length in instructions.
func (r *Replay) Len() int { return len(r.ins) }

// Next implements the CPU's instruction source, looping at end of trace.
func (r *Replay) Next() Instr {
	in := r.ins[r.next]
	r.next++
	if r.next == len(r.ins) {
		r.next = 0
	}
	return in
}
