package addrmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func ddrGeo(channels int) Geometry {
	return Geometry{
		Channels:        channels,
		ChipsPerChannel: 1,
		BanksPerChip:    4,
		PageBytes:       2048,
		LineBytes:       64,
	}
}

func rdramGeo() Geometry {
	return Geometry{
		Channels:        2,
		ChipsPerChannel: 4,
		BanksPerChip:    32,
		PageBytes:       2048,
		LineBytes:       64,
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		g    Geometry
		ok   bool
	}{
		{"ddr2", ddrGeo(2), true},
		{"rdram", rdramGeo(), true},
		{"zero channels", Geometry{0, 1, 4, 2048, 64}, false},
		{"negative banks", Geometry{2, 1, -4, 2048, 64}, false},
		{"page not multiple of line", Geometry{2, 1, 4, 2048, 96}, false},
		{"non power of two banks", Geometry{2, 1, 3, 2048, 64}, false},
		{"zero page", Geometry{2, 1, 4, 0, 64}, false},
	}
	for _, c := range cases {
		err := c.g.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() err = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestNewMapperRejectsBadGeometry(t *testing.T) {
	if _, err := NewMapper(Geometry{}, Page); err == nil {
		t.Fatal("NewMapper accepted an empty geometry")
	}
}

func TestPageMappingRoundRobin(t *testing.T) {
	g := ddrGeo(2)
	m, err := NewMapper(g, Page)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive pages must land on distinct banks, cycling through all of
	// them before reusing any, and alternate channels fastest.
	seen := map[int]bool{}
	for p := 0; p < g.TotalBanks(); p++ {
		loc := m.Map(uint64(p * g.PageBytes))
		id := g.BankID(loc)
		if seen[id] {
			t.Fatalf("page %d reused bank %d before the round completed", p, id)
		}
		seen[id] = true
		if loc.Row != 0 {
			t.Fatalf("page %d mapped to row %d, want 0", p, loc.Row)
		}
		if wantCh := p % g.Channels; loc.Channel != wantCh {
			t.Fatalf("page %d on channel %d, want %d (channel-major interleave)", p, loc.Channel, wantCh)
		}
	}
}

func TestColumnDecoding(t *testing.T) {
	m, _ := NewMapper(ddrGeo(2), Page)
	for i := 0; i < 2048/64; i++ {
		loc := m.Map(uint64(i * 64))
		if loc.Col != i {
			t.Fatalf("offset %d decoded column %d, want %d", i*64, loc.Col, i)
		}
		if loc.Row != 0 || loc.Channel != 0 {
			t.Fatalf("intra-page address escaped page: %+v", loc)
		}
	}
}

func TestXORSpreadsConflictingPages(t *testing.T) {
	// Addresses that are exactly totalBanks pages apart hit the same bank
	// under Page mapping (classic row-buffer conflict stream). XOR must
	// spread them over different banks.
	g := ddrGeo(2)
	pm, _ := NewMapper(g, Page)
	xm, _ := NewMapper(g, XOR)
	banks := g.TotalBanks()

	pageBanks := map[int]int{}
	xorBanks := map[int]int{}
	for i := 0; i < banks; i++ {
		addr := uint64(i*banks) * uint64(g.PageBytes) // stride = one full round
		pageBanks[g.BankID(pm.Map(addr))]++
		xorBanks[g.BankID(xm.Map(addr))]++
	}
	if len(pageBanks) != 1 {
		t.Fatalf("page mapping should pin the conflict stream to 1 bank, got %d", len(pageBanks))
	}
	if len(xorBanks) != banks {
		t.Fatalf("xor mapping spread conflict stream over %d banks, want %d", len(xorBanks), banks)
	}
}

func TestMapUnmapRoundTrip(t *testing.T) {
	geos := []Geometry{ddrGeo(2), ddrGeo(4), ddrGeo(8), rdramGeo()}
	schemes := []Scheme{Page, XOR}
	rng := rand.New(rand.NewSource(42))
	for _, g := range geos {
		for _, s := range schemes {
			m, err := NewMapper(g, s)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2000; i++ {
				addr := (rng.Uint64() % (1 << 34)) &^ uint64(g.LineBytes-1)
				loc := m.Map(addr)
				if back := m.Unmap(loc); back != addr {
					t.Fatalf("%v/%v: Unmap(Map(%#x)) = %#x", g, s, addr, back)
				}
				if loc.Channel < 0 || loc.Channel >= g.Channels ||
					loc.Chip < 0 || loc.Chip >= g.ChipsPerChannel ||
					loc.Bank < 0 || loc.Bank >= g.BanksPerChip {
					t.Fatalf("%v/%v: Map(%#x) out of range: %+v", g, s, addr, loc)
				}
			}
		}
	}
}

// Property: the XOR permutation is a bijection — two distinct line addresses
// never decode to the same location.
func TestPropertyNoCollisions(t *testing.T) {
	g := rdramGeo()
	m, _ := NewMapper(g, XOR)
	f := func(a, b uint32) bool {
		aa := uint64(a) &^ uint64(g.LineBytes-1)
		bb := uint64(b) &^ uint64(g.LineBytes-1)
		la, lb := m.Map(aa), m.Map(bb)
		if aa == bb {
			return la == lb
		}
		return la != lb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Page and XOR map an address to the same row and column; only the
// bank placement differs. This is what makes XOR a pure permutation scheme.
func TestPropertySameRowColumn(t *testing.T) {
	g := ddrGeo(8)
	pm, _ := NewMapper(g, Page)
	xm, _ := NewMapper(g, XOR)
	f := func(a uint32) bool {
		addr := uint64(a) &^ uint64(g.LineBytes-1)
		lp, lx := pm.Map(addr), xm.Map(addr)
		return lp.Row == lx.Row && lp.Col == lx.Col
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestBankIDRoundTrip(t *testing.T) {
	g := rdramGeo()
	for id := 0; id < g.TotalBanks(); id++ {
		loc := g.locFromBankID(id)
		if back := g.BankID(loc); back != id {
			t.Fatalf("BankID(locFromBankID(%d)) = %d", id, back)
		}
	}
}

func TestGang(t *testing.T) {
	cases := []struct {
		phys, gang, width int
		wantCh, wantWidth int
		wantErr           bool
	}{
		{2, 1, 16, 2, 16, false},
		{2, 2, 16, 1, 32, false},
		{4, 2, 16, 2, 32, false},
		{8, 4, 16, 2, 64, false},
		{8, 1, 16, 8, 16, false},
		{8, 3, 16, 0, 0, true},
		{0, 1, 16, 0, 0, true},
		{4, 0, 16, 0, 0, true},
	}
	for _, c := range cases {
		ch, w, err := Gang(c.phys, c.gang, c.width)
		if (err != nil) != c.wantErr {
			t.Errorf("Gang(%d,%d,%d) err = %v, wantErr=%v", c.phys, c.gang, c.width, err, c.wantErr)
			continue
		}
		if err == nil && (ch != c.wantCh || w != c.wantWidth) {
			t.Errorf("Gang(%d,%d,%d) = (%d,%d), want (%d,%d)", c.phys, c.gang, c.width, ch, w, c.wantCh, c.wantWidth)
		}
	}
}

func TestSchemeString(t *testing.T) {
	if Page.String() != "page" || XOR.String() != "xor" {
		t.Fatalf("Scheme strings: %q %q", Page, XOR)
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme must still print")
	}
}

func TestWithoutChannelAvoidsFailedChannel(t *testing.T) {
	g := Geometry{Channels: 4, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
	for _, scheme := range []Scheme{Page, XOR} {
		m, err := NewMapper(g, scheme)
		if err != nil {
			t.Fatal(err)
		}
		for failed := 0; failed < g.Channels; failed++ {
			dm, err := m.WithoutChannel(failed)
			if err != nil {
				t.Fatal(err)
			}
			if dm.FailedChannel() != failed {
				t.Fatalf("FailedChannel = %d, want %d", dm.FailedChannel(), failed)
			}
			hit := make([]int, g.Channels)
			for a := uint64(0); a < 1<<20; a += 64 {
				l := dm.Map(a)
				if l.Channel == failed {
					t.Fatalf("scheme %v: address %#x still maps to failed channel %d", scheme, a, failed)
				}
				hit[l.Channel]++
			}
			for ch, n := range hit {
				if ch != failed && n == 0 {
					t.Errorf("scheme %v, failed %d: survivor channel %d received no traffic", scheme, failed, ch)
				}
			}
		}
	}
}

func TestWithoutChannelDeterministicAndStableOutsideFailure(t *testing.T) {
	g := Geometry{Channels: 2, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
	m, _ := NewMapper(g, XOR)
	d1, _ := m.WithoutChannel(1)
	d2, _ := m.WithoutChannel(1)
	for a := uint64(0); a < 1<<18; a += 64 {
		healthy := m.Map(a)
		l1, l2 := d1.Map(a), d2.Map(a)
		if l1 != l2 {
			t.Fatalf("degraded mapping not deterministic at %#x: %+v vs %+v", a, l1, l2)
		}
		if healthy.Channel != 1 && l1 != healthy {
			t.Fatalf("address %#x not on the failed channel moved: %+v -> %+v", a, healthy, l1)
		}
		if healthy.Channel == 1 {
			want := healthy
			want.Channel = l1.Channel
			if l1 != want {
				t.Fatalf("failover changed more than the channel at %#x: %+v -> %+v", a, healthy, l1)
			}
		}
	}
}

func TestWithoutChannelErrors(t *testing.T) {
	g := Geometry{Channels: 2, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
	m, _ := NewMapper(g, Page)
	if _, err := m.WithoutChannel(2); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if _, err := m.WithoutChannel(-1); err == nil {
		t.Error("negative channel accepted")
	}
	d, _ := m.WithoutChannel(0)
	if _, err := d.WithoutChannel(1); err == nil {
		t.Error("double failure accepted")
	}
	one := Geometry{Channels: 1, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
	m1, _ := NewMapper(one, Page)
	if _, err := m1.WithoutChannel(0); err == nil {
		t.Error("failing the only channel accepted")
	}
}

func TestMapperValidate(t *testing.T) {
	g := Geometry{Channels: 2, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
	m, _ := NewMapper(g, XOR)
	if err := m.Validate(); err != nil {
		t.Errorf("healthy mapper rejected: %v", err)
	}
	d, _ := m.WithoutChannel(1)
	if err := d.Validate(); err != nil {
		t.Errorf("degraded mapper rejected: %v", err)
	}
	bad := Mapper{Geo: Geometry{Channels: 3, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}}
	if err := bad.Validate(); err == nil {
		t.Error("non-power-of-two channel count accepted")
	}
	outOfRange := m
	outOfRange.failed = 9
	if err := outOfRange.Validate(); err == nil {
		t.Error("out-of-range failover target accepted")
	}
}
