// Package addrmap implements the DRAM address mapping schemes evaluated in
// the paper: page-interleaved mapping (DRAM pages assigned round-robin to
// banks) and the XOR/permutation-based mapping of Zhang, Zhu and Zhang that
// spreads row-buffer conflicts by XORing the bank index with low row-address
// bits. It also models channel ganging: clustering several physical channels
// into one wider logical channel.
package addrmap

import "fmt"

// Scheme selects how physical addresses are permuted onto DRAM banks.
type Scheme int

const (
	// Page assigns consecutive DRAM pages to banks round-robin ("page
	// mapping" in the paper).
	Page Scheme = iota
	// XOR permutes the bank index with low row bits (the permutation-based
	// interleaving of Zhang et al., called "XOR" in the paper).
	XOR
)

func (s Scheme) String() string {
	switch s {
	case Page:
		return "page"
	case XOR:
		return "xor"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Geometry describes the *logical* organization of the DRAM system after
// channel ganging has been applied.
type Geometry struct {
	// Channels is the number of independent logical channels.
	Channels int
	// ChipsPerChannel is the number of independent chip groups (ranks for
	// SDRAM, individual devices for Rambus) per logical channel.
	ChipsPerChannel int
	// BanksPerChip is the number of independent banks inside a chip group.
	BanksPerChip int
	// PageBytes is the row-buffer (DRAM page) size in bytes.
	PageBytes int
	// LineBytes is the transfer granularity (the L3 line size).
	LineBytes int
}

// TotalBanks is the number of independent banks across the whole system.
func (g Geometry) TotalBanks() int { return g.Channels * g.ChipsPerChannel * g.BanksPerChip }

// Validate reports a descriptive error for malformed geometries. All fields
// must be positive; PageBytes must be a multiple of LineBytes; counts must be
// powers of two so the XOR permutation stays bijective.
func (g Geometry) Validate() error {
	switch {
	case g.Channels <= 0, g.ChipsPerChannel <= 0, g.BanksPerChip <= 0:
		return fmt.Errorf("addrmap: non-positive geometry %+v", g)
	case g.PageBytes <= 0 || g.LineBytes <= 0:
		return fmt.Errorf("addrmap: non-positive page/line size %+v", g)
	case g.PageBytes%g.LineBytes != 0:
		return fmt.Errorf("addrmap: page size %d not a multiple of line size %d", g.PageBytes, g.LineBytes)
	}
	for _, v := range []int{g.Channels, g.ChipsPerChannel, g.BanksPerChip, g.PageBytes, g.LineBytes} {
		if v&(v-1) != 0 {
			return fmt.Errorf("addrmap: geometry value %d is not a power of two (%+v)", v, g)
		}
	}
	return nil
}

// Loc is a fully decoded DRAM location.
type Loc struct {
	Channel int
	Chip    int
	Bank    int
	Row     uint64
	// Col is the line-sized column index within the row.
	Col int
}

// BankID flattens (channel, chip, bank) into a system-wide bank index,
// channel-major so that consecutive pages under Page mapping alternate
// channels first (maximizing channel-level parallelism, the organization the
// paper's multi-channel results assume).
func (g Geometry) BankID(l Loc) int {
	return (l.Bank*g.ChipsPerChannel+l.Chip)*g.Channels + l.Channel
}

// locFromBankID is the inverse of BankID.
func (g Geometry) locFromBankID(id int) Loc {
	ch := id % g.Channels
	id /= g.Channels
	chip := id % g.ChipsPerChannel
	bank := id / g.ChipsPerChannel
	return Loc{Channel: ch, Chip: chip, Bank: bank}
}

// Mapper translates physical line addresses into DRAM locations under a
// given scheme.
type Mapper struct {
	Geo    Geometry
	Scheme Scheme

	// failed is 1 + the index of a hard-failed channel, or 0 when the
	// system is healthy (so the zero Mapper is undegraded). In degraded
	// mode Map redirects the failed channel's traffic across the survivors;
	// see WithoutChannel.
	failed int
}

// NewMapper validates the geometry and returns a Mapper.
func NewMapper(g Geometry, s Scheme) (Mapper, error) {
	if err := g.Validate(); err != nil {
		return Mapper{}, err
	}
	return Mapper{Geo: g, Scheme: s}, nil
}

// Validate checks the mapper's geometry and (when degraded) that the failed
// channel is in range and leaves at least one survivor.
func (m Mapper) Validate() error {
	if err := m.Geo.Validate(); err != nil {
		return err
	}
	if m.failed != 0 {
		ch := m.failed - 1
		if ch < 0 || ch >= m.Geo.Channels {
			return fmt.Errorf("addrmap: failed channel %d out of range (%d channels)", ch, m.Geo.Channels)
		}
		if m.Geo.Channels < 2 {
			return fmt.Errorf("addrmap: cannot degrade a %d-channel system (no failover target)", m.Geo.Channels)
		}
	}
	return nil
}

// FailedChannel returns the hard-failed channel index, or -1 when healthy.
func (m Mapper) FailedChannel() int { return m.failed - 1 }

// WithoutChannel returns a degraded copy of the mapper in which traffic that
// would decode to channel ch fails over to the surviving channels. The
// redirect is a pure function of the decoded location (no state), so the
// degraded mapping is deterministic, and it spreads a failed channel's rows
// across every survivor rather than doubling up one neighbour: survivor
// index = (row + bank + chip) mod (channels-1), skipping ch.
//
// The degraded mapping is intentionally not a bijection on the surviving
// banks — two addresses may now share a bank — which is exactly the
// capacity/conflict cost a real interleaved system pays after mapping out a
// channel. Unmap stays defined only for the healthy mapping.
func (m Mapper) WithoutChannel(ch int) (Mapper, error) {
	if ch < 0 || ch >= m.Geo.Channels {
		return Mapper{}, fmt.Errorf("addrmap: failed channel %d out of range (%d channels)", ch, m.Geo.Channels)
	}
	if m.Geo.Channels < 2 {
		return Mapper{}, fmt.Errorf("addrmap: cannot degrade a %d-channel system (no failover target)", m.Geo.Channels)
	}
	if m.failed != 0 {
		return Mapper{}, fmt.Errorf("addrmap: channel %d already failed (multi-channel failure is not modeled)", m.failed-1)
	}
	m.failed = ch + 1
	return m, nil
}

// Map decodes a physical byte address. Addresses are first split into
// (pageIndex, column); the page index is then distributed over banks
// according to the scheme.
func (m Mapper) Map(addr uint64) Loc {
	g := m.Geo
	page := addr / uint64(g.PageBytes)
	col := int(addr%uint64(g.PageBytes)) / g.LineBytes

	banks := uint64(g.TotalBanks())
	bank := page % banks
	row := page / banks
	if m.Scheme == XOR {
		// Permutation-based interleaving: XOR the bank index with the low
		// bits of the row address. For any fixed row this is a bijection on
		// bank indices, so no two distinct addresses collide.
		bank ^= row % banks
	}
	loc := g.locFromBankID(int(bank))
	loc.Row = row
	loc.Col = col
	if m.failed != 0 && loc.Channel == m.failed-1 {
		loc.Channel = m.failover(loc)
	}
	return loc
}

// failover picks the surviving channel for a location that decoded to the
// failed channel.
func (m Mapper) failover(l Loc) int {
	survivors := m.Geo.Channels - 1
	idx := int((l.Row + uint64(l.Bank) + uint64(l.Chip)) % uint64(survivors))
	if idx >= m.failed-1 {
		idx++ // skip the dead channel
	}
	return idx
}

// Unmap is the exact inverse of Map; it exists so tests can prove the
// mapping is a bijection.
func (m Mapper) Unmap(l Loc) uint64 {
	g := m.Geo
	banks := uint64(g.TotalBanks())
	bank := uint64(g.BankID(Loc{Channel: l.Channel, Chip: l.Chip, Bank: l.Bank}))
	if m.Scheme == XOR {
		bank ^= l.Row % banks
	}
	page := l.Row*banks + bank
	return page*uint64(g.PageBytes) + uint64(l.Col*g.LineBytes)
}

// Gang reorganizes physCh physical channels of width physWidthBytes into
// physCh/gang logical channels of width physWidthBytes*gang. Ganged channels
// operate in lockstep, so the chips behind them count once: the number of
// independent banks per logical channel is unchanged, which is exactly why
// ganging hurts concurrency in the paper's Figure 7.
//
// It returns the logical channel count and logical channel width in bytes.
func Gang(physCh, gang, physWidthBytes int) (logicalCh, widthBytes int, err error) {
	if physCh <= 0 || gang <= 0 || physWidthBytes <= 0 {
		return 0, 0, fmt.Errorf("addrmap: non-positive gang parameters (%d, %d, %d)", physCh, gang, physWidthBytes)
	}
	if physCh%gang != 0 {
		return 0, 0, fmt.Errorf("addrmap: %d physical channels not divisible by gang degree %d", physCh, gang)
	}
	return physCh / gang, physWidthBytes * gang, nil
}
