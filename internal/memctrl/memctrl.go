// Package memctrl implements the memory controller: per-logical-channel
// request queues, a dispatch engine over the dram bank models, and the
// access-scheduling policies compared in the paper — FCFS (with read bypass),
// hit-first, age-based, and the three thread-aware schemes (outstanding-
// request-based, ROB-occupancy-based, IQ-occupancy-based).
package memctrl

import (
	"fmt"
	"strings"

	"smtdram/internal/addrmap"
	"smtdram/internal/dram"
	"smtdram/internal/event"
	"smtdram/internal/faults"
	"smtdram/internal/mem"
	"smtdram/internal/obs"
)

// Policy selects the access-scheduling scheme.
type Policy int

const (
	// FCFS serves requests in arrival order, but lets reads bypass writes
	// (the paper's reference point).
	FCFS Policy = iota
	// HitFirst adds row-buffer-hit prioritization over read-first
	// (the single-threaded state of the art).
	HitFirst
	// AgeBased is HitFirst plus promotion of the oldest request whenever
	// more than AgeThreshold requests are outstanding.
	AgeBased
	// RequestBased is the thread-aware scheme: among same-type requests,
	// the thread with the fewest pending memory requests goes first.
	RequestBased
	// ROBBased prioritizes the thread holding the most reorder-buffer
	// entries.
	ROBBased
	// IQBased prioritizes the thread holding the most integer issue-queue
	// entries.
	IQBased
	// CriticalityBased prioritizes requests carrying the critical word the
	// processor is stalled on (Section 3.1's fourth single-threaded policy;
	// in this model, demand loads are critical and prefetches/writebacks
	// are not).
	CriticalityBased
)

var policyNames = map[Policy]string{
	FCFS:             "fcfs",
	HitFirst:         "hit-first",
	AgeBased:         "age-based",
	RequestBased:     "request-based",
	ROBBased:         "rob-based",
	IQBased:          "iq-based",
	CriticalityBased: "criticality-based",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy converts a CLI name into a Policy.
func ParsePolicy(s string) (Policy, error) {
	for p, name := range policyNames {
		if strings.EqualFold(s, name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("memctrl: unknown policy %q (want one of fcfs, hit-first, age-based, request-based, rob-based, iq-based, criticality-based)", s)
}

// Policies lists the paper's Figure 10 policies in presentation order.
func Policies() []Policy {
	return []Policy{FCFS, HitFirst, AgeBased, RequestBased, ROBBased, IQBased}
}

// AllPolicies additionally includes the single-threaded criticality-based
// policy from Section 3.1, which Figure 10 omits.
func AllPolicies() []Policy {
	return append(Policies(), CriticalityBased)
}

// Config parameterizes a Controller.
type Config struct {
	// Mapper decodes physical addresses to DRAM locations.
	Mapper addrmap.Mapper
	// Params is the per-channel DRAM timing.
	Params dram.Params
	// Policy is the scheduling scheme.
	Policy Policy
	// QueueDepth is the per-channel pending-request limit (default 64).
	QueueDepth int
	// MaxInFlight bounds how many requests a channel dispatches before the
	// earliest completes; small windows keep scheduling decisions late and
	// therefore better informed (default 4).
	MaxInFlight int
	// AgeThreshold is the outstanding-request count beyond which AgeBased
	// promotes the oldest request (the paper uses 8).
	AgeThreshold int
	// ThreadAwareFirst inverts the paper's priority chain, ranking the
	// thread-aware criterion above hit-first. Section 3.2 argues this is
	// the wrong order for SMT ("the sustained memory bandwidth is more
	// important than the latency of an individual access"); the ablation
	// benchmark exists to check that claim.
	ThreadAwareFirst bool
	// Trace, when non-nil, receives one event per serviced DRAM request —
	// the raw material for offline scheduling analysis (cmd/tracedump).
	Trace func(TraceEvent)
	// Obs, when non-nil, attaches the observability layer: the controller
	// emits request-lifecycle events into Obs.Trace and registers its
	// metrics (queue depths, outstanding requests, row-buffer hit rate, bus
	// utilization) into Obs.Reg. Nil costs the hot path one pointer check.
	Obs *obs.Observer
	// Threads is the number of hardware threads (for per-thread stats).
	Threads int
	// Injector, when non-nil, is the fault-injection subsystem: reads may
	// come back with ECC errors or be dropped, and a channel may hard-fail
	// mid-run. Nil (every fault-free run) costs one pointer check per read.
	Injector *faults.Injector
	// MaxRetries bounds how many times a dropped or ECC-uncorrectable read
	// is re-queued before the controller gives up and surfaces the loss
	// (default 3).
	MaxRetries int
	// RetryBackoff is the base delay in cycles before the first retry;
	// attempt n waits RetryBackoff << (n-1), capped at six doublings
	// (default 16).
	RetryBackoff uint64
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxInFlight == 0 {
		c.MaxInFlight = 4
	}
	if c.AgeThreshold == 0 {
		c.AgeThreshold = 8
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.RetryBackoff == 0 {
		c.RetryBackoff = 16
	}
	return c
}

// Validate rejects incoherent controller configurations: a broken mapper
// (zero channels, non-power-of-two interleave units, failover target out of
// range), negative queue/window/retry bounds, or a fault plan that does not
// fit the geometry. core calls this during machine assembly; New also calls
// it, so hand-built controllers get the same checks.
func (c Config) Validate() error {
	if err := c.Mapper.Validate(); err != nil {
		return err
	}
	if c.QueueDepth < 0 || c.MaxInFlight < 0 || c.AgeThreshold < 0 {
		return fmt.Errorf("memctrl: negative queue/window bound (depth %d, in-flight %d, age %d)",
			c.QueueDepth, c.MaxInFlight, c.AgeThreshold)
	}
	if c.Threads < 0 {
		return fmt.Errorf("memctrl: negative thread count %d", c.Threads)
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("memctrl: negative retry bound %d", c.MaxRetries)
	}
	if err := c.Injector.Plan().Validate(c.Mapper.Geo.Channels); err != nil {
		return err
	}
	return nil
}

// TraceEvent describes one serviced DRAM request.
type TraceEvent struct {
	// Arrive and Done are the enqueue and last-data-beat cycles.
	Arrive, Done uint64
	// Issue is the cycle the request was dispatched to its bank.
	Issue uint64
	// Addr is the physical line address.
	Addr uint64
	// Channel, Chip, Bank, Row locate the access.
	Channel, Chip, Bank int
	Row                 uint64
	// Thread is the originating hardware thread (-1 for writebacks).
	Thread int
	// Read distinguishes fills from writebacks.
	Read bool
	// Outcome is the row-buffer outcome (hit/closed/conflict).
	Outcome dram.Outcome
	// QueuedBehind is the queue length seen on arrival.
	QueuedBehind int
}

// entry is a queued request plus its decoded location. Entries are recycled
// through the controller's free list, and after dispatch the entry doubles as
// the request's completion event (it implements event.Handler), so steady-state
// request traffic allocates neither entries nor closures.
type entry struct {
	req          *mem.Request
	loc          addrmap.Loc
	seq          uint64
	queuedBehind int
	attempt      uint8 // fault retries consumed so far
	backoff      bool  // entry is waiting out a retry backoff delay

	ctrl *Controller
	cc   *channelCtl // dispatching channel, set when the completion is armed
}

// OnEvent fires at the request's last data beat — or, for an entry parked in
// retry backoff, at the end of its delay. The completion path returns the
// entry to the free list up front — the body below may enqueue follow-on
// requests (via OnComplete or dispatch) that immediately reuse it — so every
// field is copied to locals first.
func (e *entry) OnEvent(at uint64) {
	c := e.ctrl
	if e.backoff {
		e.backoff = false
		c.backoffUntil = dropTime(c.backoffUntil, at)
		c.requeue(at, e)
		return
	}
	cc := e.cc
	cc.inFlight--
	cc.doneTimes = dropTime(cc.doneTimes, at)
	if c.inj != nil && e.req.IsRead() && c.absorbFault(at, e) {
		// The read came back damaged or lost; the entry is parked for a
		// backoff retry and must not complete. The freed in-flight slot
		// can serve someone else meanwhile.
		c.dispatch(at, cc)
		return
	}
	req, loc := e.req, e.loc
	c.releaseEntry(e)
	if req.IsRead() {
		c.Stats.ReadLatencySum += at - req.Arrive
		if t := req.Thread; t >= 0 && t < len(c.Stats.ThreadReads) {
			c.Stats.ThreadReads[t]++
			c.Stats.ThreadReadLatencySum[t] += at - req.Arrive
		}
	}
	c.accountChange(at, req.Thread, -1)
	if c.lc != nil {
		c.lc.Emit(lcEvent(obs.KDone, at, at, req, loc))
	}
	if req.OnComplete != nil {
		req.OnComplete(at)
	}
	c.dispatch(at, cc)
}

type channelCtl struct {
	dev        *dram.Channel
	queue      []*entry
	inFlight   int
	retryArmed bool
	failed     bool       // hard channel failure: never dispatches again
	retry      retryEvent // pre-bound bank-ready wake-up (one per channel)

	// doneTimes are the completion cycles of the in-flight requests and
	// retryWakeAt the armed bank-ready retry cycle (0 when none): the
	// channel's contribution to ProbeQuiet's next-interaction bound,
	// maintained alongside the events that realize them.
	doneTimes   []uint64
	retryWakeAt uint64
}

// dropTime removes one occurrence of v from s (order-insensitively; the
// probe only ever takes the minimum).
func dropTime(s []uint64, v uint64) []uint64 {
	for i, x := range s {
		if x == v {
			s[i] = s[len(s)-1]
			return s[:len(s)-1]
		}
	}
	return s
}

// retryEvent is the bank-ready wake-up armed by armRetry. One lives in each
// channelCtl, bound at construction, so arming a retry never allocates.
type retryEvent struct {
	c  *Controller
	cc *channelCtl
}

func (r *retryEvent) OnEvent(at uint64) {
	r.cc.retryArmed = false
	r.cc.retryWakeAt = 0
	r.c.dispatch(at, r.cc)
}

// maxTrackedOutstanding caps the concurrency histograms.
const maxTrackedOutstanding = 64

// Stats aggregates controller-level measurements.
type Stats struct {
	Reads          uint64
	Writes         uint64
	Rejected       uint64 // enqueue attempts bounced by a full queue
	ReadLatencySum uint64 // enqueue → last data beat, reads only

	// ThreadReads / ThreadReadLatencySum break read service down per
	// originating hardware thread (index capped at 15).
	ThreadReads          [16]uint64
	ThreadReadLatencySum [16]uint64

	// OutstandingHist[i] is the number of cycles during which exactly i
	// requests (reads and writebacks — everything presented to the DRAM
	// system) were outstanding (i ≥ 1: the DRAM system was busy). Index
	// maxTrackedOutstanding accumulates everything at or beyond it.
	OutstandingHist [maxTrackedOutstanding + 1]uint64
	// ThreadSpreadHist[k] is the number of cycles during which ≥2 requests
	// were outstanding and exactly k distinct threads had requests pending.
	ThreadSpreadHist [maxTrackedOutstanding + 1]uint64

	// Resilience counters (all zero on fault-free runs).
	//
	// Retries is the number of backoff re-queues of dropped or
	// ECC-uncorrectable reads; RetryGiveUps counts reads delivered with the
	// loss surfaced after exhausting MaxRetries; FailedOver counts queued
	// requests migrated off a hard-failed channel.
	Retries      uint64
	RetryGiveUps uint64
	FailedOver   uint64
}

// BusyCycles is the total time the DRAM system had work outstanding.
func (s *Stats) BusyCycles() uint64 {
	var t uint64
	for i := 1; i <= maxTrackedOutstanding; i++ {
		t += s.OutstandingHist[i]
	}
	return t
}

// AvgReadLatency is the mean read service time in cycles.
func (s *Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.ReadLatencySum) / float64(s.Reads)
}

// Controller is the DRAM memory controller. It implements mem.Controller.
type Controller struct {
	cfg      Config
	q        *event.Queue
	channels []*channelCtl
	seq      uint64

	// mapper is the live address mapping; it starts as cfg.Mapper and is
	// swapped for a degraded remap when a channel hard-fails.
	mapper addrmap.Mapper
	// inj is the fault injector (nil on fault-free runs).
	inj *faults.Injector
	// failover is the pre-bound channel-death event; failoverAt is the
	// cycle it fired (0 = not yet / no plan).
	failover   failoverEvent
	failoverAt uint64

	// lc receives request-lifecycle events; nil when tracing is disabled.
	lc obs.Sink

	// freeEntries recycles queue entries (and their completion events).
	freeEntries []*entry

	// backoffUntil are the expiry cycles of entries parked on retry-backoff
	// timers, tracked for ProbeQuiet's bound (fault runs only; stays empty
	// otherwise).
	backoffUntil []uint64

	// live per-thread pending demand-request counts (the request-based
	// scheme's input; the controller knows these precisely).
	outstanding []int
	threadsBusy int // #threads with outstanding > 0
	totalOut    int // total outstanding demand requests
	lastChange  uint64

	Stats Stats
}

var _ mem.Controller = (*Controller)(nil)

// New builds a controller with one dram.Channel per logical channel of the
// mapper's geometry.
func New(q *event.Queue, cfg Config) (*Controller, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := cfg.Mapper.Geo
	c := &Controller{
		cfg:         cfg,
		q:           q,
		mapper:      cfg.Mapper,
		inj:         cfg.Injector,
		outstanding: make([]int, cfg.Threads),
	}
	for i := 0; i < g.Channels; i++ {
		dev, err := dram.NewChannel(cfg.Params, g.ChipsPerChannel, g.BanksPerChip)
		if err != nil {
			return nil, err
		}
		cc := &channelCtl{dev: dev}
		cc.retry = retryEvent{c: c, cc: cc}
		c.channels = append(c.channels, cc)
	}
	if _, at := c.inj.ChannelFailAt(); at > 0 {
		c.failover = failoverEvent{c: c}
		c.q.ScheduleHandler(at, &c.failover)
	}
	if cfg.Obs != nil {
		if cfg.Obs.Trace != nil {
			c.lc = cfg.Obs.Trace
		}
		c.registerMetrics(cfg.Obs.Reg)
	}
	return c, nil
}

// failoverEvent fires at the planned channel-death cycle.
type failoverEvent struct{ c *Controller }

func (f *failoverEvent) OnEvent(at uint64) { f.c.failChannel(at) }

// failChannel executes the hard channel failure: the live mapper degrades so
// no new traffic decodes to the dead channel, and every request queued there
// migrates to its failover home on a surviving channel. Requests already
// dispatched to the dead channel's banks complete (their data was latched
// before the failure); the migrated ones keep their arrival time, so the
// latency cost of failing over is visible in the read-latency stats.
func (c *Controller) failChannel(at uint64) {
	ch, _ := c.inj.ChannelFailAt()
	degraded, err := c.mapper.WithoutChannel(ch)
	if err != nil {
		// Validated at construction; a failure here means the plan and the
		// geometry disagree, which Validate already rejects.
		return
	}
	c.mapper = degraded
	c.failoverAt = at
	cc := c.channels[ch]
	cc.failed = true
	migrated := cc.queue
	cc.queue = nil
	for _, e := range migrated {
		e.loc = c.mapper.Map(e.req.Addr)
		c.channels[e.loc.Channel].queue = append(c.channels[e.loc.Channel].queue, e)
		c.Stats.FailedOver++
		if c.lc != nil {
			ev := lcEvent(obs.KFailover, at, at, e.req, e.loc)
			ev.Outcome = fmt.Sprintf("ch%d failed", ch)
			c.lc.Emit(ev)
		}
	}
	for _, tc := range c.channels {
		if !tc.failed && len(tc.queue) > 0 {
			c.dispatch(at, tc)
		}
	}
}

// Failover reports the failed channel and the cycle the failover executed
// ((-1, 0) when no channel has failed).
func (c *Controller) Failover() (channel int, at uint64) {
	if c.failoverAt == 0 {
		return -1, 0
	}
	ch, _ := c.inj.ChannelFailAt()
	return ch, c.failoverAt
}

// Injector exposes the fault injector (nil on fault-free runs) so drivers
// can assemble end-of-run fault reports.
func (c *Controller) Injector() *faults.Injector { return c.inj }

// ECCStats sums the SEC-DED decoder counters over all channels.
func (c *Controller) ECCStats() dram.ECCStats {
	var s dram.ECCStats
	for _, cc := range c.channels {
		s.Detected += cc.dev.ECC.Stats.Detected
		s.Corrected += cc.dev.ECC.Stats.Corrected
		s.Uncorrected += cc.dev.ECC.Stats.Uncorrected
	}
	return s
}

// absorbFault runs the fault injector and the ECC decoder over one completed
// read. It returns true when the read must be retried — the entry has been
// parked on a backoff timer and must not complete. Corrected errors and
// exhausted retries return false: the read completes (the latter with the
// loss counted in RetryGiveUps and the ECC/drop counters).
func (c *Controller) absorbFault(at uint64, e *entry) bool {
	f := c.inj.OnRead(e.loc.Channel, e.loc.Chip, e.loc.Bank, e.loc.Row)
	if f == faults.FaultNone {
		return false
	}
	dev := c.channels[e.loc.Channel].dev
	var outcome string
	retryable := false
	switch f {
	case faults.FaultSingleBit:
		dev.ECC.Scrub(dram.ErrSingleBit)
		outcome = "corrected"
	case faults.FaultMultiBit:
		dev.ECC.Scrub(dram.ErrMultiBit)
		outcome = "uncorrected"
		retryable = true
	case faults.FaultDrop:
		outcome = "dropped"
		retryable = true
	}
	if c.lc != nil {
		ev := lcEvent(obs.KFault, at, at, e.req, e.loc)
		ev.Outcome = outcome
		c.lc.Emit(ev)
	}
	if !retryable {
		return false
	}
	if int(e.attempt) >= c.cfg.MaxRetries {
		c.Stats.RetryGiveUps++
		if c.lc != nil {
			ev := lcEvent(obs.KRetry, at, at, e.req, e.loc)
			ev.Outcome = "gave up"
			c.lc.Emit(ev)
		}
		return false
	}
	e.attempt++
	c.Stats.Retries++
	shift := uint(e.attempt - 1)
	if shift > 6 {
		shift = 6
	}
	e.backoff = true
	expiry := at + (c.cfg.RetryBackoff << shift)
	c.backoffUntil = append(c.backoffUntil, expiry)
	c.q.ScheduleHandler(expiry, e)
	if c.lc != nil {
		ev := lcEvent(obs.KRetry, at, at, e.req, e.loc)
		ev.Outcome = fmt.Sprintf("attempt %d", e.attempt)
		c.lc.Emit(ev)
	}
	return true
}

// requeue returns a backoff-expired entry to its channel queue, re-decoding
// the address through the live mapper first (a failover may have moved the
// request's home while it waited).
func (c *Controller) requeue(at uint64, e *entry) {
	e.loc = c.mapper.Map(e.req.Addr)
	cc := c.channels[e.loc.Channel]
	cc.queue = append(cc.queue, e)
	c.dispatch(at, cc)
}

// registerMetrics exposes the controller's live state and counters through
// the metrics registry. Sampled gauges become cycle-interval time series;
// plain gauges appear only in the final snapshot.
func (c *Controller) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	for i, cc := range c.channels {
		cc := cc
		reg.Sampled(fmt.Sprintf("memctrl.queue_depth.ch%d", i),
			func(uint64) float64 { return float64(len(cc.queue)) })
		reg.Sampled(fmt.Sprintf("memctrl.in_flight.ch%d", i),
			func(uint64) float64 { return float64(cc.inFlight) })
		reg.Sampled(fmt.Sprintf("dram.bus_busy_frac.ch%d", i),
			func(now uint64) float64 {
				if now == 0 {
					return 0
				}
				return float64(cc.dev.Stats.BusBusy) / float64(now)
			})
	}
	for t := range c.outstanding {
		t := t
		reg.Sampled(fmt.Sprintf("memctrl.outstanding.t%d", t),
			func(uint64) float64 { return float64(c.outstanding[t]) })
	}
	reg.Sampled("memctrl.outstanding.total",
		func(uint64) float64 { return float64(c.totalOut) })
	reg.Sampled("memctrl.row_hit_rate",
		func(uint64) float64 { return 1 - c.RowBufferMissRate() })
	reg.Gauge("memctrl.reads", func(uint64) float64 { return float64(c.Stats.Reads) })
	reg.Gauge("memctrl.writes", func(uint64) float64 { return float64(c.Stats.Writes) })
	reg.Gauge("memctrl.rejected", func(uint64) float64 { return float64(c.Stats.Rejected) })
	reg.Gauge("memctrl.avg_read_latency", func(uint64) float64 { return c.Stats.AvgReadLatency() })
	reg.Gauge("dram.row_hits", func(uint64) float64 { h, _, _ := c.RowBufferStats(); return float64(h) })
	reg.Gauge("dram.row_closed", func(uint64) float64 { _, cl, _ := c.RowBufferStats(); return float64(cl) })
	reg.Gauge("dram.row_conflicts", func(uint64) float64 { _, _, co := c.RowBufferStats(); return float64(co) })
	// Fault/resilience metrics exist only when an injector is attached, so
	// fault-free runs' metrics output is byte-identical to pre-fault builds.
	if c.inj != nil {
		reg.Gauge("faults.injected", func(uint64) float64 { return float64(c.inj.Stats.Total()) })
		reg.Gauge("faults.bitflips", func(uint64) float64 { return float64(c.inj.Stats.BitFlips) })
		reg.Gauge("faults.multibit", func(uint64) float64 { return float64(c.inj.Stats.MultiBit) })
		reg.Gauge("faults.drops", func(uint64) float64 { return float64(c.inj.Stats.Drops) })
		reg.Gauge("ecc.detected", func(uint64) float64 { return float64(c.ECCStats().Detected) })
		reg.Gauge("ecc.corrected", func(uint64) float64 { return float64(c.ECCStats().Corrected) })
		reg.Gauge("ecc.uncorrected", func(uint64) float64 { return float64(c.ECCStats().Uncorrected) })
		reg.Gauge("memctrl.retries", func(uint64) float64 { return float64(c.Stats.Retries) })
		reg.Gauge("memctrl.retry_giveups", func(uint64) float64 { return float64(c.Stats.RetryGiveUps) })
		reg.Gauge("memctrl.failed_over", func(uint64) float64 { return float64(c.Stats.FailedOver) })
		reg.Gauge("memctrl.failover_at", func(uint64) float64 { return float64(c.failoverAt) })
	}
}

// lcEvent builds the common fields of a lifecycle event for a located
// request.
func lcEvent(kind obs.Kind, at, end uint64, r *mem.Request, loc addrmap.Loc) obs.Event {
	return obs.Event{
		Kind: kind, At: at, End: end, ReqID: r.ID, Addr: r.Addr,
		Thread: r.Thread, Channel: loc.Channel, Chip: loc.Chip,
		Bank: loc.Bank, Row: loc.Row, Read: r.IsRead(),
	}
}

// Channels exposes the underlying DRAM channels (for row-buffer stats).
func (c *Controller) Channels() []*dram.Channel {
	out := make([]*dram.Channel, len(c.channels))
	for i, cc := range c.channels {
		out[i] = cc.dev
	}
	return out
}

// Outstanding returns the live pending demand-request count for a thread.
func (c *Controller) Outstanding(thread int) int {
	if thread < 0 || thread >= len(c.outstanding) {
		return 0
	}
	return c.outstanding[thread]
}

// QueueLen returns the number of queued (not yet dispatched) requests on a
// channel; tests use it to observe backpressure.
func (c *Controller) QueueLen(channel int) int { return len(c.channels[channel].queue) }

// Quiet reports whether the controller is fully idle: no request queued or in
// flight on any channel and no outstanding demand request parked elsewhere
// (e.g. on a retry-backoff timer). The controller makes progress only from
// event callbacks — completions, bank-ready retries, backoff expiries,
// failover — so a non-quiet controller always has its next state change
// covered by a pending event. core.Run leans on that invariant when the
// two-speed clock fast-forwards: a quiescent CPU plus an empty event queue
// plus a non-quiet controller would mean a lost wakeup, and Quiet is the
// cheap way to refuse to skip over it.
func (c *Controller) Quiet() bool {
	if c.totalOut != 0 {
		return false
	}
	for _, cc := range c.channels {
		if len(cc.queue) != 0 || cc.inFlight != 0 {
			return false
		}
	}
	return true
}

// ProbeQuiet is the memory side of the two-speed clock's fused probe
// (DESIGN §11), the mirror of cpu.ProbeQuiet: one pass over the channels
// reports whether the controller is quiescent (exactly Quiet()'s answer) and
// the earliest future cycle at which it will interact with the rest of the
// machine — the next in-flight completion's last data beat, the next armed
// bank-ready retry, the next fault-retry backoff expiry, the next device
// timing edge of a busy channel (bank tRCD/tRP maturities, bus-slot
// release), and the planned hard-failover cycle if it has not fired.
//
// The bound is sound, not tight: the controller changes state only from
// event callbacks, and every deadline above has its event already scheduled
// when the state it tracks exists, so next never exceeds the controller's
// earliest pending event. Equivalently: whenever quiet is false, next is
// finite — a quiescent CPU facing a non-quiet controller always has a
// wake-up pending, which is the invariant the run loop's lost-wakeup guard
// leans on (and the lockstep suite asserts). Queue-arrival edges need no
// term: arrivals originate from the cache hierarchy's events, which the
// span drain fires at their exact cycles.
//
// Read-only: probing never perturbs state the skipped cycles would observe.
func (c *Controller) ProbeQuiet(now uint64) (next uint64, quiet bool) {
	next = ^uint64(0)
	quiet = c.totalOut == 0
	for _, cc := range c.channels {
		if cc.inFlight != 0 {
			quiet = false
			for _, d := range cc.doneTimes {
				if d > now && d < next {
					next = d
				}
			}
		}
		if len(cc.queue) != 0 {
			quiet = false
			if cc.retryWakeAt > now && cc.retryWakeAt < next {
				next = cc.retryWakeAt
			}
			if e := cc.dev.NextEdgeAt(now); e < next {
				next = e
			}
		}
	}
	for _, d := range c.backoffUntil {
		if d > now && d < next {
			next = d
		}
	}
	if c.failoverAt == 0 {
		if _, at := c.inj.ChannelFailAt(); at > now && at < next {
			next = at
		}
	}
	return next, quiet
}

// ApplyQuiet settles the controller's span-aggregated accounting at a
// landing cycle: the time-weighted concurrency histograms advance from the
// last state change through now in one step. The split is exact — the
// outstanding-request picture is constant between state changes, so charging
// (lastChange, now] now and (now, nextChange] later lands every cycle in the
// same histogram bucket a cycle-by-cycle run would — which is what lets the
// deep-skip path jump the clock without the histograms lagging behind it.
func (c *Controller) ApplyQuiet(now uint64) { c.snapshot(now) }

// PlannedFailAt reports the configured hard channel-failure cycle while it
// is still pending (ok is false with no plan or once it fired). The run
// loop's failover watch must land on exactly this cycle, so it caps any skip
// span crossing it.
func (c *Controller) PlannedFailAt() (at uint64, ok bool) {
	if c.failoverAt != 0 {
		return 0, false
	}
	_, at = c.inj.ChannelFailAt()
	return at, at > 0
}

// Enqueue accepts a request. It returns false when the target channel's
// queue is full; the caller (an L3 MSHR) must retry.
func (c *Controller) Enqueue(now uint64, r *mem.Request) bool {
	loc := c.mapper.Map(r.Addr)
	cc := c.channels[loc.Channel]
	if len(cc.queue) >= c.cfg.QueueDepth {
		c.Stats.Rejected++
		if c.lc != nil {
			c.lc.Emit(lcEvent(obs.KReject, now, now, r, loc))
		}
		return false
	}
	r.Arrive = now
	e := c.getEntry()
	e.req, e.loc, e.seq, e.queuedBehind = r, loc, c.seq, len(cc.queue)+cc.inFlight
	c.seq++
	cc.queue = append(cc.queue, e)
	if c.lc != nil {
		ev := lcEvent(obs.KEnqueue, now, now, r, loc)
		ev.Queue = len(cc.queue)
		c.lc.Emit(ev)
	}

	if r.IsRead() {
		c.Stats.Reads++
	} else {
		c.Stats.Writes++
	}
	c.accountChange(now, r.Thread, +1)
	c.dispatch(now, cc)
	return true
}

// accountChange updates the time-weighted concurrency histograms when a
// demand request arrives (+1) or completes (-1).
func (c *Controller) accountChange(now uint64, thread, delta int) {
	c.snapshot(now)
	c.totalOut += delta
	if thread >= 0 && thread < len(c.outstanding) {
		before := c.outstanding[thread]
		c.outstanding[thread] += delta
		after := c.outstanding[thread]
		if before == 0 && after > 0 {
			c.threadsBusy++
		}
		if before > 0 && after == 0 {
			c.threadsBusy--
		}
	}
}

func (c *Controller) snapshot(now uint64) {
	dt := now - c.lastChange
	c.lastChange = now
	if dt == 0 {
		return
	}
	if c.totalOut > 0 {
		i := c.totalOut
		if i > maxTrackedOutstanding {
			i = maxTrackedOutstanding
		}
		c.Stats.OutstandingHist[i] += dt
	}
	if c.totalOut >= 2 {
		k := c.threadsBusy
		if k > maxTrackedOutstanding {
			k = maxTrackedOutstanding
		}
		c.Stats.ThreadSpreadHist[k] += dt
	}
}

// dispatch issues queued requests, best-first, while the channel's in-flight
// window has room. A request is only dispatched once its bank can start
// work (bank-ready gating): committing requests to busy banks early would
// freeze their order and rob the scheduling policy of its reordering window.
// When nothing is startable, a wake-up is armed for the earliest bank-free
// time.
func (c *Controller) dispatch(now uint64, cc *channelCtl) {
	if cc.failed {
		return
	}
	for cc.inFlight < c.cfg.MaxInFlight && len(cc.queue) > 0 {
		idx := c.pick(now, cc)
		if idx < 0 {
			c.armRetry(now, cc)
			return
		}
		e := cc.queue[idx]
		cc.queue = append(cc.queue[:idx], cc.queue[idx+1:]...)
		cc.inFlight++

		d := cc.dev.AccessFull(now, e.loc.Chip, e.loc.Bank, e.loc.Row, e.req.IsRead())
		done, out := d.Done, d.Outcome
		req := e.req
		loc := e.loc
		if c.cfg.Trace != nil {
			c.cfg.Trace(TraceEvent{
				Arrive: req.Arrive, Issue: now, Done: done,
				Addr: req.Addr, Channel: e.loc.Channel, Chip: e.loc.Chip,
				Bank: e.loc.Bank, Row: e.loc.Row, Thread: req.Thread,
				Read: req.IsRead(), Outcome: out, QueuedBehind: e.queuedBehind,
			})
		}
		if c.lc != nil {
			c.emitServicePhases(now, req, loc, d, cc.dev.Params())
		}
		e.cc = cc
		cc.doneTimes = append(cc.doneTimes, done)
		c.q.ScheduleHandler(done, e)
	}
}

func (c *Controller) getEntry() *entry {
	if n := len(c.freeEntries); n > 0 {
		e := c.freeEntries[n-1]
		c.freeEntries[n-1] = nil
		c.freeEntries = c.freeEntries[:n-1]
		return e
	}
	return &entry{ctrl: c}
}

func (c *Controller) releaseEntry(e *entry) {
	e.req = nil
	e.cc = nil
	c.freeEntries = append(c.freeEntries, e)
}

// emitServicePhases translates one committed DRAM access into lifecycle
// events: the time spent queued, the dispatch decision (annotated with the
// row-buffer outcome), the bank operations that outcome required — windows
// derived from the timing parameters, since the device reserves
// [Start, Start+prep) for them — and the data-bus transfer.
func (c *Controller) emitServicePhases(now uint64, r *mem.Request, loc addrmap.Loc, d dram.AccessDetail, p dram.Params) {
	if now > r.Arrive {
		c.lc.Emit(lcEvent(obs.KQueued, r.Arrive, now, r, loc))
	}
	iss := lcEvent(obs.KIssue, now, now, r, loc)
	iss.Outcome = d.Outcome.String()
	c.lc.Emit(iss)
	t := d.Start
	if d.Outcome == dram.Conflict {
		c.lc.Emit(lcEvent(obs.KPrecharge, t, t+p.TRP, r, loc))
		t += p.TRP
	}
	if d.Outcome != dram.Hit {
		c.lc.Emit(lcEvent(obs.KActivate, t, t+p.TRCD, r, loc))
		t += p.TRCD
	}
	c.lc.Emit(lcEvent(obs.KCAS, t, t+p.CL, r, loc))
	c.lc.Emit(lcEvent(obs.KData, d.DataStart, d.Done, r, loc))
}

// armRetry schedules a dispatch attempt at the earliest cycle any queued
// request's bank becomes ready.
func (c *Controller) armRetry(now uint64, cc *channelCtl) {
	if cc.retryArmed || len(cc.queue) == 0 {
		return
	}
	wake := ^uint64(0)
	for _, e := range cc.queue {
		if r := cc.dev.BankReadyAt(e.loc.Chip, e.loc.Bank); r < wake {
			wake = r
		}
	}
	if wake <= now {
		wake = now + 1
	}
	cc.retryArmed = true
	cc.retryWakeAt = wake
	c.q.ScheduleHandler(wake, &cc.retry)
}

// pick returns the index of the highest-priority startable queued entry
// under the configured policy, or -1 when no queued request's bank is ready.
// Two overrides apply to every policy: when the queue is nearly full, the
// oldest startable entry is served to prevent write starvation from
// deadlocking the hierarchy; and AgeBased promotes the oldest entry past the
// configured outstanding threshold.
func (c *Controller) pick(now uint64, cc *channelCtl) int {
	if c.cfg.Policy == FCFS {
		return c.pickFCFS(now, cc)
	}
	oldestOnly := len(cc.queue) >= c.cfg.QueueDepth*3/4 ||
		(c.cfg.Policy == AgeBased && len(cc.queue)+cc.inFlight > c.cfg.AgeThreshold)
	best := -1
	for i := range cc.queue {
		if cc.dev.BankReadyAt(cc.queue[i].loc.Chip, cc.queue[i].loc.Bank) > now {
			continue
		}
		switch {
		case best < 0:
			best = i
		case oldestOnly:
			if cc.queue[i].seq < cc.queue[best].seq {
				best = i
			}
		case c.better(cc.queue[i], cc.queue[best], cc.dev):
			best = i
		}
	}
	return best
}

// pickFCFS implements the paper's reference point: strict arrival order with
// reads bypassing writes. The oldest read (or, with no reads queued, the
// oldest write) is the only dispatch candidate — if its bank is busy, the
// channel waits. This head-of-line blocking is precisely what the smarter
// policies remove.
func (c *Controller) pickFCFS(now uint64, cc *channelCtl) int {
	best := -1
	if len(cc.queue) < c.cfg.QueueDepth*3/4 { // starvation guard off
		for i := range cc.queue {
			if !cc.queue[i].req.IsRead() {
				continue
			}
			if best < 0 || cc.queue[i].seq < cc.queue[best].seq {
				best = i
			}
		}
	}
	if best < 0 { // no reads (or guard active): strict oldest overall
		for i := range cc.queue {
			if best < 0 || cc.queue[i].seq < cc.queue[best].seq {
				best = i
			}
		}
	}
	if best >= 0 && cc.dev.BankReadyAt(cc.queue[best].loc.Chip, cc.queue[best].loc.Bank) > now {
		return -1
	}
	return best
}

// better reports whether a should be served before b. The policy chains
// follow Section 3 of the paper: thread-aware criteria rank below hit-first
// and read-first ("a read hit always gets a higher priority than a read miss
// even if the hit is generated by a thread with more pending requests"), and
// arrival order breaks remaining ties.
func (c *Controller) better(a, b *entry, dev *dram.Channel) bool {
	if c.cfg.ThreadAwareFirst {
		if ta, decided := c.threadAware(a, b); decided {
			return ta
		}
	}
	if c.cfg.Policy != FCFS {
		ah := dev.Classify(a.loc.Chip, a.loc.Bank, a.loc.Row) == dram.Hit
		bh := dev.Classify(b.loc.Chip, b.loc.Bank, b.loc.Row) == dram.Hit
		if ah != bh {
			return ah
		}
	}
	if ar, br := a.req.IsRead(), b.req.IsRead(); ar != br {
		return ar // read-first, including under FCFS (read bypass)
	}
	if !c.cfg.ThreadAwareFirst {
		if ta, decided := c.threadAware(a, b); decided {
			return ta
		}
	}
	return a.seq < b.seq
}

// threadAware applies the policy's thread-aware criterion; decided is false
// when the policy has none or the requests tie.
func (c *Controller) threadAware(a, b *entry) (better, decided bool) {
	switch c.cfg.Policy {
	case RequestBased:
		if ao, bo := c.threadKey(a), c.threadKey(b); ao != bo {
			return ao < bo, true // fewest pending requests first
		}
	case ROBBased:
		if av, bv := a.req.State.ROBOccupancy, b.req.State.ROBOccupancy; av != bv {
			return av > bv, true // most ROB entries first
		}
	case IQBased:
		if av, bv := a.req.State.IQOccupancy, b.req.State.IQOccupancy; av != bv {
			return av > bv, true // most integer IQ entries first
		}
	case CriticalityBased:
		if ac, bc := a.req.Critical, b.req.Critical; ac != bc {
			return ac, true // the request the processor stalls on first
		}
	}
	return false, false
}

// threadKey is the request-based scheme's sort key: the originating thread's
// live pending count. Writebacks have no thread and sort last among misses.
func (c *Controller) threadKey(e *entry) int {
	t := e.req.Thread
	if t < 0 || t >= len(c.outstanding) {
		return int(^uint(0) >> 1) // max int
	}
	return c.outstanding[t]
}

// FinishStats closes the concurrency accounting interval at end of run.
func (c *Controller) FinishStats(now uint64) { c.snapshot(now) }

// RowBufferStats sums row-buffer outcomes over all channels.
func (c *Controller) RowBufferStats() (hits, closed, conflicts uint64) {
	for _, cc := range c.channels {
		hits += cc.dev.Stats.Hits
		closed += cc.dev.Stats.Closed
		conflicts += cc.dev.Stats.Conflicts
	}
	return
}

// RowBufferMissRate is the system-wide row-buffer miss rate.
func (c *Controller) RowBufferMissRate() float64 {
	h, cl, co := c.RowBufferStats()
	total := h + cl + co
	if total == 0 {
		return 0
	}
	return float64(cl+co) / float64(total)
}
