package memctrl

// Snapshot/Restore for the memory controller (DESIGN §15). Queued entries
// serialize as their request's reference (the request wrapper lives in the
// cache backend; entry.loc is re-decoded through the mapper on restore);
// dispatched entries sit in the event queue as their own completion handlers
// and round-trip as KMemEntry references. Fault-injection runs arm events
// (backoff retries, channel failover) whose mid-flight state the codec does
// not model, so controllers with an injector attached refuse to snapshot.

import (
	"fmt"

	"smtdram/internal/event"
	"smtdram/internal/mem"
	"smtdram/internal/snap"
)

const sectionCtrl = 0x4D435452 // "MCTR"

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// SnapRef implements event.RefMaker for a dispatched entry: the channel it is
// in flight on, its scheduling identity, and (nested) the request it carries.
func (e *entry) SnapRef() snap.Ref {
	ref := snap.Ref{Kind: snap.KMemEntry, Args: []uint64{
		uint64(e.loc.Channel), e.seq, uint64(e.queuedBehind),
		uint64(e.attempt), b2u(e.backoff),
	}}
	inner := snap.Ref{Kind: snap.KNone}
	if rm, ok := e.req.Src.(event.RefMaker); ok {
		inner = rm.SnapRef()
	}
	ref.Inner = &inner
	return ref
}

// SnapRef implements event.RefMaker for the bank-ready wake-up.
func (r *retryEvent) SnapRef() snap.Ref {
	ch := uint64(0)
	for i, cc := range r.c.channels {
		if cc == r.cc {
			ch = uint64(i)
		}
	}
	return snap.Ref{Kind: snap.KMemRetry, Args: []uint64{ch}}
}

// SnapRef implements event.RefMaker for the planned channel-death event.
func (f *failoverEvent) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KMemFailover}
}

// Snapshot serializes the controller's mutable state: scheduling sequence,
// concurrency accounting, stats, and per channel the DRAM device state, the
// in-flight window, the armed retry, and the queued entries.
func (c *Controller) Snapshot(w *snap.Writer) error {
	if c.inj != nil {
		return fmt.Errorf("%w: controller has a fault injector attached", snap.ErrUnsupported)
	}
	w.Marker(sectionCtrl)
	w.U64(c.seq)
	w.U64(c.lastChange)
	w.I64(int64(c.totalOut))
	w.I64(int64(c.threadsBusy))
	w.U64(uint64(len(c.outstanding)))
	for _, o := range c.outstanding {
		w.I64(int64(o))
	}
	w.U64(c.Stats.Reads)
	w.U64(c.Stats.Writes)
	w.U64(c.Stats.Rejected)
	w.U64(c.Stats.ReadLatencySum)
	for _, v := range c.Stats.ThreadReads {
		w.U64(v)
	}
	for _, v := range c.Stats.ThreadReadLatencySum {
		w.U64(v)
	}
	for _, v := range c.Stats.OutstandingHist {
		w.U64(v)
	}
	for _, v := range c.Stats.ThreadSpreadHist {
		w.U64(v)
	}
	w.U64(c.Stats.Retries)
	w.U64(c.Stats.RetryGiveUps)
	w.U64(c.Stats.FailedOver)

	w.U64(uint64(len(c.channels)))
	for _, cc := range c.channels {
		if err := cc.dev.Snapshot(w); err != nil {
			return err
		}
		w.I64(int64(cc.inFlight))
		w.Bool(cc.retryArmed)
		w.U64(cc.retryWakeAt)
		w.U64(uint64(len(cc.doneTimes)))
		for _, d := range cc.doneTimes {
			w.U64(d)
		}
		w.U64(uint64(len(cc.queue)))
		for _, e := range cc.queue {
			rm, ok := e.req.Src.(event.RefMaker)
			if !ok {
				return fmt.Errorf("%w: queued request source %T has no SnapRef", snap.ErrUnsupported, e.req.Src)
			}
			ref := rm.SnapRef()
			w.U64(e.seq)
			w.I64(int64(e.queuedBehind))
			w.Ref(&ref)
		}
	}
	return nil
}

// Restore rebuilds the controller's mutable state from r into a controller
// built from the identical Config. Queued requests are resolved through
// resolve (reaching the cache backend's request pool) and their locations
// re-decoded through the mapper.
func (c *Controller) Restore(r *snap.Reader, resolve event.Resolver) error {
	r.Expect(sectionCtrl)
	c.seq = r.U64()
	c.lastChange = r.U64()
	c.totalOut = int(r.I64())
	c.threadsBusy = int(r.I64())
	nOut := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nOut != uint64(len(c.outstanding)) {
		return fmt.Errorf("%w: snapshot has %d threads, controller has %d", snap.ErrCorrupt, nOut, len(c.outstanding))
	}
	for i := range c.outstanding {
		c.outstanding[i] = int(r.I64())
	}
	c.Stats.Reads = r.U64()
	c.Stats.Writes = r.U64()
	c.Stats.Rejected = r.U64()
	c.Stats.ReadLatencySum = r.U64()
	for i := range c.Stats.ThreadReads {
		c.Stats.ThreadReads[i] = r.U64()
	}
	for i := range c.Stats.ThreadReadLatencySum {
		c.Stats.ThreadReadLatencySum[i] = r.U64()
	}
	for i := range c.Stats.OutstandingHist {
		c.Stats.OutstandingHist[i] = r.U64()
	}
	for i := range c.Stats.ThreadSpreadHist {
		c.Stats.ThreadSpreadHist[i] = r.U64()
	}
	c.Stats.Retries = r.U64()
	c.Stats.RetryGiveUps = r.U64()
	c.Stats.FailedOver = r.U64()

	nCh := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if nCh != uint64(len(c.channels)) {
		return fmt.Errorf("%w: snapshot has %d channels, controller has %d", snap.ErrCorrupt, nCh, len(c.channels))
	}
	for _, cc := range c.channels {
		if err := cc.dev.Restore(r); err != nil {
			return err
		}
		cc.inFlight = int(r.I64())
		cc.retryArmed = r.Bool()
		cc.retryWakeAt = r.U64()
		nDone := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		cc.doneTimes = cc.doneTimes[:0]
		for i := uint64(0); i < nDone; i++ {
			cc.doneTimes = append(cc.doneTimes, r.U64())
		}
		nQ := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		cc.queue = cc.queue[:0]
		for i := uint64(0); i < nQ; i++ {
			seq := r.U64()
			queuedBehind := int(r.I64())
			ref := r.Ref()
			if err := r.Err(); err != nil {
				return err
			}
			if ref == nil {
				return fmt.Errorf("%w: queued entry missing request ref", snap.ErrCorrupt)
			}
			obj, err := resolve(ref, event.RoleHandler)
			if err != nil {
				return fmt.Errorf("queued entry seq %d: %w", seq, err)
			}
			req, ok := obj.(*mem.Request)
			if !ok {
				return fmt.Errorf("%w: queued entry resolved to %T, want *mem.Request", snap.ErrCorrupt, obj)
			}
			e := c.getEntry()
			e.req, e.loc = req, c.mapper.Map(req.Addr)
			e.seq, e.queuedBehind = seq, queuedBehind
			cc.queue = append(cc.queue, e)
		}
	}
	return r.Err()
}

// ResolveRef maps controller-kind references back to live objects: dispatched
// entries are rebuilt from the pool with their request resolved through
// resolve; bank-ready retries and the failover event resolve to the pre-bound
// per-channel/per-controller instances.
func (c *Controller) ResolveRef(ref *snap.Ref, resolve event.Resolver) (any, error) {
	switch ref.Kind {
	case snap.KMemEntry:
		if len(ref.Args) != 5 {
			return nil, fmt.Errorf("%w: entry ref needs 5 args, got %d", snap.ErrCorrupt, len(ref.Args))
		}
		if ref.Args[4] != 0 {
			return nil, fmt.Errorf("%w: entry parked in retry backoff", snap.ErrUnsupported)
		}
		ch := ref.Args[0]
		if ch >= uint64(len(c.channels)) {
			return nil, fmt.Errorf("%w: entry ref channel %d out of range", snap.ErrCorrupt, ch)
		}
		if ref.Inner == nil {
			return nil, fmt.Errorf("%w: entry ref missing request", snap.ErrCorrupt)
		}
		obj, err := resolve(ref.Inner, event.RoleHandler)
		if err != nil {
			return nil, err
		}
		req, ok := obj.(*mem.Request)
		if !ok {
			return nil, fmt.Errorf("%w: entry request resolved to %T, want *mem.Request", snap.ErrCorrupt, obj)
		}
		e := c.getEntry()
		e.req, e.loc = req, c.mapper.Map(req.Addr)
		if e.loc.Channel != int(ch) {
			return nil, fmt.Errorf("%w: entry ref channel %d, mapper says %d", snap.ErrCorrupt, ch, e.loc.Channel)
		}
		e.seq, e.queuedBehind = ref.Args[1], int(ref.Args[2])
		e.attempt = uint8(ref.Args[3])
		e.cc = c.channels[ch]
		return e, nil
	case snap.KMemRetry:
		if len(ref.Args) != 1 || ref.Args[0] >= uint64(len(c.channels)) {
			return nil, fmt.Errorf("%w: retry ref channel out of range", snap.ErrCorrupt)
		}
		return &c.channels[ref.Args[0]].retry, nil
	case snap.KMemFailover:
		return &c.failover, nil
	default:
		return nil, fmt.Errorf("%w: ref kind %d is not a memctrl kind", snap.ErrCorrupt, ref.Kind)
	}
}
