package memctrl

import (
	"testing"

	"smtdram/internal/addrmap"
	"smtdram/internal/dram"
	"smtdram/internal/event"
	"smtdram/internal/mem"
)

// These tests pin down the dispatch engine's command-level behaviour:
// bank-ready gating, strict FCFS head-of-line blocking, and the
// ThreadAwareFirst ablation ordering.

func TestFCFSHeadOfLineBlocking(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	var d doneRec
	// Request 0 occupies bank 0. Request 1 (also bank 0, other row)
	// conflicts; request 2 targets free bank 1. Strict FCFS must NOT let
	// request 2 overtake request 1.
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0))
	c.Enqueue(0, d.req(1, addrFor(0, 9), mem.Read, 0))
	c.Enqueue(0, d.req(2, addrFor(1, 1), mem.Read, 0))
	q.RunUntil(1 << 20)
	want := []uint64{0, 1, 2}
	for i, id := range want {
		if d.order[i] != id {
			t.Fatalf("completion order %v, want strict %v", d.order, want)
		}
	}
}

func TestHitFirstBypassesBlockedHead(t *testing.T) {
	// With first-ready scheduling (everything except FCFS), a request to a
	// free bank overtakes an older request whose bank is still busy.
	var q event.Queue
	m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
	c, err := New(&q, Config{
		Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage),
		Policy: HitFirst, MaxInFlight: 2, Threads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var d doneRec
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0)) // occupies bank 0
	c.Enqueue(1, d.req(1, addrFor(0, 9), mem.Read, 0)) // bank 0 busy: must wait
	c.Enqueue(1, d.req(2, addrFor(1, 1), mem.Read, 0)) // bank 1 free: overtakes
	q.RunUntil(1 << 20)
	if d.order[1] != 2 {
		t.Fatalf("completion order %v: free-bank request should overtake the conflict", d.order)
	}
}

func TestBankReadyGatingParallelism(t *testing.T) {
	// Four requests to four different banks with MaxInFlight 4: all should
	// dispatch immediately and complete one burst apart (bus-serialized,
	// bank-parallel).
	var q event.Queue
	m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
	c, err := New(&q, Config{
		Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage),
		Policy: HitFirst, MaxInFlight: 4, Threads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done []uint64
	for b := 0; b < 4; b++ {
		c.Enqueue(0, &mem.Request{ID: uint64(b), Addr: addrFor(b, 0), Kind: mem.Read, Thread: 0,
			OnComplete: func(at uint64) { done = append(done, at) }})
	}
	q.RunUntil(1 << 20)
	if len(done) != 4 {
		t.Fatalf("completed %d of 4", len(done))
	}
	for i := 1; i < len(done); i++ {
		if done[i]-done[i-1] != 30 { // one burst
			t.Fatalf("completions %v not pipelined one burst apart", done)
		}
	}
}

func TestRetryWakesWhenBankFrees(t *testing.T) {
	// With MaxInFlight high but a single bank, the second conflicting
	// request cannot start until the bank frees; the controller must arm a
	// wake-up rather than spin or stall forever.
	var q event.Queue
	m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
	c, err := New(&q, Config{
		Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage),
		Policy: HitFirst, MaxInFlight: 8, Threads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var done []uint64
	for i := 0; i < 3; i++ {
		row := i * 7 // all different rows, same bank
		c.Enqueue(0, &mem.Request{ID: uint64(i), Addr: addrFor(0, row), Kind: mem.Read, Thread: 0,
			OnComplete: func(at uint64) { done = append(done, at) }})
	}
	q.RunUntil(1 << 20)
	if len(done) != 3 {
		t.Fatalf("completed %d of 3 conflicting requests", len(done))
	}
}

func TestThreadAwareFirstInvertsOrder(t *testing.T) {
	// A hit from a busy thread vs a miss from an idle thread: the paper's
	// order serves the hit first; the inverted (ablation) order serves the
	// idle thread's miss first.
	run := func(threadAwareFirst bool) []uint64 {
		var q event.Queue
		m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
		c, err := New(&q, Config{
			Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage),
			Policy: RequestBased, MaxInFlight: 1, Threads: 2,
			ThreadAwareFirst: threadAwareFirst,
		})
		if err != nil {
			t.Fatal(err)
		}
		var d doneRec
		c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0)) // in flight; opens bank0/row0
		c.Enqueue(0, d.req(1, addrFor(0, 0), mem.Read, 0)) // hit, busy thread 0
		c.Enqueue(0, d.req(2, addrFor(0, 0), mem.Read, 0)) // hit, busy thread 0
		c.Enqueue(0, d.req(3, addrFor(1, 3), mem.Read, 1)) // miss, idle thread 1
		q.RunUntil(1 << 20)
		return d.order
	}
	paper := run(false)
	if paper[1] != 1 && paper[1] != 2 {
		t.Fatalf("paper order %v: hits must be served before the idle thread's miss", paper)
	}
	inverted := run(true)
	if inverted[1] != 3 {
		t.Fatalf("inverted order %v: thread-aware-first must serve the idle thread's miss next", inverted)
	}
}

func TestPerThreadLatencyStats(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 2)
	c.Enqueue(0, &mem.Request{ID: 0, Addr: addrFor(0, 0), Kind: mem.Read, Thread: 0})
	c.Enqueue(0, &mem.Request{ID: 1, Addr: addrFor(1, 0), Kind: mem.Read, Thread: 1})
	q.RunUntil(1 << 20)
	for tID := 0; tID < 2; tID++ {
		if c.Stats.ThreadReads[tID] != 1 {
			t.Fatalf("thread %d reads = %d, want 1", tID, c.Stats.ThreadReads[tID])
		}
		if c.Stats.ThreadReadLatencySum[tID] == 0 {
			t.Fatalf("thread %d latency sum is 0", tID)
		}
	}
}

func TestWritesCountInOutstanding(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	c.Enqueue(0, &mem.Request{ID: 0, Addr: addrFor(0, 0), Kind: mem.Write, Thread: mem.InvalidThread})
	c.Enqueue(0, &mem.Request{ID: 1, Addr: addrFor(1, 0), Kind: mem.Write, Thread: mem.InvalidThread})
	q.RunUntil(1 << 20)
	c.FinishStats(1 << 20)
	if c.Stats.BusyCycles() == 0 {
		t.Fatal("writebacks alone must register as DRAM-busy time")
	}
	if c.Stats.OutstandingHist[2] == 0 {
		t.Fatal("two outstanding writes never observed")
	}
}

func TestCriticalityBasedPriority(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, CriticalityBased, 1)
	var d doneRec
	mk := func(id uint64, bank, row int, critical bool) *mem.Request {
		r := d.req(id, addrFor(bank, row), mem.Read, 0)
		r.Critical = critical
		return r
	}
	c.Enqueue(0, mk(0, 0, 0, false)) // in flight
	c.Enqueue(0, mk(1, 1, 1, false)) // non-critical (e.g. prefetch)
	c.Enqueue(0, mk(2, 2, 2, true))  // critical demand load → first
	q.RunUntil(1 << 20)
	if d.order[1] != 2 {
		t.Fatalf("completion order %v: critical request must be served first", d.order)
	}
}

func TestAllPoliciesIncludesCriticality(t *testing.T) {
	all := AllPolicies()
	if len(all) != len(Policies())+1 {
		t.Fatalf("AllPolicies = %d entries", len(all))
	}
	if all[len(all)-1] != CriticalityBased {
		t.Fatal("criticality-based missing from AllPolicies")
	}
	if p, err := ParsePolicy("criticality-based"); err != nil || p != CriticalityBased {
		t.Fatalf("ParsePolicy(criticality-based) = %v, %v", p, err)
	}
}

func TestTraceHook(t *testing.T) {
	var q event.Queue
	m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
	var events []TraceEvent
	c, err := New(&q, Config{
		Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage),
		Policy: HitFirst, MaxInFlight: 1, Threads: 1,
		Trace: func(e TraceEvent) { events = append(events, e) },
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Enqueue(0, &mem.Request{ID: 0, Addr: addrFor(0, 0), Kind: mem.Read, Thread: 0})
	c.Enqueue(0, &mem.Request{ID: 1, Addr: addrFor(0, 0), Kind: mem.Read, Thread: 0})
	q.RunUntil(1 << 20)
	if len(events) != 2 {
		t.Fatalf("traced %d events, want 2", len(events))
	}
	e0, e1 := events[0], events[1]
	if e0.Outcome != dram.Closed || e1.Outcome != dram.Hit {
		t.Fatalf("outcomes = %v, %v; want closed then hit", e0.Outcome, e1.Outcome)
	}
	if !e0.Read || e0.Thread != 0 || e0.Done <= e0.Issue || e0.Issue < e0.Arrive {
		t.Fatalf("malformed event: %+v", e0)
	}
	if e1.QueuedBehind != 1 {
		t.Fatalf("second request saw queue %d, want 1", e1.QueuedBehind)
	}
}
