package memctrl

import (
	"testing"

	"smtdram/internal/addrmap"
	"smtdram/internal/dram"
	"smtdram/internal/event"
	"smtdram/internal/mem"
)

func geo1ch() addrmap.Geometry {
	return addrmap.Geometry{Channels: 1, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
}

func newCtl(t *testing.T, q *event.Queue, pol Policy, threads int) *Controller {
	t.Helper()
	m, err := addrmap.NewMapper(geo1ch(), addrmap.Page)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(q, Config{
		Mapper:      m,
		Params:      dram.DDRParams(16, 64, dram.OpenPage),
		Policy:      pol,
		MaxInFlight: 1, // serialize dispatch so ordering is observable
		Threads:     threads,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// addrFor builds an address that page-maps to (bank, row) in the 1-channel
// geometry: page index = row*4 + bank.
func addrFor(bank, row int) uint64 {
	return uint64(row*4+bank) * 2048
}

type doneRec struct {
	order []uint64
}

func (d *doneRec) req(id uint64, addr uint64, kind mem.Kind, thread int) *mem.Request {
	return &mem.Request{
		ID: id, Addr: addr, Kind: kind, Thread: thread,
		OnComplete: func(uint64) { d.order = append(d.order, id) },
	}
}

func TestEnqueueCompleteRoundTrip(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	var done uint64
	r := &mem.Request{ID: 1, Addr: 0, Kind: mem.Read, Thread: 0, OnComplete: func(at uint64) { done = at }}
	if !c.Enqueue(0, r) {
		t.Fatal("Enqueue rejected on empty queue")
	}
	q.RunUntil(1 << 20)
	if done == 0 {
		t.Fatal("request never completed")
	}
	// closed-bank access: TRCD+CL+Burst = 45+45+30
	if done != 120 {
		t.Fatalf("completion at %d, want 120", done)
	}
	if c.Stats.Reads != 1 {
		t.Fatalf("Reads = %d, want 1", c.Stats.Reads)
	}
	if c.Stats.AvgReadLatency() != 120 {
		t.Fatalf("AvgReadLatency = %v, want 120", c.Stats.AvgReadLatency())
	}
}

func TestQueueFullRejects(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	var n int
	for i := 0; i < 200; i++ {
		r := &mem.Request{ID: uint64(i), Addr: addrFor(i%4, i), Kind: mem.Read, Thread: 0}
		if c.Enqueue(0, r) {
			n++
		}
	}
	// 64 queued + 1 in flight.
	if n != 65 {
		t.Fatalf("accepted %d requests, want 65 (queue depth 64 + 1 in flight)", n)
	}
	if c.Stats.Rejected != 200-65 {
		t.Fatalf("Rejected = %d, want %d", c.Stats.Rejected, 200-65)
	}
	if c.QueueLen(0) != 64 {
		t.Fatalf("QueueLen = %d, want 64", c.QueueLen(0))
	}
}

func TestFCFSReadBypassesWrite(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	var d doneRec
	// Request 0 occupies the in-flight slot; then a write ahead of a read.
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0))
	c.Enqueue(0, d.req(1, addrFor(1, 0), mem.Write, mem.InvalidThread))
	c.Enqueue(0, d.req(2, addrFor(2, 0), mem.Read, 0))
	q.RunUntil(1 << 20)
	want := []uint64{0, 2, 1}
	for i, id := range want {
		if d.order[i] != id {
			t.Fatalf("completion order %v, want %v", d.order, want)
		}
	}
}

func TestFCFSKeepsArrivalOrderAmongReads(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	var d doneRec
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0))
	// A row-buffer hit candidate (same row as 0) arrives after a conflict
	// candidate; FCFS must not reorder.
	c.Enqueue(0, d.req(1, addrFor(1, 5), mem.Read, 0))
	c.Enqueue(0, d.req(2, addrFor(0, 0), mem.Read, 0))
	q.RunUntil(1 << 20)
	want := []uint64{0, 1, 2}
	for i, id := range want {
		if d.order[i] != id {
			t.Fatalf("completion order %v, want %v", d.order, want)
		}
	}
}

func TestHitFirstReordersToOpenRow(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, HitFirst, 1)
	var d doneRec
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0)) // in flight; opens bank0/row0
	c.Enqueue(0, d.req(1, addrFor(0, 9), mem.Read, 0)) // conflict on bank0
	c.Enqueue(0, d.req(2, addrFor(0, 0), mem.Read, 0)) // hit on bank0/row0
	q.RunUntil(1 << 20)
	want := []uint64{0, 2, 1}
	for i, id := range want {
		if d.order[i] != id {
			t.Fatalf("completion order %v, want %v (hit-first)", d.order, want)
		}
	}
	if c.Stats.Reads != 3 {
		t.Fatalf("Reads = %d", c.Stats.Reads)
	}
	h, _, _ := c.RowBufferStats()
	if h != 1 {
		t.Fatalf("row-buffer hits = %d, want 1", h)
	}
}

func TestRequestBasedFavorsFewestPending(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, RequestBased, 2)
	var d doneRec
	// Thread 0 floods; thread 1 has a single request that arrives last.
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0)) // in flight
	c.Enqueue(0, d.req(1, addrFor(1, 1), mem.Read, 0))
	c.Enqueue(0, d.req(2, addrFor(2, 2), mem.Read, 0))
	c.Enqueue(0, d.req(3, addrFor(3, 3), mem.Read, 1)) // lone thread-1 request
	if got := c.Outstanding(0); got != 3 {
		t.Fatalf("Outstanding(0) = %d, want 3", got)
	}
	if got := c.Outstanding(1); got != 1 {
		t.Fatalf("Outstanding(1) = %d, want 1", got)
	}
	q.RunUntil(1 << 20)
	if d.order[1] != 3 {
		t.Fatalf("completion order %v: thread 1's lone request must be served first after the in-flight one", d.order)
	}
}

func TestRequestBasedHitStillBeatsThreadPriority(t *testing.T) {
	// "a read hit always gets a higher priority than a read miss even if the
	// hit is generated by a thread with more pending requests."
	var q event.Queue
	c := newCtl(t, &q, RequestBased, 2)
	var d doneRec
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0)) // opens bank0 row0
	c.Enqueue(0, d.req(1, addrFor(0, 0), mem.Read, 0)) // hit, busy thread
	c.Enqueue(0, d.req(2, addrFor(0, 0), mem.Read, 0)) // hit, busy thread
	c.Enqueue(0, d.req(3, addrFor(1, 3), mem.Read, 1)) // miss, quiet thread
	q.RunUntil(1 << 20)
	if d.order[3] != 3 {
		t.Fatalf("completion order %v: the miss must wait for the hits", d.order)
	}
}

func TestROBBasedPriority(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, ROBBased, 2)
	var d doneRec
	mk := func(id uint64, bank, row, rob int) *mem.Request {
		r := d.req(id, addrFor(bank, row), mem.Read, 0)
		r.State.ROBOccupancy = rob
		return r
	}
	c.Enqueue(0, mk(0, 0, 0, 10)) // in flight
	c.Enqueue(0, mk(1, 1, 1, 50))
	c.Enqueue(0, mk(2, 2, 2, 200)) // most ROB entries → first
	c.Enqueue(0, mk(3, 3, 3, 120))
	q.RunUntil(1 << 20)
	want := []uint64{0, 2, 3, 1}
	for i, id := range want {
		if d.order[i] != id {
			t.Fatalf("completion order %v, want %v (ROB-based)", d.order, want)
		}
	}
}

func TestIQBasedPriority(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, IQBased, 2)
	var d doneRec
	mk := func(id uint64, bank, row, iq int) *mem.Request {
		r := d.req(id, addrFor(bank, row), mem.Read, 0)
		r.State.IQOccupancy = iq
		return r
	}
	c.Enqueue(0, mk(0, 0, 0, 1))
	c.Enqueue(0, mk(1, 1, 1, 5))
	c.Enqueue(0, mk(2, 2, 2, 40))
	q.RunUntil(1 << 20)
	want := []uint64{0, 2, 1}
	for i, id := range want {
		if d.order[i] != id {
			t.Fatalf("completion order %v, want %v (IQ-based)", d.order, want)
		}
	}
}

func TestAgeBasedPromotesOldestUnderLoad(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, AgeBased, 1)
	var d doneRec
	// Fill beyond the age threshold (8 outstanding). Entry 1 is a conflict
	// that hit-first would postpone; age promotion must serve it first
	// anyway because it is oldest once >8 requests are outstanding.
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0)) // in flight, opens row0
	c.Enqueue(0, d.req(1, addrFor(0, 9), mem.Read, 0)) // oldest queued, conflict
	for i := 2; i < 10; i++ {
		c.Enqueue(0, d.req(uint64(i), addrFor(0, 0), mem.Read, 0)) // hits
	}
	q.RunUntil(1 << 20)
	if d.order[1] != 1 {
		t.Fatalf("completion order %v: age-based must promote the oldest under load", d.order)
	}
}

func TestWriteStarvationGuard(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, HitFirst, 1)
	var d doneRec
	// One write buried under a near-full queue of reads: once the queue
	// passes 3/4 depth, oldest-first kicks in and the write gets served.
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0))
	c.Enqueue(0, d.req(1, addrFor(1, 1), mem.Write, mem.InvalidThread))
	for i := 2; i < 60; i++ {
		if !c.Enqueue(0, d.req(uint64(i), addrFor(0, 0), mem.Read, 0)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	q.RunUntil(1 << 22)
	if len(d.order) != 60 {
		t.Fatalf("completed %d of 60", len(d.order))
	}
	// The write must not be the very last completion.
	if d.order[len(d.order)-1] == 1 {
		t.Fatal("write starved to the end despite guard")
	}
}

func TestConcurrencyHistograms(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 2)
	var d doneRec
	c.Enqueue(0, d.req(0, addrFor(0, 0), mem.Read, 0))
	c.Enqueue(10, d.req(1, addrFor(1, 1), mem.Read, 1))
	q.RunUntil(1 << 20)
	c.FinishStats(1 << 20)

	st := &c.Stats
	if st.BusyCycles() == 0 {
		t.Fatal("no busy cycles recorded")
	}
	if st.OutstandingHist[2] == 0 {
		t.Fatal("never observed 2 outstanding requests")
	}
	if st.ThreadSpreadHist[2] == 0 {
		t.Fatal("never observed 2 threads with pending requests")
	}
	// Conservation: thread-spread time equals time with ≥2 outstanding.
	var ge2, spread uint64
	for i := 2; i < len(st.OutstandingHist); i++ {
		ge2 += st.OutstandingHist[i]
	}
	for _, v := range st.ThreadSpreadHist {
		spread += v
	}
	if ge2 != spread {
		t.Fatalf("thread-spread cycles %d != ≥2-outstanding cycles %d", spread, ge2)
	}
}

func TestOutstandingDropsToZero(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, FCFS, 1)
	c.Enqueue(0, &mem.Request{ID: 0, Addr: 0, Kind: mem.Read, Thread: 0})
	q.RunUntil(1 << 20)
	if got := c.Outstanding(0); got != 0 {
		t.Fatalf("Outstanding after drain = %d, want 0", got)
	}
}

func TestMultiChannelIndependence(t *testing.T) {
	var q event.Queue
	g := geo1ch()
	g.Channels = 2
	m, _ := addrmap.NewMapper(g, addrmap.Page)
	c, err := New(&q, Config{Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage), Policy: FCFS, Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	var done [2]uint64
	// Page 0 → channel 0, page 1 → channel 1.
	c.Enqueue(0, &mem.Request{ID: 0, Addr: 0, Kind: mem.Read, Thread: 0, OnComplete: func(at uint64) { done[0] = at }})
	c.Enqueue(0, &mem.Request{ID: 1, Addr: 2048, Kind: mem.Read, Thread: 0, OnComplete: func(at uint64) { done[1] = at }})
	q.RunUntil(1 << 20)
	if done[0] != done[1] || done[0] != 120 {
		t.Fatalf("independent channels should complete in parallel: %v", done)
	}
	if len(c.Channels()) != 2 {
		t.Fatalf("Channels() = %d, want 2", len(c.Channels()))
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nonsense"); err == nil {
		t.Fatal("ParsePolicy accepted nonsense")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy must print")
	}
}

func TestWritebackThreadKeySortsLast(t *testing.T) {
	var q event.Queue
	c := newCtl(t, &q, RequestBased, 1)
	e := &entry{req: &mem.Request{Thread: mem.InvalidThread}}
	if c.threadKey(e) != int(^uint(0)>>1) {
		t.Fatal("invalid-thread key must be max int")
	}
}
