package memctrl

import (
	"testing"

	"smtdram/internal/addrmap"
	"smtdram/internal/dram"
	"smtdram/internal/event"
	"smtdram/internal/faults"
	"smtdram/internal/mem"
	"smtdram/internal/obs"
)

func geo2ch() addrmap.Geometry {
	return addrmap.Geometry{Channels: 2, ChipsPerChannel: 1, BanksPerChip: 4, PageBytes: 2048, LineBytes: 64}
}

func newFaultyCtl(t *testing.T, q *event.Queue, geo addrmap.Geometry, plan *faults.Plan, ob *obs.Observer) *Controller {
	t.Helper()
	m, err := addrmap.NewMapper(geo, addrmap.Page)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(q, Config{
		Mapper:   m,
		Params:   dram.DDRParams(16, 64, dram.OpenPage),
		Policy:   FCFS,
		Threads:  1,
		Injector: faults.NewInjector(plan),
		Obs:      ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
	base := Config{Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage)}

	bad := base
	bad.QueueDepth = -1
	if err := bad.withDefaults().Validate(); err == nil {
		t.Error("negative queue depth accepted")
	}
	bad = base
	bad.MaxRetries = -1
	if err := bad.withDefaults().Validate(); err == nil {
		t.Error("negative retry bound accepted")
	}
	bad = base
	bad.Threads = -1
	if err := bad.withDefaults().Validate(); err == nil {
		t.Error("negative thread count accepted")
	}
	bad = base
	bad.Mapper = addrmap.Mapper{} // zero channels
	if err := bad.withDefaults().Validate(); err == nil {
		t.Error("zero-channel mapper accepted")
	}
	// A fault plan that does not fit the geometry (channel 1 of 1).
	bad = base
	bad.Injector = faults.NewInjector(&faults.Plan{ChannelFail: &faults.ChannelFail{Channel: 1, At: 10}})
	if err := bad.withDefaults().Validate(); err == nil {
		t.Error("fault plan outside the geometry accepted")
	}
	var q event.Queue
	if _, err := New(&q, bad); err == nil {
		t.Error("New accepted a config its own Validate rejects")
	}
	if err := base.withDefaults().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCorrectedBitFlipsDoNotRetry(t *testing.T) {
	var q event.Queue
	c := newFaultyCtl(t, &q, geo1ch(), &faults.Plan{BitFlipRate: 1, Seed: 3}, nil)
	var done int
	for i := 0; i < 8; i++ {
		r := &mem.Request{ID: uint64(i + 1), Addr: addrFor(i%4, i/4), Kind: mem.Read, Thread: 0,
			OnComplete: func(uint64) { done++ }}
		if !c.Enqueue(0, r) {
			t.Fatal("Enqueue rejected")
		}
	}
	q.RunUntil(1 << 20)
	if done != 8 {
		t.Fatalf("%d of 8 reads completed", done)
	}
	ecc := c.ECCStats()
	if ecc.Corrected != 8 || ecc.Uncorrected != 0 {
		t.Fatalf("ECC = %+v, want 8 corrected", ecc)
	}
	if c.Stats.Retries != 0 || c.Stats.RetryGiveUps != 0 {
		t.Fatalf("corrected errors triggered retries: %+v", c.Stats)
	}
	if inj := c.inj.Stats; inj.BitFlips != 8 || inj.Total() != 8 {
		t.Fatalf("injector stats = %+v", inj)
	}
}

func TestDroppedReadRetriesThenGivesUp(t *testing.T) {
	var q event.Queue
	c := newFaultyCtl(t, &q, geo1ch(), &faults.Plan{DropRate: 1, Seed: 3}, nil)
	var doneAt uint64
	r := &mem.Request{ID: 1, Addr: 0, Kind: mem.Read, Thread: 0,
		OnComplete: func(at uint64) { doneAt = at }}
	if !c.Enqueue(0, r) {
		t.Fatal("Enqueue rejected")
	}
	q.RunUntil(1 << 20)
	if doneAt == 0 {
		t.Fatal("read never completed: give-up path must still deliver")
	}
	// Every service attempt is dropped: MaxRetries (3) retries, then give up
	// on the 4th attempt. A clean read completes at 120 (closed-bank), so
	// the retried one must land far later.
	if c.Stats.Retries != 3 || c.Stats.RetryGiveUps != 1 {
		t.Fatalf("Retries=%d GiveUps=%d, want 3 and 1", c.Stats.Retries, c.Stats.RetryGiveUps)
	}
	if c.inj.Stats.Drops != 4 {
		t.Fatalf("injected drops = %d, want 4 (one per service attempt)", c.inj.Stats.Drops)
	}
	if doneAt <= 120 {
		t.Fatalf("retried read completed at %d, no later than a clean read", doneAt)
	}
	// The retry delay is exponential: 16, 32, 64 on top of three re-services.
	if c.Stats.ReadLatencySum != doneAt {
		t.Fatalf("latency accounts %d, want full arrival→delivery %d", c.Stats.ReadLatencySum, doneAt)
	}
}

func TestStuckRowIsUncorrectableAndAccountingSums(t *testing.T) {
	var q event.Queue
	plan := &faults.Plan{Stuck: []faults.StuckRow{{Channel: 0, Chip: 0, Bank: 1, Row: 2}}}
	c := newFaultyCtl(t, &q, geo1ch(), plan, nil)
	var done int
	for i, addr := range []uint64{addrFor(1, 2), addrFor(2, 2), addrFor(1, 3)} {
		r := &mem.Request{ID: uint64(i + 1), Addr: addr, Kind: mem.Read, Thread: 0,
			OnComplete: func(uint64) { done++ }}
		if !c.Enqueue(0, r) {
			t.Fatal("Enqueue rejected")
		}
	}
	q.RunUntil(1 << 20)
	if done != 3 {
		t.Fatalf("%d of 3 reads completed", done)
	}
	ecc := c.ECCStats()
	// The stuck-row read faults on every attempt: 1 + MaxRetries decodes.
	if ecc.Uncorrected != 4 || ecc.Corrected != 0 {
		t.Fatalf("ECC = %+v, want 4 uncorrected", ecc)
	}
	if c.Stats.Retries != 3 || c.Stats.RetryGiveUps != 1 {
		t.Fatalf("Retries=%d GiveUps=%d", c.Stats.Retries, c.Stats.RetryGiveUps)
	}
	// Exact accounting: injected == corrected + uncorrected + dropped.
	inj := c.inj.Stats
	if inj.Total() != ecc.Corrected+ecc.Uncorrected+inj.Drops {
		t.Fatalf("accounting: injected %d != corrected %d + uncorrected %d + dropped %d",
			inj.Total(), ecc.Corrected, ecc.Uncorrected, inj.Drops)
	}
}

func TestChannelFailoverMigratesAndCompletes(t *testing.T) {
	var q event.Queue
	ob := obs.New(obs.Options{Trace: true})
	// Channel 1 dies at cycle 60 — while a pile of requests to it is queued.
	plan := &faults.Plan{ChannelFail: &faults.ChannelFail{Channel: 1, At: 60}}
	c := newFaultyCtl(t, &q, geo2ch(), plan, ob)

	// Page mapping over 2 channels: page index alternates channels
	// (channel-major BankID), so odd page indices land on channel 1.
	var done int
	const n = 24
	for i := 0; i < n; i++ {
		r := &mem.Request{ID: uint64(i + 1), Addr: uint64(i) * 2048, Kind: mem.Read, Thread: 0,
			OnComplete: func(uint64) { done++ }}
		if !c.Enqueue(0, r) {
			t.Fatal("Enqueue rejected")
		}
	}
	q.RunUntil(1 << 20)
	if done != n {
		t.Fatalf("%d of %d reads completed after failover", done, n)
	}
	if ch, at := c.Failover(); ch != 1 || at != 60 {
		t.Fatalf("Failover() = (%d, %d), want (1, 60)", ch, at)
	}
	if c.Stats.FailedOver == 0 {
		t.Fatal("no requests migrated off the failed channel")
	}
	// The dead channel must never dispatch again and new traffic must avoid
	// it: enqueue another round and check it all lands on channel 0.
	before := c.QueueLen(1)
	for i := 0; i < 4; i++ {
		r := &mem.Request{ID: uint64(100 + i), Addr: uint64(2*i+1) * 2048, Kind: mem.Read, Thread: 0,
			OnComplete: func(uint64) { done++ }}
		if !c.Enqueue(1<<20, r) {
			t.Fatal("Enqueue rejected after failover")
		}
	}
	if c.QueueLen(1) != before {
		t.Fatal("post-failover traffic still queued on the dead channel")
	}
	q.RunUntil(1 << 21)
	if done != n+4 {
		t.Fatalf("%d of %d post-failover reads completed", done-n, 4)
	}
	// The lifecycle trace must carry the failover milestones.
	var failovers int
	for _, e := range ob.Trace.Events() {
		if e.Kind == obs.KFailover {
			failovers++
			if e.Channel == 1 {
				t.Fatalf("failover milestone still points at the dead channel: %+v", e)
			}
		}
	}
	if failovers == 0 {
		t.Fatal("no KFailover milestones in the trace")
	}
	if uint64(failovers) != c.Stats.FailedOver {
		t.Fatalf("%d failover milestones for %d migrated requests", failovers, c.Stats.FailedOver)
	}
}

func TestRetryMilestonesInTrace(t *testing.T) {
	var q event.Queue
	ob := obs.New(obs.Options{Trace: true})
	c := newFaultyCtl(t, &q, geo1ch(), &faults.Plan{DropRate: 1, Seed: 5}, ob)
	r := &mem.Request{ID: 1, Addr: 0, Kind: mem.Read, Thread: 0}
	c.Enqueue(0, r)
	q.RunUntil(1 << 20)
	var faultsSeen, retries, gaveUp, dones int
	for _, e := range ob.Trace.Events() {
		switch e.Kind {
		case obs.KFault:
			faultsSeen++
			if e.Outcome != "dropped" {
				t.Fatalf("fault outcome %q, want dropped", e.Outcome)
			}
		case obs.KRetry:
			if e.Outcome == "gave up" {
				gaveUp++
			} else {
				retries++
			}
		case obs.KDone:
			dones++
		}
	}
	if faultsSeen != 4 || retries != 3 || gaveUp != 1 || dones != 1 {
		t.Fatalf("milestones: %d faults, %d retries, %d give-ups, %d dones; want 4/3/1/1",
			faultsSeen, retries, gaveUp, dones)
	}
}

func TestFaultFreeRunsUntouchedByResilienceMachinery(t *testing.T) {
	run := func(inj *faults.Injector) (Stats, uint64) {
		var q event.Queue
		m, _ := addrmap.NewMapper(geo1ch(), addrmap.Page)
		c, err := New(&q, Config{
			Mapper: m, Params: dram.DDRParams(16, 64, dram.OpenPage),
			Policy: HitFirst, Threads: 2, Injector: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		var lastDone uint64
		for i := 0; i < 64; i++ {
			r := &mem.Request{ID: uint64(i + 1), Addr: uint64(i*7) * 64, Kind: mem.Read, Thread: i % 2,
				OnComplete: func(at uint64) { lastDone = at }}
			c.Enqueue(uint64(i)*3, r)
		}
		q.RunUntil(1 << 20)
		return c.Stats, lastDone
	}
	sWith, dWith := run(faults.NewInjector(nil)) // nil plan → nil injector
	sWithout, dWithout := run(nil)
	if sWith != sWithout || dWith != dWithout {
		t.Fatal("a nil fault plan changed controller behaviour")
	}
}
