package cpu

import (
	"testing"

	"smtdram/internal/workload"
)

// These tests pin down the dispatch-stage resource gate that realizes the
// fetch policies' anti-clog behaviour (see Config.MissIQAllowance).

// missThread fakes a thread that is experiencing a long data-cache miss and
// holds n issue-queue entries.
func missThread(r *rig, id, iqHeld int) *thread {
	t := r.cpu.threads[id]
	u := &t.rob[0]
	*u = uop{in: workload.Instr{Kind: workload.Load}, state: stIssued, issuedAt: 0, doneAt: pendingDone}
	t.inFlight = append(t.inFlight, u)
	t.iqInt = iqHeld
	return t
}

func TestDispatchGateBlocksMissingThreadUnderDWarn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWarn
	r := newRig(t, cfg, nops(), nops())
	th := missThread(r, 0, cfg.MissIQAllowance+40)
	if !r.cpu.dispatchGated(100, th) {
		t.Fatal("DWarn gate must block a missing thread past its allowance")
	}
	// The same thread below the allowance dispatches freely.
	th.iqInt = cfg.MissIQAllowance/2 - 1
	if r.cpu.dispatchGated(100, th) {
		t.Fatal("gate must not block below the allowance")
	}
}

func TestDispatchGateAllowanceScalesWithThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWarn
	// At 2 threads the allowance is half the equal share: (64+32)/(2*2)=24.
	r2 := newRig(t, cfg, nops(), nops())
	th := missThread(r2, 0, 20)
	if r2.cpu.dispatchGated(100, th) {
		t.Fatal("2-thread gate bound too low: 20 entries should be allowed")
	}
	th.iqInt = 25
	if !r2.cpu.dispatchGated(100, th) {
		t.Fatal("2-thread gate must bind at 24 entries")
	}
	// At 8 threads the allowance floors at MissIQAllowance (8).
	r8 := newRig(t, cfg, nops(), nops(), nops(), nops(), nops(), nops(), nops(), nops())
	th8 := missThread(r8, 0, 9)
	if !r8.cpu.dispatchGated(100, th8) {
		t.Fatal("8-thread gate must bind at the floor of 8 entries")
	}
}

func TestDispatchGateICOUNTEqualization(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = ICOUNT
	r := newRig(t, cfg, nops(), nops())
	th := r.cpu.threads[0]
	// ICOUNT gates every thread (missing or not) at total/4 = 24 entries.
	th.iqInt = 23
	if r.cpu.dispatchGated(100, th) {
		t.Fatal("ICOUNT gate bound below its equalization point")
	}
	th.iqInt = 24
	if !r.cpu.dispatchGated(100, th) {
		t.Fatal("ICOUNT gate must bind at total/4")
	}
}

func TestDispatchGateOffForSingleThread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWarn
	r := newRig(t, cfg, nops())
	th := missThread(r, 0, 60)
	if r.cpu.dispatchGated(100, th) {
		t.Fatal("gate must be disabled for single-thread runs (no one to protect)")
	}
}

func TestDispatchGateFetchStallUsesL2Signal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = FetchStall
	r := newRig(t, cfg, nops(), nops())
	th := missThread(r, 0, 30)
	// At now=5, the load is too young to count as an L2 miss: no gate.
	if r.cpu.dispatchGated(5, th) {
		t.Fatal("FetchStall gate fired before the L2-miss threshold")
	}
	if !r.cpu.dispatchGated(100, th) {
		t.Fatal("FetchStall gate must fire once the load has aged past an L2 hit")
	}
}

func TestClogSeparationEndToEnd(t *testing.T) {
	// One dependent-chain-of-misses thread plus one compute thread: under
	// DWarn, the compute thread should retain most of its solo throughput;
	// without any gate (RoundRobin policy has only the equalization gate —
	// use a custom config with the gate disabled) the clog eats it.
	gated := DefaultConfig()
	gated.Policy = DWarn
	rG := newRig(t, gated, chasing(), nops())
	rG.run(6000)
	gatedIPC := float64(rG.cpu.Committed(1)) / float64(rG.cpu.Cycles)

	ungated := DefaultConfig()
	ungated.Policy = DWarn
	rU := newRig(t, ungated, chasing(), nops())
	// Disable the gate by making the allowance huge.
	rU.cpu.cfg.MissIQAllowance = 1 << 20
	rU.run(6000)
	ungatedIPC := float64(rU.cpu.Committed(1)) / float64(rU.cpu.Cycles)

	if gatedIPC < ungatedIPC {
		t.Fatalf("gate should protect the compute thread: gated %.3f < ungated %.3f", gatedIPC, ungatedIPC)
	}
}

// chasing produces an endless pointer chase with dependent consumers, the
// IQ-clogging pattern.
func chasing() Source {
	return &chaseSrc{}
}

type chaseSrc struct {
	n    uint64
	addr uint64
}

func (c *chaseSrc) Next() workload.Instr {
	c.n++
	if c.n%4 == 0 {
		c.addr += 4096
		return workload.Instr{Kind: workload.Load, PC: c.n * 4, Addr: 0x100000 + c.addr, Dep1: 4, Lat: 1}
	}
	return workload.Instr{Kind: workload.IntOp, PC: c.n * 4, Dep1: 1, Lat: 1}
}

func TestCoopOrdersMissGroupByMemPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Coop
	r := newRig(t, cfg, nops(), nops(), nops())
	// Threads 0 and 2 both have outstanding misses; thread 1 is clean.
	missThread(r, 0, 4)
	missThread(r, 2, 4)
	pressure := map[int]int{0: 9, 2: 1}
	r.cpu.SetMemPressure(func(th int) int { return pressure[th] })
	order := r.cpu.fetchOrder(100)
	if len(order) != 3 {
		t.Fatalf("order = %v", ids(order))
	}
	if order[0].id != 1 {
		t.Fatalf("order %v: clean thread must lead", ids(order))
	}
	// Within the miss group, thread 2 (1 pending DRAM request) outranks
	// thread 0 (9 pending).
	if order[1].id != 2 || order[2].id != 0 {
		t.Fatalf("order %v: miss group must sort by memory pressure", ids(order))
	}
}

func TestCoopWithoutPressureFallsBackToDWarn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Coop
	r := newRig(t, cfg, nops(), nops())
	missThread(r, 0, 4)
	order := r.cpu.fetchOrder(100)
	if len(order) != 2 || order[0].id != 1 {
		t.Fatalf("order = %v, want DWarn-like grouping", ids(order))
	}
}
