package cpu

import (
	"fmt"
	"strings"
)

// FetchPolicy selects how fetch bandwidth is distributed among threads each
// cycle (Section 5.1 of the paper).
type FetchPolicy int

const (
	// RoundRobin fetches from threads in simple rotation.
	RoundRobin FetchPolicy = iota
	// ICOUNT prioritizes the thread with the fewest instructions in the
	// front end and issue queues (Tullsen et al.).
	ICOUNT
	// FetchStall stops fetching from threads with outstanding L2 misses but
	// keeps at least one thread eligible (Tullsen & Brown).
	FetchStall
	// DG (data gating) blocks fetching from threads experiencing data-cache
	// misses (El-Moursy & Albonesi).
	DG
	// DWarn lowers — rather than zeroes — the fetch priority of threads with
	// outstanding data-cache misses; ICOUNT orders threads within each
	// group (Cazorla et al.). The paper's baseline (DWarn.2.8).
	DWarn
	// Coop is the cooperation between the fetch policy and the memory
	// scheduler that the paper's conclusion points to as future work: DWarn
	// grouping, but within the miss group threads are ordered by their
	// pending DRAM request count (fewest first — they will unclog soonest),
	// read live from the memory controller via Config/SetMemPressure.
	Coop
)

var fetchPolicyNames = map[FetchPolicy]string{
	RoundRobin: "rr",
	ICOUNT:     "icount",
	FetchStall: "fetch-stall",
	DG:         "dg",
	DWarn:      "dwarn",
	Coop:       "coop",
}

func (p FetchPolicy) String() string {
	if s, ok := fetchPolicyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("FetchPolicy(%d)", int(p))
}

// ParseFetchPolicy converts a CLI name into a FetchPolicy.
func ParseFetchPolicy(s string) (FetchPolicy, error) {
	for p, name := range fetchPolicyNames {
		if strings.EqualFold(s, name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("cpu: unknown fetch policy %q (want rr, icount, fetch-stall, dg, dwarn, coop)", s)
}

// FetchPolicies lists the policies in the paper's presentation order
// (Figure 2). Coop, the future-work cooperative policy, is extra.
func FetchPolicies() []FetchPolicy {
	return []FetchPolicy{ICOUNT, FetchStall, DG, DWarn}
}

// fetchOrder ranks the candidate threads for this cycle's fetch slots,
// best-first. It never returns ineligible (blocked) threads; under policies
// that exclude miss-bound threads it may return fewer threads than exist.
func (c *CPU) fetchOrder(now uint64) []*thread {
	cands := c.scratchThreads[:0]
	for _, t := range c.threads {
		if t.fetchBlockedUntil > now || t.imissPending || t.feLen() >= c.cfg.FrontendCap {
			continue
		}
		cands = append(cands, t)
	}
	if len(cands) == 0 {
		return cands
	}
	switch c.cfg.Policy {
	case RoundRobin:
		c.rotate(cands, c.rrFetch)
		c.rrFetch++
	case ICOUNT:
		sortByICount(cands)
	case FetchStall:
		// Drop threads with outstanding L2 misses, unless that would drop
		// everyone; then keep the ICOUNT-best thread.
		kept := cands[:0]
		for _, t := range cands {
			if !t.hasL2Miss(now, c.cfg) {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			sortByICount(cands)
			kept = cands[:1]
		} else {
			sortByICount(kept)
		}
		return kept
	case DG:
		kept := cands[:0]
		for _, t := range cands {
			if !t.hasL1DMiss(now, c.cfg) {
				kept = append(kept, t)
			}
		}
		sortByICount(kept)
		return kept
	case DWarn, Coop:
		// Two groups: no outstanding data-cache miss first; ICOUNT within.
		// Coop additionally orders the miss group by live DRAM pressure.
		sortByICount(cands)
		ordered := c.scratchOrder[:0]
		for _, t := range cands {
			if !t.hasL1DMiss(now, c.cfg) {
				ordered = append(ordered, t)
			}
		}
		missStart := len(ordered)
		for _, t := range cands {
			if t.hasL1DMiss(now, c.cfg) {
				ordered = append(ordered, t)
			}
		}
		if c.cfg.Policy == Coop && c.memPressure != nil {
			miss := ordered[missStart:]
			for i := 1; i < len(miss); i++ {
				for j := i; j > 0 && c.memPressure(miss[j].id) < c.memPressure(miss[j-1].id); j-- {
					miss[j], miss[j-1] = miss[j-1], miss[j]
				}
			}
		}
		copy(cands, ordered)
		c.scratchOrder = ordered
	}
	return cands
}

// icount is the ICOUNT metric: instructions in the front end plus issue
// queues.
func (t *thread) icount() int { return t.feLen() + t.iqInt + t.iqFP }

func sortByICount(ts []*thread) {
	// Insertion sort: the slice is at most 8 threads, and stability keeps
	// thread order deterministic on ties.
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && less(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func less(a, b *thread) bool {
	if ai, bi := a.icount(), b.icount(); ai != bi {
		return ai < bi
	}
	return a.id < b.id
}

func (c *CPU) rotate(ts []*thread, by int) {
	if len(ts) < 2 {
		return
	}
	by %= len(ts)
	tmp := append(c.scratchOrder[:0], ts[by:]...)
	tmp = append(tmp, ts[:by]...)
	copy(ts, tmp)
	c.scratchOrder = tmp
}
