package cpu

import (
	"fmt"
	"strings"

	"smtdram/internal/workload"
)

// This file is the CPU half of the two-speed simulation clock (DESIGN §11).
// NextWorkAt answers "when could Tick next do anything", and AdvanceQuiet
// replays the fixed per-cycle bookkeeping for the cycles the run loop then
// skips. Everything here is read-only except AdvanceQuiet: the skipped
// cycles' Ticks never run, so probing for quiescence must not perturb state
// those Ticks would have seen.

// NextWorkAt reports the earliest cycle after now at which Tick could do
// anything beyond its fixed per-cycle bookkeeping (cycle/rr counters and
// gated-dispatch accounting — see AdvanceQuiet). It returns now+1 when the
// core may make progress on the very next cycle, ^uint64(0) when only a
// memory-side completion event can unblock it, and otherwise the earliest
// of the core's own time triggers: a fetch penalty expiring, a frontend
// head reaching dispatch, a finite execution completing, a dependence
// becoming ready, or a fetch gate flipping — on, which changes the
// gated-dispatch accounting, or off, which lets dispatch proceed.
//
// The contract is exact, not heuristic: for every cycle m in
// (now, NextWorkAt(now)), Tick(m) would change nothing but that fixed
// bookkeeping, so the run loop may replace those Ticks with AdvanceQuiet
// and stay byte-identical to a cycle-by-cycle run.
func (c *CPU) NextWorkAt(now uint64) uint64 {
	next, _, quiet := c.ProbeQuiet(now)
	if !quiet {
		return now + 1
	}
	return next
}

// ProbeQuiet is the fused quiescence probe: one pass over the machine
// computes both NextWorkAt's bound and QuietFx's replay terms, sharing the
// expensive scans (the waiting-list dependence walk, the per-thread gate
// evaluation) that calling the two separately would repeat. quiet is false
// when Tick could do real work at now+1 — the window never opens, and next
// and fx are meaningless. The run loop's deep-skip path calls this at every
// span open and re-open, so the shared pass is directly on the skip-mode
// critical path.
func (c *CPU) ProbeQuiet(now uint64) (next uint64, fx QuietFx, quiet bool) {
	if c.psHead < len(c.pendingStores) {
		if !c.l1d.WouldBlock(c.pendingStores[c.psHead].addr) {
			return 0, fx, false // the head store drains (or allocates an MSHR) next cycle
		}
		// The head store is parked on a full MSHR file. Only a landed fill
		// event can change that, so the retry's outcome is constant across
		// any skip window; its lone per-cycle effect — one MSHRFull count —
		// is replayed in aggregate by ApplyQuiet.
		fx.mshrBump++
	}
	next = ^uint64(0)
	for i, t := range c.threads {
		// Fetch: an eligible thread probes the I-cache (or consumes its
		// generator) next cycle; a penalty-blocked one wakes when it ends.
		if t.fetchBlockedUntil > now {
			if t.fetchBlockedUntil < next {
				next = t.fetchBlockedUntil
			}
		} else if !t.imissPending && t.feLen() < c.cfg.FrontendCap {
			return 0, fx, false
		}
		// Commit: a done (or matured) head retires next cycle; a head with
		// a finite completion time retires after it. A head whose doneAt is
		// pendingDone is an in-flight load — only a fill event wakes it.
		if t.robCount() > 0 {
			u := &t.rob[t.headSeq%uint64(len(t.rob))]
			switch {
			case u.state == stDone:
				return 0, fx, false
			case u.state == stIssued && u.doneAt != pendingDone:
				if u.doneAt <= now {
					return 0, fx, false
				}
				if u.doneAt < next {
					next = u.doneAt
				}
			}
		}
		// Dispatch: a ready frontend head either dispatches (work), sits
		// gated (pure bookkeeping), or waits on resources freed only by
		// landed work. An ungated thread can still flip its gate on as its
		// oldest load ages past the policy's miss threshold — the flip
		// changes the bookkeeping, so it bounds the skip. A thread that
		// reaches the gate check every skipped cycle contributes its
		// gated-dispatch accounting to the replay terms; the gate's value is
		// constant across the window (every flip trigger bounds the skip),
		// so evaluating at now+1 stands in for every skipped cycle.
		if t.feLen() > 0 {
			if ra := t.frontend[t.feHead].readyAt; ra > now {
				if ra < next {
					next = ra
				}
			} else {
				if gated, flip := c.gateInfo(now, t); !gated {
					if c.couldDispatchHead(t) {
						return 0, fx, false
					}
					if flip > now && flip < next {
						next = flip
					}
				} else if flip > now && flip < next {
					next = flip // the gate may open when its oldest load matures
				}
				if len(c.threads) > 1 { // dispatchGated never gates a lone thread
					if gated, _ := c.gateInfo(now+1, t); gated {
						fx.gated |= 1 << uint(i)
					}
				}
			}
		}
	}
	// Issue: a waiting uop with every dependence ready issues next cycle —
	// unless it is a load parked on a full MSHR file, whose every retry
	// fails identically until a landed fill event frees an entry; its one
	// observable effect per cycle (an MSHRFull count) is replayed by
	// ApplyQuiet. A not-yet-ready uop's latest finite dependence-completion
	// time bounds the skip.
	for _, u := range c.waiting {
		if u.epoch == ^uint64(0) || u.state != stWaiting {
			continue // squashed or stale: Tick drops these without effect
		}
		t := c.threads[u.tid]
		r := u.readyAt
		if u.readySeen != t.wakeSeq {
			// Refreshing the shared readiness memo is state-neutral: issue()
			// would compute and cache the identical bound.
			r = t.depReadyAt(u.dep1)
			if r2 := t.depReadyAt(u.dep2); r2 > r {
				r = r2
			}
			u.readySeen, u.readyAt = t.wakeSeq, r
		}
		if r <= now {
			if u.in.Kind == workload.Load && c.l1d.WouldBlock(u.in.Addr) {
				// MSHR-parked: constant retry, replayed in aggregate.
				// issue() always reaches issueLoad for these: Validate
				// guarantees non-empty functional-unit pools, and the failed
				// attempt restores the issue width, so neither depletes
				// across a quiet window.
				fx.mshrBump++
				continue
			}
			return 0, fx, false
		}
		if r < next {
			next = r
		}
	}
	return next, fx, true
}

// QuietFx is the fixed per-cycle effect of a quiet Tick, captured by
// QuietFx() at the start of a skip window while the machine state is exactly
// what every skipped Tick would have seen, and replayed k times by
// ApplyQuiet. Splitting capture from application matters for the deep-skip
// path: the run loop fires memory-internal events inside the window, and the
// event that finally ends it (a fill landing in an L1) mutates the very
// state — dependence readiness, L1D occupancy — these terms are derived
// from, so they must be read before any in-window event runs.
type QuietFx struct {
	// mshrBump is the MSHRFull count each skipped Tick would add: one for a
	// head store parked on the full MSHR file plus one per ready load parked
	// the same way.
	mshrBump uint64
	// gated flags the threads (bit i = thread i) whose dispatch would sit
	// gated every skipped cycle. New caps the machine at 64 contexts.
	gated uint64
}

// QuietFx evaluates the per-cycle replay terms at cycle now, the last landed
// cycle before a skip window. Read-only. Callers that also need NextWorkAt's
// bound should call ProbeQuiet once instead; this wrapper exists for the
// fused AdvanceQuiet path and for tests.
func (c *CPU) QuietFx(now uint64) QuietFx {
	_, fx, _ := c.ProbeQuiet(now)
	return fx
}

// ApplyQuiet replays fx for k skipped cycles: the cycle counter and the
// round-robin dispatch/commit rotations advance exactly as k Ticks would
// advance them, parked retries accrue their MSHRFull rejections, and gated
// threads accrue their gated-dispatch stat. The fetch rotation is untouched —
// with no fetch-eligible thread, fetchOrder returns before advancing it.
func (c *CPU) ApplyQuiet(fx QuietFx, k uint64) {
	if k == 0 {
		return
	}
	c.Cycles += k
	c.rrDispatch += int(k)
	c.rrCommit += int(k)
	c.l1d.Stats.MSHRFull += k * fx.mshrBump
	if fx.gated == 0 {
		return
	}
	for i, t := range c.threads {
		if fx.gated&(1<<uint(i)) != 0 {
			t.gated += k
		}
	}
}

// AdvanceQuiet applies the aggregate effect of Ticking every cycle in
// (now, to], which the caller has established (via NextWorkAt) to be quiet.
// It is QuietFx + ApplyQuiet fused, for callers that fire no events inside
// the window.
func (c *CPU) AdvanceQuiet(now, to uint64) {
	if to <= now {
		return
	}
	c.ApplyQuiet(c.QuietFx(now), to-now)
}

// TakeWake reports whether any event since the last call delivered
// CPU-visible state (a fill landing in an L1, a branch resolving), clearing
// the flag. The run loop's deep-skip span calls it after each event cycle:
// a clean result proves the cycle's events touched only memory-system
// internals, so the span's quiescence assessment still stands.
func (c *CPU) TakeWake() bool {
	w := c.wake
	c.wake = false
	return w
}

// gateInfo is the read-only twin of dispatchGated. It reports whether the
// thread's dispatch is gated at cycle now and the first cycle the gate's
// value could flip purely by time passing (0 when it cannot): an off gate
// turns on as the oldest in-flight load ages past the policy's miss
// threshold; an on gate turns off when the load holding it open matures.
// The latter is normally event-driven (a fill lands and sets doneAt to the
// current cycle), but the deep-skip path probes at the cycle *before* an
// in-span fill fires, where that load carries doneAt == now+1 and still
// looks live — the maturity bound is what makes the probe land on the cycle
// whose Tick first sees the gate open.
func (c *CPU) gateInfo(now uint64, t *thread) (gated bool, flipAt uint64) {
	n := len(c.threads)
	if n == 1 {
		return false, 0
	}
	total := c.cfg.IntIQ + c.cfg.FPIQ
	switch c.cfg.Policy {
	case FetchStall:
		if t.iqInt+t.iqFP < c.missAllowance(total, n) {
			return false, 0
		}
		issuedAt, doneAt, live := t.oldestLivePeek(now)
		if !live {
			return false, 0
		}
		if now-issuedAt > c.cfg.L1DLatency+c.cfg.L2Latency+4 {
			if doneAt > now && doneAt != pendingDone {
				return true, doneAt
			}
			return true, 0
		}
		return false, issuedAt + c.cfg.L1DLatency + c.cfg.L2Latency + 5
	case DG, DWarn, Coop:
		if t.iqInt+t.iqFP < c.missAllowance(total, n) {
			return false, 0
		}
		issuedAt, doneAt, live := t.oldestLivePeek(now)
		if !live {
			return false, 0
		}
		if now-issuedAt > c.cfg.L1DLatency+2 {
			if doneAt > now && doneAt != pendingDone {
				return true, doneAt
			}
			return true, 0
		}
		return false, issuedAt + c.cfg.L1DLatency + 3
	case ICOUNT, RoundRobin:
		return t.iqInt+t.iqFP >= total/4, 0
	default:
		return false, 0
	}
}

// oldestLivePeek finds the same oldest live in-flight load oldestLoadAge
// would report, without popping matured entries — maturity only moves at
// landed cycles, so the lazily-popped prefix is identical in skipped and
// unskipped runs whenever the next Tick actually observes it. It also
// reports that load's completion cycle (pendingDone while truly in flight;
// one cycle ahead of now right after an in-span fill), which bounds when an
// on gate can open.
func (t *thread) oldestLivePeek(now uint64) (issuedAt, doneAt uint64, live bool) {
	for _, u := range t.inFlight {
		if u.state == stDone || (u.state == stIssued && u.doneAt <= now) || u.in.Kind != workload.Load {
			continue
		}
		return u.issuedAt, u.doneAt, true
	}
	return 0, 0, false
}

// couldDispatchHead mirrors dispatchOne's resource checks without moving
// the instruction: true means the next Tick would dispatch it.
func (c *CPU) couldDispatchHead(t *thread) bool {
	if t.robCount() >= c.cfg.ROBPerThread {
		return false
	}
	in := &t.frontend[t.feHead].in
	if in.Kind == workload.FPOp {
		if c.fpIQUsed >= c.cfg.FPIQ {
			return false
		}
	} else if c.intIQUsed >= c.cfg.IntIQ {
		return false
	}
	switch in.Kind {
	case workload.Load:
		if c.lqUsed >= c.cfg.LQ {
			return false
		}
	case workload.Store:
		if c.sqUsed >= c.cfg.SQ {
			return false
		}
	}
	return true
}

// Fingerprint summarizes every piece of architecturally observable CPU state
// that skipped cycles are forbidden to change — committed counts, queue
// occupancies, per-thread frontend/ROB/epoch state, fetch blocks, squash and
// memory-op counters — excluding only the fixed per-cycle bookkeeping
// ApplyQuiet replays (Cycles, dispatch/commit rotations, gated-cycle stats)
// and lazy internal cleanup nothing observes. The two-speed-clock lockstep
// equivalence tests compare it cycle by cycle between a skipping machine and
// a ticking twin; it is a diagnostic aid, not a stable format.
func (c *CPU) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "committed=%d rrFetch=%d iq=%d/%d lsq=%d/%d ps=%d",
		c.TotalCommitted, c.rrFetch, c.intIQUsed, c.fpIQUsed, c.lqUsed, c.sqUsed,
		len(c.pendingStores)-c.psHead)
	for _, t := range c.threads {
		fmt.Fprintf(&b, " [t%d c=%d fe=%d rob=%d head=%d next=%d ep=%d iq=%d/%d lsq=%d/%d"+
			" fbu=%d imiss=%v iline=%d sq=%d ld=%d st=%d im=%d warm=%d fin=%d]",
			t.id, t.committed, t.feLen(), t.robCount(), t.headSeq, t.nextSeq, t.epoch,
			t.iqInt, t.iqFP, t.lq, t.sq, t.fetchBlockedUntil, t.imissPending, t.curILine,
			t.squashes, t.loads, t.stores, t.imisses, t.warmedAt, t.finishedAt)
	}
	return b.String()
}

// depReadyAt reports when producer dep's result becomes available purely by
// time passing: 0 when it already is, the producer's finite completion
// cycle, or ^uint64(0) when only an event (a load fill) or the producer's
// own issue — which is itself landed work — can supply it. A uop is
// issue-eligible at now exactly when max over its deps of this bound is
// <= now; issue() and the probe share that bound through the uop's
// readySeen/readyAt memo.
func (t *thread) depReadyAt(dep uint64) uint64 {
	if dep == noDep || dep < t.headSeq {
		return 0 // committed, or no producer
	}
	u := &t.rob[dep%uint64(len(t.rob))]
	if u.seq != dep {
		return 0 // slot recycled: producer long gone
	}
	switch u.state {
	case stDone:
		return 0
	case stIssued:
		return u.doneAt // pendingDone == ^uint64(0): an in-flight load
	default:
		return ^uint64(0) // unissued: its issue is itself landed work
	}
}
