package cpu

import (
	"testing"

	"smtdram/internal/cache"
	"smtdram/internal/workload"
)

// Deeper pipeline-behaviour tests: LSQ limits, store-buffer backpressure,
// commit width, fetch-block boundaries, and I-cache stalls.

func TestLQBoundsOutstandingLoads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LQ = 4
	// Independent loads, all missing to slow memory: at most LQ may be
	// dispatched (each holds an LQ entry until commit).
	loads := &script{}
	for i := 0; i < 200; i++ {
		loads.ins = append(loads.ins, workload.Instr{Kind: workload.Load, Addr: uint64(0x10000 + i*4096), Lat: 1})
	}
	r := newRig(t, cfg, loads)
	r.run(150)
	if r.cpu.lqUsed > cfg.LQ {
		t.Fatalf("lqUsed = %d exceeds LQ %d", r.cpu.lqUsed, cfg.LQ)
	}
	if got := len(r.cpu.threads[0].inFlight); got > cfg.LQ {
		t.Fatalf("%d loads in flight exceeds LQ %d", got, cfg.LQ)
	}
}

func TestSQBoundsOutstandingStores(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SQ = 4
	stores := &script{}
	for i := 0; i < 200; i++ {
		stores.ins = append(stores.ins, workload.Instr{Kind: workload.Store, Addr: uint64(0x20000 + i*4096), Lat: 1})
	}
	r := newRig(t, cfg, stores)
	for c := uint64(1); c <= 400; c++ {
		r.q.RunUntil(c)
		r.cpu.Tick(c)
		if r.cpu.sqUsed > cfg.SQ {
			t.Fatalf("cycle %d: sqUsed = %d exceeds SQ %d", c, r.cpu.sqUsed, cfg.SQ)
		}
	}
}

func TestCommitWidthBoundsRetirement(t *testing.T) {
	r := newRig(t, DefaultConfig(), nops())
	var last uint64
	for c := uint64(1); c <= 500; c++ {
		r.q.RunUntil(c)
		r.cpu.Tick(c)
		if got := r.cpu.Committed(0) - last; got > uint64(r.cpu.cfg.CommitWidth) {
			t.Fatalf("cycle %d: committed %d in one cycle, width %d", c, got, r.cpu.cfg.CommitWidth)
		}
		last = r.cpu.Committed(0)
	}
}

func TestTakenBranchEndsFetchBlock(t *testing.T) {
	// Alternate taken branches and ops: fetch can never bring more than
	// (branch + following block) per cycle from one thread; with a taken
	// branch every 2 instructions, per-cycle fetch is ≈2, capping IPC ≈2.
	s := &script{ins: []workload.Instr{
		{Kind: workload.IntOp, Lat: 1},
		{Kind: workload.Branch, Lat: 1, Taken: true},
	}}
	full := s.ins
	s.ins = nil
	for i := 0; i < 4000; i++ {
		s.ins = append(s.ins, full...)
	}
	r := newRig(t, DefaultConfig(), s)
	r.run(3000)
	ipc := float64(r.cpu.Committed(0)) / float64(r.cpu.Cycles)
	if ipc > 2.2 {
		t.Fatalf("IPC %.2f: taken branches did not bound the fetch block", ipc)
	}
}

func TestICacheMissStallsFetch(t *testing.T) {
	// Real (small) L1I: a PC stream jumping across many lines must generate
	// I-cache misses and fetch stalls.
	r := &rig{}
	r.low = cache.NewFixedLatency(&r.q, 100)
	var err error
	r.l1i, err = cache.New(&r.q, cache.Config{Name: "L1I", SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 4}, r.low)
	if err != nil {
		t.Fatal(err)
	}
	r.l1d, err = cache.New(&r.q, cache.Config{Name: "L1D", SizeBytes: 4096, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 8}, r.low)
	if err != nil {
		t.Fatal(err)
	}
	// A jumpy code stream: each instruction 4 KB apart (always a new line).
	jumpy := &jumpSrc{}
	r.cpu, err = New(&r.q, DefaultConfig(), []Source{jumpy}, r.l1i, r.l1d)
	if err != nil {
		t.Fatal(err)
	}
	r.run(5000)
	if r.cpu.IMisses(0) == 0 {
		t.Fatal("no I-cache misses on a jumpy code stream")
	}
	ipc := float64(r.cpu.Committed(0)) / float64(r.cpu.Cycles)
	if ipc > 0.7 {
		t.Fatalf("IPC %.2f: I-cache misses should throttle a jumpy stream hard", ipc)
	}
}

type jumpSrc struct{ n uint64 }

func (j *jumpSrc) Next() workload.Instr {
	j.n++
	return workload.Instr{Kind: workload.IntOp, Lat: 1, PC: j.n * 4096}
}

func TestStoreBufferBackpressureDoesNotDeadlock(t *testing.T) {
	// Stores to distinct lines at full rate against a tiny-MSHR L1D: the
	// pending-store buffer must fill and drain without wedging commit.
	cfg := DefaultConfig()
	stores := &script{}
	for i := 0; i < 1000; i++ {
		stores.ins = append(stores.ins, workload.Instr{Kind: workload.Store, Addr: uint64(0x40000 + i*4096), Lat: 1})
	}
	r := &rig{}
	r.low = cache.NewFixedLatency(&r.q, 300)
	var err error
	r.l1i, err = cache.New(&r.q, cache.Config{Name: "L1I", Latency: 1, Perfect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.l1d, err = cache.New(&r.q, cache.Config{Name: "L1D", SizeBytes: 4096, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 2}, r.low)
	if err != nil {
		t.Fatal(err)
	}
	r.cpu, err = New(&r.q, cfg, []Source{stores}, r.l1i, r.l1d)
	if err != nil {
		t.Fatal(err)
	}
	r.run(250_000)
	// Throughput is MSHR-bound (~150 cycles/store with 2 MSHRs at 300-cycle
	// memory); the point is forward progress, not speed.
	if got := r.cpu.Committed(0); got < 1000 {
		t.Fatalf("committed only %d stores: store path wedged", got)
	}
}

func TestEightThreadsShareFairly(t *testing.T) {
	// Eight identical compute threads must end up within 2× of each other.
	cfg := DefaultConfig()
	cfg.Policy = ICOUNT
	srcs := make([]Source, 8)
	for i := range srcs {
		srcs[i] = nops()
	}
	r := newRig(t, cfg, srcs...)
	r.run(5000)
	lo, hi := ^uint64(0), uint64(0)
	for i := 0; i < 8; i++ {
		c := r.cpu.Committed(i)
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo == 0 || hi > lo*2 {
		t.Fatalf("unfair sharing: min %d, max %d", lo, hi)
	}
}
