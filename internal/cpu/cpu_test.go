package cpu

import (
	"testing"

	"smtdram/internal/cache"
	"smtdram/internal/event"
	"smtdram/internal/workload"
)

// script replays a fixed instruction slice, then repeats its last
// instruction forever (PCs keep advancing to stay realistic).
type script struct {
	ins []workload.Instr
	i   int
	pc  uint64
}

func (s *script) Next() workload.Instr {
	var in workload.Instr
	if s.i < len(s.ins) {
		in = s.ins[s.i]
		s.i++
	} else if len(s.ins) > 0 {
		in = s.ins[len(s.ins)-1]
		in.Taken = false
		in.Mispredict = false
	}
	if in.PC == 0 {
		in.PC = s.pc
	}
	s.pc = in.PC + 4
	if in.Lat == 0 {
		in.Lat = 1
	}
	return in
}

// nops returns an endless stream of independent single-cycle integer ops.
func nops() *script {
	return &script{ins: []workload.Instr{{Kind: workload.IntOp, Lat: 1}}}
}

type rig struct {
	q   event.Queue
	cpu *CPU
	l1i *cache.Level
	l1d *cache.Level
	low *cache.FixedLatency
}

// newRig builds a CPU with perfect L1I and a small real L1D over a
// fixed-latency memory.
func newRig(t *testing.T, cfg Config, srcs ...Source) *rig {
	t.Helper()
	r := &rig{}
	r.low = cache.NewFixedLatency(&r.q, 200)
	var err error
	r.l1i, err = cache.New(&r.q, cache.Config{Name: "L1I", Latency: 1, Perfect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.l1d, err = cache.New(&r.q, cache.Config{Name: "L1D", SizeBytes: 4096, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 8}, r.low)
	if err != nil {
		t.Fatal(err)
	}
	r.cpu, err = New(&r.q, cfg, srcs, r.l1i, r.l1d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func (r *rig) run(cycles uint64) {
	for c := uint64(1); c <= cycles; c++ {
		r.q.RunUntil(c)
		r.cpu.Tick(c)
	}
}

func TestValidateConfig(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.IntIQ = 0
	if bad.Validate() == nil {
		t.Fatal("Validate accepted zero issue queue")
	}
	if _, err := New(&event.Queue{}, bad, []Source{nops()}, nil, nil); err == nil {
		t.Fatal("New accepted invalid config")
	}
	if _, err := New(&event.Queue{}, DefaultConfig(), nil, nil, nil); err == nil {
		t.Fatal("New accepted zero threads")
	}
}

func TestStraightLineIPC(t *testing.T) {
	r := newRig(t, DefaultConfig(), nops())
	r.run(2000)
	ipc := float64(r.cpu.Committed(0)) / float64(r.cpu.Cycles)
	// Independent 1-cycle int ops, width 8 everywhere but a single thread
	// with fetch-block effects: expect high IPC, bounded by width.
	if ipc < 5 || ipc > 8 {
		t.Fatalf("straight-line IPC = %.2f, want within (5, 8]", ipc)
	}
}

func TestDependentChainSerializes(t *testing.T) {
	// Every op depends on the previous: IPC must collapse toward 1.
	chain := &script{ins: []workload.Instr{{Kind: workload.IntOp, Lat: 1, Dep1: 1}}}
	r := newRig(t, DefaultConfig(), chain)
	r.run(2000)
	ipc := float64(r.cpu.Committed(0)) / float64(r.cpu.Cycles)
	if ipc > 1.2 {
		t.Fatalf("dependent-chain IPC = %.2f, want ≈1", ipc)
	}
	if ipc < 0.5 {
		t.Fatalf("dependent-chain IPC = %.2f: pipeline wedged", ipc)
	}
}

func TestFPWidthLimits(t *testing.T) {
	// Independent FP ops: issue width 4 and only 2 FPALUs → IPC ≤ 2.
	fp := &script{ins: []workload.Instr{{Kind: workload.FPOp, Lat: 4}}}
	r := newRig(t, DefaultConfig(), fp)
	r.run(3000)
	ipc := float64(r.cpu.Committed(0)) / float64(r.cpu.Cycles)
	if ipc > 2.05 {
		t.Fatalf("FP IPC = %.2f exceeds FPALU throughput of 2", ipc)
	}
	if ipc < 1.0 {
		t.Fatalf("FP IPC = %.2f: FP pipeline underperforming", ipc)
	}
}

func TestLoadMissStallsAndRecovers(t *testing.T) {
	// A pointer-chase: each load depends on the previous and misses (new
	// lines). Progress is gated by the 200-cycle memory.
	var ins []workload.Instr
	for i := 0; i < 50; i++ {
		ins = append(ins, workload.Instr{Kind: workload.Load, Addr: uint64(0x10000 + i*4096), Dep1: 1, Lat: 1})
	}
	r := newRig(t, DefaultConfig(), &script{ins: ins})
	r.run(40000)
	if got := r.cpu.Committed(0); got < 50 {
		t.Fatalf("committed %d, want ≥ 50 (chain must complete)", got)
	}
	loads, _ := r.cpu.LoadsStores(0)
	if loads < 50 {
		t.Fatalf("issued %d loads, want ≥ 50", loads)
	}
	if r.l1d.Stats.Misses < 40 {
		t.Fatalf("L1D saw %d misses, want ≈50", r.l1d.Stats.Misses)
	}
}

func TestStoresReachCache(t *testing.T) {
	st := &script{ins: []workload.Instr{{Kind: workload.Store, Addr: 0x9000, Lat: 1}}}
	r := newRig(t, DefaultConfig(), st)
	r.run(3000)
	_, stores := r.cpu.LoadsStores(0)
	if stores == 0 {
		t.Fatal("no stores issued")
	}
	if r.l1d.Stats.Accesses == 0 {
		t.Fatal("stores never reached the L1D")
	}
}

func TestMispredictSquashReplaysCorrectly(t *testing.T) {
	// A mispredicted branch every 20 instructions. All instructions must
	// still commit exactly once, in order (committed count grows without
	// double-count: we use a target to check).
	var ins []workload.Instr
	for i := 0; i < 400; i++ {
		if i%20 == 19 {
			ins = append(ins, workload.Instr{Kind: workload.Branch, Lat: 1, Mispredict: true})
		} else {
			ins = append(ins, workload.Instr{Kind: workload.IntOp, Lat: 1})
		}
	}
	r := newRig(t, DefaultConfig(), &script{ins: ins})
	r.cpu.SetTarget(0, 400)
	r.run(20000)
	if r.cpu.Committed(0) < 400 {
		t.Fatalf("committed %d, want ≥400", r.cpu.Committed(0))
	}
	if r.cpu.Squashes(0) == 0 {
		t.Fatal("no squashes recorded despite mispredicted branches")
	}
	if r.cpu.FinishedAt(0) == 0 {
		t.Fatal("target not reached")
	}
}

func TestMispredictsReduceIPC(t *testing.T) {
	mk := func(mispredict bool) float64 {
		var ins []workload.Instr
		for i := 0; i < 10; i++ {
			ins = append(ins, workload.Instr{Kind: workload.IntOp, Lat: 1})
		}
		ins = append(ins, workload.Instr{Kind: workload.Branch, Lat: 1, Mispredict: mispredict})
		// Loop the block forever.
		s := &script{ins: ins}
		orig := s.ins
		s.ins = nil
		for i := 0; i < 1000; i++ {
			s.ins = append(s.ins, orig...)
		}
		r := newRig(t, DefaultConfig(), s)
		r.run(4000)
		return float64(r.cpu.Committed(0)) / float64(r.cpu.Cycles)
	}
	clean, dirty := mk(false), mk(true)
	if dirty >= clean {
		t.Fatalf("mispredicts did not hurt: clean %.2f vs dirty %.2f", clean, dirty)
	}
}

func TestSMTThroughputBeatsSingleThread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = ICOUNT
	// One dependent chain alone vs two chains together: SMT should roughly
	// double total throughput.
	chain := func() Source {
		return &script{ins: []workload.Instr{{Kind: workload.IntOp, Lat: 1, Dep1: 1}}}
	}
	r1 := newRig(t, cfg, chain())
	r1.run(3000)
	single := float64(r1.cpu.TotalCommitted) / float64(r1.cpu.Cycles)

	r2 := newRig(t, cfg, chain(), chain())
	r2.run(3000)
	dual := float64(r2.cpu.TotalCommitted) / float64(r2.cpu.Cycles)
	if dual < 1.7*single {
		t.Fatalf("SMT throughput %.2f vs single %.2f: expected ≈2×", dual, single)
	}
}

func TestICOUNTPrefersLeastLoadedThread(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = ICOUNT
	r := newRig(t, cfg, nops(), nops())
	// Pre-load thread 0's frontend so ICOUNT must prefer thread 1.
	t0 := r.cpu.threads[0]
	for i := 0; i < 20; i++ {
		t0.frontend = append(t0.frontend, feEntry{readyAt: 1 << 30})
	}
	order := r.cpu.fetchOrder(0)
	if len(order) != 2 || order[0].id != 1 {
		t.Fatalf("ICOUNT order = %v, want thread 1 first", ids(order))
	}
}

func TestFetchStallExcludesL2MissThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = FetchStall
	r := newRig(t, cfg, nops(), nops())
	// Fake a long-outstanding load on thread 0.
	t0 := r.cpu.threads[0]
	u := &t0.rob[0]
	*u = uop{in: workload.Instr{Kind: workload.Load}, state: stIssued, issuedAt: 0, doneAt: pendingDone}
	t0.inFlight = append(t0.inFlight, u)
	now := uint64(100) // way past the L2 threshold
	order := r.cpu.fetchOrder(now)
	if len(order) != 1 || order[0].id != 1 {
		t.Fatalf("FetchStall order = %v, want only thread 1", ids(order))
	}
	// If every thread has an L2 miss, one must stay eligible.
	t1 := r.cpu.threads[1]
	v := &t1.rob[0]
	*v = uop{in: workload.Instr{Kind: workload.Load}, state: stIssued, issuedAt: 0, doneAt: pendingDone}
	t1.inFlight = append(t1.inFlight, v)
	order = r.cpu.fetchOrder(now)
	if len(order) != 1 {
		t.Fatalf("FetchStall with all threads missing kept %d threads, want 1", len(order))
	}
}

func TestDGExcludesAllMissThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DG
	r := newRig(t, cfg, nops(), nops())
	for _, th := range r.cpu.threads {
		u := &th.rob[0]
		*u = uop{in: workload.Instr{Kind: workload.Load}, state: stIssued, issuedAt: 0, doneAt: pendingDone}
		th.inFlight = append(th.inFlight, u)
	}
	if order := r.cpu.fetchOrder(50); len(order) != 0 {
		t.Fatalf("DG kept %d threads with outstanding data misses, want 0", len(order))
	}
}

func TestDWarnDemotesButKeepsMissThreads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWarn
	r := newRig(t, cfg, nops(), nops())
	t0 := r.cpu.threads[0]
	u := &t0.rob[0]
	*u = uop{in: workload.Instr{Kind: workload.Load}, state: stIssued, issuedAt: 0, doneAt: pendingDone}
	t0.inFlight = append(t0.inFlight, u)
	order := r.cpu.fetchOrder(50)
	if len(order) != 2 {
		t.Fatalf("DWarn dropped a thread: %v", ids(order))
	}
	if order[0].id != 1 || order[1].id != 0 {
		t.Fatalf("DWarn order = %v, want miss-free thread first", ids(order))
	}
}

func TestRoundRobinRotates(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = RoundRobin
	r := newRig(t, cfg, nops(), nops(), nops())
	first := r.cpu.fetchOrder(0)[0].id
	second := r.cpu.fetchOrder(0)[0].id
	if first == second {
		t.Fatalf("round-robin did not rotate: %d then %d", first, second)
	}
}

func TestParseFetchPolicy(t *testing.T) {
	for _, p := range append(FetchPolicies(), RoundRobin) {
		got, err := ParseFetchPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseFetchPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseFetchPolicy("bogus"); err == nil {
		t.Fatal("ParseFetchPolicy accepted bogus")
	}
	if FetchPolicy(77).String() == "" {
		t.Fatal("unknown policy must print")
	}
}

func TestTargetAndAllFinished(t *testing.T) {
	r := newRig(t, DefaultConfig(), nops(), nops())
	r.cpu.SetTarget(0, 100)
	if r.cpu.AllFinished() {
		t.Fatal("AllFinished before running")
	}
	r.run(2000)
	if !r.cpu.AllFinished() {
		t.Fatalf("threads did not finish: %d, %d committed", r.cpu.Committed(0), r.cpu.Committed(1))
	}
	if r.cpu.FinishedAt(0) == 0 || r.cpu.FinishedAt(1) == 0 {
		t.Fatal("finish cycles not recorded")
	}
}

func TestRealWorkloadRuns(t *testing.T) {
	app, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGen(app, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A realistic L1D (gzip's hot pool fits) over a 30-cycle lower level.
	r := &rig{}
	r.low = cache.NewFixedLatency(&r.q, 30)
	r.l1i, err = cache.New(&r.q, cache.Config{Name: "L1I", Latency: 1, Perfect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.l1d, err = cache.New(&r.q, cache.Config{Name: "L1D", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 16}, r.low)
	if err != nil {
		t.Fatal(err)
	}
	r.cpu, err = New(&r.q, DefaultConfig(), []Source{g}, r.l1i, r.l1d)
	if err != nil {
		t.Fatal(err)
	}
	r.run(20000)
	if r.cpu.Committed(0) < 15000 {
		t.Fatalf("gzip model committed only %d in 20k cycles (IPC %.2f)",
			r.cpu.Committed(0), float64(r.cpu.Committed(0))/20000)
	}
}

// Property-ish: under any mix of squashes and misses, committed never
// exceeds fetched-and-dispatched, the IQ occupancy counters never go
// negative, and the pipeline drains to a consistent state.
func TestInvariantCountersStayConsistent(t *testing.T) {
	app, _ := workload.ByName("mcf")
	g, _ := workload.NewGen(app, 0, 3)
	r := newRig(t, DefaultConfig(), g)
	for c := uint64(1); c <= 30000; c++ {
		r.q.RunUntil(c)
		r.cpu.Tick(c)
		if r.cpu.intIQUsed < 0 || r.cpu.fpIQUsed < 0 || r.cpu.lqUsed < 0 || r.cpu.sqUsed < 0 {
			t.Fatalf("cycle %d: negative resource counter (%d,%d,%d,%d)",
				c, r.cpu.intIQUsed, r.cpu.fpIQUsed, r.cpu.lqUsed, r.cpu.sqUsed)
		}
		if r.cpu.intIQUsed > r.cpu.cfg.IntIQ || r.cpu.fpIQUsed > r.cpu.cfg.FPIQ {
			t.Fatalf("cycle %d: IQ overflow (%d/%d int, %d/%d fp)",
				c, r.cpu.intIQUsed, r.cpu.cfg.IntIQ, r.cpu.fpIQUsed, r.cpu.cfg.FPIQ)
		}
	}
	if r.cpu.Committed(0) == 0 {
		t.Fatal("mcf made no progress")
	}
}

func ids(ts []*thread) []int {
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = t.id
	}
	return out
}
