// Package cpu models the SMT out-of-order processor core: per-thread PCs and
// reorder buffers, shared fetch bandwidth, issue queues, functional units and
// caches, the four instruction-fetch policies the paper compares, branch
// misprediction squash with replay, and MSHR-limited non-blocking loads.
//
// The core is cycle-stepped; the memory subsystem below it is event-driven.
// It is not an ISA interpreter: instructions come from the synthetic
// per-application generators in internal/workload, which preserve exactly
// the properties the paper's memory-system study depends on (clustered
// misses, bounded MLP, resource occupancy under stall). See DESIGN.md §2.
package cpu

import (
	"fmt"

	"smtdram/internal/cache"
	"smtdram/internal/event"
	"smtdram/internal/mem"
	"smtdram/internal/obs"
	"smtdram/internal/snap"
	"smtdram/internal/workload"
)

// Config sizes the core, following Table 1 of the paper.
type Config struct {
	FetchWidth        int         // instructions fetched per cycle (8)
	FetchMaxThreads   int         // threads sharing one cycle's fetch (2)
	FrontendDelay     uint64      // fetch→dispatch latency, from the 11-stage pipe (8)
	FrontendCap       int         // per-thread fetch buffer entries (64: covers FetchWidth × FrontendDelay)
	DispatchWidth     int         // instructions dispatched per cycle (8)
	IntIssueWidth     int         // 8
	FPIssueWidth      int         // 4
	IntIQ             int         // shared integer issue-queue entries (64)
	FPIQ              int         // shared FP issue-queue entries (32)
	ROBPerThread      int         // reorder-buffer entries per thread (256)
	LQ, SQ            int         // shared load/store queue entries (64/64)
	IntALU, IntMult   int         // 6, 6
	FPALU, FPMult     int         // 2, 2
	CommitWidth       int         // 8
	MispredictPenalty uint64      // 9 cycles
	L1DLatency        uint64      // used to classify in-flight loads as misses (1)
	L2Latency         uint64      // used to classify in-flight loads as L2 misses (10)
	Policy            FetchPolicy // instruction fetch policy
	// MissIQAllowance caps the issue-queue entries a thread may hold while
	// it is experiencing a miss, under the miss-aware fetch policies
	// (FetchStall, DG, DWarn). Real machines get this bound for free from
	// their shallow decode/rename stages: once fetch is gated, at most a
	// couple of fetch blocks can still dispatch. Our frontend buffer is
	// deep (it models the whole 8-wide × 8-stage pipe), so the gate is
	// applied at dispatch instead. ICOUNT has no such gate — which is
	// exactly why it clogs on MEM-heavy mixes in the paper.
	MissIQAllowance int
}

// DefaultConfig returns the paper's Table 1 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        8,
		FetchMaxThreads:   2,
		FrontendDelay:     8,
		FrontendCap:       64,
		DispatchWidth:     8,
		IntIssueWidth:     8,
		FPIssueWidth:      4,
		IntIQ:             64,
		FPIQ:              32,
		ROBPerThread:      256,
		LQ:                64,
		SQ:                64,
		IntALU:            6,
		IntMult:           6,
		FPALU:             2,
		FPMult:            2,
		CommitWidth:       8,
		MispredictPenalty: 9,
		L1DLatency:        1,
		L2Latency:         10,
		Policy:            DWarn,
		MissIQAllowance:   8,
	}
}

// Validate rejects configurations the simulator cannot run.
func (c Config) Validate() error {
	for _, v := range []int{
		c.FetchWidth, c.FetchMaxThreads, c.FrontendCap, c.DispatchWidth,
		c.IntIssueWidth, c.FPIssueWidth, c.IntIQ, c.FPIQ, c.ROBPerThread,
		c.LQ, c.SQ, c.IntALU, c.IntMult, c.FPALU, c.FPMult, c.CommitWidth,
	} {
		if v <= 0 {
			return fmt.Errorf("cpu: non-positive config field in %+v", c)
		}
	}
	return nil
}

// uop states.
const (
	stWaiting uint8 = iota // in ROB and issue queue
	stIssued               // executing (or load in flight)
	stDone                 // result available
)

const noDep = ^uint64(0)
const pendingDone = ^uint64(0)

// uop is one in-flight instruction.
type uop struct {
	in         workload.Instr // retained for replay after squash
	seq        uint64
	epoch      uint64
	tid        int32 // owning hardware thread
	state      uint8
	doneAt     uint64 // pendingDone while a load is in flight
	issuedAt   uint64
	dep1, dep2 uint64 // absolute producer sequence numbers (noDep = none)

	// readySeen/readyAt memoize the dependence-readiness bound
	// max(depReadyAt(dep1), depReadyAt(dep2)) as of the owning thread's
	// wakeSeq epoch. Producer completion times only ever move earlier, and
	// every state change that can move a bound (an issue granting a finite
	// doneAt, a load fill, a squash) bumps wakeSeq, so a cached bound with a
	// matching epoch is exact: issue's scan and the quiescence probe skip the
	// two-ROB-slot walk for the common not-yet-ready case.
	readySeen uint64
	readyAt   uint64
}

type feEntry struct {
	in      workload.Instr
	readyAt uint64 // cycle the instruction reaches dispatch
}

// thread is the per-hardware-thread state.
type thread struct {
	id  int
	gen Source

	peeked    workload.Instr // valid only while hasPeeked
	hasPeeked bool
	replay    []workload.Instr
	// replayScratch is the spare buffer resolveBranch builds the next replay
	// list into; it swaps with replay so squashes stop allocating once the
	// two buffers have grown.
	replayScratch []workload.Instr
	// frontend is a head-indexed deque: live entries are frontend[feHead:],
	// dispatch pops by advancing feHead, and fePush compacts in place instead
	// of re-slicing away the buffer's capacity.
	frontend  []feEntry
	feHead    int
	rob       []uop
	headSeq   uint64
	nextSeq   uint64
	epoch     uint64
	iqInt     int
	iqFP      int
	lq, sq    int // this thread's LQ/SQ occupancy
	committed uint64

	// wakeSeq is the readiness-cache epoch: bumped whenever this thread's
	// dependence-readiness picture can change — an instruction issues with a
	// finite completion time, a load fill lands. It versions uop.readySeen.
	wakeSeq uint64

	inFlight []*uop // loads in flight, issue order (for miss classification)

	curILine          uint64
	imissPending      bool
	fetchBlockedUntil uint64

	// warmedAt/finishedAt are the cycles the thread crossed the warmup and
	// warmup+target instruction counts (0 while running); the run harness
	// computes IPC as target/(finishedAt-warmedAt).
	warmedAt   uint64
	finishedAt uint64

	// stats
	squashes uint64
	loads    uint64
	stores   uint64
	imisses  uint64
	gated    uint64 // dispatch cycles blocked by the fetch policy's gate
}

func (t *thread) robCount() int { return int(t.nextSeq - t.headSeq) }

// hasL1DMiss reports whether the thread is experiencing a data-cache miss:
// its oldest in-flight load has been outstanding longer than an L1 hit.
func (t *thread) hasL1DMiss(now uint64, cfg Config) bool {
	return t.oldestLoadAge(now) > cfg.L1DLatency+2
}

// hasL2Miss reports whether the oldest in-flight load has been outstanding
// longer than an L2 hit would take.
func (t *thread) hasL2Miss(now uint64, cfg Config) bool {
	return t.oldestLoadAge(now) > cfg.L1DLatency+cfg.L2Latency+4
}

func (t *thread) oldestLoadAge(now uint64) uint64 {
	for len(t.inFlight) > 0 {
		u := t.inFlight[0]
		if u.state == stDone || (u.state == stIssued && u.doneAt <= now) || u.in.Kind != workload.Load {
			t.inFlight = t.inFlight[1:]
			continue
		}
		return now - u.issuedAt
	}
	return 0
}

// next peeks the next instruction to fetch without consuming it. The peeked
// instruction lives in the thread struct by value, so peeking never escapes
// to the heap.
func (t *thread) next() *workload.Instr {
	if !t.hasPeeked {
		if len(t.replay) > 0 {
			t.peeked = t.replay[0]
			t.replay = t.replay[1:]
		} else {
			t.peeked = t.gen.Next()
		}
		t.hasPeeked = true
	}
	return &t.peeked
}

func (t *thread) consume() workload.Instr {
	t.hasPeeked = false
	return t.peeked
}

// feLen is the live frontend-buffer depth.
func (t *thread) feLen() int { return len(t.frontend) - t.feHead }

// fePush appends to the frontend deque, reclaiming popped-off head space
// rather than growing the buffer.
func (t *thread) fePush(e feEntry) {
	if t.feHead > 0 {
		if t.feHead == len(t.frontend) {
			t.frontend = t.frontend[:0]
			t.feHead = 0
		} else if len(t.frontend) == cap(t.frontend) {
			n := copy(t.frontend, t.frontend[t.feHead:])
			t.frontend = t.frontend[:n]
			t.feHead = 0
		}
	}
	t.frontend = append(t.frontend, e)
}

type pendingStore struct {
	addr uint64
	meta cache.Meta
}

// loadFill is the recyclable completion carrier of an in-flight load
// (event.Filler), handed to the L1D as the fill callback. The cache either
// retains an accepted fill carrier until it fires exactly once, or — when
// ReadLine returns false — drops it immediately, so the carrier can be
// released at exactly those two points.
type loadFill struct {
	c          *CPU
	t          *thread
	seq, epoch uint64
}

// OnFill implements event.Filler: the load's line arrived.
func (f *loadFill) OnFill(at uint64) {
	c, t, seq, epoch := f.c, f.t, f.seq, f.epoch
	f.t = nil
	c.wake = true
	c.freeLoadFills = append(c.freeLoadFills, f)
	v := &t.rob[seq%uint64(len(t.rob))]
	if v.seq == seq && v.epoch == epoch && v.state == stIssued {
		v.doneAt = at
		t.wakeSeq++ // the load's consumers may have become ready
		c.issueDirty = true
	}
}

// SnapRef implements event.RefMaker.
func (f *loadFill) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCPULoadFill, Args: []uint64{uint64(f.t.id), f.seq, f.epoch}}
}

func (c *CPU) getLoadFill() *loadFill {
	if n := len(c.freeLoadFills); n > 0 {
		f := c.freeLoadFills[n-1]
		c.freeLoadFills[n-1] = nil
		c.freeLoadFills = c.freeLoadFills[:n-1]
		return f
	}
	return &loadFill{c: c}
}

// ifill is the recyclable I-cache fill carrier (same lifecycle as loadFill:
// retained only by an accepted miss, fires exactly once).
type ifill struct {
	c     *CPU
	t     *thread
	line  uint64
	epoch uint64
}

// OnFill implements event.Filler: the instruction line arrived.
func (f *ifill) OnFill(uint64) {
	c, t, line, epoch := f.c, f.t, f.line, f.epoch
	f.t = nil
	c.wake = true
	c.freeIFills = append(c.freeIFills, f)
	if t.epoch == epoch {
		t.imissPending = false
		t.curILine = line
	}
}

// SnapRef implements event.RefMaker.
func (f *ifill) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCPUIFill, Args: []uint64{uint64(f.t.id), f.line, f.epoch}}
}

func (c *CPU) getIFill() *ifill {
	if n := len(c.freeIFills); n > 0 {
		f := c.freeIFills[n-1]
		c.freeIFills[n-1] = nil
		c.freeIFills = c.freeIFills[:n-1]
		return f
	}
	return &ifill{c: c}
}

// brEvent is the recyclable branch-resolution event (event.Handler); a
// scheduled event fires exactly once, so it releases itself on fire.
type brEvent struct {
	c          *CPU
	t          *thread
	seq, epoch uint64
}

func (e *brEvent) OnEvent(at uint64) {
	c, t, seq, epoch := e.c, e.t, e.seq, e.epoch
	e.t = nil
	c.wake = true
	c.freeBrEvents = append(c.freeBrEvents, e)
	c.resolveBranch(at, t, seq, epoch)
}

// SnapRef implements event.RefMaker.
func (e *brEvent) SnapRef() snap.Ref {
	return snap.Ref{Kind: snap.KCPUBranch, Args: []uint64{uint64(e.t.id), e.seq, e.epoch}}
}

func (c *CPU) getBrEvent() *brEvent {
	if n := len(c.freeBrEvents); n > 0 {
		e := c.freeBrEvents[n-1]
		c.freeBrEvents[n-1] = nil
		c.freeBrEvents = c.freeBrEvents[:n-1]
		return e
	}
	return &brEvent{c: c}
}

// CPU is the simulated SMT processor.
type CPU struct {
	cfg      Config
	q        *event.Queue
	threads  []*thread
	l1i, l1d *cache.Level

	waiting []*uop // issue-queue contents in dispatch order

	// issueIdleUntil/issueDirty memoize a whole no-op issue scan: after a
	// scan that issues nothing and parks nothing, every live waiting entry
	// carries a fresh readiness bound, so the scan's outcome is fixed until
	// the earliest such bound (issueIdleUntil) arrives, a fill bumps a
	// thread's wakeSeq, or dispatch adds an entry (both set issueDirty).
	// Skipped scans have no observable effect: they would issue nothing,
	// touch no stat, and only defer dropping already-inert entries.
	issueIdleUntil uint64
	issueDirty     bool

	rrFetch    int
	rrDispatch int
	rrCommit   int

	intIQUsed, fpIQUsed int
	lqUsed, sqUsed      int

	// pendingStores is a head-indexed deque (live entries psHead:), drained
	// in place so the committed-store buffer never reallocates in steady
	// state.
	pendingStores []pendingStore
	psHead        int

	scratchThreads []*thread
	scratchOrder   []*thread

	// Free lists for the per-event callback carriers; each carries a closure
	// bound once at creation, so load fills, I-miss fills, and branch
	// resolutions stop allocating once the pools are warm.
	freeLoadFills []*loadFill
	freeIFills    []*ifill
	freeBrEvents  []*brEvent

	warmup uint64 // per-thread instructions to retire before measurement
	target uint64 // per-thread committed-instruction goal past warmup (0 = none)

	// memPressure, when set, reports a thread's pending DRAM request count
	// (the Coop fetch policy's input; see SetMemPressure).
	memPressure func(thread int) int

	// wake is the two-speed clock's dirty flag: set whenever an event
	// delivers CPU-visible state (a load fill, an I-fill, a branch
	// resolution, any L1 install). The run loop's deep-skip span ends at
	// the first event cycle that sets it (see TakeWake).
	wake bool
	// acted records whether the current Tick made real progress (see Acted).
	acted bool

	// Stats
	Cycles         uint64
	TotalCommitted uint64
}

// Source produces a thread's dynamic instruction stream. *workload.Gen is
// the production implementation; tests substitute scripted streams.
type Source interface {
	Next() workload.Instr
}

// New assembles a CPU over the given per-thread instruction sources and L1
// caches.
func New(q *event.Queue, cfg Config, gens []Source, l1i, l1d *cache.Level) (*CPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, fmt.Errorf("cpu: no threads")
	}
	if len(gens) > 64 {
		// QuietFx tracks gated dispatch in a 64-bit mask; Table 1's SMT
		// contexts number at most 8, so the bound costs nothing real.
		return nil, fmt.Errorf("cpu: %d threads exceeds the 64-context limit", len(gens))
	}
	c := &CPU{
		cfg: cfg, q: q, l1i: l1i, l1d: l1d,
		scratchThreads: make([]*thread, 0, len(gens)),
	}
	for i, g := range gens {
		t := &thread{
			id:       i,
			gen:      g,
			rob:      make([]uop, cfg.ROBPerThread),
			curILine: ^uint64(0),
			// The readiness-cache epoch starts at 1 so a freshly dispatched
			// uop's zero-value readySeen can never alias a live epoch.
			wakeSeq: 1,
		}
		c.threads = append(c.threads, t)
	}
	// Wakeup hints for the two-speed clock: a fill landing in either L1 can
	// change what the next Tick does, so it must end a deep-skip span.
	poke := func() { c.wake = true }
	l1i.Wake = poke
	l1d.Wake = poke
	return c, nil
}

// Threads returns the hardware thread count.
func (c *CPU) Threads() int { return len(c.threads) }

// Committed returns instructions retired by thread i.
func (c *CPU) Committed(i int) uint64 { return c.threads[i].committed }

// FinishedAt returns the cycle thread i crossed the target set by
// SetTarget, or 0 if it has not.
func (c *CPU) FinishedAt(i int) uint64 { return c.threads[i].finishedAt }

// Squashes returns thread i's branch-mispredict squash count.
func (c *CPU) Squashes(i int) uint64 { return c.threads[i].squashes }

// LoadsStores returns thread i's issued memory-operation counts.
func (c *CPU) LoadsStores(i int) (loads, stores uint64) {
	return c.threads[i].loads, c.threads[i].stores
}

// IMisses returns thread i's instruction-cache miss count.
func (c *CPU) IMisses(i int) uint64 { return c.threads[i].imisses }

// GatedDispatches returns how many times thread i's dispatch was cut short by
// the fetch policy's resource gate (see dispatchGated).
func (c *CPU) GatedDispatches(i int) uint64 { return c.threads[i].gated }

// RegisterMetrics exposes core occupancies and counters through the metrics
// registry. Safe on a nil registry.
func (c *CPU) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("cpu.committed", func(uint64) float64 { return float64(c.TotalCommitted) })
	reg.Sampled("cpu.iq_int_used", func(uint64) float64 { return float64(c.intIQUsed) })
	reg.Sampled("cpu.iq_fp_used", func(uint64) float64 { return float64(c.fpIQUsed) })
	for i, t := range c.threads {
		t := t
		reg.Sampled(fmt.Sprintf("cpu.inflight_loads.t%d", i),
			func(uint64) float64 { return float64(len(t.inFlight)) })
		reg.Sampled(fmt.Sprintf("cpu.rob.t%d", i),
			func(uint64) float64 { return float64(t.robCount()) })
		reg.Gauge(fmt.Sprintf("cpu.gated_dispatch.t%d", i),
			func(uint64) float64 { return float64(t.gated) })
		reg.Gauge(fmt.Sprintf("cpu.committed.t%d", i),
			func(uint64) float64 { return float64(t.committed) })
	}
}

// SetMemPressure wires the memory controller's live per-thread pending
// request counts into the Coop fetch policy.
func (c *CPU) SetMemPressure(f func(thread int) int) { c.memPressure = f }

// SetTarget arms per-thread completion bookkeeping: each thread first
// retires warmup instructions (cache warmup, mirroring the paper's
// fast-forward), then the CPU records warmedAt, and finishedAt once target
// further instructions commit. Threads keep executing past their target (to
// preserve contention), as in the paper's methodology.
func (c *CPU) SetTarget(warmup, target uint64) {
	c.warmup = warmup
	c.target = target
}

// WarmedAt returns the cycle thread i finished its warmup instructions
// (0 while still warming when a warmup was configured).
func (c *CPU) WarmedAt(i int) uint64 { return c.threads[i].warmedAt }

// AllWarmed reports whether every thread has completed warmup.
func (c *CPU) AllWarmed() bool {
	if c.warmup == 0 {
		return true
	}
	for _, t := range c.threads {
		if t.warmedAt == 0 {
			return false
		}
	}
	return true
}

// AllFinished reports whether every thread has crossed the target.
func (c *CPU) AllFinished() bool {
	for _, t := range c.threads {
		if t.finishedAt == 0 {
			return false
		}
	}
	return true
}

// Tick advances the core by one cycle. The caller must have run the event
// queue up to now first.
func (c *CPU) Tick(now uint64) {
	c.Cycles++
	c.acted = false
	c.commit(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
	c.drainStores(now)
}

// Acted reports whether the last Tick made real progress (fetched,
// dispatched, issued, committed, or drained anything). It is a performance
// hint for the run loop — a working machine is rarely about to go quiet, so
// the loop can defer the full NextWorkAt probe until a Tick comes back idle.
// Correctness never depends on it: a false negative merely delays a skip
// window by a cycle, and skipping less is always exact.
func (c *CPU) Acted() bool { return c.acted }

// meta builds the thread-state snapshot piggybacked on memory requests.
func (c *CPU) meta(t *thread, critical bool) cache.Meta {
	return cache.Meta{
		Thread:   t.id,
		Critical: critical,
		State: mem.ThreadState{
			Outstanding:  len(t.inFlight),
			ROBOccupancy: t.robCount(),
			IQOccupancy:  t.iqInt,
		},
	}
}

// ---------------------------------------------------------------- fetch

func (c *CPU) fetch(now uint64) {
	order := c.fetchOrder(now)
	if len(order) > c.cfg.FetchMaxThreads {
		order = order[:c.cfg.FetchMaxThreads]
	}
	budget := c.cfg.FetchWidth
	for _, t := range order {
		if budget == 0 {
			break
		}
		budget = c.fetchThread(now, t, budget)
	}
}

// fetchThread fetches up to budget instructions for t, stopping at a taken
// branch, an I-cache line miss, or a full frontend. It returns the remaining
// budget.
func (c *CPU) fetchThread(now uint64, t *thread, budget int) int {
	for budget > 0 && t.feLen() < c.cfg.FrontendCap {
		in := t.next()
		line := in.PC &^ 63
		if line != t.curILine {
			f := c.getIFill()
			f.t, f.line, f.epoch = t, line, t.epoch
			hit, accepted := c.l1i.Probe(now, line, c.meta(t, false), f)
			if hit || !accepted {
				// The cache retains the callback only for an accepted miss.
				f.t = nil
				c.freeIFills = append(c.freeIFills, f)
			}
			if !hit {
				if accepted {
					t.imissPending = true
					t.imisses++
					c.acted = true
				}
				return budget // stalls this thread; instruction stays peeked
			}
			t.curILine = line
		}
		inst := t.consume()
		t.fePush(feEntry{in: inst, readyAt: now + c.cfg.FrontendDelay})
		budget--
		c.acted = true
		if inst.Kind == workload.Branch && inst.Taken {
			break // a taken branch ends the fetch block
		}
	}
	return budget
}

// ---------------------------------------------------------------- dispatch

func (c *CPU) dispatch(now uint64) {
	budget := c.cfg.DispatchWidth
	n := len(c.threads)
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(i+c.rrDispatch)%n]
		for budget > 0 {
			if t.feLen() == 0 || t.frontend[t.feHead].readyAt > now {
				break
			}
			if c.dispatchGated(now, t) {
				t.gated++
				break
			}
			if !c.dispatchOne(t) {
				break
			}
			budget--
			c.acted = true
		}
	}
	c.rrDispatch++
}

// dispatchGated applies the fetch policies' resource feedback at the
// dispatch stage: when the shared issue queues are under pressure, a thread
// the policy considers stalled may not grow its share past an allowance.
//
// Under the miss-aware policies (FetchStall, DG, DWarn) the allowance is
// MissIQAllowance for threads experiencing a miss. Under ICOUNT the
// allowance is the equal share of the queues — ICOUNT's priority function
// drives every thread's in-flight count toward the mean, which caps a
// stalled thread's occupancy near the equal-share point but no lower; this
// is exactly why ICOUNT survives at 2–4 threads but clogs on 8-thread MEM
// mixes in the paper, where even equal shares saturate the queues.
func (c *CPU) dispatchGated(now uint64, t *thread) bool {
	n := len(c.threads)
	if n == 1 {
		return false
	}
	total := c.cfg.IntIQ + c.cfg.FPIQ
	switch c.cfg.Policy {
	case FetchStall:
		return t.hasL2Miss(now, c.cfg) && t.iqInt+t.iqFP >= c.missAllowance(total, n)
	case DG, DWarn, Coop:
		return t.hasL1DMiss(now, c.cfg) && t.iqInt+t.iqFP >= c.missAllowance(total, n)
	case ICOUNT, RoundRobin:
		// ICOUNT's fetch feedback equalizes per-thread in-flight counts at
		// an equilibrium set by the front-end depth, independent of thread
		// count: roughly a quarter of the queue capacity here. With few
		// threads that leaves slack; with eight threads the equal shares sum
		// to well past capacity — ICOUNT clogs, exactly as in the paper.
		return t.iqInt+t.iqFP >= total/4
	default:
		return false
	}
}

// missAllowance is the issue-queue share a stalled thread may keep under the
// miss-aware policies: half its equal share, floored at MissIQAllowance. At
// two threads this leaves plenty of memory-level parallelism to the stalled
// thread (the queues are not contended); at eight it pins stalled threads to
// the floor, which is where the policies' anti-clog value shows.
func (c *CPU) missAllowance(total, threads int) int {
	share := total / (2 * threads)
	if share < c.cfg.MissIQAllowance {
		return c.cfg.MissIQAllowance
	}
	return share
}

// dispatchOne moves t's oldest frontend instruction into the ROB and issue
// queue; it returns false when a resource (ROB, IQ, LSQ) is exhausted.
func (c *CPU) dispatchOne(t *thread) bool {
	if t.robCount() >= c.cfg.ROBPerThread {
		return false
	}
	in := t.frontend[t.feHead].in
	fp := in.Kind == workload.FPOp
	if fp {
		if c.fpIQUsed >= c.cfg.FPIQ {
			return false
		}
	} else if c.intIQUsed >= c.cfg.IntIQ {
		return false
	}
	switch in.Kind {
	case workload.Load:
		if c.lqUsed >= c.cfg.LQ {
			return false
		}
	case workload.Store:
		if c.sqUsed >= c.cfg.SQ {
			return false
		}
	}

	seq := t.nextSeq
	t.nextSeq++
	u := &t.rob[seq%uint64(len(t.rob))]
	*u = uop{in: in, seq: seq, epoch: t.epoch, tid: int32(t.id), state: stWaiting, doneAt: pendingDone}
	u.dep1, u.dep2 = depSeq(seq, in.Dep1), depSeq(seq, in.Dep2)

	if fp {
		c.fpIQUsed++
		t.iqFP++
	} else {
		c.intIQUsed++
		t.iqInt++
	}
	switch in.Kind {
	case workload.Load:
		c.lqUsed++
		t.lq++
	case workload.Store:
		c.sqUsed++
		t.sq++
	}
	c.waiting = append(c.waiting, u)
	c.issueDirty = true // the new entry may be immediately issuable
	t.feHead++
	if t.feHead == len(t.frontend) {
		t.frontend = t.frontend[:0]
		t.feHead = 0
	}
	return true
}

func depSeq(seq uint64, dist int) uint64 {
	if dist <= 0 || uint64(dist) > seq {
		return noDep
	}
	return seq - uint64(dist)
}

// ---------------------------------------------------------------- issue

func (c *CPU) issue(now uint64) {
	if !c.issueDirty && now < c.issueIdleUntil {
		return // memoized no-op: nothing can become issuable before issueIdleUntil
	}
	intLeft, fpLeft := c.cfg.IntIssueWidth, c.cfg.FPIssueWidth
	aluInt, multInt := c.cfg.IntALU, c.cfg.IntMult
	aluFP, multFP := c.cfg.FPALU, c.cfg.FPMult

	// idle accumulates the min readiness bound over kept live entries; any
	// issue or ready-but-blocked park forces it to 0 (scan again next cycle).
	idle := ^uint64(0)
	issued := false
	keep := c.waiting[:0]
	for _, u := range c.waiting {
		t := c.threads[u.tid]
		if u.epoch == ^uint64(0) || u.state != stWaiting {
			continue // squashed (poisoned) or already issued: drop
		}
		if intLeft == 0 && fpLeft == 0 {
			idle = 0 // readiness unknown: budget ran out before the check
			keep = append(keep, u)
			continue
		}
		if u.readySeen == t.wakeSeq {
			if u.readyAt > now {
				if u.readyAt < idle {
					idle = u.readyAt
				}
				keep = append(keep, u)
				continue
			}
		} else {
			r := t.depReadyAt(u.dep1)
			if r2 := t.depReadyAt(u.dep2); r2 > r {
				r = r2
			}
			u.readySeen, u.readyAt = t.wakeSeq, r
			if r > now {
				if r < idle {
					idle = r
				}
				keep = append(keep, u)
				continue
			}
		}
		fp := u.in.Kind == workload.FPOp
		long := u.in.Lat >= 7
		switch {
		case fp && long:
			if fpLeft == 0 || multFP == 0 {
				idle = 0
				keep = append(keep, u)
				continue
			}
			fpLeft--
			multFP--
		case fp:
			if fpLeft == 0 || aluFP == 0 {
				idle = 0
				keep = append(keep, u)
				continue
			}
			fpLeft--
			aluFP--
		case long:
			if intLeft == 0 || multInt == 0 {
				idle = 0
				keep = append(keep, u)
				continue
			}
			intLeft--
			multInt--
		default:
			if intLeft == 0 || aluInt == 0 {
				idle = 0
				keep = append(keep, u)
				continue
			}
			intLeft--
			aluInt--
		}

		if u.in.Kind == workload.Load {
			if !c.issueLoad(now, t, u) {
				// MSHR full: undo the slot and retry next cycle. The retry
				// bumps MSHRFull every cycle, so the memo must stay off.
				intLeft++
				aluInt++
				idle = 0
				keep = append(keep, u)
				continue
			}
			// A load issues with doneAt still pendingDone: consumers' cached
			// bounds stay infinite until the fill lands (which bumps wakeSeq),
			// so the cache epoch need not move here.
		} else {
			c.issueALU(now, t, u)
			t.wakeSeq++ // a finite doneAt appeared: cached bounds are stale
		}
		// Issued: leave the issue queue.
		issued = true
		c.acted = true
		if fp {
			c.fpIQUsed--
			t.iqFP--
		} else {
			c.intIQUsed--
			t.iqInt--
		}
	}
	c.waiting = keep
	if issued {
		idle = 0 // widths/units refresh next cycle; kept entries may issue then
	}
	c.issueIdleUntil, c.issueDirty = idle, false
}

func (c *CPU) issueALU(now uint64, t *thread, u *uop) {
	u.state = stIssued
	u.issuedAt = now
	u.doneAt = now + uint64(u.in.Lat)
	switch u.in.Kind {
	case workload.Store:
		t.stores++
		u.doneAt = now + 1 // address generation; data written at commit
	case workload.Branch:
		if u.in.Mispredict {
			e := c.getBrEvent()
			e.t, e.seq, e.epoch = t, u.seq, u.epoch
			c.q.ScheduleHandler(u.doneAt, e)
		}
	}
}

func (c *CPU) issueLoad(now uint64, t *thread, u *uop) bool {
	f := c.getLoadFill()
	f.t, f.seq, f.epoch = t, u.seq, u.epoch
	ok := c.l1d.ReadLine(now+1, u.in.Addr, c.meta(t, true), f)
	if !ok {
		f.t = nil
		c.freeLoadFills = append(c.freeLoadFills, f)
		return false
	}
	u.state = stIssued
	u.issuedAt = now
	u.doneAt = pendingDone
	t.loads++
	t.inFlight = append(t.inFlight, u)
	return true
}

// ---------------------------------------------------------------- branches

// resolveBranch fires when a mispredicted branch finishes executing: all
// younger instructions of the thread are squashed and queued for replay, and
// fetch stalls for the mispredict penalty.
func (c *CPU) resolveBranch(now uint64, t *thread, seq, epoch uint64) {
	u := &t.rob[seq%uint64(len(t.rob))]
	if u.seq != seq || u.epoch != epoch {
		return // itself squashed by an older branch first
	}
	t.squashes++

	// Collect the squashed suffix (ROB entries younger than the branch,
	// then the frontend, then the peeked instruction) for replay, ahead of
	// anything already queued for replay. The list is built in the thread's
	// spare buffer, which then swaps with the old replay slice.
	replay := t.replayScratch[:0]
	for s := seq + 1; s < t.nextSeq; s++ {
		v := &t.rob[s%uint64(len(t.rob))]
		replay = append(replay, v.in)
		c.releaseSquashed(t, v)
		v.epoch = ^uint64(0) // poison: stale waiting refs and callbacks miss
	}
	for _, fe := range t.frontend[t.feHead:] {
		replay = append(replay, fe.in)
	}
	if t.hasPeeked {
		replay = append(replay, t.peeked)
		t.hasPeeked = false
	}
	replay = append(replay, t.replay...)
	t.replayScratch = t.replay[:0]
	t.replay = replay
	t.frontend = t.frontend[:0]
	t.feHead = 0
	t.nextSeq = seq + 1
	t.epoch++
	t.imissPending = false
	t.curILine = ^uint64(0)
	t.fetchBlockedUntil = now + c.cfg.MispredictPenalty

	// Drop squashed loads from the in-flight list (everything younger than
	// the branch; older loads, whatever epoch they were fetched in, stay).
	kept := t.inFlight[:0]
	for _, v := range t.inFlight {
		if v.seq <= seq && v.epoch != ^uint64(0) {
			kept = append(kept, v)
		}
	}
	t.inFlight = kept
}

// releaseSquashed returns a squashed uop's queue resources.
func (c *CPU) releaseSquashed(t *thread, v *uop) {
	if v.state == stWaiting {
		if v.in.Kind == workload.FPOp {
			c.fpIQUsed--
			t.iqFP--
		} else {
			c.intIQUsed--
			t.iqInt--
		}
	}
	switch v.in.Kind {
	case workload.Load:
		c.lqUsed--
		t.lq--
	case workload.Store:
		c.sqUsed--
		t.sq--
	}
}

// ---------------------------------------------------------------- commit

func (c *CPU) commit(now uint64) {
	budget := c.cfg.CommitWidth
	n := len(c.threads)
	for i := 0; i < n && budget > 0; i++ {
		t := c.threads[(i+c.rrCommit)%n]
		for budget > 0 && t.robCount() > 0 {
			u := &t.rob[t.headSeq%uint64(len(t.rob))]
			if u.state == stIssued && u.doneAt <= now {
				u.state = stDone
			}
			if u.state != stDone {
				break
			}
			if u.in.Kind == workload.Store {
				if len(c.pendingStores)-c.psHead >= c.cfg.SQ {
					break // store buffer full: stall commit
				}
				c.psPush(pendingStore{addr: u.in.Addr, meta: c.meta(t, false)})
				c.sqUsed--
				t.sq--
			}
			if u.in.Kind == workload.Load {
				c.lqUsed--
				t.lq--
			}
			t.headSeq++
			t.committed++
			c.TotalCommitted++
			budget--
			c.acted = true
			if t.warmedAt == 0 && t.committed >= c.warmup {
				t.warmedAt = now
			}
			if t.finishedAt == 0 && c.target > 0 && t.committed >= c.warmup+c.target {
				t.finishedAt = now
			}
		}
	}
	c.rrCommit++
}

// psPush appends to the committed-store deque, reclaiming drained head space
// rather than growing the buffer.
func (c *CPU) psPush(s pendingStore) {
	if c.psHead > 0 && len(c.pendingStores) == cap(c.pendingStores) {
		n := copy(c.pendingStores, c.pendingStores[c.psHead:])
		c.pendingStores = c.pendingStores[:n]
		c.psHead = 0
	}
	c.pendingStores = append(c.pendingStores, s)
}

// drainStores pushes committed stores into the L1D; MSHR backpressure keeps
// them buffered.
func (c *CPU) drainStores(now uint64) {
	for c.psHead < len(c.pendingStores) {
		s := c.pendingStores[c.psHead]
		if !c.l1d.Store(now, s.addr, s.meta) {
			return
		}
		c.psHead++
		c.acted = true
	}
	c.pendingStores = c.pendingStores[:0]
	c.psHead = 0
}
