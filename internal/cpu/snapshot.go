package cpu

// Snapshot/Restore for the SMT core (DESIGN §15). Everything mutable is
// serialized verbatim: per-thread ROB arrays (whole arrays, not just live
// entries — stale slots participate in slot-recycling checks), frontend
// deques, replay lists, issue-queue contents (as (thread, slot) pairs, since
// the waiting list holds pointers into the ROB arrays), in-flight load
// lists, readiness-memo epochs, and every counter the run loop or stats
// collection reads. Configuration and wiring (caches, event queue, warmup
// targets) are not serialized — restore targets a CPU assembled from an
// identical Config.

import (
	"fmt"

	"smtdram/internal/cache"
	"smtdram/internal/snap"
	"smtdram/internal/workload"
)

const sectionCPU = 0x53435055 // "CPUS"

func writeInstr(w *snap.Writer, in workload.Instr) {
	w.U8(uint8(in.Kind))
	w.U64(in.PC)
	w.U64(in.Addr)
	w.I64(int64(in.Dep1))
	w.I64(int64(in.Dep2))
	w.I64(int64(in.Lat))
	w.Bool(in.Mispredict)
	w.Bool(in.Taken)
}

func readInstr(r *snap.Reader) workload.Instr {
	return workload.Instr{
		Kind:       workload.Kind(r.U8()),
		PC:         r.U64(),
		Addr:       r.U64(),
		Dep1:       int(r.I64()),
		Dep2:       int(r.I64()),
		Lat:        int(r.I64()),
		Mispredict: r.Bool(),
		Taken:      r.Bool(),
	}
}

func writeCacheMeta(w *snap.Writer, m cache.Meta) {
	w.I64(int64(m.Thread))
	w.Bool(m.Critical)
	w.I64(int64(m.State.Outstanding))
	w.I64(int64(m.State.ROBOccupancy))
	w.I64(int64(m.State.IQOccupancy))
}

func readCacheMeta(r *snap.Reader) cache.Meta {
	m := cache.Meta{Thread: int(r.I64()), Critical: r.Bool()}
	m.State.Outstanding = int(r.I64())
	m.State.ROBOccupancy = int(r.I64())
	m.State.IQOccupancy = int(r.I64())
	return m
}

func writeUop(w *snap.Writer, u *uop) {
	writeInstr(w, u.in)
	w.U64(u.seq)
	w.U64(u.epoch)
	w.U8(u.state)
	w.U64(u.doneAt)
	w.U64(u.issuedAt)
	w.U64(u.dep1)
	w.U64(u.dep2)
	w.U64(u.readySeen)
	w.U64(u.readyAt)
}

func readUop(r *snap.Reader, tid int32) uop {
	return uop{
		in:        readInstr(r),
		seq:       r.U64(),
		epoch:     r.U64(),
		tid:       tid,
		state:     r.U8(),
		doneAt:    r.U64(),
		issuedAt:  r.U64(),
		dep1:      r.U64(),
		dep2:      r.U64(),
		readySeen: r.U64(),
		readyAt:   r.U64(),
	}
}

// slotOf is how ROB-internal pointers (waiting list, in-flight loads)
// serialize: any occupant's seq maps to the slot it lives in, so the pair
// (thread, seq%len(rob)) names the pointed-at slot even for poisoned or
// recycled entries.
func slotOf(t *thread, u *uop) uint64 { return u.seq % uint64(len(t.rob)) }

// Snapshot serializes the core's mutable state.
func (c *CPU) Snapshot(w *snap.Writer) error {
	w.Marker(sectionCPU)
	w.U64(c.Cycles)
	w.U64(c.TotalCommitted)
	w.I64(int64(c.rrFetch))
	w.I64(int64(c.rrDispatch))
	w.I64(int64(c.rrCommit))
	w.I64(int64(c.intIQUsed))
	w.I64(int64(c.fpIQUsed))
	w.I64(int64(c.lqUsed))
	w.I64(int64(c.sqUsed))
	w.U64(c.issueIdleUntil)
	w.Bool(c.issueDirty)
	w.Bool(c.wake)
	w.Bool(c.acted)

	// Committed-store deque, head-normalized (live entries only).
	live := c.pendingStores[c.psHead:]
	w.U64(uint64(len(live)))
	for _, s := range live {
		w.U64(s.addr)
		writeCacheMeta(w, s.meta)
	}

	w.U64(uint64(len(c.waiting)))
	for _, u := range c.waiting {
		t := c.threads[u.tid]
		w.U64(uint64(u.tid))
		w.U64(slotOf(t, u))
	}

	w.U64(uint64(len(c.threads)))
	for _, t := range c.threads {
		w.Bool(t.hasPeeked)
		if t.hasPeeked {
			writeInstr(w, t.peeked)
		}
		w.U64(uint64(len(t.replay)))
		for _, in := range t.replay {
			writeInstr(w, in)
		}
		fe := t.frontend[t.feHead:]
		w.U64(uint64(len(fe)))
		for _, e := range fe {
			writeInstr(w, e.in)
			w.U64(e.readyAt)
		}
		w.U64(uint64(len(t.rob)))
		for i := range t.rob {
			writeUop(w, &t.rob[i])
		}
		w.U64(t.headSeq)
		w.U64(t.nextSeq)
		w.U64(t.epoch)
		w.I64(int64(t.iqInt))
		w.I64(int64(t.iqFP))
		w.I64(int64(t.lq))
		w.I64(int64(t.sq))
		w.U64(t.committed)
		w.U64(t.wakeSeq)
		w.U64(uint64(len(t.inFlight)))
		for _, u := range t.inFlight {
			w.U64(slotOf(t, u))
		}
		w.U64(t.curILine)
		w.Bool(t.imissPending)
		w.U64(t.fetchBlockedUntil)
		w.U64(t.warmedAt)
		w.U64(t.finishedAt)
		w.U64(t.squashes)
		w.U64(t.loads)
		w.U64(t.stores)
		w.U64(t.imisses)
		w.U64(t.gated)
	}
	return nil
}

// Restore rebuilds the core's mutable state from r into a CPU assembled from
// the identical Config and thread count (instruction sources are restored
// separately by the caller).
func (c *CPU) Restore(r *snap.Reader) error {
	r.Expect(sectionCPU)
	c.Cycles = r.U64()
	c.TotalCommitted = r.U64()
	c.rrFetch = int(r.I64())
	c.rrDispatch = int(r.I64())
	c.rrCommit = int(r.I64())
	c.intIQUsed = int(r.I64())
	c.fpIQUsed = int(r.I64())
	c.lqUsed = int(r.I64())
	c.sqUsed = int(r.I64())
	c.issueIdleUntil = r.U64()
	c.issueDirty = r.Bool()
	c.wake = r.Bool()
	c.acted = r.Bool()

	c.pendingStores = c.pendingStores[:0]
	c.psHead = 0
	nPS := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	for i := uint64(0); i < nPS; i++ {
		c.pendingStores = append(c.pendingStores, pendingStore{addr: r.U64(), meta: readCacheMeta(r)})
	}

	type slotRef struct{ tid, slot uint64 }
	nW := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	waitRefs := make([]slotRef, nW)
	for i := range waitRefs {
		waitRefs[i] = slotRef{tid: r.U64(), slot: r.U64()}
	}

	nT := r.U64()
	if r.Err() == nil && nT != uint64(len(c.threads)) {
		return fmt.Errorf("%w: snapshot has %d threads, cpu has %d", snap.ErrCorrupt, nT, len(c.threads))
	}
	for _, t := range c.threads {
		t.hasPeeked = r.Bool()
		if t.hasPeeked {
			t.peeked = readInstr(r)
		}
		t.replay = t.replay[:0]
		nRep := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		for i := uint64(0); i < nRep; i++ {
			t.replay = append(t.replay, readInstr(r))
		}
		t.frontend = t.frontend[:0]
		t.feHead = 0
		nFE := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		for i := uint64(0); i < nFE; i++ {
			t.frontend = append(t.frontend, feEntry{in: readInstr(r), readyAt: r.U64()})
		}
		nROB := r.U64()
		if r.Err() == nil && nROB != uint64(len(t.rob)) {
			return fmt.Errorf("%w: snapshot ROB depth %d, configured %d", snap.ErrCorrupt, nROB, len(t.rob))
		}
		for i := range t.rob {
			t.rob[i] = readUop(r, int32(t.id))
		}
		t.headSeq = r.U64()
		t.nextSeq = r.U64()
		t.epoch = r.U64()
		t.iqInt = int(r.I64())
		t.iqFP = int(r.I64())
		t.lq = int(r.I64())
		t.sq = int(r.I64())
		t.committed = r.U64()
		t.wakeSeq = r.U64()
		t.inFlight = t.inFlight[:0]
		nIF := r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		for i := uint64(0); i < nIF; i++ {
			slot := r.U64()
			if slot >= uint64(len(t.rob)) {
				return fmt.Errorf("%w: in-flight slot %d out of range", snap.ErrCorrupt, slot)
			}
			t.inFlight = append(t.inFlight, &t.rob[slot])
		}
		t.curILine = r.U64()
		t.imissPending = r.Bool()
		t.fetchBlockedUntil = r.U64()
		t.warmedAt = r.U64()
		t.finishedAt = r.U64()
		t.squashes = r.U64()
		t.loads = r.U64()
		t.stores = r.U64()
		t.imisses = r.U64()
		t.gated = r.U64()
	}

	c.waiting = c.waiting[:0]
	for _, wr := range waitRefs {
		if wr.tid >= uint64(len(c.threads)) {
			return fmt.Errorf("%w: waiting entry thread %d out of range", snap.ErrCorrupt, wr.tid)
		}
		t := c.threads[wr.tid]
		if wr.slot >= uint64(len(t.rob)) {
			return fmt.Errorf("%w: waiting entry slot %d out of range", snap.ErrCorrupt, wr.slot)
		}
		c.waiting = append(c.waiting, &t.rob[wr.slot])
	}
	return r.Err()
}

// ResolveRef maps CPU-kind references (pending load fills, I-fills, branch
// resolutions) to carriers drawn from the pools, exactly as the live run
// would have allocated them.
func (c *CPU) ResolveRef(ref *snap.Ref, _ uint8) (any, error) {
	if len(ref.Args) != 3 {
		return nil, fmt.Errorf("%w: cpu ref needs 3 args, got %d", snap.ErrCorrupt, len(ref.Args))
	}
	tid := ref.Args[0]
	if tid >= uint64(len(c.threads)) {
		return nil, fmt.Errorf("%w: cpu ref thread %d out of range", snap.ErrCorrupt, tid)
	}
	t := c.threads[tid]
	switch ref.Kind {
	case snap.KCPULoadFill:
		f := c.getLoadFill()
		f.t, f.seq, f.epoch = t, ref.Args[1], ref.Args[2]
		return f, nil
	case snap.KCPUIFill:
		f := c.getIFill()
		f.t, f.line, f.epoch = t, ref.Args[1], ref.Args[2]
		return f, nil
	case snap.KCPUBranch:
		e := c.getBrEvent()
		e.t, e.seq, e.epoch = t, ref.Args[1], ref.Args[2]
		return e, nil
	default:
		return nil, fmt.Errorf("%w: ref kind %d is not a cpu kind", snap.ErrCorrupt, ref.Kind)
	}
}
