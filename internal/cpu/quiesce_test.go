package cpu

import (
	"reflect"
	"testing"

	"smtdram/internal/cache"
	"smtdram/internal/workload"
)

// obsFingerprint is CPU.Fingerprint: the architecturally observable state
// skipped cycles are forbidden to change (see its doc for the exclusions).
func obsFingerprint(c *CPU) string { return c.Fingerprint() }

// newQuiesceRig is newRig with the Table-1-sized L1D and a long fixed
// memory latency: the shared rig's 4 KB / 8-MSHR L1D saturates under a real
// workload and keeps pendingStores non-empty, which (correctly) pins
// NextWorkAt at now+1 and would make these tests vacuous.
func newQuiesceRig(t *testing.T, cfg Config, srcs ...Source) *rig {
	t.Helper()
	r := &rig{}
	r.low = cache.NewFixedLatency(&r.q, 300)
	var err error
	r.l1i, err = cache.New(&r.q, cache.Config{Name: "L1I", Latency: 1, Perfect: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.l1d, err = cache.New(&r.q, cache.Config{Name: "L1D", SizeBytes: 64 << 10, Assoc: 2, LineBytes: 64, Latency: 1, MSHRs: 16}, r.low)
	if err != nil {
		t.Fatal(err)
	}
	r.cpu, err = New(&r.q, cfg, srcs, r.l1i, r.l1d)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func realGen(t *testing.T, app string, id int) Source {
	t.Helper()
	a, err := workload.ByName(app)
	if err != nil {
		t.Fatal(err)
	}
	g, err := workload.NewGen(a, id, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// NextWorkAt's contract, checked against the real Tick as the oracle: any
// cycle it declares quiet (no CPU trigger before it, no event due) must leave
// the entire observable fingerprint untouched when actually ticked.
func TestNextWorkAtPredictsQuietCycles(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = DWarn
	r := newQuiesceRig(t, cfg, realGen(t, "mcf", 0), realGen(t, "art", 1))
	quiet := 0
	predictedQuiet := false
	var before string
	for now := uint64(1); now <= 30_000; now++ {
		r.q.RunUntil(now)
		r.cpu.Tick(now)
		after := obsFingerprint(r.cpu)
		if predictedQuiet && after != before {
			t.Fatalf("cycle %d was predicted quiet but Tick changed state\nbefore: %s\nafter:  %s",
				now, before, after)
		}
		qa, qok := r.q.NextAt()
		predictedQuiet = r.cpu.NextWorkAt(now) > now+1 && (!qok || qa > now+1)
		if predictedQuiet {
			quiet++
			before = after
		}
	}
	if quiet < 100 {
		t.Fatalf("only %d cycles predicted quiet over a MEM-bound run; the predicate is vacuous", quiet)
	}
}

// runSkipping drives a rig the way core.Run's two-speed clock does — full
// Tick at landed cycles, NextWorkAt/AdvanceQuiet across quiet windows — and
// returns how many cycles it skipped.
func runSkipping(r *rig, cycles uint64) uint64 {
	var skipped uint64
	for now := uint64(1); now <= cycles; now++ {
		r.q.RunUntil(now)
		r.cpu.Tick(now)
		qa, qok := r.q.NextAt()
		if qok && qa <= now+1 {
			continue
		}
		target := r.cpu.NextWorkAt(now)
		if qok && qa < target {
			target = qa
		}
		if target > cycles+1 {
			target = cycles + 1
		}
		if target <= now+1 {
			continue
		}
		skipped += target - 1 - now
		r.cpu.AdvanceQuiet(now, target-1)
		now = target - 1
	}
	return skipped
}

// fullState is the complete end-of-run comparison for the lockstep test —
// unlike obsFingerprint it also includes the bookkeeping AdvanceQuiet
// replays, which must come out identical too.
type fullState struct {
	Fingerprint          string
	Cycles               uint64
	RRFetch, RRDisp, RRC int
	Gated                []uint64
}

func captureState(c *CPU) fullState {
	s := fullState{
		Fingerprint: obsFingerprint(c),
		Cycles:      c.Cycles,
		RRFetch:     c.rrFetch, RRDisp: c.rrDispatch, RRC: c.rrCommit,
	}
	for _, t := range c.threads {
		s.Gated = append(s.Gated, t.gated)
	}
	return s
}

// Lockstep equivalence at the CPU layer: an identically-seeded machine run
// cycle-by-cycle and one run through the two-speed protocol must end in the
// same state — including the round-robin rotations and the per-thread
// gated-dispatch counts that AdvanceQuiet reconstructs — under every fetch
// policy's gating rule.
func TestAdvanceQuietMatchesTicks(t *testing.T) {
	const cycles = 80_000
	for _, p := range append(FetchPolicies(), RoundRobin) {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Policy = p
			ticked := newQuiesceRig(t, cfg, realGen(t, "mcf", 0), realGen(t, "art", 1))
			ticked.cpu.SetTarget(1000, 5000)
			ticked.run(cycles)

			skippy := newQuiesceRig(t, cfg, realGen(t, "mcf", 0), realGen(t, "art", 1))
			skippy.cpu.SetTarget(1000, 5000)
			skipped := runSkipping(skippy, cycles)

			a, b := captureState(ticked.cpu), captureState(skippy.cpu)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("states diverge after %d cycles (%d skipped):\nticked:  %+v\nskipped: %+v",
					cycles, skipped, a, b)
			}
			if skipped == 0 {
				t.Fatalf("%v: no cycles skipped on a MEM-bound rig", p)
			}
		})
	}
}
