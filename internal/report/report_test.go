package report

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Figure X", "mix", "value")
	t.AddRow("2-MEM", 1.25)
	t.AddRow("4-MEM", 0.5)
	return t
}

func TestText(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Text(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure X", "mix", "2-MEM", "1.250", "0.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
	if lines[0] != "mix,value" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	if lines[1] != "2-MEM,1.250" {
		t.Fatalf("CSV row = %q", lines[1])
	}
}

func TestCSVEscaping(t *testing.T) {
	tbl := New("", "a", "b")
	tbl.AddRow(`comma,inside`, `quote"inside`)
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"comma,inside"`) {
		t.Fatalf("comma not quoted: %q", buf.String())
	}
}

func TestMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Markdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Figure X") {
		t.Fatal("markdown missing title")
	}
	if !strings.Contains(out, "| mix | value |") || !strings.Contains(out, "| --- | --- |") {
		t.Fatalf("markdown structure wrong:\n%s", out)
	}
}

func TestValidateRowWidth(t *testing.T) {
	tbl := New("", "a", "b")
	tbl.Rows = append(tbl.Rows, []string{"only-one"})
	var buf bytes.Buffer
	for _, f := range []Format{Text, CSV, Markdown} {
		if err := tbl.Render(&buf, f); err == nil {
			t.Fatalf("format %v accepted ragged row", f)
		}
	}
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{"text": Text, "csv": CSV, "md": Markdown, "markdown": Markdown}
	for s, want := range cases {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Fatalf("ParseFormat(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Fatal("ParseFormat accepted yaml")
	}
}

func TestIntAndStringCells(t *testing.T) {
	tbl := New("", "n", "s")
	tbl.AddRow(42, "x")
	var buf bytes.Buffer
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "42,x") {
		t.Fatalf("cell formatting wrong: %q", buf.String())
	}
}
