// Package report renders experiment results as aligned text tables, CSV, or
// Markdown. The experiment drivers produce rows; this package owns all
// formatting, so cmd/experiments can emit machine-readable output for
// plotting alongside the human-readable tables.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result set with a title and column headers.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// New builds an empty table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; values are formatted with %v, floats with %.3f.
func (t *Table) AddRow(cells ...interface{}) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
	return t
}

// Err is returned when a table is malformed.
type Err struct{ msg string }

func (e *Err) Error() string { return "report: " + e.msg }

// validate checks row widths.
func (t *Table) validate() error {
	for i, r := range t.Rows {
		if len(r) != len(t.Columns) {
			return &Err{fmt.Sprintf("row %d has %d cells, want %d", i, len(r), len(t.Columns))}
		}
	}
	return nil
}

// Text renders an aligned plain-text table.
func (t *Table) Text(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		b.WriteString(" ")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s", widths[i], c)
		}
		b.WriteString("\n")
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := line(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := line(r); err != nil {
			return err
		}
	}
	return nil
}

// CSV renders the table as RFC-4180 CSV (title omitted; headers included).
func (t *Table) CSV(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Markdown renders a GitHub-flavored Markdown table.
func (t *Table) Markdown(w io.Writer) error {
	if err := t.validate(); err != nil {
		return err
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// Format names an output format.
type Format int

const (
	// Text is the aligned human-readable form.
	Text Format = iota
	// CSV is machine-readable comma-separated values.
	CSV
	// Markdown is a GitHub-flavored table.
	Markdown
)

// ParseFormat converts a CLI name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "txt":
		return Text, nil
	case "csv":
		return CSV, nil
	case "md", "markdown":
		return Markdown, nil
	}
	return 0, &Err{fmt.Sprintf("unknown format %q (want text, csv, md)", s)}
}

// Render writes the table in the chosen format.
func (t *Table) Render(w io.Writer, f Format) error {
	switch f {
	case CSV:
		return t.CSV(w)
	case Markdown:
		return t.Markdown(w)
	default:
		return t.Text(w)
	}
}
