package dram

import "testing"

func TestECCScrubClassification(t *testing.T) {
	var e ECC
	if v := e.Scrub(ErrNone); v != VerdictOK {
		t.Fatalf("clean word: %v", v)
	}
	if v := e.Scrub(ErrSingleBit); v != VerdictCorrected {
		t.Fatalf("single-bit: %v", v)
	}
	if v := e.Scrub(ErrMultiBit); v != VerdictUncorrected {
		t.Fatalf("multi-bit: %v", v)
	}
	want := ECCStats{Detected: 2, Corrected: 1, Uncorrected: 1}
	if e.Stats != want {
		t.Fatalf("stats = %+v, want %+v", e.Stats, want)
	}
}

func TestECCDetectedSumsCorrectedAndUncorrected(t *testing.T) {
	var e ECC
	severities := []Severity{ErrSingleBit, ErrMultiBit, ErrNone, ErrSingleBit,
		ErrSingleBit, ErrMultiBit, ErrNone}
	for _, s := range severities {
		e.Scrub(s)
	}
	if e.Stats.Detected != e.Stats.Corrected+e.Stats.Uncorrected {
		t.Fatalf("Detected %d != Corrected %d + Uncorrected %d",
			e.Stats.Detected, e.Stats.Corrected, e.Stats.Uncorrected)
	}
	if e.Stats.Corrected != 3 || e.Stats.Uncorrected != 2 {
		t.Fatalf("stats = %+v", e.Stats)
	}
}

func TestChannelCarriesECC(t *testing.T) {
	c, err := NewChannel(DDRParams(16, 64, OpenPage), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	c.ECC.Scrub(ErrSingleBit)
	if c.ECC.Stats.Corrected != 1 {
		t.Fatalf("channel ECC stats = %+v", c.ECC.Stats)
	}
}
