package dram

// Snapshot/Restore for the DRAM device models (DESIGN §15). A Channel is
// pure timestamp state — no events, no pointers — so the codec is a flat
// field dump: bank row/ready state, bus state, the refresh clock, and the
// outcome counters (including the ECC decoder's).

import (
	"fmt"

	"smtdram/internal/snap"
)

const sectionChannel = 0x4452414D // "DRAM"

// Snapshot serializes the channel's mutable state. Timing parameters and the
// bank grid shape are configuration and are not written; restore targets a
// channel built by NewChannel with identical arguments.
func (c *Channel) Snapshot(w *snap.Writer) error {
	w.Marker(sectionChannel)
	w.U64(uint64(len(c.banks)))
	for i := range c.banks {
		w.I64(c.banks[i].openRow)
		w.U64(c.banks[i].readyAt)
	}
	w.U64(c.busFreeAt)
	w.Bool(c.lastWasWrite)
	w.U64(c.nextRefreshAt)
	w.U64(c.ECC.Stats.Detected)
	w.U64(c.ECC.Stats.Corrected)
	w.U64(c.ECC.Stats.Uncorrected)
	w.U64(c.Stats.Hits)
	w.U64(c.Stats.Closed)
	w.U64(c.Stats.Conflicts)
	w.U64(c.Stats.Reads)
	w.U64(c.Stats.Writes)
	w.U64(c.Stats.BusBusy)
	w.U64(c.Stats.Turnarounds)
	w.U64(c.Stats.Refreshes)
	return nil
}

// Restore rebuilds the channel's mutable state from r.
func (c *Channel) Restore(r *snap.Reader) error {
	r.Expect(sectionChannel)
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if n != uint64(len(c.banks)) {
		return fmt.Errorf("%w: snapshot has %d banks, channel has %d", snap.ErrCorrupt, n, len(c.banks))
	}
	for i := range c.banks {
		c.banks[i].openRow = r.I64()
		c.banks[i].readyAt = r.U64()
	}
	c.busFreeAt = r.U64()
	c.lastWasWrite = r.Bool()
	c.nextRefreshAt = r.U64()
	c.ECC.Stats.Detected = r.U64()
	c.ECC.Stats.Corrected = r.U64()
	c.ECC.Stats.Uncorrected = r.U64()
	c.Stats.Hits = r.U64()
	c.Stats.Closed = r.U64()
	c.Stats.Conflicts = r.U64()
	c.Stats.Reads = r.U64()
	c.Stats.Writes = r.U64()
	c.Stats.BusBusy = r.U64()
	c.Stats.Turnarounds = r.U64()
	c.Stats.Refreshes = r.U64()
	return r.Err()
}
