package dram

import "fmt"

// This file models the SEC-DED (single-error-correct, double-error-detect)
// ECC that protects each DRAM channel. The code word is the standard
// Hamming(72,64)+parity used by x72 DIMMs: 64 data bits carry 8 check bits,
// giving a minimum distance of 4. The decoder's decision table is
//
//	syndrome == 0, parity ok    → clean word
//	syndrome != 0, parity flip  → single-bit error: correctable
//	syndrome != 0, parity ok    → double-bit (or worse) error: detected,
//	                              uncorrectable (DUE)
//
// The simulator carries no data payloads, so the decoder is driven by the
// injected fault severity rather than real syndromes; the classification —
// the part that shapes performance — is exact. Correction itself is
// combinational in the DIMM's data path and is absorbed into CL, so a
// corrected error costs no extra cycles; an uncorrectable error costs a
// controller retry (see memctrl).

// Severity is the raw damage an access's code word sustained.
type Severity int

const (
	// ErrNone: the code word is clean.
	ErrNone Severity = iota
	// ErrSingleBit: exactly one flipped bit.
	ErrSingleBit
	// ErrMultiBit: two or more flipped bits (stuck-at rows, multi-cell
	// upsets).
	ErrMultiBit
)

// Verdict is the SEC-DED decoder's decision for one access.
type Verdict int

const (
	// VerdictOK: clean word, data delivered.
	VerdictOK Verdict = iota
	// VerdictCorrected: single-bit error repaired in-line; data delivered.
	VerdictCorrected
	// VerdictUncorrected: detected-uncorrectable error; data must not be
	// consumed — the controller retries or reports the loss.
	VerdictUncorrected
)

func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictCorrected:
		return "corrected"
	case VerdictUncorrected:
		return "uncorrected"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// ECCStats counts decoder outcomes. Detected == Corrected + Uncorrected.
type ECCStats struct {
	// Detected is the number of accesses whose syndrome was non-zero.
	Detected uint64
	// Corrected counts single-bit errors repaired in-line.
	Corrected uint64
	// Uncorrected counts detected-uncorrectable errors.
	Uncorrected uint64
}

// ECC is one channel's SEC-DED decoder.
type ECC struct {
	// Stats accumulates decoder outcomes over the run.
	Stats ECCStats
}

// Scrub runs the decoder over one access's code word, classifying and
// counting the injected severity.
func (e *ECC) Scrub(s Severity) Verdict {
	switch s {
	case ErrSingleBit:
		e.Stats.Detected++
		e.Stats.Corrected++
		return VerdictCorrected
	case ErrMultiBit:
		e.Stats.Detected++
		e.Stats.Uncorrected++
		return VerdictUncorrected
	default:
		return VerdictOK
	}
}
