// Package dram models the DRAM devices behind each logical memory channel:
// per-bank row-buffer state machines, the operation timing (precharge, row
// access, column access), the shared data bus, and open/close page modes.
//
// All times are expressed in CPU cycles. The paper's machine runs at 3 GHz
// with 15 ns row, column, and precharge times (45 CPU cycles each); DDR
// channels are 16 bytes wide at 200 MHz DDR, Direct Rambus channels are
// 2 bytes wide at 800 MT/s.
package dram

import "fmt"

// PageMode selects what happens to the row buffer after a column access.
type PageMode int

const (
	// OpenPage keeps the accessed row latched in the row buffer, betting the
	// next access to the bank will hit the same row.
	OpenPage PageMode = iota
	// ClosePage precharges the bank immediately after every column access,
	// favoring streams of accesses that would miss anyway.
	ClosePage
)

func (m PageMode) String() string {
	if m == OpenPage {
		return "open"
	}
	return "close"
}

// Params is a DRAM timing parameter set, in CPU cycles.
type Params struct {
	// Name labels the technology ("DDR", "RDRAM") in stats output.
	Name string
	// TRCD is the row access (activate) time.
	TRCD uint64
	// CL is the column access (CAS) latency.
	CL uint64
	// TRP is the precharge time.
	TRP uint64
	// Burst is the data-bus occupancy of one full line transfer.
	Burst uint64
	// Mode is the page policy.
	Mode PageMode
	// Turnaround is the extra bus idle time inserted when the data bus
	// switches direction (read→write or write→read). Zero disables the
	// model; the overhead is the one write-buffer studies target
	// (Cuppu & Jacob; Skadron & Clark).
	Turnaround uint64
	// RefreshInterval, when non-zero, triggers an all-bank refresh every
	// that many cycles; every bank is occupied for RefreshDuration and its
	// row buffer closes. At 3 GHz a realistic setting is ~23400/210
	// (7.8 µs tREFI, 70 ns tRFC).
	RefreshInterval uint64
	// RefreshDuration is the per-refresh bank busy time.
	RefreshDuration uint64
}

// Validate rejects zero timings, which would let the simulator spin.
func (p Params) Validate() error {
	if p.TRCD == 0 || p.CL == 0 || p.TRP == 0 || p.Burst == 0 {
		return fmt.Errorf("dram: zero timing in %+v", p)
	}
	return nil
}

// cyclesPerNS for the paper's 3 GHz core.
const cyclesPerNS = 3

// burstCycles returns the bus occupancy of lineBytes transferred over a
// channel moving bytesPerNS bytes each nanosecond, in CPU cycles, with a
// floor of one bus beat.
func burstCycles(lineBytes int, bytesPerNS float64) uint64 {
	ns := float64(lineBytes) / bytesPerNS
	c := uint64(ns*cyclesPerNS + 0.5)
	if c == 0 {
		c = 1
	}
	return c
}

// DDRParams builds the paper's DDR SDRAM timing for a logical channel of the
// given width in bytes (16 per physical channel; wider when channels are
// ganged). The bus runs at 200 MHz double data rate: 0.4 transfers/ns.
func DDRParams(widthBytes, lineBytes int, mode PageMode) Params {
	return Params{
		Name: "DDR",
		TRCD: 15 * cyclesPerNS,
		CL:   15 * cyclesPerNS,
		TRP:  15 * cyclesPerNS,
		// 200 MHz DDR: 2 transfers per 5 ns clock = 0.4 transfers/ns.
		Burst: burstCycles(lineBytes, 0.4*float64(widthBytes)),
		Mode:  mode,
	}
}

// RDRAMParams builds Direct Rambus timing: a narrow 2-byte bus at 800 MT/s
// (1.6 bytes/ns), same core array timings.
func RDRAMParams(lineBytes int, mode PageMode) Params {
	return Params{
		Name:  "RDRAM",
		TRCD:  15 * cyclesPerNS,
		CL:    15 * cyclesPerNS,
		TRP:   15 * cyclesPerNS,
		Burst: burstCycles(lineBytes, 1.6),
		Mode:  mode,
	}
}

// Outcome classifies a DRAM access by the row-buffer state it found.
type Outcome int

const (
	// Hit: the addressed row was already open; column access only.
	Hit Outcome = iota
	// Closed: the bank was precharged; row access then column access.
	Closed
	// Conflict: another row was open; precharge, row access, column access.
	Conflict
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Closed:
		return "closed"
	case Conflict:
		return "conflict"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// bank is one independent DRAM bank.
type bank struct {
	openRow int64 // -1 when precharged/closed
	readyAt uint64
}

// Channel is one logical memory channel: a grid of banks sharing a data bus.
type Channel struct {
	p             Params
	banks         []bank // chip-major: banks[chip*banksPerChip+bank]
	perChip       int
	busFreeAt     uint64
	lastWasWrite  bool
	nextRefreshAt uint64

	// ECC is the channel's SEC-DED decoder (see ecc.go). It only counts
	// when the fault injector feeds it errors; fault-free runs never touch
	// it.
	ECC ECC

	// Stats counts accesses by outcome.
	Stats struct {
		Hits        uint64
		Closed      uint64
		Conflicts   uint64
		Reads       uint64
		Writes      uint64
		BusBusy     uint64 // cycles of data-bus occupancy accumulated
		Turnarounds uint64 // bus direction switches penalized
		Refreshes   uint64 // all-bank refreshes performed
	}
}

// NewChannel builds a channel with chips × banksPerChip independent banks,
// all initially precharged.
func NewChannel(p Params, chips, banksPerChip int) (*Channel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if chips <= 0 || banksPerChip <= 0 {
		return nil, fmt.Errorf("dram: non-positive bank grid %d×%d", chips, banksPerChip)
	}
	c := &Channel{p: p, banks: make([]bank, chips*banksPerChip), perChip: banksPerChip}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	if p.RefreshInterval > 0 {
		c.nextRefreshAt = p.RefreshInterval
	}
	return c, nil
}

// applyRefresh performs any all-bank refreshes due by now: each occupies
// every bank for RefreshDuration and closes its row buffer.
func (c *Channel) applyRefresh(now uint64) {
	if c.p.RefreshInterval == 0 {
		return
	}
	for now >= c.nextRefreshAt {
		start := c.nextRefreshAt
		for i := range c.banks {
			b := &c.banks[i]
			if b.readyAt < start {
				b.readyAt = start
			}
			b.readyAt += c.p.RefreshDuration
			b.openRow = -1
		}
		c.Stats.Refreshes++
		c.nextRefreshAt += c.p.RefreshInterval
	}
}

// Params returns the channel's timing parameters.
func (c *Channel) Params() Params { return c.p }

// Banks returns the number of independent banks on the channel.
func (c *Channel) Banks() int { return len(c.banks) }

func (c *Channel) bankAt(chip, b int) *bank { return &c.banks[chip*c.perChip+b] }

// Classify reports what outcome an access to (chip, bank, row) would see
// right now, without changing any state. Schedulers use this for hit-first
// prioritization and Peek-based dispatch decisions.
func (c *Channel) Classify(chip, b int, row uint64) Outcome {
	bk := c.bankAt(chip, b)
	switch {
	case bk.openRow == int64(row):
		return Hit
	case bk.openRow < 0:
		return Closed
	default:
		return Conflict
	}
}

// BankReadyAt returns the cycle at which the bank can accept its next
// operation.
func (c *Channel) BankReadyAt(chip, b int) uint64 { return c.bankAt(chip, b).readyAt }

// BusFreeAt returns the cycle the data bus becomes free.
func (c *Channel) BusFreeAt() uint64 { return c.busFreeAt }

// AccessDetail is the full timing breakdown of one committed access — the
// raw material for request-lifecycle tracing. The bank operates over
// [Start, Start+prep) (precharge, then activate, then column access, as the
// Outcome requires); the data bus is occupied over [DataStart, Done).
type AccessDetail struct {
	// Start is the cycle the bank begins preparing (max of the request time
	// and the bank's ready time).
	Start uint64
	// DataStart is the cycle the data transfer claims the bus.
	DataStart uint64
	// Done is the cycle the last data beat transfers.
	Done uint64
	// Outcome is the row-buffer outcome.
	Outcome Outcome
	// Turnaround is set when a bus direction-switch gap was inserted.
	Turnaround bool
}

// Access performs a full line access to (chip, bank, row) starting no
// earlier than now, committing bank and bus state. It returns the cycle at
// which the last data beat transfers and the row-buffer outcome.
//
// The service timeline is a reservation model: the bank performs whatever
// precharge/activate it needs as soon as it is free, and the data transfer
// claims the first bus slot after the column access completes. Bank
// preparation therefore overlaps other banks' transfers, which is how
// open-page multi-bank pipelining earns its keep.
func (c *Channel) Access(now uint64, chip, b int, row uint64, isRead bool) (done uint64, out Outcome) {
	d := c.AccessFull(now, chip, b, row, isRead)
	return d.Done, d.Outcome
}

// AccessFull is Access returning the full timing breakdown.
func (c *Channel) AccessFull(now uint64, chip, b int, row uint64, isRead bool) AccessDetail {
	c.applyRefresh(now)
	bk := c.bankAt(chip, b)
	start := now
	if bk.readyAt > start {
		start = bk.readyAt
	}

	out := c.Classify(chip, b, row)
	var prep uint64
	switch out {
	case Hit:
		prep = c.p.CL
		c.Stats.Hits++
	case Closed:
		prep = c.p.TRCD + c.p.CL
		c.Stats.Closed++
	case Conflict:
		prep = c.p.TRP + c.p.TRCD + c.p.CL
		c.Stats.Conflicts++
	}
	if isRead {
		c.Stats.Reads++
	} else {
		c.Stats.Writes++
	}

	d := AccessDetail{Start: start, Outcome: out}
	dataStart := start + prep
	busFree := c.busFreeAt
	if c.p.Turnaround > 0 && c.Stats.Reads+c.Stats.Writes > 1 && c.lastWasWrite == isRead {
		// Direction switch: the bus needs a turnaround gap.
		busFree += c.p.Turnaround
		c.Stats.Turnarounds++
		d.Turnaround = true
	}
	if busFree > dataStart {
		dataStart = busFree
	}
	done := dataStart + c.p.Burst
	c.lastWasWrite = !isRead
	c.busFreeAt = done
	c.Stats.BusBusy += c.p.Burst

	if c.p.Mode == OpenPage {
		bk.openRow = int64(row)
		bk.readyAt = done
	} else {
		bk.openRow = -1
		bk.readyAt = done + c.p.TRP
	}
	d.DataStart = dataStart
	d.Done = done
	return d
}

// NextEdgeAt returns the channel's earliest future timing edge after now —
// the first cycle a bank finishes its precharge/activate/refresh occupancy,
// the data bus frees, or the next all-bank refresh falls due — or ^uint64(0)
// when every timestamp is already in the past. The memory controller's
// quiescence probe folds this into its next-interaction bound: the device
// state machines are timestamp-lazy (nothing in them advances per cycle), so
// the edges are exactly the cycles at which a scheduling decision over this
// channel could change. Read-only; in particular it does not settle pending
// refreshes, because eager settlement would change the stale-timestamp view
// the scheduler's bank-ready gating deliberately operates on.
func (c *Channel) NextEdgeAt(now uint64) uint64 {
	next := ^uint64(0)
	if c.busFreeAt > now {
		next = c.busFreeAt
	}
	for i := range c.banks {
		if r := c.banks[i].readyAt; r > now && r < next {
			next = r
		}
	}
	if c.p.RefreshInterval > 0 && c.nextRefreshAt > now && c.nextRefreshAt < next {
		next = c.nextRefreshAt
	}
	return next
}

// RowBufferMissRate returns the fraction of accesses that were not row
// buffer hits (closed-bank accesses count as misses, as in the paper).
func (c *Channel) RowBufferMissRate() float64 {
	total := c.Stats.Hits + c.Stats.Closed + c.Stats.Conflicts
	if total == 0 {
		return 0
	}
	return float64(c.Stats.Closed+c.Stats.Conflicts) / float64(total)
}
