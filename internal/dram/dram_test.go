package dram

import (
	"testing"
	"testing/quick"
)

func newDDR(t *testing.T, mode PageMode) *Channel {
	t.Helper()
	c, err := NewChannel(DDRParams(16, 64, mode), 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestParamDerivation(t *testing.T) {
	// 16B-wide 200 MHz DDR moves 6.4 B/ns; a 64 B line takes 10 ns = 30 cyc.
	p := DDRParams(16, 64, OpenPage)
	if p.Burst != 30 {
		t.Fatalf("DDR 16B burst = %d cycles, want 30", p.Burst)
	}
	if p.TRCD != 45 || p.CL != 45 || p.TRP != 45 {
		t.Fatalf("DDR core timing = %d/%d/%d, want 45/45/45", p.TRCD, p.CL, p.TRP)
	}
	// Ganging two channels doubles width, halving the burst.
	if g := DDRParams(32, 64, OpenPage); g.Burst != 15 {
		t.Fatalf("ganged 32B burst = %d, want 15", g.Burst)
	}
	// RDRAM: 1.6 B/ns → 64 B in 40 ns = 120 cycles.
	if r := RDRAMParams(64, OpenPage); r.Burst != 120 {
		t.Fatalf("RDRAM burst = %d, want 120", r.Burst)
	}
}

func TestValidateRejectsZeroTimings(t *testing.T) {
	if _, err := NewChannel(Params{Name: "bad"}, 1, 4); err == nil {
		t.Fatal("NewChannel accepted zero timings")
	}
	if _, err := NewChannel(DDRParams(16, 64, OpenPage), 0, 4); err == nil {
		t.Fatal("NewChannel accepted zero chips")
	}
}

func TestFirstAccessIsClosedBank(t *testing.T) {
	c := newDDR(t, OpenPage)
	done, out := c.Access(0, 0, 0, 7, true)
	if out != Closed {
		t.Fatalf("first access outcome = %v, want Closed", out)
	}
	// activate + CAS + burst = 45 + 45 + 30.
	if done != 120 {
		t.Fatalf("first access done = %d, want 120", done)
	}
}

func TestOpenPageHit(t *testing.T) {
	c := newDDR(t, OpenPage)
	done1, _ := c.Access(0, 0, 0, 7, true)
	done2, out := c.Access(done1, 0, 0, 7, true)
	if out != Hit {
		t.Fatalf("second access to same row = %v, want Hit", out)
	}
	if got := done2 - done1; got != 45+30 {
		t.Fatalf("hit service time = %d, want CL+burst = 75", got)
	}
}

func TestOpenPageConflict(t *testing.T) {
	c := newDDR(t, OpenPage)
	done1, _ := c.Access(0, 0, 0, 7, true)
	done2, out := c.Access(done1, 0, 0, 9, true)
	if out != Conflict {
		t.Fatalf("different-row access = %v, want Conflict", out)
	}
	if got := done2 - done1; got != 45+45+45+30 {
		t.Fatalf("conflict service time = %d, want TRP+TRCD+CL+burst = 165", got)
	}
}

func TestClosePageNeverHits(t *testing.T) {
	c := newDDR(t, ClosePage)
	done, _ := c.Access(0, 0, 0, 7, true)
	// Same row again: bank was auto-precharged, so outcome is Closed, and the
	// precharge overlapped the idle gap (bank readyAt = done+TRP).
	_, out := c.Access(done+1000, 0, 0, 7, true)
	if out != Closed {
		t.Fatalf("close-page repeat access = %v, want Closed", out)
	}
	if c.Stats.Hits != 0 {
		t.Fatalf("close-page recorded %d hits", c.Stats.Hits)
	}
}

func TestClosePagePrechargeDelaysBackToBack(t *testing.T) {
	c := newDDR(t, ClosePage)
	done1, _ := c.Access(0, 0, 0, 7, true)
	done2, _ := c.Access(done1, 0, 0, 7, true)
	// Bank not ready until done1+TRP, then TRCD+CL+burst.
	want := done1 + 45 + 45 + 45 + 30
	if done2 != want {
		t.Fatalf("back-to-back close-page done = %d, want %d", done2, want)
	}
}

func TestBankPrepOverlapsBusTransfer(t *testing.T) {
	// Two concurrent accesses to different banks: the second bank's activate
	// should overlap the first access's data transfer, so the second line
	// arrives exactly one burst after the first.
	c := newDDR(t, OpenPage)
	done1, _ := c.Access(0, 0, 0, 7, true)
	done2, _ := c.Access(0, 0, 1, 7, true)
	if done1 != 120 {
		t.Fatalf("done1 = %d, want 120", done1)
	}
	if done2 != done1+30 {
		t.Fatalf("done2 = %d, want %d (bank prep hidden under burst)", done2, done1+30)
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	c := newDDR(t, OpenPage)
	var last uint64
	for b := 0; b < 4; b++ {
		done, _ := c.Access(0, 0, b, 1, true)
		if done <= last {
			t.Fatalf("bank %d transfer done %d not after previous %d", b, done, last)
		}
		last = done
	}
	if c.Stats.BusBusy != 4*30 {
		t.Fatalf("BusBusy = %d, want 120", c.Stats.BusBusy)
	}
}

func TestRowBufferMissRate(t *testing.T) {
	c := newDDR(t, OpenPage)
	if got := c.RowBufferMissRate(); got != 0 {
		t.Fatalf("miss rate with no accesses = %v, want 0", got)
	}
	now, _ := c.Access(0, 0, 0, 1, true)  // closed → miss
	now, _ = c.Access(now, 0, 0, 1, true) // hit
	_, _ = c.Access(now, 0, 0, 2, true)   // conflict → miss
	if got := c.RowBufferMissRate(); got < 0.66 || got > 0.67 {
		t.Fatalf("miss rate = %v, want 2/3", got)
	}
}

func TestReadWriteCounters(t *testing.T) {
	c := newDDR(t, OpenPage)
	c.Access(0, 0, 0, 1, true)
	c.Access(0, 0, 1, 1, false)
	if c.Stats.Reads != 1 || c.Stats.Writes != 1 {
		t.Fatalf("reads/writes = %d/%d, want 1/1", c.Stats.Reads, c.Stats.Writes)
	}
}

func TestClassifyDoesNotMutate(t *testing.T) {
	c := newDDR(t, OpenPage)
	c.Access(0, 0, 0, 5, true)
	before := *c.bankAt(0, 0)
	for i := 0; i < 3; i++ {
		c.Classify(0, 0, uint64(i))
	}
	if *c.bankAt(0, 0) != before {
		t.Fatal("Classify mutated bank state")
	}
	if c.Stats.Hits+c.Stats.Closed+c.Stats.Conflicts != 1 {
		t.Fatal("Classify affected stats")
	}
}

// Property: service completion is monotone — an access never completes
// before it starts plus the minimum column latency, and consecutive accesses
// on one channel never go back in time on the bus.
func TestPropertyMonotoneCompletion(t *testing.T) {
	c := newDDR(t, OpenPage)
	var lastDone uint64
	f := func(chip8, bank8 uint8, row uint16, dt uint8) bool {
		now := lastDone + uint64(dt)
		done, _ := c.Access(now, 0, int(bank8%4), uint64(row), true)
		ok := done >= now+c.Params().CL+c.Params().Burst && done > lastDone
		lastDone = done
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestOutcomeAndModeStrings(t *testing.T) {
	if Hit.String() != "hit" || Closed.String() != "closed" || Conflict.String() != "conflict" {
		t.Fatal("Outcome strings wrong")
	}
	if OpenPage.String() != "open" || ClosePage.String() != "close" {
		t.Fatal("PageMode strings wrong")
	}
	if Outcome(42).String() == "" {
		t.Fatal("unknown outcome must print")
	}
}

func TestTurnaroundPenalty(t *testing.T) {
	p := DDRParams(16, 64, OpenPage)
	p.Turnaround = 12
	c, err := NewChannel(p, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// read, read (same direction: no penalty), then write (penalty).
	c.Access(0, 0, 0, 1, true)
	c.Access(0, 0, 1, 1, true)
	if c.Stats.Turnarounds != 0 {
		t.Fatalf("same-direction transfers penalized: %d", c.Stats.Turnarounds)
	}
	busBefore := c.BusFreeAt()
	c.Access(0, 0, 2, 1, false)
	if c.Stats.Turnarounds != 1 {
		t.Fatalf("Turnarounds = %d, want 1", c.Stats.Turnarounds)
	}
	if got := c.BusFreeAt() - busBefore; got != p.Turnaround+p.Burst {
		t.Fatalf("write after read extended bus by %d, want turnaround+burst = %d", got, p.Turnaround+p.Burst)
	}
}

func TestRefreshClosesRowsAndOccupiesBanks(t *testing.T) {
	p := DDRParams(16, 64, OpenPage)
	p.RefreshInterval = 1000
	p.RefreshDuration = 210
	c, err := NewChannel(p, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	done, _ := c.Access(0, 0, 0, 7, true)
	if done >= 1000 {
		t.Fatalf("first access unexpectedly slow: %d", done)
	}
	// Access the same row after the refresh boundary: the row was closed by
	// the refresh, so the outcome must be Closed, and the bank must have
	// been busy during the refresh window.
	_, out := c.Access(1500, 0, 0, 7, true)
	if out != Closed {
		t.Fatalf("post-refresh outcome = %v, want Closed (refresh closes rows)", out)
	}
	if c.Stats.Refreshes == 0 {
		t.Fatal("no refreshes recorded")
	}
}

func TestRefreshCatchesUpAfterIdle(t *testing.T) {
	p := DDRParams(16, 64, OpenPage)
	p.RefreshInterval = 1000
	p.RefreshDuration = 100
	c, _ := NewChannel(p, 1, 4)
	// Idle for 10 intervals: all must be applied on the next access.
	c.Access(10_500, 0, 0, 1, true)
	if c.Stats.Refreshes != 10 {
		t.Fatalf("Refreshes = %d, want 10 (catch-up)", c.Stats.Refreshes)
	}
}

func TestRefreshDisabledByDefault(t *testing.T) {
	c, _ := NewChannel(DDRParams(16, 64, OpenPage), 1, 4)
	c.Access(1_000_000, 0, 0, 1, true)
	if c.Stats.Refreshes != 0 {
		t.Fatal("refresh fired while disabled")
	}
}
