// Package fleet turns the single-process smtdramd daemon into a horizontally
// scalable service (DESIGN §16): a coordinator shards submissions across
// worker daemons via a consistent-hash ring keyed by the same
// Config.Fingerprint that names results everywhere else, workers fetch warm
// results from each other peer-to-peer in the durable store's CRC-framed
// entry format, and per-tenant token buckets with two-level priority
// admission sit in front of the existing bounded queue.
//
// The ring is the load balancer's whole brain: because a fingerprint fully
// names a result, routing by fingerprint keeps dedup, LRU locality, and
// checkpoint-prefix reuse intact across scale-out, and a node join or leave
// remaps only ~1/N of the keyspace.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// DefaultVNodes is the per-node virtual-node count. 128 points per node keeps
// the max/min keyspace share under 1.25 (TestRingUniformity) while Add and
// Remove stay O(vnodes·log points).
const DefaultVNodes = 128

// Ring is a consistent-hash ring with virtual nodes. Placement is a pure
// function of the member names, so two processes that agree on membership —
// or one process across a restart — agree on every key's owner. Not
// goroutine-safe; callers guard it (the coordinator holds its own mutex).
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring with the given virtual-node count (<=0 selects
// DefaultVNodes) and initial members.
func NewRing(vnodes int, nodes ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes, nodes: map[string]bool{}}
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

// ringHash places one virtual node: the first 8 bytes of
// sha256("node#replica"), a keyed placement that no insertion order or seed
// can perturb — the determinism the restart-stability guarantee rests on.
func ringHash(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// keyHash positions a key on the ring.
func keyHash(key string) uint64 { return ringHash("k|" + key) }

// Add inserts a node (no-op when present).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("n|%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a node (no-op when absent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len is the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes lists the members, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning key: the first virtual node clockwise from
// the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (node string, ok bool) {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return "", false
	}
	return owners[0], true
}

// Owners returns up to n distinct nodes in ring order starting at key's
// position — the owner first, then the nodes that would inherit the key if
// predecessors left. Cache peering asks the first owners other than itself,
// because after a membership change they are exactly the nodes that held (or
// hold) the key.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Shares returns each node's share of the keyspace (arc length / 2^64), a
// diagnostic for /v1/fleet and the uniformity tests. Shares sum to 1.
func (r *Ring) Shares() map[string]float64 {
	out := map[string]float64{}
	if len(r.points) == 0 {
		return out
	}
	const span = float64(math.MaxUint64) + 1
	// Point i owns the arc (points[i-1], points[i]]; the first point also
	// owns the wraparound arc from the last point.
	for i, p := range r.points {
		var arc uint64
		if i == 0 {
			arc = p.hash + (math.MaxUint64 - r.points[len(r.points)-1].hash) + 1
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		out[p.node] += float64(arc) / span
	}
	return out
}
