package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"time"

	"smtdram/internal/obs"
	"smtdram/internal/server"
)

// CoordinatorConfig shapes one coordinator.
type CoordinatorConfig struct {
	// Workers lists the worker daemons' base URLs.
	Workers []string
	// NodeID names the coordinator in its own stats/metrics (default
	// "coordinator").
	NodeID string
	// VNodes is the ring's virtual-node count (default DefaultVNodes); it
	// must match the workers' peering rings.
	VNodes int
	// ProbeInterval is the health-probe period (default 500ms);
	// ProbeTimeout bounds one probe (default max(ProbeInterval, 500ms) —
	// a fast cadence should not mistake a briefly slow worker for a dead
	// one).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// FailAfter ejects a worker from the ring after this many consecutive
	// failed probes (default 3); one successful probe re-admits it.
	FailAfter int
	// Quota layers fleet-wide tenant/priority admission in front of
	// forwarding (nil admits everything).
	Quota *Quota
	// Logger receives lifecycle logs. Nil discards.
	Logger *slog.Logger
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.NodeID == "" {
		c.NodeID = "coordinator"
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = c.ProbeInterval
		if c.ProbeTimeout < 500*time.Millisecond {
			c.ProbeTimeout = 500 * time.Millisecond
		}
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	return c
}

// member is one worker from the coordinator's point of view.
type member struct {
	url   string
	proxy *httputil.ReverseProxy

	// Written by the probe loop (and the initial sync probe) under c.mu.
	id           string // learned from /v1/fleet/self; "" until first contact
	ready        bool   // in the ring
	consecFails  int
	lastErr      string
	lastProbe    time.Time
	ejections    uint64
	readmissions uint64
	forwards     uint64 // submissions routed here
	proxyErrors  uint64
}

// Coordinator shards submissions across a worker fleet by the same
// fingerprint key every other layer uses. It holds no job state of its own:
// results, journals, and job tables live on the workers, and job ids embed
// their node ("j-w2-7") so any job lookup routes statelessly.
type Coordinator struct {
	cfg    CoordinatorConfig
	client *http.Client
	log    *slog.Logger

	mu      sync.Mutex
	members []*member
	byID    map[string]*member
	ring    *Ring // ready members only

	startedAt time.Time
	stop      chan struct{}
	done      chan struct{}

	// Metrics mirror the worker daemons' registry idiom; metricsMu guards
	// renders (counters are atomic).
	metricsMu  sync.Mutex
	reg        *obs.Registry
	mForwards  *obs.Counter
	mErrors    *obs.Counter
	mNoOwner   *obs.Counter
	mRejected  *obs.Counter
	mEjections *obs.Counter
	mReadmits  *obs.Counter
}

// NewCoordinator builds and starts a coordinator: one synchronous probe pass
// (so a fleet whose workers are already up routes immediately), then a
// background probe loop. Close stops the loop.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:       cfg,
		client:    &http.Client{Timeout: cfg.ProbeTimeout},
		log:       cfg.Logger,
		byID:      map[string]*member{},
		ring:      NewRing(cfg.VNodes),
		startedAt: time.Now(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	if c.log == nil {
		c.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c.reg = obs.NewRegistry(1)
	c.mForwards = c.reg.Counter("fleet_forwards_total")
	c.mErrors = c.reg.Counter("fleet_forward_errors_total")
	c.mNoOwner = c.reg.Counter("fleet_no_owner_total")
	c.mRejected = c.reg.Counter("fleet_quota_rejected_total")
	c.mEjections = c.reg.Counter("fleet_ejections_total")
	c.mReadmits = c.reg.Counter("fleet_readmissions_total")
	c.reg.Gauge("fleet_workers", func(uint64) float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.members))
	})
	c.reg.Gauge("fleet_workers_ready", func(uint64) float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.ring.Len())
	})
	c.reg.Gauge("uptime_seconds", func(uint64) float64 { return time.Since(c.startedAt).Seconds() })

	for _, raw := range cfg.Workers {
		m := &member{url: strings.TrimRight(raw, "/")}
		m.proxy = c.proxyFor(m)
		c.members = append(c.members, m)
	}
	c.probeAll()
	go c.probeLoop()
	return c
}

// Close stops the probe loop.
func (c *Coordinator) Close() {
	close(c.stop)
	<-c.done
}

// proxyFor builds the member's reverse proxy. FlushInterval -1 flushes every
// write immediately, which is what keeps forwarded SSE progress streams live
// instead of buffered; response bodies otherwise pass through untouched, so
// coordinator-served result bytes are the worker's bytes.
func (c *Coordinator) proxyFor(m *member) *httputil.ReverseProxy {
	target, err := url.Parse(m.url)
	if err != nil {
		target = &url.URL{Scheme: "http", Host: m.url}
	}
	return &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(target)
			pr.Out.Host = target.Host
		},
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			c.count(c.mErrors)
			c.mu.Lock()
			m.proxyErrors++
			id := m.id
			c.mu.Unlock()
			c.log.Warn("worker unreachable while forwarding", "worker", id, "url", m.url, "err", err)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusBadGateway)
			fmt.Fprintf(w, `{"error":"worker %s unreachable: %v"}`+"\n", id, err)
		},
	}
}

func (c *Coordinator) count(m *obs.Counter) { m.Inc() }

// ------------------------------------------------------------- membership

// probeLoop drives periodic health checks until Close.
func (c *Coordinator) probeLoop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.probeAll()
		case <-c.stop:
			return
		}
	}
}

// probeAll probes every member once (serially: fleets are small and the
// probe timeout bounds each call).
func (c *Coordinator) probeAll() {
	for _, m := range c.members {
		c.probe(m)
	}
}

// probe asks one worker /v1/fleet/self and folds the verdict into the ring:
// FailAfter consecutive failures eject (rebalancing ~1/N of the keyspace to
// the survivors), one success re-admits. A worker that reports itself
// unready (draining, recovering, degraded) counts as a failed probe — the
// ring holds nodes that can actually take work.
func (c *Coordinator) probe(m *member) {
	self, err := c.fetchSelf(m.url)
	now := time.Now()

	c.mu.Lock()
	defer c.mu.Unlock()
	m.lastProbe = now
	ok := err == nil && self.Ready && self.NodeID != ""
	switch {
	case err != nil:
		m.lastErr = err.Error()
	case self.NodeID == "":
		m.lastErr = "worker has no node id (start it with -node-id)"
	case !self.Ready:
		m.lastErr = "not ready: " + strings.Join(self.Reasons, "; ")
	default:
		m.lastErr = ""
	}
	if self.NodeID != "" {
		if prev := c.byID[self.NodeID]; prev != nil && prev != m {
			c.log.Warn("duplicate node id in fleet", "node", self.NodeID, "url", m.url, "other", prev.url)
		}
		m.id = self.NodeID
		c.byID[self.NodeID] = m
	}

	if ok {
		m.consecFails = 0
		if m.id != "" && !c.ring.Has(m.id) {
			c.ring.Add(m.id)
			if m.ejections > 0 || m.readmissions > 0 || m.ready {
				m.readmissions++
				c.count(c.mReadmits)
			}
			c.log.Info("worker joined ring", "node", m.id, "url", m.url, "ready_nodes", c.ring.Len())
		}
		m.ready = true
		return
	}
	m.consecFails++
	if m.ready && m.consecFails >= c.cfg.FailAfter {
		m.ready = false
		if m.id != "" && c.ring.Has(m.id) {
			c.ring.Remove(m.id)
			m.ejections++
			c.count(c.mEjections)
			c.log.Warn("worker ejected from ring", "node", m.id, "url", m.url,
				"after_failures", m.consecFails, "err", m.lastErr, "ready_nodes", c.ring.Len())
		}
	}
}

func (c *Coordinator) fetchSelf(base string) (server.NodeSelf, error) {
	var self server.NodeSelf
	resp, err := c.client.Get(base + "/v1/fleet/self")
	if err != nil {
		return self, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return self, err
	}
	if resp.StatusCode != http.StatusOK {
		return self, fmt.Errorf("probe returned %d", resp.StatusCode)
	}
	return self, json.Unmarshal(b, &self)
}

// ---------------------------------------------------------------- routing

// routeByKey picks the forwarding target for a shard key: the ring owner
// when it exists. nil with ok=false means no worker is ready.
func (c *Coordinator) routeByKey(key string) (*member, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	node, ok := c.ring.Owner(key)
	if !ok {
		return nil, false
	}
	m := c.byID[node]
	if m == nil {
		return nil, false
	}
	m.forwards++
	return m, true
}

// NodeOfJobID extracts the node segment of a fleet job id ("j-w2-7" → "w2");
// "" means the id carries no node (a standalone daemon minted it).
func NodeOfJobID(id string) string {
	rest, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return ""
	}
	i := strings.LastIndexByte(rest, '-')
	if i <= 0 {
		return ""
	}
	return rest[:i]
}

// handleSubmit shards one submission: read the body (bounded), derive the
// same shard key the worker will cache and dedup under, and forward to the
// ring owner with the body restored. The worker's response — status, skip
// headers, result bytes — passes through verbatim.
func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if c.cfg.Quota != nil {
		tenant := r.Header.Get("X-Smtdram-Tenant")
		if tenant == "" {
			tenant = "default"
		}
		if ok, retry := c.cfg.Quota.Charge(tenant); !ok {
			c.count(c.mRejected)
			secs := int((retry + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			w.Header().Set("X-Smtdram-Tenant", tenant)
			writeJSONErr(w, http.StatusTooManyRequests, fmt.Sprintf("tenant %q over fleet quota; retry in %ds", tenant, secs))
			return
		}
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	key, err := shardKeyFor(r.URL.Path, body)
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, err.Error())
		return
	}
	m, ok := c.routeByKey(key)
	if !ok {
		c.count(c.mNoOwner)
		w.Header().Set("Retry-After", "1")
		writeJSONErr(w, http.StatusServiceUnavailable, "no ready workers in the fleet")
		return
	}
	c.count(c.mForwards)
	r.Body = io.NopCloser(strings.NewReader(string(body)))
	r.ContentLength = int64(len(body))
	m.proxy.ServeHTTP(w, r)
}

// shardKeyFor computes the routing key for a submission body — the exact
// string the worker will cache, dedup, and journal it under, via the same
// exported ShardKey the handlers use.
func shardKeyFor(path string, body []byte) (string, error) {
	switch {
	case strings.HasSuffix(path, "/v1/sim"):
		var req server.SimRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad request body: %v", err)
		}
		return req.ShardKey()
	case strings.HasSuffix(path, "/v1/figures"):
		var req server.FigRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad request body: %v", err)
		}
		return req.ShardKey()
	}
	return "", fmt.Errorf("unroutable path %q", path)
}

// handleJob routes any /v1/jobs/{id}... request by the node embedded in the
// job id — polling, result and trace fetches, SSE event streams, and
// cancellation all reach the worker that owns the job, ready or not (an
// ejected-but-alive worker still answers for its jobs; a dead one turns into
// a 502 from the proxy's error handler).
func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	node := NodeOfJobID(id)
	if node == "" {
		writeJSONErr(w, http.StatusNotFound,
			fmt.Sprintf("job id %q carries no node (fleet job ids look like j-<node>-<n>)", id))
		return
	}
	c.mu.Lock()
	m := c.byID[node]
	c.mu.Unlock()
	if m == nil {
		writeJSONErr(w, http.StatusNotFound, fmt.Sprintf("unknown fleet node %q in job id %q", node, id))
		return
	}
	m.proxy.ServeHTTP(w, r)
}

// ------------------------------------------------------------------ status

// MemberStatus is one worker's row in /v1/fleet.
type MemberStatus struct {
	NodeID       string  `json:"node_id,omitempty"`
	URL          string  `json:"url"`
	Ready        bool    `json:"ready"`
	RingShare    float64 `json:"ring_share"`
	Forwards     uint64  `json:"forwards"`
	ProxyErrors  uint64  `json:"proxy_errors"`
	Ejections    uint64  `json:"ejections"`
	Readmissions uint64  `json:"readmissions"`
	ConsecFails  int     `json:"consecutive_failures,omitempty"`
	LastError    string  `json:"last_error,omitempty"`
	LastProbeAgo float64 `json:"last_probe_seconds_ago"`
}

// FleetStatus is the /v1/fleet payload.
type FleetStatus struct {
	NodeID        string         `json:"node_id"`
	Role          string         `json:"role"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Workers       int            `json:"workers"`
	ReadyWorkers  int            `json:"ready_workers"`
	VNodes        int            `json:"vnodes"`
	Forwards      uint64         `json:"forwards"`
	ForwardErrors uint64         `json:"forward_errors"`
	NoOwner       uint64         `json:"no_owner_rejections"`
	QuotaRejected uint64         `json:"quota_rejected"`
	Members       []MemberStatus `json:"members"`
	Quota         QuotaStats     `json:"quota"`
}

// Status snapshots the fleet.
func (c *Coordinator) Status() FleetStatus {
	now := time.Now()
	c.mu.Lock()
	shares := c.ring.Shares()
	st := FleetStatus{
		NodeID:        c.cfg.NodeID,
		Role:          "coordinator",
		UptimeSeconds: time.Since(c.startedAt).Seconds(),
		Workers:       len(c.members),
		ReadyWorkers:  c.ring.Len(),
		VNodes:        c.cfg.VNodes,
		Forwards:      c.mForwards.Value(),
		ForwardErrors: c.mErrors.Value(),
		NoOwner:       c.mNoOwner.Value(),
		QuotaRejected: c.mRejected.Value(),
	}
	for _, m := range c.members {
		st.Members = append(st.Members, MemberStatus{
			NodeID:       m.id,
			URL:          m.url,
			Ready:        m.ready,
			RingShare:    shares[m.id],
			Forwards:     m.forwards,
			ProxyErrors:  m.proxyErrors,
			Ejections:    m.ejections,
			Readmissions: m.readmissions,
			ConsecFails:  m.consecFails,
			LastError:    m.lastErr,
			LastProbeAgo: now.Sub(m.lastProbe).Seconds(),
		})
	}
	c.mu.Unlock()
	st.Quota = c.cfg.Quota.Snapshot()
	return st
}

// ReadyWorkers reports how many workers are currently in the ring.
func (c *Coordinator) ReadyWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ring.Len()
}

func writeJSONErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	b, _ := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	_, _ = w.Write(append(b, '\n'))
}

// Handler returns the coordinator's HTTP mux: the worker API re-exposed
// fleet-wide, plus fleet status and its own observability endpoints.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sim", c.handleSubmit)
	mux.HandleFunc("POST /v1/figures", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", c.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleJob)
	mux.HandleFunc("GET /v1/fleet", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Status())
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Status())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		labels := []obs.Label{{Key: "node_id", Val: c.cfg.NodeID}, {Key: "role", Val: "coordinator"}}
		c.metricsMu.Lock()
		defer c.metricsMu.Unlock()
		_ = c.reg.WritePrometheusLabeled(w, "smtdram", uint64(time.Since(c.startedAt)/time.Second), labels)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"status":"ok","uptime_seconds":%.1f}`+"\n", time.Since(c.startedAt).Seconds())
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		ready := c.ReadyWorkers() > 0
		code := http.StatusOK
		if !ready {
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"ready":%t,"ready_workers":%d}`+"\n", ready, c.ReadyWorkers())
	})
	mux.HandleFunc("GET /debug/dash", c.handleDash)
	return mux
}
