package fleet_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"smtdram/internal/core"
	"smtdram/internal/fleet"
	"smtdram/internal/server"
	"smtdram/internal/server/client"
	"smtdram/internal/store"
)

type testLogWriter struct{ t *testing.T }

func (w testLogWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", bytes.TrimRight(p, "\n"))
	return len(p), nil
}

func testLogger(t *testing.T) *slog.Logger {
	return slog.New(slog.NewTextHandler(testLogWriter{t}, nil))
}

// smallSim builds a quick simulation whose seed doubles as the knob that
// moves its shard key around the ring.
func smallSim(seed int64) server.SimRequest {
	w, tgt := uint64(2_000), uint64(20_000)
	return server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt, Seed: &seed}
}

// directBytes is what `smtdram -json` would print for the request — the
// byte-identity reference for everything the fleet serves.
func directBytes(t *testing.T, req server.SimRequest) []byte {
	t.Helper()
	cfg, err := req.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// seedOwnedBy walks seeds until one's shard key lands on wantOwner in a ring
// over nodes — deterministic, since ring placement is.
func seedOwnedBy(t *testing.T, wantOwner string, nodes ...string) (int64, server.SimRequest) {
	t.Helper()
	ring := fleet.NewRing(fleet.DefaultVNodes, nodes...)
	for seed := int64(1); seed < 10_000; seed++ {
		req := smallSim(seed)
		key, err := req.ShardKey()
		if err != nil {
			t.Fatal(err)
		}
		if owner, ok := ring.Owner(key); ok && owner == wantOwner {
			return seed, req
		}
	}
	t.Fatalf("no seed in [1,10000) lands on %s", wantOwner)
	return 0, server.SimRequest{}
}

func startFleet(t *testing.T, cfg fleet.LocalConfig) *fleet.LocalFleet {
	t.Helper()
	if cfg.Coordinator.ProbeInterval == 0 {
		cfg.Coordinator.ProbeInterval = 20 * time.Millisecond
	}
	f, err := fleet.StartLocal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	if err := f.WaitReady(len(cfg.Nodes), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	return f
}

func submitAndWait(t *testing.T, c *client.Client, req server.SimRequest) (server.JobStatus, []byte) {
	t.Helper()
	ctx := context.Background()
	st, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("job %s state = %s (%s), want done", st.ID, st.State, st.Error)
	}
	got, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	return st, got
}

// TestFleetForwardByteIdentityAndCacheHit: a coordinator-served result is
// byte-identical to a direct run, job ids embed their worker, and a repeat
// submission through the coordinator is a cache hit on the same worker.
func TestFleetForwardByteIdentityAndCacheHit(t *testing.T) {
	f := startFleet(t, fleet.LocalConfig{
		Nodes:  []fleet.LocalNode{{ID: "w1"}, {ID: "w2"}},
		Worker: server.Config{Logger: testLogger(t)},
	})
	c := client.New(f.CoordURL)
	req := smallSim(1)
	want := directBytes(t, req)

	st, got := submitAndWait(t, c, req)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet result differs from direct run:\n got %s\nwant %s", got, want)
	}
	node := fleet.NodeOfJobID(st.ID)
	if node != "w1" && node != "w2" {
		t.Fatalf("job id %q embeds node %q, want w1 or w2", st.ID, node)
	}

	st2, got2 := submitAndWait(t, c, req)
	if !st2.Cached {
		t.Fatalf("repeat submission not served from cache: %+v", st2)
	}
	if fleet.NodeOfJobID(st2.ID) != node {
		t.Fatalf("repeat routed to %s, first to %s — ring not deterministic", fleet.NodeOfJobID(st2.ID), node)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("cached fleet result differs from direct run")
	}
}

// TestFleetSSEForwarding: progress events stream live through the
// coordinator's reverse proxy and end with a terminal event.
func TestFleetSSEForwarding(t *testing.T) {
	f := startFleet(t, fleet.LocalConfig{
		Nodes:  []fleet.LocalNode{{ID: "w1"}, {ID: "w2"}},
		Worker: server.Config{Logger: testLogger(t), ProgressInterval: 1},
	})
	c := client.New(f.CoordURL)
	ctx := context.Background()
	// Long enough that the stream attaches while the run is in flight.
	req := smallSim(2)
	tgt := uint64(1_000_000)
	req.Target = &tgt
	st, err := c.SubmitSim(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	var progress int
	var terminal string
	err = c.Events(ctx, st.ID, func(ev client.Event) error {
		if ev.Name == "progress" {
			progress++
		} else {
			terminal = ev.Name
		}
		return nil
	})
	if err != nil {
		t.Fatalf("event stream through coordinator: %v", err)
	}
	if terminal != "done" {
		t.Fatalf("terminal event = %q, want done", terminal)
	}
	if progress == 0 {
		t.Fatal("no progress events crossed the coordinator proxy")
	}
}

// TestFleetCancelForwarding: DELETE /v1/jobs/{id} routes by the node in the
// job id and cancels the running simulation.
func TestFleetCancelForwarding(t *testing.T) {
	f := startFleet(t, fleet.LocalConfig{
		Nodes:  []fleet.LocalNode{{ID: "w1"}, {ID: "w2"}},
		Worker: server.Config{Logger: testLogger(t)},
	})
	c := client.New(f.CoordURL)
	ctx := context.Background()
	w, tgt, seed := uint64(0), uint64(2_000_000_000), int64(3)
	st, err := c.SubmitSim(ctx, server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt, Seed: &seed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if st, err = c.Wait(ctx, st.ID, 0); err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", st.State)
	}
}

// TestFleetPeering: a key owned by w3 but computed and stored on w1 is
// served to w3 over the peer protocol — a cross-node cache hit, byte-identical
// to a direct run.
func TestFleetPeering(t *testing.T) {
	f := startFleet(t, fleet.LocalConfig{
		Nodes: []fleet.LocalNode{
			{ID: "w1", DataDir: t.TempDir()},
			{ID: "w2", DataDir: t.TempDir()},
			{ID: "w3", DataDir: t.TempDir()},
		},
		Worker: server.Config{Logger: testLogger(t), CacheEntries: -1},
	})
	_, req := seedOwnedBy(t, "w3", "w1", "w2", "w3")
	want := directBytes(t, req)

	// Seed the entry on w1 by submitting to it directly (workers are full
	// daemons; direct submissions bypass the ring on purpose here).
	_, seeded := submitAndWait(t, client.New(f.Workers[0].URL), req)
	if !bytes.Equal(seeded, want) {
		t.Fatal("seeding run differs from direct run")
	}

	st, got := submitAndWait(t, client.New(f.CoordURL), req)
	if node := fleet.NodeOfJobID(st.ID); node != "w3" {
		t.Fatalf("coordinator routed to %s, ring says w3", node)
	}
	if !st.Peer {
		t.Fatalf("w3's job not marked as a peer hit: %+v", st)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("peer-served result differs from direct run")
	}
	stats, err := client.New(f.Workers[2].URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Peer.Hits == 0 {
		t.Fatal("w3 reports no peer hits")
	}
}

// TestFleetPeerCorruptQuarantinedAndRecomputed: when the only copy of an
// entry is corrupt on its holder's disk, the holder quarantines it and
// reports a miss — corrupt bytes never cross the wire — and the requesting
// worker recomputes locally, still byte-identical.
func TestFleetPeerCorruptQuarantinedAndRecomputed(t *testing.T) {
	w1dir := t.TempDir()
	f := startFleet(t, fleet.LocalConfig{
		Nodes: []fleet.LocalNode{
			{ID: "w1", DataDir: w1dir},
			{ID: "w2", DataDir: t.TempDir()},
			{ID: "w3", DataDir: t.TempDir()},
		},
		Worker: server.Config{Logger: testLogger(t), CacheEntries: -1},
	})
	_, req := seedOwnedBy(t, "w3", "w1", "w2", "w3")
	want := directBytes(t, req)
	_, _ = submitAndWait(t, client.New(f.Workers[0].URL), req)

	// Flip one payload byte in w1's on-disk entry.
	key, err := req.ShardKey()
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(key))
	path := filepath.Join(w1dir, hex.EncodeToString(sum[:])+".res")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading w1's store entry: %v", err)
	}
	b[len(b)-8] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	st, got := submitAndWait(t, client.New(f.CoordURL), req)
	if st.Peer {
		t.Fatal("corrupt entry was served as a peer hit")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recomputed result differs from direct run")
	}
	w1stats, err := client.New(f.Workers[0].URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if w1stats.Store.Corrupt == 0 {
		t.Fatal("w1 never detected the corrupt entry")
	}
	quarantined, err := os.ReadDir(filepath.Join(w1dir, "quarantine"))
	if err != nil || len(quarantined) == 0 {
		t.Fatalf("corrupt entry not quarantined (err=%v, files=%d)", err, len(quarantined))
	}
	w3stats, err := client.New(f.Workers[2].URL).Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if w3stats.Peer.Hits != 0 {
		t.Fatal("w3 counted a peer hit for a corrupt-only key")
	}
}

// TestPeerClientRejectsCorruptWire: entries that fail CRC or carry the wrong
// key are refused at the fetching side, reported as ErrPeerCorrupt.
func TestPeerClientRejectsCorruptWire(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not a framed entry"))
	}))
	defer garbage.Close()
	wrongKey := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(store.EncodeEntry("some-other-key", nil, []byte(`{"x":1}`)))
	}))
	defer wrongKey.Close()

	for name, url := range map[string]string{"garbage": garbage.URL, "wrong key": wrongKey.URL} {
		p := fleet.NewPeerClient("self", map[string]string{"peer": url}, 0, time.Second, testLogger(t))
		_, _, err := p.Fetch(context.Background(), "the-key")
		if !errors.Is(err, server.ErrPeerCorrupt) {
			t.Errorf("%s: Fetch err = %v, want ErrPeerCorrupt", name, err)
		}
	}
}

// TestFleetQuota429: the coordinator's fleet-wide tenant buckets reject the
// over-quota tenant with Retry-After while other tenants keep flowing.
func TestFleetQuota429(t *testing.T) {
	f := startFleet(t, fleet.LocalConfig{
		Nodes:  []fleet.LocalNode{{ID: "w1"}},
		Worker: server.Config{Logger: testLogger(t)},
		Coordinator: fleet.CoordinatorConfig{
			Quota: fleet.NewQuota(fleet.QuotaConfig{RatePerSec: 0.001, Burst: 1}),
		},
	})
	body, _ := json.Marshal(smallSim(1))
	post := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, f.CoordURL+"/v1/sim", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Smtdram-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	// Accepted (202) on a fresh run, OK (200) on a cache-served repeat —
	// both count as admitted.
	admitted := func(code int) bool { return code == http.StatusAccepted || code == http.StatusOK }
	if resp := post("alice"); !admitted(resp.StatusCode) {
		t.Fatalf("first submission: %d, want 2xx", resp.StatusCode)
	}
	resp := post("alice")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After")
	}
	if resp := post("bob"); !admitted(resp.StatusCode) {
		t.Fatalf("other tenant blocked by alice's quota: %d", resp.StatusCode)
	}
	if st := f.Coord.Status(); st.QuotaRejected != 1 {
		t.Fatalf("coordinator quota_rejected = %d, want 1", st.QuotaRejected)
	}
}

// TestCoordinatorEjectionReadmission drives membership with stub workers
// whose readiness is a switch: FailAfter consecutive bad probes eject, one
// good probe re-admits, and /v1/fleet narrates both.
func TestCoordinatorEjectionReadmission(t *testing.T) {
	mkStub := func(id string) (*httptest.Server, *atomic.Bool) {
		var ready atomic.Bool
		ready.Store(true)
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/v1/fleet/self" {
				http.NotFound(w, r)
				return
			}
			_ = json.NewEncoder(w).Encode(server.NodeSelf{NodeID: id, Role: "worker", Ready: ready.Load()})
		}))
		t.Cleanup(s.Close)
		return s, &ready
	}
	s1, _ := mkStub("w1")
	s2, ready2 := mkStub("w2")

	c := fleet.NewCoordinator(fleet.CoordinatorConfig{
		Workers:       []string{s1.URL, s2.URL},
		ProbeInterval: 10 * time.Millisecond,
		FailAfter:     2,
		Logger:        testLogger(t),
	})
	defer c.Close()

	waitReady := func(n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for c.ReadyWorkers() != n {
			if time.Now().After(deadline) {
				t.Fatalf("ready workers = %d, want %d", c.ReadyWorkers(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitReady(2)
	ready2.Store(false)
	waitReady(1)
	ready2.Store(true)
	waitReady(2)

	st := c.Status()
	for _, m := range st.Members {
		if m.NodeID != "w2" {
			continue
		}
		if m.Ejections == 0 || m.Readmissions == 0 {
			t.Fatalf("w2 ejections=%d readmissions=%d, want both > 0", m.Ejections, m.Readmissions)
		}
	}
}

// TestFleetKillWorkerDegrades: killing one of two workers leaves a serving
// 1-node fleet — the survivor owns the whole ring and results stay
// byte-identical.
func TestFleetKillWorkerDegrades(t *testing.T) {
	f := startFleet(t, fleet.LocalConfig{
		Nodes:  []fleet.LocalNode{{ID: "w1"}, {ID: "w2"}},
		Worker: server.Config{Logger: testLogger(t)},
		Coordinator: fleet.CoordinatorConfig{
			ProbeInterval: 10 * time.Millisecond,
			FailAfter:     2,
		},
	})
	f.Workers[1].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for f.Coord.ReadyWorkers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("coordinator never ejected the killed worker (ready=%d)", f.Coord.ReadyWorkers())
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := client.New(f.CoordURL)
	req := smallSim(7)
	want := directBytes(t, req)
	st, got := submitAndWait(t, c, req)
	if node := fleet.NodeOfJobID(st.ID); node != "w1" {
		t.Fatalf("routed to %s after w2's death, want w1", node)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("degraded-fleet result differs from direct run")
	}

	resp, err := http.Get(f.CoordURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d with one live worker, want 200", resp.StatusCode)
	}
}

// NodeOfJobID round-trips the worker's id scheme.
func TestNodeOfJobID(t *testing.T) {
	cases := map[string]string{
		"j-w2-7":    "w2",
		"j-node9-1": "node9",
		"j-42":      "",
		"weird":     "",
		"j-":        "",
	}
	for id, want := range cases {
		if got := fleet.NodeOfJobID(id); got != want {
			t.Errorf("NodeOfJobID(%q) = %q, want %q", id, got, want)
		}
	}
}
