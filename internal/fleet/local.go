package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"smtdram/internal/server"
)

// This file is the in-process fleet harness: N worker daemons and one
// coordinator on loopback listeners, wired exactly as cmd/smtdramd wires real
// processes (PeerClient into server.Config.PeerFetch, Quota into Admission,
// coordinator probing over HTTP). Tests and the fleet benchmark use it so
// they exercise the same code paths a multi-process deployment runs.

// LocalNode names one worker in a local fleet. Reusing the same ID and
// DataDir across StartLocal calls models a worker restarting into its old
// durable store — the basis of the warm-restart and cache-peering stages.
type LocalNode struct {
	ID      string
	DataDir string
}

// LocalConfig shapes a local fleet.
type LocalConfig struct {
	// Nodes lists the workers. IDs must be unique and '-'-free.
	Nodes []LocalNode
	// Worker is the per-worker daemon config template; NodeID, DataDir, and
	// PeerFetch are overwritten per node. Admission is installed from Quota
	// when set.
	Worker server.Config
	// Quota, when non-zero, gives every worker its own admission gate built
	// from this config (fleet-wide quotas belong on the coordinator).
	Quota QuotaConfig
	// Coordinator carries probe knobs; Workers is filled in with the bound
	// listener URLs.
	Coordinator CoordinatorConfig
	// PeerTimeout bounds one peer-to-peer entry fetch (default 2s).
	PeerTimeout time.Duration
}

// LocalWorker is one running worker daemon.
type LocalWorker struct {
	ID     string
	URL    string
	Server *server.Server

	ln net.Listener
	hs *http.Server
}

// Kill stops the worker abruptly — no drain, in-flight requests severed —
// approximating SIGKILL as closely as one process allows. The coordinator's
// probes notice and eject it.
func (w *LocalWorker) Kill() {
	_ = w.ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = w.hs.Shutdown(ctx)
	w.Server.Close()
}

// LocalFleet is a running local fleet.
type LocalFleet struct {
	Workers  []*LocalWorker
	Coord    *Coordinator
	CoordURL string

	coordLn net.Listener
	coordHS *http.Server
}

// StartLocal brings up the fleet: every worker listener binds first so each
// PeerClient knows all peer URLs at construction, then the daemons start,
// then the coordinator probes them (synchronously once) and begins serving.
func StartLocal(cfg LocalConfig) (*LocalFleet, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("fleet: no nodes")
	}
	lns := make([]net.Listener, 0, len(cfg.Nodes))
	urls := map[string]string{}
	cleanup := func() {
		for _, ln := range lns {
			_ = ln.Close()
		}
	}
	for _, n := range cfg.Nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("fleet: binding worker %s: %w", n.ID, err)
		}
		lns = append(lns, ln)
		urls[n.ID] = "http://" + ln.Addr().String()
	}

	f := &LocalFleet{}
	for i, n := range cfg.Nodes {
		peers := map[string]string{}
		for id, u := range urls {
			if id != n.ID {
				peers[id] = u
			}
		}
		wcfg := cfg.Worker
		wcfg.NodeID = n.ID
		wcfg.DataDir = n.DataDir
		wcfg.PeerTimeout = cfg.PeerTimeout
		wcfg.PeerFetch = NewPeerClient(n.ID, peers, cfg.Coordinator.VNodes, cfg.PeerTimeout, cfg.Worker.Logger)
		if cfg.Quota.RatePerSec > 0 || cfg.Quota.Slots > 0 {
			wcfg.Admission = NewQuota(cfg.Quota)
		}
		srv := server.New(wcfg)
		hs := &http.Server{Handler: srv.Handler()}
		w := &LocalWorker{ID: n.ID, URL: urls[n.ID], Server: srv, ln: lns[i], hs: hs}
		go func() { _ = hs.Serve(w.ln) }()
		f.Workers = append(f.Workers, w)
	}

	ccfg := cfg.Coordinator
	for _, w := range f.Workers {
		ccfg.Workers = append(ccfg.Workers, w.URL)
	}
	f.Coord = NewCoordinator(ccfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("fleet: binding coordinator: %w", err)
	}
	f.coordLn = ln
	f.CoordURL = "http://" + ln.Addr().String()
	f.coordHS = &http.Server{Handler: f.Coord.Handler()}
	go func() { _ = f.coordHS.Serve(ln) }()
	return f, nil
}

// WaitReady blocks until the coordinator sees at least n ready workers, or
// the deadline passes.
func (f *LocalFleet) WaitReady(n int, deadline time.Duration) error {
	end := time.Now().Add(deadline)
	for {
		if f.Coord.ReadyWorkers() >= n {
			return nil
		}
		if time.Now().After(end) {
			return fmt.Errorf("fleet: %d/%d workers ready after %v", f.Coord.ReadyWorkers(), n, deadline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close tears the fleet down: coordinator first (stops probing and
// forwarding), then the workers.
func (f *LocalFleet) Close() {
	if f.Coord != nil {
		f.Coord.Close()
	}
	if f.coordHS != nil {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = f.coordHS.Shutdown(ctx)
		cancel()
	}
	if f.coordLn != nil {
		_ = f.coordLn.Close()
	}
	for _, w := range f.Workers {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_ = w.hs.Shutdown(ctx)
		cancel()
		_ = w.ln.Close()
		w.Server.Close()
	}
}
