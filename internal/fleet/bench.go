package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"smtdram/internal/server"
	"smtdram/internal/server/client"
)

// This file is the fleet benchmark behind `smtdramd -fleet`: bring up local
// fleets of 1, 2, and 3 workers, drive them with the shared load generator,
// and write BENCH_fleet.json.
//
// Honesty note on scaling: this host runs every worker on the same CPUs, so
// simulation compute cannot scale with worker count in-process. What DOES
// scale — and what production scale-out is usually bought for — is admission
// capacity: each worker carries its own per-tenant token bucket, and the
// ring shards one tenant's submissions across all of them. The scaling
// stages therefore run admission-bound (per-worker rate low enough that
// compute never binds even with every worker sharing one CPU), and the
// reported sims/sec speedup measures real fleet goodput under that regime,
// not fake CPU parallelism. The report records the knobs and the host CPU
// count so the regime is visible.

// BenchConfig shapes one fleet benchmark run.
type BenchConfig struct {
	// Requests per scaling stage (default 40) and concurrent clients
	// (default 12).
	Requests int
	Clients  int
	// RatePerSec is each worker's per-tenant admission rate (default 5).
	RatePerSec float64
	// Burst is each worker's bucket capacity (default 2).
	Burst float64
	// WorkDir holds the warm-restart stage's worker data dirs (default: a
	// fresh temp dir).
	WorkDir string
	// Logger narrates stages. Nil discards.
	Logger *slog.Logger
}

// BenchStage is one scaling measurement.
type BenchStage struct {
	Workers       int     `json:"workers"`
	Completed     int     `json:"completed"`
	Rejections429 int     `json:"rejections_429"`
	WallSeconds   float64 `json:"wall_seconds"`
	SimsPerSec    float64 `json:"sims_per_sec"`
}

// BenchLatencyQ condenses one latency histogram.
type BenchLatencyQ struct {
	Count uint64  `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// BenchNodeLatency is one worker's latency summaries after the warm stage:
// Served covers computed jobs, Cached covers cache/store/peer answers (the
// warm stage is all Cached by design).
type BenchNodeLatency struct {
	Node   string        `json:"node"`
	Served BenchLatencyQ `json:"served"`
	Cached BenchLatencyQ `json:"cached"`
}

// BenchReport is BENCH_fleet.json.
type BenchReport struct {
	CPUs     int     `json:"cpus"`
	Scenario string  `json:"scenario"`
	Requests int     `json:"requests_per_stage"`
	Clients  int     `json:"clients"`
	Rate     float64 `json:"per_worker_tenant_rate_per_sec"`
	Burst    float64 `json:"per_worker_tenant_burst"`

	Scaling       []BenchStage `json:"scaling"`
	Speedup3vs1   float64      `json:"speedup_3_workers_vs_1"`
	SpeedupTarget float64      `json:"speedup_target"`

	// Warm restart: a 2-worker fleet computes a request set into its durable
	// stores, then restarts as 3 workers (two reusing their dirs, one
	// fresh). Every repeat is served without recomputing — locally where
	// ownership held, over peer transfer where the ring remapped it to the
	// new node.
	WarmRequests       int     `json:"warm_requests"`
	WarmHitRatio       float64 `json:"warm_restart_hit_ratio"`
	CrossNodePeerHits  uint64  `json:"cross_node_peer_hits"`
	CrossNodeHitRatio  float64 `json:"cross_node_cache_hit_ratio"`
	WarmSimsRecomputed float64 `json:"warm_sims_recomputed"`

	PerNode []BenchNodeLatency `json:"per_node_latency"`
}

func (c BenchConfig) withDefaults() BenchConfig {
	if c.Requests <= 0 {
		c.Requests = 40
	}
	if c.Clients <= 0 {
		c.Clients = 12
	}
	if c.RatePerSec <= 0 {
		c.RatePerSec = 5
	}
	if c.Burst <= 0 {
		c.Burst = 2
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	return c
}

// benchMix builds n unique small simulations (distinct seeds → distinct
// fingerprints → cache-cold and spread around the ring).
func benchMix(n int, seedBase int64) []server.SimRequest {
	w, tgt := uint64(2_000), uint64(10_000)
	reqs := make([]server.SimRequest, n)
	for i := range reqs {
		seed := seedBase + int64(i)
		reqs[i] = server.SimRequest{Apps: []string{"mcf"}, Warmup: &w, Target: &tgt, Seed: &seed}
	}
	return reqs
}

func benchNodes(n int, dirs []string) []LocalNode {
	nodes := make([]LocalNode, n)
	for i := range nodes {
		nodes[i] = LocalNode{ID: fmt.Sprintf("w%d", i+1)}
		if i < len(dirs) {
			nodes[i].DataDir = dirs[i]
		}
	}
	return nodes
}

// RunBench executes the full fleet benchmark.
func RunBench(ctx context.Context, cfg BenchConfig) (BenchReport, error) {
	cfg = cfg.withDefaults()
	rep := BenchReport{
		CPUs: runtime.NumCPU(),
		Scenario: "admission-bound goodput: per-worker tenant token buckets are the binding " +
			"resource (compute deliberately unbound), so sims/sec measures how fleet " +
			"admission capacity scales with worker count on shared CPUs",
		Requests:      cfg.Requests,
		Clients:       cfg.Clients,
		Rate:          cfg.RatePerSec,
		Burst:         cfg.Burst,
		SpeedupTarget: 1.8,
	}

	// ---- scaling stages: 1, 2, 3 workers, cache-cold, admission-bound ----
	mix := benchMix(cfg.Requests, 10_000)
	for n := 1; n <= 3; n++ {
		cfg.Logger.Info("fleet bench: scaling stage", "workers", n, "requests", cfg.Requests)
		f, err := StartLocal(LocalConfig{
			Nodes:       benchNodes(n, nil),
			Worker:      server.Config{},
			Quota:       QuotaConfig{RatePerSec: cfg.RatePerSec, Burst: cfg.Burst},
			Coordinator: CoordinatorConfig{ProbeInterval: 50 * time.Millisecond},
		})
		if err != nil {
			return rep, err
		}
		if err := f.WaitReady(n, 5*time.Second); err != nil {
			f.Close()
			return rep, err
		}
		lg, err := client.New(f.CoordURL).LoadGen(ctx, client.LoadGenConfig{
			Requests: cfg.Requests, Clients: cfg.Clients, Mix: mix,
		})
		f.Close()
		if err != nil {
			return rep, fmt.Errorf("scaling stage %d workers: %w", n, err)
		}
		rep.Scaling = append(rep.Scaling, BenchStage{
			Workers:       n,
			Completed:     lg.Completed,
			Rejections429: lg.Rejections,
			WallSeconds:   lg.WallSeconds,
			SimsPerSec:    lg.RequestsPerSec,
		})
		cfg.Logger.Info("fleet bench: stage done", "workers", n,
			"sims_per_sec", fmt.Sprintf("%.2f", lg.RequestsPerSec), "rejections", lg.Rejections)
	}
	if rep.Scaling[0].SimsPerSec > 0 {
		rep.Speedup3vs1 = rep.Scaling[2].SimsPerSec / rep.Scaling[0].SimsPerSec
	}

	// ---- warm-restart + cross-node peering stage ----
	workDir := cfg.WorkDir
	if workDir == "" {
		var err error
		workDir, err = os.MkdirTemp("", "smtdram-fleet-bench-")
		if err != nil {
			return rep, err
		}
		defer os.RemoveAll(workDir)
	}
	dirs := make([]string, 3)
	for i := range dirs {
		dirs[i] = filepath.Join(workDir, fmt.Sprintf("w%d", i+1))
		if err := os.MkdirAll(dirs[i], 0o755); err != nil {
			return rep, err
		}
	}

	const warmN = 12
	rep.WarmRequests = warmN
	warmMix := benchMix(warmN, 20_000)
	cfg.Logger.Info("fleet bench: seeding durable stores on a 2-worker fleet", "requests", warmN)
	f, err := StartLocal(LocalConfig{
		Nodes:       benchNodes(2, dirs[:2]),
		Coordinator: CoordinatorConfig{ProbeInterval: 50 * time.Millisecond},
	})
	if err != nil {
		return rep, err
	}
	if err := f.WaitReady(2, 5*time.Second); err != nil {
		f.Close()
		return rep, err
	}
	if _, err := client.New(f.CoordURL).LoadGen(ctx, client.LoadGenConfig{
		Requests: warmN, Clients: 4, Mix: warmMix,
	}); err != nil {
		f.Close()
		return rep, fmt.Errorf("seeding stage: %w", err)
	}
	f.Close()

	cfg.Logger.Info("fleet bench: restarting as 3 workers (dirs reused, one fresh)")
	f, err = StartLocal(LocalConfig{
		Nodes:       benchNodes(3, dirs),
		Coordinator: CoordinatorConfig{ProbeInterval: 50 * time.Millisecond},
	})
	if err != nil {
		return rep, err
	}
	defer f.Close()
	if err := f.WaitReady(3, 5*time.Second); err != nil {
		return rep, err
	}
	if _, err := client.New(f.CoordURL).LoadGen(ctx, client.LoadGenConfig{
		Requests: warmN, Clients: 4, Mix: warmMix,
	}); err != nil {
		return rep, fmt.Errorf("warm stage: %w", err)
	}

	// The coordinator holds no job counters, so the warm hit ratio comes
	// from the workers' own stats: everything accepted fleet-wide during the
	// warm pass minus everything actually simulated.
	var accepted, cachedJobs, simsRun uint64
	for _, w := range f.Workers {
		st, err := client.New(w.URL).Stats(ctx)
		if err != nil {
			return rep, fmt.Errorf("scraping %s: %w", w.ID, err)
		}
		accepted += st.Jobs.Accepted
		cachedJobs += st.Jobs.Cached + st.Jobs.Deduped
		simsRun += st.Skip.SimRuns
		rep.CrossNodePeerHits += st.Peer.Hits
		rep.PerNode = append(rep.PerNode, BenchNodeLatency{
			Node: w.ID,
			Served: BenchLatencyQ{Count: st.EndToEnd.Served.Count, P50Ms: st.EndToEnd.Served.P50Ms,
				P95Ms: st.EndToEnd.Served.P95Ms, P99Ms: st.EndToEnd.Served.P99Ms},
			Cached: BenchLatencyQ{Count: st.EndToEnd.Cache.Count, P50Ms: st.EndToEnd.Cache.P50Ms,
				P95Ms: st.EndToEnd.Cache.P95Ms, P99Ms: st.EndToEnd.Cache.P99Ms},
		})
	}
	if accepted > 0 {
		rep.WarmHitRatio = float64(cachedJobs) / float64(accepted)
	}
	rep.WarmSimsRecomputed = float64(simsRun)
	if warmN > 0 {
		rep.CrossNodeHitRatio = float64(rep.CrossNodePeerHits) / float64(warmN)
	}
	cfg.Logger.Info("fleet bench: warm stage done",
		"hit_ratio", fmt.Sprintf("%.2f", rep.WarmHitRatio),
		"cross_node_peer_hits", rep.CrossNodePeerHits,
		"sims_recomputed", rep.WarmSimsRecomputed)
	return rep, nil
}
