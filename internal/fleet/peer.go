package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strings"
	"time"

	"smtdram/internal/server"
	"smtdram/internal/store"
)

// maxPeerEntryBytes bounds one fetched entry (results are small JSON; figure
// outputs a few hundred KB at most).
const maxPeerEntryBytes = 64 << 20

// PeerClient implements server.PeerFetcher over HTTP: on a local miss it
// walks the ring's owner list for the key — excluding itself — and asks each
// candidate's /v1/peer/result for the entry, verifying the store framing's
// CRC before trusting a byte. The candidates are exactly the nodes that own
// (or owned, before a membership change) the key, so one or two round trips
// find any copy the fleet holds.
type PeerClient struct {
	self   string
	ring   *Ring
	urls   map[string]string // node id -> base URL
	http   *http.Client
	maxAsk int
	log    *slog.Logger
}

// NewPeerClient builds the peering side of one worker. self is this node's
// id; peers maps every other node id to its base URL. vnodes must match the
// coordinator's ring so both sides agree on ownership.
func NewPeerClient(self string, peers map[string]string, vnodes int, timeout time.Duration, log *slog.Logger) *PeerClient {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	nodes := []string{self}
	urls := map[string]string{}
	for id, u := range peers {
		nodes = append(nodes, id)
		urls[id] = strings.TrimRight(u, "/")
	}
	return &PeerClient{
		self:   self,
		ring:   NewRing(vnodes, nodes...),
		urls:   urls,
		http:   &http.Client{Timeout: timeout},
		maxAsk: 2,
		log:    log,
	}
}

// Fetch implements server.PeerFetcher. A clean miss everywhere returns
// server.ErrPeerMiss; a candidate whose bytes fail CRC verification is
// skipped (never served) and, if no other candidate hits, the error wraps
// server.ErrPeerCorrupt so the daemon counts it before recomputing.
func (p *PeerClient) Fetch(ctx context.Context, key string) (payload, meta []byte, err error) {
	var corrupt error
	asked := 0
	for _, node := range p.ring.Owners(key, p.ring.Len()) {
		if node == p.self || asked >= p.maxAsk {
			continue
		}
		base := p.urls[node]
		if base == "" {
			continue
		}
		asked++
		payload, meta, err := p.fetchFrom(ctx, base, key)
		switch {
		case err == nil:
			return payload, meta, nil
		case errors.Is(err, server.ErrPeerCorrupt):
			corrupt = err
			p.log.Warn("peer served a corrupt entry; skipping", "peer", node, "key", key, "err", err)
		}
	}
	if corrupt != nil {
		return nil, nil, corrupt
	}
	return nil, nil, server.ErrPeerMiss
}

// fetchFrom asks one peer for the key and verifies the framed entry.
func (p *PeerClient) fetchFrom(ctx context.Context, base, key string) (payload, meta []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/v1/peer/result?key="+url.QueryEscape(key), nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil, server.ErrPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("peer returned %d", resp.StatusCode)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes))
	if err != nil {
		return nil, nil, err
	}
	gotKey, meta, payload, err := store.DecodeEntry(b)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", server.ErrPeerCorrupt, err)
	}
	if gotKey != key {
		return nil, nil, fmt.Errorf("%w: entry is for key %q", server.ErrPeerCorrupt, gotKey)
	}
	return payload, meta, nil
}
