package fleet

import (
	"math"
	"sort"
	"sync"
	"time"
)

// QuotaConfig shapes per-tenant admission.
type QuotaConfig struct {
	// RatePerSec is each tenant's sustained submission rate in tokens per
	// second; <=0 disables the per-tenant buckets.
	RatePerSec float64
	// Burst is each tenant's bucket capacity (default 2×RatePerSec, min 1).
	Burst float64
	// Slots bounds concurrently admitted computed jobs across every tenant;
	// <=0 disables the class gate.
	Slots int
	// HighReserve holds back this many of Slots for X-Smtdram-Priority: high
	// submissions: low-priority work may occupy at most Slots-HighReserve, so
	// a saturating low-priority sweep can never starve interactive traffic.
	HighReserve int
	// MaxTenants bounds the bucket table (default 4096); full buckets are
	// evicted first when it overflows.
	MaxTenants int

	// now overrides the clock in tests.
	now func() time.Time
}

// Quota implements the daemon's admission hooks (server.Config.Admission):
// a token bucket per tenant plus a two-level priority slot gate. It layers in
// front of the existing bounded queue — the queue still bounds total work;
// the quota decides whose work and in what class.
type Quota struct {
	cfg QuotaConfig

	mu      sync.Mutex
	buckets map[string]*bucket
	// low/high count admitted-and-unfinished jobs per class.
	low, high int
	// rejected tallies per-reason rejections for /v1/fleet.
	rejectedTenant, rejectedClass uint64
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuota builds a Quota; a nil receiver (or all-zero config) admits
// everything.
func NewQuota(cfg QuotaConfig) *Quota {
	if cfg.Burst <= 0 {
		cfg.Burst = math.Max(1, 2*cfg.RatePerSec)
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 4096
	}
	if cfg.HighReserve > cfg.Slots {
		cfg.HighReserve = cfg.Slots
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Quota{cfg: cfg, buckets: map[string]*bucket{}}
}

// Charge spends one token from tenant's bucket. ok=false means the tenant is
// over quota and should retry after retryAfter — the bucket's own time to the
// next token, so each tenant gets its own honest Retry-After instead of a
// global constant.
func (q *Quota) Charge(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil || q.cfg.RatePerSec <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.now()
	b := q.buckets[tenant]
	if b == nil {
		if len(q.buckets) >= q.cfg.MaxTenants {
			q.evictFullLocked(now)
		}
		b = &bucket{tokens: q.cfg.Burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(q.cfg.Burst, b.tokens+now.Sub(b.last).Seconds()*q.cfg.RatePerSec)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	q.rejectedTenant++
	return false, time.Duration(float64(time.Second) * (1 - b.tokens) / q.cfg.RatePerSec)
}

// evictFullLocked drops buckets already refilled to capacity — tenants a
// fresh bucket would treat identically, so forgetting them is lossless.
func (q *Quota) evictFullLocked(now time.Time) {
	for t, b := range q.buckets {
		if math.Min(q.cfg.Burst, b.tokens+now.Sub(b.last).Seconds()*q.cfg.RatePerSec) >= q.cfg.Burst {
			delete(q.buckets, t)
		}
	}
}

// Acquire takes one priority-class slot for an admitted computed job: high
// may use every slot, low only Slots-HighReserve. release frees the slot
// (idempotent is the caller's job — the server releases exactly once, with
// the admission token). ok=false tells the server to shed with a 429.
func (q *Quota) Acquire(high bool) (release func(), ok bool) {
	if q == nil || q.cfg.Slots <= 0 {
		return func() {}, true
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if high {
		if q.high+q.low >= q.cfg.Slots {
			q.rejectedClass++
			return nil, false
		}
		q.high++
		return func() {
			q.mu.Lock()
			q.high--
			q.mu.Unlock()
		}, true
	}
	if q.high+q.low >= q.cfg.Slots-q.cfg.HighReserve {
		q.rejectedClass++
		return nil, false
	}
	q.low++
	return func() {
		q.mu.Lock()
		q.low--
		q.mu.Unlock()
	}, true
}

// QuotaStats is the quota section of /v1/fleet.
type QuotaStats struct {
	Enabled        bool     `json:"enabled"`
	RatePerSec     float64  `json:"rate_per_sec,omitempty"`
	Burst          float64  `json:"burst,omitempty"`
	Slots          int      `json:"slots,omitempty"`
	HighReserve    int      `json:"high_reserve,omitempty"`
	Tenants        []string `json:"tenants,omitempty"`
	InFlightHigh   int      `json:"in_flight_high"`
	InFlightLow    int      `json:"in_flight_low"`
	RejectedTenant uint64   `json:"rejected_tenant"`
	RejectedClass  uint64   `json:"rejected_class"`
}

// Snapshot reports the quota's current state.
func (q *Quota) Snapshot() QuotaStats {
	if q == nil {
		return QuotaStats{}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	st := QuotaStats{
		Enabled:        true,
		RatePerSec:     q.cfg.RatePerSec,
		Burst:          q.cfg.Burst,
		Slots:          q.cfg.Slots,
		HighReserve:    q.cfg.HighReserve,
		InFlightHigh:   q.high,
		InFlightLow:    q.low,
		RejectedTenant: q.rejectedTenant,
		RejectedClass:  q.rejectedClass,
	}
	for t := range q.buckets {
		st.Tenants = append(st.Tenants, t)
	}
	sort.Strings(st.Tenants)
	return st
}
