package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real shard keys: "sim|" + a Config.Fingerprint.
		keys[i] = fmt.Sprintf("sim|apps=mcf seed=%d warm=2000 target=20000", i)
	}
	return keys
}

// TestRingUniformity: with 128 vnodes the keyspace spreads evenly enough that
// the busiest node sees < 1.25x the share of the idlest, both by arc length
// and by empirical key placement.
func TestRingUniformity(t *testing.T) {
	for _, nodes := range []int{2, 3, 5, 8} {
		names := make([]string, nodes)
		for i := range names {
			names[i] = fmt.Sprintf("w%d", i+1)
		}
		r := NewRing(DefaultVNodes, names...)

		checkSpread := func(what string, shares map[string]float64) {
			t.Helper()
			if len(shares) != nodes {
				t.Fatalf("%d nodes: %s covers %d nodes", nodes, what, len(shares))
			}
			minS, maxS := 2.0, 0.0
			for _, s := range shares {
				if s < minS {
					minS = s
				}
				if s > maxS {
					maxS = s
				}
			}
			if ratio := maxS / minS; ratio >= 1.25 {
				t.Errorf("%d nodes: %s max/min share = %.3f, want < 1.25 (min %.4f max %.4f)",
					nodes, what, ratio, minS, maxS)
			}
		}
		checkSpread("arc share", r.Shares())

		counts := map[string]float64{}
		keys := ringKeys(20000)
		for _, k := range keys {
			owner, ok := r.Owner(k)
			if !ok {
				t.Fatal("no owner on a populated ring")
			}
			counts[owner] += 1 / float64(len(keys))
		}
		checkSpread("key share", counts)
	}
}

// TestRingMinimalRemap: adding a node moves only ~1/N of the keys (all of
// them to the new node), and removing it restores every original owner.
func TestRingMinimalRemap(t *testing.T) {
	r := NewRing(DefaultVNodes, "w1", "w2", "w3")
	keys := ringKeys(10000)
	before := map[string]string{}
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}

	r.Add("w4")
	moved := 0
	for _, k := range keys {
		now, _ := r.Owner(k)
		if now != before[k] {
			moved++
			if now != "w4" {
				t.Fatalf("key %q moved %s -> %s, not to the joining node", k, before[k], now)
			}
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Ideal is 1/4; allow generous slack around vnode placement variance but
	// reject anything resembling a full reshuffle.
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("join remapped %.1f%% of keys, want ~25%%", 100*frac)
	}

	r.Remove("w4")
	for _, k := range keys {
		if now, _ := r.Owner(k); now != before[k] {
			t.Fatalf("key %q did not return to %s after leave (got %s)", k, before[k], now)
		}
	}
}

// TestRingDeterministicOwnership: ownership is a pure function of the member
// set — rebuilding the ring in any insertion order (a restart) reproduces it.
func TestRingDeterministicOwnership(t *testing.T) {
	a := NewRing(DefaultVNodes, "w1", "w2", "w3")
	b := NewRing(DefaultVNodes, "w3", "w1", "w2") // "restart", different order
	c := NewRing(DefaultVNodes, "w2", "w3")
	c.Add("w1") // late join converges to the same placement
	for _, k := range ringKeys(5000) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		oc, _ := c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("key %q owners diverge across rebuilds: %s / %s / %s", k, oa, ob, oc)
		}
	}
}

// TestRingOwners: the successor list is distinct, starts at the owner, and
// covers the whole membership when asked.
func TestRingOwners(t *testing.T) {
	r := NewRing(DefaultVNodes, "w1", "w2", "w3")
	for _, k := range ringKeys(200) {
		owner, _ := r.Owner(k)
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("Owners(%q, 3) = %v", k, owners)
		}
		if owners[0] != owner {
			t.Fatalf("Owners[0] = %s, Owner = %s", owners[0], owner)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner %s in %v", o, owners)
			}
			seen[o] = true
		}
	}
	if got := r.Owners("k", 10); len(got) != 3 {
		t.Fatalf("Owners capped at membership: got %v", got)
	}
	if _, ok := NewRing(0).Owner("k"); ok {
		t.Fatal("empty ring reported an owner")
	}
}
