package fleet

import (
	"testing"
	"time"
)

func testClock(start time.Time) (*time.Time, func() time.Time) {
	t := start
	return &t, func() time.Time { return t }
}

func TestQuotaTenantBuckets(t *testing.T) {
	now, clock := testClock(time.Unix(1000, 0))
	q := NewQuota(QuotaConfig{RatePerSec: 2, Burst: 4, now: clock})

	// Burst drains, then the tenant is shed with its own refill horizon.
	for i := 0; i < 4; i++ {
		if ok, _ := q.Charge("alice"); !ok {
			t.Fatalf("charge %d within burst rejected", i)
		}
	}
	ok, retry := q.Charge("alice")
	if ok {
		t.Fatal("charge beyond burst admitted")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry-after = %v, want (0, 1s] at 2 tokens/sec", retry)
	}

	// Tenants are independent: bob's fresh bucket admits immediately.
	if ok, _ := q.Charge("bob"); !ok {
		t.Fatal("independent tenant rejected")
	}

	// Refill: half a second buys one token at 2/sec.
	*now = now.Add(500 * time.Millisecond)
	if ok, _ := q.Charge("alice"); !ok {
		t.Fatal("refilled tenant still rejected")
	}
	if ok, _ := q.Charge("alice"); ok {
		t.Fatal("second charge after a one-token refill admitted")
	}
}

func TestQuotaPrioritySlots(t *testing.T) {
	q := NewQuota(QuotaConfig{Slots: 3, HighReserve: 1})

	// Low priority may fill only Slots-HighReserve.
	rel1, ok := q.Acquire(false)
	rel2, ok2 := q.Acquire(false)
	if !ok || !ok2 {
		t.Fatal("low-priority slots under the cap rejected")
	}
	if _, ok := q.Acquire(false); ok {
		t.Fatal("low priority occupied the reserved headroom")
	}
	// High priority can still get in — that's what the reserve is for.
	relH, ok := q.Acquire(true)
	if !ok {
		t.Fatal("high priority rejected while its reserve was free")
	}
	if _, ok := q.Acquire(true); ok {
		t.Fatal("acquire beyond total slots admitted")
	}
	relH()
	rel1()
	rel2()
	if _, ok := q.Acquire(false); !ok {
		t.Fatal("released slots not reusable")
	}

	st := q.Snapshot()
	if st.InFlightLow != 1 || st.InFlightHigh != 0 {
		t.Fatalf("snapshot in-flight = %d low / %d high", st.InFlightLow, st.InFlightHigh)
	}
	if st.RejectedClass != 2 {
		t.Fatalf("snapshot rejected_class = %d, want 2", st.RejectedClass)
	}
}

func TestQuotaDisabled(t *testing.T) {
	var q *Quota // nil quota admits everything
	if ok, _ := q.Charge("anyone"); !ok {
		t.Fatal("nil quota rejected a charge")
	}
	if _, ok := q.Acquire(false); !ok {
		t.Fatal("nil quota rejected an acquire")
	}
	q = NewQuota(QuotaConfig{}) // zero config likewise
	if ok, _ := q.Charge("anyone"); !ok {
		t.Fatal("zero-config quota rejected a charge")
	}
	if _, ok := q.Acquire(true); !ok {
		t.Fatal("zero-config quota rejected an acquire")
	}
}
