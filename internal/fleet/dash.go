package fleet

import (
	"net/http"
)

// fleetDashHTML is the coordinator's /debug/dash page: a fleet card (one row
// per worker with ring share, readiness, forwards, ejection history) over the
// coordinator's own counters, refreshed by polling /v1/fleet once a second.
// Self-contained like the worker dashboard: no external assets.
const fleetDashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>smtdramd fleet</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto; max-width: 64rem; color: #222; }
  h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .3rem .7rem; border-bottom: 1px solid #ddd; }
  th { color: #666; font-weight: 600; }
  .num { text-align: right; font-variant-numeric: tabular-nums; }
  .ok { color: #2e7d32; font-weight: 600; } .bad { color: #c62828; font-weight: 600; }
  .cards { display: flex; gap: 1rem; flex-wrap: wrap; margin: 1rem 0; }
  .card { border: 1px solid #ddd; border-radius: 8px; padding: .7rem 1.1rem; min-width: 9rem; }
  .card .v { font-size: 1.5rem; font-variant-numeric: tabular-nums; }
  .card .k { color: #666; font-size: .8rem; }
  .err { color: #c62828; font-size: .85rem; }
</style>
</head>
<body>
<h1>smtdramd fleet coordinator</h1>
<div class="cards">
  <div class="card"><div class="v" id="ready">–</div><div class="k">ready / workers</div></div>
  <div class="card"><div class="v" id="forwards">–</div><div class="k">forwards</div></div>
  <div class="card"><div class="v" id="errors">–</div><div class="k">forward errors</div></div>
  <div class="card"><div class="v" id="rejected">–</div><div class="k">quota rejected</div></div>
  <div class="card"><div class="v" id="uptime">–</div><div class="k">uptime</div></div>
</div>
<h2>Workers</h2>
<table>
<thead><tr>
  <th>node</th><th>url</th><th>state</th>
  <th class="num">ring share</th><th class="num">forwards</th>
  <th class="num">proxy errors</th><th class="num">ejections</th><th>last error</th>
</tr></thead>
<tbody id="members"></tbody>
</table>
<p class="err" id="fetcherr"></p>
<script>
function esc(s) { const d = document.createElement('span'); d.textContent = s ?? ''; return d.innerHTML; }
async function tick() {
  try {
    const r = await fetch('/v1/fleet'); const s = await r.json();
    document.getElementById('ready').textContent = s.ready_workers + ' / ' + s.workers;
    document.getElementById('forwards').textContent = s.forwards;
    document.getElementById('errors').textContent = s.forward_errors;
    document.getElementById('rejected').textContent = s.quota_rejected;
    document.getElementById('uptime').textContent = Math.round(s.uptime_seconds) + 's';
    document.getElementById('members').innerHTML = (s.members || []).map(m =>
      '<tr><td>' + esc(m.node_id || '?') + '</td><td>' + esc(m.url) + '</td>' +
      '<td class="' + (m.ready ? 'ok">ready' : 'bad">ejected') + '</td>' +
      '<td class="num">' + (100 * (m.ring_share || 0)).toFixed(1) + '%</td>' +
      '<td class="num">' + m.forwards + '</td>' +
      '<td class="num">' + m.proxy_errors + '</td>' +
      '<td class="num">' + m.ejections + '</td>' +
      '<td class="err">' + esc(m.last_error || '') + '</td></tr>').join('');
    document.getElementById('fetcherr').textContent = '';
  } catch (e) { document.getElementById('fetcherr').textContent = 'fetch failed: ' + e; }
}
tick(); setInterval(tick, 1000);
</script>
</body>
</html>
`

func (c *Coordinator) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(fleetDashHTML))
}
