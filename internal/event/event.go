// Package event provides the discrete-event scheduling core shared by the
// memory subsystem simulators. It is a simple binary min-heap of
// (cycle, callback) pairs with stable FIFO ordering for events scheduled at
// the same cycle, so component behaviour is deterministic.
package event

// Func is a callback fired when the simulation clock reaches its cycle.
type Func func(now uint64)

// Handler is the allocation-free alternative to Func: components that fire
// the same kind of event over and over implement Handler on a long-lived
// (or pooled) struct and pass it to ScheduleHandler, instead of allocating
// a fresh closure per Schedule call on the simulation hot path.
type Handler interface {
	OnEvent(now uint64)
}

type item struct {
	at  uint64
	seq uint64 // tie-breaker: FIFO among equal cycles
	fn  Func
	h   Handler
}

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use. Queue is not safe for concurrent use; the simulator is single-threaded
// by design (one simulated machine = one goroutine).
type Queue struct {
	heap []item
	seq  uint64

	// Drain/hazard counters, maintained unconditionally (a handful of
	// integer ops per event) and exposed to the observability layer.
	fired   uint64 // events executed
	firedAt uint64 // highest cycle any fired event carried
	past    uint64 // schedules at a cycle the queue had already fired past
	maxLen  int    // high-water pending-event count
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.heap) }

// Fired reports the cumulative number of events executed.
func (q *Queue) Fired() uint64 { return q.fired }

// PastSchedules reports how often Schedule was called with a cycle earlier
// than one the queue had already fired an event at — the documented
// schedule-in-the-past hazard. Such events still fire (late), but a nonzero
// count means some component's timing arithmetic went backwards.
func (q *Queue) PastSchedules() uint64 { return q.past }

// MaxLen reports the high-water pending-event count.
func (q *Queue) MaxLen() int { return q.maxLen }

// Schedule registers fn to run at cycle at. Scheduling in the past is the
// caller's bug; the event still fires, at whatever "now" the queue has
// advanced to, preserving run-to-completion semantics. Occurrences are
// counted (see PastSchedules).
func (q *Queue) Schedule(at uint64, fn Func) {
	if at < q.firedAt {
		q.past++
	}
	q.heap = append(q.heap, item{at: at, seq: q.seq, fn: fn})
	if len(q.heap) > q.maxLen {
		q.maxLen = len(q.heap)
	}
	q.seq++
	q.up(len(q.heap) - 1)
}

// ScheduleHandler registers h to run at cycle at. It shares the clock, the
// FIFO tie-break sequence, and the hazard accounting with Schedule — an event
// scheduled through either entry point fires in exactly the same order — but
// takes an interface value instead of a closure, so callers can reuse one
// handler object across millions of events without allocating.
func (q *Queue) ScheduleHandler(at uint64, h Handler) {
	if at < q.firedAt {
		q.past++
	}
	q.heap = append(q.heap, item{at: at, seq: q.seq, h: h})
	if len(q.heap) > q.maxLen {
		q.maxLen = len(q.heap)
	}
	q.seq++
	q.up(len(q.heap) - 1)
}

// NextAt returns the cycle of the earliest pending event. ok is false when
// the queue is empty.
func (q *Queue) NextAt() (at uint64, ok bool) {
	if len(q.heap) == 0 {
		return 0, false
	}
	return q.heap[0].at, true
}

// RunUntil fires, in order, every event with cycle <= now. Events scheduled
// by callbacks for cycles <= now are fired in the same call.
func (q *Queue) RunUntil(now uint64) {
	for len(q.heap) > 0 && q.heap[0].at <= now {
		it := q.pop()
		q.fired++
		if it.at > q.firedAt {
			q.firedAt = it.at
		}
		if it.h != nil {
			it.h.OnEvent(it.at)
		} else {
			it.fn(it.at)
		}
	}
}

func (q *Queue) pop() item {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

func (q *Queue) less(i, j int) bool {
	if q.heap[i].at != q.heap[j].at {
		return q.heap[i].at < q.heap[j].at
	}
	return q.heap[i].seq < q.heap[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.heap[i], q.heap[smallest] = q.heap[smallest], q.heap[i]
		i = smallest
	}
}
