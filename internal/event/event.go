// Package event provides the discrete-event scheduling core shared by the
// memory subsystem simulators. The queue is tiered: events in the near
// future — the common case, since DRAM timings are short fixed offsets —
// land in a ring of per-cycle FIFO buckets, and everything else (far-future
// timers, schedule-in-the-past hazards) falls back to a binary min-heap.
// The two tiers are merged at drain time by global (cycle, seq) order, so
// firing order is exactly that of a single stable min-heap: cycle-ordered,
// FIFO among events scheduled for the same cycle.
package event

import "math/bits"

// Func is a callback fired when the simulation clock reaches its cycle.
type Func func(now uint64)

// Handler is the allocation-free alternative to Func: components that fire
// the same kind of event over and over implement Handler on a long-lived
// (or pooled) struct and pass it to ScheduleHandler, instead of allocating
// a fresh closure per Schedule call on the simulation hot path.
type Handler interface {
	OnEvent(now uint64)
}

// Filler is the completion-callback counterpart of Handler: a pending
// continuation ("this miss's data arrives now") rather than a recurring
// event. Keeping it a distinct interface lets one object carry both roles —
// an MSHR's OnEvent retries issue while its OnFill delivers data — and,
// because fillers are named objects instead of closures, lets the snapshot
// codec describe scheduled completions by reference.
type Filler interface {
	OnFill(now uint64)
}

// FillFunc adapts a plain function to Filler, for tests and call sites that
// are not on the snapshot path.
type FillFunc func(now uint64)

// OnFill implements Filler.
func (f FillFunc) OnFill(now uint64) { f(now) }

type item struct {
	at  uint64
	seq uint64 // tie-breaker: FIFO among equal cycles
	fn  Func
	h   Handler
	f   Filler
}

const (
	// ringWindow is the span of cycles the bucket ring covers, starting at
	// the drain cursor. Must be a power of two. DRAM service times, cache
	// latencies, and retry gaps are all far below this, so in steady state
	// essentially every event takes the O(1) bucket path.
	ringWindow = 1024
	ringMask   = ringWindow - 1
	occWords   = ringWindow / 64
	// bucketCap is the per-bucket capacity carved from the shared backing
	// array on first use; buckets that burst past it grow individually and
	// keep their larger capacity.
	bucketCap = 4
)

// Queue is a deterministic discrete-event queue. The zero value is ready to
// use. Queue is not safe for concurrent use; the simulator is single-threaded
// by design (one simulated machine = one goroutine).
type Queue struct {
	// ring holds events for cycles in [base, base+ringWindow), one FIFO
	// bucket per cycle, indexed by cycle & ringMask. occ is its occupancy
	// bitmap (one bit per bucket) for fast next-nonempty scans.
	ring  [ringWindow][]item
	occ   [occWords]uint64
	ringN int
	base  uint64 // lowest cycle not yet fully drained

	// far is a (at, seq) min-heap holding everything the ring cannot:
	// events beyond the window and events scheduled in the past.
	far []item

	seq uint64

	// Drain/hazard counters, maintained unconditionally (a handful of
	// integer ops per event) and exposed to the observability layer.
	fired   uint64 // events executed
	firedAt uint64 // highest cycle any fired event carried
	past    uint64 // schedules at a cycle the queue had already fired past
	maxLen  int    // high-water pending-event count
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return q.ringN + len(q.far) }

// Fired reports the cumulative number of events executed.
func (q *Queue) Fired() uint64 { return q.fired }

// PastSchedules reports how often Schedule was called with a cycle earlier
// than one the queue had already fired an event at — the documented
// schedule-in-the-past hazard. Such events still fire (late), but a nonzero
// count means some component's timing arithmetic went backwards.
func (q *Queue) PastSchedules() uint64 { return q.past }

// MaxLen reports the high-water pending-event count.
func (q *Queue) MaxLen() int { return q.maxLen }

// Schedule registers fn to run at cycle at. Scheduling in the past is the
// caller's bug; the event still fires, at whatever "now" the queue has
// advanced to, preserving run-to-completion semantics. Occurrences are
// counted (see PastSchedules).
func (q *Queue) Schedule(at uint64, fn Func) {
	q.push(item{at: at, fn: fn})
}

// ScheduleHandler registers h to run at cycle at. It shares the clock, the
// FIFO tie-break sequence, and the hazard accounting with Schedule — an event
// scheduled through either entry point fires in exactly the same order — but
// takes an interface value instead of a closure, so callers can reuse one
// handler object across millions of events without allocating.
func (q *Queue) ScheduleHandler(at uint64, h Handler) {
	q.push(item{at: at, h: h})
}

// ScheduleFiller registers f's OnFill to run at cycle at. Identical ordering
// and hazard semantics to Schedule/ScheduleHandler; the separate entry point
// exists so pending completions are typed objects the snapshot codec can
// name.
func (q *Queue) ScheduleFiller(at uint64, f Filler) {
	q.push(item{at: at, f: f})
}

// push is the single insertion path behind Schedule and ScheduleHandler.
func (q *Queue) push(it item) {
	if it.at < q.firedAt {
		q.past++
	}
	it.seq = q.seq
	q.seq++
	if it.at >= q.base && it.at < q.base+ringWindow {
		s := int(it.at & ringMask)
		if q.ring[s] == nil {
			q.initRing()
		}
		q.ring[s] = append(q.ring[s], it)
		q.occ[s>>6] |= 1 << uint(s&63)
		q.ringN++
	} else {
		q.far = append(q.far, it)
		q.up(len(q.far) - 1)
	}
	if n := q.ringN + len(q.far); n > q.maxLen {
		q.maxLen = n
	}
}

// initRing carves every bucket's initial capacity out of one shared backing
// array, so warming the ring costs a single allocation instead of one per
// bucket.
func (q *Queue) initRing() {
	backing := make([]item, ringWindow*bucketCap)
	for i := range q.ring {
		if q.ring[i] == nil {
			q.ring[i] = backing[i*bucketCap : i*bucketCap : (i+1)*bucketCap]
		}
	}
}

// ringNextAt returns the earliest cycle with a pending ring event.
func (q *Queue) ringNextAt() (uint64, bool) {
	if q.ringN == 0 {
		return 0, false
	}
	s := int(q.base & ringMask)
	w0 := s >> 6
	w := w0
	word := q.occ[w0] &^ (1<<uint(s&63) - 1)
	for {
		if word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			return q.base + uint64((slot-s+ringWindow)&ringMask), true
		}
		w = (w + 1) & (occWords - 1)
		word = q.occ[w]
		if w == w0 {
			// Wrapped: only the low bits of the starting word remain
			// (slots before the cursor hold next-lap cycles).
			word &= 1<<uint(s&63) - 1
			if word != 0 {
				slot := w<<6 + bits.TrailingZeros64(word)
				return q.base + uint64((slot-s+ringWindow)&ringMask), true
			}
			return 0, false
		}
	}
}

// NextAt returns the cycle of the earliest pending event. ok is false when
// the queue is empty.
func (q *Queue) NextAt() (at uint64, ok bool) {
	ra, rok := q.ringNextAt()
	if len(q.far) > 0 && (!rok || q.far[0].at < ra) {
		return q.far[0].at, true
	}
	return ra, rok
}

// RunUntil fires, in order, every event with cycle <= now. Events scheduled
// by callbacks for cycles <= now are fired in the same call.
func (q *Queue) RunUntil(now uint64) {
	for {
		ra, rok := q.ringNextAt()
		var c uint64
		switch {
		case len(q.far) > 0 && (!rok || q.far[0].at < ra):
			c = q.far[0].at
		case rok:
			c = ra
		default:
			goto drained
		}
		if c > now {
			break
		}
		if c < q.base {
			// A schedule-in-the-past event: it lives only in the far heap
			// (the ring never holds cycles below the cursor). Fire it and
			// re-pick the global minimum — its callback may schedule more.
			q.fire(q.popFar())
			continue
		}
		// All cycles below c are drained, so the cursor may advance to c,
		// which puts c's bucket in the window: same-cycle schedules made by
		// the callbacks below land in the bucket being drained and fire in
		// this same pass, in seq order.
		q.base = c
		q.drainCycle(c)
	}
drained:
	if q.base <= now {
		q.base = now + 1
	}
}

// DrainQuiet fires pending events in whole-cycle batches, strictly below
// bound, invoking stop(c) after each cycle c's batch has fully drained
// (including any same- or past-cycle events the callbacks scheduled). It
// returns (c, true) as soon as stop reports the batch did something the
// caller must land on, leaving the queue exactly as RunUntil(c) would have —
// every event at or below c fired, cursor at c+1 — or (0, false) once no
// pending event remains below bound.
//
// This is the two-speed clock's span drain: a quiet span sails through
// memory-internal event cycles without surfacing to the run loop, paying one
// next-event scan per batch instead of the scan-plus-RunUntil pair the loop
// would issue, and stopping at the first batch that delivers CPU-visible
// state.
func (q *Queue) DrainQuiet(bound uint64, stop func(at uint64) bool) (at uint64, stopped bool) {
	for {
		ra, rok := q.ringNextAt()
		var c uint64
		switch {
		case len(q.far) > 0 && (!rok || q.far[0].at < ra):
			c = q.far[0].at
		case rok:
			c = ra
		default:
			return 0, false
		}
		if c >= bound {
			return 0, false
		}
		if c < q.base {
			// Schedule-in-the-past hazard (far heap only): fire it at the
			// cursor and re-pick, exactly as RunUntil would.
			q.fire(q.popFar())
			continue
		}
		q.base = c
		q.drainCycle(c)
		q.base = c + 1
		if stop(c) {
			return c, true
		}
	}
}

// drainCycle fires every event at cycle c (== q.base), merging the ring
// bucket's FIFO with far-heap entries by seq so global (at, seq) order is
// preserved. Callbacks may append to either tier mid-drain.
func (q *Queue) drainCycle(c uint64) {
	s := int(c & ringMask)
	bi := 0
	for {
		hasB := bi < len(q.ring[s])
		hasF := len(q.far) > 0 && q.far[0].at <= c
		var it item
		switch {
		case hasF && (!hasB || q.far[0].at < c || q.far[0].seq < q.ring[s][bi].seq):
			// A past-scheduled event (at < c) always precedes the rest of
			// this cycle; an at == c far entry interleaves by seq.
			it = q.popFar()
		case hasB:
			it = q.ring[s][bi]
			q.ring[s][bi] = item{}
			bi++
			q.ringN--
		default:
			q.ring[s] = q.ring[s][:0]
			q.occ[s>>6] &^= 1 << uint(s&63)
			return
		}
		q.fire(it)
	}
}

func (q *Queue) fire(it item) {
	q.fired++
	if it.at > q.firedAt {
		q.firedAt = it.at
	}
	switch {
	case it.h != nil:
		it.h.OnEvent(it.at)
	case it.f != nil:
		it.f.OnFill(it.at)
	default:
		it.fn(it.at)
	}
}

// Reset discards all pending events and zeroes every counter, returning the
// queue to its initial state while retaining the grown internal storage, so
// a queue reused across runs schedules without reallocating.
func (q *Queue) Reset() {
	for s := range q.ring {
		b := q.ring[s]
		for i := range b {
			b[i] = item{}
		}
		if b != nil {
			q.ring[s] = b[:0]
		}
	}
	for i := range q.far {
		q.far[i] = item{}
	}
	q.far = q.far[:0]
	q.occ = [occWords]uint64{}
	q.ringN = 0
	q.base = 0
	q.seq = 0
	q.fired = 0
	q.firedAt = 0
	q.past = 0
	q.maxLen = 0
}

func (q *Queue) popFar() item {
	top := q.far[0]
	last := len(q.far) - 1
	q.far[0] = q.far[last]
	q.far[last] = item{}
	q.far = q.far[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

func (q *Queue) less(i, j int) bool {
	if q.far[i].at != q.far[j].at {
		return q.far[i].at < q.far[j].at
	}
	return q.far[i].seq < q.far[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.far[i], q.far[parent] = q.far[parent], q.far[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.far)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.far[i], q.far[smallest] = q.far[smallest], q.far[i]
		i = smallest
	}
}
