package event

import (
	"fmt"
	"sort"

	"smtdram/internal/snap"
)

// RefMaker is implemented by every object that can sit in the queue (as a
// Handler or a Filler) and survive a snapshot: SnapRef returns the typed
// descriptor the core resolver maps back to the equivalent live object
// inside a freshly built simulator.
type RefMaker interface {
	SnapRef() snap.Ref
}

// Roles distinguish which interface a restored object is scheduled through,
// so dual-role objects (an MSHR is both its retry Handler and its data
// Filler) round-trip unambiguously.
const (
	RoleHandler uint8 = 0
	RoleFiller  uint8 = 1
)

// Resolver maps a decoded reference (and the role it was recorded in) back
// to the equivalent live object. The core simulator owns the production
// implementation, dispatching on ref.Kind to the component that can rebuild
// or look up the object.
type Resolver func(ref *snap.Ref, role uint8) (any, error)

const sectionQueue = 0x51455645 // "EVEQ"

// Snapshot serializes the queue — counters and every pending event in exact
// global (cycle, seq) order — into w. Events scheduled as raw closures
// (Schedule/FillFunc) have no name to serialize and yield ErrUnsupported;
// all production scheduling goes through Handler/Filler objects implementing
// RefMaker.
func (q *Queue) Snapshot(w *snap.Writer) error {
	w.Marker(sectionQueue)
	w.U64(q.base)
	w.U64(q.seq)
	w.U64(q.fired)
	w.U64(q.firedAt)
	w.U64(q.past)
	w.U64(uint64(q.maxLen))

	items := make([]item, 0, q.Len())
	for s := range q.ring {
		items = append(items, q.ring[s]...)
	}
	items = append(items, q.far...)
	sort.Slice(items, func(i, j int) bool {
		if items[i].at != items[j].at {
			return items[i].at < items[j].at
		}
		return items[i].seq < items[j].seq
	})

	w.U64(uint64(len(items)))
	for _, it := range items {
		var (
			role uint8
			obj  any
		)
		switch {
		case it.h != nil:
			role, obj = RoleHandler, it.h
		case it.f != nil:
			role, obj = RoleFiller, it.f
		default:
			return fmt.Errorf("%w: raw closure event at cycle %d", snap.ErrUnsupported, it.at)
		}
		rm, ok := obj.(RefMaker)
		if !ok {
			return fmt.Errorf("%w: event object %T at cycle %d has no SnapRef", snap.ErrUnsupported, obj, it.at)
		}
		ref := rm.SnapRef()
		w.U64(it.at)
		w.U64(it.seq)
		w.U8(role)
		w.Ref(&ref)
	}
	return nil
}

// Restore rebuilds the queue from r, resolving each event's descriptor to a
// live object via resolve (which must return a Handler for RoleHandler items
// and a Filler for RoleFiller items). Counters, the drain cursor, and every
// event's exact (cycle, seq) pair are restored verbatim, so the next drain
// fires in precisely the order the snapshotted queue would have.
func (q *Queue) Restore(r *snap.Reader, resolve Resolver) error {
	q.Reset()
	r.Expect(sectionQueue)
	q.base = r.U64()
	seq := r.U64()
	fired := r.U64()
	firedAt := r.U64()
	past := r.U64()
	maxLen := r.U64()
	n := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	for i := uint64(0); i < n; i++ {
		it := item{at: r.U64(), seq: r.U64()}
		role := r.U8()
		ref := r.Ref()
		if err := r.Err(); err != nil {
			return err
		}
		if ref == nil {
			return fmt.Errorf("%w: event %d missing ref", snap.ErrCorrupt, i)
		}
		obj, err := resolve(ref, role)
		if err != nil {
			return fmt.Errorf("event %d (cycle %d): %w", i, it.at, err)
		}
		switch role {
		case RoleHandler:
			h, ok := obj.(Handler)
			if !ok {
				return fmt.Errorf("%w: resolved %T is not a Handler", snap.ErrCorrupt, obj)
			}
			it.h = h
		case RoleFiller:
			f, ok := obj.(Filler)
			if !ok {
				return fmt.Errorf("%w: resolved %T is not a Filler", snap.ErrCorrupt, obj)
			}
			it.f = f
		default:
			return fmt.Errorf("%w: event role %d", snap.ErrCorrupt, role)
		}
		q.place(it)
	}
	// Counters last: place must not disturb the restored values.
	q.seq = seq
	q.fired = fired
	q.firedAt = firedAt
	q.past = past
	q.maxLen = int(maxLen)
	return nil
}

// place inserts a restored item with its original seq, bypassing push's
// sequence assignment and hazard accounting (both already restored).
func (q *Queue) place(it item) {
	if it.at >= q.base && it.at < q.base+ringWindow {
		s := int(it.at & ringMask)
		if q.ring[s] == nil {
			q.initRing()
		}
		q.ring[s] = append(q.ring[s], it)
		q.occ[s>>6] |= 1 << uint(s&63)
		q.ringN++
	} else {
		q.far = append(q.far, it)
		q.up(len(q.far) - 1)
	}
}
